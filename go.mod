module netcut

go 1.24
