#!/usr/bin/env bash
# bench.sh — run the figure-regeneration and end-to-end benchmarks and
# emit a machine-readable BENCH_<date>.json so successive PRs accumulate
# a performance trajectory.
#
# Usage: scripts/bench.sh [output-dir] [benchtime]
#   output-dir  where BENCH_<date>.json lands (default: repo root)
#   benchtime   go test -benchtime value (default: 100ms). The old 1x
#               default made every recorded number a single-iteration
#               sample — fine for the macro-scale figure generators
#               (still one iteration at 100ms) but statistically
#               meaningless for the sub-millisecond serving-path gates,
#               whose drift comparisons need the hundreds of iterations
#               a time budget gives them. Each benchmark's actual
#               iteration count is recorded in the JSON; treat any
#               entry with iterations == 1 as a point sample, not a
#               distribution.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${1:-.}"
BENCHTIME="${2:-100ms}"
DATE="$(date -u +%Y-%m-%d)"
mkdir -p "$OUT_DIR"
OUT="$OUT_DIR/BENCH_${DATE}.json"

# The Planner|Gateway|State patterns pick up the serving-stack gates:
# PlannerSelectCold/Warm, PlannerSelectRestoredCold (snapshot restore),
# PlannerConcurrentThroughput, PlannerPoolWarmAcrossDevices
# (multi-target warm path), GatewayThroughput, GatewayCoalescedBurst,
# GatewayCoalescedBurstStaggered (timed batching window),
# GatewayLaneIsolation (per-device lane p99s) and StateSave/StateRestore
# (snapshot codec bytes + ns). -benchmem adds B/op and allocs/op to
# every entry so allocation regressions (a copy creeping back onto the
# byte-cache hit path, a reflective codec) show in the drift log too.
RAW="$(go test -run '^$' -bench 'SelectEndToEnd|Planner|Gateway|State|Fig|Tab|Abl' \
  -benchtime="$BENCHTIME" -benchmem . | grep -E '^Benchmark')"

{
  echo "{"
  echo "  \"date\": \"${DATE}\","
  echo "  \"host\": \"$(uname -srm)\","
  echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"benchtime\": \"${BENCHTIME}\","
  echo "  \"benchmarks\": ["
  # A bench line after the name and iteration count is value/unit token
  # pairs: "ns/op" always first, then any b.ReportMetric custom units,
  # then -benchmem's "B/op" and "allocs/op". Known units become
  # top-level fields; everything else lands under "metrics".
  echo "$RAW" | awk '{
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = 0; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
      v = $i; u = $(i + 1)
      if (u == "ns/op") ns = v
      else if (u == "B/op") bytes = v
      else if (u == "allocs/op") allocs = v
      else extra = extra (extra == "" ? "" : ", ") "\"" u "\": " v
    }
    line = "{\"name\": \"" name "\", \"iterations\": " $2 ", \"ns_per_op\": " ns
    if (bytes != "") line = line ", \"bytes_per_op\": " bytes
    if (allocs != "") line = line ", \"allocs_per_op\": " allocs
    if (extra != "") line = line ", \"metrics\": {" extra "}"
    printf "%s    %s}", sep, line
    sep = ",\n"
  } END { print "" }'
  echo "  ],"
  TOTAL=$(echo "$RAW" | awk '{s += $3} END {print s}')
  echo "  \"total_ns\": ${TOTAL}"
  echo "}"
} > "$OUT"

echo "wrote $OUT"

# Compare against the most recent prior BENCH_*.json so drift shows up
# in the run log, not only in git archaeology. A missing prior file is
# an explicit warning — a compare step that silently passes when there
# is nothing to compare against would read as "no regressions".
PREV="$(ls -1 "$OUT_DIR"/BENCH_*.json 2>/dev/null | grep -v "^$OUT\$" | sort | tail -1 || true)"
if [ -z "$PREV" ]; then
  echo "WARNING: no prior BENCH_*.json in $OUT_DIR to compare against — drift not checked" >&2
else
  echo "comparing against $PREV"
  python3 - "$PREV" "$OUT" <<'PY'
import json, sys
prev = {b["name"]: b for b in json.load(open(sys.argv[1]))["benchmarks"]}
curr = {b["name"]: b for b in json.load(open(sys.argv[2]))["benchmarks"]}
for name in sorted(set(prev) & set(curr)):
    p, c = prev[name]["ns_per_op"], curr[name]["ns_per_op"]
    if p <= 0:
        continue
    delta = (c - p) / p * 100
    flag = " <-- regression" if delta > 25 else ""
    print(f"  {name}: {p/1e6:.3f} -> {c/1e6:.3f} ms/op ({delta:+.1f}%){flag}")
only = sorted(set(prev) - set(curr))
if only:
    print("  dropped since previous run: " + ", ".join(only))
PY
fi
