#!/usr/bin/env bash
# bench.sh — run the figure-regeneration and end-to-end benchmarks and
# emit a machine-readable BENCH_<date>.json so successive PRs accumulate
# a performance trajectory.
#
# Usage: scripts/bench.sh [output-dir] [benchtime]
#   output-dir  where BENCH_<date>.json lands (default: repo root)
#   benchtime   go test -benchtime value (default: 1x — each figure
#               generator is macro-scale, one iteration is meaningful)
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${1:-.}"
BENCHTIME="${2:-1x}"
DATE="$(date -u +%Y-%m-%d)"
mkdir -p "$OUT_DIR"
OUT="$OUT_DIR/BENCH_${DATE}.json"

# The Planner|Gateway patterns pick up the serving-stack gates:
# PlannerSelectCold/Warm, PlannerConcurrentThroughput,
# PlannerPoolWarmAcrossDevices (multi-target warm path),
# GatewayThroughput, GatewayCoalescedBurst and
# GatewayCoalescedBurstStaggered (timed batching window).
RAW="$(go test -run '^$' -bench 'SelectEndToEnd|Planner|Gateway|Fig|Tab|Abl' \
  -benchtime="$BENCHTIME" . | grep -E '^Benchmark')"

{
  echo "{"
  echo "  \"date\": \"${DATE}\","
  echo "  \"host\": \"$(uname -srm)\","
  echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"benchtime\": \"${BENCHTIME}\","
  echo "  \"benchmarks\": ["
  echo "$RAW" | awk '{
    name = $1; sub(/-[0-9]+$/, "", name)
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", sep, name, $2, $3
    sep = ",\n"
  } END { print "" }'
  echo "  ],"
  TOTAL=$(echo "$RAW" | awk '{s += $3} END {print s}')
  echo "  \"total_ns\": ${TOTAL}"
  echo "}"
} > "$OUT"

echo "wrote $OUT"
