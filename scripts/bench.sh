#!/usr/bin/env bash
# bench.sh — run the figure-regeneration and end-to-end benchmarks and
# emit a machine-readable BENCH_<date>.json so successive PRs accumulate
# a performance trajectory.
#
# Usage: scripts/bench.sh [output-dir] [benchtime]
#   output-dir  where BENCH_<date>.json lands (default: repo root)
#   benchtime   go test -benchtime value (default: 100ms). The old 1x
#               default made every recorded number a single-iteration
#               sample — fine for the macro-scale figure generators
#               (still one iteration at 100ms) but statistically
#               meaningless for the sub-millisecond serving-path gates,
#               whose drift comparisons need the hundreds of iterations
#               a time budget gives them. Each benchmark's actual
#               iteration count is recorded in the JSON; treat any
#               entry with iterations == 1 as a point sample, not a
#               distribution.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${1:-.}"
BENCHTIME="${2:-100ms}"
DATE="$(date -u +%Y-%m-%d)"
mkdir -p "$OUT_DIR"
OUT="$OUT_DIR/BENCH_${DATE}.json"

# The Planner|Gateway patterns pick up the serving-stack gates:
# PlannerSelectCold/Warm, PlannerSelectRestoredCold (snapshot restore),
# PlannerConcurrentThroughput, PlannerPoolWarmAcrossDevices
# (multi-target warm path), GatewayThroughput, GatewayCoalescedBurst,
# GatewayCoalescedBurstStaggered (timed batching window) and
# GatewayLaneIsolation (per-device lane p99s).
RAW="$(go test -run '^$' -bench 'SelectEndToEnd|Planner|Gateway|Fig|Tab|Abl' \
  -benchtime="$BENCHTIME" . | grep -E '^Benchmark')"

{
  echo "{"
  echo "  \"date\": \"${DATE}\","
  echo "  \"host\": \"$(uname -srm)\","
  echo "  \"cpus\": $(getconf _NPROCESSORS_ONLN),"
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"benchtime\": \"${BENCHTIME}\","
  echo "  \"benchmarks\": ["
  echo "$RAW" | awk '{
    name = $1; sub(/-[0-9]+$/, "", name)
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", sep, name, $2, $3
    sep = ",\n"
  } END { print "" }'
  echo "  ],"
  TOTAL=$(echo "$RAW" | awk '{s += $3} END {print s}')
  echo "  \"total_ns\": ${TOTAL}"
  echo "}"
} > "$OUT"

echo "wrote $OUT"
