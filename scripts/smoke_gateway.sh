#!/usr/bin/env bash
# smoke_gateway.sh — end-to-end smoke of the serving daemon: boot
# cmd/netserve, fire a small concurrent load that exercises the warm,
# coalesce and shed paths, assert /metrics and /debug/stats respond,
# SIGTERM and require a clean (exit 0) drain — then restart from the
# saved warm-state snapshot and require the first post-restart request
# to run on the warm path (cold counter stays 0) with a byte-identical
# body. A final crash leg kills the daemon with -9 mid-traffic,
# corrupts the primary snapshot, and requires the restart to recover
# from the autosaved .bak generation with a warm first request. An
# overload leg floods a tiny-capacity instance past its queue depth
# and asserts the load level rises, 429s carry backlog-honest
# Retry-After hints, byte-cache hits keep serving, and the level
# returns to 0 before a clean drain.
#
# Usage: scripts/smoke_gateway.sh [port]   (default 18080)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
BIN="$TMP/netserve"
trap 'kill -9 "${PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$BIN" ./cmd/netserve

# Config/bind errors must be non-zero prompt exits, not hangs.
if "$BIN" -addr "not-a-valid-address" >/dev/null 2>&1; then
  echo "FAIL: netserve exited 0 on an unbindable address" >&2
  exit 1
fi

STATE="$TMP/state.bin"
# -byte-cache 0 for this leg: it exercises the planner's own warm path
# and the shed predicate with repeated identical requests, which the
# rendered-response cache would otherwise answer outright (the dedicated
# byte-cache leg at the end runs with the cache on).
"$BIN" -addr "$ADDR" -seed 1 -shed-min-samples 1 -byte-cache 0 -state-file "$STATE" -slow-trace 1ms >"$TMP/netserve.log" 2>&1 &
PID=$!

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: netserve died before becoming healthy" >&2
    cat "$TMP/netserve.log" >&2
    exit 1
  fi
  sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null
# Readiness is distinct from liveness: boot restore has completed by the
# time the listener is up, so /readyz must be 200 while serving.
curl -fsS "http://$ADDR/readyz" >/dev/null || {
  echo "FAIL: /readyz not ready on a serving daemon" >&2; exit 1; }

plan() { curl -s -o "$1" -w '%{http_code}' -X POST -d "$2" "http://$ADDR/v1/plan"; }
# canon prints a response body with its per-request trace_id stripped:
# every response carries a unique ID, so byte-identity claims are about
# the canonical rendering modulo that one field.
canon() { sed 's/,"trace_id":"[0-9a-f]\{16\}"//' "$1"; }
same() { [ "$(canon "$1")" = "$(canon "$2")" ]; }

# Cold then warm request (the warm one seeds the shed path's histogram).
[ "$(plan "$TMP/cold.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
[ "$(plan "$TMP/warm.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
same "$TMP/cold.json" "$TMP/warm.json" || {
  echo "FAIL: repeated identical request returned a different body" >&2; exit 1; }

# Concurrent identical burst: exercises the coalesce/batch machinery
# under real sockets; bodies must stay byte-identical to the first.
pids=()
for i in $(seq 1 16); do
  plan "$TMP/burst.$i.json" '{"network":"ResNet-50","deadline_ms":0.9}' >"$TMP/burst.$i.code" &
  pids+=("$!")
done
for p in "${pids[@]}"; do wait "$p"; done
for i in $(seq 1 16); do
  [ "$(cat "$TMP/burst.$i.code")" = 200 ] || { echo "FAIL: burst request $i failed" >&2; exit 1; }
  same "$TMP/burst.$i.json" "$TMP/cold.json" || {
    echo "FAIL: burst body $i diverged" >&2; exit 1; }
done

# Device fleet: /v1/devices lists the registry with the default first,
# an explicit target plans on that device, and "auto" routes to a
# registered device whose explicit spelling returns identical bytes.
curl -fsS "http://$ADDR/v1/devices" >"$TMP/devices.json"
python3 - "$TMP/devices.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))["devices"]
assert len(d) >= 4, f"only {len(d)} devices registered"
assert d[0]["name"] == "sim-xavier" and d[0]["default"], d[0]
assert all(x["healthy"] for x in d), "a fresh fleet reports an unhealthy device"
names = {x["name"] for x in d}
assert {"sim-xavier", "sim-edge-cpu", "sim-server-gpu", "sim-int8-accel"} <= names, names
PY

[ "$(plan "$TMP/gpu.json" '{"network":"ResNet-50","deadline_ms":0.9,"target":"sim-server-gpu"}')" = 200 ]
grep -q '"device":"sim-server-gpu"' "$TMP/gpu.json"
same "$TMP/gpu.json" "$TMP/cold.json" && {
  echo "FAIL: two targets returned identical bodies" >&2; exit 1; }

[ "$(plan "$TMP/auto.json" '{"network":"ResNet-50","deadline_ms":0.9,"target":"auto"}')" = 200 ]
AUTO_DEV="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["device"])' "$TMP/auto.json")"
[ "$(plan "$TMP/auto_explicit.json" "{\"network\":\"ResNet-50\",\"deadline_ms\":0.9,\"target\":\"$AUTO_DEV\"}")" = 200 ]
same "$TMP/auto.json" "$TMP/auto_explicit.json" || {
  echo "FAIL: auto-routed body diverged from explicit target $AUTO_DEV" >&2; exit 1; }

# Unknown target is a structured 400.
[ "$(plan "$TMP/unknown_dev.json" '{"network":"ResNet-50","target":"sim-quantum"}')" = 400 ]
grep -q '"code":"unknown_device"' "$TMP/unknown_dev.json"

# Shed path: a budget below the warm p99 must be rejected up front.
[ "$(plan "$TMP/shed.json" '{"network":"ResNet-50","deadline_ms":0.9,"budget_ms":0.000001}')" = 429 ]
grep -q '"code":"budget_too_small"' "$TMP/shed.json"

# Decode boundary: malformed JSON is a structured 400.
[ "$(plan "$TMP/bad.json" 'not json')" = 400 ]
grep -q '"code":"invalid_json"' "$TMP/bad.json"

# Observability surface.
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics"
for series in \
  netcut_gateway_requests_total \
  netcut_gateway_coalesced_total \
  netcut_gateway_shed_budget_total \
  netcut_gateway_queue_depth \
  netcut_planner_executions_total \
  netcut_planner_warm_ms_count \
  netcut_device_plans_hits_total \
  netcut_profiler_measurements_hits_total \
  netcut_trim_cuts_entries; do
  grep -q "^${series}" "$TMP/metrics" || {
    echo "FAIL: /metrics missing ${series}" >&2; exit 1; }
done
grep -Eq '^netcut_gateway_shed_budget_total [1-9]' "$TMP/metrics" || {
  echo "FAIL: shed counter did not move" >&2; exit 1; }

# Per-device series: executions, cache and latency series carry a
# device label, and the explicitly targeted GPU moved its own counter.
grep -Eq '^netcut_planner_executions_total\{device="sim-xavier"\} [1-9]' "$TMP/metrics" || {
  echo "FAIL: /metrics missing device-labeled executions for sim-xavier" >&2; exit 1; }
grep -Eq '^netcut_planner_executions_total\{device="sim-server-gpu"\} [1-9]' "$TMP/metrics" || {
  echo "FAIL: /metrics missing device-labeled executions for sim-server-gpu" >&2; exit 1; }
grep -q 'netcut_device_plans_entries{device="sim-server-gpu"}' "$TMP/metrics" || {
  echo "FAIL: /metrics missing device-labeled plan-cache series" >&2; exit 1; }
grep -q 'netcut_planner_warm_ms_count{device="sim-xavier"}' "$TMP/metrics" || {
  echo "FAIL: /metrics missing device-labeled warm latency series" >&2; exit 1; }

curl -fsS "http://$ADDR/debug/stats" >"$TMP/stats.json"
python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); assert "metrics" in d and "planner" in d' "$TMP/stats.json"

# Request tracing, end to end: a fresh request's response names its
# trace in the X-Netcut-Trace header and the body's trace_id field;
# fetching that ID from /debug/trace returns the per-stage timeline
# with queue-wait and execution as separate spans.
curl -s -D "$TMP/trace.hdr" -o "$TMP/trace.json" -X POST \
  -d '{"network":"ResNet-50","deadline_ms":0.9}' "http://$ADDR/v1/plan" >/dev/null
TRACE_ID="$(tr -d '\r' <"$TMP/trace.hdr" | awk -F': ' 'tolower($1)=="x-netcut-trace"{print $2}')"
echo "$TRACE_ID" | grep -Eq '^[0-9a-f]{16}$' || {
  echo "FAIL: X-Netcut-Trace header is not a 16-hex trace ID: '$TRACE_ID'" >&2; exit 1; }
grep -q "\"trace_id\":\"$TRACE_ID\"" "$TMP/trace.json" || {
  echo "FAIL: response body trace_id does not match the X-Netcut-Trace header" >&2; exit 1; }
curl -fsS "http://$ADDR/debug/trace?id=$TRACE_ID" >"$TMP/traced.json"
python3 - "$TMP/traced.json" "$TRACE_ID" <<'PY'
import json, sys
traces = json.load(open(sys.argv[1]))["traces"]
assert len(traces) == 1, f"lookup by id returned {len(traces)} traces"
t = traces[0]
assert t["trace_id"] == sys.argv[2] and t["done"] and t["status"] == 200, t
spans = {s["stage"]: s for s in t["spans"]}
for stage in ("decode", "drain", "quarantine", "route", "health",
              "bytecache", "coalesce", "shed", "enqueue",
              "queue_wait", "exec", "deliver"):
    assert stage in spans, f"trace missing {stage} span: {sorted(spans)}"
assert spans["queue_wait"]["start_ms"] <= spans["exec"]["start_ms"], \
    "queue_wait does not precede exec"
assert t["dur_ms"] > 0
PY
# The in-flight dump responds (usually empty between requests).
curl -fsS "http://$ADDR/debug/requests" >"$TMP/inflight.json"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))["requests"]' "$TMP/inflight.json"
# The first (cold, multi-ms) request crossed the -slow-trace 1ms
# threshold, so the structured slow-request log fired.
grep -q '"msg":"slow request"\|msg="slow request"\|slow request' "$TMP/netserve.log" || {
  echo "FAIL: no slow-request log line despite -slow-trace 1ms and a cold plan" >&2
  cat "$TMP/netserve.log" >&2; exit 1; }

# Metrics lint: every netcut_ family the daemon exports must be
# documented in the README's Observability catalogue.
grep -oE '^netcut_[a-z0-9_]+' "$TMP/metrics" | sed -E 's/_(bucket|sum|count)$//' | sort -u >"$TMP/families"
while read -r fam; do
  grep -q "$fam" README.md || {
    echo "FAIL: metric family $fam is exported but not catalogued in README.md" >&2; exit 1; }
done <"$TMP/families"

# On-demand state save: the admin endpoint writes a well-formed binary
# snapshot — magic prefix, schema version byte 2, and at least one
# section frame past the 21-byte envelope header.
SAVE_CODE="$(curl -s -o "$TMP/save.json" -w '%{http_code}' -X POST "http://$ADDR/v1/state/save")"
[ "$SAVE_CODE" = 200 ] || { echo "FAIL: /v1/state/save returned $SAVE_CODE" >&2; exit 1; }
python3 - "$STATE" <<'PY'
import sys
raw = open(sys.argv[1], "rb").read()
assert raw[:12] == b"netcut-state", raw[:12]
assert raw[12] == 2, f"schema version byte {raw[12]}"
assert len(raw) > 21, f"envelope with no sections ({len(raw)} bytes)"
PY

# Graceful drain: SIGTERM must exit 0 (and persist the warm state).
kill -TERM "$PID"
if wait "$PID"; then
  echo "netserve drained cleanly"
else
  code=$?
  echo "FAIL: netserve exited $code after SIGTERM" >&2
  cat "$TMP/netserve.log" >&2
  exit 1
fi
PID=""
grep -q "saved warm state to $STATE" "$TMP/netserve.log" || {
  echo "FAIL: drain did not save the state file" >&2; cat "$TMP/netserve.log" >&2; exit 1; }

# Restart from the snapshot: the first request of the new process must
# run on the warm path — byte-identical body, warm counter moves, cold
# counter stays 0.
"$BIN" -addr "$ADDR" -seed 1 -shed-min-samples 1 -state-file "$STATE" >"$TMP/netserve2.log" 2>&1 &
PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: restarted netserve died before becoming healthy" >&2
    cat "$TMP/netserve2.log" >&2
    exit 1
  fi
  sleep 0.2
done
grep -q "restored warm state from $STATE" "$TMP/netserve2.log" || {
  echo "FAIL: restart did not restore the state file" >&2; cat "$TMP/netserve2.log" >&2; exit 1; }
grep -Eq "restored warm state from $STATE in [0-9]+\.[0-9]ms" "$TMP/netserve2.log" || {
  echo "FAIL: restore log line does not report the restore duration" >&2
  grep "restored warm state" "$TMP/netserve2.log" >&2; exit 1; }

[ "$(plan "$TMP/restored.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
same "$TMP/restored.json" "$TMP/cold.json" || {
  echo "FAIL: post-restart body diverged from pre-restart body" >&2; exit 1; }

curl -fsS "http://$ADDR/metrics" >"$TMP/metrics2"
grep -Eq '^netcut_planner_warm_ms_count\{device="sim-xavier"\} [1-9]' "$TMP/metrics2" || {
  echo "FAIL: post-restart request did not land in the warm histogram" >&2; exit 1; }
grep -Eq '^netcut_planner_cold_ms_count\{device="sim-xavier"\} 0$' "$TMP/metrics2" || {
  echo "FAIL: post-restart request executed cold despite the restored state" >&2
  grep '^netcut_planner_cold_ms_count' "$TMP/metrics2" >&2; exit 1; }

kill -TERM "$PID"
if wait "$PID"; then
  echo "restarted netserve drained cleanly"
else
  code=$?
  echo "FAIL: restarted netserve exited $code after SIGTERM" >&2
  cat "$TMP/netserve2.log" >&2
  exit 1
fi
PID=""

# Crash leg: autosave + kill -9 + corrupted primary. The daemon
# autosaves on a short cadence; after two generations exist (primary and
# .bak) it is killed hard mid-life, the primary snapshot is stomped, and
# the restart must fall back to the .bak generation and serve its first
# request warm.
STATE2="$TMP/crash-state.bin"
"$BIN" -addr "$ADDR" -seed 1 -shed-min-samples 1 -state-file "$STATE2" -autosave 300ms >"$TMP/netserve3.log" 2>&1 &
PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: autosaving netserve died before becoming healthy" >&2
    cat "$TMP/netserve3.log" >&2
    exit 1
  fi
  sleep 0.2
done

[ "$(plan "$TMP/crash.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
[ "$(plan "$TMP/crash2.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
same "$TMP/crash.json" "$TMP/crash2.json"

# Wait for a .bak generation written after the traffic above: .bak is
# the previous save, so only a .bak newer than this marker is guaranteed
# to contain the ResNet-50 measurements.
touch "$TMP/after-traffic"
sleep 0.01
for _ in $(seq 1 100); do
  [ -f "$STATE2.bak" ] && [ "$STATE2.bak" -nt "$TMP/after-traffic" ] && break
  sleep 0.2
done
[ -f "$STATE2.bak" ] && [ "$STATE2.bak" -nt "$TMP/after-traffic" ] || {
  echo "FAIL: autosave never produced a post-traffic .bak generation" >&2
  cat "$TMP/netserve3.log" >&2; exit 1; }

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# Simulate the torn write a crash can leave: the primary is garbage, so
# recovery must come from the previous-good .bak.
printf 'torn-by-crash' >"$STATE2"

"$BIN" -addr "$ADDR" -seed 1 -shed-min-samples 1 -state-file "$STATE2" >"$TMP/netserve4.log" 2>&1 &
PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: post-crash netserve died before becoming healthy" >&2
    cat "$TMP/netserve4.log" >&2
    exit 1
  fi
  sleep 0.2
done
grep -q "restored warm state from $STATE2.bak" "$TMP/netserve4.log" || {
  echo "FAIL: post-crash restart did not fall back to the .bak snapshot" >&2
  cat "$TMP/netserve4.log" >&2; exit 1; }

[ "$(plan "$TMP/recovered.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
same "$TMP/recovered.json" "$TMP/crash.json" || {
  echo "FAIL: post-crash body diverged from pre-crash body" >&2; exit 1; }
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics3"
grep -Eq '^netcut_planner_cold_ms_count\{device="sim-xavier"\} 0$' "$TMP/metrics3" || {
  echo "FAIL: post-crash first request executed cold despite the .bak restore" >&2
  grep '^netcut_planner_cold_ms_count' "$TMP/metrics3" >&2; exit 1; }

kill -TERM "$PID"
if wait "$PID"; then
  echo "post-crash netserve drained cleanly"
else
  code=$?
  echo "FAIL: post-crash netserve exited $code after SIGTERM" >&2
  cat "$TMP/netserve4.log" >&2
  exit 1
fi
PID=""

# Byte-cache leg: a default-configuration daemon (cache on) must serve
# the second of two identical requests from the rendered-response cache
# — the hit counter moves and the body stays byte-identical.
"$BIN" -addr "$ADDR" -seed 1 >"$TMP/netserve5.log" 2>&1 &
PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: byte-cache netserve died before becoming healthy" >&2
    cat "$TMP/netserve5.log" >&2
    exit 1
  fi
  sleep 0.2
done

[ "$(plan "$TMP/bc1.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
[ "$(plan "$TMP/bc2.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
same "$TMP/bc1.json" "$TMP/bc2.json" || {
  echo "FAIL: byte-cache hit body diverged from the executed body" >&2; exit 1; }
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics4"
grep -Eq '^netcut_gateway_bytecache_hits_total [1-9]' "$TMP/metrics4" || {
  echo "FAIL: second identical request was not a bytecache hit" >&2
  grep '^netcut_gateway_bytecache' "$TMP/metrics4" >&2; exit 1; }
grep -Eq '^netcut_gateway_bytecache_misses_total [1-9]' "$TMP/metrics4" || {
  echo "FAIL: bytecache miss counter did not move" >&2; exit 1; }

kill -TERM "$PID"
if wait "$PID"; then
  echo "byte-cache netserve drained cleanly"
else
  code=$?
  echo "FAIL: byte-cache netserve exited $code after SIGTERM" >&2
  cat "$TMP/netserve5.log" >&2
  exit 1
fi
PID=""

# Overload leg: a tiny-capacity daemon (one lane worker, queue depth
# 4, fast controller ticks, and a deliberately huge 250ms batch
# window) is flooded by more concurrent posters than one open pass
# can absorb. The window makes the backlog independent of how fast
# the warm planner is on this host: the lone worker holds each pass
# open for the full window once arrivals stop filling it, absorbing
# at most BatchMax (16) requests per 250ms, so with ~24 posters the
# 4-slot queue sits full for most of every window and the 50ms
# controller ticks observe it. The load level must rise, rejections
# must be structured 429s carrying a backlog-honest Retry-After,
# byte-cache hits must keep serving through the overload, and the
# level must return to 0 once the flood stops — before a clean
# SIGTERM drain. (The ladder flaps by design: emergency sheds the
# inflow, the queue drains, the level falls, and admission resumes —
# the poll below only needs to observe one elevated sample.)
"$BIN" -addr "$ADDR" -seed 1 -devices sim-xavier -queue 4 -workers 1 -shed-min-samples 1 -overload-interval 50ms -batch-window 250ms >"$TMP/netserve6.log" 2>&1 &
PID=$!
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  if ! kill -0 "$PID" 2>/dev/null; then
    echo "FAIL: overload netserve died before becoming healthy" >&2
    cat "$TMP/netserve6.log" >&2
    exit 1
  fi
  sleep 0.2
done

# One identity warmed into the byte cache before the storm.
[ "$(plan "$TMP/ov_hit.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]

# Sustained flood: 24 parallel posters, each cycling unique deadlines
# (every deadline is a distinct response identity, so every request is
# a cold miss competing for the open pass and the 4-slot lane queue).
rm -f "$TMP/ov_stop"
ovpids=()
for w in $(seq 1 24); do
  (
    i=0
    while [ ! -f "$TMP/ov_stop" ] && [ "$i" -lt 500 ]; do
      i=$((i + 1))
      curl -s -o /dev/null -w '%{http_code}\n' -X POST \
        -d "{\"network\":\"ResNet-50\",\"deadline_ms\":0.${w}$((100 + i))}" \
        "http://$ADDR/v1/plan" >>"$TMP/ov_codes.$w" 2>/dev/null || true
    done
  ) &
  ovpids+=("$!")
done

# The controller must publish a non-zero load level under the flood.
LEVEL_SEEN=0
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/metrics" 2>/dev/null | grep -Eq '^netcut_gateway_load_level [12]'; then
    LEVEL_SEEN=1
    break
  fi
  sleep 0.1
done
[ "$LEVEL_SEEN" = 1 ] || {
  echo "FAIL: load level never rose under the flood" >&2
  touch "$TMP/ov_stop"; cat "$TMP/netserve6.log" >&2; exit 1; }

# A byte-cache hit keeps serving through the overload.
[ "$(plan "$TMP/ov_hit2.json" '{"network":"ResNet-50","deadline_ms":0.9}')" = 200 ]
same "$TMP/ov_hit.json" "$TMP/ov_hit2.json" || {
  echo "FAIL: byte-cache hit body diverged under overload" >&2; exit 1; }

# Probe the shed path directly: retry until a rejection lands (the
# queue empties between waves), then require a structured 429 with a
# backlog-honest Retry-After header and hint.
SHED_OK=0
for i in $(seq 1 50); do
  CODE="$(curl -s -D "$TMP/ov_shed.hdr" -o "$TMP/ov_shed.json" -w '%{http_code}' -X POST \
    -d "{\"network\":\"ResNet-50\",\"deadline_ms\":0.8$((900 + i))}" "http://$ADDR/v1/plan")"
  if [ "$CODE" = 429 ]; then
    grep -Eq '"code":"(queue_full|overload_shed)"' "$TMP/ov_shed.json" || {
      echo "FAIL: overload 429 carried unexpected code" >&2; cat "$TMP/ov_shed.json" >&2; exit 1; }
    grep -Eq '"retry_after_ms":[0-9.]+' "$TMP/ov_shed.json" || {
      echo "FAIL: overload 429 body carries no retry_after_ms hint" >&2; cat "$TMP/ov_shed.json" >&2; exit 1; }
    tr -d '\r' <"$TMP/ov_shed.hdr" | grep -iq '^retry-after: [0-9]' || {
      echo "FAIL: overload 429 missing Retry-After header" >&2; cat "$TMP/ov_shed.hdr" >&2; exit 1; }
    SHED_OK=1
    break
  fi
done
[ "$SHED_OK" = 1 ] || { echo "FAIL: flood never produced a 429" >&2; touch "$TMP/ov_stop"; exit 1; }

# Flood off: the level must return to 0 (the ladder has no hysteresis)
# and the transition counter must have moved.
touch "$TMP/ov_stop"
for p in "${ovpids[@]}"; do wait "$p" 2>/dev/null || true; done
LEVEL_ZERO=0
for _ in $(seq 1 100); do
  if curl -fsS "http://$ADDR/metrics" 2>/dev/null | grep -Eq '^netcut_gateway_load_level 0'; then
    LEVEL_ZERO=1
    break
  fi
  sleep 0.1
done
[ "$LEVEL_ZERO" = 1 ] || {
  echo "FAIL: load level did not return to 0 after the flood stopped" >&2
  curl -fsS "http://$ADDR/metrics" | grep '^netcut_gateway_load' >&2 || true
  exit 1; }
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics5"
grep -Eq '^netcut_gateway_load_transitions_total [1-9]' "$TMP/metrics5" || {
  echo "FAIL: load-level transitions were not counted" >&2; exit 1; }
grep -Eq '^netcut_gateway_lane_concurrency\{device="sim-xavier"\} [1-9]' "$TMP/metrics5" || {
  echo "FAIL: /metrics missing the per-lane AIMD concurrency gauge" >&2; exit 1; }

kill -TERM "$PID"
if wait "$PID"; then
  echo "overload netserve drained cleanly"
else
  code=$?
  echo "FAIL: overload netserve exited $code after SIGTERM" >&2
  cat "$TMP/netserve6.log" >&2
  exit 1
fi
PID=""

echo "gateway smoke OK"
