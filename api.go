package netcut

import (
	"fmt"
	"sync"

	"netcut/internal/core"
	"netcut/internal/device"
	"netcut/internal/estimate"
	"netcut/internal/exp"
	"netcut/internal/gateway"
	"netcut/internal/graph"
	"netcut/internal/pareto"
	"netcut/internal/profiler"
	"netcut/internal/serve"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// Re-exported core types, so downstream users need only this package
// for the common flows.
type (
	// Graph is a network as a layer graph. Graphs are immutable once
	// built: the measurement and planning layers memoize per graph
	// structure, so mutating a Graph's fields after passing it to any
	// function in this package yields stale cached results.
	Graph = graph.Graph
	// TRN is a trimmed network.
	TRN = trim.TRN
	// HeadSpec describes the replacement transfer-learning head.
	HeadSpec = trim.HeadSpec
	// Result is a full NetCut exploration run.
	Result = core.Result
	// Proposal is one deadline-feasible TRN.
	Proposal = core.Proposal
	// DeviceConfig parameterizes the simulated embedded GPU.
	DeviceConfig = device.Config
	// Point is a latency/accuracy point for Pareto analysis.
	Point = pareto.Point
)

// DefaultHead is the paper's replacement head (GAP + 2 FC/ReLU +
// FC/Softmax over 5 grasp classes).
var DefaultHead = trim.DefaultHead

// Networks returns the seven networks of the paper's study.
func Networks() []*Graph { return zoo.Paper7() }

// NetworkNames lists the canonical network names, fastest first.
func NetworkNames() []string { return append([]string(nil), zoo.Names...) }

// NetworkByName builds one of the paper's networks by name.
func NetworkByName(name string) (*Graph, error) { return zoo.ByName(name) }

// XavierConfig returns the calibrated embedded-GPU simulation standing
// in for the paper's Jetson Xavier.
func XavierConfig() DeviceConfig { return device.Xavier() }

// DeviceProfiles returns the registered target calibrations in
// canonical order — Xavier (the default) first, then the fleet
// profiles (edge CPU, server GPU, INT8 accelerator). This is the
// device set a zero-config Gateway serves and the order "auto"
// routing tie-breaks on.
func DeviceProfiles() []DeviceConfig { return device.Profiles() }

// DeviceProfileNames lists the registered profile names in canonical
// order.
func DeviceProfileNames() []string { return device.ProfileNames() }

// DeviceProfileByName returns the registered calibration with the
// given name.
func DeviceProfileByName(name string) (DeviceConfig, error) { return device.ProfileByName(name) }

// EstimatorKind selects the latency estimator NetCut explores with.
type EstimatorKind string

const (
	// ProfilerEstimator is the per-layer-table Eq. (1) estimator.
	ProfilerEstimator EstimatorKind = "profiler"
	// AnalyticalEstimator is the epsilon-SVR over device-agnostic
	// features.
	AnalyticalEstimator EstimatorKind = "analytical"
	// LinearEstimator is the OLS baseline (for ablations).
	LinearEstimator EstimatorKind = "linear"
)

// Options configures a NetCut run.
type Options struct {
	// DeadlineMs is the application deadline; 0 means the prosthetic
	// hand's 0.9 ms.
	DeadlineMs float64
	// Estimator defaults to ProfilerEstimator.
	Estimator EstimatorKind
	// Seed fixes measurement and retraining noise; 0 is a valid seed.
	Seed int64
	// Device overrides the simulated device; nil uses XavierConfig.
	Device *DeviceConfig
	// Head overrides the replacement head; zero value uses DefaultHead.
	Head HeadSpec
}

// Selection is the outcome of Select: the most accurate network meeting
// the deadline.
type Selection struct {
	// Network is the paper-style TRN label, e.g. "ResNet-50/104".
	Network string
	// Parent is the off-the-shelf network the TRN was cut from.
	Parent string
	// BlocksRemoved and LayersRemoved describe the cut.
	BlocksRemoved int
	LayersRemoved int
	// EstimatedMs is the estimator's latency; MeasuredMs the simulated
	// ground truth.
	EstimatedMs float64
	MeasuredMs  float64
	// Accuracy is the retrained angular-similarity accuracy.
	Accuracy float64
	// Result carries the full exploration run.
	Result *Result
}

// Select runs the complete NetCut pipeline — profile the zoo on the
// device, train the chosen estimator, run Algorithm 1 — and returns the
// highest-accuracy network meeting the deadline.
func Select(opts Options) (*Selection, error) {
	lab, est, err := buildLab(opts)
	if err != nil {
		return nil, err
	}
	res, err := lab.Explore(est)
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, fmt.Errorf("netcut: no network can meet %.3f ms (deepest cuts still too slow)", lab.Deadline())
	}
	best := res.Best
	return &Selection{
		Network:       best.TRN.Name(),
		Parent:        best.TRN.Parent.Name,
		BlocksRemoved: best.Cutpoint,
		LayersRemoved: best.TRN.LayersRemoved,
		EstimatedMs:   best.EstimateMs,
		MeasuredMs:    lab.Device().LatencyMs(best.TRN.Graph),
		Accuracy:      best.Accuracy,
		Result:        res,
	}, nil
}

// Explore runs Algorithm 1 and returns the full run (one proposal per
// network) without reducing it to a single selection.
func Explore(opts Options) (*Result, error) {
	lab, est, err := buildLab(opts)
	if err != nil {
		return nil, err
	}
	return lab.Explore(est)
}

// NewLab exposes the full experiment harness (figure and table
// generators) used by cmd/netexp and the benchmarks.
func NewLab(cfg exp.Config) (*exp.Lab, error) { return exp.NewLab(cfg) }

// LabConfig is the experiment-harness configuration.
type LabConfig = exp.Config

func buildLab(opts Options) (*exp.Lab, estimate.Estimator, error) {
	cfg := exp.Config{
		Seed:       opts.Seed,
		DeadlineMs: opts.DeadlineMs,
		Device:     opts.Device,
		Head:       opts.Head,
	}
	lab, err := exp.NewLab(cfg)
	if err != nil {
		return nil, nil, err
	}
	var est estimate.Estimator
	switch opts.Estimator {
	case "", ProfilerEstimator:
		est = lab.ProfilerEstimator()
	case AnalyticalEstimator:
		est, err = lab.AnalyticalEstimator()
	case LinearEstimator:
		est, err = lab.LinearEstimator()
	default:
		return nil, nil, fmt.Errorf("netcut: unknown estimator %q", opts.Estimator)
	}
	if err != nil {
		return nil, nil, err
	}
	return lab, est, nil
}

// defaultDevice is the shared calibrated device behind the
// package-level measurement helpers. Sharing one device (rather than
// building one per call) keeps its kernel-plan cache warm across calls:
// repeated MeasureMs/ProfileTable queries for the same network hit the
// memoized plan instead of re-running the fusion pass and roofline.
var defaultDevice = sync.OnceValue(func() *device.Device {
	return device.New(device.Xavier())
})

// MeasureMs reports the simulated steady-state latency of any graph on
// the calibrated device. g must not be mutated afterwards (see Graph).
func MeasureMs(g *Graph) float64 {
	return defaultDevice().LatencyMs(g)
}

// ProfileTable measures the per-layer latency table of a network under
// the paper's 200/800 protocol. g must not be mutated afterwards (see
// Graph).
func ProfileTable(g *Graph, seed int64) (*profiler.Table, error) {
	p, err := profiler.New(defaultDevice(), profiler.PaperProtocol(), seed)
	if err != nil {
		return nil, err
	}
	return p.Profile(g), nil
}

// Cut removes the last blocks of a network and attaches the replacement
// head, returning the TRN.
func Cut(g *Graph, blocks int, head HeadSpec) (*TRN, error) {
	return trim.Cut(g, blocks, head)
}

// BlockwiseTRNs enumerates a network's blockwise TRN family
// (cutpoints 1..BlockCount).
func BlockwiseTRNs(g *Graph, head HeadSpec) ([]*TRN, error) {
	return trim.EnumerateBlockwise(g, head, false)
}

// Frontier extracts the Pareto-optimal subset of latency/accuracy
// points.
func Frontier(points []Point) []Point { return pareto.Frontier(points) }

// Planner is the long-lived, concurrency-safe planning service: one
// Planner accepts Select-style requests from many goroutines, shares a
// single device/profiler/retraining simulator across all of them, and
// keeps every structure-keyed cache bounded so a stream of arbitrary
// user graphs plans in constant memory. Responses are pure functions of
// (PlannerConfig, PlanRequest): concurrency and cache eviction change
// wall-clock time only, never results. SaveState/LoadState snapshot and
// restore the warm caches across process restarts (versioned format,
// identity-matched; see internal/persist) — a restored Planner answers
// byte-identically to the freshly warmed one that wrote the snapshot.
type (
	Planner = serve.Planner
	// PlannerConfig parameterizes a Planner: seed, device, protocol,
	// head, and the LRU caps of the shared caches (0 = package default,
	// negative = unbounded).
	PlannerConfig = serve.Config
	// PlanRequest is one planning request: graph + deadline + estimator
	// kind ("profiler", "analytical" or "linear").
	PlanRequest = serve.Request
	// PlanResponse is the planning outcome: the highest-accuracy cut
	// meeting the deadline, or Feasible == false.
	PlanResponse = serve.Response
	// PlannerStats snapshots the planner's request and cache counters.
	PlannerStats = serve.Stats
)

// NewPlanner builds the planning service. Unlike Select — which builds
// a fresh Lab per call — a Planner amortizes profiling across requests:
// repeated or structurally identical graphs are cache hits end to end,
// and its proposals are byte-identical to single-use Select for the
// same seed.
func NewPlanner(cfg PlannerConfig) (*Planner, error) { return serve.New(cfg) }

// PlannerPool is the multi-target planning service: one Planner per
// registered device calibration behind a single façade, with
// device-isolated caches (plan keys, measurement/table memos and
// cut-cache entries all fold in the device-calibration fingerprint, so
// no two targets share an entry) and pool-wide cache bounds (the
// configured caps are divided across targets, never multiplied by
// them). Responses are byte-identical to a single-device Planner built
// with the same seed and calibration.
type (
	PlannerPool = serve.PlannerPool
	// PoolConfig parameterizes a PlannerPool: the per-planner template
	// plus the target calibrations (empty = the full device registry).
	PoolConfig = serve.PoolConfig
)

// NewPlannerPool builds one Planner per registered device. An invalid
// device profile is a structured constructor error naming the device,
// never a panic.
func NewPlannerPool(cfg PoolConfig) (*PlannerPool, error) { return serve.NewPool(cfg) }

// Gateway is the deadline-aware HTTP serving layer on top of a
// PlannerPool: a JSON planning API (POST /v1/plan) with per-request
// device targeting ("target": a registered device name, "auto", or
// empty for the default device; GET /v1/devices lists the fleet),
// singleflight coalescing of identical requests, batch admission of
// compatible ones, a bounded rendered-response byte cache (repeat
// requests are answered with the previously rendered body straight
// from admission — after the drain, quarantine and device-health
// gates, before any queueing; GatewayConfig.ByteCacheCap, on by
// default at DefaultByteCacheCap entries, negative disables),
// per-device worker lanes (one bounded queue + workers
// per target, so a cold plan on one device never head-of-line-blocks
// another's warm traffic), load shedding keyed to the client's own
// latency budget, graceful drain, warm-state snapshot/restore
// (SaveState/LoadState, POST /v1/state/save via GatewayConfig.StatePath)
// with background zoo prewarming (Prewarm), and a telemetry registry
// exposed at /metrics (Prometheus text, per-device series carry a
// device label) and /debug/stats (JSON). Routing, coalescing, batching,
// caching and shedding change which executions happen, where and when —
// never what any request returns: a coalesced, batched or byte-cached
// response body is byte-identical to the same request served alone
// through that device's Planner, and an auto-routed body to the same
// request naming the resolved device explicitly.
//
// Faults are contained rather than propagated: planner-pass panics are
// recovered per request (innocent batchmates are retried solo with
// byte-identical results, repeat offenders quarantined), disconnected
// clients have queued work cancelled before execution, an optional
// watchdog (GatewayConfig.ExecTimeout) abandons stuck passes with a
// 504, repeatedly faulting devices leave rotation until a background
// probe restores them, and GatewayConfig.AutosaveInterval snapshots
// the warm state crash-safely (atomic rename plus a previous-good .bak
// generation that LoadStateFile falls back to). GET /readyz reports
// readiness (flip it with MarkReady after boot restore), distinct from
// /healthz liveness. Every 429/503 rejection carries a Retry-After
// header. See the package comment's "Fault tolerance & degradation"
// section.
//
// Under sustained pressure the gateway degrades instead of failing
// binary: a closed-loop overload controller
// (GatewayConfig.OverloadInterval) samples lane backlog, observed
// latency drift and — with GatewayConfig.HeapLimitBytes — heap/GC
// pressure into a load level (0 normal, 1 brownout, 2 emergency;
// netcut_gateway_load_level, Gateway.LoadLevel) that sheds optional
// work level by level: prewarming pauses, the batch window shrinks,
// trace-ring retention is sampled, and at level 2 only byte-cache hits
// and coalesce joins are admitted while cold misses are shed
// pre-execution with backlog-honest Retry-After hints. Per-lane
// execution concurrency adapts by AIMD between 1 and the configured
// workers. Requests that prefer a degraded answer over a rejection set
// "allow_degraded": true in the body: a budget-infeasible or
// unhealthy-device request then falls back deterministically to the
// fastest healthy device and returns its plan with "degraded": true
// and a "degraded_reason" ("budget_infeasible" or "unhealthy_device")
// spliced in at write time — the body is byte-identical to the
// explicit spelling of the fallback target modulo trace_id and those
// markers (strip them with StripDegraded / StripTraceID).
// See the gateway package comment's "Overload" section.
//
// Every request is traced: the response carries the trace ID in the
// X-Netcut-Trace header and the trace_id body field (the only byte
// tracing adds — everything else is observability-only), completed
// traces are served from a bounded ring at GET /debug/trace
// (GatewayConfig.TraceRingCap, DefaultTraceRingCap when 0), in-flight
// ones at GET /debug/requests, per-stage latencies feed the
// netcut_gateway_stage_ms histograms, requests slower than
// GatewayConfig.SlowTraceMs log one structured line, and
// GatewayConfig.Pprof mounts net/http/pprof under /debug/pprof/. See
// the package comment's "Observability" section for the catalogue.
type (
	Gateway = gateway.Gateway
	// GatewayConfig parameterizes a Gateway: the embedded PlannerConfig
	// template and device list plus the HTTP-side knobs (body size
	// limit, queue depth, batch width and window, worker count, shed
	// warm-up, watchdog and autosave intervals, health thresholds).
	GatewayConfig = gateway.Config
)

// DefaultByteCacheCap is the entry bound of the gateway's
// rendered-response byte cache when GatewayConfig.ByteCacheCap is 0;
// negative disables the cache.
const DefaultByteCacheCap = gateway.DefaultByteCacheCap

// DefaultTraceRingCap is the completed-trace retention of GET
// /debug/trace when GatewayConfig.TraceRingCap is 0; negative disables
// the ring (requests are still traced for /metrics, the header and the
// slow-request log).
const DefaultTraceRingCap = gateway.DefaultTraceRingCap

// NewGateway builds the serving gateway and starts its batch workers.
// Mount Handler() on an http.Server and call Shutdown to drain:
//
//	gw, err := netcut.NewGateway(netcut.GatewayConfig{})
//	srv := &http.Server{Addr: ":8080", Handler: gw.Handler()}
//	... srv.ListenAndServe() ...
//	srv.Shutdown(ctx) // stop accepting, finish in-flight handlers
//	gw.Shutdown(ctx)  // drain the admission queue, stop workers
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return gateway.New(cfg) }

// StripTraceID removes the write-time-injected trace_id member from a
// response body, recovering the canonical rendering; StripDegraded
// does the same for the degraded/degraded_reason markers of an
// allow_degraded fallback. Together they recover the byte-identity
// invariant from any served body: two responses to the same resolved
// request are byte-identical after stripping both.
func StripTraceID(body []byte) []byte { return gateway.StripTraceID(body) }

// StripDegraded removes the degraded markers; see StripTraceID.
func StripDegraded(body []byte) []byte { return gateway.StripDegraded(body) }
