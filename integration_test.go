package netcut

import (
	"fmt"
	"math/rand"
	"testing"

	"netcut/internal/core"
	"netcut/internal/device"
	"netcut/internal/estimate"
	"netcut/internal/graph"
	"netcut/internal/hands"
	"netcut/internal/nn"
	"netcut/internal/profiler"
	"netcut/internal/trim"
)

// TestMiniNetCutEndToEnd runs the complete NetCut loop with nothing
// simulated about the networks: a small zoo of genuinely trained CNNs
// is lowered to the IR, measured on the device model, profiled into
// Eq. (1) tables, explored by Algorithm 1 at a deadline, and the
// proposed TRNs are genuinely retrained (transfer + fine-tune) and
// evaluated by angular similarity. This is the miniature, fully real
// counterpart of the paper-scale pipeline.
func TestMiniNetCutEndToEnd(t *testing.T) {
	const imgSize = 14
	type miniNet struct {
		name string
		cfg  nn.MiniConfig
		src  *nn.Model
		g    *graph.Graph
	}

	// A mini zoo spanning the paper's architecture flavours. Widths and
	// depths differ so their latencies spread like Fig. 1.
	zoo := []*miniNet{
		{name: "mini-mobile", cfg: nn.MiniConfig{
			InputH: imgSize, StemC: 6, Width: 8, Blocks: 3,
			Classes: hands.PretrainClasses, HeadHidden: 16, Kind: nn.MobileBlocks}},
		{name: "mini-resnet", cfg: nn.MiniConfig{
			InputH: imgSize, StemC: 8, Width: 12, Blocks: 4,
			Classes: hands.PretrainClasses, HeadHidden: 24, Kind: nn.ResidualBlocks}},
		{name: "mini-plain", cfg: nn.MiniConfig{
			InputH: imgSize, StemC: 10, Width: 16, Blocks: 5,
			Classes: hands.PretrainClasses, HeadHidden: 24, Kind: nn.PlainBlocks}},
	}

	// Pretrain each mini network on the shape task ("ImageNet").
	pretrain := hands.GeneratePretrain(hands.Config{N: 240, Size: imgSize, Seed: 1})
	for i, m := range zoo {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		src, err := nn.Build(m.cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nn.Train(src, pretrain, nn.TrainConfig{
			Epochs: 10, BatchSize: 24, Optimizer: nn.NewAdam(2e-3), Seed: int64(i + 10),
		}); err != nil {
			t.Fatal(err)
		}
		m.src = src
		g, err := nn.ToGraph(src, m.name, imgSize, imgSize, 1, hands.PretrainClasses)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.Validate(g); err != nil {
			t.Fatalf("%s IR invalid: %v", m.name, err)
		}
		if g.BlockCount() != m.cfg.Blocks {
			t.Fatalf("%s IR has %d blocks, want %d", m.name, g.BlockCount(), m.cfg.Blocks)
		}
		m.g = g
	}

	// Measure and profile the mini zoo on the simulated device.
	dev := device.New(device.Xavier())
	prof, err := profiler.New(dev, profiler.Protocol{WarmupRuns: 50, TimedRuns: 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tables := map[string]*profiler.Table{}
	var cands []core.Candidate
	grasps := hands.Generate(hands.Config{N: 150, Size: imgSize, Seed: 4})
	trainDS, valDS := hands.Split(grasps, 0.4, 5)
	byName := map[string]*miniNet{}
	for _, m := range zoo {
		byName[m.name] = m
		tables[m.name] = prof.Profile(m.g)
		// Transfer the uncut network to the grasp task for its
		// off-the-shelf accuracy (Algorithm 1 input).
		base, err := nn.CutModel(m.src, m.cfg, 0, hands.NumGrasps, rand.New(rand.NewSource(31)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nn.FineTuneLR(base, trainDS, 4, 8, 16, 32, 1e-3, 1e-3); err != nil {
			t.Fatal(err)
		}
		cands = append(cands, core.Candidate{
			Graph:      m.g,
			MeasuredMs: prof.Measure(m.g).MeanMs,
			Accuracy:   nn.Evaluate(base, valDS),
		})
	}

	// Pick a deadline under the two larger networks so Algorithm 1 must
	// actually cut.
	var maxLat, minLat float64
	for i, c := range cands {
		if i == 0 || c.MeasuredMs < minLat {
			minLat = c.MeasuredMs
		}
		if c.MeasuredMs > maxLat {
			maxLat = c.MeasuredMs
		}
	}
	deadline := minLat + 0.35*(maxLat-minLat)
	if deadline <= minLat {
		t.Fatalf("degenerate mini-zoo latency spread: %v", cands)
	}

	// The retrainer really retrains: cut the trained source model at
	// the proposed blockwise cutpoint and fine-tune on the grasp task.
	rt := core.RetrainerFunc(func(tr *trim.TRN) (core.TrainResult, error) {
		m, ok := byName[tr.Parent.Name]
		if !ok {
			return core.TrainResult{}, fmt.Errorf("unknown mini net %q", tr.Parent.Name)
		}
		trn, err := nn.CutModel(m.src, m.cfg, tr.Cutpoint, hands.NumGrasps,
			rand.New(rand.NewSource(int64(50+tr.Cutpoint))))
		if err != nil {
			return core.TrainResult{}, err
		}
		if _, err := nn.FineTuneLR(trn, trainDS, 4, 8, 16, int64(60+tr.Cutpoint), 1e-3, 1e-3); err != nil {
			return core.TrainResult{}, err
		}
		return core.TrainResult{Accuracy: nn.Evaluate(trn, valDS)}, nil
	})

	est := estimate.NewProfilerEstimator(tables)
	res, err := core.Explore(cands, deadline, est, rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatalf("mini NetCut found nothing under %.4f ms (candidates %+v)", deadline, cands)
	}
	if res.Best.EstimateMs > deadline {
		t.Fatalf("winner estimate %.4f over deadline %.4f", res.Best.EstimateMs, deadline)
	}
	// At least one network had to be cut for this deadline.
	cut := 0
	for _, p := range res.Proposals {
		if p.Cutpoint > 0 {
			cut++
		}
	}
	if cut == 0 {
		t.Fatalf("deadline %.4f required no cuts; latencies %+v", deadline, cands)
	}
	// The winner's retrained accuracy must be plausible (better than
	// uniform guessing by a clear margin).
	if res.Best.Accuracy < 0.6 {
		t.Fatalf("winner accuracy %.3f implausibly low", res.Best.Accuracy)
	}
	t.Logf("mini NetCut @ %.4f ms selected %s (accuracy %.3f, %d proposals cut)",
		deadline, res.Best.TRN.Name(), res.Best.Accuracy, cut)
}

// TestToGraphLatencyTracksModelSize checks the nn -> IR bridge: bigger
// mini networks must cost more simulated time.
func TestToGraphLatencyTracksModelSize(t *testing.T) {
	dev := device.New(device.Xavier())
	var prev float64
	for i, blocks := range []int{1, 3, 6} {
		rng := rand.New(rand.NewSource(int64(i)))
		m, err := nn.Build(nn.MiniConfig{InputH: 14, Width: 12, Blocks: blocks, Classes: 5}, rng)
		if err != nil {
			t.Fatal(err)
		}
		g, err := nn.ToGraph(m, fmt.Sprintf("m%d", blocks), 14, 14, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		lat := dev.LatencyMs(g)
		if lat <= prev {
			t.Fatalf("latency %.5f not increasing with %d blocks", lat, blocks)
		}
		prev = lat
	}
}
