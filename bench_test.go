package netcut

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netcut/internal/exp"
	"netcut/internal/gateway"
	"netcut/internal/graph"
	"netcut/internal/trim"
)

// gatewayGraphJSON renders g in the gateway's wire schema for request
// bodies.
func gatewayGraphJSON(b *testing.B, g *Graph) []byte {
	out, err := json.Marshal(gateway.EncodeGraph(g))
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// The benchmark harness regenerates every figure and table of the
// paper's evaluation under the paper's full 200-warm-up/800-run
// measurement protocol. Each benchmark prints its artefact's rows once,
// so `go test -bench=.` reproduces the series the paper reports.

var (
	benchLabOnce sync.Once
	benchLab     *exp.Lab
	benchLabErr  error
	printedMu    sync.Mutex
	printed      = map[string]bool{}
)

func getBenchLab(b *testing.B) *exp.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab, benchLabErr = exp.NewLab(exp.Config{Seed: 1})
	})
	if benchLabErr != nil {
		b.Fatal(benchLabErr)
	}
	return benchLab
}

// runFigure benches a generator and prints its output the first time.
func runFigure(b *testing.B, id string, gen func() (*exp.Figure, error)) {
	b.Helper()
	lab := getBenchLab(b)
	_ = lab
	var fig *exp.Figure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	b.StopTimer()
	printedMu.Lock()
	defer printedMu.Unlock()
	if !printed[id] {
		printed[id] = true
		if err := fig.Render(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
	if len(fig.Series) > 0 {
		b.ReportMetric(float64(fig.Series[0].Len()), "points")
	}
}

func BenchmarkFig01OffTheShelfTradeoff(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig1", lab.Fig1)
}

func BenchmarkFig04BlockVsExhaustive(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig4", lab.Fig4)
}

func BenchmarkFig05AccuracyVsRemoval(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig5", lab.Fig5)
}

func BenchmarkFig06TRNTradeoff(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig6", lab.Fig6)
}

func BenchmarkFig07ParetoFrontiers(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig7", lab.Fig7)
}

func BenchmarkFig08ResNetEstimation(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig8", lab.Fig8)
}

func BenchmarkFig09EstimationError(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig9", lab.Fig9)
}

func BenchmarkFig10FinalSelection(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "fig10", lab.Fig10)
}

func BenchmarkTab01ExplorationSpeedup(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "tab1", lab.Tab1)
}

func BenchmarkAblEstimatorChoice(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "abl-estimators", lab.AblEstimatorChoice)
}

func BenchmarkAblBlockGranularity(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "abl-block", lab.AblBlockGranularity)
}

func BenchmarkAblDeviceModes(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "abl-device", lab.AblDeviceModes)
}

func BenchmarkAblIterativeCost(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "abl-iterative", lab.AblIterativeCost)
}

func BenchmarkAblExtendedZoo(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "abl-extended", lab.AblExtendedZoo)
}

func BenchmarkAblEarlyExit(b *testing.B) {
	lab := getBenchLab(b)
	runFigure(b, "abl-earlyexit", lab.AblEarlyExit)
}

// BenchmarkSelectEndToEnd measures the full pipeline cost: profile,
// train estimator, run Algorithm 1.
func BenchmarkSelectEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sel, err := Select(Options{DeadlineMs: 0.9, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printedMu.Lock()
		if !printed["select"] {
			printed["select"] = true
			fmt.Printf("== select: %s acc=%.3f est=%.3f ms measured=%.3f ms\n",
				sel.Network, sel.Accuracy, sel.EstimatedMs, sel.MeasuredMs)
		}
		printedMu.Unlock()
	}
}

// BenchmarkPlannerSelectCold measures a cold planner request: a fresh
// Planner per iteration with the process-wide cut cache purged, so
// every architecture is planned, profiled and cut from scratch — the
// baseline the warm benchmark's cache-hit speedup is read against in
// BENCH_<date>.json.
func BenchmarkPlannerSelectCold(b *testing.B) {
	g, err := NetworkByName("ResNet-50")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		trim.PurgeCutCache()
		p, err := NewPlanner(PlannerConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerSelectWarm measures the repeated-config request the
// planning service exists for: one long-lived Planner, the same
// request over and over — every iteration is served from the shared
// bounded caches.
func BenchmarkPlannerSelectWarm(b *testing.B) {
	g, err := NetworkByName("ResNet-50")
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPlanner(PlannerConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerSelectRestoredCold measures the restart path the
// warm-state snapshot exists for: a fresh Planner (cold process, cut
// cache purged) restores a snapshot written by a warmed planner, then
// serves its first request. The timed op is that first request — the
// latency a client sees right after a daemon restart, which must land
// within a small factor of BenchmarkPlannerSelectWarm instead of the
// ~23x true-cold gap (BenchmarkPlannerSelectCold re-measures
// everything). The one-time boot cost of LoadState itself is reported
// as restore_ms (it happens once per process, off the request path).
func BenchmarkPlannerSelectRestoredCold(b *testing.B) {
	g, err := NetworkByName("ResNet-50")
	if err != nil {
		b.Fatal(err)
	}
	warm, err := NewPlanner(PlannerConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := warm.SaveState(&snap); err != nil {
		b.Fatal(err)
	}
	var restoreNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		trim.PurgeCutCache()
		p, err := NewPlanner(PlannerConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		t0 := time.Now()
		if err := p.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
			b.Fatal(err)
		}
		restoreNs += int64(time.Since(t0))
		b.StartTimer()
		if _, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(restoreNs)/float64(b.N)/1e6, "restore_ms")
	b.ReportMetric(float64(snap.Len()), "snapshot_bytes")
}

// benchWarmSnapshot warms one planner on a ResNet-50 request (the
// state-codec benchmark workload: two device plans, a measurement, a
// per-layer table and the blockwise cut sweep) and returns its
// snapshot. The state benchmarks below are the codec regression
// tripwires the bench-drift job reads.
func benchWarmSnapshot(b *testing.B) []byte {
	b.Helper()
	g, err := NetworkByName("ResNet-50")
	if err != nil {
		b.Fatal(err)
	}
	warm, err := NewPlanner(PlannerConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := warm.SaveState(&snap); err != nil {
		b.Fatal(err)
	}
	return snap.Bytes()
}

// BenchmarkStateSave measures snapshot encoding: one warm planner's
// state serialized per iteration. Encode cost bounds what autosave adds
// under load, so it must stay cheap enough to be invisible in
// netcut_gateway_stage_ms.
func BenchmarkStateSave(b *testing.B) {
	snap := benchWarmSnapshot(b)
	g, err := NetworkByName("ResNet-50")
	if err != nil {
		b.Fatal(err)
	}
	warm, err := NewPlanner(PlannerConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := warm.SaveState(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(buf.Len()), "snapshot_bytes")
}

// BenchmarkStateRestore measures snapshot restore in isolation: decode,
// validate, replay cuts, apply — the boot-time cost a restarted replica
// pays before its first request. The fresh planner and cut-cache purge
// run off-timer; the timed op is LoadState alone.
func BenchmarkStateRestore(b *testing.B) {
	snap := benchWarmSnapshot(b)
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		trim.PurgeCutCache()
		p, err := NewPlanner(PlannerConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := p.LoadState(bytes.NewReader(snap)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(snap)), "snapshot_bytes")
}

// benchGatewayPost drives the gateway handler in-process (no sockets):
// the serving-layer cost without kernel networking noise. It returns
// rather than failing so goroutine callers (RunParallel bodies, burst
// workers) can surface the error on the benchmark goroutine, where
// FailNow is legal.
func benchGatewayPost(gw *Gateway, body string) error {
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(body))
	rec := httptest.NewRecorder()
	gw.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
	}
	return nil
}

func newBenchGateway(b *testing.B) *Gateway {
	b.Helper()
	return newBenchGatewayCfg(b, GatewayConfig{Planner: PlannerConfig{Seed: 1}})
}

func newBenchGatewayCfg(b *testing.B, cfg GatewayConfig) *Gateway {
	b.Helper()
	gw, err := NewGateway(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { gw.Shutdown(context.Background()) })
	return gw
}

// BenchmarkGatewayThroughput measures warm serving-layer throughput
// under the default configuration: a zoo-cycling request stream through
// decode, admission and response delivery. With the rendered-response
// byte cache on by default, every post-warm-up iteration is a cache
// hit — decode, admission gates, lookup, deliver — which is the warm
// path production traffic sees. BenchmarkGatewayThroughputNoByteCache
// is the same stream priced without the cache.
func BenchmarkGatewayThroughput(b *testing.B) {
	gw := newBenchGateway(b)
	runGatewayThroughput(b, gw)
	// Pin the zero-copy hit path: a byte-cache hit allocates only
	// request-scoped bookkeeping (trace record, header map, recorder
	// internals) — never a copy of the response body. The bound has
	// headroom over the measured count (~30) but sits far below what a
	// body copy or rendering pass would add.
	body := fmt.Sprintf(`{"network":%q,"deadline_ms":0.9}`, NetworkNames()[0])
	allocs := testing.AllocsPerRun(200, func() {
		if err := benchGatewayPost(gw, body); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(allocs, "hit_allocs")
	if allocs > 48 {
		b.Fatalf("byte-cache hit path allocates %.0f objects/op, want <= 48 (body copy crept back in?)", allocs)
	}
}

// BenchmarkGatewayThroughputNoByteCache is the same zoo-cycling stream
// with the byte cache disabled: every iteration pays coalescing-map
// admission, a lane round-trip and response rendering on top of the
// planner's own warm caches — the pre-cache serving cost, kept as the
// denominator of the byte-cache speedup.
func BenchmarkGatewayThroughputNoByteCache(b *testing.B) {
	runGatewayThroughput(b, newBenchGatewayCfg(b, GatewayConfig{
		Planner:      PlannerConfig{Seed: 1},
		ByteCacheCap: -1,
	}))
}

func runGatewayThroughput(b *testing.B, gw *Gateway) {
	b.Helper()
	names := NetworkNames()
	bodies := make([]string, len(names))
	for i, n := range names {
		bodies[i] = fmt.Sprintf(`{"network":%q,"deadline_ms":0.9}`, n)
		if err := benchGatewayPost(gw, bodies[i]); err != nil { // warm every architecture
			b.Fatal(err)
		}
	}
	var failed atomic.Pointer[error]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := benchGatewayPost(gw, bodies[i%len(bodies)]); err != nil {
				failed.CompareAndSwap(nil, &err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	if errp := failed.Load(); errp != nil {
		b.Fatal(*errp)
	}
}

// BenchmarkGatewayCoalescedBurst measures the acceptance-criterion load
// shape: bursts of identical concurrent requests. The exec/burst metric
// is the telemetry-counted planner executions per burst — coalescing
// keeps it near 1 even though every burst carries 16 requests (the
// deterministic ==1 case is pinned by the gateway coalescing test).
func BenchmarkGatewayCoalescedBurst(b *testing.B) {
	const burst = 16
	// Coalescing of in-flight executions is the subject; the byte cache
	// would answer every post-warm-up request before it could coalesce.
	gw := newBenchGatewayCfg(b, GatewayConfig{
		Planner:      PlannerConfig{Seed: 1},
		ByteCacheCap: -1,
	})
	body := `{"network":"ResNet-50","deadline_ms":0.9}`
	if err := benchGatewayPost(gw, body); err != nil { // warm
		b.Fatal(err)
	}
	execsBefore := gw.Planner().Executions()
	var failed atomic.Pointer[error]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for j := 0; j < burst; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := benchGatewayPost(gw, body); err != nil {
					failed.CompareAndSwap(nil, &err)
				}
			}()
		}
		close(start)
		wg.Wait()
	}
	b.StopTimer()
	if errp := failed.Load(); errp != nil {
		b.Fatal(*errp)
	}
	execs := gw.Planner().Executions() - execsBefore
	b.ReportMetric(float64(execs)/float64(b.N), "exec/burst")
	b.ReportMetric(burst, "reqs/burst")
}

// BenchmarkPlannerPoolWarmAcrossDevices measures the multi-target warm
// path: one PlannerPool over the full device registry, the same
// network planned round-robin across every target — each iteration is
// a warm, device-isolated cache hit on a different planner.
func BenchmarkPlannerPoolWarmAcrossDevices(b *testing.B) {
	pool, err := NewPlannerPool(PoolConfig{Base: PlannerConfig{Seed: 1}})
	if err != nil {
		b.Fatal(err)
	}
	g, err := NetworkByName("ResNet-50")
	if err != nil {
		b.Fatal(err)
	}
	names := pool.DeviceNames()
	for _, name := range names { // warm every target once
		if _, err := pool.Select(name, PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Select(names[i%len(names)], PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(names)), "devices")
}

// BenchmarkGatewayCoalescedBurstStaggered is the burst benchmark under
// the load shape the timed batching window exists for: the 16 requests
// of each burst start ~50 µs apart (socket-staggered arrivals) instead
// of simultaneously. With BatchWindow enabled the worker holds its
// pass open for the stragglers, keeping exec/burst near 1 where the
// window-less gateway pays one execution per straggler wave.
func BenchmarkGatewayCoalescedBurstStaggered(b *testing.B) {
	const burst = 16
	// Like BenchmarkGatewayCoalescedBurst: the batching window is the
	// subject, so the byte cache stays out of the way.
	gw := newBenchGatewayCfg(b, GatewayConfig{
		Planner:      PlannerConfig{Seed: 1},
		BatchWindow:  2 * time.Millisecond,
		ByteCacheCap: -1,
	})
	body := `{"network":"ResNet-50","deadline_ms":0.9}`
	if err := benchGatewayPost(gw, body); err != nil { // warm
		b.Fatal(err)
	}
	execsBefore := gw.Planner().Executions()
	var failed atomic.Pointer[error]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for j := 0; j < burst; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				<-start
				time.Sleep(time.Duration(j) * 50 * time.Microsecond)
				if err := benchGatewayPost(gw, body); err != nil {
					failed.CompareAndSwap(nil, &err)
				}
			}(j)
		}
		close(start)
		wg.Wait()
	}
	b.StopTimer()
	if errp := failed.Load(); errp != nil {
		b.Fatal(*errp)
	}
	execs := gw.Planner().Executions() - execsBefore
	b.ReportMetric(float64(execs)/float64(b.N), "exec/burst")
	b.ReportMetric(burst, "reqs/burst")
}

// coldNet builds a never-seen-before blocked network; each distinct
// index is a genuinely cold plan (name and structure both feed the
// cache keys). The nets are deep enough that a cold plan — measure the
// parent, profile its table, enumerate and measure every blockwise
// TRN — costs several milliseconds, the load shape one slow target
// imposes on a shared worker pool.
func coldNet(i int) *Graph {
	b := graph.NewBuilder(fmt.Sprintf("lane-cold-%d", i), graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 16+i%4, 2, graph.Same)
	for blk := 0; blk < 5+i%3; blk++ {
		b.BeginBlock(fmt.Sprintf("b%d", blk))
		y := b.ConvBNReLU(x, 3, 16+i%4, 1, graph.Same)
		x = b.Add(y, x)
		x = b.ReLU(x)
		b.EndBlock()
	}
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	return b.MustFinish()
}

// BenchmarkGatewayLaneIsolation measures head-of-line isolation across
// the per-device lanes: a warm request stream on the default device
// while a generator continuously executes cold plans of never-seen
// graphs. Three phases report the warm stream's p99 with the generator
// quiet, with it loading a *different* device (cross_lane_p99_ms — the
// case lanes isolate), and with it loading the *same* device
// (same_lane_p99_ms — the head-of-line case, where warm passes queue
// behind multi-millisecond cold plans on the one lane worker). The
// lane contract is cross_lane << same_lane; on a multi-core host
// cross_lane additionally approaches quiet, while a single-core host
// keeps a floor of raw CPU-time contention no queueing design can
// remove (the cold plan needs the only core).
func BenchmarkGatewayLaneIsolation(b *testing.B) {
	// The warm stream repeats one identical request; lane isolation of
	// its *executions* is the subject, so the byte cache is off.
	gw := newBenchGatewayCfg(b, GatewayConfig{
		Planner:      PlannerConfig{Seed: 1},
		ByteCacheCap: -1,
	})
	names := gw.Pool().DeviceNames()
	warmDev, coldDev := names[0], names[2]
	warmBody := `{"network":"MobileNetV1 (0.25)","deadline_ms":0.9}`
	if err := benchGatewayPost(gw, warmBody); err != nil {
		b.Fatal(err)
	}

	measure := func(n int) []float64 {
		lat := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if err := benchGatewayPost(gw, warmBody); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
		}
		return lat
	}
	p99 := func(lat []float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		sort.Float64s(lat)
		return lat[(len(lat)*99)/100]
	}
	// underColdLoad runs measure(n) while a generator keeps cold plans
	// of fresh graphs executing against dev. seq offsets graph names so
	// no phase ever sees a graph another phase warmed. Generator
	// failures surface on the benchmark goroutine (FailNow is illegal
	// off it) — a phase measured against a silently dead generator
	// would report an unloaded p99 as a loaded one.
	seq := 0
	underColdLoad := func(dev string, n int) []float64 {
		stop := make(chan struct{})
		var genErr atomic.Pointer[error]
		var wg sync.WaitGroup
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := base; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				wire, err := json.Marshal(gateway.EncodeGraph(coldNet(i)))
				if err != nil {
					genErr.CompareAndSwap(nil, &err)
					return
				}
				body := fmt.Sprintf(`{"graph":%s,"deadline_ms":0.35,"target":%q}`, wire, dev)
				if err := benchGatewayPost(gw, body); err != nil {
					genErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(seq)
		seq += 1 << 20
		lat := measure(n)
		close(stop)
		wg.Wait()
		if errp := genErr.Load(); errp != nil {
			b.Fatalf("cold generator on %s died: %v", dev, *errp)
		}
		return lat
	}

	third := b.N / 3
	b.ResetTimer()
	quietLat := measure(third)
	crossLat := underColdLoad(coldDev, third)
	sameLat := underColdLoad(warmDev, b.N-2*third)
	b.StopTimer()

	b.ReportMetric(p99(quietLat), "quiet_p99_ms")
	b.ReportMetric(p99(crossLat), "cross_lane_p99_ms")
	b.ReportMetric(p99(sameLat), "same_lane_p99_ms")
}

// BenchmarkPlannerConcurrentThroughput measures service throughput: a
// shared warm Planner serving a zoo-cycling request stream from
// RunParallel workers.
func BenchmarkPlannerConcurrentThroughput(b *testing.B) {
	nets := Networks()
	p, err := NewPlanner(PlannerConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range nets { // warm every architecture once
		if _, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			g := nets[i%len(nets)]
			i++
			if _, err := p.Select(PlanRequest{Graph: g, DeadlineMs: 0.9}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
