// netzoo lists the network zoo: layer counts, block structure, MACs,
// parameters and simulated latency of the paper's seven architectures.
//
// Usage:
//
//	netzoo                  # summary table of all networks
//	netzoo -net ResNet-50   # per-block detail for one network
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

func main() {
	netName := flag.String("net", "", "show per-block detail for one network")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the detail table (requires -net)")
	cut := flag.Int("cut", 0, "render the TRN with this many blocks removed (with -dot)")
	flag.Parse()

	dev := device.New(device.Xavier())
	if *netName != "" {
		g, err := zoo.ByName(*netName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *dot {
			if *cut > 0 {
				trn, err := trim.Cut(g, *cut, trim.DefaultHead)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				g = trn.Graph
			}
			if err := g.WriteDOT(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		detail(g, dev)
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tlayers\tblocks\tMMACs\tMparams\tlatency(ms)")
	for _, g := range zoo.Paper7() {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.2f\t%.3f\n",
			g.Name, g.LayerCount(), g.BlockCount(),
			float64(g.TotalMACs())/1e6, float64(g.TotalParams())/1e6,
			dev.LatencyMs(g))
	}
	w.Flush()
}

func detail(g *graph.Graph, dev *device.Device) {
	fmt.Printf("%s: %d layers, %d removable blocks, %.1f MMACs, %.2f Mparams, %.3f ms\n\n",
		g.Name, g.LayerCount(), g.BlockCount(),
		float64(g.TotalMACs())/1e6, float64(g.TotalParams())/1e6, dev.LatencyMs(g))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "block\tlabel\tlayers\toutput\tMMACs")
	for _, blk := range g.Blocks {
		var macs int64
		for _, id := range blk.Nodes {
			macs += g.Node(id).MACs
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%v\t%.2f\n",
			blk.Index, blk.Label, len(blk.Nodes), g.Node(blk.Output).Out, float64(macs)/1e6)
	}
	w.Flush()
}
