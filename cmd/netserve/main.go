// netserve is the NetCut serving daemon: it mounts the deadline-aware
// planning gateway — JSON planning API over a device fleet with
// per-request targeting, request coalescing, batch admission, load
// shedding and fault containment — on an HTTP listener and runs until
// SIGINT/SIGTERM, then drains gracefully.
//
// Endpoints:
//
//	POST /v1/plan     {"network":"ResNet-50","deadline_ms":0.9}
//	                  {"graph":{...},"deadline_ms":0.35,"budget_ms":50}
//	                  {"network":"ResNet-50","target":"auto","budget_ms":50}
//	GET  /v1/devices  registered targets (calibration, health + telemetry)
//	GET  /metrics     Prometheus text format (device-labeled series)
//	GET  /debug/stats JSON snapshot (telemetry + per-device caches)
//	GET  /debug/trace completed request traces, newest first
//	                  (?id= ?device= ?status= ?min_ms= ?limit= filters)
//	GET  /debug/requests in-flight request traces, oldest (stuck) first
//	GET  /debug/pprof/ net/http/pprof profiles (only with -pprof)
//	GET  /healthz     liveness probe (200 while the process serves)
//	GET  /readyz      readiness probe (200 after boot restore, 503 while draining)
//
// Usage:
//
//	netserve                            # serve the full device registry on :8080, seed 0
//	netserve -devices sim-xavier,sim-server-gpu
//	netserve -addr 127.0.0.1:9090 -seed 7
//	netserve -queue 512 -batch 32 -workers 4 -batch-window 2ms
//	netserve -max-body 4194304 -drain-timeout 30s
//	netserve -byte-cache 8192                # rendered-response cache entries (0 = off)
//	netserve -state-file /var/lib/netcut/state.bin -prewarm
//	netserve -state-file /var/lib/netcut/state.bin -autosave 30s
//	netserve -exec-timeout 5s
//	netserve -overload-interval 50ms -heap-limit 536870912
//	netserve -slow-trace 50ms                # log requests slower than this
//	netserve -pprof                          # mount /debug/pprof/ (off by default)
//
// Observability: every request is traced end to end — the response
// carries the trace ID in the X-Netcut-Trace header and the trace_id
// body field, /debug/trace serves the recent-trace ring buffer,
// /debug/requests dumps what is in flight right now, and requests
// slower than -slow-trace are logged as structured lines with their
// per-stage timings. See the "Observability" section of the library
// documentation for the full metric catalogue.
//
// Warm-state persistence: with -state-file, the daemon restores the
// planners' caches from the file on boot — falling back to the
// previous-good "<state-file>.bak" generation when the primary is
// missing, torn or from another build — and snapshots them back after
// the SIGTERM drain, so the next boot's first requests run on the warm
// path. POST /v1/state/save writes the same snapshot on demand, and
// -autosave writes it periodically (crash safety: after a kill -9 the
// next boot restores the last autosaved generation instead of starting
// cold). -prewarm plans the calibrated zoo across the fleet in the
// background after any restore.
//
// Fault tolerance: -exec-timeout arms the gateway's execution watchdog
// (a stuck planner pass is abandoned with a 504 instead of wedging a
// lane); panics are contained per request, repeat offenders are
// quarantined, and devices that fault repeatedly are taken out of
// rotation until a background probe restores them — see the gateway
// package documentation.
//
// Overload control: a closed-loop controller (sampling every
// -overload-interval) folds lane backlog, latency drift and — with
// -heap-limit — heap/GC pressure into a load level (0 normal,
// 1 brownout, 2 emergency, exported as netcut_gateway_load_level) that
// sheds optional work first: prewarming pauses, the batch window
// shrinks, trace retention is sampled, and at level 2 only cached
// responses and coalesce joins are served while cold misses get 429s
// with backlog-honest Retry-After hints. Per-lane execution
// concurrency adapts by AIMD between 1 and the configured workers.
// Clients that prefer a degraded answer over a rejection can set
// "allow_degraded": true in the request body — see the gateway package
// documentation.
//
// Signals: the first SIGINT/SIGTERM starts the graceful drain; a second
// one forces exit(1) immediately, logging which drain phase was in
// progress.
//
// Exit codes: 0 after a clean SIGINT/SIGTERM drain; 1 on configuration,
// bind or serve errors (including an unknown -devices name) and on a
// second-signal forced exit; 2 on flag misuse (from package flag).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"netcut"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so every path unwinds defers before
// the process exits.
func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		seed         = flag.Int64("seed", 0, "measurement and retraining seed")
		devices      = flag.String("devices", "", "comma-separated registered device names to serve (empty = full registry; see /v1/devices)")
		queue        = flag.Int("queue", 0, "admission queue depth (0 = default)")
		batch        = flag.Int("batch", 0, "max requests per batched planner pass (0 = default)")
		batchWindow  = flag.Duration("batch-window", 0, "how long a worker holds a drained burst open for staggered arrivals (0 = no window)")
		workers      = flag.Int("workers", 0, "batch worker goroutines (0 = default)")
		maxBody      = flag.Int64("max-body", 0, "request body size limit in bytes (0 = default, negative = unlimited)")
		shedMin      = flag.Int("shed-min-samples", 0, "warm executions required before budget shedding activates (0 = default)")
		byteCache    = flag.Int("byte-cache", netcut.DefaultByteCacheCap, "rendered-response byte cache entries (0 = disabled)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		stateFile    = flag.String("state-file", "", "warm-state snapshot path: restored on boot (with .bak fallback), saved after the SIGTERM drain and by POST /v1/state/save (empty = no persistence)")
		autosave     = flag.Duration("autosave", 0, "periodic warm-state snapshot interval (requires -state-file; 0 = only save on drain/demand)")
		execTimeout  = flag.Duration("exec-timeout", 0, "per-pass execution watchdog: abandon planner passes stuck longer than this with a 504 (0 = disabled)")
		prewarm      = flag.Bool("prewarm", false, "plan the calibrated zoo on every device in the background at startup (after any -state-file restore)")
		overloadInt  = flag.Duration("overload-interval", 0, "overload-controller sampling interval (0 = default 100ms, negative = controller disabled)")
		heapLimit    = flag.Int64("heap-limit", 0, "live-heap bytes at which the overload controller declares an emergency; also arms the GC-pause brownout signal (0 = memory signals disabled)")
		slowTrace    = flag.Duration("slow-trace", 0, "log a structured per-stage trace for requests slower than this (0 = disabled)")
		traceRing    = flag.Int("trace-ring", netcut.DefaultTraceRingCap, "completed request traces retained for /debug/trace (0 = disabled)")
		pprof        = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; enable only on trusted listeners)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "netserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return 2
	}

	// Resolve -devices against the registry up front: a typo is a
	// structured exit-1 naming the registered profiles, not a panic or
	// a half-started fleet.
	var devs []netcut.DeviceConfig
	if *devices != "" {
		for _, name := range strings.Split(*devices, ",") {
			cfg, err := netcut.DeviceProfileByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "netserve: %v\n", err)
				return 1
			}
			devs = append(devs, cfg)
		}
	}

	// On the flag, 0 reads naturally as "off"; the config spells
	// disabled as negative (0 there means the default capacity).
	byteCacheCap := *byteCache
	if byteCacheCap == 0 {
		byteCacheCap = -1
	}
	traceRingCap := *traceRing
	if traceRingCap == 0 {
		traceRingCap = -1
	}
	gw, err := netcut.NewGateway(netcut.GatewayConfig{
		Planner:          netcut.PlannerConfig{Seed: *seed},
		Devices:          devs,
		QueueDepth:       *queue,
		BatchMax:         *batch,
		BatchWindow:      *batchWindow,
		Workers:          *workers,
		MaxBodyBytes:     *maxBody,
		ShedMinSamples:   *shedMin,
		ByteCacheCap:     byteCacheCap,
		DrainTimeout:     *drainTimeout,
		StatePath:        *stateFile,
		AutosaveInterval: *autosave,
		ExecTimeout:      *execTimeout,
		OverloadInterval: *overloadInt,
		HeapLimitBytes:   *heapLimit,
		SlowTraceMs:      float64(*slowTrace) / float64(time.Millisecond),
		TraceRingCap:     traceRingCap,
		Pprof:            *pprof,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "netserve: %v\n", err)
		return 1
	}

	// Restore the warm state before the listener opens, so the very
	// first request sees the restored caches. A missing file is a
	// normal cold boot; anything unreadable or mismatched — primary and
	// .bak both — is reported and ignored: the caches rebuild on demand,
	// and trusting a stale snapshot would be worse than running cold.
	if *stateFile != "" {
		t0 := time.Now()
		if used, err := gw.LoadStateFile(); err == nil {
			fmt.Printf("netserve: restored warm state from %s in %.1fms\n",
				used, float64(time.Since(t0))/float64(time.Millisecond))
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "netserve: ignoring state file %s: %v\n", *stateFile, err)
		}
	}
	// Boot work is done: flip /readyz so load balancers start routing.
	gw.MarkReady()
	// Prewarm after any restore: the snapshot covers what the last
	// process had seen, prewarming covers the rest of the zoo x fleet
	// cross product.
	if *prewarm {
		gw.Prewarm()
		fmt.Println("netserve: prewarming zoo across the fleet in the background")
	}

	// Bind before daemonizing claims: a bad -addr must be a prompt,
	// non-zero exit, not a goroutine's log line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netserve: %v\n", err)
		return 1
	}
	srv := &http.Server{
		Handler: gw.Handler(),
		// Header/idle timeouts bound what a slow or silent client can
		// pin; WriteTimeout stays unset because a cold plan of a large
		// graph legitimately takes a while and admission already sheds
		// by the client's own budget.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("netserve: serving on %s (seed %d, devices %v)\n",
		ln.Addr(), *seed, gw.Pool().DeviceNames())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		fmt.Printf("netserve: %v, draining (timeout %v)\n", sig, *drainTimeout)
		// A second signal during the drain is the operator insisting:
		// force the exit, but say which phase was cut short so a hung
		// drain is diagnosable from the log alone.
		var phase atomic.Value
		phase.Store("http drain")
		go func() {
			sig := <-sigCh
			fmt.Fprintf(os.Stderr, "netserve: %v during %s, forcing exit\n", sig, phase.Load())
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Order matters: stop accepting and finish in-flight handlers
		// first (they wait on gateway deliveries), then drain the
		// gateway's own queue, workers and background loops.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "netserve: drain: %v\n", err)
			return 1
		}
		phase.Store("gateway drain")
		if err := gw.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "netserve: drain: %v\n", err)
			return 1
		}
		phase.Store("state save")
		// Snapshot after the drain: every in-flight execution has
		// landed in the caches, so the file captures the fullest warm
		// state this process ever had. A save failure is worth a
		// warning, not a dirty exit — the drain itself succeeded.
		if *stateFile != "" {
			if n, err := gw.SaveStateFile(); err != nil {
				fmt.Fprintf(os.Stderr, "netserve: saving state: %v\n", err)
			} else {
				fmt.Printf("netserve: saved warm state to %s (%d bytes)\n", *stateFile, n)
			}
		}
		fmt.Println("netserve: drained")
		return 0
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "netserve: %v\n", err)
			return 1
		}
		return 0
	}
}
