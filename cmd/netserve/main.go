// netserve demonstrates the concurrent planning service: it streams
// Select-style requests (paper networks plus synthetic "user" graphs)
// through one shared netcut.Planner from many goroutines, then prints
// throughput and the shared-cache counters that make repeat traffic
// cheap.
//
// Usage:
//
//	netserve                          # 8 workers, 64 requests, 0.9 ms
//	netserve -workers 16 -requests 256
//	netserve -deadline 0.5 -estimator analytical
//	netserve -arbitrary 12            # mix in 12 distinct non-zoo graphs
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"netcut"
	"netcut/internal/graph"
)

func userNet(i int) *netcut.Graph {
	b := graph.NewBuilder(fmt.Sprintf("user-net-%d", i), graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8+i%4, 2, graph.Same)
	for blk := 0; blk < 3+i%3; blk++ {
		b.BeginBlock(fmt.Sprintf("b%d", blk))
		y := b.ConvBNReLU(x, 3, 8+i%4, 1, graph.Same)
		x = b.Add(y, x)
		x = b.ReLU(x)
		b.EndBlock()
	}
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	return b.MustFinish()
}

func main() {
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	requests := flag.Int("requests", 64, "total requests to issue")
	deadline := flag.Float64("deadline", 0.9, "application deadline in milliseconds")
	seed := flag.Int64("seed", 1, "measurement and retraining seed")
	estimator := flag.String("estimator", "profiler", "latency estimator: profiler, analytical or linear")
	arbitrary := flag.Int("arbitrary", 6, "distinct synthetic non-zoo graphs mixed into the stream")
	flag.Parse()

	planner, err := netcut.NewPlanner(netcut.PlannerConfig{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The request universe: the paper zoo plus synthetic user graphs.
	// The stream cycles through it, so most requests repeat an
	// architecture the service has already profiled — the cross-request
	// cache-sharing case the Planner exists for.
	universe := netcut.Networks()
	for i := 0; i < *arbitrary; i++ {
		universe = append(universe, userNet(i))
	}

	type outcome struct {
		resp *netcut.PlanResponse
		err  error
	}
	outs := make([]outcome, *requests)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(*requests) {
			return -1
		}
		next++
		return int(next - 1)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				g := universe[i%len(universe)]
				resp, err := planner.Select(netcut.PlanRequest{
					Graph:      g,
					DeadlineMs: *deadline,
					Estimator:  *estimator,
				})
				outs[i] = outcome{resp: resp, err: err}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// One summary line per distinct architecture, in universe order.
	seen := map[string]bool{}
	for i, o := range outs {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "request %d: %v\n", i, o.err)
			os.Exit(1)
		}
		name := o.resp.Parent
		if seen[name] {
			continue
		}
		seen[name] = true
		if o.resp.Feasible {
			fmt.Printf("%-24s -> %-28s est %.4f ms  measured %.4f ms  acc %.3f\n",
				name, o.resp.Network, o.resp.EstimatedMs, o.resp.MeasuredMs, o.resp.Accuracy)
		} else {
			fmt.Printf("%-24s -> infeasible at %.3f ms\n", name, *deadline)
		}
	}

	s := planner.Stats()
	fmt.Printf("\n%d requests x %d workers in %v (%.1f req/s)\n",
		*requests, *workers, elapsed.Round(time.Millisecond),
		float64(*requests)/elapsed.Seconds())
	rows := []struct {
		name string
		len  int
		cap  int
		hits uint64
		miss uint64
		rate float64
	}{
		{"kernel plans", s.Plans.Len, s.Plans.Cap, s.Plans.Hits, s.Plans.Misses, s.Plans.HitRate()},
		{"measurements", s.Measurements.Len, s.Measurements.Cap, s.Measurements.Hits, s.Measurements.Misses, s.Measurements.HitRate()},
		{"layer tables", s.Tables.Len, s.Tables.Cap, s.Tables.Hits, s.Tables.Misses, s.Tables.HitRate()},
		{"TRN cuts", s.Cuts.Len, s.Cuts.Cap, s.Cuts.Hits, s.Cuts.Misses, s.Cuts.HitRate()},
	}
	fmt.Println("shared caches:")
	for _, r := range rows {
		fmt.Printf("  %-13s %5d/%d resident  %6d hits  %5d misses  (%.1f%% hit rate)\n",
			r.name, r.len, r.cap, r.hits, r.miss, 100*r.rate)
	}
}
