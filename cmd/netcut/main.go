// netcut runs the NetCut exploration (Algorithm 1): given an
// application deadline it proposes one deadline-feasible TRN per
// network, retrains them, and reports the most accurate selection.
//
// Usage:
//
//	netcut -deadline 0.9                       # profiler-based estimation
//	netcut -deadline 0.9 -estimator analytical # epsilon-SVR estimation
//	netcut -deadline 1.5 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"netcut"
)

func main() {
	deadline := flag.Float64("deadline", 0.9, "application deadline in milliseconds")
	estimator := flag.String("estimator", "profiler", "latency estimator: profiler | analytical | linear")
	seed := flag.Int64("seed", 1, "measurement and retraining seed")
	sweep := flag.String("sweep", "", "comma-separated deadlines to sweep instead of a single -deadline")
	flag.Parse()

	if *sweep != "" {
		runSweep(*sweep, *estimator, *seed)
		return
	}

	res, err := netcut.Explore(netcut.Options{
		DeadlineMs: *deadline,
		Estimator:  netcut.EstimatorKind(*estimator),
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("NetCut @ %.3f ms, %s estimation\n\n", res.DeadlineMs, res.EstimatorName)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "proposal\tcut(blocks)\tlayers-removed\test(ms)\taccuracy\ttrain(h)\titerations")
	for _, p := range res.Proposals {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.3f\t%.3f\t%.2f\t%d\n",
			p.TRN.Name(), p.Cutpoint, p.TRN.LayersRemoved, p.EstimateMs,
			p.Accuracy, p.TrainHours, p.Iterations)
	}
	w.Flush()
	for _, n := range res.Infeasible {
		fmt.Printf("infeasible: %s (deepest cut still misses the deadline)\n", n)
	}
	if res.Best == nil {
		fmt.Println("\nno network meets the deadline")
		os.Exit(2)
	}
	fmt.Printf("\nselected: %s  accuracy %.3f  (retrained %d TRNs, %.2f train-hours)\n",
		res.Best.TRN.Name(), res.Best.Accuracy, res.RetrainedCount, res.ExplorationHours)
}

// runSweep explores a list of deadlines and prints one selection per
// line, the quickest way to see the frontier NetCut delivers.
func runSweep(spec, estimator string, seed int64) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "deadline(ms)\tselection\taccuracy\test(ms)\tretrained")
	for _, part := range strings.Split(spec, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad deadline %q: %v\n", part, err)
			os.Exit(1)
		}
		sel, err := netcut.Select(netcut.Options{
			DeadlineMs: d,
			Estimator:  netcut.EstimatorKind(estimator),
			Seed:       seed,
		})
		if err != nil {
			fmt.Fprintf(w, "%.3f\t(infeasible)\t\t\t\n", d)
			continue
		}
		fmt.Fprintf(w, "%.3f\t%s\t%.3f\t%.3f\t%d\n",
			d, sel.Network, sel.Accuracy, sel.EstimatedMs, sel.Result.RetrainedCount)
	}
	w.Flush()
}
