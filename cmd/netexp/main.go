// netexp regenerates every figure and table of the paper's evaluation
// section from the simulated testbed and prints the same rows/series
// the paper plots.
//
// Usage:
//
//	netexp                 # all artefacts as text
//	netexp -fig fig9       # one artefact
//	netexp -markdown       # markdown (the body of EXPERIMENTS.md)
//	netexp -deadline 1.2   # explore a different deadline
package main

import (
	"flag"
	"fmt"
	"os"

	"netcut/internal/exp"
)

func main() {
	figID := flag.String("fig", "", "generate a single artefact (fig1, fig4..fig10, tab1, abl-estimators, abl-block, abl-device)")
	markdown := flag.Bool("markdown", false, "emit markdown instead of text")
	deadline := flag.Float64("deadline", 0.9, "application deadline in milliseconds")
	seed := flag.Int64("seed", 1, "measurement and retraining seed")
	flag.Parse()

	lab, err := exp.NewLab(exp.Config{Seed: *seed, DeadlineMs: *deadline})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	figs, err := lab.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	found := false
	for _, f := range figs {
		if *figID != "" && f.ID != *figID {
			continue
		}
		found = true
		var err error
		if *markdown {
			err = f.Markdown(os.Stdout)
		} else {
			err = f.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *figID)
		os.Exit(1)
	}
}
