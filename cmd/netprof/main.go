// netprof profiles networks on the simulated embedded GPU using the
// paper's measurement protocol (200 warm-up + 800 timed runs) and dumps
// per-layer latency tables, the input to the Eq. (1) estimator.
//
// Usage:
//
//	netprof                          # measure all seven networks
//	netprof -net ResNet-50 -layers   # per-layer table for one network
//	netprof -warmup 50 -runs 200     # custom protocol
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"netcut/internal/device"
	"netcut/internal/profiler"
	"netcut/internal/zoo"
)

func main() {
	netName := flag.String("net", "", "profile a single network")
	layers := flag.Bool("layers", false, "dump the per-layer table (requires -net)")
	csvOut := flag.Bool("csv", false, "emit the per-layer table as CSV (requires -net)")
	top := flag.Int("top", 0, "show only the top-N slowest layers (0 = all)")
	warmup := flag.Int("warmup", 200, "warm-up runs")
	runs := flag.Int("runs", 800, "timed runs")
	seed := flag.Int64("seed", 1, "measurement noise seed")
	flag.Parse()

	prof, err := profiler.New(device.New(device.Xavier()),
		profiler.Protocol{WarmupRuns: *warmup, TimedRuns: *runs}, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *csvOut {
		if *netName == "" {
			fmt.Fprintln(os.Stderr, "-csv requires -net")
			os.Exit(1)
		}
		g, err := zoo.ByName(*netName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := prof.Profile(g).WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	names := zoo.Names
	if *netName != "" {
		names = []string{*netName}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "network\tmean(ms)\tstd(ms)\truns\ttable-sum(ms)\tevent-overhead")
	for _, n := range names {
		g, err := zoo.ByName(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := prof.Measure(g)
		tbl := prof.Profile(g)
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%d\t%.4f\t%+.1f%%\n",
			n, m.MeanMs, m.StdMs, m.Runs, tbl.SumMs(),
			100*(tbl.SumMs()-tbl.EndToEndMs)/tbl.EndToEndMs)
		if *layers && *netName != "" {
			w.Flush()
			dumpLayers(tbl, *top)
		}
	}
	w.Flush()
}

func dumpLayers(tbl *profiler.Table, top int) {
	rows := append([]profiler.LayerStat(nil), tbl.Layers...)
	if top > 0 {
		sort.Slice(rows, func(i, j int) bool { return rows[i].MeanMs > rows[j].MeanMs })
		if top < len(rows) {
			rows = rows[:top]
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  node\tname\tkind\tmean(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %d\t%s\t%s\t%.5f\n", r.NodeID, r.Name, r.Kind, r.MeanMs)
	}
	w.Flush()
}
