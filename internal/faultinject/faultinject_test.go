package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedSitesAreNoOps(t *testing.T) {
	Reset()
	Panic(TrimPanic, "anything") // must not panic
	Delay(ExecDelay, "anything") // must not sleep
	if err := Error(SnapshotWrite, "anything"); err != nil {
		t.Fatalf("disarmed Error returned %v", err)
	}
	if Fire(StateCorrupt, "anything") {
		t.Fatal("disarmed Fire reported true")
	}
}

func TestArmMatchesBySubstringAndCount(t *testing.T) {
	defer Reset()
	Arm(TrimPanic, "poison", 2)

	if Fire(TrimPanic, "healthy-net") {
		t.Fatal("fired for a non-matching key")
	}
	if Fire(ExecDelay, "poison-net") {
		t.Fatal("fired for the wrong point")
	}
	for i := 0; i < 2; i++ {
		if !Fire(TrimPanic, "poison-net") {
			t.Fatalf("firing %d did not fire", i)
		}
	}
	if Fire(TrimPanic, "poison-net") {
		t.Fatal("fired beyond the armed count")
	}
}

func TestPanicCarriesInjected(t *testing.T) {
	defer Reset()
	Arm(TrimPanic, "", 1)
	defer func() {
		r := recover()
		inj, ok := r.(Injected)
		if !ok {
			t.Fatalf("panic value %T, want Injected", r)
		}
		if inj.Point != TrimPanic || inj.Key != "some-graph" {
			t.Fatalf("panic value %+v", inj)
		}
	}()
	Panic(TrimPanic, "some-graph")
	t.Fatal("armed Panic did not panic")
}

func TestErrorIsBranchable(t *testing.T) {
	defer Reset()
	Arm(SnapshotWrite, "state.json", 1)
	err := Error(SnapshotWrite, "/tmp/state.json")
	var inj Injected
	if !errors.As(err, &inj) || inj.Point != SnapshotWrite {
		t.Fatalf("err %v, want Injected{SnapshotWrite}", err)
	}
}

func TestDelaySleeps(t *testing.T) {
	defer Reset()
	ArmDelay(ExecDelay, "", 1, 30*time.Millisecond)
	start := time.Now()
	Delay(ExecDelay, "slow-net")
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("armed Delay slept only %v", d)
	}
}

// TestConcurrentFireRespectsCount pins that a bounded rule fires
// exactly its count under concurrent sites — the property that lets
// -race tests arm one panic and know exactly one request dies.
func TestConcurrentFireRespectsCount(t *testing.T) {
	defer Reset()
	Arm(TrimPanic, "", 3)
	var fired sync.Map
	var wg sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if Fire(TrimPanic, "k") {
				mu.Lock()
				count++
				mu.Unlock()
				fired.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	if count != 3 {
		t.Fatalf("rule with count 3 fired %d times", count)
	}
}
