// Package faultinject is the deterministic fault-injection harness the
// robustness tests and smoke scripts drive the serving stack with. A
// handful of named fault points are compiled into the production code
// paths (a panic inside the trim layer, a delay inside a planner
// execution, a write error and a byte-corruption inside the state
// snapshot path); each is a no-op — one atomic load — unless a test
// arms it, so the instrumented binaries pay nothing in normal
// operation and CI can pin every failure behavior under -race without
// build tags or mock seams.
//
// Determinism contract: a fault point fires on *key match*, not on
// randomness. Sites pass a stable identity key (a graph name, a state
// path) and Arm* installs rules that match by substring, so which
// requests fault is a pure function of the armed rules and the request
// stream — the same property the rest of the repository demands of
// results. A rule's Count bounds how many times it fires; rules are
// consumed in arming order.
//
// The package is safe for concurrent use: sites may fire from any
// goroutine while tests arm and reset. Tests that arm faults must
// defer Reset() so parallel packages never inherit rules.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one compiled-in fault site.
type Point string

// The fault points wired into the serving stack.
const (
	// TrimPanic panics inside trim.CutScoped / trim.CutAtNodeScoped,
	// keyed by the parent graph's name — the "poison graph" fault: a
	// request whose planning execution blows up deep in the layer
	// stack.
	TrimPanic Point = "trim-panic"
	// ExecDelay sleeps inside serve.(*Planner).selectOne, keyed by the
	// graph name — the "stuck execution" fault the gateway watchdog
	// abandons.
	ExecDelay Point = "exec-delay"
	// SnapshotWrite fails the gateway's state-snapshot write, keyed by
	// the state path.
	SnapshotWrite Point = "snapshot-write"
	// StateCorrupt corrupts the leading bytes of a written state
	// snapshot, keyed by the state path — the fault that exercises the
	// .bak recovery path end to end.
	StateCorrupt Point = "state-corrupt"
	// HeapPressure makes the gateway's overload sampler read the heap
	// as over its configured limit, keyed by "heap" — lets tests drive
	// the load ladder to emergency without actually allocating.
	HeapPressure Point = "heap-pressure"
	// QueueStall makes the overload sampler read a lane's backlog as
	// completely full, keyed by the device name — the deterministic way
	// to pin brownout behavior without racing real queue occupancy.
	QueueStall Point = "queue-stall"
)

// Injected is the value an injected panic carries (and the error an
// armed error site returns), so handlers can tell harness faults from
// organic ones in test assertions and log lines.
type Injected struct {
	Point Point
	Key   string
}

func (i Injected) Error() string {
	return fmt.Sprintf("faultinject: %s fired for %q", i.Point, i.Key)
}

// rule is one armed fault: it fires at a point when the site key
// contains Match ("" matches every key), at most Count times (<= 0
// means unlimited).
type rule struct {
	point Point
	match string
	count int64 // remaining firings; negative = unlimited
	delay time.Duration
}

var (
	// armed is the fast path: every site checks it with one atomic load
	// and returns immediately while no rules exist.
	armed atomic.Bool

	mu    sync.Mutex
	rules []*rule
)

// Arm installs a panic/error rule: Point p fires for site keys
// containing match (empty matches all), at most times times (<= 0 =
// unlimited).
func Arm(p Point, match string, times int) {
	ArmDelay(p, match, times, 0)
}

// ArmDelay is Arm with a sleep duration attached, for delay points.
func ArmDelay(p Point, match string, times int, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	n := int64(times)
	if times <= 0 {
		n = -1
	}
	rules = append(rules, &rule{point: p, match: match, count: n, delay: d})
	armed.Store(true)
}

// Reset disarms every rule. Tests that arm faults must defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	rules = nil
	armed.Store(false)
}

// contains is strings.Contains without the import (the package stays
// dependency-minimal so every layer can import it).
func contains(s, sub string) bool {
	if sub == "" {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// fire consumes the first live rule matching (p, key), returning it, or
// nil when nothing is armed for the site.
func fire(p Point, key string) *rule {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	for _, r := range rules {
		if r.point != p || r.count == 0 || !contains(key, r.match) {
			continue
		}
		if r.count > 0 {
			r.count--
		}
		return r
	}
	return nil
}

// Fire reports whether an armed rule matches (p, key), consuming one
// firing. Sites that need custom behavior (e.g. corrupting bytes they
// own) branch on it.
func Fire(p Point, key string) bool { return fire(p, key) != nil }

// Panic panics with an Injected value if a rule matches (p, key);
// otherwise it is a no-op. This is the call compiled into the trim
// layer.
func Panic(p Point, key string) {
	if fire(p, key) != nil {
		panic(Injected{Point: p, Key: key})
	}
}

// Delay sleeps for the armed rule's duration if one matches (p, key);
// otherwise it is a no-op. This is the call compiled into the planner
// execution path.
func Delay(p Point, key string) {
	if r := fire(p, key); r != nil && r.delay > 0 {
		time.Sleep(r.delay)
	}
}

// Error returns an Injected error if a rule matches (p, key), nil
// otherwise. This is the call compiled into the snapshot write path.
func Error(p Point, key string) error {
	if fire(p, key) != nil {
		return Injected{Point: p, Key: key}
	}
	return nil
}
