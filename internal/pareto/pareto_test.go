package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var pts = []Point{
	{"a", 0.2, 0.73},
	{"b", 0.36, 0.81},
	{"c", 1.0, 0.87},
	{"d", 1.4, 0.885},
	{"e", 1.8, 0.90},
	{"slowbad", 2.0, 0.60}, // dominated
	{"fastbad", 0.3, 0.50}, // dominated
}

func TestDominates(t *testing.T) {
	if !Dominates(Point{"", 1, 0.9}, Point{"", 2, 0.8}) {
		t.Fatal("clear dominance not detected")
	}
	if Dominates(Point{"", 1, 0.9}, Point{"", 1, 0.9}) {
		t.Fatal("equal points must not dominate each other")
	}
	if Dominates(Point{"", 1, 0.8}, Point{"", 2, 0.9}) {
		t.Fatal("trade-off wrongly called dominance")
	}
	if !Dominates(Point{"", 1, 0.9}, Point{"", 1, 0.8}) {
		t.Fatal("same-latency higher accuracy must dominate")
	}
}

func TestFrontier(t *testing.T) {
	f := Frontier(pts)
	want := []string{"a", "b", "c", "d", "e"}
	if len(f) != len(want) {
		t.Fatalf("frontier size %d, want %d: %v", len(f), len(want), f)
	}
	for i, p := range f {
		if p.Label != want[i] {
			t.Fatalf("frontier[%d] = %s, want %s", i, p.Label, want[i])
		}
	}
}

func TestFrontierEmpty(t *testing.T) {
	if Frontier(nil) != nil {
		t.Fatal("empty frontier should be nil")
	}
}

func TestFrontierDuplicateLatency(t *testing.T) {
	f := Frontier([]Point{{"x", 1, 0.5}, {"y", 1, 0.7}})
	if len(f) != 1 || f[0].Label != "y" {
		t.Fatalf("duplicate latency frontier = %v", f)
	}
}

func TestBestUnderDeadline(t *testing.T) {
	p, ok := BestUnderDeadline(pts, 0.9)
	if !ok || p.Label != "b" {
		t.Fatalf("best under 0.9 = %v %v, want b", p, ok)
	}
	p, ok = BestUnderDeadline(pts, 5)
	if !ok || p.Label != "e" {
		t.Fatalf("best under 5 = %v, want e", p)
	}
	if _, ok := BestUnderDeadline(pts, 0.1); ok {
		t.Fatal("impossible deadline should report no selection")
	}
}

func TestGap(t *testing.T) {
	ga, ok := Gap(pts, 0.9)
	if !ok {
		t.Fatal("gap analysis failed")
	}
	if ga.Selected.Label != "b" {
		t.Fatalf("selected %s, want b", ga.Selected.Label)
	}
	if ga.SlackMs <= 0.5 || ga.SlackMs >= 0.6 {
		t.Fatalf("slack = %v, want 0.54", ga.SlackMs)
	}
	if !ga.HasNext || ga.NextBeyond.Label != "c" {
		t.Fatalf("next beyond = %v", ga.NextBeyond)
	}
	if ga.AccuracyGap <= 0.05 || ga.AccuracyGap >= 0.07 {
		t.Fatalf("accuracy gap = %v, want 0.06", ga.AccuracyGap)
	}
	if _, ok := Gap(pts, 0.05); ok {
		t.Fatal("gap with impossible deadline should fail")
	}
}

func TestGapAtTopOfFrontier(t *testing.T) {
	ga, ok := Gap(pts, 10)
	if !ok || ga.HasNext {
		t.Fatalf("top-of-frontier gap should have no next: %+v", ga)
	}
}

// Properties of frontier extraction over random point clouds.
func TestFrontierProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{
				Latency:  0.1 + 4*rng.Float64(),
				Accuracy: 0.4 + 0.6*rng.Float64(),
			}
		}
		front := Frontier(points)
		if len(front) == 0 {
			return false
		}
		// 1. Frontier points are mutually non-dominating.
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					return false
				}
			}
		}
		// 2. Every input point is dominated by or equal to a frontier point.
		for _, p := range points {
			ok := false
			for _, fp := range front {
				if fp == p || Dominates(fp, p) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		// 3. Frontier is sorted by latency and accuracy ascending.
		for i := 1; i < len(front); i++ {
			if front[i].Latency <= front[i-1].Latency || front[i].Accuracy <= front[i-1].Accuracy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: BestUnderDeadline result always meets the deadline and no
// other point under the deadline beats it.
func TestBestUnderDeadlineProperty(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{Latency: 4 * rng.Float64(), Accuracy: rng.Float64()}
		}
		deadline := float64(dRaw) / 64.0
		best, ok := BestUnderDeadline(points, deadline)
		anyMeets := false
		for _, p := range points {
			if p.Latency <= deadline {
				anyMeets = true
				if ok && p.Accuracy > best.Accuracy {
					return false
				}
			}
		}
		return ok == anyMeets && (!ok || best.Latency <= deadline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
