// Package pareto implements the latency/accuracy trade-off analysis of
// the paper's Figs. 1, 6 and 7: dominance, frontier extraction, and the
// deadline-relative accuracy-gap and slack-time quantities that motivate
// layer removal.
package pareto

import "sort"

// Point is one network on the latency/accuracy plane.
type Point struct {
	Label    string
	Latency  float64 // milliseconds, lower is better
	Accuracy float64 // angular similarity, higher is better
}

// Dominates reports whether a is at least as good as b on both axes and
// strictly better on at least one.
func Dominates(a, b Point) bool {
	if a.Latency > b.Latency || a.Accuracy < b.Accuracy {
		return false
	}
	return a.Latency < b.Latency || a.Accuracy > b.Accuracy
}

// Frontier returns the Pareto-optimal subset of points, sorted by
// latency ascending. Duplicate-latency points keep only the most
// accurate one.
func Frontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Latency != sorted[j].Latency {
			return sorted[i].Latency < sorted[j].Latency
		}
		return sorted[i].Accuracy > sorted[j].Accuracy
	})
	var out []Point
	best := -1.0
	for _, p := range sorted {
		if p.Accuracy > best {
			out = append(out, p)
			best = p.Accuracy
		}
	}
	return out
}

// BestUnderDeadline returns the most accurate point with latency not
// exceeding the deadline, and whether one exists. Ties prefer the lower
// latency.
func BestUnderDeadline(points []Point, deadline float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.Latency > deadline {
			continue
		}
		if !found || p.Accuracy > best.Accuracy ||
			(p.Accuracy == best.Accuracy && p.Latency < best.Latency) {
			best = p
			found = true
		}
	}
	return best, found
}

// GapAnalysis quantifies Fig. 1's "accuracy gap" and "slack time" for a
// deadline: the selected network, the slack it leaves on the table, and
// the accuracy it forgoes relative to the next network beyond the
// deadline.
type GapAnalysis struct {
	Deadline float64
	Selected Point
	// SlackMs is Deadline - Selected.Latency: time the selection leaves
	// unused.
	SlackMs float64
	// NextBeyond is the cheapest frontier point past the deadline, if any.
	NextBeyond Point
	HasNext    bool
	// AccuracyGap is NextBeyond.Accuracy - Selected.Accuracy: accuracy
	// unreachable because no candidate fits the slack.
	AccuracyGap float64
}

// Gap computes the GapAnalysis for points under the given deadline. The
// boolean is false when no point meets the deadline.
func Gap(points []Point, deadline float64) (GapAnalysis, bool) {
	sel, ok := BestUnderDeadline(points, deadline)
	if !ok {
		return GapAnalysis{Deadline: deadline}, false
	}
	ga := GapAnalysis{
		Deadline: deadline,
		Selected: sel,
		SlackMs:  deadline - sel.Latency,
	}
	front := Frontier(points)
	for _, p := range front {
		if p.Latency > deadline && p.Accuracy > sel.Accuracy {
			ga.NextBeyond = p
			ga.HasNext = true
			ga.AccuracyGap = p.Accuracy - sel.Accuracy
			break
		}
	}
	return ga, true
}
