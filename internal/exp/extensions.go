package exp

import (
	"netcut/internal/core"
	"netcut/internal/estimate"
	"netcut/internal/graph"
	"netcut/internal/pareto"
	"netcut/internal/profiler"
	"netcut/internal/zoo"
)

// AblIterativeCost compares NetCut against a NetAdapt-style baseline
// that retrains every candidate cutpoint instead of estimating its
// latency (the Sec. II related-work criticism). Both reach equivalent
// selections; the cost gap is the point.
func (l *Lab) AblIterativeCost() (*Figure, error) {
	cands, err := l.Candidates()
	if err != nil {
		return nil, err
	}
	prof := l.ProfilerEstimator()
	netcutRes, err := core.Explore(cands, l.cfg.DeadlineMs, prof, l.rt, l.cfg.Head)
	if err != nil {
		return nil, err
	}
	measure := core.Measurer(func(g *graph.Graph) float64 { return l.prof.Measure(g).MeanMs })
	iterRes, err := core.IterativeExplore(cands, l.cfg.DeadlineMs, l.rt, measure, l.cfg.Head)
	if err != nil {
		return nil, err
	}

	f := &Figure{
		ID:    "abl-iterative",
		Title: "Ablation: estimator-driven vs retrain-each-iteration exploration",
	}
	s := Series{Name: "summary"}
	s.add(0, netcutRes.ExplorationHours, "NetCut exploration hours")
	s.add(1, float64(netcutRes.RetrainedCount), "NetCut TRNs retrained")
	s.add(2, iterRes.ExplorationHours, "iterative (NetAdapt-style) exploration hours")
	s.add(3, float64(iterRes.RetrainedCount), "iterative TRNs retrained")
	f.Series = append(f.Series, s)

	if netcutRes.Best != nil && iterRes.Best != nil {
		f.Note("selections: NetCut %s (%.3f) vs iterative %s (%.3f)",
			netcutRes.Best.TRN.Name(), netcutRes.Best.Accuracy,
			iterRes.Best.TRN.Name(), iterRes.Best.Accuracy)
	}
	if netcutRes.ExplorationHours > 0 {
		f.Note("retraining every examined cutpoint costs %.1fx more exploration time for an equivalent selection",
			iterRes.ExplorationHours/netcutRes.ExplorationHours)
	}
	return f, nil
}

// AblExtendedZoo reruns the exploration with the extended zoo (the
// paper's seven plus VGG-16 and SqueezeNet 1.1) to show the methodology
// absorbs new architecture families without change.
func (l *Lab) AblExtendedZoo() (*Figure, error) {
	base, err := l.Candidates()
	if err != nil {
		return nil, err
	}
	cands := append([]core.Candidate(nil), base...)
	// Copy the lab's tables so the extension entries do not leak into
	// the shared paper-zoo state.
	extTables := make(map[string]*profiler.Table, len(zoo.Names)+len(zoo.ExtendedNames))
	for k, v := range l.Tables() {
		extTables[k] = v
	}
	for _, name := range zoo.ExtendedNames {
		g, err := zoo.ExtendedByName(name)
		if err != nil {
			return nil, err
		}
		acc, err := l.sim.OffTheShelfAccuracy(name)
		if err != nil {
			return nil, err
		}
		extTables[name] = l.prof.Profile(g)
		cands = append(cands, core.Candidate{
			Graph:      g,
			MeasuredMs: l.prof.Measure(g).MeanMs,
			Accuracy:   acc,
		})
	}

	f := &Figure{
		ID:     "abl-extended",
		Title:  "Ablation: extended zoo (paper's 7 + VGG-16 + SqueezeNet 1.1)",
		XLabel: "latency (ms)",
		YLabel: "accuracy (angular distance)",
	}
	s := Series{Name: "off-the-shelf (extended)"}
	var pts []pareto.Point
	for _, c := range cands {
		s.add(c.MeasuredMs, c.Accuracy, c.Graph.Name)
		pts = append(pts, pareto.Point{Label: c.Graph.Name, Latency: c.MeasuredMs, Accuracy: c.Accuracy})
	}
	f.Series = append(f.Series, s)

	est := estimate.NewProfilerEstimator(extTables)
	res, err := core.Explore(cands, l.cfg.DeadlineMs, est, l.rt, l.cfg.Head)
	if err != nil {
		return nil, err
	}
	sel := Series{Name: "NetCut proposals (extended)"}
	for _, p := range res.Proposals {
		sel.add(l.prof.Measure(p.TRN.Graph).MeanMs, p.Accuracy, p.TRN.Name())
	}
	f.Series = append(f.Series, sel)
	if res.Best != nil {
		f.Note("extended-zoo selection at %.2f ms: %s (accuracy %.3f)",
			l.cfg.DeadlineMs, res.Best.TRN.Name(), res.Best.Accuracy)
	}
	if ga, ok := pareto.Gap(pts, l.cfg.DeadlineMs); ok {
		f.Note("extended off-the-shelf pick at the deadline: %s (%.3f)", ga.Selected.Label, ga.Selected.Accuracy)
	}
	return f, nil
}
