package exp

import (
	"bytes"
	"runtime"
	"testing"

	"netcut/internal/profiler"
)

// renderAll builds a fresh Lab and renders every figure into one byte
// stream.
func renderAll(t *testing.T, seed int64) []byte {
	t.Helper()
	l, err := NewLab(Config{
		Seed:     seed,
		Protocol: profiler.Protocol{WarmupRuns: 30, TimedRuns: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	figs, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, f := range figs {
		if err := f.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestAllDeterministicAcrossGOMAXPROCS is the determinism contract: a
// fixed Config.Seed must produce byte-identical figure renders
// regardless of how many workers the measurement pipeline fans out
// over, because every task derives its noise from the seed plus its own
// identity, never from scheduling.
//
// The guard list extending this contract up the stack:
// netcut.TestSelectDeterministicAcrossRunsAndWidths (public API),
// netcut.TestPlannerDeterministicUnderConcurrentStress (the shared-
// cache planning service), and
// gateway.TestGatewayDeterministicAcrossGOMAXPROCS (the HTTP serving
// layer with coalescing and batching).
func TestAllDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure three times")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	serial := renderAll(t, 7)
	runtime.GOMAXPROCS(4)
	wide := renderAll(t, 7)
	repeat := renderAll(t, 7)

	if !bytes.Equal(serial, wide) {
		t.Fatal("GOMAXPROCS=4 render differs from GOMAXPROCS=1 render for the same seed")
	}
	if !bytes.Equal(wide, repeat) {
		t.Fatal("repeated parallel render differs from itself for the same seed")
	}
	if len(serial) == 0 {
		t.Fatal("empty render")
	}
}

// TestSeedChangesRender guards the other side of the contract: the seed
// must actually steer the measurement noise, or the determinism test
// above would pass vacuously on constant output.
func TestSeedChangesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure twice")
	}
	a := renderAll(t, 7)
	b := renderAll(t, 8)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical renders; noise stream is not seeded")
	}
}

// TestSharedStateEscapes verifies the accessors hand out copies: mutating
// what they return must not corrupt the lab's internal state.
func TestSharedStateEscapes(t *testing.T) {
	l, err := NewLab(Config{
		Seed:     3,
		Protocol: profiler.Protocol{WarmupRuns: 10, TimedRuns: 20},
	})
	if err != nil {
		t.Fatal(err)
	}

	nets := l.Networks()
	nets[0] = nil
	if l.Networks()[0] == nil {
		t.Fatal("Networks() leaked the internal slice")
	}

	tbls := l.Tables()
	n := len(tbls)
	for k := range tbls {
		delete(tbls, k)
	}
	tbls["bogus"] = nil
	if got := len(l.Tables()); got != n {
		t.Fatalf("Tables() leaked the internal map: %d entries after caller mutation, want %d", got, n)
	}

	cands, err := l.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	cands[0].Graph = nil
	fresh, err := l.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Graph == nil {
		t.Fatal("Candidates() leaked the internal slice")
	}

	samples, err := l.Samples()
	if err != nil {
		t.Fatal(err)
	}
	samples[0].TRN = nil
	freshS, err := l.Samples()
	if err != nil {
		t.Fatal(err)
	}
	if freshS[0].TRN == nil {
		t.Fatal("Samples() leaked the internal slice")
	}
}

// TestConcurrentLazyInitSingleflight hammers every lazy accessor from
// many goroutines; under -race this proves the singleflight init is
// sound, and the equality checks prove all callers observe one build.
func TestConcurrentLazyInitSingleflight(t *testing.T) {
	l, err := NewLab(Config{
		Seed:     5,
		Protocol: profiler.Protocol{WarmupRuns: 10, TimedRuns: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	const loops = 8
	sweeps := make([]interface{ TRNCount() int }, loops)
	done := make(chan error, 4*loops)
	for i := 0; i < loops; i++ {
		i := i
		go func() {
			sw, err := l.Sweep()
			sweeps[i] = sw
			done <- err
		}()
		go func() {
			_, err := l.Candidates()
			done <- err
		}()
		go func() {
			_, err := l.AnalyticalEstimator()
			done <- err
		}()
		go func() {
			l.Tables()
			done <- nil
		}()
	}
	for i := 0; i < 4*loops; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < loops; i++ {
		if sweeps[i] != sweeps[0] {
			t.Fatal("concurrent Sweep() calls built distinct sweeps; singleflight failed")
		}
	}
}
