package exp

import (
	"netcut/internal/core"
	"netcut/internal/device"
	"netcut/internal/estimate"
	"netcut/internal/metric"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// AblEstimatorChoice sweeps the deadline and compares the quality of
// NetCut's final selection under the three estimators: does a worse
// latency model pick worse networks or violate the deadline?
func (l *Lab) AblEstimatorChoice() (*Figure, error) {
	ana, err := l.AnalyticalEstimator()
	if err != nil {
		return nil, err
	}
	lin, err := l.LinearEstimator()
	if err != nil {
		return nil, err
	}
	ests := []estimate.Estimator{l.ProfilerEstimator(), ana, lin}

	f := &Figure{
		ID:     "abl-estimators",
		Title:  "Ablation: estimator choice vs selection quality across deadlines",
		XLabel: "deadline (ms)",
		YLabel: "accuracy of the selected network",
	}
	deadlines := []float64{0.3, 0.5, 0.7, 0.9, 1.2, 1.6, 2.2, 3.0}
	violations := map[string]int{}
	for _, est := range ests {
		s := Series{Name: est.Name()}
		for _, d := range deadlines {
			cands, err := l.Candidates()
			if err != nil {
				return nil, err
			}
			res, err := coreExplore(l, cands, d, est)
			if err != nil {
				return nil, err
			}
			if res.Best == nil {
				s.add(d, 0, "infeasible")
				continue
			}
			truth := l.prof.Measure(res.Best.TRN.Graph).MeanMs
			label := res.Best.TRN.Name()
			if truth > d {
				violations[est.Name()]++
				label += " (misses deadline!)"
			}
			s.add(d, res.Best.Accuracy, label)
		}
		f.Series = append(f.Series, s)
	}
	for _, est := range ests {
		f.Note("%s: %d ground-truth deadline violations across %d deadlines",
			est.Name(), violations[est.Name()], len(deadlines))
	}
	f.Note("a 4x worse latency model (linear) turns into missed deadlines or overly conservative cuts — why Sec. V-B invests in estimation accuracy")
	return f, nil
}

// AblBlockGranularity compares blockwise and exhaustive (per-layer)
// NetCut proposals on InceptionV3 and ResNet-50: accuracy gained vs
// cutpoints examined (the Sec. IV-A design choice).
func (l *Lab) AblBlockGranularity() (*Figure, error) {
	prof := l.ProfilerEstimator()
	f := &Figure{
		ID:     "abl-block",
		Title:  "Ablation: blockwise vs per-layer cut granularity",
		XLabel: "cutpoints examined",
		YLabel: "accuracy of first feasible TRN",
	}
	for _, name := range []string{"InceptionV3", "ResNet-50"} {
		g, err := zoo.ByName(name)
		if err != nil {
			return nil, err
		}
		s := Series{Name: name}

		// Blockwise: Algorithm 1 as published.
		blockIters := 0
		var blockAcc float64
		var blockLabel string
		for c := 1; c <= g.BlockCount(); c++ {
			blockIters++
			tr, err := trim.Cut(g, c, l.cfg.Head)
			if err != nil {
				return nil, err
			}
			est, err := prof.EstimateMs(tr)
			if err != nil {
				return nil, err
			}
			if est <= l.cfg.DeadlineMs {
				acc, err := l.sim.Accuracy(tr)
				if err != nil {
					return nil, err
				}
				blockAcc, blockLabel = acc, tr.Name()
				break
			}
		}
		s.add(float64(blockIters), blockAcc, "blockwise "+blockLabel)

		// Exhaustive: cut one layer deeper at a time from the top.
		exhaustive, err := trim.EnumerateExhaustive(g, l.cfg.Head)
		if err != nil {
			return nil, err
		}
		exIters := 0
		var exAcc float64
		var exLabel string
		for i := len(exhaustive) - 1; i >= 0; i-- { // deepest-last ordering: walk from the top
			tr := exhaustive[i]
			exIters++
			est, err := prof.EstimateMs(tr)
			if err != nil {
				return nil, err
			}
			if est <= l.cfg.DeadlineMs {
				acc, err := l.sim.Accuracy(tr)
				if err != nil {
					return nil, err
				}
				exAcc, exLabel = acc, tr.Name()
				break
			}
		}
		s.add(float64(exIters), exAcc, "per-layer "+exLabel)
		f.Series = append(f.Series, s)
		f.Note("%s: per-layer search examined %dx more cutpoints for %+.4f accuracy (paper: within-block gains < 0.03)",
			name, exIters/max(blockIters, 1), exAcc-blockAcc)
	}
	return f, nil
}

// AblDeviceModes quantifies what the deployment optimizations of
// Sec. III-B4 (layer fusion, quantization) contribute on the simulated
// device.
func (l *Lab) AblDeviceModes() (*Figure, error) {
	f := &Figure{
		ID:     "abl-device",
		Title:  "Ablation: deployment optimizations on the simulated device",
		XLabel: "network index (order of zoo.Names)",
		YLabel: "latency (ms)",
	}
	modes := []struct {
		name      string
		fusion    bool
		precision device.Precision
	}{
		{"int8+fusion (deployed)", true, device.INT8},
		{"int8, no fusion", false, device.INT8},
		{"fp16+fusion", true, device.FP16},
		{"fp32+fusion", true, device.FP32},
	}
	base := map[string]float64{}
	for _, m := range modes {
		cfg := *l.cfg.Device
		cfg.Fusion = m.fusion
		cfg.Precision = m.precision
		d := device.New(cfg)
		s := Series{Name: m.name}
		for i, g := range l.Networks() {
			lat := d.LatencyMs(g)
			s.add(float64(i), lat, g.Name)
			if m.name == modes[0].name {
				base[g.Name] = lat
			}
		}
		f.Series = append(f.Series, s)
	}
	var fusionWin, fp32Cost []float64
	for i, g := range l.Networks() {
		fusionWin = append(fusionWin, f.Series[1].Y[i]/base[g.Name])
		fp32Cost = append(fp32Cost, f.Series[3].Y[i]/base[g.Name])
	}
	f.Note("disabling fusion costs %.2fx on average (worst: DenseNet-121's unfused activations)", metric.Mean(fusionWin))
	f.Note("fp32 costs %.2fx vs deployed int8 on average", metric.Mean(fp32Cost))
	return f, nil
}

// coreExplore is a tiny seam so ablations can explore at non-default
// deadlines without mutating the lab config.
func coreExplore(l *Lab, cands []core.Candidate, deadline float64, est estimate.Estimator) (*core.Result, error) {
	return core.Explore(cands, deadline, est, l.rt, l.cfg.Head)
}
