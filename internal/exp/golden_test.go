package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden markdown artefacts")

// TestMarkdownArtefactsMatchGolden renders every figure and table the
// way `netexp -markdown` does (same Lab config as the binary's flag
// defaults: seed 1, deadline 0.9 ms) and compares each against its
// golden file byte for byte. This pins the whole numeric surface of
// the reproduction: any refactor of the measurement pipeline, the
// parallel fan-outs (e.g. Fig4's exhaustive loop), the SVR warm-start
// chains or the cache layers that changes a single emitted byte fails
// here.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/exp -run Golden -update
func TestMarkdownArtefactsMatchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every artefact")
	}
	lab, err := NewLab(Config{Seed: 1, DeadlineMs: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	figs, err := lab.All()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range figs {
		t.Run(f.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := f.Markdown(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", f.ID+".md")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("markdown for %s diverged from golden %s\n-- got --\n%s\n-- want --\n%s",
					f.ID, path, truncate(buf.String()), truncate(string(want)))
			}
		})
	}
}

func truncate(s string) string {
	const max = 2000
	if len(s) <= max {
		return s
	}
	return s[:max] + "\n... (truncated)"
}
