package exp

import (
	"fmt"
	"sort"

	"netcut/internal/core"
	"netcut/internal/estimate"
	"netcut/internal/metric"
	"netcut/internal/par"
	"netcut/internal/pareto"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// Fig1 reproduces the off-the-shelf latency/accuracy trade-off with the
// 0.9 ms deadline, the selected network, and the accuracy gap and slack
// time that motivate layer removal.
func (l *Lab) Fig1() (*Figure, error) {
	cands, err := l.Candidates()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig1",
		Title:  "Latency/accuracy trade-off of off-the-shelf networks",
		XLabel: "latency (ms)",
		YLabel: "accuracy (angular distance)",
	}
	s := Series{Name: "off-the-shelf"}
	var pts []pareto.Point
	for _, c := range cands {
		s.add(c.MeasuredMs, c.Accuracy, c.Graph.Name)
		pts = append(pts, pareto.Point{Label: c.Graph.Name, Latency: c.MeasuredMs, Accuracy: c.Accuracy})
	}
	f.Series = append(f.Series, s)
	ga, ok := pareto.Gap(pts, l.cfg.DeadlineMs)
	if !ok {
		return nil, fmt.Errorf("exp: no off-the-shelf network meets %.2f ms", l.cfg.DeadlineMs)
	}
	f.Note("deadline %.2f ms selects %s at %.3f ms with accuracy %.3f (paper: MobileNetV1 (0.5), 0.36 ms, 0.81)",
		ga.Deadline, ga.Selected.Label, ga.Selected.Latency, ga.Selected.Accuracy)
	f.Note("slack time %.3f ms; accuracy gap %.3f to %s", ga.SlackMs, ga.AccuracyGap, ga.NextBeyond.Label)
	return f, nil
}

// Fig4 reproduces the blockwise-vs-exhaustive removal comparison on
// InceptionV3: angular-distance error against layers removed.
func (l *Lab) Fig4() (*Figure, error) {
	g, err := zoo.ByName("InceptionV3")
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig4",
		Title:  "Blockwise vs exhaustive layer removal (InceptionV3)",
		XLabel: "# layers removed",
		YLabel: "angular distance error",
	}
	exhaustive, err := trim.EnumerateExhaustive(g, l.cfg.Head)
	if err != nil {
		return nil, err
	}
	se := Series{Name: "Exhaustive Search"}
	type pt struct {
		r   int
		err float64
	}
	// The exhaustive family is the figure's hot loop (one accuracy
	// evaluation per eligible cut node); fan it out over the pool into
	// position-indexed slots, so the assembled point list — and the
	// unstable sort below, which sees the identical input order — match
	// a serial run exactly.
	epts := make([]pt, len(exhaustive))
	err = par.ForEach(len(exhaustive), func(i int) error {
		acc, err := l.sim.Accuracy(exhaustive[i])
		if err != nil {
			return err
		}
		epts[i] = pt{exhaustive[i].LayersRemoved, 1 - acc}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(epts, func(i, j int) bool { return epts[i].r < epts[j].r })
	for _, p := range epts {
		se.add(float64(p.r), p.err, "")
	}
	f.Series = append(f.Series, se)

	blocks, err := trim.EnumerateBlockwise(g, l.cfg.Head, true)
	if err != nil {
		return nil, err
	}
	sb := Series{Name: "Block Search"}
	var maxDiv float64
	for _, tr := range blocks {
		acc, err := l.sim.Accuracy(tr)
		if err != nil {
			return nil, err
		}
		sb.add(float64(tr.LayersRemoved), 1-acc, tr.Name())
	}
	f.Series = append(f.Series, sb)
	// Divergence of the exhaustive curve from the nearest deeper block
	// point (the paper's < 0.03 claim).
	for _, p := range epts {
		var deeper float64
		found := false
		for i := range sb.X {
			if int(sb.X[i]) >= p.r {
				deeper = sb.Y[i]
				found = true
				break
			}
		}
		if found && deeper-p.err > maxDiv {
			maxDiv = deeper - p.err
		}
	}
	f.Note("max accuracy advantage of a partial-block cut over the full block: %.4f (paper: < 0.03)", maxDiv)
	f.Note("exhaustive candidates: %d, blockwise candidates: %d", len(exhaustive), len(blocks)-1)
	return f, nil
}

// Fig5 reproduces the accuracy-vs-layers-removed curves of all seven
// architectures under blockwise removal and retraining.
func (l *Lab) Fig5() (*Figure, error) {
	sw, err := l.Sweep()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig5",
		Title:  "Effect of layer removal on accuracy (148 retrained TRNs)",
		XLabel: "# layers removed",
		YLabel: "accuracy (angular distance)",
	}
	perNet := map[string]*Series{}
	for _, name := range zoo.Names {
		perNet[name] = &Series{Name: name}
	}
	for _, e := range sw.Entries {
		perNet[e.TRN.Parent.Name].add(float64(e.TRN.LayersRemoved), e.Accuracy, "")
	}
	for _, name := range zoo.Names {
		f.Series = append(f.Series, *perNet[name])
	}
	f.Note("DenseNet-121 and InceptionV3 stay within 0.03 of base accuracy past 100 removed layers; MobileNets collapse immediately (paper Sec. IV-B1)")
	return f, nil
}

// Fig6 reproduces the TRN latency/accuracy scatter (log-x in the paper).
func (l *Lab) Fig6() (*Figure, error) {
	sw, err := l.Sweep()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig6",
		Title:  "Accuracy-performance trade-off of blockwise TRNs",
		XLabel: "latency (ms)",
		YLabel: "accuracy (angular distance)",
	}
	perNet := map[string]*Series{}
	for _, name := range zoo.Names {
		perNet[name] = &Series{Name: name}
	}
	for _, e := range sw.Entries {
		perNet[e.TRN.Parent.Name].add(e.MeasuredMs, e.Accuracy, e.TRN.Name())
	}
	for _, name := range zoo.Names {
		f.Series = append(f.Series, *perNet[name])
	}
	return f, nil
}

// Fig7 reproduces the off-the-shelf vs blockwise Pareto frontiers and
// the headline relative-improvement numbers the frontier yields.
func (l *Lab) Fig7() (*Figure, error) {
	cands, err := l.Candidates()
	if err != nil {
		return nil, err
	}
	sw, err := l.Sweep()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig7",
		Title:  "Off-the-shelf vs blockwise Pareto frontier",
		XLabel: "latency (ms)",
		YLabel: "accuracy (angular distance)",
	}
	var off []pareto.Point
	for _, c := range cands {
		off = append(off, pareto.Point{Label: c.Graph.Name, Latency: c.MeasuredMs, Accuracy: c.Accuracy})
	}
	offFront := pareto.Frontier(off)
	so := Series{Name: "Off-the-shelf Pareto Frontier"}
	for _, p := range offFront {
		so.add(p.Latency, p.Accuracy, p.Label)
	}
	f.Series = append(f.Series, so)

	blockFront := pareto.Frontier(sw.Points())
	sb := Series{Name: "Blockwise Pareto Frontier"}
	for _, p := range blockFront {
		sb.add(p.Latency, p.Accuracy, p.Label)
	}
	f.Series = append(f.Series, sb)

	maxImp, avgImp, maxLabel := improvementOverOffTheShelf(blockFront, off)
	f.Note("max relative accuracy improvement over the off-the-shelf choice: %.2f%% at %s (paper: 10.43%% from MobileNetV1 (0.5) minus one block)", 100*maxImp, maxLabel)
	f.Note("mean relative improvement across frontier TRNs: %.2f%% (paper: 5.0%% averaged over its TRN set)", 100*avgImp)
	f.Note("mean improvement averaged over a uniform deadline sweep: %.2f%%", 100*deadlineAveragedImprovement(blockFront, off))
	return f, nil
}

// deadlineAveragedImprovement averages, over a uniform grid of
// deadlines covering the off-the-shelf latency range, the relative
// accuracy improvement of the blockwise frontier's selection over the
// off-the-shelf selection.
func deadlineAveragedImprovement(front, off []pareto.Point) float64 {
	lo, hi := off[0].Latency, off[0].Latency
	for _, p := range off {
		if p.Latency < lo {
			lo = p.Latency
		}
		if p.Latency > hi {
			hi = p.Latency
		}
	}
	var imps []float64
	const steps = 200
	for i := 0; i <= steps; i++ {
		d := lo + (hi-lo)*float64(i)/steps
		offSel, ok1 := pareto.BestUnderDeadline(off, d)
		trnSel, ok2 := pareto.BestUnderDeadline(front, d)
		if !ok1 || !ok2 {
			continue
		}
		imps = append(imps, metric.RelativeImprovement(trnSel.Accuracy, offSel.Accuracy))
	}
	return metric.Mean(imps)
}

// improvementOverOffTheShelf computes, for every proper TRN on the new
// frontier, its relative accuracy improvement over the best off-the-shelf
// network at the TRN's latency (i.e. with the TRN's latency as the
// deadline), returning the max, mean and argmax label.
func improvementOverOffTheShelf(front []pareto.Point, off []pareto.Point) (maxImp, avgImp float64, maxLabel string) {
	var imps []float64
	for _, p := range front {
		if isOffTheShelf(p.Label) {
			continue
		}
		sel, ok := pareto.BestUnderDeadline(off, p.Latency)
		if !ok {
			continue // faster than every off-the-shelf network
		}
		imp := metric.RelativeImprovement(p.Accuracy, sel.Accuracy)
		imps = append(imps, imp)
		if imp > maxImp {
			maxImp = imp
			maxLabel = p.Label
		}
	}
	return maxImp, metric.Mean(imps), maxLabel
}

// isOffTheShelf reports whether a sweep label denotes an uncut network
// (cut-0 entries are labelled "<name>/0").
func isOffTheShelf(label string) bool {
	n := len(label)
	return n >= 2 && label[n-2:] == "/0"
}

// Fig8 reproduces the estimated-vs-ground-truth latency curves for
// ResNet-50 TRNs.
func (l *Lab) Fig8() (*Figure, error) {
	g, err := zoo.ByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	samples, err := l.Samples()
	if err != nil {
		return nil, err
	}
	ana, err := l.AnalyticalEstimator()
	if err != nil {
		return nil, err
	}
	prof := l.ProfilerEstimator()

	f := &Figure{
		ID:     "fig8",
		Title:  "Latency estimation vs ground truth (ResNet-50 TRNs)",
		XLabel: "# layers removed",
		YLabel: "latency (ms)",
	}
	base := Series{Name: "Baseline"}
	pe := Series{Name: "Profiler Estimation"}
	an := Series{Name: "Analytical Estimation"}
	for _, s := range samples {
		if s.TRN.Parent.Name != g.Name {
			continue
		}
		x := float64(s.TRN.LayersRemoved)
		base.add(x, s.MeasuredMs, "")
		p, err := prof.EstimateMs(s.TRN)
		if err != nil {
			return nil, err
		}
		pe.add(x, p, "")
		a, err := ana.EstimateMs(s.TRN)
		if err != nil {
			return nil, err
		}
		an.add(x, a, "")
	}
	f.Series = append(f.Series, base, pe, an)
	var pErr, aErr []float64
	for i := range base.X {
		pErr = append(pErr, metric.RelativeError(pe.Y[i], base.Y[i]))
		aErr = append(aErr, metric.RelativeError(an.Y[i], base.Y[i]))
	}
	f.Note("ResNet-50 mean relative error: profiler %.2f%%, analytical %.2f%% (paper Fig. 9 reports the analytical model winning on ResNet-50; on our simulated device the ratio estimator is stronger — see EXPERIMENTS.md)",
		100*metric.Mean(pErr), 100*metric.Mean(aErr))
	return f, nil
}

// Fig9 reproduces the per-network relative prediction errors of both
// estimators plus the linear-regression average.
func (l *Lab) Fig9() (*Figure, error) {
	test, err := l.TestSamples()
	if err != nil {
		return nil, err
	}
	all, err := l.Samples()
	if err != nil {
		return nil, err
	}
	ana, err := l.AnalyticalEstimator()
	if err != nil {
		return nil, err
	}
	lin, err := l.LinearEstimator()
	if err != nil {
		return nil, err
	}
	prof := l.ProfilerEstimator()

	f := &Figure{
		ID:     "fig9",
		Title:  "Relative latency-prediction error per network (%)",
		XLabel: "network index (order of zoo.Names)",
		YLabel: "mean relative error (%)",
	}
	band := estimate.DeployableBand(test, l.cfg.BandMinMs)
	profBand := estimate.DeployableBand(all, l.cfg.BandMinMs)

	perNet := func(e estimate.Estimator, samples []estimate.Sample) (map[string]float64, float64, error) {
		errsByNet := map[string][]float64{}
		var allErrs []float64
		for _, s := range samples {
			got, err := e.EstimateMs(s.TRN)
			if err != nil {
				return nil, 0, err
			}
			re := metric.RelativeError(got, s.MeasuredMs)
			errsByNet[s.TRN.Parent.Name] = append(errsByNet[s.TRN.Parent.Name], re)
			allErrs = append(allErrs, re)
		}
		out := map[string]float64{}
		for k, v := range errsByNet {
			out[k] = metric.Mean(v)
		}
		return out, metric.Mean(allErrs), nil
	}

	anaErrs, anaAvg, err := perNet(ana, band)
	if err != nil {
		return nil, err
	}
	// The profiler estimator needs no training split: evaluate on every
	// TRN, as the paper's seven tables allow.
	profErrs, profAvg, err := perNet(prof, profBand)
	if err != nil {
		return nil, err
	}
	_, linAvg, err := perNet(lin, band)
	if err != nil {
		return nil, err
	}

	sa := Series{Name: "Analytical Estimation"}
	sp := Series{Name: "Profiler Estimation"}
	for i, name := range zoo.Names {
		sa.add(float64(i), 100*anaErrs[name], name)
		sp.add(float64(i), 100*profErrs[name], name)
	}
	f.Series = append(f.Series, sa, sp)
	f.Note("average relative error: profiler %.2f%% (paper: 3.5%%), analytical %.2f%% (paper: 4.28%%)", 100*profAvg, 100*anaAvg)
	f.Note("linear regression average: %.2f%% (paper: 23.81%%) — the RBF kernel is what makes the analytical model viable", 100*linAvg)
	f.Note("errors computed over TRNs with measured latency >= %.2f ms; ultra-deep stem stubs are dominated by the fixed replacement-head cost invisible to Eq. (1)", l.cfg.BandMinMs)
	return f, nil
}

// Fig10 reproduces the final selected networks at the deadline for both
// estimators, with their measured latencies and retrained accuracies.
func (l *Lab) Fig10() (*Figure, error) {
	prof := l.ProfilerEstimator()
	ana, err := l.AnalyticalEstimator()
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     "fig10",
		Title:  fmt.Sprintf("Final selected networks at %.2f ms", l.cfg.DeadlineMs),
		XLabel: "latency (ms, measured)",
		YLabel: "accuracy (angular distance)",
	}
	offBest, err := l.offTheShelfSelection()
	if err != nil {
		return nil, err
	}
	for _, run := range []struct {
		est  estimate.Estimator
		name string
	}{{prof, "Profiler Selection"}, {ana, "Analytical Selection"}} {
		res, err := l.Explore(run.est)
		if err != nil {
			return nil, err
		}
		s := Series{Name: run.name}
		for _, p := range res.Proposals {
			truth := l.prof.Measure(p.TRN.Graph).MeanMs
			s.add(truth, p.Accuracy, p.TRN.Name())
		}
		f.Series = append(f.Series, s)
		if res.Best != nil {
			imp := metric.RelativeImprovement(res.Best.Accuracy, offBest.Accuracy)
			f.Note("%s final network: %s, accuracy %.3f, %+.2f%% vs off-the-shelf %s (paper: ResNet-50/94 +5.7%%, ResNet-50/114 +2.2%%)",
				run.name, res.Best.TRN.Name(), res.Best.Accuracy, 100*imp, offBest.Label)
		}
	}
	return f, nil
}

func (l *Lab) offTheShelfSelection() (pareto.Point, error) {
	cands, err := l.Candidates()
	if err != nil {
		return pareto.Point{}, err
	}
	var pts []pareto.Point
	for _, c := range cands {
		pts = append(pts, pareto.Point{Label: c.Graph.Name, Latency: c.MeasuredMs, Accuracy: c.Accuracy})
	}
	sel, ok := pareto.BestUnderDeadline(pts, l.cfg.DeadlineMs)
	if !ok {
		return pareto.Point{}, fmt.Errorf("exp: no off-the-shelf network meets %.2f ms", l.cfg.DeadlineMs)
	}
	return sel, nil
}

// Tab1 reproduces the headline exploration-cost comparison: 148
// blockwise candidates and ~183 hours against NetCut's handful of
// retrained TRNs and ~6.7 hours (27x).
func (l *Lab) Tab1() (*Figure, error) {
	sw, err := l.Sweep()
	if err != nil {
		return nil, err
	}
	prof := l.ProfilerEstimator()
	ana, err := l.AnalyticalEstimator()
	if err != nil {
		return nil, err
	}
	resP, err := l.Explore(prof)
	if err != nil {
		return nil, err
	}
	resA, err := l.Explore(ana)
	if err != nil {
		return nil, err
	}
	// Estimator setup cost: profiling runs at measured latency plus the
	// SVR's training measurements, charged honestly.
	setupHours := l.profilingCostHours()
	sp := core.CompareCost(sw, []*core.Result{resP, resA}, setupHours)

	f := &Figure{
		ID:    "tab1",
		Title: "Exploration cost: blockwise sweep vs NetCut",
	}
	s := Series{Name: "summary"}
	s.add(0, float64(sp.SweepTRNs), "blockwise TRN candidates (paper: 148)")
	s.add(1, sp.SweepHours, "blockwise exploration hours (paper: 183)")
	s.add(2, float64(sp.NetCutRetrain), "NetCut retrained TRNs (paper: 9)")
	s.add(3, sp.NetCutHours, "NetCut exploration hours (paper: 6.7)")
	s.add(4, sp.Factor, "speedup (paper: 27x)")
	s.add(5, 100*(1-float64(sp.NetCutRetrain)/float64(sp.SweepTRNs)), "candidate reduction % (paper: 95%)")
	f.Series = append(f.Series, s)
	return f, nil
}

// profilingCostHours charges the wall-clock cost of the measurement
// protocol across the seven networks (the only on-device work NetCut
// needs beyond retraining).
func (l *Lab) profilingCostHours() float64 {
	cands, err := l.Candidates()
	if err != nil {
		return 0
	}
	totalMs := 0.0
	runs := float64(l.cfg.Protocol.WarmupRuns + l.cfg.Protocol.TimedRuns)
	for _, c := range cands {
		totalMs += c.MeasuredMs * runs * 2 // measure + per-layer profile
	}
	return totalMs / 3600e3
}
