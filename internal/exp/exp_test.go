package exp

import (
	"bytes"
	"strings"
	"testing"

	"netcut/internal/profiler"
)

var sharedLab *Lab

// lab returns a shared Lab with a reduced measurement protocol so the
// whole suite stays fast; the bench harness uses the paper protocol.
func lab(t *testing.T) *Lab {
	t.Helper()
	if sharedLab != nil {
		return sharedLab
	}
	l, err := NewLab(Config{
		Seed:     1,
		Protocol: profiler.Protocol{WarmupRuns: 60, TimedRuns: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedLab = l
	return l
}

func TestFig1(t *testing.T) {
	f, err := lab(t).Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 1 || f.Series[0].Len() != 7 {
		t.Fatalf("fig1 should have 7 off-the-shelf points, got %+v", f.Series)
	}
	if len(f.Notes) != 2 {
		t.Fatalf("fig1 notes = %v", f.Notes)
	}
	if !strings.Contains(f.Notes[0], "MobileNetV1 (0.5)") {
		t.Fatalf("fig1 must select MobileNetV1 (0.5) at 0.9 ms: %s", f.Notes[0])
	}
}

func TestFig4(t *testing.T) {
	f, err := lab(t).Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("fig4 needs exhaustive + block series")
	}
	ex, bl := f.Series[0], f.Series[1]
	if ex.Len() != 310 {
		t.Fatalf("exhaustive series has %d points, want 310", ex.Len())
	}
	if bl.Len() != 12 { // cuts 0..11
		t.Fatalf("block series has %d points, want 12", bl.Len())
	}
	// Error grows with removal on the block series.
	if bl.Y[0] >= bl.Y[bl.Len()-1] {
		t.Fatal("block error does not grow with removal")
	}
	// The paper's < 0.03 within-block claim is reported in the notes.
	if !strings.Contains(f.Notes[0], "0.03") {
		t.Fatalf("fig4 note missing the 0.03 claim: %s", f.Notes[0])
	}
}

func TestFig5(t *testing.T) {
	f, err := lab(t).Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 7 {
		t.Fatalf("fig5 has %d series, want 7", len(f.Series))
	}
	byName := map[string]*Series{}
	total := 0
	for i := range f.Series {
		byName[f.Series[i].Name] = &f.Series[i]
		total += f.Series[i].Len()
	}
	if total != 155 {
		t.Fatalf("fig5 plots %d TRNs, want 155 (148 + 7 originals)", total)
	}
	// Shape checks mirroring the paper's observations.
	dn := byName["DenseNet-121"]
	var dnAt100 float64
	for i := range dn.X {
		if dn.X[i] >= 100 {
			dnAt100 = dn.Y[i]
			break
		}
	}
	if dn.Y[0]-dnAt100 > 0.04 {
		t.Errorf("DenseNet lost %.3f by 100 removed; paper says < 0.03-ish", dn.Y[0]-dnAt100)
	}
	m1 := byName["MobileNetV1 (0.5)"]
	if m1.Y[0]-m1.Y[4] < 0.08 {
		t.Errorf("MobileNetV1 (0.5) should collapse by cut 4: %.3f -> %.3f", m1.Y[0], m1.Y[4])
	}
}

func TestFig6And7(t *testing.T) {
	l := lab(t)
	f6, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Series) != 7 {
		t.Fatalf("fig6 has %d series, want 7", len(f6.Series))
	}
	f7, err := l.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Series) != 2 {
		t.Fatal("fig7 needs two frontiers")
	}
	offN, blockN := f7.Series[0].Len(), f7.Series[1].Len()
	if blockN <= offN {
		t.Fatalf("blockwise frontier (%d) should be denser than off-the-shelf (%d)", blockN, offN)
	}
	// Headline: max improvement near the paper's 10.43%.
	if !strings.Contains(f7.Notes[0], "MobileNetV1 (0.5)") {
		t.Fatalf("max improvement should come from a MobileNetV1 (0.5) TRN: %s", f7.Notes[0])
	}
}

func TestFig8(t *testing.T) {
	f, err := lab(t).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatal("fig8 needs baseline + profiler + analytical")
	}
	for _, s := range f.Series {
		if s.Len() != 16 {
			t.Fatalf("series %s has %d points, want 16 ResNet cutpoints", s.Name, s.Len())
		}
	}
	// Baseline decreases monotonically with layers removed.
	base := f.Series[0]
	for i := 1; i < base.Len(); i++ {
		if base.Y[i] >= base.Y[i-1] {
			t.Fatalf("baseline latency not decreasing at %v", base.X[i])
		}
	}
}

func TestFig9(t *testing.T) {
	f, err := lab(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatal("fig9 needs analytical + profiler series")
	}
	for _, s := range f.Series {
		if s.Len() != 7 {
			t.Fatalf("series %s has %d bars, want 7", s.Name, s.Len())
		}
		for i, v := range s.Y {
			if v < 0 || v > 25 {
				t.Fatalf("series %s bar %d = %.2f%%, outside the plausible band", s.Name, i, v)
			}
		}
	}
	if !strings.Contains(f.Notes[1], "linear regression") &&
		!strings.Contains(f.Notes[1], "linear") {
		t.Fatalf("fig9 must report the linear baseline: %v", f.Notes)
	}
}

func TestFig10(t *testing.T) {
	f, err := lab(t).Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatal("fig10 needs profiler + analytical selections")
	}
	for _, s := range f.Series {
		if s.Len() != 7 {
			t.Fatalf("%s proposes %d networks, want 7", s.Name, s.Len())
		}
	}
	for _, n := range f.Notes {
		if !strings.Contains(n, "ResNet-50/") {
			t.Fatalf("final selection should be a ResNet-50 TRN: %s", n)
		}
	}
}

func TestTab1(t *testing.T) {
	f, err := lab(t).Tab1()
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	vals := map[string]float64{}
	for i, l := range s.Labels {
		vals[l] = s.Y[i]
	}
	if vals["blockwise TRN candidates (paper: 148)"] != 148 {
		t.Fatalf("candidates = %v", vals)
	}
	speedup := vals["speedup (paper: 27x)"]
	if speedup < 15 || speedup > 60 {
		t.Fatalf("speedup %.1f outside the 15-60x band around the paper's 27x", speedup)
	}
	red := vals["candidate reduction % (paper: 95%)"]
	if red < 90 {
		t.Fatalf("candidate reduction %.1f%%, want >= 90%%", red)
	}
}

func TestAblations(t *testing.T) {
	l := lab(t)
	a1, err := l.AblEstimatorChoice()
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Series) != 3 {
		t.Fatal("estimator ablation needs 3 series")
	}
	a2, err := l.AblBlockGranularity()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range a2.Notes {
		if !strings.Contains(n, "x more cutpoints") {
			t.Fatalf("block ablation note malformed: %s", n)
		}
	}
	a3, err := l.AblDeviceModes()
	if err != nil {
		t.Fatal(err)
	}
	a4, err := l.AblIterativeCost()
	if err != nil {
		t.Fatal(err)
	}
	// The iterative baseline must be clearly more expensive than NetCut.
	v := map[string]float64{}
	for i, lbl := range a4.Series[0].Labels {
		v[lbl] = a4.Series[0].Y[i]
	}
	if v["iterative (NetAdapt-style) exploration hours"] < 1.5*v["NetCut exploration hours"] {
		t.Fatalf("iterative baseline suspiciously cheap: %+v", v)
	}
	a5, err := l.AblExtendedZoo()
	if err != nil {
		t.Fatal(err)
	}
	if a5.Series[0].Len() != 9 {
		t.Fatalf("extended zoo has %d candidates, want 9", a5.Series[0].Len())
	}
	if a5.Series[1].Len() < 7 {
		t.Fatalf("extended exploration proposed only %d TRNs", a5.Series[1].Len())
	}
	a6, err := l.AblEarlyExit()
	if err != nil {
		t.Fatal(err)
	}
	if len(a6.Series) != 3 {
		t.Fatalf("early-exit ablation has %d series, want 3", len(a6.Series))
	}
	// Worst-case latencies dominate their expected counterparts.
	for i := range a6.Series[0].X {
		if a6.Series[1].X[i] < a6.Series[0].X[i] {
			t.Fatalf("worst case %.3f below expected %.3f", a6.Series[1].X[i], a6.Series[0].X[i])
		}
	}
	// Deployed int8+fusion must be the fastest mode everywhere.
	deployed := a3.Series[0]
	for si := 1; si < len(a3.Series); si++ {
		for i := range deployed.Y {
			if a3.Series[si].Y[i] <= deployed.Y[i] {
				t.Fatalf("mode %s beats deployed int8+fusion on %s",
					a3.Series[si].Name, deployed.Labels[i])
			}
		}
	}
}

func TestAllAndRender(t *testing.T) {
	figs, err := lab(t).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 15 {
		t.Fatalf("All produced %d figures, want 15", len(figs))
	}
	var buf bytes.Buffer
	for _, f := range figs {
		if err := f.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := f.Markdown(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"fig1", "FIG10", "tab1", "Pareto", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
}

func TestLabConfigDefaults(t *testing.T) {
	l, err := NewLab(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.Deadline() != 0.9 {
		t.Fatalf("default deadline = %v, want 0.9", l.Deadline())
	}
	if l.Device() == nil {
		t.Fatal("no device")
	}
}
