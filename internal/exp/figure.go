// Package exp is the experiment harness: one generator per figure and
// table of the paper's evaluation, each returning a printable Figure
// whose series carry the same rows the paper plots. cmd/netexp renders
// all of them; bench_test.go exposes one benchmark per artefact.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Series is one plotted line/point-set of a figure.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Labels []string // optional per-point labels (e.g. "ResNet-50/94")
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

func (s *Series) add(x, y float64, label string) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Labels = append(s.Labels, label)
}

// Figure is a reproduced paper artefact (figure or table).
type Figure struct {
	ID     string // e.g. "fig1", "tab1"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carry scalar findings (gaps, speedups, error averages) and
	// the paper's corresponding numbers for comparison.
	Notes []string
}

// Note appends a formatted note line.
func (f *Figure) Note(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Render writes the figure as aligned text rows.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", f.ID, f.Title)
	if f.XLabel != "" || f.YLabel != "" {
		fmt.Fprintf(&b, "   x: %s | y: %s\n", f.XLabel, f.YLabel)
	}
	for i := range f.Series {
		s := &f.Series[i]
		fmt.Fprintf(&b, "-- series %q (%d points)\n", s.Name, s.Len())
		for j := 0; j < s.Len(); j++ {
			label := ""
			if j < len(s.Labels) && s.Labels[j] != "" {
				label = "  " + s.Labels[j]
			}
			fmt.Fprintf(&b, "   %12.4f %12.4f%s\n", s.X[j], s.Y[j], label)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, " * %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the figure as a markdown section with a table per
// series, used to assemble EXPERIMENTS.md.
func (f *Figure) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(f.ID), f.Title)
	const maxRows = 36
	for i := range f.Series {
		s := &f.Series[i]
		fmt.Fprintf(&b, "**%s** (%d points)\n\n", s.Name, s.Len())
		fmt.Fprintf(&b, "| %s | %s | label |\n|---|---|---|\n", orDefault(f.XLabel, "x"), orDefault(f.YLabel, "y"))
		stride := 1
		if s.Len() > maxRows {
			stride = (s.Len() + maxRows - 1) / maxRows
		}
		shown := 0
		for j := 0; j < s.Len(); j += stride {
			label := ""
			if j < len(s.Labels) {
				label = s.Labels[j]
			}
			fmt.Fprintf(&b, "| %.4f | %.4f | %s |\n", s.X[j], s.Y[j], label)
			shown++
		}
		if stride > 1 {
			fmt.Fprintf(&b, "\n(series subsampled: showing %d of %d points; `cmd/netexp` prints all)\n", shown, s.Len())
		}
		fmt.Fprintln(&b)
	}
	if len(f.Notes) > 0 {
		fmt.Fprintf(&b, "Findings:\n\n")
		for _, n := range f.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
		fmt.Fprintln(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
