package exp

import (
	"netcut/internal/earlyexit"
	"netcut/internal/graph"
	"netcut/internal/pareto"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// AblEarlyExit compares NetCut's ahead-of-time layer removal with a
// BranchyNet-style early-exit network (the Sec. II related-work
// contrast) on ResNet-50. Early exit produces attractive *expected*
// latencies, but a hard real-time deadline budgets the *worst-case*
// path — the full backbone plus every side head — where a TRN's latency
// is a constant. The figure plots both semantics.
func (l *Lab) AblEarlyExit() (*Figure, error) {
	g, err := zoo.ByName("ResNet-50")
	if err != nil {
		return nil, err
	}
	measure := earlyexit.Measurer(func(g *graph.Graph) float64 { return l.prof.Measure(g).MeanMs })
	score := earlyexit.Scorer(func(tr *trim.TRN) (float64, error) { return l.sim.Accuracy(tr) })
	net, err := earlyexit.Build(g, []int{3, 7, 11}, l.cfg.Head, measure, score)
	if err != nil {
		return nil, err
	}

	f := &Figure{
		ID:     "abl-earlyexit",
		Title:  "Ablation: early exit (BranchyNet-style) vs layer removal, ResNet-50",
		XLabel: "latency (ms)",
		YLabel: "accuracy (angular distance)",
	}
	taus := []float64{0.60, 0.70, 0.78, 0.84, 0.88, 0.92, 0.95}
	ops := net.Sweep(taus)
	exp := Series{Name: "early exit (expected latency)"}
	wc := Series{Name: "early exit (worst-case latency)"}
	for _, op := range ops {
		exp.add(op.ExpectedMs, op.Accuracy, labelTau(op.Tau))
		wc.add(op.WorstCaseMs, op.Accuracy, labelTau(op.Tau))
	}
	f.Series = append(f.Series, exp, wc)

	// The TRN family of the same backbone: constant latency per network.
	trns, err := trim.EnumerateBlockwise(g, l.cfg.Head, true)
	if err != nil {
		return nil, err
	}
	st := Series{Name: "TRNs (constant latency)"}
	var trnPts []pareto.Point
	for _, tr := range trns {
		acc, err := l.sim.Accuracy(tr)
		if err != nil {
			return nil, err
		}
		ms := l.prof.Measure(tr.Graph).MeanMs
		st.add(ms, acc, tr.Name())
		trnPts = append(trnPts, pareto.Point{Label: tr.Name(), Latency: ms, Accuracy: acc})
	}
	f.Series = append(f.Series, st)

	// At the application deadline, compare the best achievable accuracy
	// under worst-case semantics.
	bestTRN, okTRN := pareto.BestUnderDeadline(trnPts, l.cfg.DeadlineMs)
	var bestExit float64
	okExit := false
	for _, op := range ops {
		if op.WorstCaseMs <= l.cfg.DeadlineMs && op.Accuracy > bestExit {
			bestExit, okExit = op.Accuracy, true
		}
	}
	switch {
	case okTRN && !okExit:
		f.Note("at the %.2f ms deadline with worst-case semantics, no early-exit operating point qualifies (worst case = full backbone + side heads, %.3f ms) while %s delivers %.3f",
			l.cfg.DeadlineMs, ops[0].WorstCaseMs, bestTRN.Label, bestTRN.Accuracy)
	case okTRN && okExit:
		f.Note("at the %.2f ms deadline with worst-case semantics: TRN %.3f (%s) vs early exit %.3f",
			l.cfg.DeadlineMs, bestTRN.Accuracy, bestTRN.Label, bestExit)
	}
	f.Note("early exit's expected-latency curve is attractive but data-dependent; NetCut's TRNs give the constant latency a hard deadline needs (Sec. II)")
	return f, nil
}

func labelTau(tau float64) string {
	return "tau=" + trimFloat(tau)
}

func trimFloat(v float64) string {
	s := []byte{'0', '.', 0, 0}
	d := int(v*100 + 0.5)
	s[2] = byte('0' + (d/10)%10)
	s[3] = byte('0' + d%10)
	return string(s)
}
