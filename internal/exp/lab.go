package exp

import (
	"fmt"
	"sync"

	"netcut/internal/core"
	"netcut/internal/device"
	"netcut/internal/estimate"
	"netcut/internal/graph"
	"netcut/internal/profiler"
	"netcut/internal/transfer"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// Config parameterizes the experimental setup.
type Config struct {
	Seed       int64
	DeadlineMs float64           // 0 = the prosthetic hand's 0.9 ms
	Device     *device.Config    // nil = calibrated Xavier simulation
	Protocol   profiler.Protocol // zero = paper's 200/800
	Head       trim.HeadSpec     // zero = trim.DefaultHead
	// TrainFraction is the analytical model's train split; 0 = the
	// paper's 20%.
	TrainFraction float64
	// BandMinMs bounds the deployable band for error statistics; 0 =
	// 0.15 ms (see estimate.DeployableBand).
	BandMinMs float64
}

func (c *Config) fill() {
	if c.DeadlineMs == 0 {
		c.DeadlineMs = 0.9
	}
	if c.Device == nil {
		cfg := device.Xavier()
		c.Device = &cfg
	}
	if c.Protocol == (profiler.Protocol{}) {
		c.Protocol = profiler.PaperProtocol()
	}
	if c.Head == (trim.HeadSpec{}) {
		c.Head = trim.DefaultHead
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.2
	}
	if c.BandMinMs == 0 {
		c.BandMinMs = 0.15
	}
}

// Lab owns the shared experimental state: the simulated device, the
// profiled tables, the 148-TRN blockwise families with measured
// latencies and retrained accuracies, and the trained estimators. All
// figure generators draw from the same measurements, as the paper's do.
type Lab struct {
	cfg Config

	dev  *device.Device
	prof *profiler.Profiler
	sim  *transfer.Simulator
	rt   core.Retrainer

	mu sync.Mutex
	// Lazily built shared state.
	nets       []*graph.Graph
	tables     map[string]*profiler.Table
	candidates []core.Candidate
	samples    []estimate.Sample // blockwise TRNs with measured latency
	accuracies map[string]float64
	sweep      *core.Sweep
	analytical *estimate.AnalyticalEstimator
	linear     *estimate.LinearEstimator
}

// NewLab builds a Lab for the given configuration.
func NewLab(cfg Config) (*Lab, error) {
	cfg.fill()
	dev := device.New(*cfg.Device)
	prof, err := profiler.New(dev, cfg.Protocol, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sim := transfer.NewSimulator(cfg.Seed)
	l := &Lab{
		cfg:        cfg,
		dev:        dev,
		prof:       prof,
		sim:        sim,
		tables:     map[string]*profiler.Table{},
		accuracies: map[string]float64{},
	}
	l.rt = core.RetrainerFunc(func(t *trim.TRN) (core.TrainResult, error) {
		r, err := sim.Retrain(t)
		return core.TrainResult{Accuracy: r.Accuracy, TrainHours: r.TrainHours}, err
	})
	return l, nil
}

// Deadline returns the configured deadline in milliseconds.
func (l *Lab) Deadline() float64 { return l.cfg.DeadlineMs }

// Device returns the simulated device.
func (l *Lab) Device() *device.Device { return l.dev }

// Networks returns the seven paper networks (built once).
func (l *Lab) Networks() []*graph.Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nets == nil {
		l.nets = zoo.Paper7()
	}
	return l.nets
}

// Candidates returns the Algorithm-1 inputs: each network with measured
// latency and transfer-learned accuracy.
func (l *Lab) Candidates() ([]core.Candidate, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.candidatesLocked()
}

func (l *Lab) candidatesLocked() ([]core.Candidate, error) {
	if l.candidates != nil {
		return l.candidates, nil
	}
	if l.nets == nil {
		l.nets = zoo.Paper7()
	}
	for _, g := range l.nets {
		acc, err := l.sim.OffTheShelfAccuracy(g.Name)
		if err != nil {
			return nil, err
		}
		m := l.prof.Measure(g)
		l.accuracies[g.Name] = acc
		l.candidates = append(l.candidates, core.Candidate{
			Graph:      g,
			MeasuredMs: m.MeanMs,
			Accuracy:   acc,
		})
	}
	return l.candidates, nil
}

// Tables returns the per-layer profile tables, one per network.
func (l *Lab) Tables() map[string]*profiler.Table {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tablesLocked()
}

func (l *Lab) tablesLocked() map[string]*profiler.Table {
	if len(l.tables) == 0 {
		if l.nets == nil {
			l.nets = zoo.Paper7()
		}
		for _, g := range l.nets {
			l.tables[g.Name] = l.prof.Profile(g)
		}
	}
	return l.tables
}

// Samples returns the 148 blockwise TRNs with measured ground-truth
// latencies — the regression dataset of Sec. V-B2.
func (l *Lab) Samples() ([]estimate.Sample, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.samplesLocked()
}

func (l *Lab) samplesLocked() ([]estimate.Sample, error) {
	if l.samples != nil {
		return l.samples, nil
	}
	cands, err := l.candidatesLocked()
	if err != nil {
		return nil, err
	}
	for _, c := range cands {
		trns, err := trim.EnumerateBlockwise(c.Graph, l.cfg.Head, false)
		if err != nil {
			return nil, err
		}
		for _, tr := range trns {
			l.samples = append(l.samples, estimate.Sample{
				TRN:             tr,
				ParentLatencyMs: c.MeasuredMs,
				MeasuredMs:      l.prof.Measure(tr.Graph).MeanMs,
			})
		}
	}
	return l.samples, nil
}

// Sweep returns the blockwise exploration baseline: all 148 TRNs
// retrained and measured.
func (l *Lab) Sweep() (*core.Sweep, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sweep != nil {
		return l.sweep, nil
	}
	cands, err := l.candidatesLocked()
	if err != nil {
		return nil, err
	}
	measure := core.Measurer(func(g *graph.Graph) float64 { return l.prof.Measure(g).MeanMs })
	sw, err := core.BlockwiseSweep(cands, l.rt, measure, l.cfg.Head)
	if err != nil {
		return nil, err
	}
	l.sweep = sw
	return sw, nil
}

// ProfilerEstimator returns the Eq. (1) estimator over the lab's tables.
func (l *Lab) ProfilerEstimator() *estimate.ProfilerEstimator {
	return estimate.NewProfilerEstimator(l.Tables())
}

// AnalyticalEstimator returns the SVR estimator trained on the
// stratified 20% split of the measured TRN samples.
func (l *Lab) AnalyticalEstimator() (*estimate.AnalyticalEstimator, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.analytical != nil {
		return l.analytical, nil
	}
	samples, err := l.samplesLocked()
	if err != nil {
		return nil, err
	}
	train, _ := estimate.StratifiedSplit(samples, l.cfg.TrainFraction, l.cfg.Seed)
	e, err := estimate.TrainAnalytical(train, estimate.AnalyticalConfig{Seed: l.cfg.Seed})
	if err != nil {
		return nil, err
	}
	l.analytical = e
	return e, nil
}

// LinearEstimator returns the OLS baseline trained on the same split.
func (l *Lab) LinearEstimator() (*estimate.LinearEstimator, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.linear != nil {
		return l.linear, nil
	}
	samples, err := l.samplesLocked()
	if err != nil {
		return nil, err
	}
	train, _ := estimate.StratifiedSplit(samples, l.cfg.TrainFraction, l.cfg.Seed)
	e, err := estimate.TrainLinear(train)
	if err != nil {
		return nil, err
	}
	l.linear = e
	return e, nil
}

// TestSamples returns the held-out 80% of the measured TRN samples.
func (l *Lab) TestSamples() ([]estimate.Sample, error) {
	samples, err := l.Samples()
	if err != nil {
		return nil, err
	}
	_, test := estimate.StratifiedSplit(samples, l.cfg.TrainFraction, l.cfg.Seed)
	return test, nil
}

// Explore runs NetCut with the given estimator at the lab deadline.
func (l *Lab) Explore(est estimate.Estimator) (*core.Result, error) {
	cands, err := l.Candidates()
	if err != nil {
		return nil, err
	}
	return core.Explore(cands, l.cfg.DeadlineMs, est, l.rt, l.cfg.Head)
}

// OffTheShelfAccuracy returns the transfer-learned accuracy of a
// network.
func (l *Lab) OffTheShelfAccuracy(name string) (float64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if acc, ok := l.accuracies[name]; ok {
		return acc, nil
	}
	acc, err := l.sim.OffTheShelfAccuracy(name)
	if err != nil {
		return 0, err
	}
	l.accuracies[name] = acc
	return acc, nil
}

// Retrainer exposes the lab's retraining backend.
func (l *Lab) Retrainer() core.Retrainer { return l.rt }

// Simulator exposes the retraining simulator.
func (l *Lab) Simulator() *transfer.Simulator { return l.sim }

// All runs every figure and table generator in paper order.
func (l *Lab) All() ([]*Figure, error) {
	type gen struct {
		name string
		fn   func() (*Figure, error)
	}
	gens := []gen{
		{"fig1", l.Fig1},
		{"fig4", l.Fig4},
		{"fig5", l.Fig5},
		{"fig6", l.Fig6},
		{"fig7", l.Fig7},
		{"fig8", l.Fig8},
		{"fig9", l.Fig9},
		{"fig10", l.Fig10},
		{"tab1", l.Tab1},
		{"abl-estimators", l.AblEstimatorChoice},
		{"abl-block", l.AblBlockGranularity},
		{"abl-device", l.AblDeviceModes},
		{"abl-iterative", l.AblIterativeCost},
		{"abl-extended", l.AblExtendedZoo},
		{"abl-earlyexit", l.AblEarlyExit},
	}
	var out []*Figure
	for _, g := range gens {
		f, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("exp: generating %s: %w", g.name, err)
		}
		out = append(out, f)
	}
	return out, nil
}
