package exp

import (
	"fmt"
	"sync"

	"netcut/internal/core"
	"netcut/internal/device"
	"netcut/internal/estimate"
	"netcut/internal/graph"
	"netcut/internal/par"
	"netcut/internal/profiler"
	"netcut/internal/transfer"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// Config parameterizes the experimental setup.
type Config struct {
	Seed       int64
	DeadlineMs float64           // 0 = the prosthetic hand's 0.9 ms
	Device     *device.Config    // nil = calibrated Xavier simulation
	Protocol   profiler.Protocol // zero = paper's 200/800
	Head       trim.HeadSpec     // zero = trim.DefaultHead
	// TrainFraction is the analytical model's train split; 0 = the
	// paper's 20%.
	TrainFraction float64
	// BandMinMs bounds the deployable band for error statistics; 0 =
	// 0.15 ms (see estimate.DeployableBand).
	BandMinMs float64
}

func (c *Config) fill() {
	if c.DeadlineMs == 0 {
		c.DeadlineMs = 0.9
	}
	if c.Device == nil {
		cfg := device.Xavier()
		c.Device = &cfg
	}
	if c.Protocol == (profiler.Protocol{}) {
		c.Protocol = profiler.PaperProtocol()
	}
	if c.Head == (trim.HeadSpec{}) {
		c.Head = trim.DefaultHead
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.2
	}
	if c.BandMinMs == 0 {
		c.BandMinMs = 0.15
	}
}

// lazy is a singleflight cell: the first caller builds the value, every
// concurrent caller blocks on that one build, and the result (value and
// error alike) is immutable afterwards. It replaces the Lab's previous
// single big mutex, under which concurrent figure generators serialized
// even when they needed disjoint state.
type lazy[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (c *lazy[T]) get(build func() (T, error)) (T, error) {
	c.once.Do(func() { c.val, c.err = build() })
	return c.val, c.err
}

// Lab owns the shared experimental state: the simulated device, the
// profiled tables, the 148-TRN blockwise families with measured
// latencies and retrained accuracies, and the trained estimators. All
// figure generators draw from the same measurements, as the paper's do.
//
// Every shared artefact is built at most once behind a singleflight
// cell, is immutable after its build, and fans its measurement work out
// over a worker pool. Determinism contract: all per-task randomness is
// derived from Config.Seed plus the task's own identity (network name,
// TRN), never from execution order, so any interleaving of generators
// at any GOMAXPROCS produces bit-identical figures for a fixed seed.
type Lab struct {
	cfg Config

	dev  *device.Device
	prof *profiler.Profiler
	sim  *transfer.Simulator
	rt   core.Retrainer

	nets       lazy[[]*graph.Graph]
	candidates lazy[[]core.Candidate]
	tables     lazy[map[string]*profiler.Table]
	samples    lazy[[]estimate.Sample]
	sweep      lazy[*core.Sweep]
	analytical lazy[*estimate.AnalyticalEstimator]
	linear     lazy[*estimate.LinearEstimator]
}

// NewLab builds a Lab for the given configuration.
func NewLab(cfg Config) (*Lab, error) {
	cfg.fill()
	dev := device.New(*cfg.Device)
	prof, err := profiler.New(dev, cfg.Protocol, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sim := transfer.NewSimulator(cfg.Seed)
	l := &Lab{
		cfg:  cfg,
		dev:  dev,
		prof: prof,
		sim:  sim,
	}
	l.rt = core.RetrainerFunc(func(t *trim.TRN) (core.TrainResult, error) {
		r, err := sim.Retrain(t)
		return core.TrainResult{Accuracy: r.Accuracy, TrainHours: r.TrainHours}, err
	})
	return l, nil
}

// Deadline returns the configured deadline in milliseconds.
func (l *Lab) Deadline() float64 { return l.cfg.DeadlineMs }

// Device returns the simulated device.
func (l *Lab) Device() *device.Device { return l.dev }

// networks returns the shared network slice; callers must not mutate it.
func (l *Lab) networks() []*graph.Graph {
	nets, _ := l.nets.get(func() ([]*graph.Graph, error) { return zoo.Paper7(), nil })
	return nets
}

// Networks returns the seven paper networks (built once). The returned
// slice is the caller's to mutate.
func (l *Lab) Networks() []*graph.Graph {
	return append([]*graph.Graph(nil), l.networks()...)
}

// buildCandidates measures and accuracy-scores the zoo, one worker per
// network.
func (l *Lab) buildCandidates() ([]core.Candidate, error) {
	nets := l.networks()
	out := make([]core.Candidate, len(nets))
	err := par.ForEach(len(nets), func(i int) error {
		g := nets[i]
		acc, err := l.sim.OffTheShelfAccuracy(g.Name)
		if err != nil {
			return err
		}
		out[i] = core.Candidate{
			Graph:      g,
			MeasuredMs: l.prof.Measure(g).MeanMs,
			Accuracy:   acc,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Candidates returns the Algorithm-1 inputs: each network with measured
// latency and transfer-learned accuracy. The returned slice is a copy.
func (l *Lab) Candidates() ([]core.Candidate, error) {
	c, err := l.candidates.get(l.buildCandidates)
	if err != nil {
		return nil, err
	}
	return append([]core.Candidate(nil), c...), nil
}

func (l *Lab) buildTables() (map[string]*profiler.Table, error) {
	nets := l.networks()
	tbls := make([]*profiler.Table, len(nets))
	err := par.ForEach(len(nets), func(i int) error {
		tbls[i] = l.prof.Profile(nets[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*profiler.Table, len(nets))
	for i, g := range nets {
		out[g.Name] = tbls[i]
	}
	return out, nil
}

// Tables returns the per-layer profile tables, one per network. The map
// is a copy (the *Table values are shared and immutable), so callers may
// add or remove entries freely.
func (l *Lab) Tables() map[string]*profiler.Table {
	t, _ := l.tables.get(l.buildTables)
	out := make(map[string]*profiler.Table, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// buildSamples enumerates the blockwise TRN family of every candidate
// (cheap, serial) and fans the 148 ground-truth measurements out over
// the pool; each measurement's noise stream is derived from the TRN's
// own name, so the sample list is identical in any schedule.
func (l *Lab) buildSamples() ([]estimate.Sample, error) {
	cands, err := l.candidates.get(l.buildCandidates)
	if err != nil {
		return nil, err
	}
	var out []estimate.Sample
	for _, c := range cands {
		trns, err := trim.EnumerateBlockwise(c.Graph, l.cfg.Head, false)
		if err != nil {
			return nil, err
		}
		for _, tr := range trns {
			out = append(out, estimate.Sample{TRN: tr, ParentLatencyMs: c.MeasuredMs})
		}
	}
	err = par.ForEach(len(out), func(i int) error {
		out[i].MeasuredMs = l.prof.Measure(out[i].TRN.Graph).MeanMs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Samples returns the 148 blockwise TRNs with measured ground-truth
// latencies — the regression dataset of Sec. V-B2. The returned slice
// is a copy.
func (l *Lab) Samples() ([]estimate.Sample, error) {
	s, err := l.samples.get(l.buildSamples)
	if err != nil {
		return nil, err
	}
	return append([]estimate.Sample(nil), s...), nil
}

// Sweep returns the blockwise exploration baseline: all 148 TRNs
// retrained and measured.
func (l *Lab) Sweep() (*core.Sweep, error) {
	return l.sweep.get(func() (*core.Sweep, error) {
		cands, err := l.candidates.get(l.buildCandidates)
		if err != nil {
			return nil, err
		}
		measure := core.Measurer(func(g *graph.Graph) float64 { return l.prof.Measure(g).MeanMs })
		return core.BlockwiseSweep(cands, l.rt, measure, l.cfg.Head)
	})
}

// ProfilerEstimator returns the Eq. (1) estimator over the lab's tables.
func (l *Lab) ProfilerEstimator() *estimate.ProfilerEstimator {
	return estimate.NewProfilerEstimator(l.Tables())
}

// AnalyticalEstimator returns the SVR estimator trained on the
// stratified 20% split of the measured TRN samples.
func (l *Lab) AnalyticalEstimator() (*estimate.AnalyticalEstimator, error) {
	return l.analytical.get(func() (*estimate.AnalyticalEstimator, error) {
		samples, err := l.samples.get(l.buildSamples)
		if err != nil {
			return nil, err
		}
		train, _ := estimate.StratifiedSplit(samples, l.cfg.TrainFraction, l.cfg.Seed)
		return estimate.TrainAnalytical(train, estimate.AnalyticalConfig{Seed: l.cfg.Seed})
	})
}

// LinearEstimator returns the OLS baseline trained on the same split.
func (l *Lab) LinearEstimator() (*estimate.LinearEstimator, error) {
	return l.linear.get(func() (*estimate.LinearEstimator, error) {
		samples, err := l.samples.get(l.buildSamples)
		if err != nil {
			return nil, err
		}
		train, _ := estimate.StratifiedSplit(samples, l.cfg.TrainFraction, l.cfg.Seed)
		return estimate.TrainLinear(train)
	})
}

// TestSamples returns the held-out 80% of the measured TRN samples.
func (l *Lab) TestSamples() ([]estimate.Sample, error) {
	samples, err := l.samples.get(l.buildSamples)
	if err != nil {
		return nil, err
	}
	_, test := estimate.StratifiedSplit(samples, l.cfg.TrainFraction, l.cfg.Seed)
	return test, nil
}

// Explore runs NetCut with the given estimator at the lab deadline.
func (l *Lab) Explore(est estimate.Estimator) (*core.Result, error) {
	cands, err := l.Candidates()
	if err != nil {
		return nil, err
	}
	return core.Explore(cands, l.cfg.DeadlineMs, est, l.rt, l.cfg.Head)
}

// OffTheShelfAccuracy returns the transfer-learned accuracy of a
// network. The simulator derives it deterministically from (seed,
// network), so no caching layer is needed here.
func (l *Lab) OffTheShelfAccuracy(name string) (float64, error) {
	return l.sim.OffTheShelfAccuracy(name)
}

// Retrainer exposes the lab's retraining backend.
func (l *Lab) Retrainer() core.Retrainer { return l.rt }

// Simulator exposes the retraining simulator.
func (l *Lab) Simulator() *transfer.Simulator { return l.sim }

// All runs every figure and table generator in paper order. The
// generators execute concurrently — shared state they contend on is
// built once by whichever worker gets there first and reused by the
// rest — and the output order is fixed, so the rendered artefact stream
// is the same as a serial run's.
func (l *Lab) All() ([]*Figure, error) {
	type gen struct {
		name string
		fn   func() (*Figure, error)
	}
	gens := []gen{
		{"fig1", l.Fig1},
		{"fig4", l.Fig4},
		{"fig5", l.Fig5},
		{"fig6", l.Fig6},
		{"fig7", l.Fig7},
		{"fig8", l.Fig8},
		{"fig9", l.Fig9},
		{"fig10", l.Fig10},
		{"tab1", l.Tab1},
		{"abl-estimators", l.AblEstimatorChoice},
		{"abl-block", l.AblBlockGranularity},
		{"abl-device", l.AblDeviceModes},
		{"abl-iterative", l.AblIterativeCost},
		{"abl-extended", l.AblExtendedZoo},
		{"abl-earlyexit", l.AblEarlyExit},
	}
	out := make([]*Figure, len(gens))
	err := par.ForEach(len(gens), func(i int) error {
		f, err := gens[i].fn()
		if err != nil {
			return fmt.Errorf("exp: generating %s: %w", gens[i].name, err)
		}
		out[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
