package core

import (
	"fmt"

	"netcut/internal/trim"
)

// IterativeExplore is a NetAdapt-style baseline (Sec. II): no latency
// estimator — every candidate cutpoint is *retrained and measured* on
// the device, one block at a time, until the deadline is met. It finds
// the same first-feasible TRNs as Algorithm 1 would with a perfect
// estimator, but pays a retraining bill on every iteration; this is
// exactly the "requires retraining in each iteration of its algorithm
// ... suffers from a long exploration time" criticism that motivates
// NetCut's estimator-driven loop.
func IterativeExplore(cands []Candidate, deadlineMs float64, rt Retrainer, measure Measurer, head trim.HeadSpec) (*Result, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("netcut: no candidate networks")
	}
	if deadlineMs <= 0 {
		return nil, fmt.Errorf("netcut: non-positive deadline %v", deadlineMs)
	}
	if measure == nil {
		return nil, fmt.Errorf("netcut: nil measurer")
	}
	res := &Result{DeadlineMs: deadlineMs, EstimatorName: "iterative-retrain"}
	for _, c := range cands {
		if c.Graph == nil {
			return nil, fmt.Errorf("netcut: nil candidate graph")
		}
		p, feasible, err := iterativeOne(c, deadlineMs, rt, measure, head)
		if err != nil {
			return nil, fmt.Errorf("netcut: iteratively exploring %s: %w", c.Graph.Name, err)
		}
		if !feasible {
			res.Infeasible = append(res.Infeasible, c.Graph.Name)
			continue
		}
		res.Proposals = append(res.Proposals, p)
		res.ExplorationHours += p.TrainHours
		if p.Cutpoint > 0 {
			res.RetrainedCount += p.Iterations - 1 // every examined cut was retrained
		}
	}
	for i := range res.Proposals {
		if res.Best == nil || res.Proposals[i].Accuracy > res.Best.Accuracy {
			res.Best = &res.Proposals[i]
		}
	}
	return res, nil
}

func iterativeOne(c Candidate, deadlineMs float64, rt Retrainer, measure Measurer, head trim.HeadSpec) (Proposal, bool, error) {
	lat := c.MeasuredMs
	cut := 0
	iters := 1
	var trn *trim.TRN
	var acc float64
	var hours float64
	for lat > deadlineMs {
		cut++
		if cut > c.Graph.BlockCount() {
			return Proposal{}, false, nil
		}
		var err error
		trn, err = trim.CutScoped(c.CacheScope, c.Graph, cut, head)
		if err != nil {
			return Proposal{}, false, err
		}
		// The baseline must retrain to evaluate each proposal before it
		// knows whether the cut suffices — the cost NetCut avoids.
		tr, err := rt.Retrain(trn)
		if err != nil {
			return Proposal{}, false, err
		}
		hours += tr.TrainHours
		acc = tr.Accuracy
		lat = measure(trn.Graph)
		iters++
	}
	p := Proposal{Cutpoint: cut, EstimateMs: lat, Iterations: iters, TrainHours: hours}
	if cut == 0 {
		p.Accuracy = c.Accuracy
		var err error
		p.TRN, err = trim.CutScoped(c.CacheScope, c.Graph, 0, head)
		if err != nil {
			return Proposal{}, false, err
		}
		return p, true, nil
	}
	p.TRN = trn
	p.Accuracy = acc
	return p, true, nil
}
