package core

import (
	"strings"
	"testing"

	"netcut/internal/device"
	"netcut/internal/estimate"
	"netcut/internal/graph"
	"netcut/internal/profiler"
	"netcut/internal/transfer"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// stack wires the full pipeline: device, profiler tables, candidates,
// estimators and the retraining simulator.
type stack struct {
	dev     *device.Device
	tables  map[string]*profiler.Table
	cands   []Candidate
	samples []estimate.Sample
	sim     *transfer.Simulator
	rt      Retrainer
}

var sharedStack *stack

func getStack(t *testing.T) *stack {
	t.Helper()
	if sharedStack != nil {
		return sharedStack
	}
	dev := device.New(device.Xavier())
	prof, err := profiler.New(dev, profiler.Protocol{WarmupRuns: 60, TimedRuns: 120}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sim := transfer.NewSimulator(1)
	s := &stack{dev: dev, tables: map[string]*profiler.Table{}, sim: sim}
	for _, g := range zoo.Paper7() {
		s.tables[g.Name] = prof.Profile(g)
		lat := prof.Measure(g).MeanMs
		acc, err := sim.OffTheShelfAccuracy(g.Name)
		if err != nil {
			t.Fatal(err)
		}
		s.cands = append(s.cands, Candidate{Graph: g, MeasuredMs: lat, Accuracy: acc})
		trns, err := trim.EnumerateBlockwise(g, trim.DefaultHead, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trns {
			s.samples = append(s.samples, estimate.Sample{
				TRN: tr, ParentLatencyMs: lat, MeasuredMs: prof.Measure(tr.Graph).MeanMs,
			})
		}
	}
	s.rt = RetrainerFunc(func(tr *trim.TRN) (TrainResult, error) {
		r, err := sim.Retrain(tr)
		return TrainResult{Accuracy: r.Accuracy, TrainHours: r.TrainHours}, err
	})
	sharedStack = s
	return s
}

func (s *stack) profilerEst() estimate.Estimator {
	return estimate.NewProfilerEstimator(s.tables)
}

func (s *stack) analyticalEst(t *testing.T) estimate.Estimator {
	t.Helper()
	train, _ := estimate.StratifiedSplit(s.samples, 0.2, 1)
	e, err := estimate.TrainAnalytical(train, estimate.AnalyticalConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

const deadline = 0.9 // the prosthetic hand's visual-classifier deadline

func TestExploreMeetsDeadline(t *testing.T) {
	s := getStack(t)
	for _, est := range []estimate.Estimator{s.profilerEst(), s.analyticalEst(t)} {
		res, err := Explore(s.cands, deadline, est, s.rt, trim.DefaultHead)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Proposals) != 7 || len(res.Infeasible) != 0 {
			t.Fatalf("%s: %d proposals, %d infeasible; want 7/0",
				est.Name(), len(res.Proposals), len(res.Infeasible))
		}
		for _, p := range res.Proposals {
			if p.EstimateMs > deadline {
				t.Errorf("%s: proposal %s estimate %.3f exceeds deadline", est.Name(), p.TRN.Name(), p.EstimateMs)
			}
			if p.Iterations != p.Cutpoint+1 {
				t.Errorf("%s: proposal %s iterations %d != cutpoint+1", est.Name(), p.TRN.Name(), p.Iterations)
			}
		}
	}
}

func TestExploreSelectsResNetTRN(t *testing.T) {
	// The paper's Fig. 10 outcome: both estimators deliver a ResNet-50
	// TRN as the final network at the 0.9 ms deadline, beating the best
	// off-the-shelf choice (MobileNetV1 (0.5) at ~0.81).
	s := getStack(t)
	for _, est := range []estimate.Estimator{s.profilerEst(), s.analyticalEst(t)} {
		res, err := Explore(s.cands, deadline, est, s.rt, trim.DefaultHead)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil {
			t.Fatalf("%s: no best proposal", est.Name())
		}
		if got := res.Best.TRN.Parent.Name; got != "ResNet-50" {
			t.Errorf("%s: best = %s (parent %s), want a ResNet-50 TRN", est.Name(), res.Best.TRN.Name(), got)
		}
		if res.Best.Accuracy <= 0.81 {
			t.Errorf("%s: best accuracy %.3f does not beat off-the-shelf 0.81", est.Name(), res.Best.Accuracy)
		}
		// ResNet-50's selected cut should land near the paper's 94-114
		// removed-layer window.
		if lr := res.Best.TRN.LayersRemoved; lr < 80 || lr > 130 {
			t.Errorf("%s: best removes %d layers, want near the paper's 94-114", est.Name(), lr)
		}
	}
}

func TestExploreKeepsFastNetsUncut(t *testing.T) {
	s := getStack(t)
	res, err := Explore(s.cands, deadline, s.profilerEst(), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Proposals {
		switch p.TRN.Parent.Name {
		case "MobileNetV1 (0.25)", "MobileNetV1 (0.5)":
			if p.Cutpoint != 0 {
				t.Errorf("%s cut %d, want 0 (already meets deadline)", p.TRN.Parent.Name, p.Cutpoint)
			}
			if p.TrainHours != 0 {
				t.Errorf("%s charged %.2f training hours for cut 0", p.TRN.Parent.Name, p.TrainHours)
			}
		default:
			if p.Cutpoint == 0 {
				t.Errorf("%s cut 0, but its full latency exceeds the deadline", p.TRN.Parent.Name)
			}
		}
	}
	if res.RetrainedCount < 3 || res.RetrainedCount > 7 {
		t.Errorf("retrained %d networks, want a handful (paper: ~5 per estimator)", res.RetrainedCount)
	}
}

func TestExploreMobileNetV2Cut1MatchesFig10(t *testing.T) {
	// Fig. 10 labels the MobileNetV2 (1.0) selection "/11": one block
	// plus the feature-mixing conv, 11 layers.
	s := getStack(t)
	res, err := Explore(s.cands, deadline, s.profilerEst(), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Proposals {
		if p.TRN.Parent.Name == "MobileNetV2 (1.0)" && p.TRN.Name() != "MobileNetV2 (1.0)/11" {
			t.Errorf("MobileNetV2 (1.0) proposal = %s, want /11", p.TRN.Name())
		}
	}
}

func TestExploreInfeasibleDeadline(t *testing.T) {
	s := getStack(t)
	res, err := Explore(s.cands, 0.01, s.profilerEst(), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infeasible) != 7 {
		t.Fatalf("impossible deadline: %d infeasible, want 7", len(res.Infeasible))
	}
	if res.Best != nil {
		t.Fatal("impossible deadline produced a best proposal")
	}
}

func TestExploreGenerousDeadline(t *testing.T) {
	// With a deadline beyond every network, nothing is cut and the most
	// accurate off-the-shelf network (DenseNet-121) wins untrimmed.
	s := getStack(t)
	res, err := Explore(s.cands, 10, s.profilerEst(), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetrainedCount != 0 || res.ExplorationHours != 0 {
		t.Fatalf("generous deadline retrained %d networks", res.RetrainedCount)
	}
	if res.Best.TRN.Parent.Name != "DenseNet-121" {
		t.Fatalf("best = %s, want DenseNet-121", res.Best.TRN.Name())
	}
}

func TestExploreInputValidation(t *testing.T) {
	s := getStack(t)
	if _, err := Explore(nil, deadline, s.profilerEst(), s.rt, trim.DefaultHead); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := Explore(s.cands, -1, s.profilerEst(), s.rt, trim.DefaultHead); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if _, err := Explore([]Candidate{{}}, deadline, s.profilerEst(), s.rt, trim.DefaultHead); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestExploreEstimatorErrorPropagates(t *testing.T) {
	s := getStack(t)
	empty := estimate.NewProfilerEstimator(nil)
	_, err := Explore(s.cands, deadline, empty, s.rt, trim.DefaultHead)
	if err == nil || !strings.Contains(err.Error(), "no profile table") {
		t.Fatalf("err = %v, want missing-table failure", err)
	}
}

func TestBlockwiseSweep(t *testing.T) {
	s := getStack(t)
	measure := Measurer(func(g *graph.Graph) float64 { return s.dev.LatencyMs(g) })
	sw, err := BlockwiseSweep(s.cands, s.rt, measure, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if sw.TRNCount() != 148 {
		t.Fatalf("sweep retrained %d TRNs, want 148", sw.TRNCount())
	}
	if len(sw.Entries) != 148+7 {
		t.Fatalf("sweep has %d entries, want 155 (148 TRNs + 7 originals)", len(sw.Entries))
	}
	// Paper: 183 hours on a K20m (+-25% for our cost model).
	if sw.TotalHours < 137 || sw.TotalHours > 229 {
		t.Fatalf("sweep cost %.1f hours, want ~183", sw.TotalHours)
	}
	best, ok := sw.BestUnderDeadline(deadline)
	if !ok {
		t.Fatal("sweep found nothing under the deadline")
	}
	if best.Accuracy < 0.82 {
		t.Fatalf("sweep best accuracy %.3f implausibly low", best.Accuracy)
	}
	if _, err := BlockwiseSweep(s.cands, s.rt, nil, trim.DefaultHead); err == nil {
		t.Fatal("nil measurer accepted")
	}
}

func TestExplorationSpeedup(t *testing.T) {
	// The headline: NetCut explores ~27x faster than the blockwise sweep.
	s := getStack(t)
	measure := Measurer(func(g *graph.Graph) float64 { return s.dev.LatencyMs(g) })
	sw, err := BlockwiseSweep(s.cands, s.rt, measure, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	resP, err := Explore(s.cands, deadline, s.profilerEst(), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := Explore(s.cands, deadline, s.analyticalEst(t), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	sp := CompareCost(sw, []*Result{resP, resA}, 0.1 /* profiling + SVR setup */)
	if sp.Factor < 15 || sp.Factor > 60 {
		t.Fatalf("speedup %.1fx, want the paper's ~27x band (15-60)", sp.Factor)
	}
	// Paper: 9 additional networks trained vs 148.
	if sp.NetCutRetrain < 4 || sp.NetCutRetrain > 12 {
		t.Fatalf("NetCut retrained %d unique TRNs, want near the paper's 9", sp.NetCutRetrain)
	}
	if sp.SweepTRNs != 148 {
		t.Fatalf("sweep TRNs = %d, want 148", sp.SweepTRNs)
	}
}

func TestIterativeExploreMatchesButCostsMore(t *testing.T) {
	s := getStack(t)
	measure := Measurer(func(g *graph.Graph) float64 { return s.dev.LatencyMs(g) })
	iter, err := IterativeExplore(s.cands, deadline, s.rt, measure, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	netcutRes, err := Explore(s.cands, deadline, s.profilerEst(), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if iter.Best == nil || iter.Best.TRN.Parent.Name != "ResNet-50" {
		t.Fatalf("iterative best = %+v, want a ResNet-50 TRN", iter.Best)
	}
	// Equivalent quality...
	if iter.Best.Accuracy < netcutRes.Best.Accuracy-0.03 {
		t.Fatalf("iterative quality %.3f far below NetCut %.3f", iter.Best.Accuracy, netcutRes.Best.Accuracy)
	}
	// ...at a clearly larger retraining bill (every examined cutpoint).
	if iter.ExplorationHours < 1.5*netcutRes.ExplorationHours {
		t.Fatalf("iterative hours %.1f not clearly above NetCut's %.1f",
			iter.ExplorationHours, netcutRes.ExplorationHours)
	}
	if iter.RetrainedCount <= netcutRes.RetrainedCount {
		t.Fatalf("iterative retrained %d, NetCut %d; baseline should retrain more",
			iter.RetrainedCount, netcutRes.RetrainedCount)
	}
}

func TestIterativeExploreValidation(t *testing.T) {
	s := getStack(t)
	measure := Measurer(func(g *graph.Graph) float64 { return s.dev.LatencyMs(g) })
	if _, err := IterativeExplore(nil, deadline, s.rt, measure, trim.DefaultHead); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := IterativeExplore(s.cands, 0, s.rt, measure, trim.DefaultHead); err == nil {
		t.Fatal("zero deadline accepted")
	}
	if _, err := IterativeExplore(s.cands, deadline, s.rt, nil, trim.DefaultHead); err == nil {
		t.Fatal("nil measurer accepted")
	}
	res, err := IterativeExplore(s.cands, 0.01, s.rt, measure, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infeasible) != 7 {
		t.Fatalf("impossible deadline: %d infeasible, want 7", len(res.Infeasible))
	}
}

func TestParetoPoints(t *testing.T) {
	s := getStack(t)
	res, err := Explore(s.cands, deadline, s.profilerEst(), s.rt, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.ParetoPoints()
	if len(pts) != len(res.Proposals) {
		t.Fatalf("%d points for %d proposals", len(pts), len(res.Proposals))
	}
	for _, p := range pts {
		if p.Latency <= 0 || p.Accuracy <= 0 || p.Label == "" {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}
