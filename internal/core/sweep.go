package core

import (
	"fmt"

	"netcut/internal/graph"
	"netcut/internal/par"
	"netcut/internal/pareto"
	"netcut/internal/trim"
)

// SweepEntry is one retrained, measured TRN of the blockwise sweep.
type SweepEntry struct {
	TRN        *trim.TRN
	Accuracy   float64
	TrainHours float64
	MeasuredMs float64
}

// Sweep is the exhaustive blockwise exploration baseline (Sec. IV-B):
// every blockwise TRN of every network retrained and measured — the 148
// candidates whose cost NetCut avoids.
type Sweep struct {
	Entries    []SweepEntry
	TotalHours float64
}

// Measurer reports the ground-truth latency of a network, e.g. a
// profiler closure over the target device.
type Measurer func(g *graph.Graph) float64

// BlockwiseSweep retrains and measures the full blockwise TRN family of
// every candidate (cutpoints 1..BlockCount; the cut-0 entries reuse the
// candidates' known accuracy and latency and cost nothing extra).
//
// The retrain+measure work of all entries runs on a worker pool: entry
// order, TotalHours (summed in entry order) and every measurement are
// independent of scheduling, because each task writes only its own
// pre-assigned slot and the retrainer/measurer derive their noise from
// the TRN itself, not from call order.
func BlockwiseSweep(cands []Candidate, rt Retrainer, measure Measurer, head trim.HeadSpec) (*Sweep, error) {
	if measure == nil {
		return nil, fmt.Errorf("netcut: nil measurer")
	}
	// Enumerate the full entry list first (cheap, serial), leaving the
	// expensive retrain+measure of cut>0 entries to the pool.
	var entries []SweepEntry
	var todo []int // indices of entries needing retrain+measure
	for _, c := range cands {
		zero, err := trim.CutScoped(c.CacheScope, c.Graph, 0, head)
		if err != nil {
			return nil, err
		}
		entries = append(entries, SweepEntry{
			TRN:        zero,
			Accuracy:   c.Accuracy,
			MeasuredMs: c.MeasuredMs,
		})
		trns, err := trim.EnumerateBlockwiseScoped(c.CacheScope, c.Graph, head, false)
		if err != nil {
			return nil, err
		}
		for _, tr := range trns {
			todo = append(todo, len(entries))
			entries = append(entries, SweepEntry{TRN: tr})
		}
	}
	err := par.ForEach(len(todo), func(i int) error {
		e := &entries[todo[i]]
		res, err := rt.Retrain(e.TRN)
		if err != nil {
			return fmt.Errorf("netcut: sweep retraining %s: %w", e.TRN.Name(), err)
		}
		e.Accuracy = res.Accuracy
		e.TrainHours = res.TrainHours
		e.MeasuredMs = measure(e.TRN.Graph)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Entries: entries}
	for _, e := range entries {
		sw.TotalHours += e.TrainHours
	}
	return sw, nil
}

// TRNCount returns the number of retrained TRNs in the sweep (cut > 0).
func (s *Sweep) TRNCount() int {
	n := 0
	for _, e := range s.Entries {
		if e.TRN.Cutpoint > 0 {
			n++
		}
	}
	return n
}

// Points returns the sweep as latency/accuracy points (Fig. 6).
func (s *Sweep) Points() []pareto.Point {
	pts := make([]pareto.Point, len(s.Entries))
	for i, e := range s.Entries {
		pts[i] = pareto.Point{Label: e.TRN.Name(), Latency: e.MeasuredMs, Accuracy: e.Accuracy}
	}
	return pts
}

// BestUnderDeadline returns the sweep's most accurate entry meeting the
// deadline — what exhaustive exploration would deploy.
func (s *Sweep) BestUnderDeadline(deadlineMs float64) (SweepEntry, bool) {
	var best SweepEntry
	found := false
	for _, e := range s.Entries {
		if e.MeasuredMs > deadlineMs {
			continue
		}
		if !found || e.Accuracy > best.Accuracy {
			best = e
			found = true
		}
	}
	return best, found
}

// Speedup summarizes the exploration-time comparison (the paper's 27x).
type Speedup struct {
	SweepHours    float64
	NetCutHours   float64
	Factor        float64
	SweepTRNs     int
	NetCutRetrain int
}

// CompareCost computes the exploration-time speedup of a NetCut run
// against a blockwise sweep. extraNetCutHours accounts for estimator
// setup (profiling runs, SVR training), which is negligible but
// reported honestly.
func CompareCost(sw *Sweep, runs []*Result, extraNetCutHours float64) Speedup {
	sp := Speedup{SweepHours: sw.TotalHours, SweepTRNs: sw.TRNCount(), NetCutHours: extraNetCutHours}
	seen := map[string]bool{}
	for _, r := range runs {
		for _, p := range r.Proposals {
			if p.Cutpoint == 0 || seen[p.TRN.Name()] {
				continue // already-trained network or shared proposal
			}
			seen[p.TRN.Name()] = true
			sp.NetCutHours += p.TrainHours
			sp.NetCutRetrain++
		}
	}
	if sp.NetCutHours > 0 {
		sp.Factor = sp.SweepHours / sp.NetCutHours
	}
	return sp
}
