// Package core implements NetCut (Algorithm 1): deadline-aware
// exploration of TRimmed Networks. For each trained off-the-shelf
// network, the cutpoint is incremented until a latency estimator says
// the TRN meets the application deadline; only those first-feasible
// TRNs are retrained, and the most accurate one wins. Against the
// 148-candidate blockwise sweep this cuts the number of retrained
// networks by ~95% and exploration time by ~27x (Sec. V).
package core

import (
	"fmt"

	"netcut/internal/estimate"
	"netcut/internal/graph"
	"netcut/internal/par"
	"netcut/internal/pareto"
	"netcut/internal/trim"
)

// TrainResult is the outcome of retraining one TRN.
type TrainResult struct {
	Accuracy   float64
	TrainHours float64
}

// Retrainer retrains a TRN and reports its accuracy and cost. The
// paper-scale backend is transfer.Simulator; the miniature real backend
// lives in internal/nn.
type Retrainer interface {
	Retrain(t *trim.TRN) (TrainResult, error)
}

// RetrainerFunc adapts a function to the Retrainer interface.
type RetrainerFunc func(t *trim.TRN) (TrainResult, error)

// Retrain implements Retrainer.
func (f RetrainerFunc) Retrain(t *trim.TRN) (TrainResult, error) { return f(t) }

// Candidate is one trained off-the-shelf network entering exploration:
// Algorithm 1's inputs are the N trained networks with their measured
// latencies and accuracies.
type Candidate struct {
	Graph      *graph.Graph
	MeasuredMs float64 // measured inference latency of the unmodified network
	Accuracy   float64 // transfer-learned accuracy of the unmodified network
	// CacheScope scopes the TRN cut-cache entries this exploration
	// creates (trim.CutScoped). A device-targeted planner passes its
	// calibration fingerprint so no two targets share cut entries; 0
	// (the Lab/library default) is the unscoped shared namespace. Cuts
	// are pure graph transforms, so the scope never changes a result —
	// only which cache entries exploration touches.
	CacheScope uint64
}

// Proposal is the first deadline-feasible TRN found for one candidate.
type Proposal struct {
	TRN        *trim.TRN
	Cutpoint   int     // blocks removed
	EstimateMs float64 // estimator's latency for the accepted TRN
	Accuracy   float64 // accuracy after retraining
	TrainHours float64 // retraining cost (0 when Cutpoint == 0: already trained)
	Iterations int     // cutpoints examined, including the accepted one
}

// Result is a full NetCut run.
type Result struct {
	DeadlineMs    float64
	EstimatorName string
	Proposals     []Proposal
	// Infeasible lists networks whose deepest cut still misses the
	// deadline.
	Infeasible []string
	// Best points into Proposals at the highest-accuracy proposal, or is
	// nil when nothing is feasible.
	Best *Proposal
	// RetrainedCount is the number of TRNs that required retraining
	// (cutpoint > 0): the paper's "9 additional networks".
	RetrainedCount int
	// ExplorationHours sums the retraining cost of the proposals.
	ExplorationHours float64
}

// Explore runs Algorithm 1 over the candidates.
//
// For each candidate it starts from the unmodified network (estimated at
// its measured latency, per the algorithm's inputs) and increments the
// blockwise cutpoint until the estimator predicts the TRN meets the
// deadline. Only those TRNs are retrained. Candidates whose deepest cut
// still misses the deadline are reported as infeasible rather than
// failing the run.
//
// Per-candidate explorations are independent (the estimator and
// retrainer are read-only/schedule-free), so they run on a worker pool;
// proposals, infeasibles and Best are assembled in candidate order, so
// the result is identical to a serial run.
func Explore(cands []Candidate, deadlineMs float64, est estimate.Estimator, rt Retrainer, head trim.HeadSpec) (*Result, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("netcut: no candidate networks")
	}
	if deadlineMs <= 0 {
		return nil, fmt.Errorf("netcut: non-positive deadline %v", deadlineMs)
	}
	for _, c := range cands {
		if c.Graph == nil {
			return nil, fmt.Errorf("netcut: nil candidate graph")
		}
	}
	type outcome struct {
		p        Proposal
		feasible bool
	}
	outs := make([]outcome, len(cands))
	err := par.ForEach(len(cands), func(i int) error {
		p, feasible, err := exploreOne(cands[i], deadlineMs, est, rt, head)
		if err != nil {
			return fmt.Errorf("netcut: exploring %s: %w", cands[i].Graph.Name, err)
		}
		outs[i] = outcome{p: p, feasible: feasible}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{DeadlineMs: deadlineMs, EstimatorName: est.Name()}
	for i := range outs {
		if !outs[i].feasible {
			res.Infeasible = append(res.Infeasible, cands[i].Graph.Name)
			continue
		}
		res.Proposals = append(res.Proposals, outs[i].p)
		res.ExplorationHours += outs[i].p.TrainHours
		if outs[i].p.Cutpoint > 0 {
			res.RetrainedCount++
		}
	}
	for i := range res.Proposals {
		if res.Best == nil || res.Proposals[i].Accuracy > res.Best.Accuracy {
			res.Best = &res.Proposals[i]
		}
	}
	return res, nil
}

// exploreOne is the inner loop of Algorithm 1 (lines 2-10).
func exploreOne(c Candidate, deadlineMs float64, est estimate.Estimator, rt Retrainer, head trim.HeadSpec) (Proposal, bool, error) {
	estMs := c.MeasuredMs
	cut := 0
	var trn *trim.TRN
	iters := 1
	for estMs > deadlineMs {
		cut++
		if cut > c.Graph.BlockCount() {
			return Proposal{}, false, nil
		}
		var err error
		trn, err = trim.CutScoped(c.CacheScope, c.Graph, cut, head)
		if err != nil {
			return Proposal{}, false, err
		}
		estMs, err = est.EstimateMs(trn)
		if err != nil {
			return Proposal{}, false, err
		}
		iters++
	}

	p := Proposal{Cutpoint: cut, EstimateMs: estMs, Iterations: iters}
	if cut == 0 {
		// The unmodified network already meets the deadline: no
		// retraining needed, its accuracy is known (Algorithm 1 input).
		p.Accuracy = c.Accuracy
		var err error
		p.TRN, err = trim.CutScoped(c.CacheScope, c.Graph, 0, head)
		if err != nil {
			return Proposal{}, false, err
		}
		return p, true, nil
	}
	tr, err := rt.Retrain(trn)
	if err != nil {
		return Proposal{}, false, err
	}
	p.TRN = trn
	p.Accuracy = tr.Accuracy
	p.TrainHours = tr.TrainHours
	return p, true, nil
}

// ParetoPoints converts proposals to latency/accuracy points using the
// estimator latency (what the explorer believed).
func (r *Result) ParetoPoints() []pareto.Point {
	pts := make([]pareto.Point, len(r.Proposals))
	for i, p := range r.Proposals {
		pts[i] = pareto.Point{Label: p.TRN.Name(), Latency: p.EstimateMs, Accuracy: p.Accuracy}
	}
	return pts
}
