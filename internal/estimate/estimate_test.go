package estimate

import (
	"testing"

	"netcut/internal/device"
	"netcut/internal/metric"
	"netcut/internal/profiler"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// fixture builds measured blockwise TRN samples across the paper's seven
// networks, with a reduced measurement protocol to keep tests fast.
type fixture struct {
	tables  map[string]*profiler.Table
	parents map[string]float64
	samples []Sample
}

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	dev := device.New(device.Xavier())
	prof, err := profiler.New(dev, profiler.Protocol{WarmupRuns: 60, TimedRuns: 120}, 5)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{
		tables:  map[string]*profiler.Table{},
		parents: map[string]float64{},
	}
	for _, g := range zoo.Paper7() {
		fx.tables[g.Name] = prof.Profile(g)
		fx.parents[g.Name] = prof.Measure(g).MeanMs
		trns, err := trim.EnumerateBlockwise(g, trim.DefaultHead, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trns {
			fx.samples = append(fx.samples, Sample{
				TRN:             tr,
				ParentLatencyMs: fx.parents[g.Name],
				MeasuredMs:      prof.Measure(tr.Graph).MeanMs,
			})
		}
	}
	if len(fx.samples) != 148 {
		t.Fatalf("fixture has %d samples, want 148", len(fx.samples))
	}
	return fx
}

// split returns the paper's 20% train / 80% test partition, stratified
// per architecture family.
func (fx *fixture) split(seed int64) (train, test []Sample) {
	return StratifiedSplit(fx.samples, 0.2, seed)
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	if shared == nil {
		shared = buildFixture(t)
	}
	return shared
}

func meanRelErr(t *testing.T, e Estimator, samples []Sample) float64 {
	t.Helper()
	var errs []float64
	for _, s := range samples {
		got, err := e.EstimateMs(s.TRN)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		errs = append(errs, metric.RelativeError(got, s.MeasuredMs))
	}
	return metric.Mean(errs)
}

// bandMinMs bounds the deployable band for error statistics: below
// this, a TRN is a stem stub whose latency is dominated by the fixed
// replacement-head cost Eq. (1) cannot see.
const bandMinMs = 0.15

func TestProfilerEstimatorAccuracy(t *testing.T) {
	fx := getFixture(t)
	e := NewProfilerEstimator(fx.tables)
	rel := meanRelErr(t, e, DeployableBand(fx.samples, bandMinMs))
	// Paper: 3.5% average relative error over its study band. Allow
	// headroom for our substitute device but demand the same order.
	if rel > 0.07 {
		t.Fatalf("profiler estimator mean relative error %.3f, want < 0.07", rel)
	}
	// Even including degenerate stem stubs, stay within 12%.
	if all := meanRelErr(t, e, fx.samples); all > 0.12 {
		t.Fatalf("profiler estimator full-range error %.3f, want < 0.12", all)
	}
}

func TestAnalyticalEstimatorAccuracy(t *testing.T) {
	fx := getFixture(t)
	train, test := fx.split(1)
	e, err := TrainAnalytical(train, AnalyticalConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rel := meanRelErr(t, e, DeployableBand(test, bandMinMs))
	// Paper: 4.28% average relative error; same order required.
	if rel > 0.10 {
		t.Fatalf("analytical estimator mean relative error %.3f, want < 0.10", rel)
	}
}

func TestAnalyticalGridSearchLandsNearPaperOptimum(t *testing.T) {
	fx := getFixture(t)
	train, _ := fx.split(1)
	e, err := TrainAnalytical(train, AnalyticalConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports gamma = 1e-1, C = 1e6. Our grid search should
	// land in the same decade for gamma.
	if e.Chosen.Gamma < 0.01 || e.Chosen.Gamma > 1 {
		t.Errorf("grid search chose gamma = %g, want within [0.01, 1]", e.Chosen.Gamma)
	}
}

func TestLinearEstimatorIsMuchWorse(t *testing.T) {
	fx := getFixture(t)
	train, test := fx.split(1)
	lin, err := TrainLinear(train)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := TrainAnalytical(train, AnalyticalConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	band := DeployableBand(test, bandMinMs)
	linErr := meanRelErr(t, lin, band)
	anaErr := meanRelErr(t, ana, band)
	// Paper: 23.81% vs 4.28% — at least a 2x gap must reproduce.
	if linErr < 2*anaErr {
		t.Fatalf("linear error %.3f not clearly worse than analytical %.3f", linErr, anaErr)
	}
}

func TestStratifiedSplitCoversAllFamilies(t *testing.T) {
	fx := getFixture(t)
	train, test := StratifiedSplit(fx.samples, 0.2, 42)
	if len(train)+len(test) != len(fx.samples) {
		t.Fatalf("split lost samples: %d + %d != %d", len(train), len(test), len(fx.samples))
	}
	fams := map[string]int{}
	for _, s := range train {
		fams[s.TRN.Parent.Name]++
	}
	if len(fams) != 7 {
		t.Fatalf("train covers %d families, want 7", len(fams))
	}
	// Roughly 20%.
	if len(train) < len(fx.samples)/6 || len(train) > len(fx.samples)/3 {
		t.Fatalf("train size %d not near 20%% of %d", len(train), len(fx.samples))
	}
}

func TestEqOneCancelsEventOverhead(t *testing.T) {
	// Compare Eq. (1) against the naive subtraction estimator
	// Latency(Net0) - sum(removed layer times): the ratio form must be
	// more accurate because it cancels event overhead.
	fx := getFixture(t)
	ratio := NewProfilerEstimator(fx.tables)
	sub := NewSubtractionEstimator(ratio)
	var ratioErrs, subErrs []float64
	for _, s := range fx.samples {
		got, err := ratio.EstimateMs(s.TRN)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := sub.EstimateMs(s.TRN)
		if err != nil {
			t.Fatal(err)
		}
		ratioErrs = append(ratioErrs, metric.RelativeError(got, s.MeasuredMs))
		subErrs = append(subErrs, metric.RelativeError(naive, s.MeasuredMs))
	}
	if metric.Mean(ratioErrs) >= metric.Mean(subErrs) {
		t.Fatalf("ratio form (%.4f) not better than naive subtraction (%.4f)",
			metric.Mean(ratioErrs), metric.Mean(subErrs))
	}
}

func TestSubtractionEstimatorErrors(t *testing.T) {
	sub := NewSubtractionEstimator(NewProfilerEstimator(nil))
	g, _ := zoo.ByName("ResNet-50")
	tr, _ := trim.Cut(g, 3, trim.DefaultHead)
	if _, err := sub.EstimateMs(tr); err == nil {
		t.Fatal("estimate without table accepted")
	}
	if sub.Name() != "subtraction" {
		t.Fatal("name mismatch")
	}
}

func TestProfilerEstimatorUnknownParent(t *testing.T) {
	e := NewProfilerEstimator(nil)
	g, _ := zoo.ByName("ResNet-50")
	tr, _ := trim.Cut(g, 3, trim.DefaultHead)
	if _, err := e.EstimateMs(tr); err == nil {
		t.Fatal("estimate without table accepted")
	}
}

func TestAnalyticalUnknownParent(t *testing.T) {
	fx := getFixture(t)
	train, _ := fx.split(1)
	e, err := TrainAnalytical(train, AnalyticalConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	other := zoo.MobileNetV1(0.75)
	tr, _ := trim.Cut(other, 2, trim.DefaultHead)
	if _, err := e.EstimateMs(tr); err == nil {
		t.Fatal("estimate for unregistered parent accepted")
	}
	e.SetParentLatency(other.Name, 0.5)
	if _, err := e.EstimateMs(tr); err != nil {
		t.Fatalf("after SetParentLatency: %v", err)
	}
}

func TestTrainAnalyticalTooFewSamples(t *testing.T) {
	fx := getFixture(t)
	if _, err := TrainAnalytical(fx.samples[:5], AnalyticalConfig{Seed: 1}); err == nil {
		t.Fatal("5 samples with 10-fold CV accepted")
	}
	if _, err := TrainLinear(fx.samples[:3]); err == nil {
		t.Fatal("3 samples for 5 features accepted")
	}
}

func TestFeaturesVector(t *testing.T) {
	g, _ := zoo.ByName("MobileNetV1 (0.25)")
	tr, _ := trim.Cut(g, 1, trim.DefaultHead)
	f := Features(tr, 0.3)
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature vector has %d entries, want %d", len(f), len(FeatureNames))
	}
	if f[0] != 0.3 {
		t.Fatalf("parent latency feature = %v, want 0.3", f[0])
	}
	for i, v := range f[1:] {
		if v <= 0 {
			t.Fatalf("feature %s = %v, want positive", FeatureNames[i+1], v)
		}
	}
}

func TestEstimatesDecreaseWithCutDepth(t *testing.T) {
	fx := getFixture(t)
	e := NewProfilerEstimator(fx.tables)
	g, _ := zoo.ByName("DenseNet-121")
	var prev float64
	for c := 1; c <= g.BlockCount(); c += 6 {
		tr, err := trim.Cut(g, c, trim.DefaultHead)
		if err != nil {
			t.Fatal(err)
		}
		est, err := e.EstimateMs(tr)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && est >= prev {
			t.Fatalf("estimate not decreasing at cut %d: %.4f -> %.4f", c, prev, est)
		}
		prev = est
	}
}
