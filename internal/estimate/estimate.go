// Package estimate implements the latency estimators of Sec. V-B that
// NetCut relies on to propose only deadline-feasible TRNs:
//
//   - ProfilerEstimator: Eq. (1). One per-layer latency table per
//     unmodified network; a TRN's latency is the parent's end-to-end
//     latency scaled by one minus the removed layers' share of the
//     table sum. The ratio form cancels the per-layer event overhead
//     that inflates the table.
//   - AnalyticalEstimator: an epsilon-SVR (RBF kernel) over
//     device-agnostic features — parent latency, MACs, parameters,
//     layer count and total filter size — tuned by 10-fold
//     cross-validated grid search (the paper lands on gamma = 1e-1,
//     C = 1e6).
//   - LinearEstimator: the same features through ordinary least
//     squares; the baseline whose ~24% error motivates the RBF kernel.
package estimate

import (
	"fmt"

	"netcut/internal/graph"
	"netcut/internal/profiler"
	"netcut/internal/trim"
)

// Estimator predicts a TRN's inference latency in milliseconds.
type Estimator interface {
	Name() string
	EstimateMs(t *trim.TRN) (float64, error)
}

// ProfilerEstimator implements Eq. (1) from per-layer tables.
type ProfilerEstimator struct {
	tables map[string]*profiler.Table
}

// NewProfilerEstimator builds the estimator from one table per
// unmodified network, keyed by network name.
func NewProfilerEstimator(tables map[string]*profiler.Table) *ProfilerEstimator {
	cp := make(map[string]*profiler.Table, len(tables))
	for k, v := range tables {
		cp[k] = v
	}
	return &ProfilerEstimator{tables: cp}
}

// Name implements Estimator.
func (e *ProfilerEstimator) Name() string { return "profiler" }

// EstimateMs implements Eq. (1):
//
//	Latency(TRN_n) = Latency(Net_0) * (1 - sum(removed) / sum(all))
//
// where the sums run over the parent's feature layers (classification
// layers excluded) in the profiled table.
func (e *ProfilerEstimator) EstimateMs(t *trim.TRN) (float64, error) {
	tbl, ok := e.tables[t.Parent.Name]
	if !ok {
		return 0, fmt.Errorf("estimate: no profile table for %q", t.Parent.Name)
	}
	var all, removed float64
	for _, n := range t.Parent.Nodes {
		if n.Head || n.Kind == graph.OpInput {
			continue
		}
		ms, ok := tbl.LayerMs(n.ID)
		if !ok {
			return 0, fmt.Errorf("estimate: table for %q missing layer %d", t.Parent.Name, n.ID)
		}
		all += ms
	}
	for _, id := range t.RemovedIDs {
		ms, ok := tbl.LayerMs(id)
		if !ok {
			return 0, fmt.Errorf("estimate: table for %q missing removed layer %d", t.Parent.Name, id)
		}
		removed += ms
	}
	if all <= 0 {
		return 0, fmt.Errorf("estimate: degenerate table sum for %q", t.Parent.Name)
	}
	return tbl.EndToEndMs * (1 - removed/all), nil
}

// FeatureNames documents the device-agnostic feature vector order used
// by the analytical and linear estimators (Sec. V-B2).
var FeatureNames = []string{
	"parent_latency_ms",
	"macs",
	"params",
	"layers",
	"filter_size_sum",
}

// Features extracts the analytical model's feature vector for a TRN.
// parentLatencyMs is the measured latency of the unmodified parent
// network (the only device-dependent feature, available from the same
// seven measurements Fig. 1 needs).
func Features(t *trim.TRN, parentLatencyMs float64) []float64 {
	g := t.Graph
	return []float64{
		parentLatencyMs,
		float64(g.TotalMACs()),
		float64(g.TotalParams()),
		float64(g.LayerCount()),
		float64(g.TotalFilterSize()),
	}
}

// Sample is one training example for the regression estimators.
type Sample struct {
	TRN             *trim.TRN
	ParentLatencyMs float64
	MeasuredMs      float64 // ground-truth latency of the TRN
}
