package estimate

import (
	"math/rand"
	"sort"
)

// StratifiedSplit partitions samples into a train fraction and the
// remaining test set, sampling the fraction *per parent network* so
// every architecture family contributes training coverage — the split
// the analytical model is fitted with (the paper trains on 20% and
// tests on the remaining 80%, Sec. V-B2). frac is clamped to (0, 1);
// each family contributes at least one training sample.
func StratifiedSplit(samples []Sample, frac float64, seed int64) (train, test []Sample) {
	if frac <= 0 {
		frac = 0.2
	}
	if frac >= 1 {
		frac = 0.5
	}
	groups := map[string][]int{}
	for i, s := range samples {
		groups[s.TRN.Parent.Name] = append(groups[s.TRN.Parent.Name], i)
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic iteration
	rng := rand.New(rand.NewSource(seed))
	for _, n := range names {
		idx := groups[n]
		perm := rng.Perm(len(idx))
		nTrain := int(float64(len(idx))*frac + 0.999)
		if nTrain < 1 {
			nTrain = 1
		}
		if nTrain >= len(idx) {
			nTrain = len(idx) - 1
		}
		if nTrain < 1 {
			nTrain = len(idx) // degenerate single-sample family
		}
		for i, p := range perm {
			if i < nTrain {
				train = append(train, samples[idx[p]])
			} else {
				test = append(test, samples[idx[p]])
			}
		}
	}
	return train, test
}

// DeployableBand filters samples to those whose measured latency is at
// least minMs. Ultra-deep cuts that leave only a stem are dominated by
// the replacement head's fixed cost, which Eq. (1) cannot see; the
// paper's error statistics concern the band NetCut actually deploys
// from. Error reports in the experiment harness quote both the full and
// the banded statistic.
func DeployableBand(samples []Sample, minMs float64) []Sample {
	var out []Sample
	for _, s := range samples {
		if s.MeasuredMs >= minMs {
			out = append(out, s)
		}
	}
	return out
}
