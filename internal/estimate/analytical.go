package estimate

import (
	"fmt"
	"maps"

	"netcut/internal/metric"
	"netcut/internal/svr"
	"netcut/internal/trim"
)

// AnalyticalConfig parameterizes analytical-model training.
type AnalyticalConfig struct {
	Grid    []svr.GridPoint // hyper-parameter grid; nil = svr.PaperGrid()
	Folds   int             // cross-validation folds; 0 = 10 (paper)
	Epsilon float64         // tube half-width in standardized target units; 0 = 0.05
	Seed    int64
}

func (c *AnalyticalConfig) fill() {
	if c.Grid == nil {
		c.Grid = svr.PaperGrid()
	}
	if c.Folds == 0 {
		c.Folds = 10
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.03
	}
}

// AnalyticalEstimator predicts TRN latency with an epsilon-SVR over
// device-agnostic features.
type AnalyticalEstimator struct {
	model   *svr.Model
	scaler  *svr.Scaler
	yMean   float64
	yStd    float64
	parents map[string]float64 // parent name -> measured latency feature
	Chosen  svr.GridPoint      // hyper-parameters selected by grid search
	CVRMSE  float64            // cross-validated RMSE at the chosen point
}

// TrainAnalytical fits the analytical model on measured TRN samples.
// Features and target are standardized internally; hyper-parameters are
// chosen by k-fold cross-validated grid search as in the paper.
func TrainAnalytical(samples []Sample, cfg AnalyticalConfig) (*AnalyticalEstimator, error) {
	cfg.fill()
	if len(samples) < cfg.Folds {
		return nil, fmt.Errorf("estimate: %d samples too few for %d-fold CV", len(samples), cfg.Folds)
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	parents := map[string]float64{}
	for i, s := range samples {
		X[i] = Features(s.TRN, s.ParentLatencyMs)
		y[i] = s.MeasuredMs
		parents[s.TRN.Parent.Name] = s.ParentLatencyMs
	}
	scaler, err := svr.FitScaler(X)
	if err != nil {
		return nil, err
	}
	Z := scaler.TransformAll(X)

	ym := metric.Mean(y)
	ys := metric.Std(y)
	if ys == 0 {
		ys = 1
	}
	yz := make([]float64, len(y))
	for i, v := range y {
		yz[i] = (v - ym) / ys
	}

	best, _, err := svr.GridSearch(Z, yz, cfg.Grid, cfg.Folds, cfg.Epsilon, cfg.Seed)
	if err != nil {
		return nil, err
	}
	model, err := svr.Train(Z, yz, svr.RBF{Gamma: best.Point.Gamma},
		svr.Params{C: best.Point.C, Epsilon: cfg.Epsilon})
	if err != nil {
		return nil, err
	}
	return &AnalyticalEstimator{
		model:   model,
		scaler:  scaler,
		yMean:   ym,
		yStd:    ys,
		parents: parents,
		Chosen:  best.Point,
		CVRMSE:  best.RMSE * ys,
	}, nil
}

// Name implements Estimator.
func (e *AnalyticalEstimator) Name() string { return "analytical" }

// SetParentLatency registers the measured latency of a parent network so
// TRNs of parents unseen at training time can be estimated. It mutates
// the receiver; concurrent services should use WithParentLatency.
func (e *AnalyticalEstimator) SetParentLatency(network string, ms float64) {
	e.parents[network] = ms
}

// WithParentLatency returns an estimator that additionally knows the
// given parent latency, without mutating the receiver: if the latency
// is already registered with the same value, the receiver itself is
// returned; otherwise a shallow copy with a copied parent map is built.
// This lets one long-lived trained model serve concurrent requests for
// parents unseen at training time with no shared-map writes.
func (e *AnalyticalEstimator) WithParentLatency(network string, ms float64) *AnalyticalEstimator {
	if v, ok := e.parents[network]; ok && v == ms {
		return e
	}
	cp := *e
	cp.parents = maps.Clone(e.parents)
	cp.parents[network] = ms
	return &cp
}

// EstimateMs implements Estimator.
func (e *AnalyticalEstimator) EstimateMs(t *trim.TRN) (float64, error) {
	lat, ok := e.parents[t.Parent.Name]
	if !ok {
		return 0, fmt.Errorf("estimate: analytical model has no parent latency for %q", t.Parent.Name)
	}
	z := e.scaler.Transform(Features(t, lat))
	return e.model.Predict(z)*e.yStd + e.yMean, nil
}

// LinearEstimator predicts TRN latency with ordinary least squares over
// the same features — the paper's sanity-check baseline.
type LinearEstimator struct {
	model   *svr.LinearModel
	scaler  *svr.Scaler
	parents map[string]float64
}

// TrainLinear fits the linear baseline on measured TRN samples. A tiny
// ridge stabilizes the collinear feature set (MACs, params and filter
// sums are strongly correlated).
func TrainLinear(samples []Sample) (*LinearEstimator, error) {
	if len(samples) < len(FeatureNames)+1 {
		return nil, fmt.Errorf("estimate: %d samples too few for %d features", len(samples), len(FeatureNames))
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	parents := map[string]float64{}
	for i, s := range samples {
		X[i] = Features(s.TRN, s.ParentLatencyMs)
		y[i] = s.MeasuredMs
		parents[s.TRN.Parent.Name] = s.ParentLatencyMs
	}
	scaler, err := svr.FitScaler(X)
	if err != nil {
		return nil, err
	}
	m, err := svr.FitLinear(scaler.TransformAll(X), y, 1e-8)
	if err != nil {
		return nil, err
	}
	return &LinearEstimator{model: m, scaler: scaler, parents: parents}, nil
}

// Name implements Estimator.
func (e *LinearEstimator) Name() string { return "linear" }

// SetParentLatency registers the measured latency of a parent network.
// It mutates the receiver; concurrent services should use
// WithParentLatency.
func (e *LinearEstimator) SetParentLatency(network string, ms float64) {
	e.parents[network] = ms
}

// WithParentLatency is the non-mutating variant of SetParentLatency;
// see AnalyticalEstimator.WithParentLatency.
func (e *LinearEstimator) WithParentLatency(network string, ms float64) *LinearEstimator {
	if v, ok := e.parents[network]; ok && v == ms {
		return e
	}
	cp := *e
	cp.parents = maps.Clone(e.parents)
	cp.parents[network] = ms
	return &cp
}

// EstimateMs implements Estimator.
func (e *LinearEstimator) EstimateMs(t *trim.TRN) (float64, error) {
	lat, ok := e.parents[t.Parent.Name]
	if !ok {
		return 0, fmt.Errorf("estimate: linear model has no parent latency for %q", t.Parent.Name)
	}
	return e.model.Predict(e.scaler.Transform(Features(t, lat))), nil
}
