package estimate

import (
	"fmt"

	"netcut/internal/trim"
)

// SubtractionEstimator is the naive alternative to Eq. (1): subtract
// the removed layers' profiled latencies from the parent's end-to-end
// latency directly. Because per-layer event overhead inflates every
// table entry, the subtraction inherits that bias — the reason the
// paper adopts the ratio form ("the summation of layers is slightly
// more than the actual measured inference delay", Sec. V-B1). It is
// exported for the design-choice ablation.
type SubtractionEstimator struct {
	inner *ProfilerEstimator
}

// NewSubtractionEstimator builds the ablation estimator over the same
// tables the profiler estimator uses.
func NewSubtractionEstimator(p *ProfilerEstimator) *SubtractionEstimator {
	return &SubtractionEstimator{inner: p}
}

// Name implements Estimator.
func (e *SubtractionEstimator) Name() string { return "subtraction" }

// EstimateMs implements Estimator.
func (e *SubtractionEstimator) EstimateMs(t *trim.TRN) (float64, error) {
	tbl, ok := e.inner.tables[t.Parent.Name]
	if !ok {
		return 0, fmt.Errorf("estimate: no profile table for %q", t.Parent.Name)
	}
	var removed float64
	for _, id := range t.RemovedIDs {
		ms, ok := tbl.LayerMs(id)
		if !ok {
			return 0, fmt.Errorf("estimate: table for %q missing removed layer %d", t.Parent.Name, id)
		}
		removed += ms
	}
	est := tbl.EndToEndMs - removed
	if est < 0 {
		est = 0
	}
	return est, nil
}
