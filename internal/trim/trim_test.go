package trim

import (
	"testing"
	"testing/quick"

	"netcut/internal/graph"
	"netcut/internal/zoo"
)

func TestCutZeroReplacesOnlyHead(t *testing.T) {
	g := zoo.MobileNetV1(0.5)
	trn, err := Cut(g, 0, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if trn.LayersRemoved != 0 {
		t.Fatalf("LayersRemoved = %d, want 0", trn.LayersRemoved)
	}
	if got, want := trn.Graph.FeatureLayerCount(), g.FeatureLayerCount(); got != want {
		t.Fatalf("feature layers = %d, want %d", got, want)
	}
	// Replacement head: GAP + Dense + ReLU + Dense + ReLU + Dense + Softmax.
	if got := trn.Graph.HeadLayerCount(); got != 7 {
		t.Fatalf("head layers = %d, want 7", got)
	}
	if trn.Graph.NumClasses != 5 {
		t.Fatalf("classes = %d, want 5", trn.Graph.NumClasses)
	}
	if trn.Name() != "MobileNetV1 (0.5)/0" {
		t.Fatalf("name = %q", trn.Name())
	}
}

func TestCutAllLeavesStem(t *testing.T) {
	g := zoo.MobileNetV1(0.5)
	trn, err := Cut(g, g.BlockCount(), DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	// Stem is Conv+BN+ReLU6 = 3 feature layers.
	if got := trn.Graph.FeatureLayerCount(); got != 3 {
		t.Fatalf("stem feature layers = %d, want 3", got)
	}
	if trn.Graph.BlockCount() != 0 {
		t.Fatalf("blocks = %d, want 0", trn.Graph.BlockCount())
	}
}

func TestCutOutOfRange(t *testing.T) {
	g := zoo.MobileNetV1(0.25)
	if _, err := Cut(g, -1, DefaultHead); err == nil {
		t.Fatal("negative cutpoint accepted")
	}
	if _, err := Cut(g, g.BlockCount()+1, DefaultHead); err == nil {
		t.Fatal("cutpoint beyond block count accepted")
	}
	if _, err := Cut(g, 1, HeadSpec{}); err == nil {
		t.Fatal("zero head spec accepted")
	}
}

func TestCutValidatesOnAllZooNetworks(t *testing.T) {
	for _, g := range zoo.Paper7() {
		for _, c := range []int{0, 1, g.BlockCount() / 2, g.BlockCount()} {
			trn, err := Cut(g, c, DefaultHead)
			if err != nil {
				t.Fatalf("%s cut %d: %v", g.Name, c, err)
			}
			if err := graph.Validate(trn.Graph); err != nil {
				t.Fatalf("%s cut %d: invalid TRN: %v", g.Name, c, err)
			}
		}
	}
}

// featureTotals sums MACs and params over non-head layers only. Head
// totals are excluded because a deeper cut can expose a *wider* tensor to
// the replacement head (e.g. MobileNetV2's 32-channel stem vs its
// 16-channel first block), legitimately growing head parameters.
func featureTotals(g *graph.Graph) (macs, params int64) {
	for _, n := range g.Nodes {
		if n.Head {
			continue
		}
		macs += n.MACs
		params += n.Params
	}
	return macs, params
}

func TestMonotonicity(t *testing.T) {
	// More blocks removed => fewer layers, fewer feature MACs/params.
	for _, g := range zoo.Paper7() {
		trns, err := EnumerateBlockwise(g, DefaultHead, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(trns); i++ {
			a, b := trns[i-1], trns[i]
			if b.LayersRemoved <= a.LayersRemoved {
				t.Fatalf("%s: LayersRemoved not increasing at cut %d (%d -> %d)",
					g.Name, i, a.LayersRemoved, b.LayersRemoved)
			}
			am, ap := featureTotals(a.Graph)
			bm, bp := featureTotals(b.Graph)
			if bm >= am {
				t.Fatalf("%s: feature MACs not decreasing at cut %d", g.Name, i)
			}
			if bp >= ap {
				t.Fatalf("%s: feature params not decreasing at cut %d", g.Name, i)
			}
		}
	}
}

func TestBlockwiseCandidateCountIs148(t *testing.T) {
	total := 0
	for _, g := range zoo.Paper7() {
		trns, err := EnumerateBlockwise(g, DefaultHead, false)
		if err != nil {
			t.Fatal(err)
		}
		total += len(trns)
	}
	if total != 148 {
		t.Fatalf("blockwise candidates = %d, want 148 (paper, Sec. V)", total)
	}
}

func TestRemovedIDsPartitionFeatureLayers(t *testing.T) {
	g := zoo.ResNet50()
	trn, err := Cut(g, 8, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if len(trn.RemovedIDs) != trn.LayersRemoved {
		t.Fatalf("RemovedIDs len %d != LayersRemoved %d", len(trn.RemovedIDs), trn.LayersRemoved)
	}
	if got, want := trn.Graph.FeatureLayerCount()+trn.LayersRemoved, g.FeatureLayerCount(); got != want {
		t.Fatalf("kept+removed = %d, want %d", got, want)
	}
	for _, id := range trn.RemovedIDs {
		n := g.Node(id)
		if n.Head || n.Kind == graph.OpInput {
			t.Fatalf("removed ID %d is head/input", id)
		}
	}
}

func TestCutAtNodeMidBlock(t *testing.T) {
	g := zoo.InceptionV3()
	// Cut in the middle of the network at an arbitrary conv node.
	mid := len(g.Nodes) / 2
	for g.Nodes[mid].Kind != graph.OpConv {
		mid++
	}
	trn, err := CutAtNode(g, mid, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Validate(trn.Graph); err != nil {
		t.Fatal(err)
	}
	if trn.Cutpoint != -1 {
		t.Fatalf("Cutpoint = %d, want -1 for node cuts", trn.Cutpoint)
	}
	// Ancestor cut drops unconsumed sibling branches: layers removed must
	// be at least the suffix length.
	if trn.LayersRemoved <= 0 {
		t.Fatal("no layers removed by mid cut")
	}
}

func TestCutAtNodeRejectsHeadAndInput(t *testing.T) {
	g := zoo.MobileNetV1(0.25)
	if _, err := CutAtNode(g, 0, DefaultHead); err == nil {
		t.Fatal("cut at input accepted")
	}
	if _, err := CutAtNode(g, len(g.Nodes)-1, DefaultHead); err == nil {
		t.Fatal("cut at head accepted")
	}
}

func TestExhaustiveEnumerationCoversAllFeatureLayers(t *testing.T) {
	g := zoo.MobileNetV1(0.25)
	trns, err := EnumerateExhaustive(g, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if len(trns) != g.FeatureLayerCount() {
		t.Fatalf("exhaustive TRNs = %d, want %d", len(trns), g.FeatureLayerCount())
	}
	// Exhaustive enumeration includes every blockwise cut tensor.
	blockCuts := map[int]bool{}
	for _, blk := range g.Blocks {
		blockCuts[blk.Output] = true
	}
	seen := 0
	for _, trn := range trns {
		if blockCuts[trn.CutNode] {
			seen++
		}
	}
	if seen != len(g.Blocks) {
		t.Fatalf("exhaustive covers %d block outputs, want %d", seen, len(g.Blocks))
	}
}

// Property: for random blockwise cutpoints, the TRN graph always
// validates, its block count equals BlockCount-cut, and its output is a
// softmax over the head's class count.
func TestCutProperties(t *testing.T) {
	g := zoo.MobileNetV2(1.0)
	f := func(raw uint8) bool {
		c := int(raw) % (g.BlockCount() + 1)
		trn, err := Cut(g, c, DefaultHead)
		if err != nil {
			return false
		}
		if graph.Validate(trn.Graph) != nil {
			return false
		}
		if trn.Graph.BlockCount() != g.BlockCount()-c {
			return false
		}
		out := trn.Graph.OutputNode()
		return out.Kind == graph.OpSoftmax && out.Out.C == DefaultHead.Classes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParentGraphUnmodified(t *testing.T) {
	g := zoo.ResNet50()
	before := g.LayerCount()
	macs := g.TotalMACs()
	if _, err := Cut(g, 10, DefaultHead); err != nil {
		t.Fatal(err)
	}
	if g.LayerCount() != before || g.TotalMACs() != macs {
		t.Fatal("Cut mutated the parent graph")
	}
	if err := graph.Validate(g); err != nil {
		t.Fatalf("parent invalid after cut: %v", err)
	}
}

// TestCutScopeIsolatesCacheEntries pins the device half of the cut
// cache key: the same (parent, cut, head) under two scopes builds two
// independent entries with structurally identical TRNs, repeats within
// one scope stay cache hits, and scope 0 remains the shared library
// namespace.
func TestCutScopeIsolatesCacheEntries(t *testing.T) {
	PurgeCutCache()
	g := zoo.MobileNetV1(0.5)
	const scopeA, scopeB = 0xA11CE, 0xB0B
	a1, err := CutScoped(scopeA, g, 3, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	lenAfterA := CutCacheStats().Len
	b1, err := CutScoped(scopeB, g, 3, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if CutCacheStats().Len != lenAfterA+1 {
		t.Fatalf("second scope did not create its own entry: %d -> %d",
			lenAfterA, CutCacheStats().Len)
	}
	if a1 == b1 {
		t.Fatal("two scopes returned one shared *TRN: cache entries are shared")
	}
	// The scope changes cache identity only, never the cut itself.
	if a1.Name() != b1.Name() || a1.LayersRemoved != b1.LayersRemoved ||
		graph.Fingerprint(a1.Graph) != graph.Fingerprint(b1.Graph) {
		t.Fatal("scoped cuts diverged structurally")
	}
	// Repeats within a scope are hits on that scope's entry.
	a2, err := CutScoped(scopeA, g, 3, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Fatal("repeat within one scope rebuilt the TRN")
	}
	// The unscoped path is its own namespace too.
	u, err := Cut(g, 3, DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if u == a1 || u == b1 {
		t.Fatal("unscoped cut aliased a scoped entry")
	}
}
