package trim

import (
	"testing"

	"netcut/internal/zoo"
)

func BenchmarkCutResNet(b *testing.B) {
	g := zoo.ResNet50()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cut(g, 9, DefaultHead); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateBlockwiseDenseNet(b *testing.B) {
	g := zoo.DenseNet121()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnumerateBlockwise(g, DefaultHead, false); err != nil {
			b.Fatal(err)
		}
	}
}
