package trim

import (
	"fmt"

	"netcut/internal/faultinject"
	"netcut/internal/graph"
)

// Warm-state snapshot/restore of the process-wide cut cache. A TRN
// carries whole graphs, so snapshots do not serialize built TRNs:
// instead each cache entry is recorded as its *cut coordinates* — the
// parent graph plus (scope, position, granularity, head) — and restore
// re-runs the cut, which is a pure function of those coordinates. A
// restored entry is therefore byte-identical to a recomputed one by
// construction; the snapshot saves the caller only the parent graphs
// and the work of rediscovering which cuts were hot. The persistence
// layer (internal/persist) dedupes parents by fingerprint on the wire.

// CutRecord is the cut-coordinate form of one cut-cache entry.
type CutRecord struct {
	// Scope is the cache scope the entry lives under: 0 for the shared
	// library namespace, a device-calibration fingerprint for
	// planner-driven cuts (see CutScoped).
	Scope uint64
	// Parent is the graph the cut was taken from; ParentPrint its
	// structural fingerprint (the cache key's parent half).
	Parent      *graph.Graph
	ParentPrint uint64
	// At is the cut position: trailing blocks removed for blockwise
	// cuts, the cut node ID for exhaustive cuts.
	At        int
	Blockwise bool
	Head      HeadSpec
}

// SnapshotCuts exports the cut cache as cut records in shard order,
// each shard least-recently-used first (the lru snapshot order), so a
// replay through RestoreCut reproduces contents and per-shard recency.
// keep filters by scope (nil keeps every entry): a single-device
// planner persists only its own scope plus the shared scope 0.
func SnapshotCuts(keep func(scope uint64) bool) []CutRecord {
	entries := cutCache.Snapshot()
	out := make([]CutRecord, 0, len(entries))
	for _, e := range entries {
		if keep != nil && !keep(e.Key.scope) {
			continue
		}
		out = append(out, CutRecord{
			Scope:       e.Key.scope,
			Parent:      e.Val.Parent,
			ParentPrint: e.Key.parent,
			At:          e.Key.at,
			Blockwise:   e.Key.blockwise,
			Head:        e.Key.head,
		})
	}
	return out
}

// CheckCut validates a cut record's coordinates against its parent —
// the same head-spec, cut-range and head-layer checks the cut path
// applies — without building anything or touching the cache, so a
// restoring layer can validate every record of a snapshot before
// replaying any of them.
func CheckCut(rec CutRecord) error {
	if err := rec.Head.validate(); err != nil {
		return err
	}
	if rec.Blockwise {
		if nb := rec.Parent.BlockCount(); rec.At < 0 || rec.At > nb {
			return fmt.Errorf("trim: cutpoint %d out of range [0,%d] for %s", rec.At, nb, rec.Parent.Name)
		}
		return nil
	}
	if rec.At <= 0 || rec.At >= len(rec.Parent.Nodes) {
		return fmt.Errorf("trim: node %d out of range for %s", rec.At, rec.Parent.Name)
	}
	if rec.Parent.Nodes[rec.At].Head {
		return fmt.Errorf("trim: node %d of %s is a head layer", rec.At, rec.Parent.Name)
	}
	return nil
}

// RestoreCut re-executes one snapshotted cut against its (decoded)
// parent graph and caches the result — the restore half of
// SnapshotCuts. It is exactly the public cut path, so every validation
// (head spec, cut range, head-layer exclusion) applies and a record
// that no longer cuts cleanly is a structured error, never a poisoned
// cache entry.
func RestoreCut(rec CutRecord) error {
	var err error
	if rec.Blockwise {
		_, err = CutScoped(rec.Scope, rec.Parent, rec.At, rec.Head)
	} else {
		_, err = CutAtNodeScoped(rec.Scope, rec.Parent, rec.At, rec.Head)
	}
	return err
}

// BuildCut is the build half of RestoreCut: it runs the same fault
// site and validations and computes the TRN, but never touches the cut
// cache. A parallel restore builds many cuts concurrently with BuildCut
// and then inserts them serially with InsertCut, so the cache's
// per-shard recency order is exactly what serial replay would produce.
func BuildCut(rec CutRecord) (*TRN, error) {
	faultinject.Panic(faultinject.TrimPanic, rec.Parent.Name)
	if err := rec.Head.validate(); err != nil {
		return nil, err
	}
	if rec.Blockwise {
		return cutBlocks(rec.Parent, rec.At, rec.Head)
	}
	return cutAtNode(rec.Parent, rec.At, rec.Head)
}

// InsertCut caches a TRN built by BuildCut under its record's
// coordinates — the insert half of the parallel-restore split.
func InsertCut(rec CutRecord, trn *TRN) {
	cutCache.Add(cutKey{
		scope:     rec.Scope,
		parent:    graph.Fingerprint(rec.Parent),
		at:        rec.At,
		blockwise: rec.Blockwise,
		head:      rec.Head,
	}, trn)
}
