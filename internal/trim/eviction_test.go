package trim

import (
	"reflect"
	"testing"

	"netcut/internal/zoo"
)

// TestCutCacheEvictionTransparent shrinks the cut cache far below the
// blockwise family of ResNet-50, re-enumerates, and checks every TRN is
// rebuilt identically (same cut geometry, same removed layers, same
// trimmed-graph fingerprint-relevant fields) while the cache never
// exceeds its cap.
func TestCutCacheEvictionTransparent(t *testing.T) {
	prevCap := CutCacheStats().Cap
	defer SetCutCacheCap(prevCap)

	g := zoo.ResNet50()
	before, err := EnumerateBlockwise(g, DefaultHead, true)
	if err != nil {
		t.Fatal(err)
	}

	const cap = 3 // far below ResNet-50's 17 cutpoints: every pass evicts
	SetCutCacheCap(cap)
	if n := CutCacheStats().Len; n > cap {
		t.Fatalf("resize left %d > cap %d entries", n, cap)
	}
	after, err := EnumerateBlockwise(g, DefaultHead, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := CutCacheStats().Len; n > cap {
		t.Fatalf("cache holds %d > cap %d after enumeration", n, cap)
	}
	if len(after) != len(before) {
		t.Fatalf("family size changed: %d vs %d", len(after), len(before))
	}
	for i := range after {
		a, b := after[i], before[i]
		if a.Cutpoint != b.Cutpoint || a.CutNode != b.CutNode || a.LayersRemoved != b.LayersRemoved {
			t.Fatalf("cut %d geometry changed: %+v vs %+v", i, a, b)
		}
		if !reflect.DeepEqual(a.RemovedIDs, b.RemovedIDs) {
			t.Fatalf("cut %d removed IDs changed", i)
		}
		if a.Name() != b.Name() {
			t.Fatalf("cut %d name changed: %s vs %s", i, a.Name(), b.Name())
		}
		if !reflect.DeepEqual(a.Graph.Nodes, b.Graph.Nodes) {
			t.Fatalf("cut %d rebuilt trimmed graph differs", i)
		}
	}
}
