package trim

import (
	"sync"
	"testing"

	"netcut/internal/zoo"
)

// TestCutCacheShardCapsSumToDefault pins the sharding satellite of the
// gateway PR: the cut cache is split across CutCacheShards shards whose
// caps sum to the pre-sharding DefaultCutCacheCap, so sharding changed
// contention, not capacity.
func TestCutCacheShardCapsSumToDefault(t *testing.T) {
	prevCap := CutCacheStats().Cap
	defer SetCutCacheCap(prevCap)
	SetCutCacheCap(DefaultCutCacheCap)

	if got := cutCache.Shards(); got != CutCacheShards {
		t.Fatalf("shard count %d, want %d", got, CutCacheShards)
	}
	var sum int
	for i, st := range cutCache.ShardStats() {
		if st.Cap <= 0 {
			t.Fatalf("shard %d unbounded under default total cap", i)
		}
		sum += st.Cap
	}
	if sum != DefaultCutCacheCap {
		t.Fatalf("per-shard caps sum to %d, want %d", sum, DefaultCutCacheCap)
	}
	if agg := CutCacheStats().Cap; agg != DefaultCutCacheCap {
		t.Fatalf("aggregate cap %d, want %d", agg, DefaultCutCacheCap)
	}
}

// TestCutCacheShardsByParent checks all cuts of one parent share a
// shard (strict LRU locality per architecture) while the cache remains
// correct for concurrent cutting across many parents — the gateway's
// load shape. Run under -race this doubles as the sharded cache's
// contention probe.
func TestCutCacheShardsByParent(t *testing.T) {
	PurgeCutCache()
	nets := zoo.Paper7()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				for _, g := range nets {
					if _, err := EnumerateBlockwise(g, DefaultHead, true); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every parent's cuts occupy exactly one shard: the number of
	// non-empty shards is at most the number of distinct parents.
	nonEmpty := 0
	for _, st := range cutCache.ShardStats() {
		if st.Len > 0 {
			nonEmpty++
		}
	}
	if nonEmpty > len(nets) {
		t.Fatalf("%d shards occupied by %d parents; cuts of one parent split across shards", nonEmpty, len(nets))
	}

	// Repeating an enumeration is a pure cache hit.
	misses := CutCacheStats().Misses
	if _, err := EnumerateBlockwise(nets[0], DefaultHead, true); err != nil {
		t.Fatal(err)
	}
	if got := CutCacheStats().Misses; got != misses {
		t.Fatalf("repeat enumeration caused %d new misses", got-misses)
	}
}
