// Package trim implements layer removal: the construction of TRimmed
// Networks (TRNs) from a pretrained network by removing problem-specific
// top layers and attaching a fresh transfer-learning head (Sec. IV of the
// paper, Fig. 3).
//
// Two granularities are supported:
//
//   - blockwise removal (Cut, EnumerateBlockwise): whole trailing blocks
//     are removed — the heuristic the paper adopts after showing
//     within-block cuts move accuracy by < 0.03 (Fig. 4);
//   - exhaustive removal (CutAtNode, EnumerateExhaustive): the network is
//     cut at an arbitrary layer, keeping that layer's dependency-closed
//     ancestor subgraph — the baseline of Fig. 4.
package trim

import (
	"fmt"

	"netcut/internal/faultinject"
	"netcut/internal/graph"
	"netcut/internal/lru"
	"netcut/internal/telemetry"
)

// HeadSpec describes the replacement classification head: one global
// average pooling layer, two FC/ReLU layers, and a final FC/Softmax
// (Sec. III-B3).
type HeadSpec struct {
	Hidden1 int // units of the first FC/ReLU layer
	Hidden2 int // units of the second FC/ReLU layer
	Classes int // output classes
}

// DefaultHead is the replacement head used for the 5-grasp HANDS task.
var DefaultHead = HeadSpec{Hidden1: 256, Hidden2: 128, Classes: 5}

func (h HeadSpec) validate() error {
	if h.Hidden1 <= 0 || h.Hidden2 <= 0 || h.Classes <= 0 {
		return fmt.Errorf("trim: head spec %+v has non-positive sizes", h)
	}
	return nil
}

// TRN is a trimmed network: a prefix of a parent network with a fresh
// transfer head.
type TRN struct {
	Graph  *graph.Graph // the trimmed network, head attached
	Parent *graph.Graph // the original network

	// Cutpoint is the number of trailing blocks removed for blockwise
	// cuts, or -1 for exhaustive (node-granularity) cuts.
	Cutpoint int
	// CutNode is the parent node ID whose output the new head consumes.
	CutNode int
	// LayersRemoved counts parent feature layers absent from the TRN —
	// the x-axis of Figs. 4, 5 and 8 and the "/94" in "ResNet-50/94".
	LayersRemoved int
	// RemovedIDs lists the parent-graph IDs of removed feature layers
	// (excluding the parent's head), as consumed by Eq. (1).
	RemovedIDs []int
}

// Name returns the paper-style label, e.g. "ResNet-50/94".
func (t *TRN) Name() string {
	return fmt.Sprintf("%s/%d", t.Parent.Name, t.LayersRemoved)
}

// cutKey identifies one memoized cut: the parent graph (by structural
// fingerprint, so the cache is bounded by the number of distinct
// architectures seen in the process, not by how many times equal graphs
// are rebuilt), the cut position, its granularity, the head attached,
// and the caller's cache scope (the device-calibration fingerprint for
// planner-driven cuts; see the Scoped variants).
type cutKey struct {
	scope     uint64 // 0 for unscoped library cuts
	parent    uint64 // graph.Fingerprint of the parent
	at        int    // blocks for blockwise cuts, node ID for exhaustive cuts
	blockwise bool
	head      HeadSpec
}

// cutCache memoizes built TRNs. Cutting is deterministic, and TRNs are
// immutable once built (nothing in this codebase writes to a TRN or its
// graph after construction), so Algorithm 1's inner loop — which
// re-derives the same cuts for every estimator and every deadline —
// costs one subgraph build per distinct cut instead of one per query.
// Note a cache hit may return a TRN whose Parent pointer is a different
// (structurally identical) graph object than the argument; nothing in
// this codebase compares parents by pointer identity.
//
// The cache is a bounded LRU (DefaultCutCacheCap) sharded by parent
// fingerprint (CutCacheShards shards whose caps sum to the configured
// total), so the gateway's concurrent request stream — many goroutines
// cutting many distinct parents — does not serialize on one mutex,
// while all cuts of one parent still share one strict-LRU shard. Cuts
// are pure functions of (parent structure, position, head), so
// eviction is transparent and a service cutting a stream of arbitrary
// user graphs runs in constant memory.
var cutCache = lru.NewSharded[cutKey, *TRN](CutCacheShards, DefaultCutCacheCap,
	func(k cutKey) uint64 { return k.parent })

// DefaultCutCacheCap bounds the package cut cache. The paper pipeline's
// working set — 148 blockwise TRNs plus a few hundred exhaustive cuts
// per ablation — stays resident with a wide margin.
const DefaultCutCacheCap = 8192

// CutCacheShards is the cut cache's shard count: enough to keep
// concurrent planners on distinct parents from contending, small enough
// that each shard's slice of the default cap (512 entries) still holds
// every cut of its resident parents.
const CutCacheShards = 16

// SetCutCacheCap re-bounds the cut cache (<= 0 means unbounded),
// redistributing the total across the shards and evicting
// least-recently-used TRNs as needed.
func SetCutCacheCap(cap int) { cutCache.Resize(cap) }

// Instrument registers the cut cache's hit/miss/eviction/occupancy
// series on reg under the netcut_trim_cuts prefix.
func Instrument(reg *telemetry.Registry) {
	lru.Instrument(reg, "netcut_trim_cuts", cutCache)
}

// PurgeCutCache empties the cut cache. Cuts rebuild identically on the
// next query (the cache is transparent); cold-path benchmarks use this
// to keep earlier process activity from pre-warming their runs.
func PurgeCutCache() { cutCache.Purge() }

// CutCacheStats reports the cut cache's size and hit counters.
func CutCacheStats() lru.Stats { return cutCache.Stats() }

// Cut removes the last `blocks` blocks of g and attaches the replacement
// head. blocks = 0 replaces only the head (transfer learning on the full
// feature extractor); blocks = g.BlockCount() leaves only the stem.
// The returned TRN may be shared with other callers; treat it as
// immutable.
func Cut(g *graph.Graph, blocks int, head HeadSpec) (*TRN, error) {
	return CutScoped(0, g, blocks, head)
}

// CutScoped is Cut with an explicit cache scope folded into the memo
// key. Cutting itself is a pure graph transform — the same inputs build
// the same TRN whatever the scope — but a multi-target planner pool
// passes its device-calibration fingerprint (device.Config.Fingerprint)
// here so that no two targets share a cut-cache entry for any
// device-dependent work: every cut the planning path creates (candidate
// exploration, zoo-sample enumeration) is device-scoped, so evicting
// one device's working set cannot be caused by another device's
// traffic patterns against the same parents. Scope 0 is the unscoped
// shared namespace: the library/Lab path, and deliberately also the
// retraining simulator's boundary-table cuts (transfer.Simulator),
// which feed a device-independent accuracy model — those entries are
// pure functions of (parent, cut, head) with identical values for
// every target, so sharing them across a pool is cache reuse, not
// cross-device leakage.
func CutScoped(scope uint64, g *graph.Graph, blocks int, head HeadSpec) (*TRN, error) {
	// Fault site (no-op unless a test armed it): a panic deep in the
	// planning layer stack, fired before the cache lookup so a poison
	// graph re-panics on every attempt rather than only on its first.
	faultinject.Panic(faultinject.TrimPanic, g.Name)
	if err := head.validate(); err != nil {
		return nil, err
	}
	key := cutKey{scope: scope, parent: graph.Fingerprint(g), at: blocks, blockwise: true, head: head}
	if v, ok := cutCache.Get(key); ok {
		return v, nil
	}
	trn, err := cutBlocks(g, blocks, head)
	if err != nil {
		return nil, err
	}
	return cutCache.Add(key, trn), nil
}

func cutBlocks(g *graph.Graph, blocks int, head HeadSpec) (*TRN, error) {
	nb := g.BlockCount()
	if blocks < 0 || blocks > nb {
		return nil, fmt.Errorf("trim: cutpoint %d out of range [0,%d] for %s", blocks, nb, g.Name)
	}
	var keepLast int
	switch {
	case blocks == 0:
		keepLast = g.LastFeatureNode()
	case blocks == nb:
		// All blocks removed: cut at the last stem node before block 0.
		keepLast = g.Blocks[0].Nodes[0] - 1
	default:
		// Blocks [0, nb-blocks) survive; the cut tensor is the output of
		// the last surviving block.
		keepLast = g.Blocks[nb-blocks-1].Output
	}
	trn, err := cutAt(g, keepLast, head)
	if err != nil {
		return nil, err
	}
	trn.Cutpoint = blocks
	return trn, nil
}

// CutAtNode cuts g at an arbitrary non-head node, keeping the node's
// ancestor subgraph, and attaches the replacement head. The returned
// TRN may be shared with other callers; treat it as immutable.
func CutAtNode(g *graph.Graph, nodeID int, head HeadSpec) (*TRN, error) {
	return CutAtNodeScoped(0, g, nodeID, head)
}

// CutAtNodeScoped is CutAtNode with an explicit cache scope (see
// CutScoped).
func CutAtNodeScoped(scope uint64, g *graph.Graph, nodeID int, head HeadSpec) (*TRN, error) {
	faultinject.Panic(faultinject.TrimPanic, g.Name)
	if err := head.validate(); err != nil {
		return nil, err
	}
	key := cutKey{scope: scope, parent: graph.Fingerprint(g), at: nodeID, blockwise: false, head: head}
	if v, ok := cutCache.Get(key); ok {
		return v, nil
	}
	trn, err := cutAtNode(g, nodeID, head)
	if err != nil {
		return nil, err
	}
	return cutCache.Add(key, trn), nil
}

func cutAtNode(g *graph.Graph, nodeID int, head HeadSpec) (*TRN, error) {
	if nodeID <= 0 || nodeID >= len(g.Nodes) {
		return nil, fmt.Errorf("trim: node %d out of range for %s", nodeID, g.Name)
	}
	if g.Nodes[nodeID].Head {
		return nil, fmt.Errorf("trim: node %d of %s is a head layer", nodeID, g.Name)
	}
	trn, err := cutAt(g, nodeID, head)
	if err != nil {
		return nil, err
	}
	trn.Cutpoint = -1
	return trn, nil
}

func cutAt(g *graph.Graph, keepLast int, head HeadSpec) (*TRN, error) {
	keep := g.Ancestors(keepLast)
	inSet := make(map[int]bool, len(keep))
	for _, id := range keep {
		inSet[id] = true
	}
	var removed []int
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput || n.Head || inSet[n.ID] {
			continue
		}
		removed = append(removed, n.ID)
	}

	b, last := graph.SubgraphBuilder("", g, keep, head.Classes)
	b.BeginHead()
	x := b.GlobalAvgPool(last)
	x = b.Dense(x, head.Hidden1)
	x = b.ReLU(x)
	x = b.Dense(x, head.Hidden2)
	x = b.ReLU(x)
	x = b.Dense(x, head.Classes)
	b.Softmax(x)
	ng, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("trim: cutting %s at node %d: %w", g.Name, keepLast, err)
	}

	trn := &TRN{
		Graph:         ng,
		Parent:        g,
		CutNode:       keepLast,
		LayersRemoved: len(removed),
		RemovedIDs:    removed,
	}
	ng.Name = trn.Name()
	return trn, nil
}

// EnumerateBlockwise returns the blockwise TRN family of g for cutpoints
// 1..BlockCount — the candidate set whose total across the paper's seven
// networks is 148. Set includeZero to also prepend the cut-0 (head-only)
// TRN.
func EnumerateBlockwise(g *graph.Graph, head HeadSpec, includeZero bool) ([]*TRN, error) {
	return EnumerateBlockwiseScoped(0, g, head, includeZero)
}

// EnumerateBlockwiseScoped is EnumerateBlockwise with an explicit cache
// scope (see CutScoped).
func EnumerateBlockwiseScoped(scope uint64, g *graph.Graph, head HeadSpec, includeZero bool) ([]*TRN, error) {
	var out []*TRN
	start := 1
	if includeZero {
		start = 0
	}
	for c := start; c <= g.BlockCount(); c++ {
		t, err := CutScoped(scope, g, c, head)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// EnumerateExhaustive returns one TRN per eligible cut node (every
// non-input, non-head node), in ascending cut-node order — the
// "iteratively removing each layer" baseline of Fig. 4.
func EnumerateExhaustive(g *graph.Graph, head HeadSpec) ([]*TRN, error) {
	var out []*TRN
	for id := 1; id < len(g.Nodes); id++ {
		if g.Nodes[id].Head {
			continue
		}
		t, err := CutAtNode(g, id, head)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
