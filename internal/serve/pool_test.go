package serve

import (
	"errors"
	"math"
	"testing"

	"netcut/internal/device"
	"netcut/internal/telemetry"
	"netcut/internal/trim"
)

func quickPool(t *testing.T, seed int64, devs ...device.Config) *PlannerPool {
	t.Helper()
	pp, err := NewPool(PoolConfig{
		Base:    Config{Seed: seed, Protocol: quickProto},
		Devices: devs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

// TestPoolCrossDeviceCacheIsolation pins the tentpole acceptance
// criterion: the same graph+seed planned against two registered
// devices returns different measured latencies with zero shared cache
// entries, while a repeat on one device stays a warm cache hit.
func TestPoolCrossDeviceCacheIsolation(t *testing.T) {
	trim.PurgeCutCache()
	pp := quickPool(t, 7, device.Xavier(), device.ServerGPU())
	g := userNet(0)
	req := Request{Graph: g, DeadlineMs: 0.35}

	ra, err := pp.Select("sim-xavier", req)
	if err != nil {
		t.Fatal(err)
	}
	cutsAfterA := trim.CutCacheStats()
	rb, err := pp.Select("sim-server-gpu", req)
	if err != nil {
		t.Fatal(err)
	}
	cutsAfterB := trim.CutCacheStats()

	if ra.Device != "sim-xavier" || rb.Device != "sim-server-gpu" {
		t.Fatalf("responses name devices %q/%q", ra.Device, rb.Device)
	}
	if ra.MeasuredMs == rb.MeasuredMs {
		t.Fatalf("two calibrations measured identical latency %v ms", ra.MeasuredMs)
	}
	// Zero shared cut entries: the second device's pass builds its own
	// device-scoped cuts instead of hitting the first device's.
	if cutsAfterB.Len <= cutsAfterA.Len {
		t.Fatalf("second device added no cut entries (%d -> %d): cuts are shared across targets",
			cutsAfterA.Len, cutsAfterB.Len)
	}
	// Per-planner caches are independent instances with independent keys.
	pa, _ := pp.Planner("sim-xavier")
	pb, _ := pp.Planner("sim-server-gpu")
	sa, sb := pa.Stats(), pb.Stats()
	if sa.Measurements.Len == 0 || sb.Measurements.Len == 0 {
		t.Fatal("a device planned without populating its measurement cache")
	}

	// Repeats stay warm per device and reproduce the response exactly.
	ma := sa.Measurements.Hits
	ra2, err := pp.Select("sim-xavier", req)
	if err != nil {
		t.Fatal(err)
	}
	if responseKey(ra2) != responseKey(ra) || ra2.Device != ra.Device {
		t.Fatal("repeated request on one device diverged")
	}
	if pa.Stats().Measurements.Hits <= ma {
		t.Fatal("repeated request on one device was not a warm cache hit")
	}
}

// TestPoolMatchesSingleDevicePlanner pins pool determinism: for every
// registered target, the pool's response is identical to a fresh
// single-device Planner built with the same seed and calibration.
func TestPoolMatchesSingleDevicePlanner(t *testing.T) {
	pp := quickPool(t, 21) // full registry
	req := Request{Graph: userNet(1), DeadlineMs: 0.35}
	for _, name := range pp.DeviceNames() {
		got, err := pp.Select(name, Request{Graph: userNet(1), DeadlineMs: 0.35})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg, err := device.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := New(Config{Seed: 21, Protocol: quickProto, Device: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		want, err := solo.Select(req)
		if err != nil {
			t.Fatal(err)
		}
		if responseKey(got) != responseKey(want) || got.Device != want.Device {
			t.Fatalf("%s: pool response diverges from single-device planner:\npool %+v\nsolo %+v",
				name, got, want)
		}
	}
}

// TestPoolBoundsArePerPool pins the cap-splitting rule: the pool-wide
// budget is divided across targets, not multiplied by them.
func TestPoolBoundsArePerPool(t *testing.T) {
	pp := quickPool(t, 1, device.Xavier(), device.EdgeCPU())
	for _, name := range pp.DeviceNames() {
		p, _ := pp.Planner(name)
		s := p.Stats()
		if want := device.DefaultPlanCacheCap / 2; s.Plans.Cap != want {
			t.Fatalf("%s plan cache cap %d, want %d (pool default / devices)", name, s.Plans.Cap, want)
		}
	}
	// Explicit totals divide too; negative stays unbounded.
	pp2, err := NewPool(PoolConfig{
		Base:    Config{Protocol: quickProto, PlanCacheCap: 64, MeasurementCacheCap: -1},
		Devices: []device.Config{device.Xavier(), device.EdgeCPU()},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pp2.Planner("sim-edge-cpu")
	if s := p.Stats(); s.Plans.Cap != 32 || s.Measurements.Cap != 0 {
		t.Fatalf("caps %d/%d, want 32 plan cap and unbounded measurements", s.Plans.Cap, s.Measurements.Cap)
	}
}

// TestPoolConfigErrors pins the structured-error boundary: bad device
// profiles, duplicates and unknown lookups are errors, never panics.
func TestPoolConfigErrors(t *testing.T) {
	bad := device.Xavier()
	bad.MemBandwidth = -4
	if _, err := NewPool(PoolConfig{Devices: []device.Config{bad}}); err == nil {
		t.Fatal("invalid device profile accepted")
	}
	if _, err := NewPool(PoolConfig{Devices: []device.Config{device.Xavier(), device.Xavier()}}); err == nil {
		t.Fatal("duplicate device accepted")
	}
	pp := quickPool(t, 1, device.Xavier())
	if _, err := pp.Planner("sim-quantum"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown device lookup: %v", err)
	}
	if _, err := pp.Select("sim-quantum", Request{Graph: userNet(0)}); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown device select: %v", err)
	}
}

// TestPoolRoute pins auto-routing: deterministic cold-start pick,
// fastest-qualifying selection once estimates exist, and the
// no-qualifier outcome carrying a retry hint.
func TestPoolRoute(t *testing.T) {
	pp := quickPool(t, 3, device.Xavier(), device.EdgeCPU())

	// Cold start: no estimates anywhere, first registered target wins.
	name, est, ok := pp.Route(0.5, 0, 1, nil)
	if !ok || name != "sim-xavier" || est != 0 {
		t.Fatalf("cold route = (%q, %v, %v), want deterministic first device", name, est, ok)
	}

	// Warm one device so it has a real (positive) estimate; the other
	// stays unmeasured (estimate 0) and must win the fastest ranking.
	reg := telemetry.NewRegistry()
	pp.Instrument(reg)
	req := Request{Graph: userNet(2), DeadlineMs: 0.35}
	pa, _ := pp.Planner("sim-xavier")
	for i := 0; i < 3; i++ {
		if _, err := pa.Select(req); err != nil {
			t.Fatal(err)
		}
	}
	p99, samples := pa.WarmQuantile(0.99)
	if samples == 0 || p99 <= 0 {
		t.Fatalf("warm histogram empty after repeats: %v/%d", p99, samples)
	}
	if name, _, ok := pp.Route(0, 0, 1, nil); !ok || name != "sim-edge-cpu" {
		t.Fatalf("route = %q, want the unmeasured device ranked fastest", name)
	}
	// A budget below the measured device's p99 disqualifies it; the
	// unmeasured device still qualifies.
	if name, _, ok := pp.Route(p99/1e6, 0, 1, nil); !ok || name != "sim-edge-cpu" {
		t.Fatalf("tiny-budget route = (%q, %v)", name, ok)
	}
	// With a huge min-sample threshold every estimate reads 0 again.
	if name, _, ok := pp.Route(p99/1e6, 0, 1<<40, nil); !ok || name != "sim-xavier" {
		t.Fatalf("high-threshold route = (%q, %v), want first device", name, ok)
	}

	// Once every device has a real estimate, an impossible budget
	// qualifies none: ok is false and the hint carries the pool's
	// fastest estimate for the client's retry.
	pb, _ := pp.Planner("sim-edge-cpu")
	for i := 0; i < 3; i++ {
		if _, err := pb.Select(req); err != nil {
			t.Fatal(err)
		}
	}
	minP99, _ := pa.WarmQuantile(0.99)
	if b99, _ := pb.WarmQuantile(0.99); b99 < minP99 {
		minP99 = b99
	}
	name, hint, ok := pp.Route(minP99/1e6, 0, 1, nil)
	if ok {
		t.Fatalf("impossible budget routed to %q", name)
	}
	if hint != minP99 {
		t.Fatalf("retry hint %v, want pool minimum estimate %v", hint, minP99)
	}
}

// TestPoolRouteEligibility pins the health filter: an ineligible
// device is skipped by auto routing even when it would rank fastest,
// and an empty eligible set reports no qualifier with an infinite
// hint.
func TestPoolRouteEligibility(t *testing.T) {
	pp := quickPool(t, 4, device.Xavier(), device.EdgeCPU())

	only := func(want string) func(string) bool {
		return func(name string) bool { return name == want }
	}
	// Cold start normally picks the first registered device; filtering
	// it out must hand the route to the next one.
	if name, _, ok := pp.Route(0, 0, 1, only("sim-edge-cpu")); !ok || name != "sim-edge-cpu" {
		t.Fatalf("filtered route = (%q, %v), want sim-edge-cpu", name, ok)
	}
	// Nothing eligible: no qualifier, +Inf hint.
	name, hint, ok := pp.Route(0, 0, 1, func(string) bool { return false })
	if ok {
		t.Fatalf("empty eligible set routed to %q", name)
	}
	if !math.IsInf(hint, 1) {
		t.Fatalf("empty eligible set hint = %v, want +Inf", hint)
	}
}
