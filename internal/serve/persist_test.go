package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"testing"

	"netcut/internal/device"
	"netcut/internal/persist"
	"netcut/internal/telemetry"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// reseal recomputes a binary snapshot's envelope checksum in place, so
// damage tests can prove the per-section checksums reject a file whose
// envelope looks consistent.
func reseal(raw []byte) {
	h := fnv.New64a()
	h.Write(raw[len(persist.Magic)+9:])
	binary.LittleEndian.PutUint64(raw[len(persist.Magic)+1:], h.Sum64())
}

// warmRequests is the request mix the persistence tests warm planners
// with: a zoo network plus user graphs, mixed estimators.
func warmRequests(t *testing.T) []Request {
	t.Helper()
	zg, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	return []Request{
		{Graph: zg, DeadlineMs: 0.9, Estimator: "profiler"},
		{Graph: userNet(0), DeadlineMs: 0.35, Estimator: "profiler"},
		{Graph: userNet(1), DeadlineMs: 0.35, Estimator: "linear"},
	}
}

func mustSelectAll(t *testing.T, p *Planner, reqs []Request) [][10]interface{} {
	t.Helper()
	out := make([][10]interface{}, len(reqs))
	for i, r := range reqs {
		resp, err := p.Select(r)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out[i] = responseKey(resp)
	}
	return out
}

// TestPlannerRestoreMatchesRecompute pins the restore-equals-recompute
// contract across GOMAXPROCS: a planner restored from a snapshot
// returns byte-identical responses to the freshly-warmed planner that
// wrote it, and its first post-restore request executes on the warm
// path (the measurement is resident, not re-measured).
func TestPlannerRestoreMatchesRecompute(t *testing.T) {
	reqs := warmRequests(t)

	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	warm, err := New(Config{Seed: 5, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	want := mustSelectAll(t, warm, reqs)
	var snap bytes.Buffer
	if err := warm.SaveState(&snap); err != nil {
		t.Fatal(err)
	}

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			// A fresh process: empty per-planner caches, purged cut cache.
			trim.PurgeCutCache()
			restored, err := New(Config{Seed: 5, Protocol: quickProto})
			if err != nil {
				t.Fatal(err)
			}
			reg := telemetry.NewRegistry()
			restored.Instrument(reg)
			if err := restored.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			got := mustSelectAll(t, restored, reqs)
			for i := range reqs {
				if got[i] != want[i] {
					t.Fatalf("request %d: restored response %v differs from recompute %v", i, got[i], want[i])
				}
			}
			// Every request hit the warm path: the restored measurement
			// cache classified all of them as resident.
			if _, samples := restored.WarmQuantile(0.99); samples != uint64(len(reqs)) {
				t.Fatalf("warm executions = %d, want %d (restored planner must not run cold)", samples, len(reqs))
			}
		})
	}
}

// TestPlannerSnapshotRoundTripBytes pins snapshot determinism: saving a
// restored planner reproduces the original snapshot byte for byte
// (contents, order and encoding are all pure functions of cache state),
// at every parallelism width — the concurrent section decode and
// fanned-out cut replay must not perturb any persisted ordering.
func TestPlannerSnapshotRoundTripBytes(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	warm, err := New(Config{Seed: 3, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	mustSelectAll(t, warm, warmRequests(t))
	var first bytes.Buffer
	if err := warm.SaveState(&first); err != nil {
		t.Fatal(err)
	}

	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			trim.PurgeCutCache()
			restored, err := New(Config{Seed: 3, Protocol: quickProto})
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.LoadState(bytes.NewReader(first.Bytes())); err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if err := restored.SaveState(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("snapshot changed across save/load/save: %d -> %d bytes",
					first.Len(), second.Len())
			}
		})
	}
}

// TestPlannerLoadStateRejectsMismatch pins the never-silently-trusted
// rule: snapshots from another seed or another device calibration are
// structured ErrStateMismatch rejections, damaged files surface the
// persist sentinels, and after any rejection the planner still serves
// correctly from a cold cache.
func TestPlannerLoadStateRejectsMismatch(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	warm, err := New(Config{Seed: 1, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	reqs := warmRequests(t)
	want := mustSelectAll(t, warm, reqs)
	var snap bytes.Buffer
	if err := warm.SaveState(&snap); err != nil {
		t.Fatal(err)
	}

	otherSeed, err := New(Config{Seed: 2, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	if err := otherSeed.LoadState(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("cross-seed load: err = %v, want ErrStateMismatch", err)
	}

	edge, err := device.ProfileByName("sim-edge-cpu")
	if err != nil {
		t.Fatal(err)
	}
	otherDev, err := New(Config{Seed: 1, Protocol: quickProto, Device: &edge})
	if err != nil {
		t.Fatal(err)
	}
	if err := otherDev.LoadState(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("cross-device load: err = %v, want ErrStateMismatch", err)
	}

	// Same device name, different calibration: still rejected — identity
	// is the fingerprint, not the label.
	tweaked := device.Xavier()
	tweaked.MemBandwidth *= 2
	crossCal, err := New(Config{Seed: 1, Protocol: quickProto, Device: &tweaked})
	if err != nil {
		t.Fatal(err)
	}
	if err := crossCal.LoadState(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("cross-calibration load: err = %v, want ErrStateMismatch", err)
	}

	// Damaged files: the persist sentinels pass through.
	fresh, err := New(Config{Seed: 1, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(bytes.NewReader(snap.Bytes()[:5])); !errors.Is(err, persist.ErrNotSnapshot) {
		t.Fatalf("header-truncated load: err = %v, want ErrNotSnapshot", err)
	}
	if err := fresh.LoadState(bytes.NewReader(snap.Bytes()[:snap.Len()/2])); !errors.Is(err, persist.ErrChecksumMismatch) {
		t.Fatalf("truncated load: err = %v, want ErrChecksumMismatch", err)
	}
	// Flip one byte inside a section frame and re-seal the envelope
	// checksum: the per-section checksum still rejects the file.
	corrupt := bytes.Clone(snap.Bytes())
	corrupt[len(corrupt)-20] ^= 0x01
	reseal(corrupt)
	if err := fresh.LoadState(bytes.NewReader(corrupt)); !errors.Is(err, persist.ErrChecksumMismatch) {
		t.Fatalf("corrupt load: err = %v, want ErrChecksumMismatch", err)
	}

	// Fallback: every rejection above left its planner fully functional
	// on the cold path, and results are unaffected.
	trim.PurgeCutCache()
	got := mustSelectAll(t, fresh, reqs)
	for i := range reqs {
		if got[i] != want[i] {
			t.Fatalf("request %d after rejected loads: %v != %v", i, got[i], want[i])
		}
	}
}

// TestLoadStateIsAllOrNothing pins the no-partial-apply contract: a
// snapshot with a valid envelope whose payload smuggles a non-physical
// value (checksum recomputed, the hand-edited-file threat model) is
// rejected with every cache left empty — nothing from the undamaged
// sections may have been applied.
func TestLoadStateIsAllOrNothing(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	warm, err := New(Config{Seed: 4, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	zg, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Select(Request{Graph: zg, DeadlineMs: 0.9}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := warm.SaveState(&snap); err != nil {
		t.Fatal(err)
	}

	// Decode, poison the LAST table entry (plans and measurements stay
	// valid), re-encode with a fresh checksum.
	f, err := persist.Decode(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tables := f.Planners[0].Tables
	if len(tables) == 0 || len(tables[len(tables)-1].Layers) == 0 {
		t.Fatal("snapshot holds no table rows to poison")
	}
	tables[len(tables)-1].Layers[0].MeanMs = -1
	var poisoned bytes.Buffer
	if err := persist.Encode(&poisoned, f); err != nil {
		t.Fatal(err)
	}

	trim.PurgeCutCache()
	fresh, err := New(Config{Seed: 4, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadState(bytes.NewReader(poisoned.Bytes())); err == nil {
		t.Fatal("poisoned snapshot accepted")
	}
	st := fresh.Stats()
	if st.Plans.Len != 0 || st.Measurements.Len != 0 || st.Tables.Len != 0 || st.Cuts.Len != 0 {
		t.Fatalf("rejected snapshot left state behind: %+v", st)
	}
	if fresh.prof.HasMeasurement(zg) {
		t.Fatal("rejected snapshot partially applied a measurement")
	}
}

// TestPoolStateRoundTrip pins pool-level persistence: a restored pool
// answers byte-identically to the pool that wrote the snapshot on every
// device, a subset pool restores just its own sections, and a snapshot
// with no matching section is rejected.
func TestPoolStateRoundTrip(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	devs := device.Profiles()[:3]
	mk := func(ds []device.Config) *PlannerPool {
		pool, err := NewPool(PoolConfig{Base: Config{Seed: 11, Protocol: quickProto}, Devices: ds})
		if err != nil {
			t.Fatal(err)
		}
		return pool
	}
	warm := mk(devs)
	zg, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: zg, DeadlineMs: 0.9}
	want := make(map[string][10]interface{})
	for _, name := range warm.DeviceNames() {
		resp, err := warm.Select(name, req)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = responseKey(resp)
	}
	var snap bytes.Buffer
	if err := warm.SaveState(&snap); err != nil {
		t.Fatal(err)
	}

	trim.PurgeCutCache()
	restored := mk(devs)
	if err := restored.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, name := range restored.DeviceNames() {
		resp, err := restored.Select(name, req)
		if err != nil {
			t.Fatal(err)
		}
		if responseKey(resp) != want[name] {
			t.Fatalf("%s: restored pool response diverged", name)
		}
		p, err := restored.Planner(name)
		if err != nil {
			t.Fatal(err)
		}
		if !p.prof.HasMeasurement(zg) {
			t.Fatalf("%s: measurement not restored", name)
		}
	}

	// A subset pool restores only its own devices' sections.
	trim.PurgeCutCache()
	subset := mk(devs[:1])
	if err := subset.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("subset load: %v", err)
	}
	resp, err := subset.Select(devs[0].Name, req)
	if err != nil {
		t.Fatal(err)
	}
	if responseKey(resp) != want[devs[0].Name] {
		t.Fatal("subset pool response diverged")
	}

	// No overlap at all is a rejection, not a silent no-op.
	foreign := mk([]device.Config{device.Profiles()[3]})
	if err := foreign.LoadState(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("foreign pool load: err = %v, want ErrStateMismatch", err)
	}
}

// TestPoolSectionShard pins the section-level API: SaveStateFor writes
// just one device's shard, a single-device pool restores from it
// byte-identically to a whole-file restore, and the shard's sections
// route through LoadSections without the envelope. Naming an unserved
// device is an error.
func TestPoolSectionShard(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	devs := device.Profiles()[:2]
	mk := func(ds []device.Config) *PlannerPool {
		pool, err := NewPool(PoolConfig{Base: Config{Seed: 13, Protocol: quickProto}, Devices: ds})
		if err != nil {
			t.Fatal(err)
		}
		return pool
	}
	warm := mk(devs)
	zg, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: zg, DeadlineMs: 0.9}
	want := make(map[string][10]interface{})
	for _, name := range warm.DeviceNames() {
		resp, err := warm.Select(name, req)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = responseKey(resp)
	}

	// One device's shard: its planner sections plus its scoped cuts.
	var shard bytes.Buffer
	if err := warm.SaveStateFor(&shard, devs[0].Name); err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := warm.SaveState(&whole); err != nil {
		t.Fatal(err)
	}
	if shard.Len() >= whole.Len() {
		t.Fatalf("one-device shard (%d bytes) not smaller than the whole pool snapshot (%d bytes)",
			shard.Len(), whole.Len())
	}
	secs, err := warm.StateSections(devs[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[persist.SectionKind]int)
	for _, s := range secs {
		kinds[s.ID.Kind]++
		if s.ID.Device != "" && s.ID.Device != devs[0].Name {
			t.Fatalf("shard leaked a %s section for %q", s.ID.Kind, s.ID.Device)
		}
	}
	if kinds[persist.SectionPlans] != 1 || kinds[persist.SectionMeta] != 1 {
		t.Fatalf("shard section census: %v", kinds)
	}

	// The shard restores a single-device replica to byte-identical
	// service, through both the envelope and the raw-sections entry.
	for name, load := range map[string]func(*PlannerPool) error{
		"envelope": func(p *PlannerPool) error { return p.LoadState(bytes.NewReader(shard.Bytes())) },
		"sections": func(p *PlannerPool) error { return p.LoadSections(secs) },
	} {
		t.Run(name, func(t *testing.T) {
			trim.PurgeCutCache()
			replica := mk(devs[:1])
			if err := load(replica); err != nil {
				t.Fatal(err)
			}
			resp, err := replica.Select(devs[0].Name, req)
			if err != nil {
				t.Fatal(err)
			}
			if responseKey(resp) != want[devs[0].Name] {
				t.Fatal("replica restored from shard diverged")
			}
		})
	}

	if _, err := warm.StateSections("no-such-device"); err == nil {
		t.Fatal("unserved device name accepted")
	}
	if err := warm.SaveStateFor(io.Discard, "no-such-device"); err == nil {
		t.Fatal("SaveStateFor accepted an unserved device name")
	}
}
