package serve

import (
	"fmt"
	"sync"
	"testing"

	"netcut/internal/exp"
	"netcut/internal/graph"
	"netcut/internal/profiler"
	"netcut/internal/zoo"
)

// quickProto keeps concurrency tests fast; determinism holds at any
// protocol because noise streams are seeded per network.
var quickProto = profiler.Protocol{WarmupRuns: 10, TimedRuns: 40}

// userNet builds a structurally distinct blocked network per index,
// standing in for the service's stream of arbitrary user graphs.
func userNet(i int) *graph.Graph {
	b := graph.NewBuilder(fmt.Sprintf("user-net-%d", i), graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8+i%4, 2, graph.Same)
	for blk := 0; blk < 3+i%3; blk++ {
		b.BeginBlock(fmt.Sprintf("b%d", blk))
		y := b.ConvBNReLU(x, 3, 8+i%4, 1, graph.Same)
		x = b.Add(y, x)
		x = b.ReLU(x)
		b.EndBlock()
	}
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	return b.MustFinish()
}

// responseKey flattens a Response into one comparable value covering
// every field of the byte-identity contract.
func responseKey(r *Response) [10]interface{} {
	return [10]interface{}{
		r.Feasible, r.Network, r.Parent, r.BlocksRemoved, r.LayersRemoved,
		r.EstimatedMs, r.MeasuredMs, r.Accuracy, r.TrainHours, r.Iterations,
	}
}

// TestPlannerMatchesSingleLabSelect pins the acceptance criterion:
// for every paper network, the shared-cache Planner's proposal is
// byte-identical to the proposal a fresh single-use Lab produces for
// the same seed, deadline and estimator.
func TestPlannerMatchesSingleLabSelect(t *testing.T) {
	const seed = 42
	lab, err := exp.NewLab(exp.Config{Seed: seed, DeadlineMs: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.Explore(lab.ProfilerEstimator())
	if err != nil {
		t.Fatal(err)
	}
	labByParent := map[string][10]interface{}{}
	for i := range res.Proposals {
		pr := &res.Proposals[i]
		labByParent[pr.TRN.Parent.Name] = [10]interface{}{
			true, pr.TRN.Name(), pr.TRN.Parent.Name, pr.Cutpoint, pr.TRN.LayersRemoved,
			pr.EstimateMs, lab.Device().LatencyMs(pr.TRN.Graph), pr.Accuracy, pr.TrainHours, pr.Iterations,
		}
	}

	p, err := New(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range zoo.Paper7() {
		resp, err := p.Select(Request{Graph: g, DeadlineMs: 0.9})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		want, feasible := labByParent[g.Name]
		if !feasible {
			if resp.Feasible {
				t.Fatalf("%s: planner feasible but Lab infeasible", g.Name)
			}
			continue
		}
		if responseKey(resp) != want {
			t.Fatalf("%s: planner response %v differs from Lab proposal %v", g.Name, responseKey(resp), want)
		}
	}
}

// TestPlannerConcurrentStream hammers one Planner from many goroutines
// with a mix of distinct and repeated graphs and checks every response
// equals a serial replay on a fresh Planner — concurrency and cache
// sharing change wall-clock only.
func TestPlannerConcurrentStream(t *testing.T) {
	const (
		workers  = 8
		distinct = 6
		rounds   = 4
	)
	mk := func() *Planner {
		p, err := New(Config{Seed: 7, Protocol: quickProto})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Serial reference on a fresh planner.
	ref := mk()
	want := make([][10]interface{}, distinct)
	for i := 0; i < distinct; i++ {
		r, err := ref.Select(Request{Graph: userNet(i), DeadlineMs: 0.35})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = responseKey(r)
	}

	p := mk()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := 0; i < distinct; i++ {
					g := userNet((i + w) % distinct)
					r, err := p.Select(Request{Graph: g, DeadlineMs: 0.35})
					if err != nil {
						errs <- fmt.Errorf("worker %d: %v", w, err)
						return
					}
					if responseKey(r) != want[(i+w)%distinct] {
						errs <- fmt.Errorf("worker %d round %d: response for %s diverged from serial replay", w, round, g.Name)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Requests != workers*rounds*distinct {
		t.Fatalf("request counter %d; want %d", s.Requests, workers*rounds*distinct)
	}
}

// TestPlannerBoundedCachesUnderStream pins the constant-memory claim:
// with tiny caps, a long stream of distinct architectures never grows
// any cache past its bound, and evicted architectures re-plan to
// byte-identical responses.
func TestPlannerBoundedCachesUnderStream(t *testing.T) {
	p, err := New(Config{
		Seed:                3,
		Protocol:            quickProto,
		PlanCacheCap:        4,
		MeasurementCacheCap: 4,
		TableCacheCap:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Select(Request{Graph: userNet(0), DeadlineMs: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	const stream = 24
	for i := 1; i < stream; i++ {
		if _, err := p.Select(Request{Graph: userNet(i % 12), DeadlineMs: 0.35}); err != nil {
			t.Fatal(err)
		}
		s := p.Stats()
		if s.Plans.Len > 4 || s.Measurements.Len > 4 || s.Tables.Len > 4 {
			t.Fatalf("cache bound exceeded after request %d: %+v", i, s)
		}
	}
	s := p.Stats()
	if s.Plans.Evictions == 0 || s.Measurements.Evictions == 0 {
		t.Fatalf("expected evictions under a 12-architecture stream with cap 4: %+v", s)
	}
	again, err := p.Select(Request{Graph: userNet(0), DeadlineMs: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if responseKey(again) != responseKey(first) {
		t.Fatalf("post-eviction response %v differs from pre-eviction %v", responseKey(again), responseKey(first))
	}
}

// TestPlannerUnknownNetworkDeterministic checks that graphs outside the
// calibrated zoo get a deterministic generic transfer profile: two
// independent planners with the same seed produce identical responses.
func TestPlannerUnknownNetworkDeterministic(t *testing.T) {
	run := func() *Response {
		p, err := New(Config{Seed: 11, Protocol: quickProto})
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Select(Request{Graph: userNet(2), DeadlineMs: 0.35})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if responseKey(a) != responseKey(b) {
		t.Fatalf("unknown-network planning not reproducible: %v vs %v", responseKey(a), responseKey(b))
	}
	if !a.Feasible {
		t.Fatal("expected a feasible cut for the small user net at 0.35 ms")
	}
	if a.Accuracy <= 0 || a.Accuracy > 1 {
		t.Fatalf("implausible accuracy %v", a.Accuracy)
	}
}

// TestPlannerEstimatorKinds exercises all three estimator kinds on one
// planner, sharing the zoo-trained analytical model across requests.
func TestPlannerEstimatorKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the shared SVR")
	}
	p, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := zoo.ByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"profiler", "analytical", "linear"} {
		r, err := p.Select(Request{Graph: g, DeadlineMs: 0.9, Estimator: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !r.Feasible {
			t.Fatalf("%s: ResNet-50 infeasible at 0.9 ms", kind)
		}
		if r.Parent != "ResNet-50" {
			t.Fatalf("%s: parent %q", kind, r.Parent)
		}
	}
	// The shared analytical model must also serve a non-zoo parent via
	// the copy-on-write latency overlay.
	r, err := p.Select(Request{Graph: userNet(0), DeadlineMs: 0.35, Estimator: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Parent != "user-net-0" {
		t.Fatalf("parent %q", r.Parent)
	}
}

// TestPlannerRejectsInvalid checks the service survives malformed
// input: nil graphs, structurally invalid graphs, negative deadlines.
func TestPlannerRejectsInvalid(t *testing.T) {
	p, err := New(Config{Seed: 1, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Select(Request{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := &graph.Graph{Name: "bad", Nodes: []*graph.Node{{ID: 0, Kind: graph.OpConv}}}
	if _, err := p.Select(Request{Graph: bad}); err == nil {
		t.Fatal("invalid graph accepted")
	}
	if _, err := p.Select(Request{Graph: userNet(0), DeadlineMs: -1}); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if _, err := p.Select(Request{Graph: userNet(0), Estimator: "oracle"}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

// TestPlannerRejectsNameCollisions pins the one-structure-per-name
// admission rule: measurement seeds and transfer profiles key on the
// network name, so a different structure under an admitted name must
// be rejected, not silently served with the first structure's curves.
func TestPlannerRejectsNameCollisions(t *testing.T) {
	p, err := New(Config{Seed: 1, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Select(Request{Graph: userNet(0), DeadlineMs: 0.35}); err != nil {
		t.Fatal(err)
	}
	// Same name, different structure.
	imposter := userNet(1)
	imposter.Name = "user-net-0"
	if _, err := p.Select(Request{Graph: imposter, DeadlineMs: 0.35}); err == nil {
		t.Fatal("structurally different graph admitted under an existing name")
	}
	// Zoo names are reserved at construction, before any zoo request.
	fake := userNet(2)
	fake.Name = "ResNet-50"
	if _, err := p.Select(Request{Graph: fake, DeadlineMs: 0.35}); err == nil {
		t.Fatal("fake ResNet-50 admitted against the calibrated name")
	}
	// The genuine structures keep working.
	if _, err := p.Select(Request{Graph: userNet(0), DeadlineMs: 0.35}); err != nil {
		t.Fatal(err)
	}
}
