package serve

import (
	"fmt"
	"io"

	"netcut/internal/device"
	"netcut/internal/par"
	"netcut/internal/persist"
	"netcut/internal/profiler"
)

// Warm-state persistence: SaveState serializes a planner's (or pool's)
// cache layers — device kernel plans, profiler measurements and tables,
// and the cut-cache entries scoped to its devices plus the shared
// scope 0 — and LoadState restores them into a fresh process, so a
// daemon restart resumes on the warm path instead of re-measuring its
// whole working set.
//
// The snapshot is section-granular: StateSections exposes the same
// state as independently decodable persist.Section frames, and
// LoadSections restores from any subset of them, so a future replica
// can request (and a pool can serve — SaveStateFor) exactly the
// device shard it owns instead of the whole file. SaveState/LoadState
// remain the whole-file convenience wrappers; LoadState decodes
// sections concurrently and prepares matched planner sections in
// parallel, which changes wall-clock only — results land in
// position-indexed slots and are applied in registration order.
//
// Trust model: a snapshot is only ever applied to a planner whose
// identity matches the one that wrote it — same device name, same
// calibration fingerprint, same seed, same measurement protocol. Any
// mismatch is persist.ErrStateMismatch and the caches stay empty (and
// fully functional: every layer rebuilds on demand). This is what makes
// restore-equals-recompute exact: cached values are pure functions of
// (seed, protocol, calibration, structure), so once those match, a
// restored entry is byte-identical to the one a fresh computation would
// produce — the contract TestPlannerRestoreMatchesRecompute pins.
//
// Not persisted (each regenerates deterministically on demand): the
// name->structure admission bindings (re-admitted per request), the
// transfer simulator's generic profiles (pure functions of name and
// layer count), and the lazily trained analytical/linear estimator
// models (retrained from the zoo samples, which the restored
// measurement caches make cheap).

// ErrStateMismatch re-exports the persist sentinel the gateway and
// daemon branch on.
var ErrStateMismatch = persist.ErrStateMismatch

// state captures one planner's section of a snapshot file.
func (p *Planner) state() persist.PlannerState {
	return persist.PlannerState{
		Device:       p.cfg.Device.Name,
		Calibration:  p.dev.Fingerprint(),
		Seed:         p.cfg.Seed,
		WarmupRuns:   p.cfg.Protocol.WarmupRuns,
		TimedRuns:    p.cfg.Protocol.TimedRuns,
		Plans:        p.dev.SnapshotPlans(),
		Measurements: p.prof.SnapshotMeasurements(),
		Tables:       p.prof.SnapshotTables(),
	}
}

// matches reports whether a snapshot section was written by a planner
// with this planner's identity.
func (p *Planner) matches(s *persist.PlannerState) bool {
	return s.Device == p.cfg.Device.Name &&
		s.Calibration == p.dev.Fingerprint() &&
		s.Seed == p.cfg.Seed &&
		s.WarmupRuns == p.cfg.Protocol.WarmupRuns &&
		s.TimedRuns == p.cfg.Protocol.TimedRuns
}

// preparedState is a section decoded and validated but not yet
// applied. The prepare/apply split is what makes LoadState
// all-or-nothing: every section of a snapshot is prepared (each entry
// built and validated exactly once) before any section is applied, so
// a rejected snapshot — even one whose damage sits in its last
// section — leaves every cache untouched and the planner fully
// functional on the cold path.
type preparedState struct {
	plans        device.PreparedPlans
	measurements profiler.PreparedMeasurements
	tables       profiler.PreparedTables
}

func prepareState(s *persist.PlannerState) (ps preparedState, err error) {
	if ps.plans, err = device.PreparePlans(s.Plans); err != nil {
		return ps, err
	}
	if ps.measurements, err = profiler.PrepareMeasurements(s.Measurements); err != nil {
		return ps, err
	}
	ps.tables, err = profiler.PrepareTables(s.Tables)
	return ps, err
}

// applyPrepared restores a prepared section; it cannot fail.
func (p *Planner) applyPrepared(ps preparedState) {
	p.dev.RestorePlans(ps.plans)
	p.prof.RestoreMeasurements(ps.measurements)
	p.prof.RestoreTables(ps.tables)
}

// scopeFor builds the cut-cache scope filter for a set of calibration
// fingerprints: the devices' own scopes plus the shared scope 0 (the
// retraining simulator's device-independent boundary cuts).
func scopeFor(prints ...uint64) func(uint64) bool {
	set := map[uint64]bool{0: true}
	for _, pr := range prints {
		set[pr] = true
	}
	return func(scope uint64) bool { return set[scope] }
}

// StateSections captures the planner's warm state as section frames —
// the shard a replica serving only this device would request.
func (p *Planner) StateSections() []persist.Section {
	f := &persist.File{
		Seed:     p.cfg.Seed,
		Planners: []persist.PlannerState{p.state()},
		Cuts:     persist.CaptureCuts(scopeFor(p.dev.Fingerprint())),
	}
	return f.Sections()
}

// SaveState writes the planner's warm state as a versioned snapshot.
// Safe to call while serving: each cache is captured atomically, so a
// concurrent request at worst lands in or misses the snapshot — either
// way every entry written is valid.
func (p *Planner) SaveState(w io.Writer) error {
	return persist.WriteSections(w, p.StateSections())
}

// LoadState restores a snapshot written by SaveState (or by a pool
// containing this planner's device). Decode failures and identity
// mismatches are structured errors — branch with errors.Is on
// persist.ErrVersionMismatch / ErrChecksumMismatch / ErrStateMismatch —
// and leave the planner fully functional on the cold path.
func (p *Planner) LoadState(r io.Reader) error {
	f, err := persist.DecodeParallel(r)
	if err != nil {
		return err
	}
	return p.loadFile(f)
}

// LoadSections restores already-decoded sections — the entry point a
// replica streaming its shard section-by-section lands on.
func (p *Planner) LoadSections(secs []persist.Section) error {
	f, err := persist.FromSections(secs)
	if err != nil {
		return err
	}
	return p.loadFile(f)
}

func (p *Planner) loadFile(f *persist.File) error {
	for i := range f.Planners {
		if p.matches(&f.Planners[i]) {
			ps, err := prepareState(&f.Planners[i])
			if err != nil {
				return err
			}
			// Cuts replay through the public trim path into the
			// process-wide cache; RestoreCuts validates every kept
			// record before replaying any, and runs first so a bad cut
			// section rejects the snapshot before the planner caches
			// fill.
			if err := persist.RestoreCuts(f.Cuts, scopeFor(p.dev.Fingerprint())); err != nil {
				return err
			}
			p.applyPrepared(ps)
			return nil
		}
	}
	return fmt.Errorf(
		"serve: %w: snapshot holds %s, this planner is %s (calibration %016x, seed %d, protocol %d/%d)",
		ErrStateMismatch, snapshotIdentity(f), p.cfg.Device.Name,
		p.dev.Fingerprint(), p.cfg.Seed, p.cfg.Protocol.WarmupRuns, p.cfg.Protocol.TimedRuns)
}

func snapshotIdentity(f *persist.File) string {
	if len(f.Planners) == 0 {
		return "no planner sections"
	}
	names := make([]string, 0, len(f.Planners))
	for _, s := range f.Planners {
		names = append(names, fmt.Sprintf("%s(seed %d)", s.Device, s.Seed))
	}
	return fmt.Sprint(names)
}

// StateSections captures the warm state of the named devices (all
// registered devices when none are named) as section frames, in
// registration order, with the cut sections scoped to exactly those
// devices — the shard a replica owning that device subset would
// request. Naming a device the pool does not serve is an error.
func (pp *PlannerPool) StateSections(devices ...string) ([]persist.Section, error) {
	names := pp.names
	if len(devices) > 0 {
		names = make([]string, 0, len(devices))
		for _, want := range devices {
			if _, ok := pp.planners[want]; !ok {
				return nil, fmt.Errorf("serve: no planner for device %q, pool serves %v", want, pp.names)
			}
			names = append(names, want)
		}
	}
	f := &persist.File{Seed: pp.Default().cfg.Seed}
	prints := make([]uint64, 0, len(names))
	for _, name := range names {
		p := pp.planners[name]
		f.Planners = append(f.Planners, p.state())
		prints = append(prints, p.dev.Fingerprint())
	}
	f.Cuts = persist.CaptureCuts(scopeFor(prints...))
	return f.Sections(), nil
}

// SaveState writes the pool's warm state — one section group per
// registered device, in registration order, plus every device's scoped
// cuts — as one snapshot.
func (pp *PlannerPool) SaveState(w io.Writer) error {
	return pp.SaveStateFor(w)
}

// SaveStateFor writes the named devices' shard of the pool's warm
// state (all devices when none are named) as one snapshot.
func (pp *PlannerPool) SaveStateFor(w io.Writer, devices ...string) error {
	secs, err := pp.StateSections(devices...)
	if err != nil {
		return err
	}
	return persist.WriteSections(w, secs)
}

// LoadState restores a pool snapshot: every registered device restores
// its matching section. A snapshot containing none of the pool's
// devices is ErrStateMismatch; sections for devices this pool does not
// serve are skipped (their cache entries would be unreachable here),
// and registered devices absent from the snapshot simply start cold.
// Every matched section — and every kept cut — is validated before any
// is applied, so a rejected snapshot leaves every cache untouched.
func (pp *PlannerPool) LoadState(r io.Reader) error {
	f, err := persist.DecodeParallel(r)
	if err != nil {
		return err
	}
	return pp.loadFile(f)
}

// LoadSections restores a pool shard from already-decoded sections.
func (pp *PlannerPool) LoadSections(secs []persist.Section) error {
	f, err := persist.FromSections(secs)
	if err != nil {
		return err
	}
	return pp.loadFile(f)
}

func (pp *PlannerPool) loadFile(f *persist.File) error {
	type match struct {
		planner *Planner
		state   *persist.PlannerState
	}
	var matches []match
	prints := make([]uint64, 0, len(pp.names))
	for _, name := range pp.names {
		p := pp.planners[name]
		prints = append(prints, p.dev.Fingerprint())
		for i := range f.Planners {
			if p.matches(&f.Planners[i]) {
				matches = append(matches, match{p, &f.Planners[i]})
				break
			}
		}
	}
	if len(matches) == 0 {
		return fmt.Errorf("serve: %w: snapshot holds %s, pool serves %v",
			ErrStateMismatch, snapshotIdentity(f), pp.names)
	}
	// Prepare every matched section concurrently into its slot —
	// preparation is pure validation + entry building, so parallelism
	// changes wall-clock only and the lowest-index section's error is
	// what a serial walk would have reported.
	preps := make([]preparedState, len(matches))
	if err := par.ForEach(len(matches), func(i int) error {
		ps, err := prepareState(matches[i].state)
		if err != nil {
			return err
		}
		preps[i] = ps
		return nil
	}); err != nil {
		return err
	}
	if err := persist.RestoreCuts(f.Cuts, scopeFor(prints...)); err != nil {
		return err
	}
	for i, m := range matches {
		m.planner.applyPrepared(preps[i])
	}
	return nil
}
