// Package serve implements the long-lived, concurrency-safe planning
// service on top of the NetCut substrates: one Planner accepts
// Select-style requests (graph + deadline + estimator kind) from many
// goroutines, shares a single simulated device, profiler and retraining
// simulator across all of them, and keeps every structure-keyed cache
// bounded, so a stream of arbitrary user graphs plans in constant
// memory.
//
// This is the "production" counterpart of the figure-reproduction Lab
// (internal/exp): where a Lab owns the paper's fixed 7-network zoo and
// builds each artefact once, a Planner amortizes profiling across an
// open-ended request stream. Measurement results are pure functions of
// (seed, device config, graph structure), so cross-request sharing is
// exact: a Planner's proposal for a paper network is byte-identical to
// the one a fresh single-use Lab would produce for the same seed, and
// repeated requests for the same architecture are cache hits end to
// end.
//
// Determinism contract: the Planner inherits the repository-wide rule
// that concurrency changes wall-clock time only. Every noise stream
// derives from Config.Seed plus the network's own name, generic
// transfer profiles derive from (name, layer count) alone, and caches
// are transparent (eviction forces an identical recompute), so N
// goroutines issuing any interleaving of requests receive byte-identical
// responses to a serial replay — the property the root package's
// planner stress tests pin.
//
// Because names seed those streams, admission enforces one structure
// per name for the life of the service (zoo names are reserved for the
// calibrated networks): a graph reusing an admitted name with a
// different structure is rejected with an error instead of being
// silently served with the earlier structure's curves.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netcut/internal/core"
	"netcut/internal/device"
	"netcut/internal/estimate"
	"netcut/internal/faultinject"
	"netcut/internal/graph"
	"netcut/internal/lru"
	"netcut/internal/par"
	"netcut/internal/profiler"
	"netcut/internal/telemetry"
	"netcut/internal/transfer"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// Config parameterizes a Planner. The zero value serves with the
// calibrated Xavier device, the paper's measurement protocol and head,
// seed 0, and the package-default cache caps.
type Config struct {
	// Seed fixes every measurement and retraining noise stream; 0 is a
	// valid seed.
	Seed int64
	// Device overrides the simulated device; nil uses device.Xavier.
	Device *device.Config
	// Protocol overrides the measurement protocol; zero uses the
	// paper's 200/800.
	Protocol profiler.Protocol
	// Head overrides the replacement head; zero uses trim.DefaultHead.
	Head trim.HeadSpec
	// TrainFraction is the analytical estimator's train split; 0 = 20%.
	TrainFraction float64

	// Cache caps; 0 keeps each layer's current setting, negative means
	// unbounded. PlanCacheCap bounds the device's fingerprint-keyed
	// kernel plans and MeasurementCacheCap / TableCacheCap the profiler
	// memos — all three are per-Planner.
	PlanCacheCap        int
	MeasurementCacheCap int
	TableCacheCap       int
	// CutCacheCap re-bounds the TRN cut cache, which is process-wide
	// state shared by every Planner and direct trim.Cut caller: setting
	// it here is a convenience for single-tenant processes and affects
	// all of them (multi-tenant processes should call
	// trim.SetCutCacheCap once at startup instead). 0 leaves the
	// current cap — which may not be the package default if another
	// Planner already changed it — untouched.
	CutCacheCap int
}

func (c *Config) fill() {
	if c.Device == nil {
		cfg := device.Xavier()
		c.Device = &cfg
	}
	if c.Protocol == (profiler.Protocol{}) {
		c.Protocol = profiler.PaperProtocol()
	}
	if c.Head == (trim.HeadSpec{}) {
		c.Head = trim.DefaultHead
	}
	if c.TrainFraction == 0 {
		c.TrainFraction = 0.2
	}
}

// cap maps the Config cap convention (0 = default, negative =
// unbounded) onto the lru convention (<= 0 = unbounded).
func capOrDefault(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	default:
		return v
	}
}

// ErrNameBound is the admission rejection for a graph reusing an
// already-admitted name with a different structure; callers branch on
// it with errors.Is (the gateway maps it to 409).
var ErrNameBound = errors.New("name is already bound to a different structure")

// Request asks the Planner for the deepest-accuracy cut of one graph
// that meets a deadline.
type Request struct {
	// Graph is the user network. It must pass graph.Validate and must
	// not be mutated after submission (the caches key on structure).
	Graph *graph.Graph
	// DeadlineMs is the application deadline; 0 means the prosthetic
	// hand's 0.9 ms.
	DeadlineMs float64
	// Estimator selects the latency estimator: "profiler" (default,
	// Eq. 1 over the graph's own per-layer table), "analytical"
	// (shared epsilon-SVR trained once on the paper zoo), or "linear".
	Estimator string
	// Trace, when non-nil, receives the planner's internal phase
	// boundaries for this request — "measure" (profile registration +
	// device measurement + off-the-shelf accuracy), "estimate"
	// (estimator resolution, including any zoo-table build), "explore"
	// (Algorithm 1) — with absolute start/end timestamps. Observability
	// only: the callback sees timings, never influences the response,
	// and a request with the callback plans identically to one without.
	// It is invoked from whichever goroutine runs this request's
	// exploration, so it must be safe for that (the gateway records
	// into per-call storage read only after delivery).
	Trace func(phase string, start, end time.Time)
}

// Response is the planning outcome for one request.
type Response struct {
	// Device names the calibrated target this response was planned
	// for: estimates, measurements and the accepted cut are all
	// functions of it.
	Device string
	// Feasible reports whether any cut of the graph meets the deadline;
	// when false the remaining fields are zero.
	Feasible bool
	// Network is the paper-style TRN label, e.g. "ResNet-50/104".
	Network string
	// Parent is the requested network's name.
	Parent string
	// BlocksRemoved / LayersRemoved describe the accepted cut.
	BlocksRemoved int
	LayersRemoved int
	// EstimatedMs is the estimator's latency for the accepted TRN;
	// MeasuredMs is the simulated ground truth.
	EstimatedMs float64
	MeasuredMs  float64
	// Accuracy is the retrained accuracy; TrainHours its simulated cost.
	Accuracy   float64
	TrainHours float64
	// Iterations counts the cutpoints Algorithm 1 examined.
	Iterations int
	// TRN is the accepted trimmed network (nil when infeasible).
	TRN *trim.TRN
}

// lazy is a singleflight cell (see exp.Lab): first caller builds, every
// concurrent caller blocks on that build, result is immutable after.
type lazy[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (c *lazy[T]) get(build func() (T, error)) (T, error) {
	c.once.Do(func() { c.val, c.err = build() })
	return c.val, c.err
}

// Planner is the long-lived planning service. One Planner is safe for
// arbitrarily many concurrent Select calls; all requests share the
// device's kernel-plan cache, the profiler's measurement and table
// memos, the process-wide cut cache, and the lazily trained analytical
// and linear estimators.
type Planner struct {
	cfg  Config
	dev  *device.Device
	prof *profiler.Profiler
	sim  *transfer.Simulator
	rt   core.Retrainer

	// zooSamples is the 148-TRN measured regression set the shared
	// analytical/linear estimators train on, built at most once.
	zooSamples lazy[[]estimate.Sample]
	analytical lazy[*estimate.AnalyticalEstimator]
	linear     lazy[*estimate.LinearEstimator]

	// names binds each admitted network name to its structural
	// fingerprint. The measurement seeds, transfer profiles and
	// boundary memos all key on the name, so one name must mean one
	// structure for the life of the service; a graph reusing an
	// admitted name with a different structure is rejected rather than
	// silently served with the earlier structure's retraining curve.
	// Zoo names are bound to the calibrated networks at construction.
	names sync.Map // name -> graph fingerprint (uint64)

	requests atomic.Uint64

	// tel is the optional telemetry surface, set by Instrument. It is
	// observability only: recording never influences a response, so the
	// determinism contract is untouched.
	tel atomic.Pointer[plannerTel]
}

// plannerTel bundles the planner's own series: how many requests ran a
// real planning execution (the gateway's coalescing divides its request
// count by this), and the cold/warm split of execution latency (the
// gateway's load shedding reads the warm p99).
type plannerTel struct {
	executions *telemetry.Counter
	coldMs     *telemetry.Histogram
	warmMs     *telemetry.Histogram
}

// New builds a Planner and applies the configured cache bounds. An
// invalid device profile is a structured constructor error — the
// service boundary never panics on configuration input.
func New(cfg Config) (*Planner, error) {
	cfg.fill()
	dev, err := device.NewChecked(*cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("serve: device %q: %w", cfg.Device.Name, err)
	}
	dev.SetPlanCacheCap(capOrDefault(cfg.PlanCacheCap, device.DefaultPlanCacheCap))
	prof, err := profiler.New(dev, cfg.Protocol, cfg.Seed)
	if err != nil {
		return nil, err
	}
	prof.SetCacheCaps(
		capOrDefault(cfg.MeasurementCacheCap, profiler.DefaultMeasurementCacheCap),
		capOrDefault(cfg.TableCacheCap, profiler.DefaultTableCacheCap),
	)
	if cfg.CutCacheCap != 0 {
		trim.SetCutCacheCap(capOrDefault(cfg.CutCacheCap, trim.DefaultCutCacheCap))
	}
	sim := transfer.NewSimulator(cfg.Seed)
	p := &Planner{cfg: cfg, dev: dev, prof: prof, sim: sim}
	p.rt = core.RetrainerFunc(func(t *trim.TRN) (core.TrainResult, error) {
		r, err := sim.Retrain(t)
		return core.TrainResult{Accuracy: r.Accuracy, TrainHours: r.TrainHours}, err
	})
	// Reserve the calibrated names: a user graph reusing a zoo name
	// with a different structure must not inherit the zoo's curves.
	for _, g := range zoo.Paper7() {
		p.names.Store(g.Name, graph.Fingerprint(g))
	}
	return p, nil
}

// Seed returns the planner's base seed.
func (p *Planner) Seed() int64 { return p.cfg.Seed }

// DeviceName returns the name of the calibrated target this planner
// plans for.
func (p *Planner) DeviceName() string { return p.cfg.Device.Name }

// DeviceConfig returns the planner's device calibration.
func (p *Planner) DeviceConfig() device.Config { return p.dev.Config() }

// Select plans one request: validate the graph, measure it on the
// shared device (a cache hit for any structure seen before), run
// Algorithm 1 with the requested estimator, and return the
// highest-accuracy deadline-feasible cut. Safe for concurrent callers;
// the response is a pure function of (Config, Request).
func (p *Planner) Select(req Request) (*Response, error) {
	p.requests.Add(1)
	return p.selectOne(req)
}

// SelectBatch plans a group of admitted requests in one planner pass:
// the per-request explorations fan out over the shared worker pool and
// all of them hit the same shared caches, so a batch of structurally
// related requests costs little more than its most expensive member.
// Responses and errors are position-indexed per request and each is
// byte-identical to what Select would return for that request alone —
// batching, like every other form of concurrency in this codebase,
// changes wall-clock time only.
func (p *Planner) SelectBatch(reqs []Request) ([]*Response, []error) {
	p.requests.Add(uint64(len(reqs)))
	resps := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	par.ForEach(len(reqs), func(i int) error {
		resps[i], errs[i] = p.selectOne(reqs[i])
		return nil
	})
	return resps, errs
}

// selectOne is the shared execution path of Select and SelectBatch.
func (p *Planner) selectOne(req Request) (*Response, error) {
	g := req.Graph
	if g == nil {
		return nil, fmt.Errorf("serve: nil graph")
	}
	if err := graph.Validate(g); err != nil {
		return nil, fmt.Errorf("serve: rejecting graph: %w", err)
	}
	// Admission: one name, one structure (see the names field). The
	// fingerprint-equal path is the common repeated-request case.
	print := graph.Fingerprint(g)
	if prev, loaded := p.names.LoadOrStore(g.Name, print); loaded && prev.(uint64) != print {
		return nil, fmt.Errorf("serve: rejecting graph %q: %w", g.Name, ErrNameBound)
	}
	deadline := req.DeadlineMs
	if deadline == 0 {
		deadline = 0.9
	}
	if deadline < 0 {
		return nil, fmt.Errorf("serve: negative deadline %v", deadline)
	}
	// Telemetry wraps the execution from here down: validation failures
	// above never count as executions, which is what lets the gateway's
	// shed and coalesce tests assert "no planner work" via the counter.
	tel := p.tel.Load()
	var warm bool
	var start time.Time
	if tel != nil {
		tel.executions.Inc()
		warm = p.prof.HasMeasurement(g)
		start = time.Now()
	}
	record := func() {
		if tel == nil {
			return
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if warm {
			tel.warmMs.Observe(ms)
		} else {
			tel.coldMs.Observe(ms)
		}
	}

	// Fault site (no-op unless a test armed it): a stuck execution,
	// placed after the execution counter so a watchdog-abandoned plan
	// is still visible as planner work that started.
	faultinject.Delay(faultinject.ExecDelay, g.Name)

	// Phase boundaries for the optional per-request trace callback: one
	// clock read per boundary, none at all when no trace is attached.
	var phaseStart time.Time
	phase := func(name string) {
		if req.Trace == nil {
			return
		}
		now := time.Now()
		if name != "" {
			req.Trace(name, phaseStart, now)
		}
		phaseStart = now
	}
	phase("")

	if err := p.ensureProfile(g); err != nil {
		return nil, err
	}

	meas := p.prof.Measure(g)
	acc, err := p.sim.OffTheShelfAccuracy(g.Name)
	if err != nil {
		return nil, err
	}
	phase("measure")
	// CacheScope keys every cut this exploration creates by the device
	// calibration, so no two targets in a pool share cut-cache entries.
	cand := core.Candidate{
		Graph:      g,
		MeasuredMs: meas.MeanMs,
		Accuracy:   acc,
		CacheScope: p.dev.Fingerprint(),
	}

	est, err := p.estimator(req.Estimator, g, meas.MeanMs)
	if err != nil {
		return nil, err
	}
	phase("estimate")

	res, err := core.Explore([]core.Candidate{cand}, deadline, est, p.rt, p.cfg.Head)
	if err != nil {
		return nil, err
	}
	phase("explore")
	if res.Best == nil {
		record()
		return &Response{Device: p.cfg.Device.Name, Parent: g.Name}, nil
	}
	best := res.Best
	record()
	return &Response{
		Device:        p.cfg.Device.Name,
		Feasible:      true,
		Network:       best.TRN.Name(),
		Parent:        g.Name,
		BlocksRemoved: best.Cutpoint,
		LayersRemoved: best.TRN.LayersRemoved,
		EstimatedMs:   best.EstimateMs,
		MeasuredMs:    p.dev.LatencyMs(best.TRN.Graph),
		Accuracy:      best.Accuracy,
		TrainHours:    best.TrainHours,
		Iterations:    best.Iterations,
		TRN:           best.TRN,
	}, nil
}

// ensureProfile registers a deterministic generic transfer profile for
// networks outside the calibrated zoo, so arbitrary user graphs can be
// "retrained". Derived from (name, feature-layer count) alone, the
// profile is the same whichever request registers it first.
func (p *Planner) ensureProfile(g *graph.Graph) error {
	if p.sim.HasProfile(g.Name) {
		return nil
	}
	return p.sim.RegisterProfile(transfer.GenericProfile(g.Name, g.FeatureLayerCount()))
}

// estimator resolves the per-request estimator. The profiler kind
// profiles the request's own graph (one bounded-cached table per
// structure); the analytical and linear kinds share one model trained
// on the paper zoo, overlaid — copy-on-write, never mutating the shared
// model — with the request graph's measured parent latency.
func (p *Planner) estimator(kind string, g *graph.Graph, parentMs float64) (estimate.Estimator, error) {
	switch kind {
	case "", "profiler":
		tbl := p.prof.Profile(g)
		return estimate.NewProfilerEstimator(map[string]*profiler.Table{g.Name: tbl}), nil
	case "analytical":
		base, err := p.analytical.get(p.buildAnalytical)
		if err != nil {
			return nil, err
		}
		return base.WithParentLatency(g.Name, parentMs), nil
	case "linear":
		base, err := p.linear.get(p.buildLinear)
		if err != nil {
			return nil, err
		}
		return base.WithParentLatency(g.Name, parentMs), nil
	default:
		return nil, fmt.Errorf("serve: unknown estimator %q", kind)
	}
}

// buildZooSamples mirrors exp.Lab's sample construction exactly — same
// zoo order, same enumeration, same per-TRN measurement seeds — so the
// shared estimators train to byte-identical models.
func (p *Planner) buildZooSamples() ([]estimate.Sample, error) {
	nets := zoo.Paper7()
	parentMs := make([]float64, len(nets))
	err := par.ForEach(len(nets), func(i int) error {
		parentMs[i] = p.prof.Measure(nets[i]).MeanMs
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []estimate.Sample
	for i, g := range nets {
		trns, err := trim.EnumerateBlockwiseScoped(p.dev.Fingerprint(), g, p.cfg.Head, false)
		if err != nil {
			return nil, err
		}
		for _, tr := range trns {
			out = append(out, estimate.Sample{TRN: tr, ParentLatencyMs: parentMs[i]})
		}
	}
	err = par.ForEach(len(out), func(i int) error {
		out[i].MeasuredMs = p.prof.Measure(out[i].TRN.Graph).MeanMs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Planner) buildAnalytical() (*estimate.AnalyticalEstimator, error) {
	samples, err := p.zooSamples.get(p.buildZooSamples)
	if err != nil {
		return nil, err
	}
	train, _ := estimate.StratifiedSplit(samples, p.cfg.TrainFraction, p.cfg.Seed)
	return estimate.TrainAnalytical(train, estimate.AnalyticalConfig{Seed: p.cfg.Seed})
}

func (p *Planner) buildLinear() (*estimate.LinearEstimator, error) {
	samples, err := p.zooSamples.get(p.buildZooSamples)
	if err != nil {
		return nil, err
	}
	train, _ := estimate.StratifiedSplit(samples, p.cfg.TrainFraction, p.cfg.Seed)
	return estimate.TrainLinear(train)
}

// Stats is a point-in-time snapshot of the planner's shared state.
type Stats struct {
	Requests     uint64
	Plans        lru.Stats // device kernel-plan cache
	Measurements lru.Stats // profiler end-to-end measurements
	Tables       lru.Stats // profiler per-layer tables
	Cuts         lru.Stats // process-wide TRN cut cache
}

// Instrument threads the planner and every cache layer under it into a
// telemetry registry: the device's kernel-plan cache, the profiler's
// measurement and table memos, the process-wide cut cache, plus the
// planner's own request/execution counters and the cold/warm execution
// latency histograms. Every planner-owned series carries a device
// label with the target's calibration name, so a pool of planners
// shares one registry with per-target series (the cut cache is
// process-wide and stays unlabeled). Call it once, before serving;
// recording is observability only and never influences a response.
func (p *Planner) Instrument(reg *telemetry.Registry) {
	labels := []telemetry.Label{{Key: "device", Value: p.cfg.Device.Name}}
	p.dev.Instrument(reg)
	p.prof.Instrument(reg)
	trim.Instrument(reg)
	reg.CounterFuncWith("netcut_planner_requests_total",
		"planning requests accepted by the planner (including invalid ones)",
		labels, p.requests.Load)
	p.tel.Store(&plannerTel{
		executions: reg.CounterWith("netcut_planner_executions_total",
			"planning executions: validated requests that ran the measurement pipeline and Algorithm 1",
			labels),
		coldMs: reg.HistogramWith("netcut_planner_cold_ms",
			"execution latency of requests whose structure was not yet measured", nil, labels),
		warmMs: reg.HistogramWith("netcut_planner_warm_ms",
			"execution latency of requests served from the shared measurement caches", nil, labels),
	})
}

// Executions returns the number of planning executions since Instrument
// was called (0 before): the counter the gateway's coalescing and
// shedding assertions read.
func (p *Planner) Executions() uint64 {
	if tel := p.tel.Load(); tel != nil {
		return tel.executions.Value()
	}
	return 0
}

// WarmQuantile estimates the q-quantile of warm execution latency in
// milliseconds, and reports how many warm executions it is based on.
// The gateway's deadline-aware admission reads the p99. When the rank
// falls past the histogram's last finite bucket the estimate is the
// tracked overflow maximum — conservative (an over-estimate sheds a
// request that might have fit; an under-estimate would queue one into
// certain lateness).
func (p *Planner) WarmQuantile(q float64) (ms float64, samples uint64) {
	tel := p.tel.Load()
	if tel == nil {
		return 0, 0
	}
	return tel.warmMs.Quantile(q), tel.warmMs.Count()
}

// Stats reports request and cache counters, the service's
// observability surface (cmd/netserve prints it).
func (p *Planner) Stats() Stats {
	m, t := p.prof.CacheStats()
	return Stats{
		Requests:     p.requests.Load(),
		Plans:        p.dev.PlanCacheStats(),
		Measurements: m,
		Tables:       t,
		Cuts:         trim.CutCacheStats(),
	}
}
