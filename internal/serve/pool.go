package serve

import (
	"errors"
	"fmt"
	"math"

	"netcut/internal/device"
	"netcut/internal/profiler"
	"netcut/internal/telemetry"
)

// PlannerPool is the multi-target planning service: one Planner per
// registered device calibration, all built from one base Config (same
// seed, protocol, head), behind a single façade. Every planner keeps
// the repository's invariants — responses from the pool are
// byte-identical to a single-device Planner built with the same seed
// and device — while the caches stay device-isolated: plan keys,
// measurement/table memos and cut-cache entries all fold in the
// device-calibration fingerprint, so no two targets share an entry.
//
// Cache bounding is per pool, not per device: the configured (or
// default) caps are a pool-wide budget divided evenly across the
// registered targets, so registering more devices re-slices memory
// instead of multiplying it.
type PlannerPool struct {
	names    []string // registration order: the routing tie-break order
	planners map[string]*Planner
}

// PoolConfig parameterizes a PlannerPool.
type PoolConfig struct {
	// Base is the per-planner template: seed, protocol, head, train
	// fraction, and the pool-wide cache caps (divided across devices).
	// Base.Device is ignored; targets come from Devices.
	Base Config
	// Devices lists the target calibrations, in the order routing
	// tie-breaks on. Empty registers the full device registry
	// (device.Profiles), Xavier first.
	Devices []device.Config
}

// ErrUnknownDevice is the lookup failure for an unregistered target
// name; callers branch on it with errors.Is (the gateway maps it to a
// 400).
var ErrUnknownDevice = errors.New("unknown device")

// splitCap divides a pool-wide cache budget across n planners:
// 0 resolves to the layer default first, negative stays unbounded, and
// every planner gets at least one entry. The result is expressed in
// the Config cap convention (negative = unbounded).
func splitCap(v, def, n int) int {
	total := capOrDefault(v, def)
	if total <= 0 {
		return -1
	}
	per := total / n
	if per < 1 {
		per = 1
	}
	return per
}

// NewPool builds one Planner per device. A device profile that fails
// validation — or a duplicate/empty name — is a structured constructor
// error naming the device, never a panic.
func NewPool(cfg PoolConfig) (*PlannerPool, error) {
	devs := cfg.Devices
	if len(devs) == 0 {
		devs = device.Profiles()
	}
	n := len(devs)
	pool := &PlannerPool{planners: make(map[string]*Planner, n)}
	for i := range devs {
		d := devs[i]
		if d.Name == "" {
			return nil, fmt.Errorf("serve: pool device %d has no name", i)
		}
		if _, dup := pool.planners[d.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate pool device %q", d.Name)
		}
		pc := cfg.Base
		pc.Device = &d
		pc.PlanCacheCap = splitCap(cfg.Base.PlanCacheCap, device.DefaultPlanCacheCap, n)
		pc.MeasurementCacheCap = splitCap(cfg.Base.MeasurementCacheCap, profiler.DefaultMeasurementCacheCap, n)
		pc.TableCacheCap = splitCap(cfg.Base.TableCacheCap, profiler.DefaultTableCacheCap, n)
		// The cut cache is process-wide (entries are device-scoped by
		// key, the total by the one shared cap), so Base.CutCacheCap
		// passes through unchanged: each planner re-applies the same
		// value, which is idempotent.
		p, err := New(pc)
		if err != nil {
			// serve.New already names the failing device; adding a pool
			// prefix here would print it twice.
			return nil, err
		}
		pool.names = append(pool.names, d.Name)
		pool.planners[d.Name] = p
	}
	return pool, nil
}

// DeviceNames lists the registered targets in registration order.
func (pp *PlannerPool) DeviceNames() []string {
	return append([]string(nil), pp.names...)
}

// Devices lists the registered calibrations in registration order.
func (pp *PlannerPool) Devices() []device.Config {
	out := make([]device.Config, len(pp.names))
	for i, name := range pp.names {
		out[i] = pp.planners[name].DeviceConfig()
	}
	return out
}

// Planner returns the planner for a registered target name.
func (pp *PlannerPool) Planner(name string) (*Planner, error) {
	p, ok := pp.planners[name]
	if !ok {
		return nil, fmt.Errorf("serve: %w %q (registered: %v)", ErrUnknownDevice, name, pp.names)
	}
	return p, nil
}

// Default returns the first registered target's planner — the target
// requests without an explicit device route to.
func (pp *PlannerPool) Default() *Planner { return pp.planners[pp.names[0]] }

// Select resolves a target name ("" means the default device) and
// plans the request on that device's planner.
func (pp *PlannerPool) Select(target string, req Request) (*Response, error) {
	if target == "" {
		return pp.Default().Select(req)
	}
	p, err := pp.Planner(target)
	if err != nil {
		return nil, err
	}
	return p.Select(req)
}

// Route picks the serving target for an auto-routed request: the
// fastest device — by estimated warm-path latency, the p99 of its warm
// execution histogram plus the caller's fixed per-request overheadMs
// (the gateway passes its batching window) — whose estimate fits the
// client's budget. Devices whose histogram holds fewer than minSamples
// warm executions estimate as 0 ("unmeasured, assume fast"), mirroring
// the gateway's shed activation rule; they therefore both qualify and
// win the fastest-first ranking until real measurements exist, which
// is what spreads a fresh pool's first traffic instead of shedding it.
// Ties — including the all-unmeasured cold start — break on
// registration order, so routing is deterministic for a fixed
// telemetry state.
//
// eligible filters the candidate set before ranking (nil means every
// registered device): the gateway passes its per-device health check,
// so a tripped target is skipped by auto routing the same way a
// budget-failing one is. Eligibility, like the rest of routing, is
// admission policy — it moves executions, never changes results.
//
// ok reports whether any device qualified; when false, estMs carries
// the eligible set's minimum estimate as the caller's retry hint (+Inf
// when nothing was eligible at all). budgetMs <= 0 means unbudgeted:
// every eligible device qualifies and the fastest wins.
func (pp *PlannerPool) Route(budgetMs, overheadMs float64, minSamples uint64, eligible func(device string) bool) (name string, estMs float64, ok bool) {
	bestEst := math.Inf(1)
	minEst := math.Inf(1)
	for _, n := range pp.names {
		if eligible != nil && !eligible(n) {
			continue
		}
		est, samples := pp.planners[n].WarmQuantile(0.99)
		if samples < minSamples {
			est = 0
		}
		if est > 0 {
			est += overheadMs
		}
		if est < minEst {
			minEst = est
		}
		if budgetMs > 0 && est > 0 && budgetMs < est {
			continue
		}
		if est < bestEst {
			name, bestEst = n, est
		}
	}
	if name == "" {
		return "", minEst, false
	}
	return name, bestEst, true
}

// Fastest is Route without a budget: the fastest eligible device by
// estimated warm-path latency, ties broken on registration order. This
// is the deterministic fallback target for degraded serving — when a
// request opts into allow_degraded, the gateway answers from here
// instead of rejecting, and the spelling of the answer stays identical
// to an explicit request for that device. ok is false only when
// nothing was eligible.
func (pp *PlannerPool) Fastest(overheadMs float64, minSamples uint64, eligible func(device string) bool) (name string, estMs float64, ok bool) {
	return pp.Route(0, overheadMs, minSamples, eligible)
}

// Instrument registers every planner's series — each labeled with its
// device — plus the shared cut cache on reg.
func (pp *PlannerPool) Instrument(reg *telemetry.Registry) {
	for _, name := range pp.names {
		pp.planners[name].Instrument(reg)
	}
}

// Stats reports each target's request and cache counters, keyed by
// device name.
func (pp *PlannerPool) Stats() map[string]Stats {
	out := make(map[string]Stats, len(pp.names))
	for _, name := range pp.names {
		out[name] = pp.planners[name].Stats()
	}
	return out
}
