// Package transfer simulates retraining TRNs on the HANDS grasp task
// (substitution S3 in DESIGN.md).
//
// The paper retrains 148 blockwise TRNs for 183 GPU-hours and measures
// angular-distance accuracy on HANDS. NetCut itself never inspects
// training: it consumes only (TRN -> accuracy) and (TRN -> training
// hours). This package supplies both through
//
//   - per-architecture accuracy response curves: monotone piecewise-
//     linear control-point curves over "feature layers removed",
//     calibrated to the published shapes of Fig. 5 (DenseNet/Inception
//     tolerate >100 removed layers, MobileNets collapse immediately,
//     ResNet sits between and beats the equally deep MobileNetV2);
//   - a within-block retention model: keeping a partial block recovers
//     at most ~0.025 accuracy over cutting the whole block, the paper's
//     < 0.03 observation that justifies blockwise search (Fig. 4);
//   - deterministic seeded retraining noise, so repeated experiments are
//     reproducible while distinct TRNs decorrelate;
//   - a training-cost model (two-phase fine-tuning: frozen head-only
//     epochs, then full-network epochs) calibrated so the 148-candidate
//     blockwise sweep costs about the paper's 183 hours on a
//     K20m-class trainer.
//
// A genuinely trained miniature pipeline lives in internal/nn; this
// package is what makes paper-scale experiments tractable.
package transfer

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"netcut/internal/trim"
)

// ControlPoint anchors an accuracy response curve.
type ControlPoint struct {
	Removed  int     // feature layers removed
	Accuracy float64 // angular-similarity accuracy after retraining
}

// Profile is the transfer behaviour of one architecture.
type Profile struct {
	Network string
	// Points are the response-curve anchors, ascending in Removed, with
	// the first at Removed = 0 (head-only transfer accuracy, Fig. 1).
	Points []ControlPoint
	// TrainNoise is the sigma of the seeded retraining noise.
	TrainNoise float64
	// WithinBlockBonus caps the accuracy a partially retained block can
	// recover over removing it entirely (< 0.03 per the paper).
	WithinBlockBonus float64
}

func (p *Profile) validate() error {
	if len(p.Points) < 2 {
		return fmt.Errorf("transfer: profile %s needs >= 2 control points", p.Network)
	}
	if p.Points[0].Removed != 0 {
		return fmt.Errorf("transfer: profile %s must anchor Removed=0", p.Network)
	}
	for i := 1; i < len(p.Points); i++ {
		if p.Points[i].Removed <= p.Points[i-1].Removed {
			return fmt.Errorf("transfer: profile %s control points not ascending", p.Network)
		}
		if p.Points[i].Accuracy > p.Points[i-1].Accuracy {
			return fmt.Errorf("transfer: profile %s accuracy not monotone non-increasing", p.Network)
		}
	}
	return nil
}

// curve evaluates the piecewise-linear response at r layers removed,
// clamping beyond the anchors.
func (p *Profile) curve(r float64) float64 {
	pts := p.Points
	if r <= float64(pts[0].Removed) {
		return pts[0].Accuracy
	}
	last := pts[len(pts)-1]
	if r >= float64(last.Removed) {
		return last.Accuracy
	}
	i := sort.Search(len(pts), func(i int) bool { return float64(pts[i].Removed) >= r })
	lo, hi := pts[i-1], pts[i]
	f := (r - float64(lo.Removed)) / float64(hi.Removed-lo.Removed)
	return lo.Accuracy + f*(hi.Accuracy-lo.Accuracy)
}

// PaperProfiles returns response curves calibrated to Fig. 5. The
// anchors at the paper's reported operating points are:
//
//   - MobileNetV1 (0.5): one block removed (6 layers) keeps 0.806, the
//     +10.43% over MobileNetV1 (0.25)'s 0.73 (Sec. IV-C);
//   - ResNet-50: 94 removed -> 0.856 (+5.7% over 0.81), 114 removed ->
//     0.828 (+2.2%), the Fig. 10 selections;
//   - InceptionV3: 210/224 removed land near 0.80-0.82;
//   - DenseNet-121: flat out to >100 removed, then a smooth drop.
func PaperProfiles() map[string]*Profile {
	ps := []*Profile{
		{
			Network: "MobileNetV1 (0.25)",
			Points: []ControlPoint{
				{0, 0.730}, {6, 0.700}, {12, 0.655}, {24, 0.580},
				{40, 0.535}, {60, 0.500}, {81, 0.470},
			},
		},
		{
			Network: "MobileNetV1 (0.5)",
			Points: []ControlPoint{
				{0, 0.810}, {6, 0.806}, {12, 0.770}, {24, 0.700},
				{40, 0.625}, {60, 0.550}, {81, 0.480},
			},
		},
		{
			Network: "MobileNetV2 (1.0)",
			Points: []ControlPoint{
				{0, 0.875}, {11, 0.845}, {20, 0.800}, {40, 0.720},
				{70, 0.630}, {100, 0.570}, {150, 0.500},
			},
		},
		{
			Network: "MobileNetV2 (1.4)",
			Points: []ControlPoint{
				{0, 0.885}, {11, 0.862}, {25, 0.825}, {37, 0.800},
				{46, 0.780}, {70, 0.700}, {100, 0.600}, {150, 0.510},
			},
		},
		{
			Network: "ResNet-50",
			Points: []ControlPoint{
				{0, 0.900}, {24, 0.893}, {52, 0.880}, {82, 0.866},
				{94, 0.856}, {114, 0.828}, {134, 0.770}, {154, 0.680},
				{172, 0.550},
			},
		},
		{
			Network: "InceptionV3",
			Points: []ControlPoint{
				{0, 0.915}, {62, 0.905}, {114, 0.890}, {178, 0.852},
				{210, 0.818}, {224, 0.800}, {255, 0.720}, {285, 0.620},
				{310, 0.520},
			},
		},
		{
			Network: "DenseNet-121",
			Points: []ControlPoint{
				{0, 0.930}, {100, 0.916}, {200, 0.886}, {300, 0.846},
				{376, 0.795}, {390, 0.780}, {410, 0.700}, {424, 0.550},
			},
		},
	}
	out := make(map[string]*Profile, len(ps))
	for _, p := range ps {
		p.TrainNoise = 0.004
		p.WithinBlockBonus = 0.025
		if err := p.validate(); err != nil {
			panic(err) // static table, covered by tests
		}
		out[p.Network] = p
	}
	return out
}

// ExtensionProfiles returns response curves for the extended zoo
// (zoo.ExtendedNames). These have no anchor in the paper — they are our
// extension, shaped by the same reasoning Fig. 5 supports: the heavier
// classical VGG-16 transfers robustly (few, wide stages of generic
// features), while the compact SqueezeNet collapses like the MobileNets
// (every fire module earns its keep).
func ExtensionProfiles() map[string]*Profile {
	ps := []*Profile{
		{
			Network: "VGG-16",
			Points: []ControlPoint{
				{0, 0.880}, {10, 0.866}, {20, 0.832}, {30, 0.760}, {44, 0.600},
			},
		},
		{
			Network: "SqueezeNet-1.1",
			Points: []ControlPoint{
				{0, 0.775}, {10, 0.740}, {21, 0.700}, {42, 0.620},
				{62, 0.550}, {84, 0.480},
			},
		},
	}
	out := make(map[string]*Profile, len(ps))
	for _, p := range ps {
		p.TrainNoise = 0.004
		p.WithinBlockBonus = 0.025
		if err := p.validate(); err != nil {
			panic(err) // static table, covered by tests
		}
		out[p.Network] = p
	}
	return out
}

// TrainCost parameterizes the two-phase fine-tuning cost model
// (Sec. III-B3: frozen features at lr 1e-3, then 50 full epochs at 1e-4).
type TrainCost struct {
	DatasetSize  int     // HANDS-scale image count
	EpochsFrozen int     // head-only warm-up epochs
	EpochsFull   int     // full fine-tuning epochs
	TrainerMACs  float64 // effective MAC/s of the exploration trainer
}

// K20mCost returns the cost model calibrated so the 148-TRN blockwise
// sweep totals roughly the paper's 183 hours on an NVIDIA Tesla K20m.
func K20mCost() TrainCost {
	return TrainCost{
		DatasetSize:  10000,
		EpochsFrozen: 10,
		EpochsFull:   50,
		TrainerMACs:  0.42e12,
	}
}

// Result is the outcome of retraining one TRN.
type Result struct {
	Accuracy   float64 // angular similarity on the HANDS-like task
	TrainHours float64 // simulated wall-clock training cost
}

// Simulator produces retraining results for TRNs. It is safe for
// concurrent use: the profile table and boundary memos are guarded by
// one mutex, and every result is a pure function of (seed, network,
// cut), so concurrent callers in any interleaving observe the same
// accuracies a serial run would.
type Simulator struct {
	cost TrainCost
	seed int64

	mu         sync.Mutex
	profiles   map[string]*Profile
	boundaries map[string][]int // cumulative layers removed per blockwise cutpoint
}

// NewSimulator returns a Simulator over the paper profiles plus the
// extended-zoo profiles, with the K20m cost model. The seed fixes the
// retraining-noise stream.
func NewSimulator(seed int64) *Simulator {
	profiles := PaperProfiles()
	for k, v := range ExtensionProfiles() {
		profiles[k] = v
	}
	return &Simulator{
		profiles:   profiles,
		cost:       K20mCost(),
		seed:       seed,
		boundaries: map[string][]int{},
	}
}

// Cost returns the training cost model in use.
func (s *Simulator) Cost() TrainCost { return s.cost }

// SetCost overrides the training cost model.
func (s *Simulator) SetCost(c TrainCost) { s.cost = c }

func (s *Simulator) profile(network string) (*Profile, error) {
	s.mu.Lock()
	p, ok := s.profiles[network]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transfer: no profile for network %q", network)
	}
	return p, nil
}

// HasProfile reports whether the simulator knows a response curve for
// the named network.
func (s *Simulator) HasProfile(network string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.profiles[network]
	return ok
}

// RegisterProfile adds (or replaces) a response curve, letting a
// planning service retrain networks outside the calibrated zoo.
// Profiles must be immutable after registration.
func (s *Simulator) RegisterProfile(p *Profile) error {
	if err := p.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles[p.Network] = p
	return nil
}

// GenericProfile synthesizes a deterministic response curve for a
// network with no calibrated profile, anchored only on its name and
// feature-layer count. The shape follows the Fig. 5 families: a
// name-hashed head-only accuracy in the high-0.70s to high-0.80s, a
// tolerant plateau over the first quarter of removals, then an
// accelerating decline — so arbitrary user graphs explore and retrain
// with plausible, reproducible accuracy responses. The same
// (name, featureLayers) always yields the identical profile, which is
// what keeps a planning service's results byte-identical across runs
// and schedules.
func GenericProfile(name string, featureLayers int) *Profile {
	if featureLayers < 4 {
		featureLayers = 4
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "generic|%s|%d", name, featureLayers)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	base := 0.78 + 0.10*rng.Float64() // head-only transfer accuracy
	p := &Profile{
		Network: name,
		Points: []ControlPoint{
			{0, base},
			{featureLayers / 4, base - 0.015},
			{featureLayers / 2, base - 0.060},
			{3 * featureLayers / 4, base - 0.140},
			{featureLayers, base - 0.260 - 0.02*rng.Float64()},
		},
		TrainNoise:       0.004,
		WithinBlockBonus: 0.025,
	}
	if err := p.validate(); err != nil {
		panic(err) // the construction above is monotone by design
	}
	return p
}

// blockBoundaries returns, for t's parent, the cumulative feature layers
// removed at each blockwise cutpoint (index = blocks removed). The table
// is computed once per parent by enumerating blockwise cuts.
func (s *Simulator) blockBoundaries(t *trim.TRN) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.boundaries[t.Parent.Name]; ok {
		return b, nil
	}
	nb := t.Parent.BlockCount()
	bounds := make([]int, nb+1)
	for c := 0; c <= nb; c++ {
		cut, err := trim.Cut(t.Parent, c, trim.DefaultHead)
		if err != nil {
			return nil, fmt.Errorf("transfer: boundary table for %s: %w", t.Parent.Name, err)
		}
		bounds[c] = cut.LayersRemoved
	}
	s.boundaries[t.Parent.Name] = bounds
	return bounds, nil
}

// noise returns the deterministic retraining perturbation for a TRN:
// same (seed, network, layers removed) always trains to the same
// accuracy, mimicking a fixed training seed.
func (s *Simulator) noise(network string, removed int, sigma float64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", s.seed, network, removed)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	return sigma * rng.NormFloat64()
}

// Accuracy returns the retrained accuracy of a TRN without the cost
// accounting.
func (s *Simulator) Accuracy(t *trim.TRN) (float64, error) {
	p, err := s.profile(t.Parent.Name)
	if err != nil {
		return 0, err
	}
	r := t.LayersRemoved
	var acc float64
	if t.Cutpoint >= 0 {
		// Blockwise cut: exactly on the response curve.
		acc = p.curve(float64(r))
	} else {
		// Exhaustive cut inside a block: the retained partial block
		// recovers at most WithinBlockBonus over removing it entirely.
		bounds, err := s.blockBoundaries(t)
		if err != nil {
			return 0, err
		}
		acc = s.partialBlockAccuracy(p, bounds, r)
	}
	acc += s.noise(t.Parent.Name, r, p.TrainNoise)
	return clamp01(acc), nil
}

func (s *Simulator) partialBlockAccuracy(p *Profile, bounds []int, r int) float64 {
	// Find the enclosing blockwise boundaries lo <= r <= hi.
	i := sort.SearchInts(bounds, r)
	if i < len(bounds) && bounds[i] == r {
		return p.curve(float64(r)) // exactly at a boundary
	}
	if i == 0 {
		return p.curve(float64(r))
	}
	if i == len(bounds) {
		// Deeper than the last blockwise cut (inside the stem).
		return p.curve(float64(r))
	}
	lo, hi := bounds[i-1], bounds[i]
	whole := p.curve(float64(hi))
	atLo := p.curve(float64(lo))
	frac := float64(hi-r) / float64(hi-lo) // fraction of the block retained
	bonus := (atLo - whole) * frac
	if bonus > p.WithinBlockBonus {
		bonus = p.WithinBlockBonus
	}
	return whole + bonus
}

// TrainHours returns the simulated cost of retraining a TRN: a frozen
// phase (forward-only features, trainable head) followed by full
// fine-tuning (forward + backward everywhere).
func (s *Simulator) TrainHours(t *trim.TRN) float64 {
	var featMACs, headMACs float64
	for _, n := range t.Graph.Nodes {
		if n.Head {
			headMACs += float64(n.MACs)
		} else {
			featMACs += float64(n.MACs)
		}
	}
	c := s.cost
	n := float64(c.DatasetSize)
	frozen := (featMACs + 3*headMACs) * n * float64(c.EpochsFrozen)
	full := 3 * (featMACs + headMACs) * n * float64(c.EpochsFull)
	return (frozen + full) / c.TrainerMACs / 3600
}

// Retrain simulates retraining a TRN, returning accuracy and cost.
func (s *Simulator) Retrain(t *trim.TRN) (Result, error) {
	acc, err := s.Accuracy(t)
	if err != nil {
		return Result{}, err
	}
	return Result{Accuracy: acc, TrainHours: s.TrainHours(t)}, nil
}

// OffTheShelfAccuracy returns the accuracy of a network after standard
// transfer learning with no layers removed (the y-axis of Fig. 1).
func (s *Simulator) OffTheShelfAccuracy(network string) (float64, error) {
	p, err := s.profile(network)
	if err != nil {
		return 0, err
	}
	return clamp01(p.Points[0].Accuracy + s.noise(network, 0, p.TrainNoise)), nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
