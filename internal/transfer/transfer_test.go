package transfer

import (
	"math"
	"testing"
	"testing/quick"

	"netcut/internal/trim"
	"netcut/internal/zoo"
)

func TestPaperProfilesValidate(t *testing.T) {
	ps := PaperProfiles()
	if len(ps) != 7 {
		t.Fatalf("%d profiles, want 7", len(ps))
	}
	for _, name := range zoo.Names {
		if _, ok := ps[name]; !ok {
			t.Errorf("missing profile for %s", name)
		}
	}
}

func TestCurveInterpolation(t *testing.T) {
	p := &Profile{
		Network: "x",
		Points:  []ControlPoint{{0, 0.9}, {10, 0.8}, {20, 0.6}},
	}
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ r, want float64 }{
		{0, 0.9}, {5, 0.85}, {10, 0.8}, {15, 0.7}, {20, 0.6}, {100, 0.6}, {-5, 0.9},
	}
	for _, c := range cases {
		if got := p.curve(c.r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("curve(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestProfileValidateRejectsBadTables(t *testing.T) {
	bad := []*Profile{
		{Network: "a", Points: []ControlPoint{{0, 0.9}}},
		{Network: "b", Points: []ControlPoint{{1, 0.9}, {5, 0.8}}},
		{Network: "c", Points: []ControlPoint{{0, 0.9}, {5, 0.95}}},
		{Network: "d", Points: []ControlPoint{{0, 0.9}, {0, 0.8}}},
	}
	for _, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("profile %s accepted", p.Network)
		}
	}
}

func TestHeadlineAnchors(t *testing.T) {
	sim := NewSimulator(1)
	// MobileNetV1 (0.5) minus one block keeps ~0.806: +10.4% over
	// MobileNetV1 (0.25)'s 0.73 (the paper's headline).
	g, err := zoo.ByName("MobileNetV1 (0.5)")
	if err != nil {
		t.Fatal(err)
	}
	cut1, err := trim.Cut(g, 1, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if cut1.LayersRemoved != 6 {
		t.Fatalf("MobileNetV1 cut 1 removes %d layers, want 6", cut1.LayersRemoved)
	}
	acc, err := sim.Accuracy(cut1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-0.806) > 0.02 {
		t.Fatalf("cut-1 accuracy = %v, want ~0.806", acc)
	}
	rel := acc/0.73 - 1
	if rel < 0.07 || rel > 0.14 {
		t.Fatalf("relative improvement = %.3f, want ~0.104", rel)
	}
}

func TestResNetPaperCutLabels(t *testing.T) {
	// The layer-count conventions reproduce the paper's Fig. 10 labels:
	// cut 9 = ResNet-50/94, cut 11 = ResNet-50/114.
	g, _ := zoo.ByName("ResNet-50")
	c9, err := trim.Cut(g, 9, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if c9.LayersRemoved != 94 {
		t.Fatalf("ResNet cut 9 removes %d layers, want 94", c9.LayersRemoved)
	}
	c11, _ := trim.Cut(g, 11, trim.DefaultHead)
	if c11.LayersRemoved != 114 {
		t.Fatalf("ResNet cut 11 removes %d layers, want 114", c11.LayersRemoved)
	}
	sim := NewSimulator(1)
	a9, _ := sim.Accuracy(c9)
	a11, _ := sim.Accuracy(c11)
	if math.Abs(a9-0.856) > 0.02 || math.Abs(a11-0.828) > 0.02 {
		t.Fatalf("ResNet/94=%.3f (want ~0.856), ResNet/114=%.3f (want ~0.828)", a9, a11)
	}
}

func TestInceptionPaperCutLabels(t *testing.T) {
	g, _ := zoo.ByName("InceptionV3")
	c7, err := trim.Cut(g, 7, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if c7.LayersRemoved != 210 {
		t.Fatalf("Inception cut 7 removes %d layers, want 210 (Fig. 10)", c7.LayersRemoved)
	}
	c8, _ := trim.Cut(g, 8, trim.DefaultHead)
	if c8.LayersRemoved != 224 {
		t.Fatalf("Inception cut 8 removes %d layers, want 224 (Fig. 10)", c8.LayersRemoved)
	}
}

func TestMobileNetV2PaperCutLabel(t *testing.T) {
	g, _ := zoo.ByName("MobileNetV2 (1.0)")
	c1, err := trim.Cut(g, 1, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	if c1.LayersRemoved != 11 {
		t.Fatalf("MobileNetV2 cut 1 removes %d layers, want 11 (Fig. 10)", c1.LayersRemoved)
	}
}

func TestFig5Shapes(t *testing.T) {
	// DenseNet and Inception barely lose accuracy at 100 layers removed;
	// MobileNets collapse; ResNet beats MobileNetV2 at equal removal.
	ps := PaperProfiles()
	dn, iv, rn := ps["DenseNet-121"], ps["InceptionV3"], ps["ResNet-50"]
	m1, m2 := ps["MobileNetV1 (0.5)"], ps["MobileNetV2 (1.0)"]
	if dn.Points[0].Accuracy-dn.curve(100) > 0.03 {
		t.Error("DenseNet should lose < 0.03 at 100 removed")
	}
	if iv.Points[0].Accuracy-iv.curve(100) > 0.03 {
		t.Error("Inception should lose < 0.03 at 100 removed")
	}
	if m1.Points[0].Accuracy-m1.curve(24) < 0.08 {
		t.Error("MobileNetV1 should collapse quickly")
	}
	for _, r := range []float64{20, 40, 60, 100} {
		if rn.curve(r) <= m2.curve(r) {
			t.Errorf("ResNet should beat MobileNetV2 at %v removed: %.3f vs %.3f",
				r, rn.curve(r), m2.curve(r))
		}
	}
}

func TestRetrainDeterminism(t *testing.T) {
	g, _ := zoo.ByName("ResNet-50")
	c, _ := trim.Cut(g, 5, trim.DefaultHead)
	s1 := NewSimulator(7)
	s2 := NewSimulator(7)
	r1, err1 := s1.Retrain(c)
	r2, err2 := s2.Retrain(c)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1 != r2 {
		t.Fatalf("same seed gave %v vs %v", r1, r2)
	}
	s3 := NewSimulator(8)
	r3, _ := s3.Retrain(c)
	if r3.Accuracy == r1.Accuracy {
		t.Fatal("different seeds should perturb accuracy")
	}
}

func TestUnknownNetwork(t *testing.T) {
	sim := NewSimulator(1)
	b := zoo.MobileNetV1(0.75) // width not in the paper set
	c, _ := trim.Cut(b, 1, trim.DefaultHead)
	if _, err := sim.Accuracy(c); err == nil {
		t.Fatal("accuracy for unprofiled network should error")
	}
	if _, err := sim.OffTheShelfAccuracy("nope"); err == nil {
		t.Fatal("OffTheShelfAccuracy for unknown network should error")
	}
}

func TestWithinBlockBonusBounded(t *testing.T) {
	// Exhaustive cuts inside a block may beat the whole-block cut by at
	// most WithinBlockBonus + noise (the paper's < 0.03 claim, Fig. 4).
	g, _ := zoo.ByName("InceptionV3")
	sim := NewSimulator(3)
	trns, err := trim.EnumerateExhaustive(g, trim.DefaultHead)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trns[:60] {
		a, err := sim.Accuracy(tr)
		if err != nil {
			t.Fatal(err)
		}
		if a < 0 || a > 1 {
			t.Fatalf("accuracy out of range: %v", a)
		}
	}
	// A mid-block exhaustive cut vs the whole-block cut one boundary
	// deeper never differs by more than 0.03 + noise headroom.
	boundsSlice, err := sim.blockBoundaries(trns[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trns {
		r := tr.LayersRemoved
		for i := 1; i < len(boundsSlice); i++ {
			if r > boundsSlice[i-1] && r < boundsSlice[i] {
				aPartial, _ := sim.Accuracy(tr)
				whole := PaperProfiles()["InceptionV3"].curve(float64(boundsSlice[i]))
				if aPartial-whole > 0.03+0.01 {
					t.Fatalf("partial cut %d beats whole block by %.3f (> 0.03)",
						r, aPartial-whole)
				}
			}
		}
	}
}

func TestTrainHoursScaleWithDepth(t *testing.T) {
	sim := NewSimulator(1)
	g, _ := zoo.ByName("ResNet-50")
	shallow, _ := trim.Cut(g, 12, trim.DefaultHead)
	deep, _ := trim.Cut(g, 2, trim.DefaultHead)
	if sim.TrainHours(shallow) >= sim.TrainHours(deep) {
		t.Fatal("deeper TRN should cost more training time")
	}
}

func TestBlockwiseSweepCostNearPaper(t *testing.T) {
	// The 148-candidate blockwise sweep should cost roughly the paper's
	// 183 hours (+-25%).
	sim := NewSimulator(1)
	total := 0.0
	for _, g := range zoo.Paper7() {
		trns, err := trim.EnumerateBlockwise(g, trim.DefaultHead, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trns {
			total += sim.TrainHours(tr)
		}
	}
	if total < 137 || total > 229 {
		t.Fatalf("blockwise sweep = %.1f hours, want ~183 +-25%%", total)
	}
}

// Property: accuracy is within [0,1] and weakly decreasing in blockwise
// cutpoint (up to noise).
func TestAccuracyMonotoneProperty(t *testing.T) {
	sim := NewSimulator(5)
	g, _ := zoo.ByName("DenseNet-121")
	trns, err := trim.EnumerateBlockwise(g, trim.DefaultHead, true)
	if err != nil {
		t.Fatal(err)
	}
	accs := make([]float64, len(trns))
	for i, tr := range trns {
		a, err := sim.Accuracy(tr)
		if err != nil {
			t.Fatal(err)
		}
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %v out of range", a)
		}
		accs[i] = a
	}
	for i := 1; i < len(accs); i++ {
		if accs[i] > accs[i-1]+3*0.004 {
			t.Fatalf("accuracy increased with removal at cut %d: %.4f -> %.4f",
				i, accs[i-1], accs[i])
		}
	}
	f := func(r uint16) bool {
		p := PaperProfiles()["DenseNet-121"]
		v := p.curve(float64(r % 500))
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
