package gateway

import "math"

// The rendered-response byte cache: fully delivered 200 bodies, keyed
// by complete response identity, served straight from admission so a
// repeat request skips its lane, the planner and the wire-marshal
// entirely. The cache is legal because responses are pure functions of
// (seed, device calibration, graph structure, deadline, estimator) —
// the same byte-identity contract that makes coalescing and batching
// transparent — so a hit returns exactly the bytes a fresh execution
// would render, and eviction only restores the recompute cost.
//
// What is never cached or served: planner errors and panics (only
// deliverResult's 200 path populates), watchdog-abandoned passes
// (abandonCalls never touches the cache), quarantined identities (the
// quarantine gate precedes the lookup), tripped devices (eligibility
// precedes the lookup, and tripping a device purges its entries), and
// anything while draining (the drain gate is first).

// byteCacheShards fixes the shard count of the byte cache: enough to
// keep concurrent warm hits off one mutex, few enough that tiny test
// capacities still bound sensibly (lru routes small totals over
// cap-many active shards).
const byteCacheShards = 8

// byteKey is the identity a rendered body is cached under: the
// resolved coalesce key (device, name, structure fingerprint,
// deadline, estimator) plus the device's calibration fingerprint,
// which pins the bytes to the exact calibration that produced them.
type byteKey struct {
	key   coalesceKey
	calib uint64
}

// hashByteKey routes a byteKey to its shard: FNV-1a over every field,
// a pure function of the key as lru.NewSharded requires.
func hashByteKey(k byteKey) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	num := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	str(k.key.device)
	str(k.key.name)
	num(k.key.print)
	num(math.Float64bits(k.key.deadline))
	str(k.key.estimator)
	num(k.calib)
	return h
}

// byteCacheGet looks up the rendered body for a fully resolved
// coalesce key. Callers must have passed the drain, quarantine and
// device-eligibility gates first: the cache short-circuits queueing and
// planning, never admission policy.
func (g *Gateway) byteCacheGet(k coalesceKey) ([]byte, bool) {
	if g.bytes == nil {
		return nil, false
	}
	return g.bytes.Get(byteKey{key: k, calib: g.calib[k.device]})
}

// byteCacheAdd caches a successfully delivered response body. Only
// deliverResult's 200 path calls it, which is what keeps errors,
// contained panics and watchdog-abandoned results out of the cache by
// construction.
func (g *Gateway) byteCacheAdd(k coalesceKey, body []byte) {
	if g.bytes == nil {
		return
	}
	g.bytes.Add(byteKey{key: k, calib: g.calib[k.device]}, body)
}

// byteCachePurgeDevice drops every cached body of one device — called
// when its health trips, so a device taken out of rotation cannot leave
// stale-looking fast-path bytes behind. (Serving them would still be
// byte-correct — bodies are pure functions of the calibration — but
// admission refuses tripped devices everywhere else, and the cache
// must not be the one path that answers for them.)
func (g *Gateway) byteCachePurgeDevice(dev string) {
	if g.bytes == nil {
		return
	}
	g.bytes.DeleteFunc(func(k byteKey) bool { return k.key.device == dev })
}
