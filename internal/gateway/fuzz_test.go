package gateway

import (
	"bytes"
	"encoding/json"
	"testing"

	"netcut/internal/graph"
)

// FuzzDecodeRequest is the gateway's untrusted-input fuzz target,
// extending the graph.Validate fuzz boundary to the JSON layer: the
// request decoder must reject — never panic on — arbitrary bytes, and
// any request it accepts must carry a graph the planning pipeline can
// safely run (the property the graph-package fuzzers pin for Validate
// acceptances).
func FuzzDecodeRequest(f *testing.F) {
	// Well-formed seeds: zoo shorthand, a full encoded user graph, and
	// each knob exercised.
	f.Add([]byte(`{"network":"ResNet-50","deadline_ms":0.9}`))
	f.Add([]byte(`{"network":"MobileNetV1 (0.25)","estimator":"analytical","budget_ms":10}`))
	if gw, err := json.Marshal(EncodeGraph(fuzzNet())); err == nil {
		f.Add([]byte(`{"graph":` + string(gw) + `,"deadline_ms":0.35}`))
	}
	// Malformed seeds: truncations, wrong types, corrupted structure.
	f.Add([]byte(`{"graph":{"name":"x","nodes":[{"id":7,"kind":"Conv"}]}}`))
	f.Add([]byte(`{"graph":{"name":"x","nodes":[{"id":0,"kind":"Input","block":0}]}}`))
	f.Add([]byte(`{"network":42}`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, aerr := decodeRequest(bytes.NewReader(data))
		if aerr != nil {
			if aerr.status < 400 || aerr.status > 499 {
				t.Fatalf("decode rejection with non-4xx status %d", aerr.status)
			}
			if aerr.wire.Code == "" {
				t.Fatal("decode rejection without a structured code")
			}
			return
		}
		// Accepted: the decoded request must satisfy the invariants the
		// planner's admission relies on.
		if dec.req.Graph == nil {
			t.Fatal("accepted request with nil graph")
		}
		if err := graph.Validate(dec.req.Graph); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		if dec.req.DeadlineMs <= 0 {
			t.Fatalf("accepted non-positive deadline %v", dec.req.DeadlineMs)
		}
		if dec.key.print != graph.Fingerprint(dec.req.Graph) {
			t.Fatal("coalescing key fingerprint diverges from the graph")
		}
	})
}

func fuzzNet() *graph.Graph {
	b := graph.NewBuilder("fuzz-seed-net", graph.Shape{H: 16, W: 16, C: 3}, 4)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8, 2, graph.Same)
	b.BeginBlock("b0")
	y := b.ConvBNReLU(x, 3, 8, 1, graph.Same)
	x = b.Add(y, x)
	x = b.ReLU(x)
	b.EndBlock()
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 4)
	b.Softmax(x)
	return b.MustFinish()
}
