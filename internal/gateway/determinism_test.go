package gateway

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
)

// TestGatewayDeterministicAcrossGOMAXPROCS extends the repository's
// GOMAXPROCS determinism guard (exp.TestAllDeterministicAcrossGOMAXPROCS,
// netcut.TestPlannerDeterministicUnderConcurrentStress) to the serving
// layer — now including the device pool and its routing path: any
// interleaving of concurrent gateway requests spanning default,
// explicit-device and "auto" targets, at any GOMAXPROCS and any
// coalescing/batching schedule, must produce bodies byte-identical to
// a serial replay on a fresh gateway. ShedMinSamples is pinned above
// the test's traffic so "auto" stays on its deterministic cold-start
// route (warm estimates below the activation threshold read as 0 for
// every device) — load-adaptive routing, like shedding, is admission
// policy and is exercised by its own tests, not the byte-identity
// guard. Run under -race in CI this is also the gateway's data-race
// probe.
//
// With tracing always on, "byte-identical" means modulo the injected
// trace_id field: each response carries a unique ID, so the bodies are
// compared with it stripped, and every ID is separately pinned to the
// 16-hex format and to the X-Netcut-Trace header.
func TestGatewayDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const (
		goroutines = 8
		distinct   = 5
		rounds     = 3
		seed       = 17
	)
	// Odd-indexed requests also opt into degraded serving: with every
	// device healthy and shedding inactive the flag must change
	// nothing — no fallback, no degraded markers, byte-identical
	// bodies — pinning that allow_degraded is admission policy, not a
	// response variant.
	targets := []string{"", `,"target":"auto","allow_degraded":true`, `,"target":"sim-xavier"`,
		`,"target":"sim-server-gpu","allow_degraded":true`, `,"target":"sim-edge-cpu"`}
	mk := func(workers int) *Gateway {
		cfg := quickConfig(seed)
		cfg.Workers = workers
		cfg.ShedMinSamples = 1 << 30
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	bodyFor := func(i int) string { return graphBody(t, userNet(i), 0.35, targets[i%len(targets)]) }

	// Serial reference: one fresh gateway, one worker, GOMAXPROCS 1.
	prev := runtime.GOMAXPROCS(1)
	ref := mk(1)
	want := make([][]byte, distinct)
	for i := range want {
		rec := post(ref, bodyFor(i))
		if rec.Code != http.StatusOK {
			t.Fatalf("reference request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		want[i] = stripped(rec.Body.Bytes())
	}
	mustShutdown(t, ref)
	runtime.GOMAXPROCS(prev)
	defer runtime.GOMAXPROCS(prev)

	for _, width := range []int{1, 4} {
		runtime.GOMAXPROCS(width)
		g := mk(2)
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for round := 0; round < rounds; round++ {
					for j := 0; j < distinct; j++ {
						i := (j + w + round) % distinct
						rec := post(g, bodyFor(i))
						if rec.Code != http.StatusOK {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d: status %d: %s", width, w, rec.Code, rec.Body.String())
							return
						}
						if !bytes.Equal(stripped(rec.Body.Bytes()), want[i]) {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d round %d: user-net-%d body diverged from serial replay:\n got %s\nwant %s",
								width, w, round, i, rec.Body.Bytes(), want[i])
							return
						}
						if bytes.Contains(rec.Body.Bytes(), []byte(`"degraded"`)) {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d: healthy-fleet response carries degraded markers: %s",
								width, w, rec.Body.String())
							return
						}
						hdr := rec.Header().Get(TraceHeader)
						if !traceIDFormat.MatchString(hdr) {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d: trace header %q is not 16 lowercase hex", width, w, hdr)
							return
						}
						if !bytes.Contains(rec.Body.Bytes(), []byte(`"trace_id":"`+hdr+`"`)) {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d: body trace_id does not match header %q:\n%s",
								width, w, hdr, rec.Body.String())
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		mustShutdown(t, g)
	}
}
