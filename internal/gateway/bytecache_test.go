package gateway

// Byte-cache seam suite: pins the tentpole contract that the
// rendered-response cache is invisible except in latency — hits are
// byte-identical to executions, eviction only restores the recompute
// cost, and every admission gate (quarantine, device health, drain)
// still fires before a resident body can be served.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"netcut/internal/device"
	"netcut/internal/faultinject"
	"netcut/internal/serve"
)

// TestByteCacheHitSkipsExecution pins the telemetry split: a repeat of
// an identical request is served from the byte cache — byte-identical
// body, zero additional planner executions — and is counted as a
// bytecache hit, never as an execution.
func TestByteCacheHitSkipsExecution(t *testing.T) {
	cfg := quickConfig(51)
	cfg.Devices = []device.Config{device.Xavier()}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	body := graphBody(t, userNet(0), 0.35, "")
	first := post(g, body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", first.Code, first.Body.String())
	}
	execs := g.Planner().Executions()
	if execs == 0 {
		t.Fatal("first request did not execute")
	}

	second := post(g, body)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: status %d: %s", second.Code, second.Body.String())
	}
	if !bytes.Equal(stripped(first.Body.Bytes()), stripped(second.Body.Bytes())) {
		t.Fatalf("cache hit diverged from execution:\n got %s\nwant %s", second.Body.Bytes(), first.Body.Bytes())
	}
	if got := g.Planner().Executions(); got != execs {
		t.Fatalf("planner executions = %d after a cache hit, want unchanged %d", got, execs)
	}
	st := g.bytes.Stats()
	if st.Hits != 1 || st.Misses == 0 {
		t.Fatalf("bytecache stats = %+v, want exactly 1 hit and at least 1 miss", st)
	}

	// The split is visible on the wire: hits and misses are distinct
	// series next to the planner's execution counter.
	rec := get(g, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"netcut_gateway_bytecache_hits_total 1\n",
		"netcut_gateway_bytecache_misses_total",
		"netcut_gateway_bytecache_entries",
		"netcut_gateway_bytecache_cap",
		"netcut_gateway_bytecache_evictions_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestByteCacheOnOffByteIdentical pins transparency under concurrency:
// with the byte cache enabled, any interleaving of repeated requests at
// any GOMAXPROCS produces bodies byte-identical to a serial replay on a
// gateway with the cache disabled.
func TestByteCacheOnOffByteIdentical(t *testing.T) {
	const (
		goroutines = 8
		distinct   = 4
		rounds     = 3
		seed       = 53
	)
	bodyFor := func(t *testing.T, i int) string { return graphBody(t, userNet(i), 0.35, "") }

	// Serial reference: cache off, one worker, GOMAXPROCS 1 — every
	// request is a full execution.
	prev := runtime.GOMAXPROCS(1)
	refCfg := quickConfig(seed)
	refCfg.Workers = 1
	refCfg.ByteCacheCap = -1
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, distinct)
	for i := range want {
		rec := post(ref, bodyFor(t, i))
		if rec.Code != http.StatusOK {
			t.Fatalf("reference request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		want[i] = stripped(rec.Body.Bytes())
	}
	mustShutdown(t, ref)
	runtime.GOMAXPROCS(prev)
	defer runtime.GOMAXPROCS(prev)

	for _, width := range []int{1, 4} {
		runtime.GOMAXPROCS(width)
		cfg := quickConfig(seed)
		cfg.Workers = 2
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for round := 0; round < rounds; round++ {
					for j := 0; j < distinct; j++ {
						i := (j + w + round) % distinct
						rec := post(g, bodyFor(t, i))
						if rec.Code != http.StatusOK {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d: status %d: %s", width, w, rec.Code, rec.Body.String())
							return
						}
						if !bytes.Equal(stripped(rec.Body.Bytes()), want[i]) {
							errs <- fmt.Errorf("GOMAXPROCS=%d worker %d round %d: user-net-%d cached body diverged from cache-off replay:\n got %s\nwant %s",
								width, w, round, i, rec.Body.Bytes(), want[i])
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if st := g.bytes.Stats(); st.Hits == 0 {
			t.Fatalf("bytecache stats = %+v: the concurrent run never hit the cache, the comparison proved nothing", st)
		}
		mustShutdown(t, g)
	}
}

// TestByteCacheEvictionTransparent pins the bounded-cache contract: an
// identity evicted by capacity pressure re-executes on its next request
// and renders byte-identical output — eviction costs latency, never
// correctness.
func TestByteCacheEvictionTransparent(t *testing.T) {
	cfg := quickConfig(57)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.ByteCacheCap = 2
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	const distinct = 6
	first := make([][]byte, distinct)
	for i := 0; i < distinct; i++ {
		rec := post(g, graphBody(t, userNet(i), 0.35, ""))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		first[i] = stripped(rec.Body.Bytes())
	}
	st := g.bytes.Stats()
	if st.Evictions == 0 {
		t.Fatalf("bytecache stats = %+v: %d distinct identities under cap %d caused no evictions", st, distinct, cfg.ByteCacheCap)
	}
	if st.Len > cfg.ByteCacheCap {
		t.Fatalf("bytecache holds %d entries, cap is %d", st.Len, cfg.ByteCacheCap)
	}
	for i := 0; i < distinct; i++ {
		rec := post(g, graphBody(t, userNet(i), 0.35, ""))
		if rec.Code != http.StatusOK {
			t.Fatalf("repeat %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(stripped(rec.Body.Bytes()), first[i]) {
			t.Fatalf("identity %d diverged after eviction:\n got %s\nwant %s", i, rec.Body.Bytes(), first[i])
		}
	}
}

// TestByteCacheQuarantineGatePrecedesCache pins an admission invariant:
// quarantining a request identity must refuse it even when its rendered
// bytes are resident from before the quarantine tripped. The cache
// entry is seeded on one device, the panics trip on another — the
// quarantine key ignores the device, the byte key does not.
func TestByteCacheQuarantineGatePrecedesCache(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(59)
	cfg.Devices = []device.Config{device.Xavier(), device.EdgeCPU()}
	// Keep the panics from also tripping device health: this test wants
	// the quarantine gate isolated from the health gate.
	cfg.UnhealthyAfter = 100
	cfg.QuarantineAfter = 2
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	net := poisonNet(3, "poison-cached")
	okBody := graphBody(t, net, 0.35, `,"target":"sim-xavier"`)
	first := post(g, okBody)
	if first.Code != http.StatusOK {
		t.Fatalf("seeding request: status %d: %s", first.Code, first.Body.String())
	}
	if g.bytes.Stats().Len == 0 {
		t.Fatal("seeding request was not cached")
	}

	// Same structure, deadline and estimator on the other device: each
	// contained panic bumps the device-agnostic quarantine count.
	faultinject.Arm(faultinject.TrimPanic, "poison-cached", cfg.QuarantineAfter)
	for i := 0; i < cfg.QuarantineAfter; i++ {
		if rec := post(g, graphBody(t, net, 0.35, `,"target":"sim-edge-cpu"`)); rec.Code != http.StatusInternalServerError {
			t.Fatalf("poison pass %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	// The identity is quarantined; its bytes are still resident for
	// sim-xavier. The gate must win.
	rec := post(g, okBody)
	if rec.Code != http.StatusInternalServerError || errCode(t, rec) != "quarantined" {
		t.Fatalf("quarantined identity with resident bytes: status %d code %q body %s",
			rec.Code, errCode(t, rec), rec.Body.String())
	}
}

// TestByteCacheHealthTripPurgesDevice pins the freshness rule: tripping
// a device's health purges its cached bodies, and an explicit request
// for the tripped device gets the 503 — never a resident 200.
func TestByteCacheHealthTripPurgesDevice(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(61)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.UnhealthyAfter = 1
	cfg.ProbeInterval = time.Hour // no recovery during the test
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	body := graphBody(t, userNet(4), 0.35, `,"target":"sim-xavier"`)
	if rec := post(g, body); rec.Code != http.StatusOK {
		t.Fatalf("seeding request: status %d: %s", rec.Code, rec.Body.String())
	}
	if g.bytes.Stats().Len == 0 {
		t.Fatal("seeding request was not cached")
	}

	faultinject.Arm(faultinject.TrimPanic, "poison-trip", 1)
	if rec := post(g, graphBody(t, poisonNet(8, "poison-trip"), 0.35, "")); rec.Code != http.StatusInternalServerError {
		t.Fatalf("poison request: status %d: %s", rec.Code, rec.Body.String())
	}

	if n := g.bytes.Stats().Len; n != 0 {
		t.Fatalf("bytecache holds %d entries after the device tripped, want 0", n)
	}
	rec := post(g, body)
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "device_unhealthy" {
		t.Fatalf("tripped device with previously cached bytes: status %d code %q", rec.Code, errCode(t, rec))
	}
}

// TestByteCacheDrainRefusesHits pins the shutdown contract: once the
// gateway is draining, resident bytes are refused with the same 503
// (and honest Retry-After) as any other admission.
func TestByteCacheDrainRefusesHits(t *testing.T) {
	cfg := quickConfig(63)
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	body := graphBody(t, userNet(5), 0.35, "")
	if rec := post(g, body); rec.Code != http.StatusOK {
		t.Fatalf("seeding request: status %d: %s", rec.Code, rec.Body.String())
	}
	if g.bytes.Stats().Len == 0 {
		t.Fatal("seeding request was not cached")
	}
	mustShutdown(t, g)
	rec := post(g, body)
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "draining" ||
		rec.Header().Get("Retry-After") != wantRetryAfter(t, rec) {
		t.Fatalf("draining with resident bytes: status %d code %q retry-after %q",
			rec.Code, errCode(t, rec), rec.Header().Get("Retry-After"))
	}
}

// TestEncodeResponseMatchesJSONMarshal pins the hand-rolled renderer to
// encoding/json: for any response — including floats that force 'e'
// formatting, HTML-escaped names and omitted empty fields — the pooled
// encoder's bytes equal json.Marshal of PlanResponseWire plus the
// trailing newline. This equivalence is what makes the renderer safe to
// swap onto the byte-identity contract.
func TestEncodeResponseMatchesJSONMarshal(t *testing.T) {
	floats := []float64{
		0, 0.9, 1, 0.35, 123.456, 1e-6, 9.9e-7, 4.5e-9, 1e20, 1e21, 2.5e22,
		-0.75, -4.5e-9, -1e21, math.MaxFloat64, math.SmallestNonzeroFloat64,
		1.0000000000000002, 3.141592653589793,
	}
	names := []string{
		"", "ResNet-50", "user-net-0", "a<b>&c", `quo"te`, `back\slash`,
		"tab\tname", "Ünïcode-网络", "ctrl\x01\x1f", "trailing space ",
	}
	idx := 0
	nextFloat := func() float64 { idx++; return floats[idx%len(floats)] }
	for i, name := range names {
		for _, feasible := range []bool{true, false} {
			r := &serve.Response{
				Device:        "sim-xavier",
				Feasible:      feasible,
				Network:       name,
				Parent:        names[(i+1)%len(names)],
				BlocksRemoved: i,
				LayersRemoved: 3 * i,
				EstimatedMs:   nextFloat(),
				MeasuredMs:    nextFloat(),
				Accuracy:      nextFloat(),
				TrainHours:    nextFloat(),
				Iterations:    i * 7,
			}
			want, err := json.Marshal(PlanResponseWire{
				Device:        r.Device,
				Feasible:      r.Feasible,
				Network:       r.Network,
				Parent:        r.Parent,
				BlocksRemoved: r.BlocksRemoved,
				LayersRemoved: r.LayersRemoved,
				EstimatedMs:   r.EstimatedMs,
				MeasuredMs:    r.MeasuredMs,
				Accuracy:      r.Accuracy,
				TrainHours:    r.TrainHours,
				Iterations:    r.Iterations,
			})
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n')
			if got := EncodeResponse(r); !bytes.Equal(got, want) {
				t.Fatalf("EncodeResponse diverged for network %q:\n got %s\nwant %s", name, got, want)
			}
		}
	}
}

// TestEncodeResponseRejectsNonFinite pins the encoder's one divergence
// lever: values encoding/json would reject must panic, not render.
func TestEncodeResponseRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("EncodeResponse accepted %v", v)
				}
			}()
			EncodeResponse(&serve.Response{Device: "sim-xavier", EstimatedMs: v})
		}()
	}
}
