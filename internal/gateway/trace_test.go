package gateway

// Tests for the request-tracing surfaces: the X-Netcut-Trace header and
// injected trace_id body field, GET /debug/trace (ring + filters), GET
// /debug/requests (in-flight), slow-request logging, the explicit
// Content-Types on every debug surface, and the injectTraceID /
// StripTraceID pair the byte-identity tests lean on.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"netcut/internal/trace"
)

// traceIDFormat pins the wire format of a trace ID: 16 lowercase hex
// characters, always.
var traceIDFormat = regexp.MustCompile(`^[0-9a-f]{16}$`)

// traceDump decodes a /debug/trace or /debug/requests response body.
type traceDump struct {
	Traces   []trace.View `json:"traces"`
	Requests []trace.View `json:"requests"`
}

func getDump(t *testing.T, g *Gateway, path string) traceDump {
	t.Helper()
	rec := get(g, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: Content-Type %q, want application/json", path, ct)
	}
	var d traceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("%s: %v:\n%s", path, err, rec.Body.String())
	}
	return d
}

// stages returns the stage names of a view's spans, in order.
func stages(v trace.View) []string {
	out := make([]string, len(v.Spans))
	for i, sp := range v.Spans {
		out[i] = sp.Stage
	}
	return out
}

func hasStage(v trace.View, stage string) bool {
	for _, sp := range v.Spans {
		if sp.Stage == stage {
			return true
		}
	}
	return false
}

// TestTraceHeaderMatchesBody pins the ID plumbing on both the success
// and the error path: the response carries X-Netcut-Trace in the
// expected format, the body's trace_id matches it, and stripping the
// field restores the canonical rendering.
func TestTraceHeaderMatchesBody(t *testing.T) {
	g, err := New(quickConfig(71))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	ok := post(g, graphBody(t, userNet(0), 0.35, ""))
	bad := post(g, `{"deadline_ms":0.35}`) // no graph: decode refusal
	for name, rec := range map[string]*httptest.ResponseRecorder{"ok": ok, "refused": bad} {
		id := rec.Header().Get(TraceHeader)
		if !traceIDFormat.MatchString(id) {
			t.Fatalf("%s: header %q is not 16 lowercase hex", name, id)
		}
		if !bytes.Contains(rec.Body.Bytes(), []byte(`"trace_id":"`+id+`"`)) {
			t.Fatalf("%s: body trace_id does not match header %q:\n%s", name, id, rec.Body.String())
		}
		if bytes.Contains(stripped(rec.Body.Bytes()), []byte("trace_id")) {
			t.Fatalf("%s: StripTraceID left a trace_id behind:\n%s", name, stripped(rec.Body.Bytes()))
		}
	}
	if ok.Header().Get(TraceHeader) == bad.Header().Get(TraceHeader) {
		t.Fatal("two requests share a trace ID")
	}
}

// TestDebugTraceTimeline pins the acceptance criterion: fetching a
// delivered request's trace by ID returns its per-stage timeline with
// queue-wait and planner execution as separate spans, plus the
// admission-gate verdicts in pipeline order.
func TestDebugTraceTimeline(t *testing.T) {
	g, err := New(quickConfig(73))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	rec := post(g, graphBody(t, userNet(1), 0.35, ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get(TraceHeader)
	d := getDump(t, g, "/debug/trace?id="+id)
	if len(d.Traces) != 1 {
		t.Fatalf("lookup by id returned %d traces, want 1", len(d.Traces))
	}
	v := d.Traces[0]
	if v.ID != id || !v.Done || v.Status != http.StatusOK {
		t.Fatalf("trace %+v, want id %s done with status 200", v, id)
	}
	for _, stage := range []string{
		stageDecode, stageDrain, stageQuarantine, stageRoute, stageHealth,
		stageByteCache, stageCoalesce, stageShed, stageEnqueue,
		stageQueueWait, stageExec, stageDeliver,
	} {
		if !hasStage(v, stage) {
			t.Fatalf("trace missing %q span; have %v", stage, stages(v))
		}
	}
	// Queue wait and execution are separate, correctly ordered windows.
	var wait, exec *trace.Span
	for i := range v.Spans {
		switch v.Spans[i].Stage {
		case stageQueueWait:
			wait = &v.Spans[i]
		case stageExec:
			exec = &v.Spans[i]
		}
	}
	if wait.StartMs > exec.StartMs {
		t.Fatalf("queue_wait starts at %vms after exec at %vms", wait.StartMs, exec.StartMs)
	}
	if v.DurMs <= 0 {
		t.Fatalf("completed trace has non-positive duration %v", v.DurMs)
	}

	// A byte-cache hit records the hit verdict instead of executing.
	rec2 := post(g, graphBody(t, userNet(1), 0.35, ""))
	d2 := getDump(t, g, "/debug/trace?id="+rec2.Header().Get(TraceHeader))
	if len(d2.Traces) != 1 {
		t.Fatalf("cache-hit trace lookup returned %d traces", len(d2.Traces))
	}
	hit := d2.Traces[0]
	var bc *trace.Span
	for i := range hit.Spans {
		if hit.Spans[i].Stage == stageByteCache {
			bc = &hit.Spans[i]
		}
	}
	if bc == nil || bc.Verdict != "hit" {
		t.Fatalf("cache-hit trace bytecache span %+v, want verdict hit; have %v", bc, stages(hit))
	}
	if hasStage(hit, stageExec) {
		t.Fatalf("cache-hit trace has an exec span: %v", stages(hit))
	}
}

// TestDebugTraceFilters pins the query vocabulary: device, status,
// min_ms and limit each narrow the dump, and a bad value is a 400.
func TestDebugTraceFilters(t *testing.T) {
	g, err := New(quickConfig(79))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	if rec := post(g, graphBody(t, userNet(0), 0.35, `,"target":"sim-xavier"`)); rec.Code != http.StatusOK {
		t.Fatalf("seed request: %d", rec.Code)
	}
	if rec := post(g, `{"deadline_ms":1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("refused request: %d", rec.Code)
	}

	if d := getDump(t, g, "/debug/trace"); len(d.Traces) != 2 {
		t.Fatalf("unfiltered dump has %d traces, want 2", len(d.Traces))
	}
	if d := getDump(t, g, "/debug/trace?device=sim-xavier"); len(d.Traces) != 1 || d.Traces[0].Device != "sim-xavier" {
		t.Fatalf("device filter returned %+v", d.Traces)
	}
	if d := getDump(t, g, "/debug/trace?status=400"); len(d.Traces) != 1 || d.Traces[0].Status != 400 {
		t.Fatalf("status filter returned %+v", d.Traces)
	}
	if d := getDump(t, g, "/debug/trace?min_ms=1e12"); len(d.Traces) != 0 {
		t.Fatalf("absurd min_ms still returned %d traces", len(d.Traces))
	}
	if d := getDump(t, g, "/debug/trace?limit=1"); len(d.Traces) != 1 || d.Traces[0].Status != 400 {
		t.Fatalf("limit=1 did not keep only the newest trace: %+v", d.Traces)
	}
	for _, q := range []string{"?min_ms=x", "?status=x", "?limit=-1"} {
		if rec := get(g, "/debug/trace"+q); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, rec.Code)
		}
	}
}

// TestDebugRequestsShowsInflight pins the live table: while a request
// is wedged inside a planner pass it appears at /debug/requests with
// its spans so far, and disappears once delivered.
func TestDebugRequestsShowsInflight(t *testing.T) {
	cfg := quickConfig(83)
	cfg.Workers = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var once sync.Once
	g.testHookBatch = func(string, int) {
		once.Do(func() { entered <- struct{}{}; <-gate })
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- post(g, graphBody(t, userNet(2), 0.35, "")) }()
	<-entered

	d := getDump(t, g, "/debug/requests")
	if len(d.Requests) != 1 {
		t.Fatalf("in-flight dump has %d requests, want 1", len(d.Requests))
	}
	v := d.Requests[0]
	if v.Done {
		t.Fatalf("in-flight trace claims done: %+v", v)
	}
	if !traceIDFormat.MatchString(v.ID) {
		t.Fatalf("in-flight trace ID %q", v.ID)
	}
	if !hasStage(v, stageEnqueue) {
		t.Fatalf("in-flight trace missing enqueue span: %v", stages(v))
	}
	if v.DurMs <= 0 {
		t.Fatalf("live view elapsed %v, want > 0", v.DurMs)
	}

	close(gate)
	rec := <-done
	if rec.Code != http.StatusOK {
		t.Fatalf("released request: %d", rec.Code)
	}
	if d := getDump(t, g, "/debug/requests"); len(d.Requests) != 0 {
		t.Fatalf("delivered request still live: %+v", d.Requests)
	}
	// And its completed trace landed in the ring.
	if d := getDump(t, g, "/debug/trace?id="+rec.Header().Get(TraceHeader)); len(d.Traces) != 1 {
		t.Fatal("delivered request's trace missing from the ring")
	}
}

// TestSlowTraceLogging pins the slow-request log line: a request over
// Config.SlowTraceMs emits one structured warning with the trace ID,
// per-stage durations and the threshold, and bumps the counter; with
// the threshold at 0 nothing is logged.
func TestSlowTraceLogging(t *testing.T) {
	var buf bytes.Buffer
	mu := &sync.Mutex{}
	cfg := quickConfig(89)
	cfg.SlowTraceMs = 1e-9 // every request is slow
	cfg.SlowLog = slog.New(slog.NewJSONHandler(&lockedWriter{mu: mu, w: &buf}, nil))
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	rec := post(g, graphBody(t, userNet(3), 0.35, ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("slow log is not one JSON line: %v:\n%s", err, line)
	}
	if entry["msg"] != "slow request" || entry["trace_id"] != rec.Header().Get(TraceHeader) {
		t.Fatalf("slow log entry %v", entry)
	}
	if _, ok := entry["stages"].(map[string]any); !ok {
		t.Fatalf("slow log has no stages group: %v", entry)
	}
	if entry["threshold_ms"].(float64) != cfg.SlowTraceMs {
		t.Fatalf("threshold_ms %v", entry["threshold_ms"])
	}
	if g.slowTraces.Value() != 1 {
		t.Fatalf("slow_traces_total = %d, want 1", g.slowTraces.Value())
	}
	if !strings.Contains(get(g, "/metrics").Body.String(), "netcut_gateway_slow_traces_total 1\n") {
		t.Fatal("slow_traces_total missing from /metrics")
	}

	// Threshold 0 disables the log entirely.
	g2, err := New(quickConfig(89))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g2)
	mu.Lock()
	buf.Reset()
	mu.Unlock()
	post(g2, graphBody(t, userNet(3), 0.35, ""))
	mu.Lock()
	defer mu.Unlock()
	if buf.Len() != 0 {
		t.Fatalf("SlowTraceMs=0 still logged: %s", buf.String())
	}
}

// lockedWriter serialises slog output so the test can read the buffer
// without racing the handler.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestTraceRingDisabled pins the off switch: a negative TraceRingCap
// disables the completed-trace ring, /debug/trace refuses with 404,
// and requests still serve (tracing itself stays on for /metrics and
// the header).
func TestTraceRingDisabled(t *testing.T) {
	cfg := quickConfig(97)
	cfg.TraceRingCap = -1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	rec := post(g, graphBody(t, userNet(0), 0.35, ""))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !traceIDFormat.MatchString(rec.Header().Get(TraceHeader)) {
		t.Fatal("ring off must not disable trace IDs")
	}
	dump := get(g, "/debug/trace")
	if dump.Code != http.StatusNotFound {
		t.Fatalf("/debug/trace with ring disabled: %d", dump.Code)
	}
	if !strings.Contains(dump.Body.String(), "trace_ring_disabled") {
		t.Fatalf("404 body %s", dump.Body.String())
	}
}

// TestDebugContentTypes pins the explicit Content-Type on every
// observability surface: Prometheus text on /metrics, JSON on the
// debug endpoints.
func TestDebugContentTypes(t *testing.T) {
	g, err := New(quickConfig(101))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	for path, want := range map[string]string{
		"/metrics":        "text/plain; version=0.0.4; charset=utf-8",
		"/debug/stats":    "application/json",
		"/debug/trace":    "application/json",
		"/debug/requests": "application/json",
	} {
		rec := get(g, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != want {
			t.Fatalf("%s: Content-Type %q, want %q", path, ct, want)
		}
	}
}

// TestPprofGated pins the satellite: net/http/pprof mounts only when
// Config.Pprof is set — off by default, it 404s.
func TestPprofGated(t *testing.T) {
	off, err := New(quickConfig(103))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, off)
	if rec := get(off, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", rec.Code)
	}

	cfg := quickConfig(103)
	cfg.Pprof = true
	on, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, on)
	rec := get(on, "/debug/pprof/")
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof on: status %d", rec.Code)
	}
	if rec = get(on, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", rec.Code)
	}
}

// TestStageHistogramsInMetrics pins the netcut_gateway_stage_ms
// families: after one delivered request the timed stages appear with
// the device label (queue_wait and exec as distinct series), and the
// ring/live gauges are exported.
func TestStageHistogramsInMetrics(t *testing.T) {
	g, err := New(quickConfig(107))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	if rec := post(g, graphBody(t, userNet(4), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	out := get(g, "/metrics").Body.String()
	for _, stage := range timedStages {
		// One delivered request: every timed stage observed exactly once,
		// all attributed to the resolved device.
		want := `netcut_gateway_stage_ms_count{stage="` + stage + `",device="sim-xavier"} 1`
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	for _, fam := range []string{"netcut_gateway_trace_ring_entries 1", "netcut_gateway_traces_inflight 0"} {
		if !strings.Contains(out, fam) {
			t.Fatalf("/metrics missing %q", fam)
		}
	}
}

// TestInjectAndStripTraceID pins the splice round-trip on every body
// shape the gateway writes (plus the degenerate ones it never does).
func TestInjectAndStripTraceID(t *testing.T) {
	const id = "0123456789abcdef"
	cases := []struct{ in, want string }{
		{"{\"a\":1}\n", "{\"a\":1,\"trace_id\":\"" + id + "\"}\n"},
		{"{}\n", "{\"trace_id\":\"" + id + "\"}\n"},
		{"{\"nested\":{\"b\":2}}\n", "{\"nested\":{\"b\":2},\"trace_id\":\"" + id + "\"}\n"},
		{"not json", "not json"}, // no closing brace: left alone
	}
	for _, c := range cases {
		got := injectTraceID([]byte(c.in), id)
		if string(got) != c.want {
			t.Fatalf("inject(%q) = %q, want %q", c.in, got, c.want)
		}
		if back := StripTraceID(got); string(back) != c.in {
			t.Fatalf("strip(inject(%q)) = %q", c.in, back)
		}
	}
	// Strip is a no-op on bodies without the field.
	if got := StripTraceID([]byte("{\"a\":1}\n")); string(got) != "{\"a\":1}\n" {
		t.Fatalf("strip without field = %q", got)
	}
}

// TestTraceIDsDeterministicSequence pins the acceptance criterion that
// trace IDs are deterministic in format and, for a fixed seed and
// serial admission order, in value: two gateways with the same seed
// hand out the same ID sequence.
func TestTraceIDsDeterministicSequence(t *testing.T) {
	ids := func() []string {
		g, err := New(quickConfig(109))
		if err != nil {
			t.Fatal(err)
		}
		defer mustShutdown(t, g)
		var out []string
		for i := 0; i < 3; i++ {
			rec := post(g, graphBody(t, userNet(i), 0.35, ""))
			out = append(out, rec.Header().Get(TraceHeader))
		}
		return out
	}
	a, b := ids(), ids()
	for i := range a {
		if !traceIDFormat.MatchString(a[i]) {
			t.Fatalf("id %q", a[i])
		}
		if a[i] != b[i] {
			t.Fatalf("serial ID sequence not deterministic: %v vs %v", a, b)
		}
	}
	if a[0] == a[1] || a[1] == a[2] {
		t.Fatalf("duplicate IDs in sequence %v", a)
	}
}

// TestCancelledRequestTraced pins the 499 convention: a client that
// disconnects while queued leaves a completed trace with status 499 in
// the ring, even though no response was written.
func TestCancelledRequestTraced(t *testing.T) {
	cfg := quickConfig(113)
	cfg.Workers = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var once sync.Once
	g.testHookBatch = func(string, int) {
		once.Do(func() { entered <- struct{}{}; <-gate })
	}
	// Wedge the worker with a sacrificial request...
	go post(g, graphBody(t, userNet(0), 0.35, ""))
	<-entered
	// ...then cancel a second, queued request before it can run.
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/plan",
		strings.NewReader(graphBody(t, userNet(1), 0.35, ""))).WithContext(ctx)
	recCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		g.Handler().ServeHTTP(rec, req)
		recCh <- rec
	}()
	waitFor(t, "both requests in flight", func() bool {
		return len(getDump(t, g, "/debug/requests").Requests) == 2
	})
	cancel()
	<-recCh
	close(gate)

	waitFor(t, "a 499 trace in the ring", func() bool {
		return len(getDump(t, g, "/debug/trace?status=499").Traces) == 1
	})
}
