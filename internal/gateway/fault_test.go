package gateway

// Fault-containment suite: every test here drives the gateway through
// the deterministic faultinject harness (run in CI under -race as a
// dedicated job). The tests arm compiled-in fault points by key and
// assert the containment contract: structured errors for exactly the
// faulting request, byte-identical responses for everyone else, bounded
// blast radius (quarantine, per-device health), zero planner work for
// cancelled calls, and crash-safe persistence with .bak fallback.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netcut/internal/device"
	"netcut/internal/faultinject"
	"netcut/internal/graph"
	"netcut/internal/serve"
	"netcut/internal/zoo"
)

// poisonNet is userNet(i) renamed so the TrimPanic fault point — keyed
// by graph name — matches it and nothing else.
func poisonNet(i int, name string) *graph.Graph {
	g := userNet(i)
	g.Name = name
	return g
}

// errCode decodes the structured error body's code field.
func errCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("decoding error body %q: %v", rec.Body.String(), err)
	}
	return e.Code
}

// wantRetryAfter derives the only header value the body's
// retry_after_ms hint is allowed to round to: whole seconds, ceiling,
// never below 1 — the same clamp the gateway applies. Fails if the body
// carries no positive hint.
func wantRetryAfter(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("decoding error body %q: %v", rec.Body.String(), err)
	}
	if e.RetryAfterMs <= 0 {
		t.Fatalf("error body %q carries no retry_after_ms hint", rec.Body.String())
	}
	s := int(math.Ceil(e.RetryAfterMs / 1000))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFaultPanicIsolation pins the tentpole acceptance criterion: a
// request whose planning execution panics deep in the trim layer gets a
// structured 500, while requests served concurrently on the same
// device return bodies byte-identical to a solo planner's — the panic
// is contained to the request that caused it, and the lane keeps
// serving afterwards.
func TestFaultPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	xavier := device.Xavier()
	cfg := quickConfig(9)
	cfg.Devices = []device.Config{xavier}
	cfg.UnhealthyAfter = 100  // health is TestFaultUnhealthyDevice's subject
	cfg.QuarantineAfter = 100 // quarantine is TestFaultQuarantine's subject
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	solo, err := serve.New(serve.Config{Seed: 9, Protocol: quickProto, Device: &xavier})
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.TrimPanic, "poison-iso", 0)
	poison := poisonNet(5, "poison-iso")

	const innocents = 4
	type result struct {
		i   int
		rec *httptest.ResponseRecorder
	}
	results := make(chan result, innocents+1)
	go func() { results <- result{-1, post(g, graphBody(t, poison, 0.35, ""))} }()
	for i := 0; i < innocents; i++ {
		go func(i int) { results <- result{i, post(g, graphBody(t, userNet(i), 0.35, ""))} }(i)
	}
	for n := 0; n < innocents+1; n++ {
		r := <-results
		if r.i < 0 {
			if r.rec.Code != http.StatusInternalServerError || errCode(t, r.rec) != "internal_panic" {
				t.Fatalf("poison request: status %d code %q body %s",
					r.rec.Code, errCode(t, r.rec), r.rec.Body.String())
			}
			continue
		}
		if r.rec.Code != http.StatusOK {
			t.Fatalf("innocent %d: status %d: %s", r.i, r.rec.Code, r.rec.Body.String())
		}
		want, err := solo.Select(serve.Request{Graph: userNet(r.i), DeadlineMs: 0.35})
		if err != nil {
			t.Fatal(err)
		}
		if string(stripped(r.rec.Body.Bytes())) != string(EncodeResponse(want)) {
			t.Fatalf("innocent %d served next to a panic diverges from solo planner:\n gw  %s solo %s",
				r.i, r.rec.Body.String(), EncodeResponse(want))
		}
	}
	if got := g.panicsByDev["sim-xavier"].Value(); got < 1 {
		t.Fatalf("netcut_gateway_panics_total{sim-xavier} = %d, want >= 1", got)
	}
	// The lane survived: a fresh request plans normally.
	if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatalf("post-panic request: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestFaultQuarantine pins the bounded-LRU quarantine: after
// QuarantineAfter panics from one request identity, further spellings
// of it are rejected at admission — structured 500, no worker touched,
// zero additional planner executions.
func TestFaultQuarantine(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(10)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.UnhealthyAfter = -1 // keep the device admitting so panics repeat
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	faultinject.Arm(faultinject.TrimPanic, "poison-quar", 0)
	body := graphBody(t, poisonNet(6, "poison-quar"), 0.35, "")

	for i := 0; i < DefaultQuarantineAfter; i++ {
		if rec := post(g, body); rec.Code != http.StatusInternalServerError || errCode(t, rec) != "internal_panic" {
			t.Fatalf("panic %d: status %d code %q", i, rec.Code, errCode(t, rec))
		}
	}
	execs := g.Planner().Executions()
	rec := post(g, body)
	if rec.Code != http.StatusInternalServerError || errCode(t, rec) != "quarantined" {
		t.Fatalf("quarantined request: status %d code %q body %s", rec.Code, errCode(t, rec), rec.Body.String())
	}
	if got := g.Planner().Executions(); got != execs {
		t.Fatalf("quarantined request consumed planner work: executions %d -> %d", execs, got)
	}
	if got := g.quarantined.Value(); got != 1 {
		t.Fatalf("netcut_gateway_quarantined_total = %d, want 1", got)
	}
	// Other identities still plan: the quarantine is per key, not per lane.
	if rec := post(g, graphBody(t, userNet(1), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatalf("innocent after quarantine: status %d", rec.Code)
	}
}

// TestFaultWatchdogAbandonsStuckExecution pins the execution watchdog:
// a pass stuck past ExecTimeout is abandoned with a 504 + Retry-After,
// counted per device, and its coalesce entry dies with it — the same
// request retried afterwards gets a fresh, successful execution (the
// abandoned outcome is never cached).
func TestFaultWatchdogAbandonsStuckExecution(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(11)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.ExecTimeout = time.Second
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	faultinject.ArmDelay(faultinject.ExecDelay, "user-net-3", 1, 10*time.Second)
	body := graphBody(t, userNet(3), 0.35, "")

	rec := post(g, body)
	if rec.Code != http.StatusGatewayTimeout || errCode(t, rec) != "watchdog_timeout" {
		t.Fatalf("stuck request: status %d code %q body %s", rec.Code, errCode(t, rec), rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("watchdog 504 carries no Retry-After header")
	}
	if got := g.abandonedByDev["sim-xavier"].Value(); got != 1 {
		t.Fatalf("netcut_gateway_watchdog_abandoned_total{sim-xavier} = %d, want 1", got)
	}
	// The delay rule is consumed: the retry executes fresh and succeeds,
	// proving the 504 was delivered-and-forgotten, not cached.
	if rec := post(g, body); rec.Code != http.StatusOK {
		t.Fatalf("retry after abandonment: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestFaultCancelledQueuedRequestNoExecution pins the cancellation
// acceptance criterion: a queued call whose only waiter disconnects
// before a worker reaches it is cancelled without ever incrementing
// netcut_planner_executions_total.
func TestFaultCancelledQueuedRequestNoExecution(t *testing.T) {
	cfg := quickConfig(12)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.Workers = 1 // one lane, one worker: the hook below wedges all execution
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	var releaseOnce atomic.Bool
	g.testHookBatch = func(string, int) {
		entered <- struct{}{}
		if !releaseOnce.Load() {
			<-release
		}
	}

	// Request A occupies the lone worker inside the hook, before any
	// planner work happens.
	aDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { aDone <- post(g, graphBody(t, userNet(0), 0.35, "")) }()
	<-entered

	// Request B is admitted and queued behind A, then its only client
	// disconnects while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	reqB := httptest.NewRequest(http.MethodPost, "/v1/plan",
		strings.NewReader(graphBody(t, userNet(1), 0.35, ""))).WithContext(ctx)
	bDone := make(chan struct{})
	go func() {
		g.Handler().ServeHTTP(httptest.NewRecorder(), reqB)
		close(bDone)
	}()
	waitFor(t, "request B to be admitted", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.inflight) == 2
	})
	cancel()
	<-bDone // the handler has decremented B's waiter count

	if got := g.Planner().Executions(); got != 0 {
		t.Fatalf("planner executed %d times before the worker was released", got)
	}
	releaseOnce.Store(true)
	close(release)
	if rec := <-aDone; rec.Code != http.StatusOK {
		t.Fatalf("request A: status %d: %s", rec.Code, rec.Body.String())
	}
	waitFor(t, "request B to be cancelled", func() bool { return g.cancelled.Value() == 1 })
	if got := g.Planner().Executions(); got != 1 {
		t.Fatalf("planner executions = %d after cancellation, want 1 (request A only)", got)
	}
}

// TestFaultCancelledLatencyRecorded pins the telemetry fix: a request
// whose client disconnects before delivery must land in the dedicated
// netcut_gateway_request_cancelled_lat_ms series — before the fix the
// handler returned without observing anything, so cancellations were
// invisible in latency telemetry — and must stay out of
// netcut_gateway_request_ms, whose quantiles feed budget shedding.
func TestFaultCancelledLatencyRecorded(t *testing.T) {
	cfg := quickConfig(13)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.Workers = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	var releaseOnce atomic.Bool
	g.testHookBatch = func(string, int) {
		entered <- struct{}{}
		if !releaseOnce.Load() {
			<-release
		}
	}

	aDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { aDone <- post(g, graphBody(t, userNet(0), 0.35, "")) }()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	reqB := httptest.NewRequest(http.MethodPost, "/v1/plan",
		strings.NewReader(graphBody(t, userNet(1), 0.35, ""))).WithContext(ctx)
	bDone := make(chan struct{})
	go func() {
		g.Handler().ServeHTTP(httptest.NewRecorder(), reqB)
		close(bDone)
	}()
	waitFor(t, "request B to be admitted", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.inflight) == 2
	})
	cancel()
	<-bDone // the handler has observed B's fate before returning

	if got := g.cancelledLatMs.Count(); got != 1 {
		t.Fatalf("netcut_gateway_request_cancelled_lat_ms count = %d after disconnect, want 1", got)
	}
	if got := g.requestLatMs.Count(); got != 0 {
		t.Fatalf("netcut_gateway_request_ms count = %d, want 0: cancellations must not skew shed quantiles", got)
	}
	releaseOnce.Store(true)
	close(release)
	if rec := <-aDone; rec.Code != http.StatusOK {
		t.Fatalf("request A: status %d: %s", rec.Code, rec.Body.String())
	}
	if got, want := g.requestLatMs.Count(), uint64(1); got != want {
		t.Fatalf("netcut_gateway_request_ms count = %d after delivery, want %d (request A only)", got, want)
	}
	if got := g.cancelledLatMs.Count(); got != 1 {
		t.Fatalf("netcut_gateway_request_cancelled_lat_ms count = %d after delivery, want still 1", got)
	}
}

// TestFaultUnhealthyDeviceSkippedAndRecovers pins per-device health:
// consecutive panics trip a device unhealthy — "auto" routes around it,
// explicit requests get 503 + Retry-After, GET /v1/devices reports it —
// and the background probe restores it once the fault clears.
func TestFaultUnhealthyDeviceSkippedAndRecovers(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(13)
	cfg.Devices = []device.Config{device.Xavier(), device.EdgeCPU()}
	cfg.QuarantineAfter = -1 // distinct poisons each panic once; keep admission open
	cfg.ProbeInterval = 20 * time.Millisecond
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	// The poison graphs panic on any device; the probe's zoo plan
	// (zoo.Names[0]) is armed too, so the device stays down until the
	// harness resets.
	faultinject.Arm(faultinject.TrimPanic, "poison-health", 0)
	faultinject.Arm(faultinject.TrimPanic, zoo.Names[0], 0)

	for i := 0; i < DefaultUnhealthyAfter; i++ {
		body := graphBody(t, poisonNet(i, "poison-health-"+string(rune('a'+i))), 0.35, `,"target":"sim-xavier"`)
		if rec := post(g, body); rec.Code != http.StatusInternalServerError {
			t.Fatalf("poison %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	// Tripped: explicit requests are refused with a retryable 503...
	rec := post(g, graphBody(t, userNet(0), 0.35, `,"target":"sim-xavier"`))
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "device_unhealthy" {
		t.Fatalf("explicit request on unhealthy device: status %d code %q", rec.Code, errCode(t, rec))
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("unhealthy 503 carries no Retry-After header")
	}
	// ...auto routing skips the tripped device...
	rec = post(g, graphBody(t, userNet(1), 0.35, `,"target":"auto"`))
	if rec.Code != http.StatusOK {
		t.Fatalf("auto request with one unhealthy device: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp PlanResponseWire
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Device != "sim-edge-cpu" {
		t.Fatalf("auto routed to %q, want the healthy sim-edge-cpu", resp.Device)
	}
	// ...and the fleet view reports the state.
	devs := struct{ Devices []DeviceWire }{}
	if err := json.Unmarshal(get(g, "/v1/devices").Body.Bytes(), &devs); err != nil {
		t.Fatal(err)
	}
	for _, d := range devs.Devices {
		if want := d.Name != "sim-xavier"; d.Healthy != want {
			t.Fatalf("device %s healthy=%v, want %v", d.Name, d.Healthy, want)
		}
	}

	// Clear the fault: the next probe succeeds and restores the device.
	faultinject.Reset()
	waitFor(t, "probe to restore sim-xavier", func() bool { return g.deviceEligible("sim-xavier") })
	if g.probesByDev["sim-xavier"].Value() == 0 {
		t.Fatal("device recovered without any probe recorded")
	}
	if rec := post(g, graphBody(t, userNet(0), 0.35, `,"target":"sim-xavier"`)); rec.Code != http.StatusOK {
		t.Fatalf("explicit request after recovery: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestFaultSnapshotWriteAndBakFallback pins crash-safe persistence: a
// failed snapshot write leaves the previous generation (and no temp
// file) in place, a corrupted primary is rejected on restore, and
// LoadStateFile falls back to the .bak previous-good generation.
func TestFaultSnapshotWriteAndBakFallback(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	cfg := quickConfig(14)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.StatePath = path
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	if _, err := g.SaveStateFile(); err != nil {
		t.Fatalf("good save: %v", err)
	}

	// Injected write error: the save fails as a branchable Injected
	// error, the temp file is cleaned up, the good generation stands.
	faultinject.Arm(faultinject.SnapshotWrite, path, 1)
	if _, err := g.SaveStateFile(); err == nil {
		t.Fatal("snapshot write fault did not surface")
	} else {
		var inj faultinject.Injected
		if !errors.As(err, &inj) || inj.Point != faultinject.SnapshotWrite {
			t.Fatalf("save error %v is not the injected fault", err)
		}
	}
	assertNoTempFiles(t, dir)

	// Corrupted save: the write "succeeds" but the primary is torn; the
	// rotation has preserved the good generation as .bak.
	if rec := post(g, graphBody(t, userNet(1), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	faultinject.Arm(faultinject.StateCorrupt, path, 1)
	if _, err := g.SaveStateFile(); err != nil {
		t.Fatalf("corrupting save: %v", err)
	}

	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g2)
	used, err := g2.LoadStateFile()
	if err != nil {
		t.Fatalf("restore with corrupt primary: %v", err)
	}
	if used != path+".bak" {
		t.Fatalf("restored from %q, want the .bak fallback", used)
	}
	if g2.restoreFallbck.Value() != 1 {
		t.Fatalf("netcut_gateway_state_restore_fallback_total = %d, want 1", g2.restoreFallbck.Value())
	}
	if g2.Planner().Stats().Measurements.Len == 0 {
		t.Fatal("fallback restore populated no measurement cache")
	}
}

// TestFaultAutosaveLoopAndDrain pins the autosave loop and its drain
// ordering: snapshots accumulate on the jittered cadence, Shutdown
// stops the loop before returning, no temp file survives the drain, and
// the surviving snapshot restores cleanly.
func TestFaultAutosaveLoopAndDrain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	cfg := quickConfig(15)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.StatePath = path
	cfg.AutosaveInterval = 5 * time.Millisecond
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	// Two generations, so both the primary and .bak exist.
	waitFor(t, "two autosaves", func() bool { return g.autosaves.Value() >= 2 })
	mustShutdown(t, g)

	saves := g.autosaves.Value()
	time.Sleep(30 * time.Millisecond)
	if got := g.autosaves.Value(); got != saves {
		t.Fatalf("autosave loop still running after drain: %d -> %d", saves, got)
	}
	assertNoTempFiles(t, dir)

	cfg2 := cfg
	cfg2.AutosaveInterval = 0
	g2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g2)
	if used, err := g2.LoadStateFile(); err != nil || used != path {
		t.Fatalf("restore after drained autosave: path %q err %v", used, err)
	}
}

// TestFaultDrainRacesPrewarm pins the drain-vs-prewarm race: a prewarm
// sweep in flight when Shutdown begins winds down before the drain
// completes, and a prewarm started after the drain is a closed no-op.
func TestFaultDrainRacesPrewarm(t *testing.T) {
	cfg := quickConfig(16)
	cfg.Devices = []device.Config{device.Xavier(), device.EdgeCPU()}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := g.Prewarm()
	mustShutdown(t, g) // Shutdown waits for background work: no timeout means no leak
	select {
	case <-done:
	default:
		t.Fatal("prewarm channel still open after a completed drain")
	}
	select {
	case <-g.Prewarm():
	case <-time.After(time.Second):
		t.Fatal("prewarm started after drain did not close immediately")
	}
}

// TestFaultRetryAfterEveryRejection audits the satellite contract:
// every 429/503 rejection path carries a Retry-After header, and the
// header is the body's retry_after_ms hint rounded up to whole seconds
// (clamped to at least 1) — not a hardcoded constant.
func TestFaultRetryAfterEveryRejection(t *testing.T) {
	defer faultinject.Reset()

	// Path 1: draining. The header must reflect the remaining drain
	// budget, so a 7-second DrainTimeout with an instant drain reads
	// back as "7" — the old code said "1" here no matter the budget.
	cfg1 := quickConfig(17)
	cfg1.DrainTimeout = 7 * time.Second
	g1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	// Shutdown with no context deadline so DrainTimeout is the budget
	// (a context deadline would win). The drain is instant: no inflight.
	if err := g1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := post(g1, `{"network":"ResNet-50"}`)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") != "7" {
		t.Fatalf("draining: status %d retry-after %q, want 503 with %q",
			rec.Code, rec.Header().Get("Retry-After"), "7")
	}
	if got := wantRetryAfter(t, rec); got != "7" {
		t.Fatalf("draining body hint rounds to %q, want %q", got, "7")
	}

	// Paths 2+3: queue_full and budget_too_small on one gateway.
	cfg := quickConfig(18)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.ShedMinSamples = 1
	// The tiny-budget probe repeats the warm-up's response identity
	// (budget is not part of it), so the byte cache would answer it
	// with a 200 before the shed predicate ever ran.
	cfg.ByteCacheCap = -1
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g2)
	// Warm the histogram so budget shedding activates.
	for i := 0; i < 2; i++ {
		if rec := post(g2, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
			t.Fatal(rec.Body.String())
		}
	}
	rec = post(g2, graphBody(t, userNet(0), 0.35, `,"budget_ms":0.000001`))
	if rec.Code != http.StatusTooManyRequests || errCode(t, rec) != "budget_too_small" ||
		rec.Header().Get("Retry-After") != wantRetryAfter(t, rec) {
		t.Fatalf("budget shed: status %d code %q retry-after %q, want hint %q",
			rec.Code, errCode(t, rec), rec.Header().Get("Retry-After"), wantRetryAfter(t, rec))
	}
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	var releaseOnce atomic.Bool
	g2.testHookBatch = func(string, int) {
		entered <- struct{}{}
		if !releaseOnce.Load() {
			<-release
		}
	}
	aDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { aDone <- post(g2, graphBody(t, userNet(1), 0.35, "")) }()
	<-entered // the worker is wedged; the 1-slot queue is empty
	bDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { bDone <- post(g2, graphBody(t, userNet(2), 0.35, "")) }()
	waitFor(t, "request B to occupy the queue", func() bool {
		g2.mu.Lock()
		defer g2.mu.Unlock()
		return len(g2.inflight) == 2
	})
	// No executions can complete while the worker is wedged, so the
	// p99 read here is exactly the one the rejection's hint will use.
	p2, err := g2.pool.Planner("sim-xavier")
	if err != nil {
		t.Fatal(err)
	}
	p99, _ := p2.WarmQuantile(0.99)
	rec = post(g2, graphBody(t, userNet(3), 0.35, ""))
	if rec.Code != http.StatusTooManyRequests || errCode(t, rec) != "queue_full" ||
		rec.Header().Get("Retry-After") != wantRetryAfter(t, rec) {
		t.Fatalf("queue full: status %d code %q retry-after %q, want hint %q",
			rec.Code, errCode(t, rec), rec.Header().Get("Retry-After"), wantRetryAfter(t, rec))
	}
	// The hint must be backlog-honest: one request (B) queued behind
	// one worker is one execution wave of (p99 + window) — and the
	// arithmetic must be the wave product, not a flat per-request
	// estimate.
	var qf ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &qf); err != nil {
		t.Fatal(err)
	}
	if want := math.Max(laneWaves(1, g2.laneWorkers)*(p99+g2.windowMs()), 1); qf.RetryAfterMs != want {
		t.Fatalf("queue-full hint %v, want ceil(backlog/workers)*(p99+window) = %v", qf.RetryAfterMs, want)
	}
	releaseOnce.Store(true)
	close(release)
	<-aDone
	<-bDone

	// Paths 4+5: device_unhealthy and no_healthy_device.
	cfg3 := quickConfig(19)
	cfg3.Devices = []device.Config{device.Xavier()}
	cfg3.UnhealthyAfter = 1
	cfg3.ProbeInterval = time.Hour // no recovery during the test
	g3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g3)
	faultinject.Arm(faultinject.TrimPanic, "poison-retry", 1)
	if rec := post(g3, graphBody(t, poisonNet(7, "poison-retry"), 0.35, "")); rec.Code != http.StatusInternalServerError {
		t.Fatal(rec.Body.String())
	}
	// Retry hints for unhealthy devices derive from the probe interval:
	// one hour is exactly 3600 seconds, so the header must say so.
	rec = post(g3, graphBody(t, userNet(0), 0.35, `,"target":"sim-xavier"`))
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "device_unhealthy" ||
		rec.Header().Get("Retry-After") != "3600" {
		t.Fatalf("device_unhealthy: status %d code %q retry-after %q, want %q",
			rec.Code, errCode(t, rec), rec.Header().Get("Retry-After"), "3600")
	}
	rec = post(g3, graphBody(t, userNet(0), 0.35, `,"target":"auto"`))
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "no_healthy_device" ||
		rec.Header().Get("Retry-After") != "3600" {
		t.Fatalf("no_healthy_device: status %d code %q retry-after %q, want %q",
			rec.Code, errCode(t, rec), rec.Header().Get("Retry-After"), "3600")
	}
}

// TestFaultReadyz pins readiness as distinct from liveness: not ready
// before MarkReady, ready after, not ready again while draining — with
// /healthz staying 200 throughout.
func TestFaultReadyz(t *testing.T) {
	cfg := quickConfig(20)
	cfg.Devices = []device.Config{device.Xavier()}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := get(g, "/readyz"); rec.Code != http.StatusServiceUnavailable ||
		rec.Header().Get("Retry-After") == "" {
		t.Fatalf("pre-restore readyz: status %d retry-after %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if rec := get(g, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	g.MarkReady()
	if rec := get(g, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("post-MarkReady readyz: status %d", rec.Code)
	}
	mustShutdown(t, g)
	if rec := get(g, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d", rec.Code)
	}
	if rec := get(g, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("draining healthz: status %d (liveness must outlast readiness)", rec.Code)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	tmp, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}
}
