// Package gateway is the deadline-aware serving layer of NetCut: a
// JSON-over-HTTP planning API on top of a device-keyed
// serve.PlannerPool that routes, admits, coalesces, batches and —
// when the client's own latency budget cannot be met on any target —
// sheds requests, with a telemetry registry exposed in Prometheus text
// format at /metrics and as JSON at /debug/stats.
//
// Request flow, in order:
//
//  1. Decode: the body is size-limited (Config.MaxBodyBytes) and the
//     decoded graph stops at graph.Validate — malformed or oversized
//     input is a structured 400/413, never a panic or an OOM.
//  2. Route: the request's target ("" = default device, "auto" =
//     fastest device whose estimated warm-path latency fits the
//     budget, or a registered name from GET /v1/devices) resolves to
//     one device's planner; an unregistered name is a 400.
//  3. Byte cache: a request whose fully resolved identity (device +
//     calibration, name + structure, deadline, estimator) already has a
//     delivered body in the bounded rendered-response cache
//     (Config.ByteCacheCap) is answered from those bytes immediately —
//     no lane, no planner pass, no wire-marshal. Hits are transparent
//     (a hit returns exactly what a fresh execution would render) and
//     are counted by netcut_gateway_bytecache_hits_total, never as
//     planner executions.
//  4. Coalesce: requests with identical (device, name, structure,
//     deadline, estimator) share one in-flight planner execution and
//     receive byte-identical response bodies, singleflight-style.
//     Joining an in-flight call consumes no planner work and no queue
//     slot.
//  5. Shed: a would-be leader whose budget_ms cannot cover the
//     resolved target's warm-path p99 — for "auto", any target's — is
//     rejected up front with 429 and a retry hint, as is any arrival
//     finding the admission queue full. Shed requests never consume
//     planner work. (A byte-cache hit is served even to a
//     budget-constrained request: delivering rendered bytes fits any
//     budget, so shedding applies only to requests that would queue
//     for an execution.)
//  6. Batch: admitted leaders sit in their resolved device's bounded
//     lane — one queue plus workers per registered device, so one slow
//     target's cold plan can never head-of-line-block another target's
//     warm traffic — where that lane's workers drain bursts of them,
//     holding the pass open for Config.BatchWindow when staggered
//     arrivals are expected, and group compatible requests (same
//     deadline and estimator; lanes never span devices) into one
//     SelectBatch planner pass. Lane capacities divide the configured
//     QueueDepth/Workers totals evenly across devices (minimum 1
//     each), the same division rule the planner pool applies to its
//     cache caps.
//  7. Drain: Shutdown stops admission (503 + Retry-After derived from
//     the remaining drain budget — byte-cache hits stop too), lets
//     every queued call finish and deliver, then stops every lane's
//     workers and waits for the background loops (autosave, prewarm,
//     probes).
//
// Fault containment & graceful degradation: every planner pass runs
// behind a panic boundary — a panicking request gets a structured 500
// (grouped passes retry solo first, so only the poison request pays),
// counted per device, and identities that panic repeatedly are
// quarantined at admission by a bounded LRU. An optional execution
// watchdog (Config.ExecTimeout) abandons stuck passes with a 504 so one
// wedged request cannot stall a lane. Consecutive containment events
// trip a device unhealthy: "auto" routing skips it, explicit requests
// get 503 + Retry-After, and a background probe plan restores it on
// first success. Queued calls whose waiters all disconnect are
// cancelled before they consume a planner execution. An optional
// autosave loop (Config.AutosaveInterval) snapshots warm state
// crash-safely — atomic rename plus one previous-good ".bak" generation
// that LoadStateFile falls back to — and GET /readyz reports readiness
// (restored, not draining) separately from /healthz liveness. Every
// containment decision is admission policy: it moves or refuses
// executions, never changes what any execution returns.
//
// Overload control & degraded serving: a closed-loop controller
// (Config.OverloadInterval) publishes a load level that
// deterministically sheds optional work — down to serving only
// byte-cache hits and coalesce joins at level 2 — each lane's
// execution parallelism adapts by AIMD, and requests may opt into
// degraded fallback routing with "allow_degraded": true. See the
// package comment in overload.go for the ladder and its signals.
//
// Warm-state persistence: POST /v1/state/save (enabled by
// Config.StatePath) snapshots every planner's caches to disk via
// serve.PlannerPool.SaveState, and LoadState restores a snapshot on
// boot, so a restarted daemon's first requests run on the warm path.
// Prewarm plans the calibrated zoo across the fleet in the background
// to eliminate the remaining cold misses.
//
// Determinism contract: routing, coalescing, batching and shedding
// change which executions happen, where and when — never what any
// execution returns. A coalesced or batched response body is
// byte-identical to the same request served alone through that
// device's serve.Planner, and an auto-routed body to the same request
// naming the resolved device explicitly — pinned by the package tests
// and the GOMAXPROCS determinism guard.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netcut/internal/device"
	"netcut/internal/faultinject"
	"netcut/internal/lru"
	"netcut/internal/serve"
	"netcut/internal/telemetry"
	"netcut/internal/trace"
	"netcut/internal/zoo"
)

// Config parameterizes a Gateway. The zero value serves the full
// device registry with the default planner configuration and the
// documented knob defaults.
type Config struct {
	// Planner is the per-device planner template (seed, protocol,
	// pool-wide cache caps). Its Device field selects a single-target
	// gateway when Devices is empty.
	Planner serve.Config
	// Devices lists the target calibrations this gateway serves, in
	// the order "auto" routing tie-breaks on; the first is the default
	// target. Empty means: Planner.Device alone if set, otherwise the
	// full device registry (device.Profiles, Xavier first).
	Devices []device.Config

	// MaxBodyBytes caps a request body; larger bodies get 413.
	// 0 means DefaultMaxBodyBytes; negative means no limit.
	MaxBodyBytes int64
	// QueueDepth bounds the total admission queue; it is divided evenly
	// across the per-device lanes (minimum 1 each, the pool cache-cap
	// division rule), and arrivals beyond a lane's slice are shed with
	// 429. 0 means DefaultQueueDepth.
	QueueDepth int
	// BatchMax caps how many queued requests one worker drains into a
	// single planner pass. 0 means DefaultBatchMax.
	BatchMax int
	// Workers is the total number of batch workers, divided evenly
	// across the per-device lanes (minimum 1 each) so no device is ever
	// without a worker. 0 means DefaultWorkers.
	Workers int
	// StatePath enables warm-state persistence: POST /v1/state/save
	// atomically writes the pool's snapshot there (and cmd/netserve
	// saves on SIGTERM drain / restores on boot). Empty disables the
	// endpoint.
	StatePath string
	// ShedMinSamples is how many warm executions a target's latency
	// histogram must hold before budget-based shedding (and its warm
	// estimate's participation in "auto" ranking) activates — shedding
	// on a cold estimate would reject half of a fresh server's first
	// clients. 0 means DefaultShedMinSamples.
	ShedMinSamples int
	// ByteCacheCap bounds the rendered-response byte cache: fully
	// delivered 200 bodies, keyed by complete response identity
	// (resolved device + its calibration fingerprint, graph name +
	// structure, deadline, estimator), are served straight from
	// admission — after the drain, quarantine and device-health gates,
	// before queueing — so a repeat request skips its lane, the planner
	// and the wire-marshal. Hits are transparent: responses are pure
	// functions of seed + config, so a hit returns exactly the bytes a
	// fresh execution would render, on or off, at any GOMAXPROCS.
	// 0 means DefaultByteCacheCap; negative disables the cache (tests
	// that exercise the planner's own warm path via repeated requests
	// do this).
	ByteCacheCap int
	// DrainTimeout is the drain budget Shutdown assumes when its
	// context carries no deadline (a context deadline takes
	// precedence), and the basis of the Retry-After hint every
	// drain-time rejection carries: the remaining budget — how long
	// until this listener is gone and a retry lands on a peer — rather
	// than a hardcoded constant. 0 means DefaultDrainTimeout; negative
	// is a configuration error.
	DrainTimeout time.Duration
	// BatchWindow is how long a worker holds a drained burst open for
	// stragglers before executing its planner pass: with socket-
	// staggered bursts, a small window (hundreds of microseconds to a
	// few milliseconds) lets the whole burst coalesce/batch into one
	// pass instead of two or three. 0 (the default) keeps the
	// zero-latency behavior: one cooperative yield, then a
	// non-blocking sweep. Negative is a configuration error.
	BatchWindow time.Duration

	// ExecTimeout is the per-pass execution watchdog: a planner pass
	// still running after this long is abandoned — its calls get a
	// structured 504, the coalesce entries are invalidated and the lane
	// worker moves on, so one stuck request can never wedge a lane. The
	// abandoned goroutine's eventual result is discarded. 0 (the
	// default) disables the watchdog; negative is a configuration
	// error.
	ExecTimeout time.Duration
	// AutosaveInterval enables crash-safe periodic persistence: a
	// background loop snapshots the warm state to StatePath roughly
	// every interval (±10% deterministic jitter, so a fleet of replicas
	// started together doesn't write in lockstep), keeping the previous
	// good snapshot as StatePath+".bak". Requires StatePath; 0 (the
	// default) disables autosaving; negative is a configuration error.
	AutosaveInterval time.Duration
	// UnhealthyAfter is how many consecutive containment events
	// (panics or watchdog abandons) on one device trip it into the
	// unhealthy state, where "auto" routing skips it and explicit
	// requests get 503 + Retry-After until a background probe plan
	// succeeds. 0 means DefaultUnhealthyAfter; negative disables
	// health tracking entirely.
	UnhealthyAfter int
	// ProbeInterval is how often an unhealthy device is probed with one
	// real prewarm-style plan; the first success restores it. 0 means
	// DefaultProbeInterval; negative is a configuration error.
	ProbeInterval time.Duration
	// QuarantineAfter is how many panics one request key may cause
	// before the key is quarantined: further spellings of it are
	// rejected with a structured 500 at admission, without touching a
	// worker, so a poison graph cannot re-crash lanes in a tight
	// retry loop. Quarantined keys live in a small bounded LRU
	// (quarantineCap), so the set cannot grow without bound either.
	// 0 means DefaultQuarantineAfter; negative disables quarantining.
	QuarantineAfter int

	// OverloadInterval is the closed-loop overload controller's sampling
	// cadence: every interval a background sampler folds the signals the
	// process already has — per-lane backlog, warm-p99 drift of observed
	// execution latency, heap and GC-pause gauges — into a discrete load
	// level (0 normal, 1 brownout, 2 emergency) that deterministically
	// disables optional work (see the package comment's "Overload"
	// section). The level is a pure function of the current signals, so
	// it returns to 0 within one interval of the load going away.
	// 0 means DefaultOverloadInterval; negative disables the controller
	// (the level is pinned at 0), mirroring the ByteCacheCap convention.
	OverloadInterval time.Duration
	// HeapLimitBytes arms the controller's memory signals: live heap at
	// or above this limit is an emergency (level 2), at or above 80% of
	// it — or a p99 GC stop-the-world pause over 50ms — a brownout
	// (level 1). 0 (the default) disables both memory signals; negative
	// is a configuration error.
	HeapLimitBytes int64
	// BrownoutQueueFrac and EmergencyQueueFrac are the lane-backlog
	// thresholds of the load ladder, as fractions of a lane's queue
	// capacity: the fullest lane at or past the brownout fraction holds
	// the level at 1, past the emergency fraction at 2. 0 means the
	// defaults (0.5 and 0.9); out of (0, 1] is a configuration error.
	BrownoutQueueFrac  float64
	EmergencyQueueFrac float64

	// SlowTraceMs emits a structured log/slog line (on SlowLog, or the
	// process default logger) for every request whose end-to-end trace
	// exceeds this many milliseconds, with per-stage durations as
	// attributes. 0 (the default) disables slow-trace logging; negative
	// is a configuration error.
	SlowTraceMs float64
	// SlowLog receives the slow-trace lines; nil means slog.Default().
	SlowLog *slog.Logger
	// TraceRingCap bounds the completed-trace ring buffer behind
	// GET /debug/trace (the retained count rounds up to a multiple of
	// the ring's shard count). 0 means DefaultTraceRingCap; negative
	// disables the ring — requests are still traced (header, body
	// trace_id, /debug/requests, stage histograms, slow logging), but
	// completed traces are not retained.
	TraceRingCap int
	// Pprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the gateway mux. Off by default: the profile
	// endpoints can stall the process (CPU profiles block for their
	// duration), so they are opt-in, next to the always-on /metrics.
	Pprof bool
}

// Defaults for the Config knobs.
const (
	DefaultMaxBodyBytes    = 1 << 20 // 1 MiB: ~10x the largest zoo graph's wire form
	DefaultQueueDepth      = 256
	DefaultBatchMax        = 16
	DefaultWorkers         = 2
	DefaultShedMinSamples  = 64
	DefaultUnhealthyAfter  = 3
	DefaultProbeInterval   = 500 * time.Millisecond
	DefaultQuarantineAfter = 2
	// DefaultByteCacheCap bounds the rendered-response byte cache:
	// bodies are a few hundred bytes, so the default is ~1 MiB of
	// rendered responses — the full zoo x fleet x a generous spread of
	// deadlines stays resident.
	DefaultByteCacheCap = 4096
	// DefaultDrainTimeout matches cmd/netserve's -drain-timeout
	// default: the drain budget assumed when Shutdown's context has no
	// deadline.
	DefaultDrainTimeout = 30 * time.Second
	// DefaultTraceRingCap retains the most recent completed traces for
	// GET /debug/trace: a trace is a few hundred bytes, so the default
	// window costs well under a megabyte while covering several seconds
	// of saturated traffic.
	DefaultTraceRingCap = 512
	// DefaultOverloadInterval is the overload controller's sampling
	// cadence: fast enough that the level tracks a traffic step within
	// ~100ms, slow enough that a tick's few atomic reads never register
	// against the request path.
	DefaultOverloadInterval = 100 * time.Millisecond
	// DefaultBrownoutQueueFrac / DefaultEmergencyQueueFrac are the lane
	// backlog thresholds of the load ladder: half-full lanes start the
	// brownout, near-full lanes declare the emergency.
	DefaultBrownoutQueueFrac  = 0.5
	DefaultEmergencyQueueFrac = 0.9

	// quarantineCap bounds the panic-count LRU: big enough to hold a
	// burst of distinct poison keys, small enough that the quarantine
	// itself can never become a memory sink.
	quarantineCap = 128
)

func (c *Config) fill() error {
	// MaxBodyBytes is the one knob where negative is meaningful (no
	// limit); for the rest a negative value is a configuration error,
	// surfaced from New rather than panicking in a channel make or a
	// WaitGroup.
	for _, k := range []struct {
		name string
		val  int
	}{
		{"QueueDepth", c.QueueDepth},
		{"BatchMax", c.BatchMax},
		{"Workers", c.Workers},
		{"ShedMinSamples", c.ShedMinSamples},
	} {
		if k.val < 0 {
			return fmt.Errorf("negative %s %d", k.name, k.val)
		}
	}
	for _, k := range []struct {
		name string
		val  time.Duration
	}{
		{"BatchWindow", c.BatchWindow},
		{"ExecTimeout", c.ExecTimeout},
		{"AutosaveInterval", c.AutosaveInterval},
		{"ProbeInterval", c.ProbeInterval},
		{"DrainTimeout", c.DrainTimeout},
	} {
		if k.val < 0 {
			return fmt.Errorf("negative %s %v", k.name, k.val)
		}
	}
	if c.SlowTraceMs < 0 {
		return fmt.Errorf("negative SlowTraceMs %v", c.SlowTraceMs)
	}
	if c.HeapLimitBytes < 0 {
		return fmt.Errorf("negative HeapLimitBytes %d", c.HeapLimitBytes)
	}
	for _, k := range []struct {
		name string
		val  float64
	}{
		{"BrownoutQueueFrac", c.BrownoutQueueFrac},
		{"EmergencyQueueFrac", c.EmergencyQueueFrac},
	} {
		if k.val < 0 || k.val > 1 {
			return fmt.Errorf("%s %v outside (0, 1]", k.name, k.val)
		}
	}
	if c.AutosaveInterval > 0 && c.StatePath == "" {
		return fmt.Errorf("AutosaveInterval requires a StatePath")
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.BatchMax == 0 {
		c.BatchMax = DefaultBatchMax
	}
	if c.Workers == 0 {
		c.Workers = DefaultWorkers
	}
	if c.ShedMinSamples == 0 {
		c.ShedMinSamples = DefaultShedMinSamples
	}
	if c.UnhealthyAfter == 0 {
		c.UnhealthyAfter = DefaultUnhealthyAfter
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = DefaultQuarantineAfter
	}
	if c.ByteCacheCap == 0 {
		c.ByteCacheCap = DefaultByteCacheCap
	}
	if c.TraceRingCap == 0 {
		c.TraceRingCap = DefaultTraceRingCap
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	// OverloadInterval follows the ByteCacheCap convention: 0 means the
	// default, negative means disabled.
	if c.OverloadInterval == 0 {
		c.OverloadInterval = DefaultOverloadInterval
	}
	if c.BrownoutQueueFrac == 0 {
		c.BrownoutQueueFrac = DefaultBrownoutQueueFrac
	}
	if c.EmergencyQueueFrac == 0 {
		c.EmergencyQueueFrac = DefaultEmergencyQueueFrac
	}
	return nil
}

// call is one in-flight planner execution and the response every
// coalesced waiter shares. planner is the resolved target's planner
// (key.device names it). body and status are written exactly once,
// before done is closed; delivered guards that write so a watchdog
// abandonment and the abandoned pass's late completion can race for a
// call without double-delivering it.
//
// waiters counts the handlers still waiting on done: it starts at 1
// for the leader, coalesce joins increment it (under the gateway
// mutex), and a handler whose client disconnects decrements it. A
// worker that dequeues a call nobody waits for anymore cancels it
// before it consumes a planner execution.
type call struct {
	key     coalesceKey
	req     serve.Request
	planner *serve.Planner
	done    chan struct{}
	// status, body and retryAfterMs are written exactly once, by the
	// delivered CAS winner, before done closes; retryAfterMs > 0 adds a
	// Retry-After header (watchdog 504s carry one).
	status       int
	body         []byte
	retryAfterMs float64
	waiters      atomic.Int64
	delivered    atomic.Bool

	// Execution timeline, written by the lane worker before done closes
	// (the close is the happens-before edge) and read by every waiter
	// afterwards, so each trace can carve its wait into queue-wait,
	// execution and encode spans. Zero when the call never reached a
	// planner (cancelled in queue).
	execStartAt time.Time
	execEndAt   time.Time
	encodeDur   time.Duration

	// planPhases collects the planner's internal phase windows
	// (measure, estimate, explore) via the serve.Request.Trace
	// callback. Guarded by phaseMu rather than the done happens-before
	// edge alone: a watchdog-abandoned pass keeps running in the
	// background and may still be appending while waiters read.
	phaseMu    sync.Mutex
	planPhases []phaseWindow
}

// phaseWindow is one planner phase's absolute time window.
type phaseWindow struct {
	name       string
	start, end time.Time
}

// notePhase is the serve.Request.Trace callback target.
func (c *call) notePhase(name string, start, end time.Time) {
	c.phaseMu.Lock()
	c.planPhases = append(c.planPhases, phaseWindow{name, start, end})
	c.phaseMu.Unlock()
}

// phases snapshots the recorded planner phases.
func (c *call) phases() []phaseWindow {
	c.phaseMu.Lock()
	defer c.phaseMu.Unlock()
	return append([]phaseWindow(nil), c.planPhases...)
}

// clearPhases drops phases recorded by a pass that will be redone (the
// solo retry after a grouped panic).
func (c *call) clearPhases() {
	c.phaseMu.Lock()
	c.planPhases = c.planPhases[:0]
	c.phaseMu.Unlock()
}

// deviceHealth is one device's fault-containment state. consecutive
// counts containment events (panics, watchdog abandons) since the last
// successful execution; crossing Config.UnhealthyAfter trips unhealthy,
// and only a successful background probe plan clears it.
type deviceHealth struct {
	device      string
	consecutive atomic.Int64
	unhealthy   atomic.Bool
}

// lane is one device's slice of the admission machinery: a bounded
// queue plus dedicated workers. Lane assignment is the resolved-device
// routing decision the admission path already makes, so lanes shift
// which worker runs an execution and when — never what it returns —
// and a cold plan occupying one lane's workers cannot delay another
// device's traffic.
type lane struct {
	device    string
	queue     chan *call
	shedQueue *telemetry.Counter // queue_full sheds on this lane

	// AIMD execution-concurrency limit (see overload.go): workers
	// acquire a slot before running a planner pass. execLimit moves
	// between 1 and the configured per-lane worker count — additive
	// increase while observed pass latency tracks the warm p99,
	// multiplicative decrease on containment events — and execEwmaMs is
	// the smoothed observed pass latency the overload controller reads
	// as its warm-p99 drift signal. All guarded by execMu.
	execMu        sync.Mutex
	execCond      *sync.Cond
	execLimit     int
	execActive    int
	execEwmaMs    float64
	aimdDecreases *telemetry.Counter
}

// Gateway is the serving layer. Construct with New, expose Handler on
// an http.Server, and call Shutdown to drain.
type Gateway struct {
	cfg   Config
	pool  *serve.PlannerPool
	reg   *telemetry.Registry
	mux   *http.ServeMux
	lanes map[string]*lane // one per registered device

	// laneQueueCap / laneWorkers are the per-lane slices of the
	// configured QueueDepth / Workers totals.
	laneQueueCap int
	laneWorkers  int

	// bytes is the rendered-response byte cache (nil when disabled by a
	// negative Config.ByteCacheCap); calib maps each registered device
	// to its calibration fingerprint, the byteKey component that pins
	// cached bytes to the calibration that produced them.
	bytes *lru.Sharded[byteKey, []byte]
	calib map[string]uint64

	mu        sync.Mutex
	saveMu    sync.Mutex // serializes SaveStateFile writers
	inflight  map[coalesceKey]*call
	draining  bool
	drainDone chan struct{} // closed once the drain completes
	// drainDeadline is the drain budget's end (unix nanos), written
	// once when the drain starts; the Retry-After hint drain rejections
	// carry is the remaining budget, not a hardcoded constant.
	drainDeadline atomic.Int64
	stop          chan struct{} // closed when the drain starts: background loops exit
	pending   sync.WaitGroup // queued, not yet delivered calls
	workers   sync.WaitGroup
	// background tracks the gateway-owned background goroutines —
	// autosave loop, prewarm sweeps, health probes — so Shutdown can
	// wait for them to wind down (no save left mid-write, no tmp file
	// left behind). New entries register through goBackground, which
	// refuses once draining is set.
	background sync.WaitGroup

	// ready gates GET /readyz: the embedder (cmd/netserve) marks the
	// gateway ready once boot-time state restore has completed, so a
	// load balancer never routes to a replica still rebuilding warmth.
	// Liveness (GET /healthz) is independent and always true while the
	// process serves.
	ready atomic.Bool

	// health tracks per-device fault containment (see deviceHealth);
	// immutable map built at construction, one entry per lane.
	health map[string]*deviceHealth

	// quarantine maps panic-causing request identities (the coalesce
	// key minus its device: a poison graph is poison on every target)
	// to their panic counts. Bounded, so it can never out-grow the
	// blast radius it guards against.
	quarantine *lru.Cache[coalesceKey, *atomic.Int64]

	requests       *telemetry.Counter
	coalesced      *telemetry.Counter
	autoRouted     *telemetry.Counter
	shedBudget     *telemetry.Counter
	shedDraining   *telemetry.Counter
	rejected       *telemetry.Counter
	batches        *telemetry.Counter
	batchedReqs    *telemetry.Counter
	planErrors     *telemetry.Counter
	prewarmed      *telemetry.Counter
	stateSaves     *telemetry.Counter
	autosaves      *telemetry.Counter
	autosaveErrors *telemetry.Counter
	restoreFallbck *telemetry.Counter
	cancelled      *telemetry.Counter
	quarantined    *telemetry.Counter
	panicsByDev    map[string]*telemetry.Counter
	abandonedByDev map[string]*telemetry.Counter
	unhealthyByDev map[string]*telemetry.Gauge
	probesByDev    map[string]*telemetry.Counter
	slowTraces     *telemetry.Counter
	requestLatMs   *telemetry.Histogram

	// Overload control (see overload.go): loadLevel is the controller's
	// published load level (0 normal, 1 brownout, 2 emergency), mem the
	// memoized MemStats sampler its heap/GC signals read, traceSeq the
	// deterministic counter behind brownout trace-ring sampling.
	loadLevel       atomic.Int32
	mem             *telemetry.MemSampler
	traceSeq        atomic.Uint64
	loadTransitions *telemetry.Counter
	shedOverload    *telemetry.Counter
	degradedServed  *telemetry.Counter
	traceSampledOut *telemetry.Counter
	// cancelledLatMs records the wall-clock latency of admitted
	// requests whose client disconnected before delivery — its own
	// series, so cancellations neither vanish from latency telemetry
	// (survivorship bias) nor pollute the delivered-request histogram.
	cancelledLatMs *telemetry.Histogram
	testHookBatch  func(device string, n int) // test-only: runs in a worker before a planner pass of n requests on one device
	testHookProbe  func(device string)        // test-only: runs before each health probe plan

	// Request tracing (see trace.go in this package): ids mints the
	// deterministic-format trace IDs, live tracks in-flight traces for
	// GET /debug/requests, ring retains completed ones for
	// GET /debug/trace (nil when disabled), and stageHists carries the
	// netcut_gateway_stage_ms{stage,device} histograms, pre-registered
	// per device (plus "none" for requests refused before routing).
	ids        *trace.IDGen
	live       *trace.Live
	ring       *trace.Ring
	stageHists map[string]map[string]*telemetry.Histogram
}

// New builds the gateway — one planner per registered device behind a
// serve.PlannerPool — instruments every planner and cache layer under
// it (per-device series carry a device label), and starts the batch
// workers. Callers own the HTTP server; see Handler.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.fill(); err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	devs := cfg.Devices
	if len(devs) == 0 && cfg.Planner.Device != nil {
		devs = []device.Config{*cfg.Planner.Device}
	}
	base := cfg.Planner
	base.Device = nil
	pool, err := serve.NewPool(serve.PoolConfig{Base: base, Devices: devs})
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	reg := telemetry.NewRegistry()
	pool.Instrument(reg)

	g := &Gateway{
		cfg:        cfg,
		pool:       pool,
		reg:        reg,
		inflight:   make(map[coalesceKey]*call),
		stop:       make(chan struct{}),
		quarantine: lru.New[coalesceKey, *atomic.Int64](quarantineCap),

		requests:     reg.Counter("netcut_gateway_requests_total", "plan requests received"),
		coalesced:    reg.Counter("netcut_gateway_coalesced_total", "requests that joined an identical in-flight execution"),
		autoRouted:   reg.Counter("netcut_gateway_auto_routed_total", "requests with target \"auto\" resolved to a device"),
		shedBudget:   reg.Counter("netcut_gateway_shed_budget_total", "requests shed because budget_ms cannot cover the warm p99"),
		shedDraining: reg.Counter("netcut_gateway_shed_draining_total", "requests rejected during drain"),
		rejected:     reg.Counter("netcut_gateway_rejected_total", "malformed requests rejected at the decode boundary"),
		batches:      reg.Counter("netcut_gateway_batches_total", "planner passes executed by the batch workers"),
		batchedReqs:  reg.Counter("netcut_gateway_batched_requests_total", "requests served through batched planner passes"),
		planErrors:   reg.Counter("netcut_gateway_plan_errors_total", "admitted requests the planner returned an error for"),
		prewarmed:    reg.Counter("netcut_gateway_prewarmed_total", "zoo x fleet plans completed by startup prewarming"),
		stateSaves:   reg.Counter("netcut_gateway_state_saves_total", "warm-state snapshots written to the configured state path"),
		autosaves:    reg.Counter("netcut_gateway_autosaves_total", "warm-state snapshots written by the periodic autosave loop"),
		autosaveErrors: reg.Counter("netcut_gateway_autosave_errors_total",
			"autosave attempts that failed (the previous good snapshot and .bak stay in place)"),
		restoreFallbck: reg.Counter("netcut_gateway_state_restore_fallback_total",
			"boot restores that fell back to the .bak snapshot after rejecting the primary"),
		cancelled: reg.Counter("netcut_gateway_cancelled_total",
			"queued calls cancelled because every waiting client disconnected before execution"),
		quarantined: reg.Counter("netcut_gateway_quarantined_total",
			"requests rejected at admission because their key previously caused repeated panics"),
		slowTraces: reg.Counter("netcut_gateway_slow_traces_total",
			"requests whose end-to-end trace exceeded Config.SlowTraceMs and were logged"),
		loadTransitions: reg.Counter("netcut_gateway_load_transitions_total",
			"overload-controller load-level changes (any direction)"),
		shedOverload: reg.Counter("netcut_gateway_shed_overload_total",
			"cold misses shed at admission while the load level was 2 (emergency)"),
		degradedServed: reg.Counter("netcut_gateway_degraded_total",
			"allow_degraded requests served from a fallback device instead of being rejected"),
		traceSampledOut: reg.Counter("netcut_gateway_trace_sampled_out_total",
			"completed traces dropped from the /debug/trace ring by brownout sampling"),
		mem: &telemetry.MemSampler{},
		requestLatMs: reg.Histogram("netcut_gateway_request_ms", "wall-clock request latency of admitted plan requests", nil),
		cancelledLatMs: reg.Histogram("netcut_gateway_request_cancelled_lat_ms",
			"wall-clock latency of admitted plan requests cancelled by client disconnect before delivery", nil),
	}
	if cfg.ByteCacheCap > 0 {
		g.bytes = lru.NewSharded[byteKey, []byte](byteCacheShards, cfg.ByteCacheCap, hashByteKey)
		lru.Instrument(reg, "netcut_gateway_bytecache", g.bytes)
	}
	reg.GaugeFunc("netcut_gateway_inflight", "distinct in-flight executions (coalescing keys)",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.inflight))
		})
	telemetry.RegisterRuntime(reg)
	reg.GaugeFunc("netcut_gateway_load_level",
		"overload-controller load level: 0 normal, 1 brownout, 2 emergency",
		func() float64 { return float64(g.loadLevel.Load()) })

	// Request tracing: the ID stream derives from the planner seed, so a
	// replay with the same seed and admission order reproduces the same
	// trace IDs — deterministic in format and in sequence.
	g.ids = trace.NewIDGen(uint64(cfg.Planner.Seed))
	g.live = trace.NewLive()
	if cfg.TraceRingCap > 0 {
		g.ring = trace.NewRing(cfg.TraceRingCap)
		reg.GaugeFunc("netcut_gateway_trace_ring_entries",
			"completed traces retained in the /debug/trace ring buffer",
			func() float64 { return float64(g.ring.Len()) })
	}
	reg.GaugeFunc("netcut_gateway_traces_inflight",
		"requests currently in flight (live traces, dumped at /debug/requests)",
		func() float64 { return float64(g.live.Len()) })

	// One lane per registered device: the configured queue-depth and
	// worker totals divide evenly across lanes (minimum 1 each, the
	// same division rule the planner pool applies to cache caps), and
	// each lane's queue depth and queue_full sheds are device-labeled
	// series on the shared registry.
	names := pool.DeviceNames()
	g.laneQueueCap = cfg.QueueDepth / len(names)
	if g.laneQueueCap < 1 {
		g.laneQueueCap = 1
	}
	g.laneWorkers = cfg.Workers / len(names)
	if g.laneWorkers < 1 {
		g.laneWorkers = 1
	}
	g.lanes = make(map[string]*lane, len(names))
	g.health = make(map[string]*deviceHealth, len(names))
	g.calib = make(map[string]uint64, len(names))
	g.panicsByDev = make(map[string]*telemetry.Counter, len(names))
	g.abandonedByDev = make(map[string]*telemetry.Counter, len(names))
	g.unhealthyByDev = make(map[string]*telemetry.Gauge, len(names))
	g.probesByDev = make(map[string]*telemetry.Counter, len(names))
	for _, name := range names {
		if p, err := pool.Planner(name); err == nil { // registered names only
			dc := p.DeviceConfig()
			g.calib[name] = dc.Fingerprint()
		}
		labels := []telemetry.Label{{Key: "device", Value: name}}
		l := &lane{
			device: name,
			queue:  make(chan *call, g.laneQueueCap),
			shedQueue: reg.CounterWith("netcut_gateway_shed_queue_full_total",
				"requests shed because the device's admission lane was full", labels),
			execLimit: g.laneWorkers,
			aimdDecreases: reg.CounterWith("netcut_gateway_aimd_decreases_total",
				"multiplicative decreases of the lane's AIMD execution-concurrency limit", labels),
		}
		l.execCond = sync.NewCond(&l.execMu)
		reg.GaugeFuncWith("netcut_gateway_queue_depth",
			"requests waiting in the device's admission lane", labels,
			func() float64 { return float64(len(l.queue)) })
		reg.GaugeFuncWith("netcut_gateway_lane_concurrency",
			"current AIMD execution-concurrency limit of the device's lane", labels,
			func() float64 {
				l.execMu.Lock()
				defer l.execMu.Unlock()
				return float64(l.execLimit)
			})
		g.lanes[name] = l
		g.health[name] = &deviceHealth{device: name}
		g.panicsByDev[name] = reg.CounterWith("netcut_gateway_panics_total",
			"planner panics recovered at the execution boundary", labels)
		g.abandonedByDev[name] = reg.CounterWith("netcut_gateway_watchdog_abandoned_total",
			"planner passes abandoned by the execution watchdog", labels)
		g.unhealthyByDev[name] = reg.GaugeWith("netcut_gateway_device_unhealthy",
			"1 while the device is tripped unhealthy, 0 while it is serving", labels)
		g.probesByDev[name] = reg.CounterWith("netcut_gateway_probes_total",
			"health probe plans attempted against an unhealthy device", labels)
	}

	// Per-stage latency histograms, pre-registered for every device plus
	// the "none" pseudo-device (requests refused before routing). Only
	// the clock-bounded stages get series; the admission gates record
	// zero-duration verdict spans in traces, not histogram mass.
	g.stageHists = make(map[string]map[string]*telemetry.Histogram, len(names)+1)
	for _, dev := range append(append(make([]string, 0, len(names)+1), names...), stageDeviceNone) {
		byStage := make(map[string]*telemetry.Histogram, len(timedStages))
		for _, st := range timedStages {
			byStage[st] = reg.HistogramWith("netcut_gateway_stage_ms",
				"per-stage latency of plan requests, carved from request traces at completion", nil,
				[]telemetry.Label{{Key: "stage", Value: st}, {Key: "device", Value: dev}})
		}
		g.stageHists[dev] = byStage
	}

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/plan", g.handlePlan)
	g.mux.HandleFunc("GET /v1/devices", g.handleDevices)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /debug/stats", g.handleStats)
	g.mux.HandleFunc("POST /v1/state/save", g.handleStateSave)
	g.mux.HandleFunc("GET /debug/trace", g.handleTrace)
	g.mux.HandleFunc("GET /debug/requests", g.handleRequests)
	if cfg.Pprof {
		// Opt-in profiling handlers on the gateway mux itself, so one
		// listener serves planning, metrics and profiles; pprof.Index
		// dispatches the named sub-profiles (heap, goroutine, ...).
		g.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		g.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		g.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		g.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		g.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	g.mux.HandleFunc("GET /readyz", g.handleReady)

	for _, name := range names {
		l := g.lanes[name]
		g.workers.Add(g.laneWorkers)
		for i := 0; i < g.laneWorkers; i++ {
			go g.worker(l)
		}
	}
	if cfg.AutosaveInterval > 0 {
		g.goBackground(g.autosaveLoop)
	}
	if cfg.OverloadInterval > 0 {
		g.goBackground(g.overloadLoop)
	}
	return g, nil
}

// MarkReady flips GET /readyz to 200. The embedder calls it once boot
// work — state restore in cmd/netserve — has completed, so a load
// balancer doesn't route traffic to a replica still rebuilding warmth.
func (g *Gateway) MarkReady() { g.ready.Store(true) }

// handleReady is readiness, distinct from liveness: not-ready before
// MarkReady and again once draining, while /healthz stays 200 for as
// long as the process serves at all.
func (g *Gateway) handleReady(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if g.ready.Load() && !draining {
		fmt.Fprintln(w, "ready")
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds(g.drainRemainingMs()))
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "not ready")
}

// Handler returns the gateway's HTTP surface: POST /v1/plan,
// GET /v1/devices, GET /metrics, GET /debug/stats, GET /debug/trace,
// GET /debug/requests, GET /healthz, GET /readyz — plus
// GET /debug/pprof/ when Config.Pprof is set.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Planner exposes the default target's planning service (for embedding
// the gateway and the planner API in one process).
func (g *Gateway) Planner() *serve.Planner { return g.pool.Default() }

// Pool exposes the device-keyed planner pool behind the gateway.
func (g *Gateway) Pool() *serve.PlannerPool { return g.pool }

// Registry exposes the telemetry registry, so embedders can add their
// own series next to the gateway's.
func (g *Gateway) Registry() *telemetry.Registry { return g.reg }

// Shutdown drains the gateway: new plan requests are rejected with 503,
// every already-admitted call runs to completion and delivers its
// response, then the workers stop and the background loops — autosave,
// prewarm, health probes — wind down, so no save is left mid-write and
// no temp file is left behind. Safe to call more than once — concurrent
// and repeated callers all wait on the same drain, so nil always means
// "fully drained". The context bounds each caller's wait.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		// Record when the drain budget runs out — the context deadline
		// if the first caller carries one, Config.DrainTimeout
		// otherwise — so every drain-time rejection can report the
		// honest remaining budget as its Retry-After.
		deadline := time.Now().Add(g.cfg.DrainTimeout)
		if d, ok := ctx.Deadline(); ok {
			deadline = d
		}
		g.drainDeadline.Store(deadline.UnixNano())
		close(g.stop) // background loops see the drain without polling
		g.drainDone = make(chan struct{})
		go func() {
			g.pending.Wait() // all queued calls delivered
			for _, l := range g.lanes {
				close(l.queue) // no producer can enqueue once draining is set
			}
			g.workers.Wait()
			g.background.Wait()
			close(g.drainDone)
		}()
	}
	done := g.drainDone
	g.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// goBackground runs fn on a drain-tracked goroutine: Shutdown waits for
// it, and once draining has begun no new background work can start (the
// drain goroutine may already be past background.Wait). Returns whether
// fn was started.
func (g *Gateway) goBackground(fn func()) bool {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return false
	}
	g.background.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.background.Done()
		fn()
	}()
	return true
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (g *Gateway) writeErr(w http.ResponseWriter, e *apiError) {
	if e.wire.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(e.wire.RetryAfterMs))
	}
	b, _ := json.Marshal(e.wire)
	writeJSON(w, e.status, append(b, '\n'))
}

// retryAfterSeconds renders a retry hint in milliseconds as a
// Retry-After header value: rounded up to whole seconds and clamped to
// at least 1 — the header's unit is seconds, and 0 would invite an
// immediate, pointless retry. Every ms-to-seconds conversion for the
// header goes through here.
func retryAfterSeconds(ms float64) string {
	s := int64(math.Ceil(ms / 1000))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// drainRemainingMs is the remaining drain budget in milliseconds, the
// honest Retry-After for drain-time rejections: how long until this
// listener is gone and a retry will land on a live peer. Clamped to at
// least one second; before any drain has started (boot-time
// not-ready) the floor applies.
func (g *Gateway) drainRemainingMs() float64 {
	dl := g.drainDeadline.Load()
	if dl == 0 {
		return 1000
	}
	ms := float64(time.Until(time.Unix(0, dl))) / float64(time.Millisecond)
	if ms < 1000 {
		return 1000
	}
	return ms
}

// handlePlan is the admission path described in the package comment,
// threaded through a request trace: every stage below marks a span on
// tr, the trace ID rides out in the X-Netcut-Trace header and the
// trace_id body field, and finishTrace files the completed record.
// Tracing is observability only — it never changes a response byte.
func (g *Gateway) handlePlan(w http.ResponseWriter, r *http.Request) {
	g.requests.Inc()
	start := time.Now()
	tr := trace.Start(g.ids.Next(), start)
	g.live.Add(tr)
	w.Header().Set(TraceHeader, tr.ID())

	body := r.Body
	if g.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	}
	dec, aerr := decodeRequest(body)
	if aerr != nil {
		tr.Mark(stageDecode, "error")
		g.rejected.Inc()
		g.writeErrTraced(w, aerr, tr)
		return
	}
	tr.SetRequest(dec.key.name, dec.target)
	tr.Mark(stageDecode, verdictOK)

	c, cached, aerr := g.admit(dec, tr)
	if aerr != nil {
		g.writeErrTraced(w, aerr, tr)
		return
	}
	if cached != nil {
		// Byte-cache hit: the rendered body short-circuited lane,
		// planner and wire-marshal. It still counts as an admitted
		// request in the latency histogram; the hit itself is counted
		// by the cache's own netcut_gateway_bytecache_hits_total,
		// distinct from planner executions.
		if dec.degradedReason != "" {
			cached = injectDegraded(cached, dec.degradedReason)
		}
		end := g.writePlanTraced(w, http.StatusOK, cached, tr)
		g.requestLatMs.Observe(float64(end.Sub(start)) / float64(time.Millisecond))
		return
	}

	select {
	case <-c.done:
		// The worker published the call's execution timeline before
		// closing done; carve it into queue-wait / exec / encode spans.
		stitchCallSpans(tr, c)
		if c.retryAfterMs > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(c.retryAfterMs))
		}
		body := c.body
		if dec.degradedReason != "" && c.status == http.StatusOK {
			// The degraded markers are this response's, not the call's:
			// the canonical body (shared with coalesced waiters and the
			// byte cache) stays clean, like the trace ID.
			body = injectDegraded(body, dec.degradedReason)
		}
		end := g.writePlanTraced(w, c.status, body, tr)
		g.requestLatMs.Observe(float64(end.Sub(start)) / float64(time.Millisecond))
	case <-r.Context().Done():
		// The client went away. If other waiters remain, the execution
		// keeps running for them (its result is cached work, not waste);
		// if this was the last waiter, the worker that dequeues the call
		// cancels it before it consumes a planner execution. The
		// cancellation is still a request with a latency — recorded in
		// its own histogram, so delivered-request p99s aren't
		// survivorship-biased by the clients who gave up.
		c.waiters.Add(-1)
		now := tr.Mark(stageDeliver, "disconnected")
		g.cancelledLatMs.Observe(float64(now.Sub(start)) / float64(time.Millisecond))
		g.finishTrace(tr, statusClientClosed, now)
	}
}

// windowMs is the timed batching window expressed in the latency
// arithmetic's unit. Every pass leader waits up to this long before
// executing, so the budget shed predicates fold it into the expected
// service time — admitting a request whose budget covers only the
// bare warm p99 would queue it into guaranteed lateness.
func (g *Gateway) windowMs() float64 {
	return float64(g.cfg.BatchWindow) / float64(time.Millisecond)
}

// admit resolves the target, then serves from the byte cache,
// coalesces, sheds or enqueues one decoded request: it returns either
// a cached rendered body (byte-cache hit) or the call to wait on.
// Target resolution — "" is the default device, "auto" routes to the
// fastest device whose estimated warm-path latency fits the budget,
// anything else must be a registered name — is admission policy: it
// decides where an execution runs, never what that execution returns,
// and the resolved device becomes part of the coalescing key, so an
// auto-routed body is byte-identical to the same request naming the
// device explicitly.
//
// The byte-cache lookup sits after the drain, quarantine and
// device-health gates (a refused request is refused whether or not its
// bytes are resident) and after target resolution (the key needs the
// resolved device), but before coalescing, shedding and queueing: a
// hit consumes no planner work by definition, and it is served even to
// a budget-constrained request — delivering already-rendered bytes
// fits any budget, so shedding applies only to requests that would
// queue for an execution.
func (g *Gateway) admit(dec *decodedRequest, tr *trace.Trace) (*call, []byte, *apiError) {
	g.mu.Lock()
	defer g.mu.Unlock()

	if g.draining {
		tr.Mark(stageDrain, "draining")
		g.shedDraining.Inc()
		e := errf(http.StatusServiceUnavailable, "draining", "gateway is draining")
		e.wire.RetryAfterMs = g.drainRemainingMs()
		return nil, nil, e
	}
	// One clock read covers the whole gate run-up (including any wait
	// for the gateway mutex); the later gates record zero-duration
	// verdict spans at this timestamp — their decisions take
	// nanoseconds, and what matters is which gate refused, not a
	// duration below the clock's resolution.
	tr.Mark(stageDrain, verdictOK)
	// Quarantine gate: a request identity that already crashed planner
	// passes QuarantineAfter times is rejected here, before it can touch
	// a worker — containment of a poison graph must not cost a lane per
	// retry. The key ignores the device (a graph that panics the trim
	// layer panics it on every target), so the gate runs before target
	// resolution.
	if g.cfg.QuarantineAfter > 0 {
		if n, ok := g.quarantine.Get(quarantineKey(dec.key)); ok && n.Load() >= int64(g.cfg.QuarantineAfter) {
			tr.MarkZero(stageQuarantine, "quarantined")
			g.quarantined.Inc()
			return nil, nil, errf(http.StatusInternalServerError, "quarantined",
				"this request previously crashed %d planner passes and is quarantined", n.Load())
		}
	}
	tr.MarkZero(stageQuarantine, verdictOK)
	switch dec.target {
	case "":
		p := g.pool.Default()
		name := p.DeviceName()
		tr.SetDevice(name)
		tr.MarkZero(stageRoute, name)
		if !g.deviceEligible(name) {
			tr.MarkZero(stageHealth, "unhealthy")
			if dec.allowDegraded {
				return g.admitDegraded(dec, degradedUnhealthy, tr)
			}
			return nil, nil, g.unhealthyErr(name)
		}
		tr.MarkZero(stageHealth, verdictOK)
		dec.key.device = name
		if body, ok := g.byteCacheGet(dec.key); ok {
			tr.Mark(stageByteCache, "hit")
			return nil, body, nil
		}
		tr.MarkZero(stageByteCache, "miss")
		c, e := g.admitOn(dec, p, true, tr)
		if e != nil && dec.allowDegraded && e.wire.Code == "budget_too_small" {
			return g.admitDegraded(dec, degradedBudget, tr)
		}
		return c, nil, e
	case "auto":
		name, est, ok := g.pool.Route(dec.budgetMs, g.windowMs(), uint64(g.cfg.ShedMinSamples), g.deviceEligible)
		if ok {
			g.autoRouted.Inc()
			dec.key.device = name
			tr.SetDevice(name)
			tr.Mark(stageRoute, name)
			tr.MarkZero(stageHealth, verdictOK)
			p, err := g.pool.Planner(name)
			if err != nil {
				// Route only returns registered names.
				panic(err)
			}
			if body, okc := g.byteCacheGet(dec.key); okc {
				tr.Mark(stageByteCache, "hit")
				return nil, body, nil
			}
			tr.MarkZero(stageByteCache, "miss")
			// Route already applied the budget predicate to the chosen
			// device; re-checking here could shed a request it just
			// qualified (the estimate moves between the two reads).
			c, e := g.admitOn(dec, p, false, tr)
			return c, nil, e
		}
		tr.Mark(stageRoute, "none")
		// No device qualifies — but coalesce before shedding: an
		// identical execution already in flight on any healthy device
		// serves this request at zero planner cost, which beats a 429.
		for _, devName := range g.pool.DeviceNames() {
			if !g.deviceEligible(devName) {
				continue
			}
			k := dec.key
			k.device = devName
			if c, inFlight := g.inflight[k]; inFlight {
				g.coalesced.Inc()
				c.waiters.Add(1)
				tr.SetDevice(devName)
				tr.MarkZero(stageCoalesce, "follower")
				return c, nil, nil
			}
		}
		// Route reports +Inf exactly when the eligible set was empty:
		// nothing to shed against, the fleet is unhealthy — and nothing
		// to degrade onto either, so allow_degraded keeps the 503.
		if math.IsInf(est, 1) {
			tr.MarkZero(stageHealth, "no_healthy_device")
			e := errf(http.StatusServiceUnavailable, "no_healthy_device",
				"every registered device is unhealthy; background probes are running")
			e.wire.RetryAfterMs = float64(g.cfg.ProbeInterval) / float64(time.Millisecond)
			return nil, nil, e
		}
		if dec.allowDegraded {
			return g.admitDegraded(dec, degradedBudget, tr)
		}
		tr.MarkZero(stageShed, "budget")
		g.shedBudget.Inc()
		e := errf(http.StatusTooManyRequests, "budget_too_small",
			"budget %.3f ms is below every device's estimated warm-path latency (fastest: %.3f ms)",
			dec.budgetMs, est)
		e.wire.RetryAfterMs = est
		return nil, nil, e
	default:
		p, err := g.pool.Planner(dec.target)
		if err != nil {
			tr.MarkZero(stageRoute, "unknown")
			g.rejected.Inc()
			return nil, nil, errf(http.StatusBadRequest, "unknown_device", "%v", err)
		}
		tr.SetDevice(dec.target)
		tr.MarkZero(stageRoute, dec.target)
		if !g.deviceEligible(dec.target) {
			tr.MarkZero(stageHealth, "unhealthy")
			if dec.allowDegraded {
				return g.admitDegraded(dec, degradedUnhealthy, tr)
			}
			return nil, nil, g.unhealthyErr(dec.target)
		}
		tr.MarkZero(stageHealth, verdictOK)
		dec.key.device = dec.target
		if body, ok := g.byteCacheGet(dec.key); ok {
			tr.Mark(stageByteCache, "hit")
			return nil, body, nil
		}
		tr.MarkZero(stageByteCache, "miss")
		c, e := g.admitOn(dec, p, true, tr)
		if e != nil && dec.allowDegraded && e.wire.Code == "budget_too_small" {
			return g.admitDegraded(dec, degradedBudget, tr)
		}
		return c, nil, e
	}
}

// deviceEligible is the health predicate "auto" routing and explicit
// admission share: a device is eligible unless its containment state
// has tripped unhealthy. Health, like the rest of admission, decides
// where executions run, never what they return.
func (g *Gateway) deviceEligible(name string) bool {
	h := g.health[name]
	return h == nil || !h.unhealthy.Load()
}

// unhealthyErr is the 503 an explicit request for a tripped device
// receives; Retry-After carries the probe cadence, the soonest the
// device could come back.
func (g *Gateway) unhealthyErr(name string) *apiError {
	e := errf(http.StatusServiceUnavailable, "device_unhealthy",
		"device %s is unhealthy after repeated containment events; a background probe will restore it", name)
	e.wire.RetryAfterMs = float64(g.cfg.ProbeInterval) / float64(time.Millisecond)
	return e
}

// quarantineKey is a call's panic-attribution identity: the coalesce
// key with the device cleared, because a poison structure is poison on
// every target.
func quarantineKey(k coalesceKey) coalesceKey {
	k.device = ""
	return k
}

// admitOn coalesces, sheds or enqueues a target-resolved request on
// its planner. shedCheck is false when the caller already applied the
// budget predicate (the auto route).
func (g *Gateway) admitOn(dec *decodedRequest, planner *serve.Planner, shedCheck bool, tr *trace.Trace) (*call, *apiError) {
	// Coalesce before shedding: joining an in-flight execution consumes
	// no planner work, so even a budget-constrained request is better
	// served than shed. The join increments waiters under the gateway
	// mutex — the same lock cancellation holds — so a call can never be
	// cancelled between being found here and being waited on.
	if c, ok := g.inflight[dec.key]; ok {
		g.coalesced.Inc()
		c.waiters.Add(1)
		tr.MarkZero(stageCoalesce, "follower")
		return c, nil
	}
	tr.MarkZero(stageCoalesce, "leader")
	l := g.lanes[dec.key.device]
	// Emergency gate: at load level 2 only work that costs no planner
	// execution is admitted — byte-cache hits were already served in
	// admit, coalesce joins just above — and every cold miss is shed
	// here, pre-execution, with a level-scaled backlog-honest hint.
	// Degraded requests shed too: a fallback still costs an execution.
	if lvl := int(g.loadLevel.Load()); lvl >= levelEmergency {
		tr.MarkZero(stageShed, "overload")
		g.shedOverload.Inc()
		e := errf(http.StatusTooManyRequests, "overload_shed",
			"gateway is at load level %d (emergency): only cached responses and coalesce joins are served", lvl)
		p99, _ := planner.WarmQuantile(0.99)
		e.wire.RetryAfterMs = math.Max(float64(lvl)*laneWaves(len(l.queue), g.laneWorkers)*(p99+g.windowMs()), 1)
		return nil, e
	}
	// Deadline-aware shedding: if the client's remaining budget cannot
	// cover the target's warm-path p99 plus the batching window every
	// pass leader waits out, queueing it only manufactures a
	// guaranteed-late response.
	if shedCheck && dec.budgetMs > 0 {
		p99, samples := planner.WarmQuantile(0.99)
		need := p99 + g.windowMs()
		if samples >= uint64(g.cfg.ShedMinSamples) && dec.budgetMs < need {
			tr.MarkZero(stageShed, "budget")
			g.shedBudget.Inc()
			e := errf(http.StatusTooManyRequests, "budget_too_small",
				"budget %.3f ms is below device %s's estimated warm-path latency of %.3f ms",
				dec.budgetMs, dec.key.device, need)
			e.wire.RetryAfterMs = need
			return nil, e
		}
	}
	tr.MarkZero(stageShed, verdictOK)
	c := &call{key: dec.key, req: dec.req, planner: planner, done: make(chan struct{})}
	// The planner reports its internal phase timings (measure /
	// estimate / explore) into the call, where every coalesced waiter's
	// trace picks them up after delivery. Observability only: the
	// callback cannot influence the response, and it is not part of the
	// coalescing identity (dec.key was computed before it existed).
	c.req.Trace = c.notePhase
	c.waiters.Store(1) // the leader
	select {
	case l.queue <- c:
		g.inflight[dec.key] = c
		g.pending.Add(1)
		// The enqueue mark's clock read sets the trace cursor to the
		// instant admission handed the call off — where the queue-wait
		// span stitched in after delivery begins.
		tr.Mark(stageEnqueue, verdictOK)
		return c, nil
	default:
		tr.Mark(stageEnqueue, "full")
		l.shedQueue.Inc()
		e := errf(http.StatusTooManyRequests, "queue_full",
			"admission lane of %d for device %s is full", g.laneQueueCap, l.device)
		// A full lane means a backlog of whole execution waves stands
		// between this client and service: ceil(backlog / workers)
		// passes of roughly (p99 + window) each — not one request's
		// worth, which is what this hint used to claim.
		p99, _ := planner.WarmQuantile(0.99)
		e.wire.RetryAfterMs = math.Max(laneWaves(len(l.queue), g.laneWorkers)*(p99+g.windowMs()), 1)
		return nil, e
	}
}

// worker drains one device's admission lane: one blocking receive, a
// cooperative yield, an optional timed batching window, then an
// opportunistic non-blocking sweep up to BatchMax, grouped into
// compatible planner passes. Workers never cross lanes, so a cold plan
// here cannot delay any other device's queue.
func (g *Gateway) worker(l *lane) {
	defer g.workers.Done()
	for first := range l.queue {
		// The yield lets the rest of a concurrent burst reach admission
		// before this pass executes: arrivals for the same key join the
		// in-flight call (coalesce), compatible distinct ones land in
		// the queue for the sweep below (batch). Without it, a
		// fully-loaded single-core scheduler runs the worker ahead of
		// the burst's remaining handlers and serializes the burst into
		// per-request executions. Costs nothing when idle.
		runtime.Gosched()
		batch := []*call{first}
		if w := g.effectiveBatchWindow(); w > 0 {
			// Timed window: hold the pass open for socket-staggered
			// stragglers. The yield catches bursts already in flight;
			// the window catches bursts whose members are still
			// arriving over real connections. Like every admission
			// mechanism it shifts when executions run, never what they
			// return. The cost: every pass leader — including a lone,
			// uncontended request — waits up to BatchWindow before
			// executing, which is why the budget shed predicates add
			// windowMs to the expected service time. Under overload the
			// window shrinks (brownout) or disappears (emergency) —
			// holding passes open is optional work.
			timer := time.NewTimer(w)
		window:
			for len(batch) < g.cfg.BatchMax {
				select {
				case c, ok := <-l.queue:
					if !ok {
						break window // draining: run what we have
					}
					batch = append(batch, c)
				case <-timer.C:
					break window
				}
			}
			timer.Stop()
		}
	sweep:
		for len(batch) < g.cfg.BatchMax {
			select {
			case c, ok := <-l.queue:
				if !ok {
					break sweep
				}
				batch = append(batch, c)
			default:
				break sweep
			}
		}
		// Cancellation sweep: a dequeued call nobody waits on anymore —
		// every coalesced client disconnected while it was queued — is
		// retired here, before it can consume a planner execution.
		live := batch[:0]
		for _, c := range batch {
			if !g.tryCancel(c) {
				live = append(live, c)
			}
		}
		if len(live) > 0 {
			// The AIMD slot bounds how many of this lane's workers run
			// planner passes concurrently; the queue stays drained by
			// everyone, so admission behavior is unchanged — only the
			// execution parallelism adapts.
			l.acquireExec()
			g.execute(live)
			l.releaseExec()
		}
	}
}

// tryCancel retires a queued call whose waiters have all disconnected.
// The decision is made under the gateway mutex — the lock coalesce
// joins hold — so a join either lands before the final check (and keeps
// the call alive) or finds the key already gone from inflight and
// starts a fresh execution. A cancelled call never reaches a planner:
// the acceptance criterion is that it costs zero executions.
func (g *Gateway) tryCancel(c *call) bool {
	if c.waiters.Load() > 0 {
		return false
	}
	g.mu.Lock()
	if c.waiters.Load() > 0 { // a join landed between the two checks
		g.mu.Unlock()
		return false
	}
	if g.inflight[c.key] == c {
		delete(g.inflight, c.key)
	}
	g.mu.Unlock()
	g.cancelled.Inc()
	if c.delivered.CompareAndSwap(false, true) {
		c.status = http.StatusGone // no reader remains; set for completeness
		close(c.done)
		g.pending.Done()
	}
	return true
}

// execute groups a drained burst by (device, deadline, estimator) and
// runs each group as one SelectBatch pass on that device's planner,
// delivering every call's response. Grouping preserves arrival order
// within a group, and responses are position-indexed, so batching
// cannot permute results; two targets never share a planner pass.
func (g *Gateway) execute(batch []*call) {
	type groupKey struct {
		device    string
		deadline  float64
		estimator string
	}
	order := make([]groupKey, 0, len(batch))
	groups := make(map[groupKey][]*call, 1)
	for _, c := range batch {
		k := groupKey{c.key.device, c.req.DeadlineMs, c.req.Estimator}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		g.executeGroup(k.device, groups[k])
	}
}

// passResult is one planner pass's outcome, including a recovered
// panic: the recover happens on the goroutine that ran the pass (the
// only place Go allows it), and the result crosses back to the worker
// as a value.
type passResult struct {
	resps    []*serve.Response
	errs     []error
	panicked bool
	pval     any
	stack    []byte
}

// runPass executes one planner pass with the panic boundary. A panic
// anywhere under SelectBatch — trim, profiler, estimator — is contained
// here: every mutex on the planning path releases by defer, and the
// caches only ever hold completed values, so the planner stays
// serviceable after the unwind.
func runPass(p *serve.Planner, reqs []serve.Request) (res passResult) {
	defer func() {
		if r := recover(); r != nil {
			res.panicked = true
			res.pval = r
			res.stack = debug.Stack()
		}
	}()
	res.resps, res.errs = p.SelectBatch(reqs)
	return res
}

// runGuarded is runPass plus the execution watchdog. With ExecTimeout
// unset the pass runs inline (no goroutine, no timer). With it set, the
// pass runs on its own goroutine; if it outlives the timeout the worker
// abandons it — abandoned reports true, the goroutine's eventual result
// lands in the buffered channel and is discarded, and the lane moves
// on. Abandonment never caches anything at the gateway layer: the
// coalesce entries die with the calls.
func (g *Gateway) runGuarded(p *serve.Planner, reqs []serve.Request) (res passResult, abandoned bool) {
	if g.cfg.ExecTimeout <= 0 {
		return runPass(p, reqs), false
	}
	ch := make(chan passResult, 1)
	go func() { ch <- runPass(p, reqs) }()
	timer := time.NewTimer(g.cfg.ExecTimeout)
	defer timer.Stop()
	select {
	case res = <-ch:
		return res, false
	case <-timer.C:
		return passResult{}, true
	}
}

// executeGroup runs one compatible group as a planner pass behind the
// panic and watchdog boundaries. A panic in a grouped pass cannot name
// the request that caused it, so the group retries solo — byte-identity
// (solo == batched) guarantees the innocent requests' retried bodies
// are exactly what the batched pass would have returned, and only the
// poison request pays with a 500.
func (g *Gateway) executeGroup(dev string, calls []*call) {
	if hook := g.testHookBatch; hook != nil {
		hook(dev, len(calls))
	}
	reqs := make([]serve.Request, len(calls))
	for i, c := range calls {
		reqs[i] = c.req
	}
	g.batches.Inc()
	g.batchedReqs.Add(uint64(len(calls)))
	// Two clock reads bracket the pass for the whole group; every call
	// shares them, and waiters stitch the window into their traces as
	// the exec span after done closes.
	execStart := time.Now()
	for _, c := range calls {
		c.execStartAt = execStart
	}
	res, abandoned := g.runGuarded(calls[0].planner, reqs)
	execEnd := time.Now()
	for _, c := range calls {
		c.execEndAt = execEnd
	}
	switch {
	case abandoned:
		g.abandonCalls(dev, calls)
	case res.panicked && len(calls) > 1:
		for _, c := range calls {
			c.clearPhases() // the panicked group pass's partial phases
			c.execStartAt = time.Now()
			sres, sab := g.runGuarded(c.planner, []serve.Request{c.req})
			c.execEndAt = time.Now()
			switch {
			case sab:
				g.abandonCalls(dev, []*call{c})
			case sres.panicked:
				g.deliverPanic(c, sres)
			default:
				g.deviceOK(dev)
				g.laneAIMDIncrease(dev, float64(c.execEndAt.Sub(c.execStartAt))/float64(time.Millisecond))
				g.deliverResult(c, sres.resps[0], sres.errs[0])
			}
		}
	case res.panicked:
		g.deliverPanic(calls[0], res)
	default:
		g.deviceOK(dev)
		g.laneAIMDIncrease(dev, float64(execEnd.Sub(execStart))/float64(time.Millisecond))
		for i, c := range calls {
			g.deliverResult(c, res.resps[i], res.errs[i])
		}
	}
}

// deliverResult publishes a completed execution's response (success or
// structured planner error) to a call. The success path is the byte
// cache's only population point: a body cached here was fully rendered
// and delivered, so errors, contained panics and watchdog-abandoned
// passes can never seed the fast path.
func (g *Gateway) deliverResult(c *call, resp *serve.Response, err error) {
	if err != nil {
		g.planErrors.Inc()
		e := planError(err)
		b, _ := json.Marshal(e.wire)
		g.deliver(c, e.status, append(b, '\n'), 0)
		return
	}
	encStart := time.Now()
	body := EncodeResponse(resp)
	c.encodeDur = time.Since(encStart)
	g.byteCacheAdd(c.key, body)
	g.deliver(c, http.StatusOK, body, 0)
}

// deliverPanic converts a recovered planner panic into a structured 500
// for exactly the call that caused it, records the containment — the
// per-device panic counter, the quarantine count for the request
// identity, the health state — and logs the stack once to stderr.
func (g *Gateway) deliverPanic(c *call, res passResult) {
	dev := c.key.device
	g.panicsByDev[dev].Inc()
	g.notePanicKey(c.key)
	g.deviceFault(dev)
	fmt.Fprintf(os.Stderr, "gateway: contained planner panic for %q on %s: %v\n%s",
		c.key.name, dev, res.pval, res.stack)
	e := errf(http.StatusInternalServerError, "internal_panic",
		"planner panicked serving this request on %s; the panic was contained and the lane keeps serving", dev)
	b, _ := json.Marshal(e.wire)
	g.deliver(c, e.status, append(b, '\n'), 0)
}

// abandonCalls is the watchdog outcome: every call of the abandoned
// pass gets a 504 with a Retry-After, the coalesce entries die (an
// abandoned result is never cached at this layer), and the device takes
// a containment mark.
func (g *Gateway) abandonCalls(dev string, calls []*call) {
	g.abandonedByDev[dev].Inc()
	g.deviceFault(dev)
	retryMs := float64(g.cfg.ExecTimeout) / float64(time.Millisecond)
	e := errf(http.StatusGatewayTimeout, "watchdog_timeout",
		"planner pass on %s exceeded the %v execution watchdog and was abandoned", dev, g.cfg.ExecTimeout)
	e.wire.RetryAfterMs = retryMs
	b, _ := json.Marshal(e.wire)
	body := append(b, '\n')
	for _, c := range calls {
		g.deliver(c, e.status, body, retryMs)
	}
}

// notePanicKey bumps a request identity's panic count in the bounded
// quarantine LRU. Add has LoadOrStore semantics, so concurrent bumps
// share one canonical counter.
func (g *Gateway) notePanicKey(k coalesceKey) {
	if g.cfg.QuarantineAfter <= 0 {
		return
	}
	n := g.quarantine.Add(quarantineKey(k), new(atomic.Int64))
	n.Add(1)
}

// deviceFault marks one containment event (panic or watchdog abandon)
// against a device; crossing Config.UnhealthyAfter consecutive events
// trips it unhealthy and starts the probe loop that will restore it.
func (g *Gateway) deviceFault(dev string) {
	// Containment events are the AIMD limit's multiplicative-decrease
	// trigger: a panicking or wedging device should immediately see
	// less concurrent pressure, even with health tracking disabled.
	g.laneAIMDDecrease(dev)
	if g.cfg.UnhealthyAfter < 0 {
		return
	}
	h := g.health[dev]
	if h == nil {
		return
	}
	if h.consecutive.Add(1) >= int64(g.cfg.UnhealthyAfter) && h.unhealthy.CompareAndSwap(false, true) {
		g.unhealthyByDev[dev].Set(1)
		// A tripped device's rendered bodies leave the fast path with
		// it: eligibility already gates every lookup, and the purge
		// keeps the cache's contents honest about who is serving.
		g.byteCachePurgeDevice(dev)
		g.goBackground(func() { g.probeLoop(h) })
	}
}

// deviceOK resets a device's consecutive-fault count after a successful
// execution. The unhealthy flag itself is only cleared by a probe, so
// recovery is observable as exactly one transition.
func (g *Gateway) deviceOK(dev string) {
	if h := g.health[dev]; h != nil {
		h.consecutive.Store(0)
	}
}

// probeLoop probes an unhealthy device with one real plan per
// Config.ProbeInterval until a probe succeeds (restoring the device) or
// the gateway drains. The probe is a prewarm-style zoo plan against the
// device's planner directly — real planner work, so a success is
// evidence the target actually serves again, not just that the process
// is alive.
func (g *Gateway) probeLoop(h *deviceHealth) {
	p, err := g.pool.Planner(h.device)
	if err != nil {
		return
	}
	for {
		if !g.sleep(g.cfg.ProbeInterval) {
			return
		}
		if hook := g.testHookProbe; hook != nil {
			hook(h.device)
		}
		g.probesByDev[h.device].Inc()
		if g.probe(p) {
			h.consecutive.Store(0)
			h.unhealthy.Store(false)
			g.unhealthyByDev[h.device].Set(0)
			return
		}
	}
}

// probe runs one guarded zoo plan; any panic or error is a failed probe.
func (g *Gateway) probe(p *serve.Planner) bool {
	zg, err := zooGraph(zoo.Names[0])
	if err != nil {
		return false
	}
	_, err = guardedSelect(p, serve.Request{Graph: zg, DeadlineMs: 0.9, Estimator: "profiler"})
	return err == nil
}

// planError maps a planner error to an HTTP status: admission conflicts
// (a name already bound to a different structure) are the client's 409;
// anything else is a 422 — the request was well-formed but could not be
// planned.
func planError(err error) *apiError {
	if errors.Is(err, serve.ErrNameBound) {
		return errf(http.StatusConflict, "name_conflict", "%v", err)
	}
	return errf(http.StatusUnprocessableEntity, "plan_failed", "%v", err)
}

// deliver publishes a call's response and retires its coalescing key.
// The delivered CAS makes publication exactly-once: the winner writes
// the response fields, closes done (the happens-before edge every
// waiter reads through) and releases the pending count; any later
// attempt is a no-op. The inflight delete checks identity, because
// after a watchdog abandonment a fresh call may already own the key.
func (g *Gateway) deliver(c *call, status int, body []byte, retryAfterMs float64) {
	g.mu.Lock()
	if g.inflight[c.key] == c {
		delete(g.inflight, c.key)
	}
	g.mu.Unlock()
	if c.delivered.CompareAndSwap(false, true) {
		c.status, c.body, c.retryAfterMs = status, body, retryAfterMs
		close(c.done)
		g.pending.Done()
	}
}

// SaveState snapshots every planner's warm state (see
// serve.PlannerPool.SaveState). Safe to call while serving.
func (g *Gateway) SaveState(w io.Writer) error { return g.pool.SaveState(w) }

// LoadState restores a snapshot into the pool's caches (see
// serve.PlannerPool.LoadState). Call it on boot, before traffic —
// restoring under load is safe (caches are add-only and transparent)
// but wastes the work of any cold plans already in flight.
func (g *Gateway) LoadState(r io.Reader) error { return g.pool.LoadState(r) }

// SaveStateFile writes the pool snapshot to Config.StatePath atomically
// (unique temp file + rename, so a crash mid-write never leaves a torn
// file — the decoder would reject one anyway, but the previous good
// snapshot is worth keeping), rotating the previous snapshot to
// StatePath+".bak" first so one known-good generation always survives a
// save that lands corrupt. Saves are serialized under a mutex:
// concurrent POST /v1/state/save calls each write their own temp file,
// but interleaving the renames is pointless work, and the lock keeps
// the "last save wins" ordering trivially true. It returns the
// snapshot size in bytes.
func (g *Gateway) SaveStateFile() (int64, error) {
	if g.cfg.StatePath == "" {
		return 0, fmt.Errorf("gateway: no state path configured")
	}
	g.saveMu.Lock()
	defer g.saveMu.Unlock()
	f, err := os.CreateTemp(filepath.Dir(g.cfg.StatePath), filepath.Base(g.cfg.StatePath)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	err = faultinject.Error(faultinject.SnapshotWrite, g.cfg.StatePath)
	if err == nil {
		err = g.pool.SaveState(f)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if faultinject.Fire(faultinject.StateCorrupt, g.cfg.StatePath) {
		// Torn-write simulation: stomp the envelope header so the decoder
		// must reject this generation and restore falls back to .bak.
		f.WriteAt([]byte("\x00CORRUPT\x00"), 0)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	// Best-effort rotation: keep the previous good snapshot as .bak. A
	// missing primary (first save) or a rotation error never fails the
	// save — the new generation is strictly better than nothing.
	if _, serr := os.Stat(g.cfg.StatePath); serr == nil {
		os.Rename(g.cfg.StatePath, g.cfg.StatePath+".bak")
	}
	if err := os.Rename(tmp, g.cfg.StatePath); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	g.stateSaves.Inc()
	return size, nil
}

// LoadStateFile restores the pool's warm state from Config.StatePath,
// falling back to the ".bak" previous-good generation when the primary
// is missing, torn, or from a different build (the snapshot codec
// verifies magic, version and checksum before applying anything, so a
// rejected file restores nothing). It returns the path actually
// restored; when both generations fail, the primary's error.
func (g *Gateway) LoadStateFile() (string, error) {
	if g.cfg.StatePath == "" {
		return "", fmt.Errorf("gateway: no state path configured")
	}
	primaryErr := g.loadFrom(g.cfg.StatePath)
	if primaryErr == nil {
		return g.cfg.StatePath, nil
	}
	bak := g.cfg.StatePath + ".bak"
	if err := g.loadFrom(bak); err == nil {
		g.restoreFallbck.Inc()
		return bak, nil
	}
	return "", primaryErr
}

func (g *Gateway) loadFrom(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return g.pool.LoadState(f)
}

// autosaveLoop is the crash-safety loop behind Config.AutosaveInterval:
// it snapshots warm state on a jittered cadence until the drain starts.
// Jitter is ±10%, deterministic from the planner seed — replicas of a
// fleet started together don't write in lockstep, yet a fixed seed
// reproduces the schedule.
func (g *Gateway) autosaveLoop() {
	rng := rand.New(rand.NewSource(g.cfg.Planner.Seed))
	for {
		jittered := time.Duration(float64(g.cfg.AutosaveInterval) * (0.9 + 0.2*rng.Float64()))
		if !g.sleep(jittered) {
			return
		}
		if _, err := g.SaveStateFile(); err != nil {
			g.autosaveErrors.Inc()
			fmt.Fprintf(os.Stderr, "gateway: autosave failed (previous snapshot stands): %v\n", err)
		} else {
			g.autosaves.Inc()
		}
	}
}

// handleStateSave is the admin endpoint behind POST /v1/state/save:
// it persists the pool's warm state to the configured StatePath. The
// endpoint is gated on that configuration — a gateway without a state
// path (the default) exposes no way to make the daemon write files.
func (g *Gateway) handleStateSave(w http.ResponseWriter, _ *http.Request) {
	if g.cfg.StatePath == "" {
		g.writeErr(w, errf(http.StatusNotFound, "state_disabled",
			"state persistence is not configured (start with a state path to enable)"))
		return
	}
	size, err := g.SaveStateFile()
	if err != nil {
		g.writeErr(w, errf(http.StatusInternalServerError, "state_save_failed", "%v", err))
		return
	}
	b, _ := json.Marshal(map[string]any{"path": g.cfg.StatePath, "bytes": size})
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

// Prewarm plans the calibrated zoo on every registered device in the
// background, so steady-state traffic never sees a cold miss for a
// known architecture. It runs at low priority — one sequential
// goroutine against the planners directly, bypassing the lanes so it
// can never occupy a queue slot or a worker — and stops early if the
// gateway starts draining. Prewarming is pure cache warming: every
// value it computes is one a request would compute identically, so it
// shifts cold costs off the request path without changing any
// response. The returned channel closes when the sweep finishes (or
// aborts on drain); netcut_gateway_prewarmed_total counts completed
// plans.
func (g *Gateway) Prewarm() <-chan struct{} {
	done := make(chan struct{})
	started := g.goBackground(func() {
		defer close(done)
		for _, name := range g.pool.DeviceNames() {
			p, err := g.pool.Planner(name)
			if err != nil {
				continue // Route only registers known names; defensive
			}
			for _, netName := range zoo.Names {
				select {
				case <-g.stop:
					return
				default:
				}
				// Prewarming is the most optional work there is: any
				// brownout pauses the sweep until the level clears (it
				// resumes where it left off; drain still aborts it).
				for g.loadLevel.Load() >= levelBrownout {
					if !g.sleep(g.cfg.OverloadInterval) {
						return
					}
				}
				zg, err := zooGraph(netName)
				if err != nil {
					continue
				}
				if _, err := guardedSelect(p, serve.Request{Graph: zg, DeadlineMs: 0.9, Estimator: "profiler"}); err == nil {
					g.prewarmed.Inc()
				}
			}
		}
	})
	if !started { // already draining: nothing to warm
		close(done)
	}
	return done
}

// guardedSelect is Planner.Select behind the panic boundary, for the
// background paths (prewarm) that run planner work outside a worker's
// containment: a poison zoo entry must not crash the process from a
// warming goroutine either.
func guardedSelect(p *serve.Planner, req serve.Request) (resp *serve.Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("planner panic: %v", r)
		}
	}()
	return p.Select(req)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.reg.WritePrometheus(w)
}

// handleDevices serves the registered targets in registration order —
// the routing tie-break order, default device first — with each
// target's calibration summary and live planning telemetry.
func (g *Gateway) handleDevices(w http.ResponseWriter, _ *http.Request) {
	names := g.pool.DeviceNames()
	out := make([]DeviceWire, 0, len(names))
	for i, name := range names {
		p, err := g.pool.Planner(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		cfg := p.DeviceConfig()
		p99, samples := p.WarmQuantile(0.99)
		if samples < uint64(g.cfg.ShedMinSamples) {
			p99 = 0 // below activation: neither shedding nor ranking reads it
		}
		out = append(out, DeviceWire{
			Name:             cfg.Name,
			Default:          i == 0,
			Healthy:          g.deviceEligible(name),
			Precision:        cfg.Precision.String(),
			PeakMACs:         cfg.PeakMACs,
			MemBandwidth:     cfg.MemBandwidth,
			LaunchOverheadMs: cfg.LaunchOverheadMs,
			Fusion:           cfg.Fusion,
			Executions:       p.Executions(),
			WarmP99Ms:        p99,
		})
	}
	b, err := json.MarshalIndent(map[string]any{"devices": out}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

// handleStats serves the registry snapshot plus per-device planner
// cache stats as one JSON document ("planner" remains the default
// target's stats for single-device dashboards).
func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"metrics":  g.reg.Snapshot(),
		"planner":  g.pool.Default().Stats(),
		"devices":  g.pool.Stats(),
		"overload": g.overloadStats(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}
