// Package gateway is the deadline-aware serving layer of NetCut: a
// JSON-over-HTTP planning API on top of serve.Planner that admits,
// coalesces, batches and — when the client's own latency budget cannot
// be met — sheds requests, with a telemetry registry exposed in
// Prometheus text format at /metrics and as JSON at /debug/stats.
//
// Request flow, in order:
//
//  1. Decode: the body is size-limited (Config.MaxBodyBytes) and the
//     decoded graph stops at graph.Validate — malformed or oversized
//     input is a structured 400/413, never a panic or an OOM.
//  2. Coalesce: requests with identical (name, structure, deadline,
//     estimator) share one in-flight planner execution and receive
//     byte-identical response bodies, singleflight-style. Joining an
//     in-flight call consumes no planner work and no queue slot.
//  3. Shed: a would-be leader whose budget_ms cannot cover the observed
//     warm-path p99 is rejected up front with 429 and a retry hint, as
//     is any arrival finding the admission queue full. Shed requests
//     never consume planner work.
//  4. Batch: admitted leaders sit in a bounded queue; workers drain
//     bursts of them and group compatible requests (same deadline and
//     estimator) into one SelectBatch planner pass.
//  5. Drain: Shutdown stops admission (503 + Retry-After), lets every
//     queued call finish and deliver, then stops the workers.
//
// Determinism contract: coalescing, batching and shedding change which
// executions happen and when — never what any execution returns. A
// coalesced or batched response body is byte-identical to the same
// request served alone through serve.Planner, pinned by the package
// tests and the GOMAXPROCS determinism guard.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"netcut/internal/serve"
	"netcut/internal/telemetry"
)

// Config parameterizes a Gateway. The zero value serves with the
// default planner configuration and the documented knob defaults.
type Config struct {
	// Planner configures the underlying serve.Planner (seed, device,
	// protocol, cache caps).
	Planner serve.Config

	// MaxBodyBytes caps a request body; larger bodies get 413.
	// 0 means DefaultMaxBodyBytes; negative means no limit.
	MaxBodyBytes int64
	// QueueDepth bounds the admission queue; arrivals beyond it are
	// shed with 429. 0 means DefaultQueueDepth.
	QueueDepth int
	// BatchMax caps how many queued requests one worker drains into a
	// single planner pass. 0 means DefaultBatchMax.
	BatchMax int
	// Workers is the number of batch workers. 0 means DefaultWorkers.
	Workers int
	// ShedMinSamples is how many warm executions the latency histogram
	// must hold before budget-based shedding activates (shedding on a
	// cold estimate would reject half of a fresh server's first
	// clients). 0 means DefaultShedMinSamples.
	ShedMinSamples int
}

// Defaults for the Config knobs.
const (
	DefaultMaxBodyBytes   = 1 << 20 // 1 MiB: ~10x the largest zoo graph's wire form
	DefaultQueueDepth     = 256
	DefaultBatchMax       = 16
	DefaultWorkers        = 2
	DefaultShedMinSamples = 64
)

func (c *Config) fill() error {
	// MaxBodyBytes is the one knob where negative is meaningful (no
	// limit); for the rest a negative value is a configuration error,
	// surfaced from New rather than panicking in a channel make or a
	// WaitGroup.
	for _, k := range []struct {
		name string
		val  int
	}{
		{"QueueDepth", c.QueueDepth},
		{"BatchMax", c.BatchMax},
		{"Workers", c.Workers},
		{"ShedMinSamples", c.ShedMinSamples},
	} {
		if k.val < 0 {
			return fmt.Errorf("negative %s %d", k.name, k.val)
		}
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.BatchMax == 0 {
		c.BatchMax = DefaultBatchMax
	}
	if c.Workers == 0 {
		c.Workers = DefaultWorkers
	}
	if c.ShedMinSamples == 0 {
		c.ShedMinSamples = DefaultShedMinSamples
	}
	return nil
}

// call is one in-flight planner execution and the response every
// coalesced waiter shares. body and status are written exactly once,
// before done is closed.
type call struct {
	key    coalesceKey
	req    serve.Request
	done   chan struct{}
	status int
	body   []byte
}

// Gateway is the serving layer. Construct with New, expose Handler on
// an http.Server, and call Shutdown to drain.
type Gateway struct {
	cfg     Config
	planner *serve.Planner
	reg     *telemetry.Registry
	mux     *http.ServeMux
	queue   chan *call

	mu        sync.Mutex
	inflight  map[coalesceKey]*call
	draining  bool
	drainDone chan struct{}  // closed once the drain completes
	pending   sync.WaitGroup // queued, not yet delivered calls
	workers   sync.WaitGroup

	requests      *telemetry.Counter
	coalesced     *telemetry.Counter
	shedBudget    *telemetry.Counter
	shedQueue     *telemetry.Counter
	shedDraining  *telemetry.Counter
	rejected      *telemetry.Counter
	batches       *telemetry.Counter
	batchedReqs   *telemetry.Counter
	planErrors    *telemetry.Counter
	requestLatMs  *telemetry.Histogram
	testHookBatch func(n int) // test-only: runs in a worker before a planner pass of n requests
}

// New builds the gateway, instruments the planner and every cache layer
// under it, and starts the batch workers. Callers own the HTTP server;
// see Handler.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.fill(); err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	p, err := serve.New(cfg.Planner)
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	reg := telemetry.NewRegistry()
	p.Instrument(reg)

	g := &Gateway{
		cfg:      cfg,
		planner:  p,
		reg:      reg,
		queue:    make(chan *call, cfg.QueueDepth),
		inflight: make(map[coalesceKey]*call),

		requests:     reg.Counter("netcut_gateway_requests_total", "plan requests received"),
		coalesced:    reg.Counter("netcut_gateway_coalesced_total", "requests that joined an identical in-flight execution"),
		shedBudget:   reg.Counter("netcut_gateway_shed_budget_total", "requests shed because budget_ms cannot cover the warm p99"),
		shedQueue:    reg.Counter("netcut_gateway_shed_queue_full_total", "requests shed because the admission queue was full"),
		shedDraining: reg.Counter("netcut_gateway_shed_draining_total", "requests rejected during drain"),
		rejected:     reg.Counter("netcut_gateway_rejected_total", "malformed requests rejected at the decode boundary"),
		batches:      reg.Counter("netcut_gateway_batches_total", "planner passes executed by the batch workers"),
		batchedReqs:  reg.Counter("netcut_gateway_batched_requests_total", "requests served through batched planner passes"),
		planErrors:   reg.Counter("netcut_gateway_plan_errors_total", "admitted requests the planner returned an error for"),
		requestLatMs: reg.Histogram("netcut_gateway_request_ms", "wall-clock request latency of admitted plan requests", nil),
	}
	reg.GaugeFunc("netcut_gateway_queue_depth", "requests waiting in the admission queue",
		func() float64 { return float64(len(g.queue)) })
	reg.GaugeFunc("netcut_gateway_inflight", "distinct in-flight executions (coalescing keys)",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.inflight))
		})

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/plan", g.handlePlan)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /debug/stats", g.handleStats)
	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	g.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go g.worker()
	}
	return g, nil
}

// Handler returns the gateway's HTTP surface: POST /v1/plan,
// GET /metrics, GET /debug/stats, GET /healthz.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Planner exposes the underlying planning service (for embedding the
// gateway and the planner API in one process).
func (g *Gateway) Planner() *serve.Planner { return g.planner }

// Registry exposes the telemetry registry, so embedders can add their
// own series next to the gateway's.
func (g *Gateway) Registry() *telemetry.Registry { return g.reg }

// Shutdown drains the gateway: new plan requests are rejected with 503,
// every already-admitted call runs to completion and delivers its
// response, then the workers stop. Safe to call more than once —
// concurrent and repeated callers all wait on the same drain, so nil
// always means "fully drained". The context bounds each caller's wait.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		g.drainDone = make(chan struct{})
		go func() {
			g.pending.Wait() // all queued calls delivered
			close(g.queue)   // no producer can enqueue once draining is set
			g.workers.Wait()
			close(g.drainDone)
		}()
	}
	done := g.drainDone
	g.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (g *Gateway) writeErr(w http.ResponseWriter, e *apiError) {
	if e.wire.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(int64(math.Ceil(e.wire.RetryAfterMs/1000))))
	}
	b, _ := json.Marshal(e.wire)
	writeJSON(w, e.status, append(b, '\n'))
}

// handlePlan is the admission path described in the package comment.
func (g *Gateway) handlePlan(w http.ResponseWriter, r *http.Request) {
	g.requests.Inc()
	body := r.Body
	if g.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	}
	dec, aerr := decodeRequest(body)
	if aerr != nil {
		g.rejected.Inc()
		g.writeErr(w, aerr)
		return
	}

	start := time.Now()
	c, aerr := g.admit(dec)
	if aerr != nil {
		g.writeErr(w, aerr)
		return
	}

	select {
	case <-c.done:
		g.requestLatMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		writeJSON(w, c.status, c.body)
	case <-r.Context().Done():
		// The client went away; the execution keeps running for any
		// remaining waiters (its result is cached work, not waste).
	}
}

// admit coalesces, sheds or enqueues one decoded request, returning the
// call to wait on.
func (g *Gateway) admit(dec *decodedRequest) (*call, *apiError) {
	g.mu.Lock()
	defer g.mu.Unlock()

	if g.draining {
		g.shedDraining.Inc()
		e := errf(http.StatusServiceUnavailable, "draining", "gateway is draining")
		e.wire.RetryAfterMs = 1000
		return nil, e
	}
	// Coalesce before shedding: joining an in-flight execution consumes
	// no planner work, so even a budget-constrained request is better
	// served than shed.
	if c, ok := g.inflight[dec.key]; ok {
		g.coalesced.Inc()
		return c, nil
	}
	// Deadline-aware shedding: if the client's remaining budget cannot
	// cover even the warm path's p99, queueing it only manufactures a
	// guaranteed-late response.
	if dec.budgetMs > 0 {
		p99, samples := g.planner.WarmQuantile(0.99)
		if samples >= uint64(g.cfg.ShedMinSamples) && dec.budgetMs < p99 {
			g.shedBudget.Inc()
			e := errf(http.StatusTooManyRequests, "budget_too_small",
				"budget %.3f ms is below the warm-path p99 of %.3f ms", dec.budgetMs, p99)
			e.wire.RetryAfterMs = p99
			return nil, e
		}
	}
	c := &call{key: dec.key, req: dec.req, done: make(chan struct{})}
	select {
	case g.queue <- c:
		g.inflight[dec.key] = c
		g.pending.Add(1)
		return c, nil
	default:
		g.shedQueue.Inc()
		e := errf(http.StatusTooManyRequests, "queue_full",
			"admission queue of %d is full", g.cfg.QueueDepth)
		p99, _ := g.planner.WarmQuantile(0.99)
		e.wire.RetryAfterMs = math.Max(p99, 1)
		return nil, e
	}
}

// worker drains the admission queue: one blocking receive, a
// cooperative yield, then an opportunistic non-blocking sweep up to
// BatchMax, grouped into compatible planner passes.
func (g *Gateway) worker() {
	defer g.workers.Done()
	for first := range g.queue {
		// The yield lets the rest of a concurrent burst reach admission
		// before this pass executes: arrivals for the same key join the
		// in-flight call (coalesce), compatible distinct ones land in
		// the queue for the sweep below (batch). Without it, a
		// fully-loaded single-core scheduler runs the worker ahead of
		// the burst's remaining handlers and serializes the burst into
		// per-request executions. Costs nothing when idle.
		runtime.Gosched()
		batch := []*call{first}
	sweep:
		for len(batch) < g.cfg.BatchMax {
			select {
			case c, ok := <-g.queue:
				if !ok {
					break sweep
				}
				batch = append(batch, c)
			default:
				break sweep
			}
		}
		g.execute(batch)
	}
}

// execute groups a drained burst by (deadline, estimator) and runs each
// group as one SelectBatch planner pass, delivering every call's
// response. Grouping preserves arrival order within a group, and
// responses are position-indexed, so batching cannot permute results.
func (g *Gateway) execute(batch []*call) {
	type groupKey struct {
		deadline  float64
		estimator string
	}
	order := make([]groupKey, 0, len(batch))
	groups := make(map[groupKey][]*call, 1)
	for _, c := range batch {
		k := groupKey{c.req.DeadlineMs, c.req.Estimator}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		calls := groups[k]
		if hook := g.testHookBatch; hook != nil {
			hook(len(calls))
		}
		reqs := make([]serve.Request, len(calls))
		for i, c := range calls {
			reqs[i] = c.req
		}
		g.batches.Inc()
		g.batchedReqs.Add(uint64(len(calls)))
		resps, errs := g.planner.SelectBatch(reqs)
		for i, c := range calls {
			if errs[i] != nil {
				g.planErrors.Inc()
				e := planError(errs[i])
				b, _ := json.Marshal(e.wire)
				c.status, c.body = e.status, append(b, '\n')
			} else {
				c.status, c.body = http.StatusOK, EncodeResponse(resps[i])
			}
			g.deliver(c)
		}
	}
}

// planError maps a planner error to an HTTP status: admission conflicts
// (a name already bound to a different structure) are the client's 409;
// anything else is a 422 — the request was well-formed but could not be
// planned.
func planError(err error) *apiError {
	if errors.Is(err, serve.ErrNameBound) {
		return errf(http.StatusConflict, "name_conflict", "%v", err)
	}
	return errf(http.StatusUnprocessableEntity, "plan_failed", "%v", err)
}

// deliver publishes a call's response and retires its coalescing key.
func (g *Gateway) deliver(c *call) {
	g.mu.Lock()
	delete(g.inflight, c.key)
	g.mu.Unlock()
	close(c.done)
	g.pending.Done()
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.reg.WritePrometheus(w)
}

// handleStats serves the registry snapshot plus the planner's cache
// stats as one JSON document.
func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"metrics": g.reg.Snapshot(),
		"planner": g.planner.Stats(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}
