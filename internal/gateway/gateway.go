// Package gateway is the deadline-aware serving layer of NetCut: a
// JSON-over-HTTP planning API on top of a device-keyed
// serve.PlannerPool that routes, admits, coalesces, batches and —
// when the client's own latency budget cannot be met on any target —
// sheds requests, with a telemetry registry exposed in Prometheus text
// format at /metrics and as JSON at /debug/stats.
//
// Request flow, in order:
//
//  1. Decode: the body is size-limited (Config.MaxBodyBytes) and the
//     decoded graph stops at graph.Validate — malformed or oversized
//     input is a structured 400/413, never a panic or an OOM.
//  2. Route: the request's target ("" = default device, "auto" =
//     fastest device whose estimated warm-path latency fits the
//     budget, or a registered name from GET /v1/devices) resolves to
//     one device's planner; an unregistered name is a 400.
//  3. Coalesce: requests with identical (device, name, structure,
//     deadline, estimator) share one in-flight planner execution and
//     receive byte-identical response bodies, singleflight-style.
//     Joining an in-flight call consumes no planner work and no queue
//     slot.
//  4. Shed: a would-be leader whose budget_ms cannot cover the
//     resolved target's warm-path p99 — for "auto", any target's — is
//     rejected up front with 429 and a retry hint, as is any arrival
//     finding the admission queue full. Shed requests never consume
//     planner work.
//  5. Batch: admitted leaders sit in their resolved device's bounded
//     lane — one queue plus workers per registered device, so one slow
//     target's cold plan can never head-of-line-block another target's
//     warm traffic — where that lane's workers drain bursts of them,
//     holding the pass open for Config.BatchWindow when staggered
//     arrivals are expected, and group compatible requests (same
//     deadline and estimator; lanes never span devices) into one
//     SelectBatch planner pass. Lane capacities divide the configured
//     QueueDepth/Workers totals evenly across devices (minimum 1
//     each), the same division rule the planner pool applies to its
//     cache caps.
//  6. Drain: Shutdown stops admission (503 + Retry-After), lets every
//     queued call finish and deliver, then stops every lane's workers.
//
// Warm-state persistence: POST /v1/state/save (enabled by
// Config.StatePath) snapshots every planner's caches to disk via
// serve.PlannerPool.SaveState, and LoadState restores a snapshot on
// boot, so a restarted daemon's first requests run on the warm path.
// Prewarm plans the calibrated zoo across the fleet in the background
// to eliminate the remaining cold misses.
//
// Determinism contract: routing, coalescing, batching and shedding
// change which executions happen, where and when — never what any
// execution returns. A coalesced or batched response body is
// byte-identical to the same request served alone through that
// device's serve.Planner, and an auto-routed body to the same request
// naming the resolved device explicitly — pinned by the package tests
// and the GOMAXPROCS determinism guard.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"netcut/internal/device"
	"netcut/internal/serve"
	"netcut/internal/telemetry"
	"netcut/internal/zoo"
)

// Config parameterizes a Gateway. The zero value serves the full
// device registry with the default planner configuration and the
// documented knob defaults.
type Config struct {
	// Planner is the per-device planner template (seed, protocol,
	// pool-wide cache caps). Its Device field selects a single-target
	// gateway when Devices is empty.
	Planner serve.Config
	// Devices lists the target calibrations this gateway serves, in
	// the order "auto" routing tie-breaks on; the first is the default
	// target. Empty means: Planner.Device alone if set, otherwise the
	// full device registry (device.Profiles, Xavier first).
	Devices []device.Config

	// MaxBodyBytes caps a request body; larger bodies get 413.
	// 0 means DefaultMaxBodyBytes; negative means no limit.
	MaxBodyBytes int64
	// QueueDepth bounds the total admission queue; it is divided evenly
	// across the per-device lanes (minimum 1 each, the pool cache-cap
	// division rule), and arrivals beyond a lane's slice are shed with
	// 429. 0 means DefaultQueueDepth.
	QueueDepth int
	// BatchMax caps how many queued requests one worker drains into a
	// single planner pass. 0 means DefaultBatchMax.
	BatchMax int
	// Workers is the total number of batch workers, divided evenly
	// across the per-device lanes (minimum 1 each) so no device is ever
	// without a worker. 0 means DefaultWorkers.
	Workers int
	// StatePath enables warm-state persistence: POST /v1/state/save
	// atomically writes the pool's snapshot there (and cmd/netserve
	// saves on SIGTERM drain / restores on boot). Empty disables the
	// endpoint.
	StatePath string
	// ShedMinSamples is how many warm executions a target's latency
	// histogram must hold before budget-based shedding (and its warm
	// estimate's participation in "auto" ranking) activates — shedding
	// on a cold estimate would reject half of a fresh server's first
	// clients. 0 means DefaultShedMinSamples.
	ShedMinSamples int
	// BatchWindow is how long a worker holds a drained burst open for
	// stragglers before executing its planner pass: with socket-
	// staggered bursts, a small window (hundreds of microseconds to a
	// few milliseconds) lets the whole burst coalesce/batch into one
	// pass instead of two or three. 0 (the default) keeps the
	// zero-latency behavior: one cooperative yield, then a
	// non-blocking sweep. Negative is a configuration error.
	BatchWindow time.Duration
}

// Defaults for the Config knobs.
const (
	DefaultMaxBodyBytes   = 1 << 20 // 1 MiB: ~10x the largest zoo graph's wire form
	DefaultQueueDepth     = 256
	DefaultBatchMax       = 16
	DefaultWorkers        = 2
	DefaultShedMinSamples = 64
)

func (c *Config) fill() error {
	// MaxBodyBytes is the one knob where negative is meaningful (no
	// limit); for the rest a negative value is a configuration error,
	// surfaced from New rather than panicking in a channel make or a
	// WaitGroup.
	for _, k := range []struct {
		name string
		val  int
	}{
		{"QueueDepth", c.QueueDepth},
		{"BatchMax", c.BatchMax},
		{"Workers", c.Workers},
		{"ShedMinSamples", c.ShedMinSamples},
	} {
		if k.val < 0 {
			return fmt.Errorf("negative %s %d", k.name, k.val)
		}
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("negative BatchWindow %v", c.BatchWindow)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.BatchMax == 0 {
		c.BatchMax = DefaultBatchMax
	}
	if c.Workers == 0 {
		c.Workers = DefaultWorkers
	}
	if c.ShedMinSamples == 0 {
		c.ShedMinSamples = DefaultShedMinSamples
	}
	return nil
}

// call is one in-flight planner execution and the response every
// coalesced waiter shares. planner is the resolved target's planner
// (key.device names it). body and status are written exactly once,
// before done is closed.
type call struct {
	key     coalesceKey
	req     serve.Request
	planner *serve.Planner
	done    chan struct{}
	status  int
	body    []byte
}

// lane is one device's slice of the admission machinery: a bounded
// queue plus dedicated workers. Lane assignment is the resolved-device
// routing decision the admission path already makes, so lanes shift
// which worker runs an execution and when — never what it returns —
// and a cold plan occupying one lane's workers cannot delay another
// device's traffic.
type lane struct {
	device    string
	queue     chan *call
	shedQueue *telemetry.Counter // queue_full sheds on this lane
}

// Gateway is the serving layer. Construct with New, expose Handler on
// an http.Server, and call Shutdown to drain.
type Gateway struct {
	cfg   Config
	pool  *serve.PlannerPool
	reg   *telemetry.Registry
	mux   *http.ServeMux
	lanes map[string]*lane // one per registered device

	// laneQueueCap / laneWorkers are the per-lane slices of the
	// configured QueueDepth / Workers totals.
	laneQueueCap int
	laneWorkers  int

	mu        sync.Mutex
	saveMu    sync.Mutex // serializes SaveStateFile writers
	inflight  map[coalesceKey]*call
	draining  bool
	drainDone chan struct{}  // closed once the drain completes
	pending   sync.WaitGroup // queued, not yet delivered calls
	workers   sync.WaitGroup

	requests      *telemetry.Counter
	coalesced     *telemetry.Counter
	autoRouted    *telemetry.Counter
	shedBudget    *telemetry.Counter
	shedDraining  *telemetry.Counter
	rejected      *telemetry.Counter
	batches       *telemetry.Counter
	batchedReqs   *telemetry.Counter
	planErrors    *telemetry.Counter
	prewarmed     *telemetry.Counter
	stateSaves    *telemetry.Counter
	requestLatMs  *telemetry.Histogram
	testHookBatch func(device string, n int) // test-only: runs in a worker before a planner pass of n requests on one device
}

// New builds the gateway — one planner per registered device behind a
// serve.PlannerPool — instruments every planner and cache layer under
// it (per-device series carry a device label), and starts the batch
// workers. Callers own the HTTP server; see Handler.
func New(cfg Config) (*Gateway, error) {
	if err := cfg.fill(); err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	devs := cfg.Devices
	if len(devs) == 0 && cfg.Planner.Device != nil {
		devs = []device.Config{*cfg.Planner.Device}
	}
	base := cfg.Planner
	base.Device = nil
	pool, err := serve.NewPool(serve.PoolConfig{Base: base, Devices: devs})
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	reg := telemetry.NewRegistry()
	pool.Instrument(reg)

	g := &Gateway{
		cfg:      cfg,
		pool:     pool,
		reg:      reg,
		inflight: make(map[coalesceKey]*call),

		requests:     reg.Counter("netcut_gateway_requests_total", "plan requests received"),
		coalesced:    reg.Counter("netcut_gateway_coalesced_total", "requests that joined an identical in-flight execution"),
		autoRouted:   reg.Counter("netcut_gateway_auto_routed_total", "requests with target \"auto\" resolved to a device"),
		shedBudget:   reg.Counter("netcut_gateway_shed_budget_total", "requests shed because budget_ms cannot cover the warm p99"),
		shedDraining: reg.Counter("netcut_gateway_shed_draining_total", "requests rejected during drain"),
		rejected:     reg.Counter("netcut_gateway_rejected_total", "malformed requests rejected at the decode boundary"),
		batches:      reg.Counter("netcut_gateway_batches_total", "planner passes executed by the batch workers"),
		batchedReqs:  reg.Counter("netcut_gateway_batched_requests_total", "requests served through batched planner passes"),
		planErrors:   reg.Counter("netcut_gateway_plan_errors_total", "admitted requests the planner returned an error for"),
		prewarmed:    reg.Counter("netcut_gateway_prewarmed_total", "zoo x fleet plans completed by startup prewarming"),
		stateSaves:   reg.Counter("netcut_gateway_state_saves_total", "warm-state snapshots written to the configured state path"),
		requestLatMs: reg.Histogram("netcut_gateway_request_ms", "wall-clock request latency of admitted plan requests", nil),
	}
	reg.GaugeFunc("netcut_gateway_inflight", "distinct in-flight executions (coalescing keys)",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.inflight))
		})

	// One lane per registered device: the configured queue-depth and
	// worker totals divide evenly across lanes (minimum 1 each, the
	// same division rule the planner pool applies to cache caps), and
	// each lane's queue depth and queue_full sheds are device-labeled
	// series on the shared registry.
	names := pool.DeviceNames()
	g.laneQueueCap = cfg.QueueDepth / len(names)
	if g.laneQueueCap < 1 {
		g.laneQueueCap = 1
	}
	g.laneWorkers = cfg.Workers / len(names)
	if g.laneWorkers < 1 {
		g.laneWorkers = 1
	}
	g.lanes = make(map[string]*lane, len(names))
	for _, name := range names {
		labels := []telemetry.Label{{Key: "device", Value: name}}
		l := &lane{
			device: name,
			queue:  make(chan *call, g.laneQueueCap),
			shedQueue: reg.CounterWith("netcut_gateway_shed_queue_full_total",
				"requests shed because the device's admission lane was full", labels),
		}
		reg.GaugeFuncWith("netcut_gateway_queue_depth",
			"requests waiting in the device's admission lane", labels,
			func() float64 { return float64(len(l.queue)) })
		g.lanes[name] = l
	}

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/plan", g.handlePlan)
	g.mux.HandleFunc("GET /v1/devices", g.handleDevices)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /debug/stats", g.handleStats)
	g.mux.HandleFunc("POST /v1/state/save", g.handleStateSave)
	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	for _, name := range names {
		l := g.lanes[name]
		g.workers.Add(g.laneWorkers)
		for i := 0; i < g.laneWorkers; i++ {
			go g.worker(l)
		}
	}
	return g, nil
}

// Handler returns the gateway's HTTP surface: POST /v1/plan,
// GET /metrics, GET /debug/stats, GET /healthz.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Planner exposes the default target's planning service (for embedding
// the gateway and the planner API in one process).
func (g *Gateway) Planner() *serve.Planner { return g.pool.Default() }

// Pool exposes the device-keyed planner pool behind the gateway.
func (g *Gateway) Pool() *serve.PlannerPool { return g.pool }

// Registry exposes the telemetry registry, so embedders can add their
// own series next to the gateway's.
func (g *Gateway) Registry() *telemetry.Registry { return g.reg }

// Shutdown drains the gateway: new plan requests are rejected with 503,
// every already-admitted call runs to completion and delivers its
// response, then the workers stop. Safe to call more than once —
// concurrent and repeated callers all wait on the same drain, so nil
// always means "fully drained". The context bounds each caller's wait.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		g.drainDone = make(chan struct{})
		go func() {
			g.pending.Wait() // all queued calls delivered
			for _, l := range g.lanes {
				close(l.queue) // no producer can enqueue once draining is set
			}
			g.workers.Wait()
			close(g.drainDone)
		}()
	}
	done := g.drainDone
	g.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (g *Gateway) writeErr(w http.ResponseWriter, e *apiError) {
	if e.wire.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(int64(math.Ceil(e.wire.RetryAfterMs/1000))))
	}
	b, _ := json.Marshal(e.wire)
	writeJSON(w, e.status, append(b, '\n'))
}

// handlePlan is the admission path described in the package comment.
func (g *Gateway) handlePlan(w http.ResponseWriter, r *http.Request) {
	g.requests.Inc()
	body := r.Body
	if g.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	}
	dec, aerr := decodeRequest(body)
	if aerr != nil {
		g.rejected.Inc()
		g.writeErr(w, aerr)
		return
	}

	start := time.Now()
	c, aerr := g.admit(dec)
	if aerr != nil {
		g.writeErr(w, aerr)
		return
	}

	select {
	case <-c.done:
		g.requestLatMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		writeJSON(w, c.status, c.body)
	case <-r.Context().Done():
		// The client went away; the execution keeps running for any
		// remaining waiters (its result is cached work, not waste).
	}
}

// windowMs is the timed batching window expressed in the latency
// arithmetic's unit. Every pass leader waits up to this long before
// executing, so the budget shed predicates fold it into the expected
// service time — admitting a request whose budget covers only the
// bare warm p99 would queue it into guaranteed lateness.
func (g *Gateway) windowMs() float64 {
	return float64(g.cfg.BatchWindow) / float64(time.Millisecond)
}

// admit resolves the target, then coalesces, sheds or enqueues one
// decoded request, returning the call to wait on. Target resolution —
// "" is the default device, "auto" routes to the fastest device whose
// estimated warm-path latency fits the budget, anything else must be
// a registered name — is admission policy: it decides where an
// execution runs, never what that execution returns, and the resolved
// device becomes part of the coalescing key, so an auto-routed body is
// byte-identical to the same request naming the device explicitly.
func (g *Gateway) admit(dec *decodedRequest) (*call, *apiError) {
	g.mu.Lock()
	defer g.mu.Unlock()

	if g.draining {
		g.shedDraining.Inc()
		e := errf(http.StatusServiceUnavailable, "draining", "gateway is draining")
		e.wire.RetryAfterMs = 1000
		return nil, e
	}
	switch dec.target {
	case "":
		p := g.pool.Default()
		dec.key.device = p.DeviceName()
		return g.admitOn(dec, p, true)
	case "auto":
		name, est, ok := g.pool.Route(dec.budgetMs, g.windowMs(), uint64(g.cfg.ShedMinSamples))
		if ok {
			g.autoRouted.Inc()
			dec.key.device = name
			p, err := g.pool.Planner(name)
			if err != nil {
				// Route only returns registered names.
				panic(err)
			}
			// Route already applied the budget predicate to the chosen
			// device; re-checking here could shed a request it just
			// qualified (the estimate moves between the two reads).
			return g.admitOn(dec, p, false)
		}
		// No device qualifies — but coalesce before shedding: an
		// identical execution already in flight on any device serves
		// this request at zero planner cost, which beats a 429.
		for _, devName := range g.pool.DeviceNames() {
			k := dec.key
			k.device = devName
			if c, inFlight := g.inflight[k]; inFlight {
				g.coalesced.Inc()
				return c, nil
			}
		}
		g.shedBudget.Inc()
		e := errf(http.StatusTooManyRequests, "budget_too_small",
			"budget %.3f ms is below every device's estimated warm-path latency (fastest: %.3f ms)",
			dec.budgetMs, est)
		e.wire.RetryAfterMs = est
		return nil, e
	default:
		p, err := g.pool.Planner(dec.target)
		if err != nil {
			g.rejected.Inc()
			return nil, errf(http.StatusBadRequest, "unknown_device", "%v", err)
		}
		dec.key.device = dec.target
		return g.admitOn(dec, p, true)
	}
}

// admitOn coalesces, sheds or enqueues a target-resolved request on
// its planner. shedCheck is false when the caller already applied the
// budget predicate (the auto route).
func (g *Gateway) admitOn(dec *decodedRequest, planner *serve.Planner, shedCheck bool) (*call, *apiError) {
	// Coalesce before shedding: joining an in-flight execution consumes
	// no planner work, so even a budget-constrained request is better
	// served than shed.
	if c, ok := g.inflight[dec.key]; ok {
		g.coalesced.Inc()
		return c, nil
	}
	// Deadline-aware shedding: if the client's remaining budget cannot
	// cover the target's warm-path p99 plus the batching window every
	// pass leader waits out, queueing it only manufactures a
	// guaranteed-late response.
	if shedCheck && dec.budgetMs > 0 {
		p99, samples := planner.WarmQuantile(0.99)
		need := p99 + g.windowMs()
		if samples >= uint64(g.cfg.ShedMinSamples) && dec.budgetMs < need {
			g.shedBudget.Inc()
			e := errf(http.StatusTooManyRequests, "budget_too_small",
				"budget %.3f ms is below device %s's estimated warm-path latency of %.3f ms",
				dec.budgetMs, dec.key.device, need)
			e.wire.RetryAfterMs = need
			return nil, e
		}
	}
	c := &call{key: dec.key, req: dec.req, planner: planner, done: make(chan struct{})}
	l := g.lanes[dec.key.device]
	select {
	case l.queue <- c:
		g.inflight[dec.key] = c
		g.pending.Add(1)
		return c, nil
	default:
		l.shedQueue.Inc()
		e := errf(http.StatusTooManyRequests, "queue_full",
			"admission lane of %d for device %s is full", g.laneQueueCap, l.device)
		p99, _ := planner.WarmQuantile(0.99)
		e.wire.RetryAfterMs = math.Max(p99+g.windowMs(), 1)
		return nil, e
	}
}

// worker drains one device's admission lane: one blocking receive, a
// cooperative yield, an optional timed batching window, then an
// opportunistic non-blocking sweep up to BatchMax, grouped into
// compatible planner passes. Workers never cross lanes, so a cold plan
// here cannot delay any other device's queue.
func (g *Gateway) worker(l *lane) {
	defer g.workers.Done()
	for first := range l.queue {
		// The yield lets the rest of a concurrent burst reach admission
		// before this pass executes: arrivals for the same key join the
		// in-flight call (coalesce), compatible distinct ones land in
		// the queue for the sweep below (batch). Without it, a
		// fully-loaded single-core scheduler runs the worker ahead of
		// the burst's remaining handlers and serializes the burst into
		// per-request executions. Costs nothing when idle.
		runtime.Gosched()
		batch := []*call{first}
		if g.cfg.BatchWindow > 0 {
			// Timed window: hold the pass open for socket-staggered
			// stragglers. The yield catches bursts already in flight;
			// the window catches bursts whose members are still
			// arriving over real connections. Like every admission
			// mechanism it shifts when executions run, never what they
			// return. The cost: every pass leader — including a lone,
			// uncontended request — waits up to BatchWindow before
			// executing, which is why the budget shed predicates add
			// windowMs to the expected service time.
			timer := time.NewTimer(g.cfg.BatchWindow)
		window:
			for len(batch) < g.cfg.BatchMax {
				select {
				case c, ok := <-l.queue:
					if !ok {
						break window // draining: run what we have
					}
					batch = append(batch, c)
				case <-timer.C:
					break window
				}
			}
			timer.Stop()
		}
	sweep:
		for len(batch) < g.cfg.BatchMax {
			select {
			case c, ok := <-l.queue:
				if !ok {
					break sweep
				}
				batch = append(batch, c)
			default:
				break sweep
			}
		}
		g.execute(batch)
	}
}

// execute groups a drained burst by (device, deadline, estimator) and
// runs each group as one SelectBatch pass on that device's planner,
// delivering every call's response. Grouping preserves arrival order
// within a group, and responses are position-indexed, so batching
// cannot permute results; two targets never share a planner pass.
func (g *Gateway) execute(batch []*call) {
	type groupKey struct {
		device    string
		deadline  float64
		estimator string
	}
	order := make([]groupKey, 0, len(batch))
	groups := make(map[groupKey][]*call, 1)
	for _, c := range batch {
		k := groupKey{c.key.device, c.req.DeadlineMs, c.req.Estimator}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		calls := groups[k]
		if hook := g.testHookBatch; hook != nil {
			hook(k.device, len(calls))
		}
		reqs := make([]serve.Request, len(calls))
		for i, c := range calls {
			reqs[i] = c.req
		}
		g.batches.Inc()
		g.batchedReqs.Add(uint64(len(calls)))
		resps, errs := calls[0].planner.SelectBatch(reqs)
		for i, c := range calls {
			if errs[i] != nil {
				g.planErrors.Inc()
				e := planError(errs[i])
				b, _ := json.Marshal(e.wire)
				c.status, c.body = e.status, append(b, '\n')
			} else {
				c.status, c.body = http.StatusOK, EncodeResponse(resps[i])
			}
			g.deliver(c)
		}
	}
}

// planError maps a planner error to an HTTP status: admission conflicts
// (a name already bound to a different structure) are the client's 409;
// anything else is a 422 — the request was well-formed but could not be
// planned.
func planError(err error) *apiError {
	if errors.Is(err, serve.ErrNameBound) {
		return errf(http.StatusConflict, "name_conflict", "%v", err)
	}
	return errf(http.StatusUnprocessableEntity, "plan_failed", "%v", err)
}

// deliver publishes a call's response and retires its coalescing key.
func (g *Gateway) deliver(c *call) {
	g.mu.Lock()
	delete(g.inflight, c.key)
	g.mu.Unlock()
	close(c.done)
	g.pending.Done()
}

// SaveState snapshots every planner's warm state (see
// serve.PlannerPool.SaveState). Safe to call while serving.
func (g *Gateway) SaveState(w io.Writer) error { return g.pool.SaveState(w) }

// LoadState restores a snapshot into the pool's caches (see
// serve.PlannerPool.LoadState). Call it on boot, before traffic —
// restoring under load is safe (caches are add-only and transparent)
// but wastes the work of any cold plans already in flight.
func (g *Gateway) LoadState(r io.Reader) error { return g.pool.LoadState(r) }

// SaveStateFile writes the pool snapshot to Config.StatePath atomically
// (unique temp file + rename, so a crash mid-write never leaves a torn
// file — the decoder would reject one anyway, but the previous good
// snapshot is worth keeping). Saves are serialized under a mutex:
// concurrent POST /v1/state/save calls each write their own temp file,
// but interleaving the renames is pointless work, and the lock keeps
// the "last save wins" ordering trivially true. It returns the
// snapshot size in bytes.
func (g *Gateway) SaveStateFile() (int64, error) {
	if g.cfg.StatePath == "" {
		return 0, fmt.Errorf("gateway: no state path configured")
	}
	g.saveMu.Lock()
	defer g.saveMu.Unlock()
	f, err := os.CreateTemp(filepath.Dir(g.cfg.StatePath), filepath.Base(g.cfg.StatePath)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	if err := g.pool.SaveState(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, g.cfg.StatePath); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	g.stateSaves.Inc()
	return size, nil
}

// handleStateSave is the admin endpoint behind POST /v1/state/save:
// it persists the pool's warm state to the configured StatePath. The
// endpoint is gated on that configuration — a gateway without a state
// path (the default) exposes no way to make the daemon write files.
func (g *Gateway) handleStateSave(w http.ResponseWriter, _ *http.Request) {
	if g.cfg.StatePath == "" {
		g.writeErr(w, errf(http.StatusNotFound, "state_disabled",
			"state persistence is not configured (start with a state path to enable)"))
		return
	}
	size, err := g.SaveStateFile()
	if err != nil {
		g.writeErr(w, errf(http.StatusInternalServerError, "state_save_failed", "%v", err))
		return
	}
	b, _ := json.Marshal(map[string]any{"path": g.cfg.StatePath, "bytes": size})
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

// Prewarm plans the calibrated zoo on every registered device in the
// background, so steady-state traffic never sees a cold miss for a
// known architecture. It runs at low priority — one sequential
// goroutine against the planners directly, bypassing the lanes so it
// can never occupy a queue slot or a worker — and stops early if the
// gateway starts draining. Prewarming is pure cache warming: every
// value it computes is one a request would compute identically, so it
// shifts cold costs off the request path without changing any
// response. The returned channel closes when the sweep finishes (or
// aborts on drain); netcut_gateway_prewarmed_total counts completed
// plans.
func (g *Gateway) Prewarm() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, name := range g.pool.DeviceNames() {
			p, err := g.pool.Planner(name)
			if err != nil {
				continue // Route only registers known names; defensive
			}
			for _, netName := range zoo.Names {
				g.mu.Lock()
				draining := g.draining
				g.mu.Unlock()
				if draining {
					return
				}
				zg, err := zooGraph(netName)
				if err != nil {
					continue
				}
				if _, err := p.Select(serve.Request{Graph: zg, DeadlineMs: 0.9, Estimator: "profiler"}); err == nil {
					g.prewarmed.Inc()
				}
			}
		}
	}()
	return done
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.reg.WritePrometheus(w)
}

// handleDevices serves the registered targets in registration order —
// the routing tie-break order, default device first — with each
// target's calibration summary and live planning telemetry.
func (g *Gateway) handleDevices(w http.ResponseWriter, _ *http.Request) {
	names := g.pool.DeviceNames()
	out := make([]DeviceWire, 0, len(names))
	for i, name := range names {
		p, err := g.pool.Planner(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		cfg := p.DeviceConfig()
		p99, samples := p.WarmQuantile(0.99)
		if samples < uint64(g.cfg.ShedMinSamples) {
			p99 = 0 // below activation: neither shedding nor ranking reads it
		}
		out = append(out, DeviceWire{
			Name:             cfg.Name,
			Default:          i == 0,
			Precision:        cfg.Precision.String(),
			PeakMACs:         cfg.PeakMACs,
			MemBandwidth:     cfg.MemBandwidth,
			LaunchOverheadMs: cfg.LaunchOverheadMs,
			Fusion:           cfg.Fusion,
			Executions:       p.Executions(),
			WarmP99Ms:        p99,
		})
	}
	b, err := json.MarshalIndent(map[string]any{"devices": out}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

// handleStats serves the registry snapshot plus per-device planner
// cache stats as one JSON document ("planner" remains the default
// target's stats for single-device dashboards).
func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	doc := map[string]any{
		"metrics": g.reg.Snapshot(),
		"planner": g.pool.Default().Stats(),
		"devices": g.pool.Stats(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}
