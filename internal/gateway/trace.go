package gateway

// Request tracing: the gateway-side half of internal/trace. Every
// /v1/plan request is traced from arrival to response write; the stage
// vocabulary below names each span, the X-Netcut-Trace header and the
// injected trace_id body field carry the ID back to the client, and
// completed traces feed four read surfaces — GET /debug/trace (ring
// buffer), GET /debug/requests (in-flight), the
// netcut_gateway_stage_ms{stage,device} histograms, and the
// Config.SlowTraceMs structured log lines.
//
// Tracing is observability only, like every telemetry surface in this
// repo: the canonical response body (and the byte cache that stores it)
// stays trace-free, and the per-request trace_id is spliced in at
// response-write time — so a cache hit, a coalesced follower and a
// fresh execution still produce byte-identical bodies modulo that one
// injected field, at any GOMAXPROCS.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"netcut/internal/trace"
)

// TraceHeader is the response header carrying the request's trace ID,
// the key into GET /debug/trace?id=.
const TraceHeader = "X-Netcut-Trace"

// statusClientClosed is the trace status recorded for requests whose
// client disconnected before delivery (nginx's 499 convention; no
// response is written, so the code exists only in traces).
const statusClientClosed = 499

// The stage vocabulary, in pipeline order. Gates record zero-duration
// verdict spans; the clock-bounded stages (timedStages) also feed the
// netcut_gateway_stage_ms histograms.
const (
	stageDecode     = "decode"     // body read + JSON decode + graph validation
	stageDrain      = "drain"      // drain gate (includes the gateway-mutex wait)
	stageQuarantine = "quarantine" // poison-key gate
	stageRoute      = "route"      // target resolution; verdict is the resolved device
	stageHealth     = "health"     // device-health gate
	stageByteCache  = "bytecache"  // rendered-response cache; verdict hit/miss
	stageCoalesce   = "coalesce"   // verdict leader/follower
	stageShed       = "shed"       // budget/overload shed gate
	stageDegraded   = "degraded"   // allow_degraded fallback; verdict is the reason
	stageEnqueue    = "enqueue"    // lane handoff; verdict ok/full
	stageQueueWait  = "queue_wait" // admission to pass start (stitched post-delivery)
	stageExec       = "exec"       // the planner pass (stitched post-delivery)
	stageEncode     = "encode"     // wire-marshal of the response body
	stageDeliver    = "deliver"    // pass end (or cache hit) to response write
)

// verdictOK is the span verdict of a gate that let the request through.
const verdictOK = "ok"

// stageDeviceNone is the device label for requests refused before
// routing resolved a device (decode errors, drain, quarantine).
const stageDeviceNone = "none"

// timedStages are the stages whose durations are clock-bounded and
// meaningful as histograms. The admission gates are deliberately
// absent: they decide in nanoseconds and appear in traces as verdicts,
// not in /metrics as mass.
var timedStages = []string{stageDecode, stageByteCache, stageQueueWait, stageExec, stageEncode, stageDeliver}

// stitchCallSpans carves a delivered call's worker-side timeline into
// the waiting handler's trace: queue-wait (this trace's enqueue mark to
// pass start), exec, and encode. The timestamps were written by the
// worker before done closed, so reading them here is race-free; a
// coalesced follower that joined mid-pass gets its edges clamped by
// SpanAt rather than a negative wait.
func stitchCallSpans(tr *trace.Trace, c *call) {
	if c.execStartAt.IsZero() {
		return // never reached a planner (cancelled in queue)
	}
	tr.SpanAt(stageQueueWait, "", tr.Cursor(), c.execStartAt)
	// Planner-internal phases (reported by serve via the per-request
	// Trace callback) are sub-spans of the exec window.
	for _, ph := range c.phases() {
		tr.SpanAt("plan_"+ph.name, "", ph.start, ph.end)
	}
	tr.SpanAt(stageExec, "", c.execStartAt, c.execEndAt)
	if c.encodeDur > 0 {
		tr.SpanAt(stageEncode, "", c.execEndAt, c.execEndAt.Add(c.encodeDur))
	}
}

// writePlanTraced writes a plan response with the trace_id field
// spliced into the rendered body, marks the deliver span and finishes
// the trace. It returns the timestamp of the deliver mark so the caller
// can reuse it for the request-latency histogram (one clock read for
// all three). The deliver span runs from the previous cursor (pass end,
// or the byte-cache hit) to this handler resuming to write — scheduler
// handoff latency, the gap no other stage accounts for.
func (g *Gateway) writePlanTraced(w http.ResponseWriter, status int, body []byte, tr *trace.Trace) time.Time {
	now := tr.Mark(stageDeliver, verdictOK)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeWithTraceID(w, body, tr.ID())
	g.finishTrace(tr, status, now)
	return now
}

// bodyScratch recycles the small tail buffer of the trace-ID splice:
// just the `,"trace_id":"<id>"}` suffix plus whatever follows the
// closing brace (the trailing newline), never the body itself.
var bodyScratch = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// writeWithTraceID performs injectTraceID's splice zero-copy — this is
// the per-request warm path. The rendered body (a byte-cache value or
// EncodeResponse output, immutable by convention) is written directly
// up to its final brace, so a cache hit never copies the payload; only
// the few-byte trace-ID tail is assembled in the pooled scratch and
// written second.
func writeWithTraceID(w http.ResponseWriter, body []byte, id string) {
	i := bytes.LastIndexByte(body, '}')
	if i < 0 {
		w.Write(body)
		return
	}
	w.Write(body[:i])
	bp := bodyScratch.Get().(*[]byte)
	out := (*bp)[:0]
	if i > 0 && body[i-1] != '{' {
		out = append(out, ',')
	}
	out = append(out, `"trace_id":"`...)
	out = append(out, id...)
	out = append(out, `"}`...)
	out = append(out, body[i+1:]...)
	w.Write(out)
	*bp = out
	bodyScratch.Put(bp)
}

// writeErrTraced is writeErr for traced requests: same wire shape plus
// the injected trace_id, with the error code as the deliver verdict.
func (g *Gateway) writeErrTraced(w http.ResponseWriter, e *apiError, tr *trace.Trace) {
	if e.wire.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(e.wire.RetryAfterMs))
	}
	b, _ := json.Marshal(e.wire)
	now := tr.Mark(stageDeliver, e.wire.Code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	w.Write(injectTraceID(append(b, '\n'), tr.ID()))
	g.finishTrace(tr, e.status, now)
}

// injectTraceID splices `,"trace_id":"<id>"` before the final closing
// brace of a rendered JSON body (bodies end "}\n"). The canonical body
// — the coalesced result, the byte-cache value, EncodeResponse's
// output — stays trace-free; each response gets its own ID at write
// time, so caching and coalescing still produce byte-identical bodies
// modulo this one field.
func injectTraceID(body []byte, id string) []byte {
	i := bytes.LastIndexByte(body, '}')
	if i < 0 {
		return body
	}
	out := make([]byte, 0, len(body)+len(id)+len(`,"trace_id":""`))
	out = append(out, body[:i]...)
	if i > 0 && body[i-1] != '{' {
		out = append(out, ',')
	}
	out = append(out, `"trace_id":"`...)
	out = append(out, id...)
	out = append(out, `"}`...)
	out = append(out, body[i+1:]...)
	return out
}

// finishTrace seals a trace and files it: out of the live table, its
// timed spans into the per-stage histograms, past Config.SlowTraceMs
// onto the structured log, and finally into the ring. The ring add (or
// the Release when the ring is disabled) hands ownership away — Trace
// records are pooled, so it must be the last touch.
func (g *Gateway) finishTrace(tr *trace.Trace, status int, now time.Time) {
	tr.Finish(status, now)
	g.live.Remove(tr)
	g.observeStages(tr)
	if g.cfg.SlowTraceMs > 0 && tr.DurMs() >= g.cfg.SlowTraceMs {
		g.slowTraces.Inc()
		g.logSlow(tr)
	}
	if g.ring != nil && g.traceKeep() {
		g.ring.Add(tr)
	} else {
		if g.ring != nil {
			g.traceSampledOut.Inc()
		}
		trace.Release(tr)
	}
}

// observeStages feeds a completed trace's clock-bounded spans into the
// netcut_gateway_stage_ms{stage,device} histograms. Gate spans miss the
// map and are skipped — they are verdicts, not durations.
func (g *Gateway) observeStages(tr *trace.Trace) {
	byStage := g.stageHists[tr.DeviceOr(stageDeviceNone)]
	if byStage == nil {
		byStage = g.stageHists[stageDeviceNone]
	}
	tr.ForEach(func(sp trace.Span) {
		if h, ok := byStage[sp.Stage]; ok {
			h.Observe(sp.DurMs)
		}
	})
}

// logSlow emits one structured line for a slow trace: identity and
// totals as top-level attributes, per-stage durations in a "stages"
// group, so a log pipeline can aggregate on any stage without parsing.
func (g *Gateway) logSlow(tr *trace.Trace) {
	lg := g.cfg.SlowLog
	if lg == nil {
		lg = slog.Default()
	}
	v := tr.View(time.Now())
	stages := make([]any, 0, 2*len(v.Spans))
	for _, sp := range v.Spans {
		stages = append(stages, slog.Float64(sp.Stage, sp.DurMs))
	}
	lg.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
		slog.String("trace_id", v.ID),
		slog.String("name", v.Name),
		slog.String("device", tr.DeviceOr(stageDeviceNone)),
		slog.Int("status", v.Status),
		slog.Float64("dur_ms", v.DurMs),
		slog.Float64("threshold_ms", g.cfg.SlowTraceMs),
		slog.Group("stages", stages...),
	)
}

// handleTrace serves the completed-trace ring buffer, newest first.
// Query parameters filter the dump: id (exact trace ID), device,
// status (numeric), min_ms (minimum total duration), limit (defaults
// to 100; 0 means the whole ring).
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	if g.ring == nil {
		g.writeErr(w, errf(http.StatusNotFound, "trace_ring_disabled",
			"the completed-trace ring buffer is disabled (negative TraceRingCap)"))
		return
	}
	q := r.URL.Query()
	id, device := q.Get("id"), q.Get("device")
	var minMs float64
	var status int
	if s := q.Get("min_ms"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			g.writeErr(w, errf(http.StatusBadRequest, "bad_query", "min_ms: %v", err))
			return
		}
		minMs = v
	}
	if s := q.Get("status"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			g.writeErr(w, errf(http.StatusBadRequest, "bad_query", "status: %v", err))
			return
		}
		status = v
	}
	limit := 100
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			g.writeErr(w, errf(http.StatusBadRequest, "bad_query", "limit must be a non-negative integer"))
			return
		}
		limit = v
	}
	views := g.ring.Snapshot(time.Now(), func(v trace.View) bool {
		if id != "" && v.ID != id {
			return false
		}
		if device != "" && v.Device != device {
			return false
		}
		if status != 0 && v.Status != status {
			return false
		}
		return v.DurMs >= minMs
	})
	if limit > 0 && len(views) > limit {
		views = views[:limit]
	}
	b, err := json.MarshalIndent(map[string]any{"traces": views}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}

// handleRequests dumps every in-flight request's live trace, oldest
// first — the longest-stuck request tops the list, with the spans it
// has recorded so far and its elapsed time, which is how a wedged lane
// or a stuck planner pass is diagnosed while it is stuck.
func (g *Gateway) handleRequests(w http.ResponseWriter, _ *http.Request) {
	views := g.live.Snapshot(time.Now())
	b, err := json.MarshalIndent(map[string]any{"requests": views}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, append(b, '\n'))
}
