package gateway

// Adaptive overload control: the closed-loop half of the gateway's
// admission policy. A background sampler (overloadLoop) folds signals
// the process already has — per-lane backlog, warm-p99 drift of
// observed execution latency, heap occupancy and GC pauses — into one
// discrete load level, and each level deterministically sheds optional
// work:
//
//	level 0 (normal)    everything on: full batch window, prewarming,
//	                    every completed trace retained.
//	level 1 (brownout)  batch window halved, Prewarm paused, the
//	                    /debug/trace ring samples 1-in-4 traces.
//	level 2 (emergency) batch window dropped, Prewarm paused, ring
//	                    samples 1-in-16, and admission serves only
//	                    byte-cache hits and coalesce joins — every
//	                    cold miss is shed pre-execution with a
//	                    level-scaled, backlog-honest Retry-After.
//
// The level is a pure function of the signals sampled each tick — no
// hysteresis — so it returns to 0 within one controller interval of
// the load going away, and a fixed signal state always maps to the
// same level (the property the deterministic ladder tests pin, via
// the faultinject QueueStall/HeapPressure points). The one signal
// with memory, the per-lane exec-latency EWMA, decays while its lane
// is idle: it only collects samples when passes run, so without decay
// a single slow cold pass would hold an otherwise idle gateway in
// brownout with nothing left to pull the average back down.
//
// Alongside the ladder, each lane's execution parallelism adapts by
// AIMD (laneAIMDIncrease / laneAIMDDecrease): workers acquire a slot
// from a limit that grows by one while observed pass latency tracks
// the warm p99 and halves on containment events, floored at 1 and
// capped at the configured per-lane worker count. Like every admission
// mechanism in this repository, overload control decides where and
// when executions run — never what any execution returns.

import (
	"net/http"
	"time"

	"netcut/internal/faultinject"
	"netcut/internal/telemetry"
	"netcut/internal/trace"
)

// The load-level ladder.
const (
	levelNormal    = 0
	levelBrownout  = 1
	levelEmergency = 2
)

// Degraded-serving reasons (the wire degraded_reason values).
const (
	degradedUnhealthy = "unhealthy_device"
	degradedBudget    = "budget_infeasible"
)

const (
	// heapBrownoutFrac is the fraction of Config.HeapLimitBytes at
	// which the heap signal starts the brownout; the limit itself is
	// the emergency.
	heapBrownoutFrac = 0.8
	// gcPauseBrownoutMs holds the level at brownout while the p99 GC
	// stop-the-world pause exceeds it: a collector this busy is already
	// taxing every request, so optional work goes first. Armed, like
	// the heap thresholds, only when Config.HeapLimitBytes is set.
	gcPauseBrownoutMs = 50.0
	// execDriftFactor is the warm-p99 drift signal's threshold: a
	// lane whose smoothed observed pass latency exceeds this multiple
	// of (warm p99 + batch window) is running hotter than its own
	// history predicts — a brownout signal.
	execDriftFactor = 2.0
	// execEwmaAlpha is the smoothing weight of a new pass observation
	// in the lane's exec-latency EWMA.
	execEwmaAlpha = 0.2
	// driftMinSamples floors the drift signal's activation: however
	// eagerly budget shedding is configured (Config.ShedMinSamples can
	// be 1), a warm p99 estimated from fewer executions than this is
	// too noisy to declare a lane drifting — one cold pass against a
	// one-sample history would read as overload on every boot.
	driftMinSamples = 8
	// Brownout/emergency trace-ring sampling: keep 1 in N.
	brownoutTraceSample  = 4
	emergencyTraceSample = 16
)

// LoadLevel reports the overload controller's current load level:
// 0 normal, 1 brownout, 2 emergency. Always 0 when the controller is
// disabled (negative Config.OverloadInterval).
func (g *Gateway) LoadLevel() int { return int(g.loadLevel.Load()) }

// sleep waits d or until the drain starts, whichever is first, and
// reports whether the caller should keep running. After the timer
// fires it re-checks g.stop, so a drain landing mid-wait can never be
// followed by one more loop iteration — the "trailing tick" the
// probe and autosave loops used to take when both select arms were
// ready at once.
func (g *Gateway) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-g.stop:
		return false
	case <-timer.C:
	}
	select {
	case <-g.stop:
		return false
	default:
		return true
	}
}

// overloadLoop is the controller: one tick per Config.OverloadInterval
// until the drain.
func (g *Gateway) overloadLoop() {
	for {
		if !g.sleep(g.cfg.OverloadInterval) {
			return
		}
		g.overloadTick()
	}
}

// overloadTick decays idle lanes' drift signal, samples the signals,
// publishes the resulting level and counts the transition if it moved.
func (g *Gateway) overloadTick() {
	g.decayIdleLanes()
	lvl := int32(g.computeLoadLevel())
	if g.loadLevel.Swap(lvl) != lvl {
		g.loadTransitions.Inc()
	}
}

// decayIdleLanes halves the exec-latency EWMA of every lane with no
// queued work and no pass in flight, zeroing it below one microsecond.
// Only idle lanes decay — a loaded lane's EWMA stays sample-driven, so
// the drift signal cannot be washed out while the condition it
// measures persists.
func (g *Gateway) decayIdleLanes() {
	for _, l := range g.lanes {
		if len(l.queue) != 0 {
			continue
		}
		l.execMu.Lock()
		if l.execActive == 0 && l.execEwmaMs > 0 {
			l.execEwmaMs /= 2
			if l.execEwmaMs < 1e-3 {
				l.execEwmaMs = 0
			}
		}
		l.execMu.Unlock()
	}
}

// computeLoadLevel is the ladder's pure signal fold. Signals, in
// escalation order:
//
//   - lane backlog: the fullest lane's occupancy against the
//     Brownout/EmergencyQueueFrac thresholds (the faultinject
//     QueueStall point reads a lane as completely full, so tests pin
//     the ladder deterministically);
//   - heap: live heap against Config.HeapLimitBytes (emergency at the
//     limit, brownout at heapBrownoutFrac of it; the HeapPressure
//     point reads the heap as over the limit);
//   - GC pressure: p99 stop-the-world pause over gcPauseBrownoutMs.
//     Like the heap signal it is armed only when HeapLimitBytes is
//     set: GC pauses on a contended host reflect scheduler noise as
//     much as allocation pressure, and an unarmed memory signal must
//     never brown out a gateway on its own;
//   - warm-p99 drift: any lane whose smoothed observed pass latency
//     exceeds execDriftFactor x its device's (warm p99 + window).
func (g *Gateway) computeLoadLevel() int {
	level := levelNormal
	occ := 0.0
	for _, l := range g.lanes {
		o := float64(len(l.queue)) / float64(g.laneQueueCap)
		if faultinject.Fire(faultinject.QueueStall, l.device) {
			o = 1
		}
		if o > occ {
			occ = o
		}
	}
	if occ >= g.cfg.EmergencyQueueFrac {
		return levelEmergency
	}
	if occ >= g.cfg.BrownoutQueueFrac {
		level = levelBrownout
	}
	if faultinject.Fire(faultinject.HeapPressure, "heap") {
		return levelEmergency
	}
	if g.cfg.HeapLimitBytes > 0 {
		stat := g.mem.Read()
		if stat.HeapAlloc >= uint64(g.cfg.HeapLimitBytes) {
			return levelEmergency
		}
		if float64(stat.HeapAlloc) >= heapBrownoutFrac*float64(g.cfg.HeapLimitBytes) {
			level = levelBrownout
		}
		if telemetry.GCPauseP99(&stat) >= gcPauseBrownoutMs {
			level = levelBrownout
		}
	}
	if level == levelNormal && g.anyLaneDrifting() {
		level = levelBrownout
	}
	return level
}

// anyLaneDrifting reports whether any lane's smoothed observed pass
// latency has drifted past execDriftFactor x its device's own warm
// p99 (plus the batch window every pass leader waits out). Only lanes
// whose histograms hold driftSamplesFloor executions participate —
// the activation rule budget shedding uses, floored at
// driftMinSamples, for the same reason: drifting against a cold
// estimate is noise.
func (g *Gateway) anyLaneDrifting() bool {
	for _, l := range g.lanes {
		l.execMu.Lock()
		ewma := l.execEwmaMs
		l.execMu.Unlock()
		if ewma <= 0 {
			continue
		}
		p, err := g.pool.Planner(l.device)
		if err != nil {
			continue
		}
		p99, samples := p.WarmQuantile(0.99)
		if samples >= g.driftSamplesFloor() && p99 > 0 &&
			ewma > execDriftFactor*(p99+g.windowMs()) {
			return true
		}
	}
	return false
}

// driftSamplesFloor is the warm-sample count at which the drift
// signal (and the AIMD tracking predicate) activates:
// Config.ShedMinSamples, never below driftMinSamples.
func (g *Gateway) driftSamplesFloor() uint64 {
	if g.cfg.ShedMinSamples < driftMinSamples {
		return driftMinSamples
	}
	return uint64(g.cfg.ShedMinSamples)
}

// effectiveBatchWindow is the batch window after the ladder's cut:
// full at level 0, halved in brownout, gone in emergency. The budget
// shed predicates keep using the configured window — a conservative
// (over-reporting) estimate during overload, matching the repo-wide
// quantile rule.
func (g *Gateway) effectiveBatchWindow() time.Duration {
	switch g.loadLevel.Load() {
	case levelNormal:
		return g.cfg.BatchWindow
	case levelBrownout:
		return g.cfg.BatchWindow / 2
	default:
		return 0
	}
}

// traceKeep decides whether a completed trace enters the /debug/trace
// ring: all of them at level 0, a deterministic 1-in-N sample under
// load — the ring is optional work, and under pressure its allocation
// and lock traffic go before anything a client can see.
func (g *Gateway) traceKeep() bool {
	var n uint64
	switch g.loadLevel.Load() {
	case levelNormal:
		return true
	case levelBrownout:
		n = brownoutTraceSample
	default:
		n = emergencyTraceSample
	}
	return g.traceSeq.Add(1)%n == 1
}

// laneWaves is the retry-hint arithmetic shared by the queue-full and
// overload sheds: a backlog of n requests in front of workers lane
// workers clears in ceil(n/workers) execution waves, never fewer than
// one.
func laneWaves(backlog, workers int) float64 {
	waves := (backlog + workers - 1) / workers
	if waves < 1 {
		waves = 1
	}
	return float64(waves)
}

// acquireExec takes one of the lane's AIMD execution slots, blocking
// while the lane is already running at its current limit. Workers call
// it only between queue drains, so admission (and the queue's backlog
// signal) is never blocked by it.
func (l *lane) acquireExec() {
	l.execMu.Lock()
	for l.execActive >= l.execLimit {
		l.execCond.Wait()
	}
	l.execActive++
	l.execMu.Unlock()
}

// releaseExec returns a slot and wakes one waiter.
func (l *lane) releaseExec() {
	l.execMu.Lock()
	l.execActive--
	l.execCond.Signal()
	l.execMu.Unlock()
}

// laneAIMDIncrease is the additive half of the lane's concurrency
// control, called after every successful planner pass with the pass's
// observed wall-clock duration: the EWMA the drift signal reads is
// updated unconditionally, and while the observation still tracks the
// device's own warm p99 the limit grows by one toward the configured
// per-lane worker ceiling.
func (g *Gateway) laneAIMDIncrease(dev string, passMs float64) {
	l := g.lanes[dev]
	if l == nil {
		return
	}
	tracking := true
	if p, err := g.pool.Planner(dev); err == nil {
		p99, samples := p.WarmQuantile(0.99)
		if samples >= g.driftSamplesFloor() && p99 > 0 &&
			passMs > execDriftFactor*(p99+g.windowMs()) {
			tracking = false
		}
	}
	l.execMu.Lock()
	if l.execEwmaMs == 0 {
		l.execEwmaMs = passMs
	} else {
		l.execEwmaMs = (1-execEwmaAlpha)*l.execEwmaMs + execEwmaAlpha*passMs
	}
	if tracking && l.execLimit < g.laneWorkers {
		l.execLimit++
		l.execCond.Broadcast()
	}
	l.execMu.Unlock()
}

// laneAIMDDecrease is the multiplicative half, called on containment
// events (panics, watchdog abandons): the limit halves, floored at 1
// so the lane always makes progress.
func (g *Gateway) laneAIMDDecrease(dev string) {
	l := g.lanes[dev]
	if l == nil {
		return
	}
	l.execMu.Lock()
	if half := l.execLimit / 2; half >= 1 && half < l.execLimit {
		l.execLimit = half
		l.aimdDecreases.Inc()
	}
	l.execMu.Unlock()
}

// admitDegraded is the allow_degraded fallback, entered under the
// gateway mutex from admit: instead of rejecting a budget-infeasible
// or unhealthy-device request, route it to the fastest healthy device
// — deterministically, by the same unbudgeted ranking an explicit
// Route would use, so the response body is byte-identical to the
// explicit spelling of that target — and mark the response degraded at
// write time. Budget shedding is skipped on the fallback (the client
// opted into lateness over rejection); the emergency overload gate in
// admitOn still applies, because a degraded response costs a planner
// execution like any other cold miss.
func (g *Gateway) admitDegraded(dec *decodedRequest, reason string, tr *trace.Trace) (*call, []byte, *apiError) {
	name, _, ok := g.pool.Fastest(g.windowMs(), uint64(g.cfg.ShedMinSamples), g.deviceEligible)
	if !ok {
		// Fleet-wide unhealthy: nothing to degrade onto.
		tr.MarkZero(stageHealth, "no_healthy_device")
		e := errf(http.StatusServiceUnavailable, "no_healthy_device",
			"every registered device is unhealthy; background probes are running")
		e.wire.RetryAfterMs = float64(g.cfg.ProbeInterval) / float64(time.Millisecond)
		return nil, nil, e
	}
	dec.key.device = name
	dec.degradedReason = reason
	g.degradedServed.Inc()
	tr.SetDevice(name)
	tr.MarkZero(stageDegraded, reason)
	p, err := g.pool.Planner(name)
	if err != nil {
		panic(err) // Fastest only returns registered names
	}
	if body, okc := g.byteCacheGet(dec.key); okc {
		tr.Mark(stageByteCache, "hit")
		return nil, body, nil
	}
	tr.MarkZero(stageByteCache, "miss")
	c, e := g.admitOn(dec, p, false, tr)
	return c, nil, e
}

// overloadStats is the /debug/stats "overload" document: the live
// level plus each lane's AIMD limit and smoothed pass latency.
func (g *Gateway) overloadStats() map[string]any {
	lanes := make(map[string]any, len(g.lanes))
	for name, l := range g.lanes {
		l.execMu.Lock()
		lanes[name] = map[string]any{
			"concurrency_limit": l.execLimit,
			"exec_ewma_ms":      l.execEwmaMs,
		}
		l.execMu.Unlock()
	}
	return map[string]any{
		"level": g.LoadLevel(),
		"lanes": lanes,
	}
}
