package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/profiler"
	"netcut/internal/serve"
	"netcut/internal/zoo"
)

// quickProto keeps gateway tests fast; determinism is protocol-
// independent because noise streams are seeded per network.
var quickProto = profiler.Protocol{WarmupRuns: 10, TimedRuns: 40}

func quickConfig(seed int64) Config {
	return Config{Planner: serve.Config{Seed: seed, Protocol: quickProto}}
}

// userNet builds a structurally distinct blocked network per index,
// mirroring the serve-package stress graphs.
func userNet(i int) *graph.Graph {
	b := graph.NewBuilder(fmt.Sprintf("user-net-%d", i), graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8+i%4, 2, graph.Same)
	for blk := 0; blk < 3+i%3; blk++ {
		b.BeginBlock(fmt.Sprintf("b%d", blk))
		y := b.ConvBNReLU(x, 3, 8+i%4, 1, graph.Same)
		x = b.Add(y, x)
		x = b.ReLU(x)
		b.EndBlock()
	}
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	return b.MustFinish()
}

func mustShutdown(t *testing.T, g *Gateway) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// post drives the handler directly (no sockets): one request, recorded
// response.
func post(g *Gateway, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", strings.NewReader(body))
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

func get(g *Gateway, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

// stripped returns a response body with the per-request trace_id field
// removed. Trace IDs are unique by design; every byte-identity
// assertion in this package compares the canonical rendering, which is
// the body modulo that one write-time-injected field.
func stripped(b []byte) []byte { return StripTraceID(b) }

// graphBody marshals a plan request wrapping g.
func graphBody(t *testing.T, g *graph.Graph, deadline float64, extra string) string {
	t.Helper()
	gw, err := json.Marshal(EncodeGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"graph":%s,"deadline_ms":%g%s}`, gw, deadline, extra)
}

// TestGatewayMatchesPlannerSelect pins the acceptance criterion: the
// gateway's response body is byte-identical to encoding the response of
// the same request served alone through a fresh serve.Planner.
func TestGatewayMatchesPlannerSelect(t *testing.T) {
	g, err := New(quickConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	solo, err := serve.New(serve.Config{Seed: 9, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}

	for name, body := range map[string]string{
		"zoo-shorthand": `{"network":"ResNet-50","deadline_ms":0.9}`,
		"user-graph":    graphBody(t, userNet(0), 0.35, ""),
	} {
		rec := post(g, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body.String())
		}
		var req serve.Request
		switch name {
		case "zoo-shorthand":
			zg, err := zoo.ByName("ResNet-50")
			if err != nil {
				t.Fatal(err)
			}
			req = serve.Request{Graph: zg, DeadlineMs: 0.9, Estimator: "profiler"}
		default:
			req = serve.Request{Graph: userNet(0), DeadlineMs: 0.35, Estimator: "profiler"}
		}
		want, err := solo.Select(req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stripped(rec.Body.Bytes()), EncodeResponse(want)) {
			t.Fatalf("%s: gateway body diverges from solo planner:\n gw: %s\nsolo: %s",
				name, rec.Body.String(), EncodeResponse(want))
		}
	}
}

// TestGatewayCoalescesIdenticalRequests pins the singleflight contract:
// N identical concurrent requests produce exactly one planner execution
// (asserted via the telemetry counter) and byte-identical bodies.
func TestGatewayCoalescesIdenticalRequests(t *testing.T) {
	const n = 8
	cfg := quickConfig(3)
	cfg.Workers = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	// Gate the batch worker until every request has either become the
	// leader or joined it, so the coalescing window is deterministic.
	g.testHookBatch = func(string, int) {
		deadline := time.Now().Add(10 * time.Second)
		for g.coalesced.Value() < n-1 {
			if time.Now().After(deadline) {
				return // let the test's body comparison report the failure
			}
			time.Sleep(time.Millisecond)
		}
	}

	body := graphBody(t, userNet(1), 0.35, "")
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(g, body)
			codes[i], bodies[i] = rec.Code, stripped(rec.Body.Bytes())
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := g.Planner().Executions(); got != 1 {
		t.Fatalf("%d identical concurrent requests cost %d planner executions, want 1", n, got)
	}
	if got := g.coalesced.Value(); got != n-1 {
		t.Fatalf("coalesced counter %d, want %d", got, n-1)
	}
}

// TestGatewayShedsOnBudget pins deadline-aware load shedding: once the
// warm histogram has samples, a request whose budget_ms cannot cover
// the warm p99 is rejected with 429 + retry hint and consumes no
// planner work.
func TestGatewayShedsOnBudget(t *testing.T) {
	cfg := quickConfig(5)
	cfg.ShedMinSamples = 1
	// This test warms via repeated identical requests and then asserts
	// the shed path; the byte cache would serve the repeats (and the
	// tiny-budget identical request) without touching the planner.
	cfg.ByteCacheCap = -1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	body := graphBody(t, userNet(2), 0.35, "")
	// First request is cold, second warm: seeds the warm histogram.
	for i := 0; i < 2; i++ {
		if rec := post(g, body); rec.Code != http.StatusOK {
			t.Fatalf("warmup %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	if _, samples := g.Planner().WarmQuantile(0.99); samples == 0 {
		t.Fatal("no warm samples after a repeated request")
	}

	execs := g.Planner().Executions()
	rec := post(g, graphBody(t, userNet(2), 0.35, `,"budget_ms":0.00001`))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("tiny-budget request: status %d: %s", rec.Code, rec.Body.String())
	}
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("shed body is not structured: %v", err)
	}
	if e.Code != "budget_too_small" || e.RetryAfterMs <= 0 {
		t.Fatalf("shed body %+v, want budget_too_small with retry hint", e)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	if got := g.Planner().Executions(); got != execs {
		t.Fatalf("shed request consumed planner work: executions %d -> %d", execs, got)
	}
	if g.shedBudget.Value() != 1 {
		t.Fatalf("shed counter %d, want 1", g.shedBudget.Value())
	}

	// A generous budget passes.
	if rec := post(g, graphBody(t, userNet(2), 0.35, `,"budget_ms":60000`)); rec.Code != http.StatusOK {
		t.Fatalf("generous-budget request: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestGatewayShedsOnQueueFull pins the bounded-queue contract: arrivals
// beyond QueueDepth are shed with 429 and never reach the planner.
func TestGatewayShedsOnQueueFull(t *testing.T) {
	cfg := quickConfig(7)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.BatchMax = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	g.testHookBatch = func(string, int) {
		entered <- struct{}{}
		<-gate
	}

	results := make(chan int, 2)
	send := func(i int) {
		rec := post(g, graphBody(t, userNet(i), 0.35, ""))
		results <- rec.Code
	}
	// First request: picked up by the worker, which blocks in the hook.
	go send(0)
	<-entered
	// Second request: sits in the default device's depth-1 lane.
	lane := g.lanes[g.pool.DeviceNames()[0]]
	go send(1)
	deadline := time.Now().Add(5 * time.Second)
	for len(lane.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third request: queue full, shed up front.
	rec := post(g, graphBody(t, userNet(2), 0.35, ""))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d: %s", rec.Code, rec.Body.String())
	}
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "queue_full" {
		t.Fatalf("overflow body %s", rec.Body.String())
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("admitted request %d: status %d", i, code)
		}
	}
	if got := g.Planner().Executions(); got != 2 {
		t.Fatalf("planner executions %d, want 2 (shed request must not execute)", got)
	}
	if lane.shedQueue.Value() != 1 {
		t.Fatalf("queue-full shed counter %d, want 1", lane.shedQueue.Value())
	}
}

// TestGatewayBatchesCompatibleRequests checks distinct compatible
// requests drain into one SelectBatch pass and that every batched body
// equals the same request served alone.
func TestGatewayBatchesCompatibleRequests(t *testing.T) {
	const k = 4
	cfg := quickConfig(11)
	cfg.Workers = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var gateOnce atomic.Bool
	var sizes []int
	var sizesMu sync.Mutex
	g.testHookBatch = func(_ string, n int) {
		sizesMu.Lock()
		sizes = append(sizes, n)
		sizesMu.Unlock()
		if gateOnce.CompareAndSwap(false, true) {
			entered <- struct{}{}
			<-gate
		}
	}

	type result struct {
		i    int
		code int
		body []byte
	}
	results := make(chan result, k+1)
	send := func(i int) {
		rec := post(g, graphBody(t, userNet(i), 0.35, ""))
		results <- result{i, rec.Code, stripped(rec.Body.Bytes())}
	}

	// Block the worker on a sacrificial request, queue k distinct
	// compatible requests behind it, then release: the worker sweeps
	// all k into one batch.
	go send(100)
	<-entered
	for i := 0; i < k; i++ {
		go send(i)
	}
	lane := g.lanes[g.pool.DeviceNames()[0]]
	deadline := time.Now().Add(5 * time.Second)
	for len(lane.queue) < k {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests queued", len(lane.queue), k)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	got := make(map[int][]byte, k+1)
	for i := 0; i < k+1; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", r.i, r.code, r.body)
		}
		got[r.i] = r.body
	}

	sizesMu.Lock()
	maxBatch := 0
	for _, s := range sizes {
		if s > maxBatch {
			maxBatch = s
		}
	}
	sizesMu.Unlock()
	if maxBatch < k {
		t.Fatalf("largest planner pass covered %d requests, want %d in one batch", maxBatch, k)
	}

	solo, err := serve.New(serve.Config{Seed: 11, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		want, err := solo.Select(serve.Request{Graph: userNet(i), DeadlineMs: 0.35, Estimator: "profiler"})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[i], EncodeResponse(want)) {
			t.Fatalf("batched response %d diverges from solo:\n gw: %s\nsolo: %s", i, got[i], EncodeResponse(want))
		}
	}
}

// TestGatewayRejectsNegativeConfig pins that bad knobs are a prompt
// constructor error (netserve exits 1 on them), never a panic.
func TestGatewayRejectsNegativeConfig(t *testing.T) {
	for _, cfg := range []Config{
		{QueueDepth: -1},
		{BatchMax: -1},
		{Workers: -1},
		{ShedMinSamples: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestGatewayRejectsMalformed covers the decode boundary: malformed
// JSON, invalid graphs, oversized bodies, bad parameters — all
// structured errors, never panics.
func TestGatewayRejectsMalformed(t *testing.T) {
	cfg := quickConfig(1)
	cfg.MaxBodyBytes = 2048
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	cases := []struct {
		name string
		body string
		code int
		werr string
	}{
		{"empty", ``, http.StatusBadRequest, "invalid_json"},
		{"syntax", `{"network":`, http.StatusBadRequest, "invalid_json"},
		{"trailing", `{"network":"ResNet-50"} garbage`, http.StatusBadRequest, "invalid_json"},
		{"missing", `{}`, http.StatusBadRequest, "missing_graph"},
		{"both", `{"network":"ResNet-50","graph":{"name":"x"}}`, http.StatusBadRequest, "ambiguous_request"},
		{"unknown-net", `{"network":"VGG-16"}`, http.StatusBadRequest, "unknown_network"},
		{"bad-estimator", `{"network":"ResNet-50","estimator":"oracle"}`, http.StatusBadRequest, "invalid_estimator"},
		{"neg-deadline", `{"network":"ResNet-50","deadline_ms":-1}`, http.StatusBadRequest, "invalid_deadline"},
		{"neg-budget", `{"network":"ResNet-50","budget_ms":-1}`, http.StatusBadRequest, "invalid_budget"},
		{"unknown-target", `{"network":"ResNet-50","target":"sim-quantum"}`, http.StatusBadRequest, "unknown_device"},
		{"bad-kind", `{"graph":{"name":"x","num_classes":2,"nodes":[{"id":0,"kind":"Teleport","out":{"h":1,"w":1,"c":1}}]}}`,
			http.StatusBadRequest, "invalid_graph"},
		{"invalid-graph", `{"graph":{"name":"x","num_classes":2,"nodes":[{"id":0,"kind":"Conv","out":{"h":1,"w":1,"c":1}}]}}`,
			http.StatusBadRequest, "invalid_graph"},
		{"oversized", `{"graph":{"name":"` + strings.Repeat("x", 4096) + `"}}`,
			http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		rec := post(g, tc.body)
		if rec.Code != tc.code {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.code, rec.Body.String())
		}
		var e ErrorWire
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("%s: unstructured error body %q", tc.name, rec.Body.String())
		}
		if e.Code != tc.werr {
			t.Fatalf("%s: error code %q, want %q", tc.name, e.Code, tc.werr)
		}
	}
	if got := g.Planner().Executions(); got != 0 {
		t.Fatalf("rejected requests reached the planner: %d executions", got)
	}
	if got, want := g.rejected.Value(), uint64(len(cases)); got != want {
		t.Fatalf("rejected counter %d, want %d", got, want)
	}

	// Method discipline: GET on the plan route is a 405.
	if rec := get(g, "/v1/plan"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan: status %d", rec.Code)
	}
}

// TestGatewayNameConflictIs409 maps the planner's one-name-one-
// structure admission rule onto HTTP.
func TestGatewayNameConflictIs409(t *testing.T) {
	g, err := New(quickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d", rec.Code)
	}
	imposter := userNet(1)
	imposter.Name = "user-net-0"
	rec := post(g, graphBody(t, imposter, 0.35, ""))
	if rec.Code != http.StatusConflict {
		t.Fatalf("imposter: status %d: %s", rec.Code, rec.Body.String())
	}
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "name_conflict" {
		t.Fatalf("imposter body %s", rec.Body.String())
	}
}

// TestGatewayDrain pins graceful shutdown: in-flight requests complete
// and deliver, new requests are 503 with Retry-After, Shutdown returns
// only after the queue is empty.
func TestGatewayDrain(t *testing.T) {
	cfg := quickConfig(13)
	cfg.Workers = 1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	g.testHookBatch = func(string, int) {
		entered <- struct{}{}
		<-gate
	}

	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflight <- post(g, graphBody(t, userNet(3), 0.35, ""))
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- g.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		draining := g.draining
		g.mu.Unlock()
		if draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	rec := post(g, graphBody(t, userNet(4), 0.35, ""))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("drain rejection missing Retry-After")
	}

	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rec := <-inflight; rec.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", rec.Code, rec.Body.String())
	}
	// Shutdown is idempotent.
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestGatewayObservabilityEndpoints asserts /metrics serves the
// gateway, planner and cache-layer series in Prometheus text format and
// /debug/stats serves a JSON document.
func TestGatewayObservabilityEndpoints(t *testing.T) {
	g, err := New(quickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	if rec := post(g, `{"network":"MobileNetV1 (0.25)","deadline_ms":0.9}`); rec.Code != http.StatusOK {
		t.Fatalf("seed request: %d", rec.Code)
	}

	rec := get(g, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	out := rec.Body.String()
	for _, series := range []string{
		"netcut_gateway_requests_total 1",
		"netcut_gateway_queue_depth",
		"netcut_gateway_shed_budget_total 0",
		`netcut_planner_executions_total{device="sim-xavier"} 1`,
		`netcut_planner_warm_ms_count{device="sim-xavier"}`,
		`netcut_planner_cold_ms_count{device="sim-xavier"} 1`,
		`netcut_device_plans_hits_total{device="sim-xavier"}`,
		`netcut_device_plans_hits_total{device="sim-server-gpu"}`,
		`netcut_profiler_measurements_misses_total{device="sim-xavier"}`,
		"netcut_trim_cuts_entries",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, out)
		}
	}

	rec = get(g, "/debug/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/stats: %d", rec.Code)
	}
	var doc struct {
		Metrics map[string]any         `json:"metrics"`
		Planner serve.Stats            `json:"planner"`
		Devices map[string]serve.Stats `json:"devices"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/stats is not JSON: %v", err)
	}
	if doc.Planner.Requests != 1 {
		t.Fatalf("stats planner requests = %d, want 1", doc.Planner.Requests)
	}
	if _, ok := doc.Metrics["netcut_gateway_requests_total"]; !ok {
		t.Fatal("stats metrics missing gateway request counter")
	}
	if len(doc.Devices) < 4 {
		t.Fatalf("stats lists %d devices, want the full registry", len(doc.Devices))
	}
	if doc.Devices["sim-xavier"].Requests != 1 || doc.Devices["sim-edge-cpu"].Requests != 0 {
		t.Fatalf("per-device stats wrong: %+v", doc.Devices)
	}

	if rec := get(g, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", rec.Code)
	}
}

// TestGraphWireRoundTrip pins the codec: encode -> JSON -> decode
// reproduces the graph field for field (and therefore fingerprint for
// fingerprint).
func TestGraphWireRoundTrip(t *testing.T) {
	for _, src := range []*graph.Graph{userNet(0), zoo.ResNet50()} {
		b, err := json.Marshal(EncodeGraph(src))
		if err != nil {
			t.Fatal(err)
		}
		var w GraphWire
		if err := json.Unmarshal(b, &w); err != nil {
			t.Fatal(err)
		}
		got, aerr := decodeGraph(&w)
		if aerr != nil {
			t.Fatalf("%s: decode: %v", src.Name, aerr)
		}
		if got.Name != src.Name || got.InputShape != src.InputShape || got.NumClasses != src.NumClasses {
			t.Fatalf("%s: header fields changed", src.Name)
		}
		if !reflect.DeepEqual(got.Blocks, src.Blocks) {
			t.Fatalf("%s: blocks changed", src.Name)
		}
		if len(got.Nodes) != len(src.Nodes) {
			t.Fatalf("%s: node count %d -> %d", src.Name, len(src.Nodes), len(got.Nodes))
		}
		for i := range got.Nodes {
			if !reflect.DeepEqual(*got.Nodes[i], *src.Nodes[i]) {
				t.Fatalf("%s: node %d changed:\n got %+v\nwant %+v", src.Name, i, got.Nodes[i], src.Nodes[i])
			}
		}
		if graph.Fingerprint(got) != graph.Fingerprint(src) {
			t.Fatalf("%s: fingerprint changed across the wire", src.Name)
		}
	}
}

// TestGatewayDevicesEndpoint pins GET /v1/devices: the registered
// fleet in registration order, default device first, with calibration
// summaries and live telemetry.
func TestGatewayDevicesEndpoint(t *testing.T) {
	g, err := New(quickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	if rec := post(g, `{"network":"MobileNetV1 (0.25)","target":"sim-edge-cpu"}`); rec.Code != http.StatusOK {
		t.Fatalf("seed request: %d: %s", rec.Code, rec.Body.String())
	}

	rec := get(g, "/v1/devices")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/devices: %d", rec.Code)
	}
	var doc struct {
		Devices []DeviceWire `json:"devices"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/v1/devices is not JSON: %v", err)
	}
	if len(doc.Devices) < 4 {
		t.Fatalf("listed %d devices, want the full registry", len(doc.Devices))
	}
	if doc.Devices[0].Name != "sim-xavier" || !doc.Devices[0].Default {
		t.Fatalf("first device %+v, want the Xavier default", doc.Devices[0])
	}
	byName := map[string]DeviceWire{}
	for i, d := range doc.Devices {
		if d.Default != (i == 0) {
			t.Fatalf("device %d default flag wrong: %+v", i, d)
		}
		if d.PeakMACs <= 0 || d.Precision == "" {
			t.Fatalf("device %q missing calibration summary: %+v", d.Name, d)
		}
		byName[d.Name] = d
	}
	if byName["sim-edge-cpu"].Executions != 1 {
		t.Fatalf("edge-cpu executions = %d, want 1", byName["sim-edge-cpu"].Executions)
	}
	if byName["sim-xavier"].Executions != 0 {
		t.Fatalf("xavier executions = %d, want 0", byName["sim-xavier"].Executions)
	}
}

// TestGatewayCrossDeviceIsolation pins the tentpole acceptance
// criterion through the HTTP surface: the same graph planned on two
// targets yields different measured latencies from independent cache
// entries; a repeat per target is a warm byte-identical hit.
func TestGatewayCrossDeviceIsolation(t *testing.T) {
	cfg := quickConfig(23)
	// Asserts per-target measurement-cache hits on repeats — the
	// planner's own warm path, which the byte cache short-circuits.
	cfg.ByteCacheCap = -1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	body := func(target string) string {
		return graphBody(t, userNet(0), 0.35, fmt.Sprintf(`,"target":%q`, target))
	}
	recA := post(g, body("sim-xavier"))
	recB := post(g, body("sim-server-gpu"))
	if recA.Code != http.StatusOK || recB.Code != http.StatusOK {
		t.Fatalf("targets: %d/%d: %s %s", recA.Code, recB.Code, recA.Body.String(), recB.Body.String())
	}
	var ra, rb PlanResponseWire
	if err := json.Unmarshal(recA.Body.Bytes(), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recB.Body.Bytes(), &rb); err != nil {
		t.Fatal(err)
	}
	if ra.Device != "sim-xavier" || rb.Device != "sim-server-gpu" {
		t.Fatalf("response devices %q/%q", ra.Device, rb.Device)
	}
	if ra.MeasuredMs == rb.MeasuredMs {
		t.Fatalf("identical measured latency %v ms on two targets", ra.MeasuredMs)
	}
	// Each target executed once; caches are per target.
	pa, err := g.pool.Planner("sim-xavier")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := g.pool.Planner("sim-server-gpu")
	if err != nil {
		t.Fatal(err)
	}
	if pa.Executions() != 1 || pb.Executions() != 1 {
		t.Fatalf("executions %d/%d, want 1/1", pa.Executions(), pb.Executions())
	}
	// Repeats are warm per-target hits with byte-identical bodies.
	hits := pa.Stats().Measurements.Hits
	recA2 := post(g, body("sim-xavier"))
	if !bytes.Equal(stripped(recA2.Body.Bytes()), stripped(recA.Body.Bytes())) {
		t.Fatalf("repeat on one target diverged:\n%s\n%s", recA2.Body.String(), recA.Body.String())
	}
	if pa.Stats().Measurements.Hits <= hits {
		t.Fatal("repeat on one target missed its measurement cache")
	}
}

// TestGatewayAutoTargetMatchesExplicit pins the routing half of the
// acceptance criterion: target "auto" resolves deterministically (cold
// pool: the default device) and its body is byte-identical to the same
// request naming that device explicitly.
func TestGatewayAutoTargetMatchesExplicit(t *testing.T) {
	g, err := New(quickConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	explicit := post(g, graphBody(t, userNet(3), 0.35, `,"target":"sim-xavier"`))
	if explicit.Code != http.StatusOK {
		t.Fatalf("explicit: %d: %s", explicit.Code, explicit.Body.String())
	}
	auto := post(g, graphBody(t, userNet(3), 0.35, `,"target":"auto"`))
	if auto.Code != http.StatusOK {
		t.Fatalf("auto: %d: %s", auto.Code, auto.Body.String())
	}
	if !bytes.Equal(stripped(auto.Body.Bytes()), stripped(explicit.Body.Bytes())) {
		t.Fatalf("auto body diverges from explicit target:\nauto %s\nexpl %s",
			auto.Body.String(), explicit.Body.String())
	}
	if g.autoRouted.Value() != 1 {
		t.Fatalf("auto-routed counter %d, want 1", g.autoRouted.Value())
	}
	// And the default-target spelling ("" target) is the same bytes too.
	plain := post(g, graphBody(t, userNet(3), 0.35, ""))
	if !bytes.Equal(stripped(plain.Body.Bytes()), stripped(explicit.Body.Bytes())) {
		t.Fatal("defaulted target body diverges from explicit default device")
	}
}

// TestGatewayAutoShedsOnlyWhenNoDeviceQualifies pins fleet-wide
// shedding: with every target's warm estimate active, an impossible
// budget is shed; routing a fresh (unmeasured) target is preferred
// over shedding.
func TestGatewayAutoShedsOnlyWhenNoDeviceQualifies(t *testing.T) {
	cfg := quickConfig(31)
	cfg.ShedMinSamples = 1
	// Warm-ups repeat identical requests; the byte cache would answer
	// them (and the impossible-budget repeats) before the shed path.
	cfg.ByteCacheCap = -1
	// Two targets keep the warm-up short.
	cfg.Devices = []device.Config{device.Xavier(), device.EdgeCPU()}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	body := func(extra string) string { return graphBody(t, userNet(4), 0.35, extra) }
	// Warm device 1 only: an impossible budget must still route (to the
	// unmeasured device), not shed.
	for i := 0; i < 2; i++ {
		if rec := post(g, body(`,"target":"sim-xavier"`)); rec.Code != http.StatusOK {
			t.Fatalf("warmup %d: %d", i, rec.Code)
		}
	}
	rec := post(g, body(`,"target":"auto","budget_ms":0.000001`))
	if rec.Code != http.StatusOK {
		t.Fatalf("auto with one unmeasured target: %d: %s", rec.Code, rec.Body.String())
	}
	var r PlanResponseWire
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Device != "sim-edge-cpu" {
		t.Fatalf("auto routed to %q, want the unmeasured sim-edge-cpu", r.Device)
	}
	// Warm device 2 as well (the request above was cold; repeat it so
	// the warm histogram fills), then the impossible budget sheds.
	if rec := post(g, body(`,"target":"sim-edge-cpu"`)); rec.Code != http.StatusOK {
		t.Fatalf("edge warm: %d", rec.Code)
	}
	execs := g.Planner().Executions()
	rec = post(g, body(`,"target":"auto","budget_ms":0.000001`))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("fleet-wide impossible budget: %d: %s", rec.Code, rec.Body.String())
	}
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "budget_too_small" || e.RetryAfterMs <= 0 {
		t.Fatalf("shed body %s", rec.Body.String())
	}
	if g.Planner().Executions() != execs {
		t.Fatal("fleet-shed request consumed planner work")
	}
}

// TestGatewayBatchWindowDrainsStaggeredBurst pins the timed batching
// window: staggered compatible arrivals within the window drain into
// one planner pass (the pass closes early once BatchMax is reached, so
// the test never waits out the full window).
func TestGatewayBatchWindowDrainsStaggeredBurst(t *testing.T) {
	const k = 4
	cfg := quickConfig(37)
	cfg.Workers = 1
	cfg.BatchMax = k
	cfg.BatchWindow = 10 * time.Second // exits early at BatchMax
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	var sizes []int
	var sizesMu sync.Mutex
	g.testHookBatch = func(_ string, n int) {
		sizesMu.Lock()
		sizes = append(sizes, n)
		sizesMu.Unlock()
	}

	type result struct {
		i    int
		code int
		body []byte
	}
	results := make(chan result, k)
	for i := 0; i < k; i++ {
		go func(i int) {
			time.Sleep(time.Duration(i*5) * time.Millisecond) // socket-staggered burst
			rec := post(g, graphBody(t, userNet(i), 0.35, ""))
			results <- result{i, rec.Code, stripped(rec.Body.Bytes())}
		}(i)
	}
	got := make(map[int][]byte, k)
	for i := 0; i < k; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request %d: %d: %s", r.i, r.code, r.body)
		}
		got[r.i] = r.body
	}
	sizesMu.Lock()
	defer sizesMu.Unlock()
	if len(sizes) != 1 || sizes[0] != k {
		t.Fatalf("planner passes %v, want one pass of %d (window did not hold the burst)", sizes, k)
	}
	// Windowed batching never changes bytes.
	solo, err := serve.New(serve.Config{Seed: 37, Protocol: quickProto})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		want, err := solo.Select(serve.Request{Graph: userNet(i), DeadlineMs: 0.35, Estimator: "profiler"})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[i], EncodeResponse(want)) {
			t.Fatalf("windowed response %d diverges from solo:\n gw: %s\nsolo: %s", i, got[i], EncodeResponse(want))
		}
	}
}

// TestGatewayAutoCoalescesBeforeShedding pins coalesce-before-shed on
// the auto route: when no device qualifies for the budget but an
// identical execution is already in flight, the request joins it at
// zero planner cost instead of being shed.
func TestGatewayAutoCoalescesBeforeShedding(t *testing.T) {
	cfg := quickConfig(41)
	cfg.ShedMinSamples = 1
	// Coalescing with an in-flight leader is the subject; a byte-cache
	// hit would answer the repeats before they could join anything.
	cfg.ByteCacheCap = -1
	cfg.Workers = 1
	cfg.Devices = []device.Config{device.Xavier()}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	body := graphBody(t, userNet(5), 0.35, "")
	// Warm the only device so its estimate is active (and positive).
	for i := 0; i < 2; i++ {
		if rec := post(g, body); rec.Code != http.StatusOK {
			t.Fatalf("warmup %d: %d", i, rec.Code)
		}
	}
	// Sanity: with nothing in flight, the impossible budget sheds.
	if rec := post(g, graphBody(t, userNet(5), 0.35, `,"target":"auto","budget_ms":0.000001`)); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("idle impossible-budget auto request: %d", rec.Code)
	}

	// Block the worker on an identical unbudgeted leader, then send the
	// impossible-budget auto request: it must join the in-flight call.
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	g.testHookBatch = func(string, int) {
		entered <- struct{}{}
		<-gate
	}
	leader := make(chan *httptest.ResponseRecorder, 1)
	go func() { leader <- post(g, body) }()
	<-entered

	execs := g.Planner().Executions()
	joinedCh := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		joinedCh <- post(g, graphBody(t, userNet(5), 0.35, `,"target":"auto","budget_ms":0.000001`))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.coalesced.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto request neither coalesced nor delivered")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	lead, joined := <-leader, <-joinedCh
	if lead.Code != http.StatusOK || joined.Code != http.StatusOK {
		t.Fatalf("codes %d/%d: %s %s", lead.Code, joined.Code, lead.Body.String(), joined.Body.String())
	}
	if !bytes.Equal(stripped(joined.Body.Bytes()), stripped(lead.Body.Bytes())) {
		t.Fatal("coalesced auto body diverged from the in-flight leader")
	}
	if got := g.Planner().Executions(); got != execs+1 {
		t.Fatalf("executions %d -> %d, want exactly the leader's one", execs, got)
	}
}

// TestGatewayShedAccountsForBatchWindow pins the latency arithmetic:
// with a batching window configured, a budget that covers the bare
// warm p99 but not p99+window is shed — admitting it would queue the
// client into guaranteed lateness behind the window.
func TestGatewayShedAccountsForBatchWindow(t *testing.T) {
	cfg := quickConfig(43)
	cfg.ShedMinSamples = 1
	// The window-blind budget request repeats the warm-up's identity;
	// disable the byte cache so it reaches the shed predicate.
	cfg.ByteCacheCap = -1
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.BatchWindow = 500 * time.Millisecond
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	body := graphBody(t, userNet(6), 0.35, "")
	for i := 0; i < 2; i++ {
		if rec := post(g, body); rec.Code != http.StatusOK {
			t.Fatalf("warmup %d: %d", i, rec.Code)
		}
	}
	p99, _ := g.Planner().WarmQuantile(0.99)
	budget := p99 + 100 // covers the execution, not the 500ms window
	rec := post(g, graphBody(t, userNet(6), 0.35, fmt.Sprintf(`,"budget_ms":%g`, budget)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("window-blind budget %.3f ms admitted: %d: %s", budget, rec.Code, rec.Body.String())
	}
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "budget_too_small" {
		t.Fatalf("shed body %s", rec.Body.String())
	}
	if e.RetryAfterMs < 500 {
		t.Fatalf("retry hint %.3f ms does not include the window", e.RetryAfterMs)
	}
	// A budget covering p99+window is admitted.
	if rec := post(g, graphBody(t, userNet(6), 0.35, `,"budget_ms":60000`)); rec.Code != http.StatusOK {
		t.Fatalf("generous budget: %d", rec.Code)
	}
}
