package gateway

// Overload-control suite: the load-level ladder (driven
// deterministically through the faultinject QueueStall/HeapPressure
// points), the emergency admission gate, AIMD lane concurrency, the
// opt-in degraded-serving fallback, the backlog-honest retry hints,
// and the -race soak that pushes ~4x the queue capacity through a
// tiny gateway. The TestFault* names put the heavyweight tests in the
// CI fault job's -race -run 'Fault' selection alongside the
// containment suite.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netcut/internal/device"
	"netcut/internal/faultinject"
	"netcut/internal/zoo"
)

// retryAfterMs decodes the structured error body's retry hint.
func retryAfterMs(t *testing.T, rec *httptest.ResponseRecorder) float64 {
	t.Helper()
	var e ErrorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("decoding error body %q: %v", rec.Body.String(), err)
	}
	return e.RetryAfterMs
}

// TestFaultOverloadLadderQueueStall pins the ladder's contract at
// level 2 end to end, deterministically: the QueueStall point reads
// the lane as completely full, so the controller must report
// emergency within one interval; byte-cache hits and coalesce joins
// keep serving; a cold miss is shed pre-execution with the
// level-scaled backlog-honest hint; and one tick after the signal
// clears the level is back to 0 and cold misses serve again.
func TestFaultOverloadLadderQueueStall(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(31)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.OverloadInterval = 2 * time.Millisecond
	cfg.ShedMinSamples = 1 << 30 // no budget shedding in this test
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	if lvl := g.LoadLevel(); lvl != levelNormal {
		t.Fatalf("fresh gateway at load level %d, want 0", lvl)
	}

	// Warm one identity into the byte cache while the gateway is calm.
	hitBody := graphBody(t, userNet(0), 0.35, "")
	if rec := post(g, hitBody); rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}

	// Wedge the lane worker mid-pass so an in-flight leader exists for
	// the coalesce-join assertion below.
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var releaseOnce atomic.Bool
	g.testHookBatch = func(string, int) {
		entered <- struct{}{}
		if !releaseOnce.Load() {
			<-release
		}
	}
	leaderBody := graphBody(t, userNet(1), 0.35, "")
	leaderDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { leaderDone <- post(g, leaderBody) }()
	<-entered

	// Stall signal on: the next tick must report emergency.
	faultinject.Arm(faultinject.QueueStall, "sim-xavier", 0)
	waitFor(t, "load level 2", func() bool { return g.LoadLevel() == levelEmergency })
	if g.loadTransitions.Value() == 0 {
		t.Fatal("level moved to 2 without a recorded transition")
	}

	// Byte-cache hits still serve at level 2.
	if rec := post(g, hitBody); rec.Code != http.StatusOK {
		t.Fatalf("byte-cache hit at level 2: status %d: %s", rec.Code, rec.Body.String())
	}
	// Coalesce joins still serve: an identical spelling of the wedged
	// leader must join its in-flight execution, not be shed.
	joined := g.coalesced.Value()
	followerDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { followerDone <- post(g, leaderBody) }()
	waitFor(t, "follower to coalesce at level 2", func() bool { return g.coalesced.Value() > joined })

	// A cold miss is shed pre-execution with the level-scaled,
	// backlog-honest hint: level x ceil(backlog/workers) x (p99+window).
	p, err := g.pool.Planner("sim-xavier")
	if err != nil {
		t.Fatal(err)
	}
	p99, _ := p.WarmQuantile(0.99)
	backlog := len(g.lanes["sim-xavier"].queue)
	rec := post(g, graphBody(t, userNet(2), 0.35, ""))
	if rec.Code != http.StatusTooManyRequests || errCode(t, rec) != "overload_shed" {
		t.Fatalf("cold miss at level 2: status %d code %q, want 429 overload_shed", rec.Code, errCode(t, rec))
	}
	want := math.Max(float64(levelEmergency)*laneWaves(backlog, g.laneWorkers)*(p99+g.windowMs()), 1)
	if got := retryAfterMs(t, rec); got != want {
		t.Fatalf("overload_shed hint %v, want level-scaled %v", got, want)
	}
	if hdr := rec.Header().Get("Retry-After"); hdr != wantRetryAfter(t, rec) {
		t.Fatalf("overload_shed Retry-After header %q does not round the body hint %q", hdr, wantRetryAfter(t, rec))
	}
	if g.shedOverload.Value() == 0 {
		t.Fatal("overload shed not counted")
	}

	// The level is visible on both surfaces.
	if m := get(g, "/metrics").Body.String(); !strings.Contains(m, "netcut_gateway_load_level 2") {
		t.Fatalf("/metrics does not report netcut_gateway_load_level 2:\n%s", m)
	}
	if s := get(g, "/debug/stats").Body.String(); !strings.Contains(s, `"overload"`) {
		t.Fatalf("/debug/stats carries no overload document: %s", s)
	}

	// Release the wedge: leader and follower deliver byte-identical
	// bodies — admission at level 2 refused new work, never changed
	// in-flight results.
	releaseOnce.Store(true)
	close(release)
	lRec, fRec := <-leaderDone, <-followerDone
	if lRec.Code != http.StatusOK || fRec.Code != http.StatusOK {
		t.Fatalf("leader/follower status %d/%d: %s / %s", lRec.Code, fRec.Code, lRec.Body.String(), fRec.Body.String())
	}
	if !bytes.Equal(stripped(lRec.Body.Bytes()), stripped(fRec.Body.Bytes())) {
		t.Fatalf("coalesced bodies diverged:\n%s\n%s", lRec.Body.String(), fRec.Body.String())
	}

	// Signal off: back to 0 within a tick, cold misses serve again.
	faultinject.Reset()
	waitFor(t, "load level 0 after the stall clears", func() bool { return g.LoadLevel() == levelNormal })
	if rec := post(g, graphBody(t, userNet(3), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatalf("cold miss after recovery: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestFaultOverloadHeapPressure pins the memory signal's escalation:
// the HeapPressure point reads the heap as over the configured limit,
// which is an emergency on the next tick, and clears with the signal.
func TestFaultOverloadHeapPressure(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(32)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.OverloadInterval = 2 * time.Millisecond
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	faultinject.Arm(faultinject.HeapPressure, "heap", 0)
	waitFor(t, "heap pressure to force level 2", func() bool { return g.LoadLevel() == levelEmergency })
	faultinject.Reset()
	waitFor(t, "level 0 after heap pressure clears", func() bool { return g.LoadLevel() == levelNormal })
}

// TestOverloadConfigValidation pins the new knobs' edges: negative
// heap limits and out-of-range ladder fractions are configuration
// errors, and a negative OverloadInterval disables the controller —
// the level stays 0 even with a stall signal armed, and nothing is
// shed.
func TestOverloadConfigValidation(t *testing.T) {
	defer faultinject.Reset()
	for name, mutate := range map[string]func(*Config){
		"negative heap limit":      func(c *Config) { c.HeapLimitBytes = -1 },
		"brownout frac above one":  func(c *Config) { c.BrownoutQueueFrac = 1.5 },
		"negative emergency frac":  func(c *Config) { c.EmergencyQueueFrac = -0.2 },
		"emergency frac above one": func(c *Config) { c.EmergencyQueueFrac = 2 },
	} {
		cfg := quickConfig(33)
		cfg.Devices = []device.Config{device.Xavier()}
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: config accepted", name)
		}
	}

	cfg := quickConfig(33)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.OverloadInterval = -1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)
	faultinject.Arm(faultinject.QueueStall, "sim-xavier", 0)
	time.Sleep(20 * time.Millisecond)
	if lvl := g.LoadLevel(); lvl != levelNormal {
		t.Fatalf("disabled controller reports level %d", lvl)
	}
	if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
		t.Fatalf("cold miss with controller disabled: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestOverloadBrownoutWindowAndTraceSampling pins the brownout cuts
// that have no wire-visible effect: the effective batch window halves
// at level 1 and drops at level 2, and the trace ring keeps a
// deterministic 1-in-4 sample under brownout (the sampled-out
// remainder is counted, and requests themselves are unaffected).
func TestOverloadBrownoutWindowAndTraceSampling(t *testing.T) {
	cfg := quickConfig(34)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.BatchWindow = 4 * time.Millisecond
	cfg.OverloadInterval = -1 // manual level control below
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	for lvl, want := range map[int32]time.Duration{
		levelNormal:    cfg.BatchWindow,
		levelBrownout:  cfg.BatchWindow / 2,
		levelEmergency: 0,
	} {
		g.loadLevel.Store(lvl)
		if got := g.effectiveBatchWindow(); got != want {
			t.Fatalf("effective window at level %d = %v, want %v", lvl, got, want)
		}
	}

	g.loadLevel.Store(levelBrownout)
	for i := 0; i < 8; i++ {
		if rec := post(g, graphBody(t, userNet(10+i), 0.35, "")); rec.Code != http.StatusOK {
			t.Fatalf("request %d under brownout: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	// Sequence numbers 1..8 keep seq%4==1 — traces 1 and 5 — so
	// exactly 6 of 8 completed traces were sampled out of the ring.
	if got := g.traceSampledOut.Value(); got != 6 {
		t.Fatalf("sampled out %d of 8 brownout traces, want 6", got)
	}
	g.loadLevel.Store(levelNormal)
}

// TestOverloadSleepNoTrailingTick pins the stop-aware sleep's
// contract after Shutdown: with the drain signalled, sleep must
// report false even when its timer is simultaneously ready — the
// two-arm select the probe and autosave loops used to run picked an
// arm at random here, letting a closed gateway take one more tick
// about half the time.
func TestOverloadSleepNoTrailingTick(t *testing.T) {
	cfg := quickConfig(35)
	cfg.Devices = []device.Config{device.Xavier()}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.sleep(time.Microsecond) {
		t.Fatal("sleep on a live gateway reported stop")
	}
	mustShutdown(t, g)
	for i := 0; i < 200; i++ {
		if g.sleep(0) {
			t.Fatalf("iteration %d: sleep returned true after Shutdown (trailing tick)", i)
		}
	}
}

// TestFaultShutdownNoTrailingProbe pins the loop-level consequence: a
// gateway probing an unhealthy device at a 1ms cadence shuts down
// promptly, and once Shutdown has returned — having waited for the
// background loops — no further probe ever runs.
func TestFaultShutdownNoTrailingProbe(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(36)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.UnhealthyAfter = 1
	cfg.ProbeInterval = time.Millisecond
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var probes atomic.Int64
	g.testHookProbe = func(string) { probes.Add(1) }

	// Trip the device; the armed zoo plan keeps every probe failing,
	// so the probe loop runs for the rest of the test.
	faultinject.Arm(faultinject.TrimPanic, "poison-trailing", 0)
	faultinject.Arm(faultinject.TrimPanic, zoo.Names[0], 0)
	if rec := post(g, graphBody(t, poisonNet(4, "poison-trailing"), 0.35, "")); rec.Code != http.StatusInternalServerError {
		t.Fatal(rec.Body.String())
	}
	waitFor(t, "probes to run", func() bool { return probes.Load() >= 3 })

	start := time.Now()
	mustShutdown(t, g)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("shutdown took %v with a 1ms probe cadence", d)
	}
	after := probes.Load()
	time.Sleep(30 * time.Millisecond)
	if got := probes.Load(); got != after {
		t.Fatalf("%d probes ran after Shutdown returned", got-after)
	}
}

// TestOverloadAIMDLaneConcurrency pins the AIMD limit's arithmetic
// against a real lane: it starts at the per-lane worker ceiling,
// halves (floored at 1, counted) on containment events, grows back by
// one per tracking pass, refuses to grow on a drifting pass — and
// that same drifting observation is what flips the controller's
// warm-p99 drift signal to brownout.
func TestOverloadAIMDLaneConcurrency(t *testing.T) {
	cfg := quickConfig(37)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.Workers = 4
	cfg.ShedMinSamples = 1
	cfg.ByteCacheCap = -1
	cfg.OverloadInterval = -1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)
	l := g.lanes["sim-xavier"]
	limit := func() int {
		l.execMu.Lock()
		defer l.execMu.Unlock()
		return l.execLimit
	}
	if g.laneWorkers != 4 || limit() != 4 {
		t.Fatalf("lane starts at limit %d of %d workers, want the ceiling 4", limit(), g.laneWorkers)
	}

	// Warm the histogram past driftMinSamples so the tracking predicate
	// and the drift gate are active, then pin the drift EWMA to the
	// warm p99 — the cold pass's wall-clock legitimately reads as drift
	// against warm history, and this test pins the signal arithmetic,
	// not the cold start.
	for i := 0; i < driftMinSamples+2; i++ {
		if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
			t.Fatal(rec.Body.String())
		}
	}
	p, err := g.pool.Planner("sim-xavier")
	if err != nil {
		t.Fatal(err)
	}
	p99, _ := p.WarmQuantile(0.99)
	l.execMu.Lock()
	l.execEwmaMs = p99
	l.execMu.Unlock()
	if lvl := g.computeLoadLevel(); lvl != levelNormal {
		t.Fatalf("calm gateway computes level %d", lvl)
	}

	for i, want := range []int{2, 1, 1} { // halve, halve, floor
		g.laneAIMDDecrease("sim-xavier")
		if got := limit(); got != want {
			t.Fatalf("decrease %d: limit %d, want %d", i, got, want)
		}
	}
	if got := l.aimdDecreases.Value(); got != 2 {
		t.Fatalf("%d decreases counted, want 2 (the floor no-op does not count)", got)
	}

	for i, want := range []int{2, 3, 4, 4} { // additive growth, capped
		g.laneAIMDIncrease("sim-xavier", p99)
		if got := limit(); got != want {
			t.Fatalf("increase %d: limit %d, want %d", i, got, want)
		}
	}

	// A drifting pass: the limit must not grow past a decrease, and
	// the drift EWMA flips the controller signal to brownout.
	g.laneAIMDDecrease("sim-xavier")
	g.laneAIMDIncrease("sim-xavier", 1e6)
	if got := limit(); got != 2 {
		t.Fatalf("drifting pass grew the limit to %d", got)
	}
	if lvl := g.computeLoadLevel(); lvl != levelBrownout {
		t.Fatalf("drifting lane computes level %d, want brownout", lvl)
	}
}

// TestOverloadIdleDriftDecay pins the controller's idle decay: the
// drift EWMA is the one ladder signal with memory, and it only
// collects samples while passes run — so a lone slow pass must not
// hold an idle gateway in brownout. Each tick halves the EWMA of a
// lane with no queued work and no pass in flight (and only such a
// lane), and the level folds back to normal once it decays under the
// drift threshold.
func TestOverloadIdleDriftDecay(t *testing.T) {
	cfg := quickConfig(43)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.ShedMinSamples = 1
	cfg.ByteCacheCap = -1     // repeats must execute to build warm history
	cfg.OverloadInterval = -1 // ticks driven by hand
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	// Warm history past driftMinSamples so the drift gate is active,
	// then inflate the EWMA the way a slow cold pass would.
	for i := 0; i < driftMinSamples+2; i++ {
		if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
			t.Fatal(rec.Body.String())
		}
	}
	l := g.lanes["sim-xavier"]
	l.execMu.Lock()
	l.execEwmaMs = 1e6
	l.execMu.Unlock()
	if lvl := g.computeLoadLevel(); lvl != levelBrownout {
		t.Fatalf("inflated drift EWMA computes level %d, want brownout", lvl)
	}

	// A busy lane must not decay: the drift signal may not be washed
	// out while passes are in flight.
	l.execMu.Lock()
	l.execActive++
	l.execMu.Unlock()
	g.overloadTick()
	l.execMu.Lock()
	busyEwma := l.execEwmaMs
	l.execActive--
	l.execMu.Unlock()
	if busyEwma != 1e6 {
		t.Fatalf("tick decayed a busy lane's EWMA to %v", busyEwma)
	}

	// Idle ticks halve the EWMA until the level folds back to normal
	// and the signal zeroes out entirely.
	ticks := 0
	for ; ticks < 64 && g.LoadLevel() != levelNormal; ticks++ {
		g.overloadTick()
	}
	if got := g.LoadLevel(); got != levelNormal {
		t.Fatalf("level still %d after %d idle ticks", got, ticks)
	}
	for i := 0; i < 64; i++ {
		g.overloadTick()
	}
	l.execMu.Lock()
	final := l.execEwmaMs
	l.execMu.Unlock()
	if final != 0 {
		t.Fatalf("idle EWMA decayed to %v, want exactly 0", final)
	}
}

// TestFaultDegradedUnhealthyDevice pins opt-in degraded serving on
// the health path: with the default device tripped, allow_degraded
// falls back deterministically to the fastest healthy device and the
// body is byte-identical to the explicit spelling of that fallback
// modulo the trace ID and the write-time degraded markers — on both
// the execution path and the byte-cache hit path.
func TestFaultDegradedUnhealthyDevice(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(38)
	cfg.Devices = []device.Config{device.Xavier(), device.EdgeCPU()}
	cfg.UnhealthyAfter = 1
	cfg.ProbeInterval = time.Hour // no recovery during the test
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	faultinject.Arm(faultinject.TrimPanic, "poison-degraded", 1)
	if rec := post(g, graphBody(t, poisonNet(5, "poison-degraded"), 0.35, "")); rec.Code != http.StatusInternalServerError {
		t.Fatal(rec.Body.String())
	}

	// Without the flag the tripped default target stays a 503.
	if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusServiceUnavailable ||
		errCode(t, rec) != "device_unhealthy" {
		t.Fatalf("unflagged request on tripped default: status %d code %q", rec.Code, errCode(t, rec))
	}

	// Cold degraded fallback (execution path).
	rec := post(g, graphBody(t, userNet(0), 0.35, `,"allow_degraded":true`))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded fallback: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp PlanResponseWire
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Device != "sim-edge-cpu" || !resp.Degraded || resp.DegradedReason != degradedUnhealthy {
		t.Fatalf("degraded fallback device %q degraded=%v reason %q", resp.Device, resp.Degraded, resp.DegradedReason)
	}
	d1 := rec.Body.Bytes()

	// Repeat: now a byte-cache hit of the fallback identity, still
	// marked degraded, byte-identical modulo the trace ID.
	rec = post(g, graphBody(t, userNet(0), 0.35, `,"allow_degraded":true`))
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	if !bytes.Equal(stripped(d1), stripped(rec.Body.Bytes())) {
		t.Fatalf("cold and cached degraded bodies diverged:\n%s\n%s", d1, rec.Body.Bytes())
	}
	// Explicit spelling of the fallback target delivers the canonical
	// body: no degraded markers leak out of the shared byte cache, and
	// the degraded body equals it modulo the markers.
	rec = post(g, graphBody(t, userNet(0), 0.35, `,"target":"sim-edge-cpu"`))
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	if bytes.Contains(rec.Body.Bytes(), []byte(`"degraded"`)) {
		t.Fatalf("explicit response leaked degraded markers: %s", rec.Body.String())
	}
	if !bytes.Equal(StripDegraded(stripped(d1)), stripped(rec.Body.Bytes())) {
		t.Fatalf("degraded body is not the explicit fallback body plus markers:\n%s\n%s", d1, rec.Body.Bytes())
	}

	// The explicit spelling of the tripped device degrades too.
	rec = post(g, graphBody(t, userNet(0), 0.35, `,"target":"sim-xavier","allow_degraded":true`))
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit degraded fallback: status %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`"degraded":true,"degraded_reason":"unhealthy_device"`)) {
		t.Fatalf("explicit degraded response carries no marker: %s", rec.Body.String())
	}
	if g.degradedServed.Value() < 3 {
		t.Fatalf("degraded counter %d, want >= 3", g.degradedServed.Value())
	}
}

// TestFaultDegradedBudgetAndFleetDown pins the other degraded entry
// point and its limit: a budget-infeasible request with allow_degraded
// is served late on the fastest device instead of shed — for default
// and auto targets, marked budget_infeasible, byte-identical to the
// unbudgeted spelling modulo markers — while a fleet with no healthy
// device keeps returning 503 no_healthy_device: there is nothing to
// degrade onto.
func TestFaultDegradedBudgetAndFleetDown(t *testing.T) {
	defer faultinject.Reset()
	cfg := quickConfig(39)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.ShedMinSamples = 1
	cfg.ByteCacheCap = -1 // repeats must reach the shed predicate
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	// Warm the histogram so budget shedding activates, and keep the
	// unbudgeted body as the byte-identity reference.
	var want []byte
	for i := 0; i < 2; i++ {
		rec := post(g, graphBody(t, userNet(0), 0.35, ""))
		if rec.Code != http.StatusOK {
			t.Fatal(rec.Body.String())
		}
		want = stripped(rec.Body.Bytes())
	}

	if rec := post(g, graphBody(t, userNet(0), 0.35, `,"budget_ms":0.000001`)); rec.Code != http.StatusTooManyRequests ||
		errCode(t, rec) != "budget_too_small" {
		t.Fatalf("unflagged tiny budget: status %d code %q", rec.Code, errCode(t, rec))
	}

	for _, spelling := range []string{
		`,"budget_ms":0.000001,"allow_degraded":true`,
		`,"target":"auto","budget_ms":0.000001,"allow_degraded":true`,
	} {
		rec := post(g, graphBody(t, userNet(0), 0.35, spelling))
		if rec.Code != http.StatusOK {
			t.Fatalf("degraded budget fallback %q: status %d: %s", spelling, rec.Code, rec.Body.String())
		}
		var resp PlanResponseWire
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Degraded || resp.DegradedReason != degradedBudget || resp.Device != "sim-xavier" {
			t.Fatalf("fallback %q: device %q degraded=%v reason %q", spelling, resp.Device, resp.Degraded, resp.DegradedReason)
		}
		if !bytes.Equal(StripDegraded(stripped(rec.Body.Bytes())), want) {
			t.Fatalf("degraded budget body diverged from the unbudgeted spelling:\n%s\nwant %s", rec.Body.Bytes(), want)
		}
	}
	if g.degradedServed.Value() != 2 {
		t.Fatalf("degraded counter %d, want 2", g.degradedServed.Value())
	}

	// Fleet-wide unhealthy: allow_degraded cannot conjure a device.
	cfg2 := quickConfig(40)
	cfg2.Devices = []device.Config{device.Xavier()}
	cfg2.UnhealthyAfter = 1
	cfg2.ProbeInterval = time.Hour
	g2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g2)
	faultinject.Arm(faultinject.TrimPanic, "poison-fleet", 1)
	if rec := post(g2, graphBody(t, poisonNet(6, "poison-fleet"), 0.35, "")); rec.Code != http.StatusInternalServerError {
		t.Fatal(rec.Body.String())
	}
	rec := post(g2, graphBody(t, userNet(1), 0.35, `,"allow_degraded":true`))
	if rec.Code != http.StatusServiceUnavailable || errCode(t, rec) != "no_healthy_device" {
		t.Fatalf("fleet down with allow_degraded: status %d code %q", rec.Code, errCode(t, rec))
	}
	if rec.Header().Get("Retry-After") != "3600" {
		t.Fatalf("fleet-down Retry-After %q, want the probe cadence", rec.Header().Get("Retry-After"))
	}
}

// TestOverloadQueueFullRetryAfterWaves pins the backlog-honest hint at
// depth: with four requests queued behind one wedged worker, the
// queue-full hint must claim ceil(4/1) execution waves of (p99 +
// window) each — four times what a one-deep backlog claims.
func TestOverloadQueueFullRetryAfterWaves(t *testing.T) {
	cfg := quickConfig(41)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.Workers = 1
	cfg.QueueDepth = 4
	cfg.ShedMinSamples = 1
	cfg.ByteCacheCap = -1
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	// Warm the histogram so the hint has a real p99 to scale.
	for i := 0; i < 2; i++ {
		if rec := post(g, graphBody(t, userNet(0), 0.35, "")); rec.Code != http.StatusOK {
			t.Fatal(rec.Body.String())
		}
	}

	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var releaseOnce atomic.Bool
	g.testHookBatch = func(string, int) {
		entered <- struct{}{}
		if !releaseOnce.Load() {
			<-release
		}
	}
	var wg sync.WaitGroup
	results := make(chan *httptest.ResponseRecorder, 5)
	wedge := func(i int) {
		defer wg.Done()
		results <- post(g, graphBody(t, userNet(20+i), 0.35, ""))
	}
	wg.Add(1)
	go wedge(0)
	<-entered // the worker is wedged; the queue is empty
	for i := 1; i <= 4; i++ {
		wg.Add(1)
		go wedge(i)
	}
	waitFor(t, "four requests to fill the queue", func() bool {
		return len(g.lanes["sim-xavier"].queue) == 4
	})

	p, err := g.pool.Planner("sim-xavier")
	if err != nil {
		t.Fatal(err)
	}
	p99, _ := p.WarmQuantile(0.99)
	rec := post(g, graphBody(t, userNet(30), 0.35, ""))
	if rec.Code != http.StatusTooManyRequests || errCode(t, rec) != "queue_full" {
		t.Fatalf("probe: status %d code %q", rec.Code, errCode(t, rec))
	}
	want := math.Max(4*(p99+g.windowMs()), 1)
	if got := retryAfterMs(t, rec); got != want {
		t.Fatalf("queue-full hint %v, want 4 waves = %v (p99 %v)", got, want, p99)
	}
	if hdr := rec.Header().Get("Retry-After"); hdr != wantRetryAfter(t, rec) {
		t.Fatalf("Retry-After header %q does not round the hint", hdr)
	}

	releaseOnce.Store(true)
	close(release)
	wg.Wait()
	close(results)
	for r := range results {
		if r.Code != http.StatusOK {
			t.Fatalf("queued request failed after release: %d: %s", r.Code, r.Body.String())
		}
	}
}

// TestFaultOverloadSoak floods a tiny gateway with roughly 4x its
// queue capacity of unique cold requests over slowed executions (the
// ExecDelay point) and pins the controller's dynamic behavior under
// -race: the level rises to emergency, byte-cache hits keep serving
// through it, every rejection is a well-formed 429 with a Retry-After,
// the level returns to 0 once the load stops, a cold request serves
// again, and shutdown leaks no goroutines.
func TestFaultOverloadSoak(t *testing.T) {
	defer faultinject.Reset()
	before := runtime.NumGoroutine()
	cfg := quickConfig(42)
	cfg.Devices = []device.Config{device.Xavier()}
	cfg.Workers = 1
	cfg.QueueDepth = 4
	cfg.ShedMinSamples = 1 << 30 // reject only on backlog, never budget
	cfg.OverloadInterval = 3 * time.Millisecond
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	hitBody := graphBody(t, userNet(0), 0.35, "")
	if rec := post(g, hitBody); rec.Code != http.StatusOK {
		t.Fatal(rec.Body.String())
	}
	faultinject.ArmDelay(faultinject.ExecDelay, "", 0, 3*time.Millisecond)

	const posters = 8
	var (
		seq    atomic.Int64
		served atomic.Int64
		shed   atomic.Int64
		wg     sync.WaitGroup
		stop   = make(chan struct{})
		errs   = make(chan error, posters)
	)
	for w := 0; w < posters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := post(g, graphBody(t, userNet(100+int(seq.Add(1))), 0.35, ""))
				switch rec.Code {
				case http.StatusOK:
					served.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
					var e ErrorWire
					if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil ||
						(e.Code != "queue_full" && e.Code != "overload_shed") {
						errs <- fmt.Errorf("unexpected 429 body: %s", rec.Body.String())
						return
					}
					if rec.Header().Get("Retry-After") == "" || e.RetryAfterMs <= 0 {
						errs <- fmt.Errorf("429 without a backlog-honest hint: %s", rec.Body.String())
						return
					}
				default:
					errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}

	waitFor(t, "load level to rise under flood", func() bool { return g.LoadLevel() >= levelBrownout })
	waitFor(t, "emergency level under flood", func() bool { return g.LoadLevel() == levelEmergency })
	for i := 0; i < 3; i++ {
		if rec := post(g, hitBody); rec.Code != http.StatusOK {
			t.Fatalf("byte-cache hit during overload: status %d: %s", rec.Code, rec.Body.String())
		}
	}
	waitFor(t, "overload sheds to be counted", func() bool { return g.shedOverload.Value() > 0 })

	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if served.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("soak served %d / shed %d; both sides must be exercised", served.Load(), shed.Load())
	}

	faultinject.Reset()
	waitFor(t, "load level 0 after the flood", func() bool { return g.LoadLevel() == levelNormal })
	coldBody := graphBody(t, userNet(99), 0.35, "")
	waitFor(t, "cold requests to serve again", func() bool { return post(g, coldBody).Code == http.StatusOK })

	mustShutdown(t, g)
	waitFor(t, "goroutines to drain", func() bool { return runtime.NumGoroutine() <= before+5 })
}
