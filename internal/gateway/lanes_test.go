package gateway

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"netcut/internal/device"
	"netcut/internal/persist"
	"netcut/internal/serve"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// postSave drives POST /v1/state/save directly.
func postSave(g *Gateway) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/state/save", nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

// TestGatewayLaneIsolation pins the head-of-line contract the lanes
// exist for: with a single configured worker total (so the old shared
// pool would have exactly one worker for the whole fleet), a planner
// pass stuck on one device must not keep another device's requests
// from executing — every lane owns at least one worker.
func TestGatewayLaneIsolation(t *testing.T) {
	cfg := quickConfig(21)
	cfg.Workers = 1 // divided across lanes: still one worker per device
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	slowDev := g.pool.DeviceNames()[2]
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	g.testHookBatch = func(device string, _ int) {
		if device == slowDev {
			entered <- struct{}{}
			<-gate
		}
	}

	// Wedge the slow device's lane in a (gated) planner pass.
	stuck := make(chan *int, 1)
	go func() {
		rec := post(g, `{"network":"ResNet-50","deadline_ms":0.9,"target":"`+slowDev+`"}`)
		stuck <- &rec.Code
	}()
	<-entered

	// Default-device traffic must flow while the other lane is stuck.
	done := make(chan int, 1)
	go func() {
		rec := post(g, `{"network":"MobileNetV1 (0.25)","deadline_ms":0.9}`)
		done <- rec.Code
	}()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("default-device request during stuck lane: status %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("default-device request head-of-line-blocked by another device's planner pass")
	}

	close(gate)
	if code := <-stuck; *code != http.StatusOK {
		t.Fatalf("slow-device request: status %d", *code)
	}
}

// TestGatewayLaneCapsDivide pins the division rule: lane queue depth
// and workers are the configured totals split evenly across devices,
// minimum 1 each.
func TestGatewayLaneCapsDivide(t *testing.T) {
	cfg := quickConfig(1)
	cfg.QueueDepth = 64
	cfg.Workers = 8
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)
	n := len(g.pool.DeviceNames())
	if len(g.lanes) != n {
		t.Fatalf("%d lanes for %d devices", len(g.lanes), n)
	}
	if g.laneQueueCap != 64/n || g.laneWorkers != 8/n {
		t.Fatalf("lane caps %d/%d, want %d/%d", g.laneQueueCap, g.laneWorkers, 64/n, 8/n)
	}
	for _, l := range g.lanes {
		if cap(l.queue) != g.laneQueueCap {
			t.Fatalf("lane %s queue cap %d, want %d", l.device, cap(l.queue), g.laneQueueCap)
		}
	}

	// Totals below the device count still give every lane one slot and
	// one worker.
	small := quickConfig(1)
	small.QueueDepth = 1
	small.Workers = 1
	gs, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, gs)
	if gs.laneQueueCap != 1 || gs.laneWorkers != 1 {
		t.Fatalf("small lane caps %d/%d, want 1/1", gs.laneQueueCap, gs.laneWorkers)
	}
}

// TestGatewayStateSaveEndpoint pins the admin persistence surface:
// POST /v1/state/save writes a decodable snapshot to the configured
// path, a path-less gateway refuses with a structured 404, and a
// second gateway restored from the file serves its first request on
// the warm path with a byte-identical body.
func TestGatewayStateSaveEndpoint(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	statePath := filepath.Join(t.TempDir(), "state.json")
	cfg := quickConfig(17)
	cfg.StatePath = statePath
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	body := `{"network":"MobileNetV1 (0.25)","deadline_ms":0.9}`
	warm := post(g, body)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm request: %d", warm.Code)
	}

	saveRec := postSave(g)
	if saveRec.Code != http.StatusOK {
		t.Fatalf("state save: status %d: %s", saveRec.Code, saveRec.Body.String())
	}
	var resp struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	if err := json.Unmarshal(saveRec.Body.Bytes(), &resp); err != nil || resp.Path != statePath || resp.Bytes <= 0 {
		t.Fatalf("state save body %s", saveRec.Body.String())
	}
	raw, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != resp.Bytes {
		t.Fatalf("file holds %d bytes, endpoint reported %d", len(raw), resp.Bytes)
	}
	if _, err := persist.DecodeBytes(raw); err != nil {
		t.Fatalf("saved state does not decode: %v", err)
	}
	mustShutdown(t, g)

	// Restore into a fresh gateway: first request must be warm and
	// byte-identical.
	trim.PurgeCutCache()
	g2, err := New(quickConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g2)
	f, err := os.Open(statePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g2.LoadState(f); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	rec2 := post(g2, body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-restore request: %d", rec2.Code)
	}
	if string(stripped(rec2.Body.Bytes())) != string(stripped(warm.Body.Bytes())) {
		t.Fatalf("post-restore body diverged:\n got %s\nwant %s", rec2.Body.String(), warm.Body.String())
	}
	if _, samples := g2.Planner().WarmQuantile(0.99); samples != 1 {
		t.Fatalf("post-restore request ran cold (warm samples %d, want 1)", samples)
	}

	// Cross-seed snapshots are rejected, never silently trusted.
	g3, err := New(quickConfig(18))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g3)
	f2, err := os.Open(statePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := g3.LoadState(f2); !errors.Is(err, serve.ErrStateMismatch) {
		t.Fatalf("cross-seed gateway load: err = %v, want ErrStateMismatch", err)
	}

	// Without a configured path, the endpoint is disabled.
	g4, err := New(quickConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g4)
	rec4 := postSave(g4)
	if rec4.Code != http.StatusNotFound {
		t.Fatalf("disabled state save: status %d", rec4.Code)
	}
	var e ErrorWire
	if err := json.Unmarshal(rec4.Body.Bytes(), &e); err != nil || e.Code != "state_disabled" {
		t.Fatalf("disabled state save body %s", rec4.Body.String())
	}
}

// TestGatewayPrewarm pins startup prewarming: after Prewarm completes,
// every zoo architecture is a warm cache hit on every registered
// device, and the prewarmed counter accounts for the full cross
// product.
func TestGatewayPrewarm(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	cfg := quickConfig(19)
	cfg.Devices = device.Profiles()[:2]
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mustShutdown(t, g)

	select {
	case <-g.Prewarm():
	case <-time.After(120 * time.Second):
		t.Fatal("prewarm did not finish")
	}
	wantPlans := uint64(len(g.pool.DeviceNames()) * len(zoo.Names))
	if got := g.prewarmed.Value(); got != wantPlans {
		t.Fatalf("prewarmed %d plans, want %d", got, wantPlans)
	}

	// Every zoo request on every device is now warm: no executions may
	// land in a cold histogram.
	for _, dev := range g.pool.DeviceNames() {
		p, err := g.pool.Planner(dev)
		if err != nil {
			t.Fatal(err)
		}
		execsBefore := p.Executions()
		_, warmBefore := p.WarmQuantile(0.99)
		for _, name := range zoo.Names {
			body, _ := json.Marshal(map[string]any{"network": name, "deadline_ms": 0.9, "target": dev})
			if rec := post(g, string(body)); rec.Code != http.StatusOK {
				t.Fatalf("%s on %s: status %d: %s", name, dev, rec.Code, rec.Body.String())
			}
		}
		_, warmAfter := p.WarmQuantile(0.99)
		execs := p.Executions() - execsBefore
		if warmAfter-warmBefore != execs {
			t.Fatalf("%s: %d of %d post-prewarm executions ran cold", dev, execs-(warmAfter-warmBefore), execs)
		}
	}
}
