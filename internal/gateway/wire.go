package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"

	"netcut/internal/graph"
	"netcut/internal/serve"
	"netcut/internal/zoo"
)

// The JSON wire format of the planning API. A request names either a
// calibrated zoo network ("network") or carries a full layer graph
// ("graph"); the graph schema mirrors graph.Graph field for field, so
// decode-encode is lossless and the decoded structure passes the same
// graph.Validate boundary every other entry point uses.

// ShapeWire is a feature-map shape.
type ShapeWire struct {
	H int `json:"h"`
	W int `json:"w"`
	C int `json:"c"`
}

func (s ShapeWire) shape() graph.Shape { return graph.Shape{H: s.H, W: s.W, C: s.C} }

func wireShape(s graph.Shape) ShapeWire { return ShapeWire{H: s.H, W: s.W, C: s.C} }

// NodeWire is one layer. Block is a pointer so that "absent" (stem or
// head, -1 internally) is distinguishable from "block 0".
type NodeWire struct {
	ID          int        `json:"id"`
	Name        string     `json:"name,omitempty"`
	Kind        string     `json:"kind"`
	Inputs      []int      `json:"inputs,omitempty"`
	In          *ShapeWire `json:"in,omitempty"`
	Out         ShapeWire  `json:"out"`
	KH          int        `json:"kh,omitempty"`
	KW          int        `json:"kw,omitempty"`
	Stride      int        `json:"stride,omitempty"`
	Pad         string     `json:"pad,omitempty"` // "same" or "valid"
	MACs        int64      `json:"macs,omitempty"`
	Params      int64      `json:"params,omitempty"`
	WeightBytes int64      `json:"weight_bytes,omitempty"`
	IOBytes     int64      `json:"io_bytes,omitempty"`
	Block       *int       `json:"block,omitempty"`
	Head        bool       `json:"head,omitempty"`
}

// BlockWire is one removable block.
type BlockWire struct {
	Index  int    `json:"index"`
	Label  string `json:"label,omitempty"`
	Nodes  []int  `json:"nodes"`
	Output int    `json:"output"`
}

// GraphWire is a full layer graph.
type GraphWire struct {
	Name       string      `json:"name"`
	Input      ShapeWire   `json:"input"`
	NumClasses int         `json:"num_classes"`
	Nodes      []NodeWire  `json:"nodes"`
	Blocks     []BlockWire `json:"blocks,omitempty"`
}

// PlanRequestWire is the body of POST /v1/plan.
type PlanRequestWire struct {
	// Network requests a calibrated zoo architecture by name; Graph
	// submits an arbitrary layer graph. Exactly one must be set.
	Network string     `json:"network,omitempty"`
	Graph   *GraphWire `json:"graph,omitempty"`
	// Target names the device to plan for: a registered device name
	// (see GET /v1/devices), "auto" to let the gateway route to the
	// fastest qualifying target, or empty for the default device.
	Target string `json:"target,omitempty"`
	// DeadlineMs is the inference deadline; 0 means the prosthetic
	// hand's 0.9 ms.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Estimator is "profiler" (default), "analytical" or "linear".
	Estimator string `json:"estimator,omitempty"`
	// BudgetMs is the client's remaining latency budget for THIS call.
	// 0 means unbounded; a positive budget below the target's observed
	// warm-path p99 is shed up front with 429 instead of being queued
	// into certain lateness (with target "auto", only when no
	// registered device's warm path fits the budget).
	BudgetMs float64 `json:"budget_ms,omitempty"`
	// AllowDegraded opts this request into degraded serving: instead
	// of a 429/503 when the budget is infeasible or the requested
	// device is unhealthy, the gateway deterministically falls back to
	// the fastest healthy device and returns its plan marked
	// "degraded": true with a degraded_reason. The flag is admission
	// policy only — the fallback body is byte-identical to an explicit
	// request naming that device (modulo trace_id and the degraded
	// markers), and it is not part of the coalescing identity. When the
	// whole fleet is unhealthy there is nothing to fall back to and the
	// 503 stands.
	AllowDegraded bool `json:"allow_degraded,omitempty"`
}

// PlanResponseWire is the body of a successful plan. Field order is
// fixed; together with encoding/json's deterministic float formatting
// this makes response bodies byte-comparable, the property the
// coalescing tests pin.
type PlanResponseWire struct {
	Device        string  `json:"device"`
	Feasible      bool    `json:"feasible"`
	Network       string  `json:"network,omitempty"`
	Parent        string  `json:"parent"`
	BlocksRemoved int     `json:"blocks_removed"`
	LayersRemoved int     `json:"layers_removed"`
	EstimatedMs   float64 `json:"estimated_ms"`
	MeasuredMs    float64 `json:"measured_ms"`
	Accuracy      float64 `json:"accuracy"`
	TrainHours    float64 `json:"train_hours"`
	Iterations    int     `json:"iterations"`
	// Degraded marks an opt-in fallback response: the request set
	// allow_degraded and its preferred outcome was infeasible (budget
	// too small, device unhealthy), so this plan came from the fastest
	// healthy device instead. Like TraceID below, both fields are
	// spliced into the rendered body at write time — EncodeResponse
	// never sets them, so the canonical body (the coalesce/byte-cache
	// value) stays clean and byte-identical to the explicit spelling of
	// the fallback target.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReason says why the fallback happened: "unhealthy_device"
	// or "budget_infeasible".
	DegradedReason string `json:"degraded_reason,omitempty"`
	// TraceID is the per-request trace identifier (16 lowercase hex
	// chars, also in the X-Netcut-Trace header). It is spliced into the
	// rendered body at response-write time — EncodeResponse never sets
	// it, so the canonical body (the coalesce/byte-cache value) stays
	// trace-free and byte-identical across serving paths. The field is
	// declared last to match the injected position.
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorWire is the structured error body of every non-2xx response.
type ErrorWire struct {
	Code         string  `json:"code"`
	Error        string  `json:"error"`
	RetryAfterMs float64 `json:"retry_after_ms,omitempty"`
	// TraceID mirrors PlanResponseWire.TraceID: injected at write time,
	// never marshaled by the gateway itself.
	TraceID string `json:"trace_id,omitempty"`
}

// apiError carries an HTTP status plus the structured body.
type apiError struct {
	status int
	wire   ErrorWire
}

func (e *apiError) Error() string { return e.wire.Error }

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, wire: ErrorWire{Code: code, Error: fmt.Sprintf(format, args...)}}
}

// encBufPool recycles scratch buffers for EncodeResponse, so a warm
// miss renders its body with exactly one allocation (the returned
// slice, which outlives the call as the response and byte-cache value).
var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// EncodeResponse renders a planner response as the gateway's response
// body. Exported so tests (and clients embedded in this repo) can pin
// the byte-identity contract: a coalesced or batched gateway body
// equals EncodeResponse of the same request served alone.
//
// The rendering is hand-rolled — field order and spelling mirror
// PlanResponseWire, and the scalar appenders replicate encoding/json's
// formatting exactly — so the warm path pays no reflective walk while
// the bytes stay identical to json.Marshal of the wire struct
// (TestEncodeResponseMatchesJSONMarshal pins the equivalence; change
// PlanResponseWire and this renderer together).
func EncodeResponse(r *serve.Response) []byte {
	bp := encBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, `{"device":`...)
	b = appendJSONString(b, r.Device)
	b = append(b, `,"feasible":`...)
	b = strconv.AppendBool(b, r.Feasible)
	if r.Network != "" { // omitempty
		b = append(b, `,"network":`...)
		b = appendJSONString(b, r.Network)
	}
	b = append(b, `,"parent":`...)
	b = appendJSONString(b, r.Parent)
	b = append(b, `,"blocks_removed":`...)
	b = strconv.AppendInt(b, int64(r.BlocksRemoved), 10)
	b = append(b, `,"layers_removed":`...)
	b = strconv.AppendInt(b, int64(r.LayersRemoved), 10)
	b = append(b, `,"estimated_ms":`...)
	b = appendJSONFloat(b, r.EstimatedMs)
	b = append(b, `,"measured_ms":`...)
	b = appendJSONFloat(b, r.MeasuredMs)
	b = append(b, `,"accuracy":`...)
	b = appendJSONFloat(b, r.Accuracy)
	b = append(b, `,"train_hours":`...)
	b = appendJSONFloat(b, r.TrainHours)
	b = append(b, `,"iterations":`...)
	b = strconv.AppendInt(b, int64(r.Iterations), 10)
	b = append(b, '}', '\n')
	out := append(make([]byte, 0, len(b)), b...)
	*bp = b
	encBufPool.Put(bp)
	return out
}

// StripTraceID removes the injected `"trace_id":"..."` member from a
// response body, recovering the canonical rendering. The inverse of the
// write-time injection, exported so tests and embedded clients can pin
// the byte-identity contract across serving paths: two responses to the
// same request are byte-identical after stripping their (per-request)
// trace IDs. Bodies without the field come back unchanged.
func StripTraceID(body []byte) []byte {
	const field = `"trace_id":"`
	i := bytes.Index(body, []byte(field))
	if i < 0 {
		return body
	}
	end := i + len(field)
	for end < len(body) && body[end] != '"' {
		end++
	}
	if end >= len(body) {
		return body
	}
	end++ // the closing quote
	start := i
	if start > 0 && body[start-1] == ',' {
		start-- // drop the comma that joined the field to its predecessor
	}
	out := make([]byte, 0, len(body)-(end-start))
	out = append(out, body[:start]...)
	out = append(out, body[end:]...)
	return out
}

// injectDegraded splices `,"degraded":true,"degraded_reason":"<r>"`
// before the final closing brace of a rendered 200 body, mirroring the
// trace-ID splice (the trace ID is injected after this, so it stays
// the last member, matching PlanResponseWire's field order). Reasons
// are fixed tokens (degradedUnhealthy, degradedBudget), so no JSON
// escaping is needed. The copy is fine: degraded fallbacks are the
// rare path by construction.
func injectDegraded(body []byte, reason string) []byte {
	i := bytes.LastIndexByte(body, '}')
	if i < 0 {
		return body
	}
	out := make([]byte, 0, len(body)+len(reason)+len(`,"degraded":true,"degraded_reason":""`))
	out = append(out, body[:i]...)
	if i > 0 && body[i-1] != '{' {
		out = append(out, ',')
	}
	out = append(out, `"degraded":true,"degraded_reason":"`...)
	out = append(out, reason...)
	out = append(out, `"}`...)
	out = append(out, body[i+1:]...)
	return out
}

// StripDegraded removes the injected degraded markers from a response
// body, recovering the canonical rendering — the inverse of the
// write-time degraded splice, exported (like StripTraceID) so tests
// and clients can pin the byte-identity contract: a degraded fallback
// body equals the explicit spelling of its fallback target after
// stripping trace IDs and degraded markers. Bodies without the fields
// come back unchanged.
func StripDegraded(body []byte) []byte {
	if i := bytes.Index(body, []byte(`"degraded":true`)); i >= 0 {
		body = cutMember(body, i, i+len(`"degraded":true`))
	}
	const reason = `"degraded_reason":"`
	if i := bytes.Index(body, []byte(reason)); i >= 0 {
		end := i + len(reason)
		for end < len(body) && body[end] != '"' {
			end++
		}
		if end < len(body) {
			body = cutMember(body, i, end+1)
		}
	}
	return body
}

// cutMember removes body[start:end] plus the comma that joined the
// member to its predecessor, allocating the result (the StripTraceID
// splice shape).
func cutMember(body []byte, start, end int) []byte {
	if start > 0 && body[start-1] == ',' {
		start--
	}
	out := make([]byte, 0, len(body)-(end-start))
	out = append(out, body[:start]...)
	out = append(out, body[end:]...)
	return out
}

// appendJSONString appends s as a JSON string. The fast path covers
// printable ASCII with nothing to escape — every registered device and
// zoo network name; anything else (quotes, control bytes, non-ASCII,
// and the <, >, & that encoding/json HTML-escapes) falls back to
// json.Marshal so the escaping matches it byte for byte.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, err := json.Marshal(s)
			if err != nil {
				panic(err) // a string value cannot fail to marshal
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest representation, 'f' format unless the magnitude forces 'e',
// and the exponent's leading zero stripped (2.5e-09 -> 2.5e-9).
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		// encoding/json rejects these; the planner never emits them.
		panic(&json.UnsupportedValueError{Str: strconv.FormatFloat(f, 'g', -1, 64)})
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// EncodeGraph renders g in the wire schema, the inverse of the request
// decoder; the gateway example and load generators build request
// bodies with it.
func EncodeGraph(g *graph.Graph) *GraphWire {
	w := &GraphWire{
		Name:       g.Name,
		Input:      wireShape(g.InputShape),
		NumClasses: g.NumClasses,
		Nodes:      make([]NodeWire, 0, len(g.Nodes)),
		Blocks:     make([]BlockWire, 0, len(g.Blocks)),
	}
	for _, n := range g.Nodes {
		nw := NodeWire{
			ID:          n.ID,
			Name:        n.Name,
			Kind:        n.Kind.String(),
			Inputs:      append([]int(nil), n.Inputs...),
			Out:         wireShape(n.Out),
			KH:          n.KH,
			KW:          n.KW,
			Stride:      n.Stride,
			MACs:        n.MACs,
			Params:      n.Params,
			WeightBytes: n.WeightBytes,
			IOBytes:     n.IOBytes,
			Head:        n.Head,
		}
		if n.In != (graph.Shape{}) {
			in := wireShape(n.In)
			nw.In = &in
		}
		if n.Kind == graph.OpConv || n.Kind == graph.OpDWConv ||
			n.Kind == graph.OpMaxPool || n.Kind == graph.OpAvgPool {
			nw.Pad = n.Pad.String()
		}
		if n.Block >= 0 {
			b := n.Block
			nw.Block = &b
		}
		w.Nodes = append(w.Nodes, nw)
	}
	for _, b := range g.Blocks {
		w.Blocks = append(w.Blocks, BlockWire{
			Index:  b.Index,
			Label:  b.Label,
			Nodes:  append([]int(nil), b.Nodes...),
			Output: b.Output,
		})
	}
	return w
}

// decodeGraph converts the wire schema to a graph.Graph. Structural
// soundness is graph.Validate's job; this only rejects what Validate
// cannot see from the assembled struct (unknown operator names, bad
// pad modes, node-count mismatches that would otherwise panic during
// assembly).
func decodeGraph(w *GraphWire) (*graph.Graph, *apiError) {
	if w.Name == "" {
		return nil, errf(http.StatusBadRequest, "invalid_graph", "graph: missing name")
	}
	g := &graph.Graph{
		Name:       w.Name,
		InputShape: w.Input.shape(),
		NumClasses: w.NumClasses,
		Nodes:      make([]*graph.Node, 0, len(w.Nodes)),
	}
	for i := range w.Nodes {
		nw := &w.Nodes[i]
		kind, ok := graph.ParseOpKind(nw.Kind)
		if !ok {
			return nil, errf(http.StatusBadRequest, "invalid_graph", "graph %s: node %d: unknown kind %q", w.Name, nw.ID, nw.Kind)
		}
		var pad graph.PadMode
		switch nw.Pad {
		case "", "valid":
			pad = graph.Valid
		case "same":
			pad = graph.Same
		default:
			return nil, errf(http.StatusBadRequest, "invalid_graph", "graph %s: node %d: unknown pad mode %q", w.Name, nw.ID, nw.Pad)
		}
		block := -1
		if nw.Block != nil {
			block = *nw.Block
		}
		n := &graph.Node{
			ID:          nw.ID,
			Name:        nw.Name,
			Kind:        kind,
			Inputs:      append([]int(nil), nw.Inputs...),
			Out:         nw.Out.shape(),
			KH:          nw.KH,
			KW:          nw.KW,
			Stride:      nw.Stride,
			Pad:         pad,
			MACs:        nw.MACs,
			Params:      nw.Params,
			WeightBytes: nw.WeightBytes,
			IOBytes:     nw.IOBytes,
			Block:       block,
			Head:        nw.Head,
		}
		if nw.In != nil {
			n.In = nw.In.shape()
		}
		g.Nodes = append(g.Nodes, n)
	}
	for _, bw := range w.Blocks {
		g.Blocks = append(g.Blocks, graph.Block{
			Index:  bw.Index,
			Label:  bw.Label,
			Nodes:  append([]int(nil), bw.Nodes...),
			Output: bw.Output,
		})
	}
	if err := graph.Validate(g); err != nil {
		return nil, errf(http.StatusBadRequest, "invalid_graph", "%v", err)
	}
	return g, nil
}

// zooCache shares one graph instance (and one fingerprint) per
// calibrated name across all shorthand requests: zoo graphs are
// immutable once built, and rebuilding ResNet-50's several hundred
// nodes per request would dominate the warm-path decode cost and
// stagger otherwise-coalescable arrivals.
var zooCache sync.Map // name -> zooEntry

type zooEntry struct {
	g     *graph.Graph
	print uint64
}

func zooGraph(name string) (*graph.Graph, error) {
	if e, ok := zooCache.Load(name); ok {
		return e.(zooEntry).g, nil
	}
	g, err := zoo.ByName(name)
	if err != nil {
		return nil, err
	}
	e, _ := zooCache.LoadOrStore(name, zooEntry{g: g, print: graph.Fingerprint(g)})
	return e.(zooEntry).g, nil
}

// fingerprintOf returns the request graph's structural fingerprint,
// served from the zoo cache for shorthand requests.
func fingerprintOf(g *graph.Graph) uint64 {
	if e, ok := zooCache.Load(g.Name); ok && e.(zooEntry).g == g {
		return e.(zooEntry).print
	}
	return graph.Fingerprint(g)
}

// decodedRequest is a parsed, validated plan request plus the identity
// the gateway coalesces on. target is the raw wire value ("", "auto"
// or a device name); admission resolves it to a concrete device and
// completes key.device before the key is ever used.
type decodedRequest struct {
	req      serve.Request
	target   string
	budgetMs float64
	key      coalesceKey
	// allowDegraded is the wire opt-in; degradedReason is set by
	// admission iff the degraded fallback actually happened, and makes
	// the response writer splice the degraded markers into a 200 body.
	// Neither is part of the coalescing identity: a degraded request
	// shares executions (and canonical bytes) with the explicit
	// spelling of its fallback target.
	allowDegraded  bool
	degradedReason string
}

// coalesceKey identifies requests that must receive byte-identical
// responses: planner responses are pure functions of (planner config,
// graph, deadline, estimator), and within one gateway each device's
// planner config is fixed, so (device, name, structure, deadline,
// estimator) is the full identity. Name is part of the key because
// measurement noise and transfer profiles derive from it; device is
// the resolved target, so an "auto" request coalesces with — and
// returns bytes identical to — the same request naming that device
// explicitly.
type coalesceKey struct {
	device    string
	name      string
	print     uint64
	deadline  float64
	estimator string
}

// decodeRequest parses and validates one request body. It never panics
// on arbitrary input (fuzzed), and everything it accepts is safe to
// hand to the planner. Oversized bodies surface as 413 when body is an
// http.MaxBytesReader.
func decodeRequest(body io.Reader) (*decodedRequest, *apiError) {
	var wire PlanRequestWire
	dec := json.NewDecoder(body)
	if err := dec.Decode(&wire); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, errf(http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", maxErr.Limit)
		}
		return nil, errf(http.StatusBadRequest, "invalid_json", "decoding request: %v", err)
	}
	// Trailing garbage after the JSON value is a malformed request, not
	// a second request.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, errf(http.StatusBadRequest, "invalid_json", "trailing data after request body")
	}

	switch wire.Estimator {
	case "":
		// The planner treats empty as profiler; normalize so both
		// spellings coalesce.
		wire.Estimator = "profiler"
	case "profiler", "analytical", "linear":
	default:
		return nil, errf(http.StatusBadRequest, "invalid_estimator", "unknown estimator %q", wire.Estimator)
	}
	if wire.DeadlineMs < 0 {
		return nil, errf(http.StatusBadRequest, "invalid_deadline", "negative deadline %v", wire.DeadlineMs)
	}
	if wire.BudgetMs < 0 {
		return nil, errf(http.StatusBadRequest, "invalid_budget", "negative budget %v", wire.BudgetMs)
	}

	var g *graph.Graph
	switch {
	case wire.Network != "" && wire.Graph != nil:
		return nil, errf(http.StatusBadRequest, "ambiguous_request", "set either network or graph, not both")
	case wire.Network != "":
		zg, err := zooGraph(wire.Network)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "unknown_network", "%v", err)
		}
		g = zg
	case wire.Graph != nil:
		var aerr *apiError
		if g, aerr = decodeGraph(wire.Graph); aerr != nil {
			return nil, aerr
		}
	default:
		return nil, errf(http.StatusBadRequest, "missing_graph", "set network or graph")
	}

	// Normalize the deadline the same way the planner does, so 0 and
	// the explicit default coalesce.
	deadline := wire.DeadlineMs
	if deadline == 0 {
		deadline = 0.9
	}
	// key.device stays empty here: only the gateway knows its device
	// registrations, so admission resolves the target (including
	// "auto") and completes the key before coalescing on it.
	return &decodedRequest{
		req: serve.Request{
			Graph:      g,
			DeadlineMs: deadline,
			Estimator:  wire.Estimator,
		},
		target:        wire.Target,
		budgetMs:      wire.BudgetMs,
		allowDegraded: wire.AllowDegraded,
		key: coalesceKey{
			name:      g.Name,
			print:     fingerprintOf(g),
			deadline:  deadline,
			estimator: wire.Estimator,
		},
	}, nil
}

// DeviceWire is one entry of GET /v1/devices: the registered
// calibration summary plus the target's live planning telemetry.
// Entries are listed in registration order — the order "auto" routing
// tie-breaks on — with the default device first.
type DeviceWire struct {
	Name    string `json:"name"`
	Default bool   `json:"default"`
	// Healthy is the fault-containment state "auto" routing reads: false
	// while repeated panics or watchdog abandons have tripped the device
	// and its background probe has not yet restored it.
	Healthy          bool   `json:"healthy"`
	Precision        string `json:"precision"`
	PeakMACs         float64 `json:"peak_macs"`
	MemBandwidth     float64 `json:"mem_bandwidth_bytes"`
	LaunchOverheadMs float64 `json:"launch_overhead_ms"`
	Fusion           bool    `json:"fusion"`
	// Executions counts planning executions on this target;
	// WarmP99Ms is its estimated warm-path p99 (0 until the warm
	// histogram holds ShedMinSamples executions) — the estimate both
	// budget shedding and "auto" routing read.
	Executions uint64  `json:"executions"`
	WarmP99Ms  float64 `json:"warm_p99_ms"`
}
