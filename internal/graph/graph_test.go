package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("tiny", Shape{H: 8, W: 8, C: 3}, 5)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8, 1, Same)
	b.BeginBlock("blk1")
	y := b.ConvBNReLU(x, 3, 8, 1, Same)
	y = b.Add(y, x)
	b.EndBlock()
	b.BeginBlock("blk2")
	z := b.ConvBNReLU(y, 3, 16, 2, Same)
	b.EndBlock()
	b.BeginHead()
	z = b.GlobalAvgPool(z)
	z = b.Dense(z, 5)
	z = b.Softmax(z)
	g, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	_ = z
	return g
}

func TestBuilderShapes(t *testing.T) {
	g := small(t)
	out := g.OutputNode()
	if out.Out != (Shape{H: 1, W: 1, C: 5}) {
		t.Fatalf("output shape = %v, want 1x1x5", out.Out)
	}
	if got := g.Nodes[1].Out; got != (Shape{H: 8, W: 8, C: 8}) {
		t.Fatalf("conv out = %v, want 8x8x8", got)
	}
}

func TestLayerCounts(t *testing.T) {
	g := small(t)
	// 3 + 3 + 1 + 3 feature layers, 3 head layers, 1 input.
	if got := g.LayerCount(); got != 13 {
		t.Fatalf("LayerCount = %d, want 13", got)
	}
	if got := g.FeatureLayerCount(); got != 10 {
		t.Fatalf("FeatureLayerCount = %d, want 10", got)
	}
	if got := g.HeadLayerCount(); got != 3 {
		t.Fatalf("HeadLayerCount = %d, want 3", got)
	}
	if got := g.BlockCount(); got != 2 {
		t.Fatalf("BlockCount = %d, want 2", got)
	}
}

func TestConvAccounting(t *testing.T) {
	b := NewBuilder("acc", Shape{H: 4, W: 4, C: 2}, 2)
	x := b.Input()
	c := b.Conv(x, 3, 4, 1, Same)
	g := b.g
	n := g.Node(c)
	// out 4x4x4, MACs = 4*4*4 * 3*3*2 = 1152
	if n.MACs != 1152 {
		t.Fatalf("conv MACs = %d, want 1152", n.MACs)
	}
	if n.Params != 3*3*2*4 {
		t.Fatalf("conv Params = %d, want 72", n.Params)
	}
}

func TestDWConvAccounting(t *testing.T) {
	b := NewBuilder("acc", Shape{H: 4, W: 4, C: 6}, 2)
	x := b.Input()
	c := b.DWConv(x, 3, 1, Same)
	n := b.g.Node(c)
	if n.Out != (Shape{H: 4, W: 4, C: 6}) {
		t.Fatalf("dwconv out = %v", n.Out)
	}
	if n.MACs != 4*4*6*9 {
		t.Fatalf("dwconv MACs = %d, want %d", n.MACs, 4*4*6*9)
	}
	if n.Params != 9*6 {
		t.Fatalf("dwconv Params = %d, want 54", n.Params)
	}
}

func TestDenseAccounting(t *testing.T) {
	b := NewBuilder("acc", Shape{H: 1, W: 1, C: 10}, 2)
	x := b.Input()
	d := b.Dense(x, 7)
	n := b.g.Node(d)
	if n.MACs != 70 {
		t.Fatalf("dense MACs = %d, want 70", n.MACs)
	}
	if n.Params != 70+7 {
		t.Fatalf("dense Params = %d, want 77", n.Params)
	}
}

func TestValidSameOutput(t *testing.T) {
	cases := []struct {
		in, k, s int
		pad      PadMode
		want     int
	}{
		{224, 3, 2, Same, 112},
		{224, 7, 2, Same, 112},
		{112, 3, 1, Same, 112},
		{8, 3, 1, Valid, 6},
		{8, 2, 2, Valid, 4},
		{35, 3, 2, Valid, 17},
		{147, 3, 2, Valid, 73},
	}
	for _, c := range cases {
		if got := convOut(c.in, c.k, c.s, c.pad); got != c.want {
			t.Errorf("convOut(%d,k=%d,s=%d,%v) = %d, want %d", c.in, c.k, c.s, c.pad, got, c.want)
		}
	}
}

func TestConcatChannels(t *testing.T) {
	b := NewBuilder("cc", Shape{H: 4, W: 4, C: 3}, 2)
	x := b.Input()
	a := b.Conv(x, 1, 8, 1, Same)
	c := b.Conv(x, 1, 8, 1, Same)
	m := b.Concat(a, c)
	if got := b.g.Node(m).Out; got != (Shape{H: 4, W: 4, C: 16}) {
		t.Fatalf("concat out = %v, want 4x4x16", got)
	}
}

func TestValidateCatchesBadBlockNesting(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginBlock did not panic")
		}
	}()
	b := NewBuilder("bad", Shape{H: 4, W: 4, C: 3}, 2)
	b.Input()
	b.BeginBlock("a")
	b.BeginBlock("b")
}

func TestValidateCatchesHeadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("block in head did not panic")
		}
	}()
	b := NewBuilder("bad", Shape{H: 4, W: 4, C: 3}, 2)
	b.Input()
	b.BeginHead()
	b.BeginBlock("a")
}

func TestValidateCatchesEmptyBlock(t *testing.T) {
	b := NewBuilder("bad", Shape{H: 4, W: 4, C: 3}, 2)
	x := b.Input()
	b.BeginBlock("a")
	defer func() {
		if recover() == nil {
			t.Fatal("empty block EndBlock did not panic")
		}
	}()
	_ = x
	b.EndBlock()
}

func TestValidateCatchesUnterminatedBlock(t *testing.T) {
	b := NewBuilder("bad", Shape{H: 4, W: 4, C: 3}, 2)
	x := b.Input()
	b.BeginBlock("a")
	b.Conv(x, 3, 4, 1, Same)
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("Finish err = %v, want unterminated block", err)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	b := NewBuilder("bad", Shape{H: 4, W: 4, C: 3}, 2)
	x := b.Input()
	a := b.Conv(x, 1, 4, 1, Same)
	c := b.Conv(x, 1, 8, 1, Same)
	defer func() {
		if recover() == nil {
			t.Fatal("Add mismatch did not panic")
		}
	}()
	b.Add(a, c)
}

func TestConsumers(t *testing.T) {
	g := small(t)
	cons := g.Consumers()
	// The first ReLU output (id 3) feeds the block conv (4) and the Add.
	if len(cons[3]) != 2 {
		t.Fatalf("consumers of node 3 = %v, want 2 entries", cons[3])
	}
	if len(cons[len(g.Nodes)-1]) != 0 {
		t.Fatal("output node should have no consumers")
	}
}

// Property: Same padding always yields ceil(in/s), Valid always yields a
// value no larger, and both are positive for legal geometry.
func TestConvOutProperties(t *testing.T) {
	f := func(in, k, s uint8) bool {
		i := int(in%200) + 8
		kk := int(k%7) + 1
		ss := int(s%3) + 1
		if kk > i {
			return true
		}
		same := convOut(i, kk, ss, Same)
		valid := convOut(i, kk, ss, Valid)
		wantSame := (i + ss - 1) / ss
		return same == wantSame && valid >= 1 && valid <= same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: accounting totals are non-negative and additive over nodes.
func TestTotalsProperties(t *testing.T) {
	g := small(t)
	var macs, params int64
	for _, n := range g.Nodes {
		macs += n.MACs
		params += n.Params
	}
	if g.TotalMACs() != macs || g.TotalParams() != params {
		t.Fatalf("totals mismatch: %d/%d vs %d/%d", g.TotalMACs(), g.TotalParams(), macs, params)
	}
}

func TestValidatePassesOnSmall(t *testing.T) {
	if err := Validate(small(t)); err != nil {
		t.Fatal(err)
	}
}

func TestOpKindString(t *testing.T) {
	if OpConv.String() != "Conv" || OpKind(99).String() == "" {
		t.Fatal("OpKind.String broken")
	}
	if Same.String() != "same" || Valid.String() != "valid" {
		t.Fatal("PadMode.String broken")
	}
}
