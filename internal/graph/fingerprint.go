package graph

// Fingerprint returns a structural identity hash of g covering every
// field the caching layers downstream depend on: node identity, name,
// op kind, accounting (MACs, weight/IO bytes), output channels, wiring
// and block/head membership, the block table (which layer removal cuts
// along), and the graph name. Two graphs with equal fingerprints
// execute identically, profile identically (per-layer row names
// included) and cut identically, which is what lets the device,
// profiler and trim layers memoize per structure instead of per
// object. Graphs are immutable once built (see the Graph doc);
// mutating a graph after it has been fingerprinted would poison those
// caches.
func Fingerprint(g *Graph) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
		mix(uint64(len(s)))
	}
	str(g.Name)
	mix(uint64(len(g.Nodes)))
	for _, n := range g.Nodes {
		mix(uint64(n.ID))
		str(n.Name)
		mix(uint64(n.Kind))
		mix(uint64(n.MACs))
		mix(uint64(n.WeightBytes))
		mix(uint64(n.IOBytes))
		mix(uint64(n.Out.C))
		mix(uint64(n.Block))
		if n.Head {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(len(n.Inputs)))
		for _, in := range n.Inputs {
			mix(uint64(in))
		}
	}
	mix(uint64(len(g.Blocks)))
	for _, b := range g.Blocks {
		mix(uint64(b.Index))
		mix(uint64(b.Output))
		mix(uint64(len(b.Nodes)))
		for _, id := range b.Nodes {
			mix(uint64(id))
		}
	}
	return h
}
