package graph

// Hash64 is the FNV-1a accumulator every structure- and calibration-
// keyed cache in this repository builds its keys with: graph
// fingerprints here, device-calibration fingerprints and plan keys in
// internal/device. Sharing one implementation keeps the "fold X into
// the key" pattern a one-liner and stops the constants from drifting
// across hand-rolled copies. The zero value is NOT a valid start
// state; begin with NewHash.
type Hash64 uint64

// NewHash returns the FNV-1a offset basis.
func NewHash() Hash64 { return 14695981039346656037 }

const fnvPrime = 1099511628211

// Mix folds one 64-bit value into the hash.
func (h Hash64) Mix(v uint64) Hash64 { return (h ^ Hash64(v)) * fnvPrime }

// MixString folds a length-delimited string into the hash.
func (h Hash64) MixString(s string) Hash64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ Hash64(s[i])) * fnvPrime
	}
	return h.Mix(uint64(len(s)))
}

// Sum returns the accumulated hash.
func (h Hash64) Sum() uint64 { return uint64(h) }

// Fingerprint returns a structural identity hash of g covering every
// field the caching layers downstream depend on: node identity, name,
// op kind, accounting (MACs, weight/IO bytes), output channels, wiring
// and block/head membership, the block table (which layer removal cuts
// along), and the graph name. Two graphs with equal fingerprints
// execute identically, profile identically (per-layer row names
// included) and cut identically, which is what lets the device,
// profiler and trim layers memoize per structure instead of per
// object. Graphs are immutable once built (see the Graph doc);
// mutating a graph after it has been fingerprinted would poison those
// caches.
func Fingerprint(g *Graph) uint64 {
	h := NewHash()
	mix := func(v uint64) { h = h.Mix(v) }
	str := func(s string) { h = h.MixString(s) }
	str(g.Name)
	mix(uint64(len(g.Nodes)))
	for _, n := range g.Nodes {
		mix(uint64(n.ID))
		str(n.Name)
		mix(uint64(n.Kind))
		mix(uint64(n.MACs))
		mix(uint64(n.WeightBytes))
		mix(uint64(n.IOBytes))
		mix(uint64(n.Out.C))
		mix(uint64(n.Block))
		if n.Head {
			mix(1)
		} else {
			mix(0)
		}
		mix(uint64(len(n.Inputs)))
		for _, in := range n.Inputs {
			mix(uint64(in))
		}
	}
	mix(uint64(len(g.Blocks)))
	for _, b := range g.Blocks {
		mix(uint64(b.Index))
		mix(uint64(b.Output))
		mix(uint64(len(b.Nodes)))
		for _, id := range b.Nodes {
			mix(uint64(id))
		}
	}
	return h.Sum()
}
