package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visual
// inspection of architectures and TRNs. Removable blocks become
// clusters; head layers are shaded.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	fmt.Fprintf(&b, "  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	inBlock := make([]int, len(g.Nodes))
	for i := range inBlock {
		inBlock[i] = -1
	}
	for _, blk := range g.Blocks {
		for _, id := range blk.Nodes {
			inBlock[id] = blk.Index
		}
	}

	emit := func(n *Node) string {
		// The \n is a DOT line break, so it must survive literally.
		attrs := fmt.Sprintf(`label="%s\n%s"`, n.Name, n.Out)
		if n.Head {
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		return fmt.Sprintf("  n%d [%s];\n", n.ID, attrs)
	}

	// Nodes outside blocks first.
	for _, n := range g.Nodes {
		if inBlock[n.ID] == -1 {
			b.WriteString(emit(n))
		}
	}
	// Blocks as clusters.
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", blk.Index, blk.Label)
		for _, id := range blk.Nodes {
			b.WriteString("  " + emit(g.Nodes[id]))
		}
		fmt.Fprintf(&b, "  }\n")
	}
	// Edges.
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in, n.ID)
		}
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
