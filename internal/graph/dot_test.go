package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := small(t)
	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph \"tiny\"",
		"subgraph cluster_0",
		"subgraph cluster_1",
		"fillcolor=lightgrey", // head shading
		"->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every node appears exactly once.
	for _, n := range g.Nodes {
		if c := strings.Count(out, "n"+itoa(n.ID)+" ["); c != 1 {
			t.Errorf("node %d declared %d times", n.ID, c)
		}
	}
	// Edge count matches input fan-in.
	edges := 0
	for _, n := range g.Nodes {
		edges += len(n.Inputs)
	}
	if c := strings.Count(out, "->"); c != edges {
		t.Errorf("%d edges rendered, want %d", c, edges)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
