package graph

import "fmt"

// Builder constructs a Graph incrementally with automatic shape inference
// and MAC/parameter accounting. Methods take and return node IDs so that
// architecture definitions read as dataflow:
//
//	b := graph.NewBuilder("net", graph.Shape{H: 224, W: 224, C: 3}, 1000)
//	x := b.Input()
//	x = b.ConvBNReLU(x, 3, 32, 2, graph.Same)
//	...
//	g, err := b.Finish()
//
// Builder methods panic on malformed graphs (mismatched merge shapes,
// unknown input IDs); architecture definitions are static code, so an
// error return on every call would only obscure them. Finish validates
// the result and returns any deferred construction error.
type Builder struct {
	g        *Graph
	curBlock int  // index of open block, or -1
	inHead   bool // subsequent nodes are classification-head layers
	err      error
}

// NewBuilder returns a Builder for a network with the given input shape
// and class count.
func NewBuilder(name string, input Shape, numClasses int) *Builder {
	return &Builder{
		g: &Graph{
			Name:       name,
			InputShape: input,
			NumClasses: numClasses,
		},
		curBlock: -1,
	}
}

// Input adds the input node and returns its ID. It must be called first.
func (b *Builder) Input() int {
	if len(b.g.Nodes) != 0 {
		panic("graph: Input must be the first node")
	}
	return b.add(&Node{Kind: OpInput, Out: b.g.InputShape})
}

func (b *Builder) add(n *Node) int {
	n.ID = len(b.g.Nodes)
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s_%d", n.Kind, n.ID)
	}
	n.Block = b.curBlock
	n.Head = b.inHead
	if b.curBlock >= 0 {
		blk := &b.g.Blocks[b.curBlock]
		blk.Nodes = append(blk.Nodes, n.ID)
		blk.Output = n.ID
	}
	n.IOBytes = inBytes(b.g, n) + n.Out.Elems()
	b.g.Nodes = append(b.g.Nodes, n)
	return n.ID
}

func inBytes(g *Graph, n *Node) int64 {
	var t int64
	for _, id := range n.Inputs {
		t += g.Nodes[id].Out.Elems()
	}
	return t
}

func (b *Builder) shape(id int) Shape {
	if id < 0 || id >= len(b.g.Nodes) {
		panic(fmt.Sprintf("graph: unknown node id %d", id))
	}
	return b.g.Nodes[id].Out
}

// Shape returns the output shape of the node with the given ID, for
// architecture definitions that branch on intermediate shapes.
func (b *Builder) Shape(id int) Shape { return b.shape(id) }

func convOut(in, k, stride int, pad PadMode) int {
	switch pad {
	case Same:
		return (in + stride - 1) / stride
	default:
		return (in-k)/stride + 1
	}
}

// Conv adds a 2-D convolution with outC filters of size k x k.
func (b *Builder) Conv(x, k, outC, stride int, pad PadMode) int {
	return b.ConvRect(x, k, k, outC, stride, pad)
}

// ConvRect adds a 2-D convolution with a rectangular kH x kW kernel,
// as used by InceptionV3's factorized 1x7 / 7x1 convolutions.
func (b *Builder) ConvRect(x, kH, kW, outC, stride int, pad PadMode) int {
	in := b.shape(x)
	out := Shape{
		H: convOut(in.H, kH, stride, pad),
		W: convOut(in.W, kW, stride, pad),
		C: outC,
	}
	if out.H <= 0 || out.W <= 0 {
		panic(fmt.Sprintf("graph: conv output shape %v collapsed (in %v k %dx%d s %d)", out, in, kH, kW, stride))
	}
	params := int64(kH) * int64(kW) * int64(in.C) * int64(outC)
	return b.add(&Node{
		Kind: OpConv, Inputs: []int{x}, In: in, Out: out,
		KH: kH, KW: kW, Stride: stride, Pad: pad,
		MACs:        out.Elems() * int64(kH) * int64(kW) * int64(in.C),
		Params:      params,
		WeightBytes: params,
	})
}

// DWConv adds a depthwise convolution (one k x k filter per channel).
func (b *Builder) DWConv(x, k, stride int, pad PadMode) int {
	in := b.shape(x)
	out := Shape{
		H: convOut(in.H, k, stride, pad),
		W: convOut(in.W, k, stride, pad),
		C: in.C,
	}
	params := int64(k) * int64(k) * int64(in.C)
	return b.add(&Node{
		Kind: OpDWConv, Inputs: []int{x}, In: in, Out: out,
		KH: k, KW: k, Stride: stride, Pad: pad,
		MACs:        out.Elems() * int64(k) * int64(k),
		Params:      params,
		WeightBytes: params,
	})
}

// BN adds a batch-normalization layer. Parameter count follows the
// framework convention of 4 per channel (gamma, beta, moving mean/var).
func (b *Builder) BN(x int) int {
	in := b.shape(x)
	return b.add(&Node{
		Kind: OpBatchNorm, Inputs: []int{x}, In: in, Out: in,
		MACs:        in.Elems(),
		Params:      4 * int64(in.C),
		WeightBytes: 4 * int64(in.C),
	})
}

// ReLU adds a rectified-linear activation.
func (b *Builder) ReLU(x int) int {
	in := b.shape(x)
	return b.add(&Node{Kind: OpReLU, Inputs: []int{x}, In: in, Out: in, MACs: in.Elems()})
}

// ReLU6 adds the clipped activation used by the MobileNet family.
func (b *Builder) ReLU6(x int) int {
	in := b.shape(x)
	return b.add(&Node{Kind: OpReLU6, Inputs: []int{x}, In: in, Out: in, MACs: in.Elems()})
}

// MaxPool adds a k x k max pooling layer.
func (b *Builder) MaxPool(x, k, stride int, pad PadMode) int {
	return b.pool(OpMaxPool, x, k, stride, pad)
}

// AvgPool adds a k x k average pooling layer.
func (b *Builder) AvgPool(x, k, stride int, pad PadMode) int {
	return b.pool(OpAvgPool, x, k, stride, pad)
}

func (b *Builder) pool(kind OpKind, x, k, stride int, pad PadMode) int {
	in := b.shape(x)
	out := Shape{
		H: convOut(in.H, k, stride, pad),
		W: convOut(in.W, k, stride, pad),
		C: in.C,
	}
	return b.add(&Node{
		Kind: kind, Inputs: []int{x}, In: in, Out: out,
		KH: k, KW: k, Stride: stride, Pad: pad,
		MACs: out.Elems() * int64(k) * int64(k),
	})
}

// GlobalAvgPool reduces the spatial dimensions to 1 x 1.
func (b *Builder) GlobalAvgPool(x int) int {
	in := b.shape(x)
	out := Shape{H: 1, W: 1, C: in.C}
	return b.add(&Node{
		Kind: OpGlobalAvgPool, Inputs: []int{x}, In: in, Out: out,
		MACs: in.Elems(),
	})
}

// Dense adds a fully connected layer with the given number of units.
// Its input must be spatially flat (H = W = 1).
func (b *Builder) Dense(x, units int) int {
	in := b.shape(x)
	if in.H != 1 || in.W != 1 {
		panic(fmt.Sprintf("graph: Dense requires 1x1 spatial input, got %v", in))
	}
	params := int64(in.C)*int64(units) + int64(units)
	return b.add(&Node{
		Kind: OpDense, Inputs: []int{x}, In: in, Out: Shape{H: 1, W: 1, C: units},
		MACs:        int64(in.C) * int64(units),
		Params:      params,
		WeightBytes: params,
	})
}

// Softmax adds a softmax over the channel dimension.
func (b *Builder) Softmax(x int) int {
	in := b.shape(x)
	return b.add(&Node{Kind: OpSoftmax, Inputs: []int{x}, In: in, Out: in, MACs: 3 * in.Elems()})
}

// Dropout adds an (inference-time no-op) dropout marker layer.
func (b *Builder) Dropout(x int) int {
	in := b.shape(x)
	return b.add(&Node{Kind: OpDropout, Inputs: []int{x}, In: in, Out: in})
}

// Add merges two branches elementwise; shapes must match.
func (b *Builder) Add(x, y int) int {
	sx, sy := b.shape(x), b.shape(y)
	if sx != sy {
		panic(fmt.Sprintf("graph: Add shape mismatch %v vs %v", sx, sy))
	}
	return b.add(&Node{Kind: OpAdd, Inputs: []int{x, y}, In: sx, Out: sx, MACs: sx.Elems()})
}

// Concat merges branches along the channel dimension; spatial shapes must
// match.
func (b *Builder) Concat(xs ...int) int {
	if len(xs) < 2 {
		panic("graph: Concat needs at least two inputs")
	}
	first := b.shape(xs[0])
	out := Shape{H: first.H, W: first.W}
	for _, x := range xs {
		s := b.shape(x)
		if s.H != first.H || s.W != first.W {
			panic(fmt.Sprintf("graph: Concat spatial mismatch %v vs %v", s, first))
		}
		out.C += s.C
	}
	return b.add(&Node{Kind: OpConcat, Inputs: append([]int(nil), xs...), In: first, Out: out})
}

// ConvBN adds Conv followed by BN.
func (b *Builder) ConvBN(x, k, outC, stride int, pad PadMode) int {
	return b.BN(b.Conv(x, k, outC, stride, pad))
}

// ConvBNReLU adds the ubiquitous Conv+BN+ReLU triplet.
func (b *Builder) ConvBNReLU(x, k, outC, stride int, pad PadMode) int {
	return b.ReLU(b.ConvBN(x, k, outC, stride, pad))
}

// ConvBNReLU6 adds Conv+BN+ReLU6 (MobileNet stem convention).
func (b *Builder) ConvBNReLU6(x, k, outC, stride int, pad PadMode) int {
	return b.ReLU6(b.ConvBN(x, k, outC, stride, pad))
}

// BeginBlock opens a new removable block; subsequent nodes belong to it
// until EndBlock. Blocks cannot nest and head layers cannot be in blocks.
func (b *Builder) BeginBlock(label string) {
	if b.curBlock >= 0 {
		panic("graph: BeginBlock inside an open block")
	}
	if b.inHead {
		panic("graph: blocks cannot appear in the classification head")
	}
	b.g.Blocks = append(b.g.Blocks, Block{Index: len(b.g.Blocks), Label: label, Output: -1})
	b.curBlock = len(b.g.Blocks) - 1
}

// EndBlock closes the open block.
func (b *Builder) EndBlock() {
	if b.curBlock < 0 {
		panic("graph: EndBlock without BeginBlock")
	}
	if b.g.Blocks[b.curBlock].Output < 0 {
		panic("graph: empty block " + b.g.Blocks[b.curBlock].Label)
	}
	b.curBlock = -1
}

// BeginHead marks all subsequent nodes as classification-head layers.
func (b *Builder) BeginHead() {
	if b.curBlock >= 0 {
		panic("graph: BeginHead inside an open block")
	}
	b.inHead = true
}

// Finish validates and returns the constructed graph.
func (b *Builder) Finish() (*Graph, error) {
	if b.curBlock >= 0 {
		return nil, fmt.Errorf("graph %s: unterminated block %s", b.g.Name, b.g.Blocks[b.curBlock].Label)
	}
	if err := Validate(b.g); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustFinish is Finish for static architecture definitions that are
// covered by tests; it panics on error.
func (b *Builder) MustFinish() *Graph {
	g, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return g
}
