package graph

import (
	"strings"
	"testing"
)

// branchy builds a graph with a two-branch concat so ancestor extraction
// has real work to do.
func branchy(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("branchy", Shape{H: 8, W: 8, C: 3}, 4)
	x := b.Input()
	x = b.ConvBNReLU6(x, 3, 8, 1, Same)
	b.BeginBlock("mix")
	l := b.Conv(x, 1, 4, 1, Same)
	r := b.Conv(x, 3, 4, 1, Same)
	r = b.Dropout(r)
	m := b.Concat(l, r)
	b.EndBlock()
	b.BeginBlock("down")
	d := b.MaxPool(m, 2, 2, Valid)
	d = b.AvgPool(d, 2, 1, Same)
	b.EndBlock()
	b.BeginHead()
	h := b.GlobalAvgPool(d)
	h = b.Dense(h, 4)
	b.Softmax(h)
	return b.MustFinish()
}

func TestLastFeatureNode(t *testing.T) {
	g := branchy(t)
	last := g.LastFeatureNode()
	if g.Nodes[last].Head {
		t.Fatal("LastFeatureNode returned a head node")
	}
	if g.Nodes[last].Kind != OpAvgPool {
		t.Fatalf("last feature node kind = %v, want AvgPool", g.Nodes[last].Kind)
	}
	for i := last + 1; i < len(g.Nodes); i++ {
		if !g.Nodes[i].Head {
			t.Fatalf("node %d after last feature node is not head", i)
		}
	}
}

func TestAncestors(t *testing.T) {
	g := branchy(t)
	// Ancestors of the concat include both branches and the stem.
	var concat int
	for _, n := range g.Nodes {
		if n.Kind == OpConcat {
			concat = n.ID
		}
	}
	anc := g.Ancestors(concat)
	if anc[0] != 0 {
		t.Fatal("ancestors must include the input")
	}
	seen := map[int]bool{}
	for _, id := range anc {
		seen[id] = true
	}
	for _, n := range g.Nodes {
		if n.ID <= concat && (n.Kind == OpConv || n.Kind == OpDropout) && !seen[n.ID] {
			t.Fatalf("branch node %d missing from ancestors", n.ID)
		}
	}
	// Ancestors of a left-branch conv exclude the right branch.
	var left, dropout int
	for _, n := range g.Nodes {
		if n.Kind == OpConv && n.KH == 1 && n.Block == 1 {
			left = n.ID
		}
		if n.Kind == OpDropout {
			dropout = n.ID
		}
	}
	anc = g.Ancestors(left)
	for _, id := range anc {
		if id == dropout {
			t.Fatal("right-branch dropout leaked into left-branch ancestors")
		}
	}
}

func TestAncestorsPanicsOutOfRange(t *testing.T) {
	g := branchy(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range node")
		}
	}()
	g.Ancestors(len(g.Nodes))
}

func TestSubgraphBuilderPreservesBlocks(t *testing.T) {
	g := branchy(t)
	keep := g.Ancestors(g.Blocks[0].Output) // stem + "mix" block
	b, last := SubgraphBuilder("sub", g, keep, 4)
	b.BeginHead()
	h := b.GlobalAvgPool(last)
	h = b.Dense(h, 4)
	b.Softmax(h)
	sub, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if sub.BlockCount() != 1 || sub.Blocks[0].Label != "mix" {
		t.Fatalf("subgraph blocks = %+v, want only mix", sub.Blocks)
	}
	if sub.Name != "sub" {
		t.Fatalf("name = %q", sub.Name)
	}
	// Accounting carries over unchanged for kept nodes.
	if sub.Nodes[1].MACs != g.Nodes[1].MACs {
		t.Fatal("MACs not preserved by subgraph copy")
	}
}

func TestSubgraphBuilderRejectsBadSets(t *testing.T) {
	g := branchy(t)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("empty set", func() { SubgraphBuilder("x", g, nil, 4) })
	mustPanic("missing input", func() { SubgraphBuilder("x", g, []int{1, 2}, 4) })
	mustPanic("not closed", func() { SubgraphBuilder("x", g, []int{0, 5}, 4) })
	mustPanic("not ascending", func() { SubgraphBuilder("x", g, []int{0, 2, 1}, 4) })
}

func TestBuilderShapeAccessor(t *testing.T) {
	b := NewBuilder("s", Shape{H: 8, W: 8, C: 3}, 2)
	x := b.Input()
	if got := b.Shape(x); got != (Shape{H: 8, W: 8, C: 3}) {
		t.Fatalf("Shape = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Shape of unknown node did not panic")
		}
	}()
	b.Shape(99)
}

func TestGraphStringAndFilterSize(t *testing.T) {
	g := branchy(t)
	s := g.String()
	if !strings.Contains(s, "branchy") || !strings.Contains(s, "blocks=2") {
		t.Fatalf("String = %q", s)
	}
	// Filter sizes: 3x3 + 1x1 + 3x3 convs = 9+1+9 = 19.
	if got := g.TotalFilterSize(); got != 19 {
		t.Fatalf("TotalFilterSize = %d, want 19", got)
	}
}

func TestMustFinishPanicsOnInvalid(t *testing.T) {
	b := NewBuilder("bad", Shape{H: 4, W: 4, C: 3}, 2)
	x := b.Input()
	b.BeginBlock("open")
	b.Conv(x, 3, 4, 1, Same)
	defer func() {
		if recover() == nil {
			t.Fatal("MustFinish on unterminated block did not panic")
		}
	}()
	b.MustFinish()
}

func TestInputMustBeFirst(t *testing.T) {
	b := NewBuilder("bad", Shape{H: 4, W: 4, C: 3}, 2)
	b.Input()
	defer func() {
		if recover() == nil {
			t.Fatal("second Input did not panic")
		}
	}()
	b.Input()
}

func TestValidateErrorPaths(t *testing.T) {
	mk := func(mutate func(g *Graph)) error {
		g := branchy(t)
		mutate(g)
		return Validate(g)
	}
	cases := []struct {
		name   string
		mutate func(g *Graph)
		want   string
	}{
		{"empty", func(g *Graph) { g.Nodes = nil }, "empty"},
		{"bad id", func(g *Graph) { g.Nodes[3].ID = 99 }, "has ID"},
		{"forward ref", func(g *Graph) { g.Nodes[3].Inputs = []int{10} }, "topologically"},
		{"negative macs", func(g *Graph) { g.Nodes[3].MACs = -1 }, "negative accounting"},
		{"degenerate shape", func(g *Graph) { g.Nodes[3].Out = Shape{} }, "degenerate"},
		{"head gap", func(g *Graph) { g.Nodes[len(g.Nodes)-2].Head = false }, "follows head"},
		{"block idx", func(g *Graph) { g.Blocks[1].Index = 5 }, "has index"},
		{"empty block", func(g *Graph) { g.Blocks[0].Nodes = nil }, "empty"},
		{"block output", func(g *Graph) { g.Blocks[0].Output = 0 }, "not its last node"},
	}
	for _, c := range cases {
		err := mk(c.mutate)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}
