package graph

import "fmt"

// Validate checks structural invariants of a graph:
//
//   - nodes are topologically ordered and IDs are dense
//   - exactly one Input node, at position 0
//   - every non-input node has at least one input
//   - merge nodes have consistent shapes
//   - blocks are contiguous, non-empty, ordered, and non-head
//   - head layers form a suffix of the node list
//   - accounting fields are non-negative
//
// Validate is the service boundary for untrusted graphs: it must
// return an error — never panic — on arbitrary input, and every graph
// it accepts must survive the downstream pipeline (fingerprinting,
// kernel planning, measurement, blockwise cutting) without panicking.
// Both properties are pinned by the fuzz targets in fuzz_test.go.
func Validate(g *Graph) error {
	if g == nil {
		return fmt.Errorf("graph: nil")
	}
	if len(g.Nodes) == 0 {
		return fmt.Errorf("graph %s: empty", g.Name)
	}
	for i, n := range g.Nodes {
		if n == nil {
			return fmt.Errorf("graph %s: node %d is nil", g.Name, i)
		}
	}
	if g.Nodes[0].Kind != OpInput {
		return fmt.Errorf("graph %s: first node must be Input, got %s", g.Name, g.Nodes[0].Kind)
	}
	seenHead := false
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("graph %s: node %d has ID %d", g.Name, i, n.ID)
		}
		if n.Kind == OpInput {
			if i != 0 {
				return fmt.Errorf("graph %s: extra Input node at %d", g.Name, i)
			}
			if n.Block >= 0 {
				return fmt.Errorf("graph %s: input node inside block %d", g.Name, n.Block)
			}
		} else if len(n.Inputs) == 0 {
			return fmt.Errorf("graph %s: node %d (%s) has no inputs", g.Name, i, n.Name)
		}
		for _, in := range n.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("graph %s: node %d (%s) input %d not topologically earlier", g.Name, i, n.Name, in)
			}
		}
		if n.MACs < 0 || n.Params < 0 || n.WeightBytes < 0 || n.IOBytes < 0 {
			return fmt.Errorf("graph %s: node %d (%s) negative accounting", g.Name, i, n.Name)
		}
		if n.Out.H <= 0 || n.Out.W <= 0 || n.Out.C <= 0 {
			return fmt.Errorf("graph %s: node %d (%s) degenerate output shape %v", g.Name, i, n.Name, n.Out)
		}
		if seenHead && !n.Head {
			return fmt.Errorf("graph %s: node %d (%s) follows head layers but is not head", g.Name, i, n.Name)
		}
		if n.Head {
			seenHead = true
			if n.Block >= 0 {
				return fmt.Errorf("graph %s: head node %d (%s) inside block %d", g.Name, i, n.Name, n.Block)
			}
		}
		if n.Block < -1 || n.Block >= len(g.Blocks) {
			return fmt.Errorf("graph %s: node %d (%s) claims nonexistent block %d", g.Name, i, n.Name, n.Block)
		}
	}
	claimed := make([]int, len(g.Blocks))
	for _, n := range g.Nodes {
		if n.Block >= 0 {
			claimed[n.Block]++
		}
	}
	for bi, blk := range g.Blocks {
		if blk.Index != bi {
			return fmt.Errorf("graph %s: block %d has index %d", g.Name, bi, blk.Index)
		}
		if len(blk.Nodes) == 0 {
			return fmt.Errorf("graph %s: block %d (%s) empty", g.Name, bi, blk.Label)
		}
		if blk.Output != blk.Nodes[len(blk.Nodes)-1] {
			return fmt.Errorf("graph %s: block %d (%s) output %d is not its last node", g.Name, bi, blk.Label, blk.Output)
		}
		for _, id := range blk.Nodes {
			if id < 0 || id >= len(g.Nodes) {
				return fmt.Errorf("graph %s: block %d (%s) references unknown node %d", g.Name, bi, blk.Label, id)
			}
			if g.Nodes[id].Block != bi {
				return fmt.Errorf("graph %s: node %d claims block %d but listed in block %d", g.Name, id, g.Nodes[id].Block, bi)
			}
		}
		if claimed[bi] != len(blk.Nodes) {
			return fmt.Errorf("graph %s: block %d (%s) lists %d nodes but %d claim it", g.Name, bi, blk.Label, len(blk.Nodes), claimed[bi])
		}
		if bi > 0 {
			prev := g.Blocks[bi-1]
			if blk.Nodes[0] <= prev.Nodes[len(prev.Nodes)-1] {
				return fmt.Errorf("graph %s: block %d (%s) overlaps block %d", g.Name, bi, blk.Label, bi-1)
			}
		}
	}
	return nil
}
