package graph_test

import (
	"testing"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/trim"
)

// decodeGraph deterministically builds a graph — possibly malformed —
// from fuzz bytes. The decoder deliberately emits both well-formed
// chains and corrupted structures (zero-dimension shapes, forward/self
// references that would be cycles, dense-ID violations, head layers in
// blocks, phantom block claims), so FuzzValidate exercises Validate's
// accept and reject paths alike. Sizes are clamped so one input stays
// cheap to plan and measure.
func decodeGraph(data []byte) *graph.Graph {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	dim := func() int { return int(next()) % 33 } // 0..32: zero dims reach Validate
	n := int(next())%24 + 1

	g := &graph.Graph{Name: "fuzz", NumClasses: int(next())%8 + 1}
	g.InputShape = graph.Shape{H: dim(), W: dim(), C: dim()}
	kinds := []graph.OpKind{
		graph.OpInput, graph.OpConv, graph.OpDWConv, graph.OpBatchNorm,
		graph.OpReLU, graph.OpMaxPool, graph.OpAvgPool, graph.OpGlobalAvgPool,
		graph.OpDense, graph.OpSoftmax, graph.OpAdd, graph.OpConcat, graph.OpDropout,
	}
	for i := 0; i < n; i++ {
		nd := &graph.Node{
			ID:   i,
			Name: "n",
			Kind: kinds[int(next())%len(kinds)],
			Out:  graph.Shape{H: dim(), W: dim(), C: dim()},
		}
		if i == 0 && next()%8 != 0 {
			nd.Kind = graph.OpInput
			nd.Out = g.InputShape
		}
		if nd.Kind != graph.OpInput {
			nIn := int(next())%2 + 1
			for j := 0; j < nIn; j++ {
				// Mostly topologically valid inputs; occasionally a
				// forward or self reference (a cycle in disguise).
				in := int(next()) % (i + 1)
				if next()%16 == 0 {
					in = i + int(next())%3 // invalid: not earlier
				}
				nd.Inputs = append(nd.Inputs, in)
			}
		}
		nd.MACs = int64(next())
		nd.WeightBytes = int64(next())
		nd.IOBytes = int64(next())
		nd.Block = -1
		if next()%4 == 0 {
			nd.Block = int(next())%4 - 1 // may claim a phantom block
		}
		nd.Head = next()%8 == 0
		g.Nodes = append(g.Nodes, nd)
	}
	// Sometimes scramble an ID to violate density.
	if next()%16 == 0 && len(g.Nodes) > 1 {
		g.Nodes[int(next())%len(g.Nodes)].ID = int(next())
	}
	// Assemble blocks from the nodes that claimed them.
	nb := 0
	for _, nd := range g.Nodes {
		if nd.Block >= nb {
			nb = nd.Block + 1
		}
	}
	for bi := 0; bi < nb; bi++ {
		blk := graph.Block{Index: bi, Label: "b", Output: -1}
		for _, nd := range g.Nodes {
			if nd.Block == bi {
				blk.Nodes = append(blk.Nodes, nd.ID)
				blk.Output = nd.ID
			}
		}
		if next()%16 == 0 && len(blk.Nodes) > 0 {
			blk.Output = int(next()) // sometimes corrupt the output
		}
		g.Blocks = append(g.Blocks, blk)
	}
	return g
}

// FuzzValidate is the service-boundary fuzz target: Validate must never
// panic on arbitrary graphs, and any graph it accepts must survive the
// full planning pipeline — fingerprinting, kernel planning, latency
// measurement and every blockwise cut — without panicking, because
// that is exactly what internal/serve runs on validated user requests.
func FuzzValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 8, 8, 3, 1, 0, 4, 4, 8, 1, 0, 2, 2, 2, 2, 16})
	f.Add([]byte{200, 5, 16, 16, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	for seed := 0; seed < 8; seed++ {
		buf := make([]byte, 64)
		for i := range buf {
			buf[i] = byte(seed*31 + i*7)
		}
		f.Add(buf)
	}
	dev := device.New(device.Xavier())
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeGraph(data)
		if err := graph.Validate(g); err != nil {
			return // rejected: exactly what the service does
		}
		// Accepted: the downstream pipeline must be panic-free.
		graph.Fingerprint(g)
		g.FeatureLayerCount()
		dev.LatencyMs(g)
		for c := 0; c <= g.BlockCount(); c++ {
			if trn, err := trim.Cut(g, c, trim.DefaultHead); err == nil {
				dev.LatencyMs(trn.Graph)
			}
		}
	})
}

// FuzzBuilderFinish drives the Builder with an arbitrary op program and
// checks Finish reports malformed construction as an error, never a
// panic, for any in-range arguments. (Out-of-range arguments panic by
// documented design; architecture definitions are static code.)
func FuzzBuilderFinish(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 1, 1, 1, 10, 10, 10, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		b := graph.NewBuilder("fuzz", graph.Shape{H: int(next())%16 + 1, W: int(next())%16 + 1, C: int(next())%8 + 1}, int(next())%8 + 1)
		x := b.Input()
		inBlock := false
		ops := int(next())%12 + 1
		for i := 0; i < ops; i++ {
			switch next() % 8 {
			case 0:
				x = b.ConvBNReLU(x, int(next())%3+1, int(next())%8+1, 1, graph.Same)
			case 1:
				x = b.ReLU(x)
			case 2:
				x = b.BN(x)
			case 3:
				x = b.DWConv(x, 1, 1, graph.Same)
			case 4:
				if !inBlock {
					b.BeginBlock("blk")
					inBlock = true
					x = b.ReLU(x) // blocks must be non-empty
				}
			case 5:
				if inBlock {
					b.EndBlock()
					inBlock = false
				}
			case 6:
				x = b.Dropout(x)
			case 7:
				y := b.ReLU(x)
				x = b.Add(x, y)
			}
		}
		if inBlock && next()%2 == 0 {
			b.EndBlock()
			inBlock = false
		}
		// A still-open block reaches Finish below (its error path);
		// BeginHead inside a block is a documented panic, so skip it.
		if !inBlock && next()%2 == 0 {
			b.BeginHead()
			x = b.GlobalAvgPool(x)
			x = b.Dense(x, int(next())%8+1)
			b.Softmax(x)
		}
		g, err := b.Finish() // error (e.g. unterminated block) is fine; panic is not
		if err == nil {
			if verr := graph.Validate(g); verr != nil {
				t.Fatalf("Finish accepted a graph Validate rejects: %v", verr)
			}
		}
	})
}
