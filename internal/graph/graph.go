// Package graph defines the layer-graph intermediate representation used
// throughout NetCut. A Graph is a topologically ordered list of layer
// Nodes annotated with tensor shapes, multiply-accumulate counts, parameter
// counts and memory-traffic estimates, plus the block structure that layer
// removal (package trim) operates on.
//
// The IR deliberately mirrors the layer granularity of common framework
// model summaries (convolutions, batch norms, activations, pools, merges
// all count as layers) so that cutpoint labels such as "ResNet-50/94"
// — 94 layers removed — are directly comparable to the paper's.
package graph

import "fmt"

// OpKind identifies the operator a Node performs.
type OpKind int

// The operator vocabulary. It covers everything needed by the seven
// architectures the paper evaluates (Sec. III-B1).
const (
	OpInput OpKind = iota
	OpConv
	OpDWConv
	OpBatchNorm
	OpReLU
	OpReLU6
	OpMaxPool
	OpAvgPool
	OpGlobalAvgPool
	OpDense
	OpSoftmax
	OpAdd
	OpConcat
	OpDropout
	OpZeroPad
)

var opNames = map[OpKind]string{
	OpInput:         "Input",
	OpConv:          "Conv",
	OpDWConv:        "DWConv",
	OpBatchNorm:     "BatchNorm",
	OpReLU:          "ReLU",
	OpReLU6:         "ReLU6",
	OpMaxPool:       "MaxPool",
	OpAvgPool:       "AvgPool",
	OpGlobalAvgPool: "GlobalAvgPool",
	OpDense:         "Dense",
	OpSoftmax:       "Softmax",
	OpAdd:           "Add",
	OpConcat:        "Concat",
	OpDropout:       "Dropout",
	OpZeroPad:       "ZeroPad",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// opKindsByName is the inverse of opNames, for wire decoding.
var opKindsByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(opNames))
	for k, s := range opNames {
		m[s] = k
	}
	return m
}()

// ParseOpKind resolves an operator name as produced by OpKind.String
// ("Conv", "BatchNorm", ...). It is the decode half of the gateway's
// JSON graph wire format.
func ParseOpKind(s string) (OpKind, bool) {
	k, ok := opKindsByName[s]
	return k, ok
}

// PadMode selects the spatial padding convention for convolutions and
// pooling, following the TensorFlow naming the reference models use.
type PadMode int

const (
	// Valid applies no padding: out = floor((in-k)/s) + 1.
	Valid PadMode = iota
	// Same pads so that out = ceil(in/s).
	Same
)

func (p PadMode) String() string {
	if p == Same {
		return "same"
	}
	return "valid"
}

// Shape is a spatial feature-map shape. Dense layers use H = W = 1.
type Shape struct {
	H, W, C int
}

// Elems returns the number of scalar elements in the shape.
func (s Shape) Elems() int64 { return int64(s.H) * int64(s.W) * int64(s.C) }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// Node is one layer in the graph.
type Node struct {
	ID     int
	Name   string
	Kind   OpKind
	Inputs []int // IDs of producer nodes, in argument order

	In  Shape // shape of the first input (merges validate the rest)
	Out Shape

	// Convolution / pooling geometry. Zero for ops that have none.
	KH, KW int
	Stride int
	Pad    PadMode

	// Accounting, filled in by the builder.
	MACs        int64 // multiply-accumulates (or comparable elementwise ops)
	Params      int64 // learnable + tracked parameters (BN counts 4C)
	WeightBytes int64 // parameter storage at 1 byte/elem granularity unit
	IOBytes     int64 // input+output activation traffic, 1 byte/elem unit

	// Block is the index into Graph.Blocks this node belongs to,
	// or -1 for stem/head nodes outside any removable block.
	Block int
	// Head marks classification-head layers. Eq. (1) and the layer
	// counts in the paper exclude these.
	Head bool
}

// Block is a removable unit: a contiguous run of nodes whose output is a
// single node. Blockwise layer removal (Sec. IV-A) cuts whole trailing
// blocks.
type Block struct {
	Index  int
	Label  string
	Nodes  []int // node IDs belonging to the block, in topological order
	Output int   // ID of the node producing the block's output
}

// Graph is an immutable-after-build directed acyclic layer graph in
// topological order (Nodes[i].Inputs all have ID < i).
type Graph struct {
	Name       string
	InputShape Shape
	NumClasses int
	Nodes      []*Node
	Blocks     []Block
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.Nodes[id] }

// OutputNode returns the final node of the graph.
func (g *Graph) OutputNode() *Node { return g.Nodes[len(g.Nodes)-1] }

// LayerCount returns the number of layers excluding Input nodes,
// mirroring framework model-summary conventions.
func (g *Graph) LayerCount() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind != OpInput {
			n++
		}
	}
	return n
}

// FeatureLayerCount returns the number of non-head, non-input layers:
// the layers eligible for removal accounting ("N" in Eq. (1)).
func (g *Graph) FeatureLayerCount() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind != OpInput && !nd.Head {
			n++
		}
	}
	return n
}

// HeadLayerCount returns the number of classification-head layers.
func (g *Graph) HeadLayerCount() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Head {
			n++
		}
	}
	return n
}

// TotalMACs sums multiply-accumulates over all layers.
func (g *Graph) TotalMACs() int64 {
	var t int64
	for _, nd := range g.Nodes {
		t += nd.MACs
	}
	return t
}

// TotalParams sums parameter counts over all layers.
func (g *Graph) TotalParams() int64 {
	var t int64
	for _, nd := range g.Nodes {
		t += nd.Params
	}
	return t
}

// TotalFilterSize sums KH*KW over all convolutional layers; one of the
// device-agnostic features of the analytical model (Sec. V-B2).
func (g *Graph) TotalFilterSize() int64 {
	var t int64
	for _, nd := range g.Nodes {
		if nd.Kind == OpConv || nd.Kind == OpDWConv {
			t += int64(nd.KH) * int64(nd.KW)
		}
	}
	return t
}

// BlockCount returns the number of removable blocks.
func (g *Graph) BlockCount() int { return len(g.Blocks) }

// Consumers returns, for every node ID, the IDs of nodes consuming it.
func (g *Graph) Consumers() [][]int {
	out := make([][]int, len(g.Nodes))
	for _, nd := range g.Nodes {
		for _, in := range nd.Inputs {
			out[in] = append(out[in], nd.ID)
		}
	}
	return out
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s{layers=%d blocks=%d macs=%d params=%d}",
		g.Name, g.LayerCount(), len(g.Blocks), g.TotalMACs(), g.TotalParams())
}
