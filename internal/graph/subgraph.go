package graph

import "fmt"

// LastFeatureNode returns the ID of the last non-head node: the feature
// tensor the original classification head consumes.
func (g *Graph) LastFeatureNode() int {
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		if !g.Nodes[i].Head {
			return i
		}
	}
	return 0
}

// Ancestors returns the IDs of node id and all its transitive producers,
// in ascending order. Because the graph is topologically ordered, the
// result is a dependency-closed subgraph.
func (g *Graph) Ancestors(id int) []int {
	if id < 0 || id >= len(g.Nodes) {
		panic(fmt.Sprintf("graph: Ancestors of unknown node %d", id))
	}
	mark := make([]bool, id+1)
	mark[id] = true
	for i := id; i >= 0; i-- {
		if !mark[i] {
			continue
		}
		for _, in := range g.Nodes[i].Inputs {
			mark[in] = true
		}
	}
	out := make([]int, 0, id+1)
	for i, m := range mark {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// SubgraphBuilder returns a Builder seeded with deep copies of the given
// dependency-closed node set of g (ascending original IDs, node 0 must be
// the input and every node's producers must be in the set). Node IDs are
// remapped densely. Blocks fully contained in the set are preserved.
// The second return value is the new ID of the set's last node, i.e. the
// attachment point for further layers.
func SubgraphBuilder(name string, g *Graph, keep []int, numClasses int) (*Builder, int) {
	if len(keep) == 0 || keep[0] != 0 {
		panic("graph: SubgraphBuilder requires a set starting at the input node")
	}
	remap := make(map[int]int, len(keep))
	ng := &Graph{
		Name:       name,
		InputShape: g.InputShape,
		NumClasses: numClasses,
	}
	blockRemap := map[int]int{}
	blockComplete := map[int]bool{}
	// A block survives only if all of its nodes are kept.
	inSet := make(map[int]bool, len(keep))
	for _, id := range keep {
		inSet[id] = true
	}
	for bi, blk := range g.Blocks {
		all := true
		for _, id := range blk.Nodes {
			if !inSet[id] {
				all = false
				break
			}
		}
		blockComplete[bi] = all
	}

	prev := -1
	for _, id := range keep {
		if id <= prev {
			panic("graph: SubgraphBuilder set must be ascending and unique")
		}
		prev = id
		src := g.Nodes[id]
		n := &Node{
			ID:          len(ng.Nodes),
			Name:        src.Name,
			Kind:        src.Kind,
			In:          src.In,
			Out:         src.Out,
			KH:          src.KH,
			KW:          src.KW,
			Stride:      src.Stride,
			Pad:         src.Pad,
			MACs:        src.MACs,
			Params:      src.Params,
			WeightBytes: src.WeightBytes,
			IOBytes:     src.IOBytes,
			Block:       -1,
			Head:        false, // head layers are never carried over
		}
		for _, in := range src.Inputs {
			nid, ok := remap[in]
			if !ok {
				panic(fmt.Sprintf("graph: SubgraphBuilder set not dependency-closed at node %d (input %d missing)", id, in))
			}
			n.Inputs = append(n.Inputs, nid)
		}
		if src.Block >= 0 && blockComplete[src.Block] {
			bi, ok := blockRemap[src.Block]
			if !ok {
				bi = len(ng.Blocks)
				blockRemap[src.Block] = bi
				ng.Blocks = append(ng.Blocks, Block{
					Index:  bi,
					Label:  g.Blocks[src.Block].Label,
					Output: -1,
				})
			}
			n.Block = bi
			ng.Blocks[bi].Nodes = append(ng.Blocks[bi].Nodes, n.ID)
			ng.Blocks[bi].Output = n.ID
		}
		remap[id] = n.ID
		ng.Nodes = append(ng.Nodes, n)
	}
	b := &Builder{g: ng, curBlock: -1}
	return b, len(ng.Nodes) - 1
}
