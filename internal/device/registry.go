package device

import "fmt"

// The device registry: the named, calibrated target profiles the
// planning stack can serve. Xavier remains the paper's deployment
// target and the default; the other profiles span the device classes
// related deployments actually route across — a mobile CPU, a
// server-class GPU and an INT8 dataflow accelerator — with calibrations
// that exaggerate the qualitative contrasts the roofline model captures
// (launch overhead vs. bandwidth vs. peak compute, depthwise and
// narrow-channel efficiency, warm-up depth, measurement noise), so the
// same graph lands at visibly different latencies and sometimes a
// different best cut per target.

// EdgeCPU returns a mobile quad-core CPU class profile: two orders of
// magnitude less peak compute than the GPU targets and little memory
// bandwidth, but near-zero dispatch cost, a narrow SIMD knee (small
// channel counts already saturate), comparatively strong depthwise
// efficiency, and FP32 execution with no fused-kernel pass — the
// eager-framework deployment NetCut's related work targets on phones.
func EdgeCPU() Config {
	return Config{
		Name:             "sim-edge-cpu",
		PeakMACs:         1.2e11,
		MemBandwidth:     12e9,
		LaunchOverheadMs: 0.002,
		ConvEff:          0.80,
		DWEff:            0.55,
		DenseEff:         0.60,
		PoolEff:          0.35,
		EltwEff:          0.50,
		ChannelKnee:      8,
		INT8Speedup:      2.5,
		FP32Slowdown:     1.0,
		Fusion:           false,
		Precision:        FP32,
		NoiseSigma:       0.035,
		ColdPenalty:      0.3,
		ColdRuns:         10,
		EventOverheadMs:  0.0002,
	}
}

// ServerGPU returns a datacenter GPU class profile: an order of
// magnitude more peak compute and bandwidth than Xavier at FP16, but a
// wide tensor-core knee (narrow layers waste the device), terrible
// depthwise efficiency, and a deep warm-up transient from clock gating
// and JIT engine builds.
func ServerGPU() Config {
	return Config{
		Name:             "sim-server-gpu",
		PeakMACs:         6.0e13,
		MemBandwidth:     900e9,
		LaunchOverheadMs: 0.006,
		ConvEff:          0.93,
		DWEff:            0.10,
		DenseEff:         0.55,
		PoolEff:          0.35,
		EltwEff:          0.50,
		ChannelKnee:      96,
		INT8Speedup:      2.0,
		FP32Slowdown:     2.0,
		Fusion:           true,
		Precision:        FP16,
		NoiseSigma:       0.008,
		ColdPenalty:      1.2,
		ColdRuns:         40,
		EventOverheadMs:  0.0006,
	}
}

// INT8Accel returns an edge NPU class profile (systolic INT8 dataflow
// accelerator): excellent dense-conv efficiency at a 4x INT8 speedup
// and near-deterministic execution, but a high per-kernel offload cost,
// thin memory bandwidth, hostile depthwise/elementwise support, and an
// expensive host round-trip per profiling event.
func INT8Accel() Config {
	return Config{
		Name:             "sim-int8-accel",
		PeakMACs:         2.0e12,
		MemBandwidth:     25e9,
		LaunchOverheadMs: 0.025,
		ConvEff:          0.95,
		DWEff:            0.08,
		DenseEff:         0.30,
		PoolEff:          0.20,
		EltwEff:          0.25,
		ChannelKnee:      64,
		INT8Speedup:      4.0,
		FP32Slowdown:     8.0,
		Fusion:           true,
		Precision:        INT8,
		NoiseSigma:       0.004,
		ColdPenalty:      2.0,
		ColdRuns:         15,
		EventOverheadMs:  0.002,
	}
}

// Profiles returns every registered calibration in canonical order —
// Xavier first (the default target), then the fleet profiles. The
// order is the registration order the pool and gateway expose, so it
// is part of the routing determinism contract: "auto" tie-breaks on
// it.
func Profiles() []Config {
	return []Config{Xavier(), EdgeCPU(), ServerGPU(), INT8Accel()}
}

// ProfileNames lists the registered profile names in canonical order.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i := range ps {
		names[i] = ps[i].Name
	}
	return names
}

// ProfileByName returns the registered calibration with the given name.
func ProfileByName(name string) (Config, error) {
	for _, c := range Profiles() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("device: unknown profile %q (registered: %v)", name, ProfileNames())
}
