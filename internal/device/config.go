// Package device simulates an embedded GPU in the spirit of the NVIDIA
// Jetson Xavier the paper deploys on (substitution S1 in DESIGN.md).
//
// The model is an analytical per-kernel roofline: after a fusion pass
// groups layers into kernels, each kernel costs a launch overhead plus
// the maximum of its compute time (MACs over an efficiency-scaled peak
// throughput) and its memory time (weight + activation traffic over the
// memory bandwidth). The model reproduces the qualitative behaviours the
// paper's measurements exhibit and that its estimators must cope with:
//
//   - many-layer, memory-bound networks (DenseNet-121) are far slower
//     than their MAC count suggests;
//   - depthwise convolutions run at a fraction of dense-conv efficiency;
//   - per-layer event profiling adds overhead, so the sum of profiled
//     layer latencies exceeds the end-to-end latency (the observation
//     that motivates Eq. (1)'s ratio form);
//   - measurements are noisy and cold starts are slow, motivating the
//     200-warm-up/800-run protocol (Sec. IV-B2).
//
// All latencies are float64 milliseconds, the unit of every figure in
// the paper.
package device

import (
	"fmt"
	"math"

	"netcut/internal/graph"
)

// Precision selects the deployed arithmetic mode. The paper deploys with
// post-training INT8 quantization (Sec. III-B4).
type Precision int

const (
	FP32 Precision = iota
	FP16
	INT8
)

func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	default:
		return "int8"
	}
}

// bytesPerElem returns the storage size of one tensor element.
func (p Precision) bytesPerElem() float64 {
	switch p {
	case FP32:
		return 4
	case FP16:
		return 2
	default:
		return 1
	}
}

// Config describes the simulated device. The zero value is unusable; use
// Xavier() or fill every field.
type Config struct {
	Name string

	// PeakMACs is the peak sustained multiply-accumulate throughput at
	// FP16, in MAC/s, for a fully efficient dense convolution.
	PeakMACs float64
	// MemBandwidth is the effective DRAM bandwidth in bytes/s.
	MemBandwidth float64
	// LaunchOverheadMs is the fixed per-kernel dispatch cost.
	LaunchOverheadMs float64

	// Efficiency factors by kernel class, in (0, 1]: the fraction of
	// PeakMACs the class sustains at large channel counts.
	ConvEff  float64
	DWEff    float64 // depthwise convolutions are memory-starved
	DenseEff float64
	PoolEff  float64
	EltwEff  float64 // elementwise adds / activations

	// ChannelKnee is the output-channel count at which a kernel reaches
	// half of its class efficiency; narrow layers under-utilize the SIMD
	// lanes. This is the dominant source of the non-linearity that makes
	// the linear latency model fail (Fig. 9).
	ChannelKnee float64

	// INT8Speedup multiplies throughput when Precision is INT8.
	INT8Speedup float64
	// FP32Slowdown divides throughput when Precision is FP32.
	FP32Slowdown float64

	// Fusion enables the conv+BN+activation (and pool/add+activation)
	// fusion pass, as deployed inference engines do (Sec. III-B4).
	Fusion bool
	// Precision is the deployed arithmetic mode.
	Precision Precision

	// NoiseSigma is the relative standard deviation of per-run
	// measurement noise.
	NoiseSigma float64
	// ColdPenalty and ColdRuns shape the warm-up transient: run k is
	// slowed by 1 + ColdPenalty*exp(-k/ColdRuns).
	ColdPenalty float64
	ColdRuns    float64
	// EventOverheadMs is the extra cost recorded per layer when
	// profiling with per-layer events (CUDA-event style, Sec. V-B1).
	EventOverheadMs float64
}

// Validate checks that a configuration is physically meaningful; New
// panics on an invalid config because device configurations are static
// calibration tables, not runtime inputs.
func (c *Config) Validate() error {
	switch {
	case c.PeakMACs <= 0:
		return fmt.Errorf("device: non-positive peak throughput %v", c.PeakMACs)
	case c.MemBandwidth <= 0:
		return fmt.Errorf("device: non-positive memory bandwidth %v", c.MemBandwidth)
	case c.LaunchOverheadMs < 0:
		return fmt.Errorf("device: negative launch overhead %v", c.LaunchOverheadMs)
	case c.ConvEff <= 0 || c.ConvEff > 1,
		c.DWEff <= 0 || c.DWEff > 1,
		c.DenseEff <= 0 || c.DenseEff > 1,
		c.PoolEff <= 0 || c.PoolEff > 1,
		c.EltwEff <= 0 || c.EltwEff > 1:
		return fmt.Errorf("device: efficiency factors must be in (0,1]")
	case c.ChannelKnee < 0:
		return fmt.Errorf("device: negative channel knee %v", c.ChannelKnee)
	case c.Precision == INT8 && c.INT8Speedup <= 0:
		return fmt.Errorf("device: int8 mode needs a positive speedup")
	case c.Precision == FP32 && c.FP32Slowdown <= 0:
		return fmt.Errorf("device: fp32 mode needs a positive slowdown")
	case c.NoiseSigma < 0 || c.NoiseSigma > 0.5:
		return fmt.Errorf("device: noise sigma %v out of [0, 0.5]", c.NoiseSigma)
	case c.ColdPenalty < 0 || (c.ColdPenalty > 0 && c.ColdRuns <= 0):
		return fmt.Errorf("device: invalid warm-up transient (%v over %v runs)", c.ColdPenalty, c.ColdRuns)
	case c.EventOverheadMs < 0:
		return fmt.Errorf("device: negative event overhead %v", c.EventOverheadMs)
	}
	return nil
}

// Fingerprint returns a calibration identity hash covering every Config
// field. It is the device half of every structure-keyed cache key in
// the measurement stack: the device folds it into its plan keys (which
// the profiler's measurement and table memos inherit) and the planner
// scopes its cut-cache entries with it, so two targets with different
// calibrations can never share plans, measurements, tables or cuts —
// even if a future refactor points them at one shared cache. Two
// configs with equal fingerprints simulate identically.
// fingerprintedFields must equal the number of fields in Config: a
// reflection test fails when a new field is added without folding it
// into Fingerprint below, because an omitted field would let two
// differently calibrated devices share cache keys — the exact
// poisoning the fingerprint exists to prevent.
const fingerprintedFields = 18

func (c *Config) Fingerprint() uint64 {
	h := graph.NewHash().MixString(c.Name)
	f := func(v float64) { h = h.Mix(math.Float64bits(v)) }
	f(c.PeakMACs)
	f(c.MemBandwidth)
	f(c.LaunchOverheadMs)
	f(c.ConvEff)
	f(c.DWEff)
	f(c.DenseEff)
	f(c.PoolEff)
	f(c.EltwEff)
	f(c.ChannelKnee)
	f(c.INT8Speedup)
	f(c.FP32Slowdown)
	if c.Fusion {
		h = h.Mix(1)
	} else {
		h = h.Mix(0)
	}
	h = h.Mix(uint64(c.Precision))
	f(c.NoiseSigma)
	f(c.ColdPenalty)
	f(c.ColdRuns)
	f(c.EventOverheadMs)
	return h.Sum()
}

// Xavier returns the calibrated default configuration. Constants are
// chosen so that the paper's seven networks land in the 0.1-4 ms band of
// Fig. 1 with the published ordering, and so that MobileNetV1 (0.5) is
// the fastest network meeting the 0.9 ms prosthetic-hand deadline.
func Xavier() Config {
	return Config{
		Name:             "sim-xavier",
		PeakMACs:         5.5e12,
		MemBandwidth:     60e9,
		LaunchOverheadMs: 0.010,
		ConvEff:          0.90,
		DWEff:            0.12,
		DenseEff:         0.40,
		PoolEff:          0.30,
		EltwEff:          0.45,
		ChannelKnee:      40,
		INT8Speedup:      1.8,
		FP32Slowdown:     2.0,
		Fusion:           true,
		Precision:        INT8,
		NoiseSigma:       0.012,
		ColdPenalty:      0.6,
		ColdRuns:         25,
		EventOverheadMs:  0.0009,
	}
}
