package device

import (
	"testing"

	"netcut/internal/zoo"
)

func BenchmarkPlanDenseNet(b *testing.B) {
	cfg := Xavier()
	g, _ := zoo.ByName("DenseNet-121")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Plan(g)
	}
}

func BenchmarkLatencyResNet(b *testing.B) {
	d := New(Xavier())
	g, _ := zoo.ByName("ResNet-50")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.LatencyMs(g)
	}
}

func BenchmarkInferMs(b *testing.B) {
	d := New(Xavier())
	g, _ := zoo.ByName("InceptionV3")
	s := d.Open(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InferMs()
	}
}
