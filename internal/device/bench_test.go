package device

import (
	"testing"

	"netcut/internal/zoo"
)

func BenchmarkPlanDenseNet(b *testing.B) {
	cfg := Xavier()
	g, _ := zoo.ByName("DenseNet-121")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Plan(g)
	}
}

func BenchmarkLatencyResNet(b *testing.B) {
	d := New(Xavier())
	g, _ := zoo.ByName("ResNet-50")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.LatencyMs(g)
	}
}

func BenchmarkInferMs(b *testing.B) {
	d := New(Xavier())
	g, _ := zoo.ByName("InceptionV3")
	s := d.Open(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InferMs()
	}
}

func BenchmarkInferProfiledMs(b *testing.B) {
	d := New(Xavier())
	g, _ := zoo.ByName("InceptionV3")
	s := d.Open(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InferProfiledMs()
	}
}

func BenchmarkInferProfiledMsDenseNet(b *testing.B) {
	// DenseNet-121 is the worst case: the most layers, the most kernels
	// (concat blocks fusion), so the most rows per profiled run.
	d := New(Xavier())
	g, _ := zoo.ByName("DenseNet-121")
	s := d.Open(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InferProfiledMs()
	}
}

func BenchmarkOpenCachedPlan(b *testing.B) {
	// After the first Open the fused plan, kernel times and MAC shares
	// come from the device's memoized plan cache.
	d := New(Xavier())
	g, _ := zoo.ByName("DenseNet-121")
	d.Open(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Open(g, int64(i))
	}
}

func BenchmarkLatencyMsCached(b *testing.B) {
	// Steady-state latency of an already-planned graph: one fingerprint
	// plus one cache hit.
	d := New(Xavier())
	g, _ := zoo.ByName("DenseNet-121")
	d.LatencyMs(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.LatencyMs(g)
	}
}
