package device

import (
	"math"
	"testing"

	"netcut/internal/graph"
	"netcut/internal/zoo"
)

func testNet() *graph.Graph {
	b := graph.NewBuilder("t", graph.Shape{H: 16, W: 16, C: 3}, 4)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 16, 1, graph.Same)
	y := b.ConvBNReLU(x, 3, 16, 1, graph.Same)
	y = b.Add(y, x)
	y = b.ReLU(y)
	b.BeginHead()
	y = b.GlobalAvgPool(y)
	y = b.Dense(y, 4)
	y = b.Softmax(y)
	return b.MustFinish()
}

func TestPlanFusesConvBNReLU(t *testing.T) {
	cfg := Xavier()
	plan := cfg.Plan(testNet())
	// Conv+BN+ReLU, Conv+BN+ReLU, Add+ReLU, GAP, Dense+Softmax = 5 kernels.
	if len(plan) != 5 {
		for _, k := range plan {
			t.Logf("kernel %v nodes=%v", k.Kind, k.Nodes)
		}
		t.Fatalf("plan has %d kernels, want 5", len(plan))
	}
	if len(plan[0].Nodes) != 3 {
		t.Fatalf("first kernel fused %d nodes, want 3", len(plan[0].Nodes))
	}
}

func TestPlanNoFusion(t *testing.T) {
	cfg := Xavier()
	cfg.Fusion = false
	g := testNet()
	plan := cfg.Plan(g)
	if len(plan) != g.LayerCount() {
		t.Fatalf("unfused plan has %d kernels, want %d", len(plan), g.LayerCount())
	}
}

func TestPlanCoversEveryNode(t *testing.T) {
	cfg := Xavier()
	for _, g := range zoo.Paper7() {
		plan := cfg.Plan(g)
		seen := map[int]bool{}
		for _, k := range plan {
			for _, id := range k.Nodes {
				if seen[id] {
					t.Fatalf("%s: node %d in two kernels", g.Name, id)
				}
				seen[id] = true
			}
		}
		want := g.LayerCount() // every node except input
		if len(seen) != want {
			t.Fatalf("%s: plan covers %d nodes, want %d", g.Name, len(seen), want)
		}
	}
}

func TestConcatDoesNotAbsorbBN(t *testing.T) {
	b := graph.NewBuilder("c", graph.Shape{H: 8, W: 8, C: 4}, 2)
	x := b.Input()
	a := b.Conv(x, 1, 4, 1, graph.Same)
	c := b.Conv(x, 1, 4, 1, graph.Same)
	m := b.Concat(a, c)
	m = b.BN(m)
	b.ReLU(m)
	g := b.MustFinish()
	cfg := Xavier()
	plan := cfg.Plan(g)
	// conv, conv, concat, BN+ReLU: the BN must not fold into the concat.
	if len(plan) != 4 {
		t.Fatalf("plan has %d kernels, want 4", len(plan))
	}
	if plan[2].Kind != graph.OpConcat || len(plan[2].Nodes) != 1 {
		t.Fatalf("concat kernel absorbed other nodes: %+v", plan[2])
	}
}

func TestFigure1LatencyOrdering(t *testing.T) {
	// The calibration invariant behind Fig. 1: published latency order,
	// and MobileNetV1 (0.5) the fastest network under the 0.9 ms deadline
	// with MobileNetV2 (1.0) above it.
	d := New(Xavier())
	var prev float64
	lat := map[string]float64{}
	for _, g := range zoo.Paper7() {
		l := d.LatencyMs(g)
		lat[g.Name] = l
		if l <= prev {
			t.Errorf("%s latency %.3f not greater than previous %.3f", g.Name, l, prev)
		}
		prev = l
	}
	const deadline = 0.9
	if lat["MobileNetV1 (0.5)"] >= deadline {
		t.Errorf("MobileNetV1 (0.5) = %.3f ms, must be under the %.1f ms deadline", lat["MobileNetV1 (0.5)"], deadline)
	}
	if lat["MobileNetV2 (1.0)"] <= deadline {
		t.Errorf("MobileNetV2 (1.0) = %.3f ms, must be over the %.1f ms deadline", lat["MobileNetV2 (1.0)"], deadline)
	}
	if lat["DenseNet-121"] < 2.5 || lat["DenseNet-121"] > 4.5 {
		t.Errorf("DenseNet-121 = %.3f ms, want in the paper's 2.5-4.5 band", lat["DenseNet-121"])
	}
	if lat["MobileNetV1 (0.25)"] > 0.6 {
		t.Errorf("MobileNetV1 (0.25) = %.3f ms, want < 0.6", lat["MobileNetV1 (0.25)"])
	}
}

func TestWarmupTransient(t *testing.T) {
	d := New(Xavier())
	g, err := zoo.ByName("MobileNetV1 (0.5)")
	if err != nil {
		t.Fatal(err)
	}
	s := d.Open(g, 1)
	first := s.InferMs()
	for i := 0; i < 199; i++ {
		s.InferMs()
	}
	var warm float64
	for i := 0; i < 200; i++ {
		warm += s.InferMs()
	}
	warm /= 200
	if first < warm*1.3 {
		t.Errorf("cold run %.3f not noticeably slower than warm mean %.3f", first, warm)
	}
	if math.Abs(warm-d.LatencyMs(g))/d.LatencyMs(g) > 0.02 {
		t.Errorf("warm mean %.3f deviates from steady state %.3f", warm, d.LatencyMs(g))
	}
}

func TestMeasurementNoiseIsBounded(t *testing.T) {
	d := New(Xavier())
	g, _ := zoo.ByName("MobileNetV1 (0.25)")
	s := d.Open(g, 7)
	for i := 0; i < 300; i++ {
		s.InferMs()
	}
	base := d.LatencyMs(g)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := 0; i < 500; i++ {
		v := s.InferMs()
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if minV < base*0.9 || maxV > base*1.1 {
		t.Errorf("warm measurements [%.4f, %.4f] stray >10%% from base %.4f", minV, maxV, base)
	}
	if maxV-minV < base*0.005 {
		t.Errorf("measurements suspiciously noiseless: spread %.5f", maxV-minV)
	}
}

func TestProfiledSumExceedsEndToEnd(t *testing.T) {
	// The observation motivating Eq. (1): per-layer event overhead makes
	// the layer-table sum exceed the plain end-to-end latency.
	d := New(Xavier())
	g, _ := zoo.ByName("ResNet-50")
	s := d.Open(g, 3)
	for i := 0; i < 200; i++ {
		s.InferMs()
	}
	rows, total := s.InferProfiledMs()
	var sum float64
	for _, r := range rows {
		sum += r.Ms
	}
	if sum <= total {
		t.Fatalf("layer-table sum %.4f not greater than end-to-end %.4f", sum, total)
	}
	if sum > total*1.25 {
		t.Fatalf("event overhead implausibly large: sum %.4f vs total %.4f", sum, total)
	}
	if len(rows) != g.LayerCount() {
		t.Fatalf("profiled %d layers, want %d", len(rows), g.LayerCount())
	}
}

func TestInt8FasterThanFP16FasterThanFP32(t *testing.T) {
	g, _ := zoo.ByName("ResNet-50")
	lat := func(p Precision) float64 {
		cfg := Xavier()
		cfg.Precision = p
		return New(cfg).LatencyMs(g)
	}
	i8, f16, f32 := lat(INT8), lat(FP16), lat(FP32)
	if !(i8 < f16 && f16 < f32) {
		t.Fatalf("precision ordering broken: int8=%.3f fp16=%.3f fp32=%.3f", i8, f16, f32)
	}
}

func TestFusionReducesLatency(t *testing.T) {
	g, _ := zoo.ByName("DenseNet-121")
	on := Xavier()
	off := Xavier()
	off.Fusion = false
	lOn, lOff := New(on).LatencyMs(g), New(off).LatencyMs(g)
	if lOn >= lOff {
		t.Fatalf("fusion did not help: on=%.3f off=%.3f", lOn, lOff)
	}
	// DenseNet has hundreds of fusable activations; expect a big win.
	if lOff/lOn < 1.3 {
		t.Errorf("fusion win %.2fx suspiciously small for DenseNet", lOff/lOn)
	}
}

func TestDeterministicLatency(t *testing.T) {
	d := New(Xavier())
	g, _ := zoo.ByName("InceptionV3")
	if d.LatencyMs(g) != d.LatencyMs(g) {
		t.Fatal("LatencyMs not deterministic")
	}
	s1 := d.Open(g, 42)
	s2 := d.Open(g, 42)
	for i := 0; i < 10; i++ {
		if s1.InferMs() != s2.InferMs() {
			t.Fatal("same seed produced different measurement streams")
		}
	}
}

func TestDepthwisePenalty(t *testing.T) {
	// A depthwise conv with the same MACs as a dense conv must be slower.
	mk := func(dw bool) *graph.Graph {
		b := graph.NewBuilder("k", graph.Shape{H: 32, W: 32, C: 64}, 2)
		x := b.Input()
		if dw {
			x = b.DWConv(x, 3, 1, graph.Same)
		} else {
			// 1x1 conv sized to have comparable MACs: 32*32*64*9 vs
			// 32*32*outC*64 => outC=9.
			x = b.Conv(x, 1, 9, 1, graph.Same)
		}
		b.BeginHead()
		x = b.GlobalAvgPool(x)
		x = b.Dense(x, 2)
		b.Softmax(x)
		return b.MustFinish()
	}
	d := New(Xavier())
	if dwl, cl := d.LatencyMs(mk(true)), d.LatencyMs(mk(false)); dwl <= cl {
		t.Fatalf("depthwise %.4f not slower than dense %.4f", dwl, cl)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(c *Config)
	}{
		{"zero peak", func(c *Config) { c.PeakMACs = 0 }},
		{"zero bandwidth", func(c *Config) { c.MemBandwidth = 0 }},
		{"negative launch", func(c *Config) { c.LaunchOverheadMs = -1 }},
		{"bad conv eff", func(c *Config) { c.ConvEff = 1.5 }},
		{"zero dw eff", func(c *Config) { c.DWEff = 0 }},
		{"negative knee", func(c *Config) { c.ChannelKnee = -1 }},
		{"int8 no speedup", func(c *Config) { c.INT8Speedup = 0 }},
		{"huge noise", func(c *Config) { c.NoiseSigma = 0.9 }},
		{"cold no runs", func(c *Config) { c.ColdPenalty = 0.5; c.ColdRuns = 0 }},
		{"negative event", func(c *Config) { c.EventOverheadMs = -1 }},
	}
	for _, m := range mutations {
		cfg := Xavier()
		m.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
	good := Xavier()
	if err := good.Validate(); err != nil {
		t.Fatalf("calibrated config invalid: %v", err)
	}
	// fp32 slowdown is only required in fp32 mode.
	fp32 := Xavier()
	fp32.Precision = FP32
	fp32.FP32Slowdown = 0
	if err := fp32.Validate(); err == nil {
		t.Error("fp32 without slowdown accepted")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	cfg := Xavier()
	cfg.PeakMACs = -1
	New(cfg)
}
