package device

import (
	"fmt"
	"testing"

	"netcut/internal/graph"
)

// variantNet builds a structurally distinct small network per index, so
// tests can stream "arbitrary user graphs" through the caches.
func variantNet(i int) *graph.Graph {
	b := graph.NewBuilder(fmt.Sprintf("variant-%d", i), graph.Shape{H: 16, W: 16, C: 3}, 4)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 8+i%5, 1, graph.Same)
	b.BeginBlock("b0")
	x = b.ConvBNReLU(x, 3, 8+i%5, 1, graph.Same)
	b.EndBlock()
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 4)
	b.Softmax(x)
	return b.MustFinish()
}

// TestPlanCacheCapNeverExceeded streams many distinct structures
// through a small plan cache and checks the bound holds throughout.
func TestPlanCacheCapNeverExceeded(t *testing.T) {
	d := New(Xavier())
	const cap = 4
	d.SetPlanCacheCap(cap)
	for i := 0; i < 10*cap; i++ {
		d.LatencyMs(variantNet(i))
		if n := d.PlanCacheStats().Len; n > cap {
			t.Fatalf("after %d distinct graphs plan cache holds %d > cap %d", i+1, n, cap)
		}
	}
	if s := d.PlanCacheStats(); s.Evictions == 0 {
		t.Fatal("expected evictions under pressure")
	}
}

// TestPlanEvictionTransparent pins cache transparency: after an entry
// is evicted, re-querying a freshly built copy of the same structure
// (a new object, so the pointer-level cache cannot short-circuit)
// reproduces the pre-eviction latency exactly.
func TestPlanEvictionTransparent(t *testing.T) {
	d := New(Xavier())
	d.SetPlanCacheCap(2)
	before := d.LatencyMs(variantNet(0))
	for i := 1; i < 8; i++ { // evict variant-0
		d.LatencyMs(variantNet(i))
	}
	if _, ok := d.byPrint.Get(graph.Fingerprint(variantNet(0))); ok {
		t.Fatal("variant-0 plan unexpectedly still resident")
	}
	after := d.LatencyMs(variantNet(0))
	if before != after {
		t.Fatalf("post-eviction latency %v differs from original %v", after, before)
	}
}
