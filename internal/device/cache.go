package device

import (
	"runtime"
	"weak"

	"netcut/internal/graph"
)

// planInfo is the memoized execution state of one graph on one device:
// each kernel's noise-free steady-state time and their sum, and the
// per-kernel row templates that profiled inference charges fused layers
// with. Everything here is loop-invariant across measurement runs, so a
// Session computes none of it — the 200-warm-up/800-run protocol
// touches only the noise stream. planInfo holds no reference to the
// graph it was built from, which is what lets the pointer-level cache
// below use weak keys.
type planInfo struct {
	key      uint64    // the structural fingerprint this plan is cached under
	baseMs   []float64 // per-kernel steady-state latency (KernelTimeMs)
	steadyMs float64   // sum of baseMs: the noise-free end-to-end latency
	// rowTmpl[ki] holds one template row per fused node of kernel ki —
	// node identity plus its MAC share of the kernel — so profiled
	// inference fills in nothing but the two noise terms per row.
	rowTmpl [][]profRow
	rows    int // total fused nodes, sizing profiled-row buffers
}

// profRow is the loop-invariant part of one profiled-table row.
type profRow struct {
	nodeID int
	name   string
	kind   graph.OpKind
	share  float64 // MAC share of the owning kernel's time
}

// plan returns the memoized execution state of g, building it on first
// use. The fast path is a weak-pointer-keyed hit (repeated queries on
// the same graph object); fresh pointers fall back to the structural
// fingerprint, so re-cut copies of a TRN share one planInfo. The
// pointer level evicts itself when a graph is collected (the cache
// must not keep caller graphs alive), while the fingerprint level is a
// bounded LRU — eviction is transparent because buildPlan is a pure
// function of (config, structure). Safe for concurrent callers; on a
// race both build the same deterministic value and one copy wins.
func (d *Device) plan(g *graph.Graph) *planInfo {
	wp := weak.Make(g)
	if v, ok := d.byPtr.Load(wp); ok {
		return v.(*planInfo)
	}
	key := planKey(d.print, graph.Fingerprint(g))
	info := d.byPrint.GetOrCompute(key, func() *planInfo {
		return d.buildPlan(g, key)
	})
	if _, loaded := d.byPtr.LoadOrStore(wp, info); !loaded {
		runtime.AddCleanup(g, func(k weak.Pointer[graph.Graph]) {
			d.byPtr.Delete(k)
		}, wp)
	}
	return info
}

// planKey folds the device-calibration fingerprint into the graph's
// structural fingerprint. Making the device half of the key explicit —
// rather than relying on each Device owning its own cache map — means
// plan keys are globally unambiguous: the profiler memos they flow
// into can never alias two targets' results, even when a pool of
// planners shares downstream state.
func planKey(cfgPrint, graphPrint uint64) uint64 {
	return graph.NewHash().Mix(cfgPrint).Mix(graphPrint).Sum()
}

// PlanKey returns the cache key of g on this device: the structural
// fingerprint scoped by the device-calibration fingerprint. Two graphs
// with the same key execute identically — same device, same plan, same
// steady-state kernel times — which is what lets higher layers memoize
// whole measurements per key; two targets never share a key for the
// same graph.
func (d *Device) PlanKey(g *graph.Graph) uint64 { return d.plan(g).key }

func (d *Device) buildPlan(g *graph.Graph, key uint64) *planInfo {
	kernels := d.cfg.Plan(g)
	info := &planInfo{
		key:     key,
		baseMs:  make([]float64, len(kernels)),
		rowTmpl: make([][]profRow, len(kernels)),
	}
	for i := range kernels {
		k := &kernels[i]
		info.baseMs[i] = d.KernelTimeMs(k)
		info.steadyMs += info.baseMs[i]
		var macs int64
		for _, id := range k.Nodes {
			macs += g.Node(id).MACs
		}
		tmpl := make([]profRow, len(k.Nodes))
		for j, id := range k.Nodes {
			n := g.Node(id)
			share := 1.0 / float64(len(k.Nodes))
			if macs > 0 {
				share = float64(n.MACs) / float64(macs)
			}
			tmpl[j] = profRow{nodeID: id, name: n.Name, kind: n.Kind, share: share}
		}
		info.rowTmpl[i] = tmpl
		info.rows += len(k.Nodes)
	}
	return info
}
