package device

import (
	"reflect"
	"testing"

	"netcut/internal/graph"
)

// smallNet builds a tiny blocked network for cross-device key checks.
func smallNet(name string) *graph.Graph {
	b := graph.NewBuilder(name, graph.Shape{H: 32, W: 32, C: 3}, 8)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 16, 2, graph.Same)
	b.BeginBlock("b0")
	y := b.ConvBNReLU(x, 3, 16, 1, graph.Same)
	x = b.Add(y, x)
	x = b.ReLU(x)
	b.EndBlock()
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, 8)
	b.Softmax(x)
	return b.MustFinish()
}

// TestRegistryProfilesAreValidAndDistinct pins the fleet registry:
// every profile validates, names and calibration fingerprints are
// unique, Xavier stays first (the default target), and ProfileByName
// round-trips.
func TestRegistryProfilesAreValidAndDistinct(t *testing.T) {
	ps := Profiles()
	if len(ps) < 4 {
		t.Fatalf("registry has %d profiles, want >= 4", len(ps))
	}
	if ps[0].Name != Xavier().Name {
		t.Fatalf("first registered profile is %q, want the Xavier default", ps[0].Name)
	}
	seenName := map[string]bool{}
	seenPrint := map[uint64]bool{}
	for _, c := range ps {
		if err := c.Validate(); err != nil {
			t.Fatalf("profile %q does not validate: %v", c.Name, err)
		}
		if seenName[c.Name] {
			t.Fatalf("duplicate profile name %q", c.Name)
		}
		seenName[c.Name] = true
		fp := c.Fingerprint()
		if seenPrint[fp] {
			t.Fatalf("profile %q shares a calibration fingerprint", c.Name)
		}
		seenPrint[fp] = true

		got, err := ProfileByName(c.Name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", c.Name, err)
		}
		if got != c {
			t.Fatalf("ProfileByName(%q) returned a different calibration", c.Name)
		}
	}
	if _, err := ProfileByName("sim-quantum"); err == nil {
		t.Fatal("unknown profile name did not error")
	}
}

// TestPlanKeysAreDeviceScoped pins the tentpole cache-isolation
// property at its root: the same graph planned on two differently
// calibrated devices yields different plan keys (so every
// plan-key-derived memo downstream is device-scoped), while two
// devices built from the same calibration agree on the key.
func TestPlanKeysAreDeviceScoped(t *testing.T) {
	g := smallNet("scoped-net")
	ps := Profiles()
	keys := map[uint64]string{}
	for _, cfg := range ps {
		d := New(cfg)
		k := d.PlanKey(g)
		if prev, ok := keys[k]; ok {
			t.Fatalf("devices %q and %q share plan key %#x for one graph", prev, cfg.Name, k)
		}
		keys[k] = cfg.Name
	}
	// Same calibration, independent Device instances: keys must agree,
	// so structurally identical deployments still share downstream memos.
	a, b := New(Xavier()), New(Xavier())
	if a.PlanKey(g) != b.PlanKey(g) {
		t.Fatal("two devices with one calibration disagree on the plan key")
	}
	// And the simulated latencies genuinely differ across the fleet.
	lat := map[float64]string{}
	for _, cfg := range ps {
		l := New(cfg).LatencyMs(g)
		if prev, ok := lat[l]; ok {
			t.Fatalf("devices %q and %q simulate identical latency %v ms", prev, cfg.Name, l)
		}
		lat[l] = cfg.Name
	}
}

// TestNewCheckedSurfacesConfigErrors pins the service-boundary
// constructor: an invalid calibration is an error from NewChecked and
// still a panic from New (static tables compiled into the binary).
func TestNewCheckedSurfacesConfigErrors(t *testing.T) {
	bad := Xavier()
	bad.PeakMACs = -1
	if _, err := NewChecked(bad); err == nil {
		t.Fatal("NewChecked accepted a negative peak throughput")
	}
	if d, err := NewChecked(Xavier()); err != nil || d == nil {
		t.Fatalf("NewChecked rejected the calibrated default: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on an invalid config")
		}
	}()
	New(bad)
}

// TestFingerprintCoversEveryConfigField guards cross-device cache
// isolation against future Config fields: the field count must match
// what Fingerprint folds in, and perturbing any single field must
// change the fingerprint. A new field that is not mixed into
// Fingerprint would let two differently calibrated devices share
// cache keys.
func TestFingerprintCoversEveryConfigField(t *testing.T) {
	typ := reflect.TypeOf(Config{})
	if typ.NumField() != fingerprintedFields {
		t.Fatalf("Config has %d fields but Fingerprint covers %d: fold the new field into Fingerprint and bump fingerprintedFields",
			typ.NumField(), fingerprintedFields)
	}
	base := Xavier()
	basePrint := base.Fingerprint()
	for i := 0; i < typ.NumField(); i++ {
		c := Xavier()
		v := reflect.ValueOf(&c).Elem().Field(i)
		switch v.Kind() {
		case reflect.String:
			v.SetString(v.String() + "-x")
		case reflect.Float64:
			v.SetFloat(v.Float() + 0.5)
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.Int:
			v.SetInt(v.Int() + 1)
		default:
			t.Fatalf("field %s has unhandled kind %s: extend this test", typ.Field(i).Name, v.Kind())
		}
		if c.Fingerprint() == basePrint {
			t.Fatalf("perturbing Config.%s did not change the fingerprint", typ.Field(i).Name)
		}
	}
}
