package device

import (
	"fmt"
	"math"

	"netcut/internal/graph"
	"netcut/internal/lru"
)

// Warm-state snapshot/restore of the fingerprint-keyed kernel-plan
// cache. Plans are pure functions of (calibration, structure), so a
// restored plan is byte-identical to the one a fresh build would
// produce; the serialization exists only to skip the rebuild cost after
// a daemon restart. The pointer-level (weak-keyed) cache is not
// persisted: it re-populates per live graph object, which a restarted
// process does not have anyway.

// PlanRowState is the serializable form of one fused-layer template row
// of a kernel plan.
type PlanRowState struct {
	NodeID int     `json:"id"`
	Name   string  `json:"name,omitempty"`
	Kind   int     `json:"kind"`
	Share  float64 `json:"share"`
}

// PlanState is the serializable form of one memoized kernel plan, keyed
// by the device-scoped plan key (calibration fingerprint folded into
// the structural graph fingerprint). SteadyMs and the row count are
// derivable from BaseMs/RowTmpl and are recomputed on restore rather
// than trusted from the snapshot.
type PlanState struct {
	Key     uint64           `json:"key"`
	BaseMs  []float64        `json:"base_ms"`
	RowTmpl [][]PlanRowState `json:"rows"`
}

// SnapshotPlans exports the fingerprint-keyed plan cache in LRU order
// (least recently used first), for persistence across restarts.
func (d *Device) SnapshotPlans() []PlanState {
	entries := d.byPrint.Snapshot()
	out := make([]PlanState, 0, len(entries))
	for _, e := range entries {
		info := e.Val
		ps := PlanState{
			Key:     e.Key,
			BaseMs:  append([]float64(nil), info.baseMs...),
			RowTmpl: make([][]PlanRowState, len(info.rowTmpl)),
		}
		for ki, tmpl := range info.rowTmpl {
			rows := make([]PlanRowState, len(tmpl))
			for ri, r := range tmpl {
				rows[ri] = PlanRowState{NodeID: r.nodeID, Name: r.name, Kind: int(r.kind), Share: r.share}
			}
			ps.RowTmpl[ki] = rows
		}
		out = append(out, ps)
	}
	return out
}

// PreparedPlans is a decoded, fully validated plan section, ready to
// apply. Splitting prepare from apply lets a restoring layer validate
// every section of a snapshot before applying any of them — the
// all-or-nothing contract — while building each entry exactly once.
type PreparedPlans struct {
	entries []lru.Entry[uint64, *planInfo]
}

// PreparePlans decodes and validates snapshotted plans without
// touching any cache. An error means no entry of the slice should be
// trusted. The caller is responsible for matching the snapshot's
// calibration fingerprint to the target device — plan keys fold the
// calibration in, so entries restored onto the wrong device would
// simply never be hit, but rejecting the mismatch upstream keeps
// snapshots honest.
func PreparePlans(entries []PlanState) (PreparedPlans, error) {
	infos, err := buildPlanEntries(entries)
	return PreparedPlans{entries: infos}, err
}

// RestorePlans applies a prepared plan section, preserving the
// snapshot's recency order (cannot fail: validation happened in
// PreparePlans).
func (d *Device) RestorePlans(p PreparedPlans) {
	d.byPrint.Restore(p.entries)
}

func buildPlanEntries(entries []PlanState) ([]lru.Entry[uint64, *planInfo], error) {
	infos := make([]lru.Entry[uint64, *planInfo], 0, len(entries))
	for i, ps := range entries {
		if len(ps.BaseMs) != len(ps.RowTmpl) {
			return nil, fmt.Errorf("device: plan entry %d: %d kernels but %d row groups", i, len(ps.BaseMs), len(ps.RowTmpl))
		}
		info := &planInfo{
			key:     ps.Key,
			baseMs:  append([]float64(nil), ps.BaseMs...),
			rowTmpl: make([][]profRow, len(ps.RowTmpl)),
		}
		for ki, rows := range ps.RowTmpl {
			if len(rows) == 0 {
				return nil, fmt.Errorf("device: plan entry %d: kernel %d has no rows", i, ki)
			}
			tmpl := make([]profRow, len(rows))
			for ri, r := range rows {
				if !isFinite(r.Share) || r.Share < 0 {
					return nil, fmt.Errorf("device: plan entry %d: kernel %d row %d: bad MAC share %v", i, ki, ri, r.Share)
				}
				tmpl[ri] = profRow{nodeID: r.NodeID, name: r.Name, kind: graph.OpKind(r.Kind), share: r.Share}
			}
			info.rowTmpl[ki] = tmpl
			info.rows += len(rows)
		}
		for ki, b := range info.baseMs {
			if !isFinite(b) || b < 0 {
				return nil, fmt.Errorf("device: plan entry %d: kernel %d: bad steady-state time %v", i, ki, b)
			}
			info.steadyMs += b
		}
		infos = append(infos, lru.Entry[uint64, *planInfo]{Key: ps.Key, Val: info})
	}
	return infos, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
