package device

import (
	"math"
	"math/rand"
	"sync"

	"netcut/internal/graph"
	"netcut/internal/lru"
	"netcut/internal/telemetry"
)

// Device is a simulated embedded GPU. It memoizes the fused execution
// plan and steady-state kernel times of every graph it sees, the way a
// deployed engine caches compiled engines: repeated latency queries and
// session opens on the same network cost a cache hit, not a re-plan.
// The cache is two-level — by (weak) graph pointer for O(1) repeats
// that never outlive the graph, by structural fingerprint so
// independently built copies of the same network (e.g. a TRN re-cut by
// two explorations) share one plan. The fingerprint level is a bounded
// LRU (DefaultPlanCacheCap), so a service planning a stream of
// arbitrary user graphs runs in constant memory; plans are pure
// functions of (config, structure), so eviction is transparent.
type Device struct {
	cfg     Config
	print   uint64   // cfg.Fingerprint(), folded into every plan key
	byPtr   sync.Map // weak.Pointer[graph.Graph] -> *planInfo, self-evicting
	byPrint *lru.Cache[uint64, *planInfo]
}

// DefaultPlanCacheCap bounds the fingerprint-keyed plan cache. It
// comfortably covers the paper pipeline's working set (7 networks, 148
// blockwise TRNs, a few hundred exhaustive cuts) while capping what a
// stream of distinct user graphs can pin.
const DefaultPlanCacheCap = 4096

// New returns a Device for the given configuration. Configurations are
// static calibration tables, so an invalid one panics rather than
// returning an error through every measurement call. Service
// boundaries that accept device profiles as configuration input use
// NewChecked instead, so a bad profile is a structured startup error
// rather than a crash.
func New(cfg Config) *Device {
	d, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// NewChecked is New with the validation failure returned instead of
// panicking — the constructor for the planner/gateway paths, where a
// device profile arrives from flags or config rather than a calibrated
// table compiled into the binary.
func NewChecked(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		cfg:     cfg,
		print:   cfg.Fingerprint(),
		byPrint: lru.New[uint64, *planInfo](DefaultPlanCacheCap),
	}, nil
}

// Fingerprint returns the calibration identity of this device
// (Config.Fingerprint, computed once at construction).
func (d *Device) Fingerprint() uint64 { return d.print }

// SetPlanCacheCap re-bounds the fingerprint-keyed plan cache, evicting
// least-recently-used plans if needed. cap <= 0 means unbounded.
func (d *Device) SetPlanCacheCap(cap int) { d.byPrint.Resize(cap) }

// Instrument registers the kernel-plan cache's hit/miss/eviction/
// occupancy series on reg under the netcut_device_plans prefix, with a
// device label carrying the calibration name so a multi-target pool's
// caches stay distinguishable on one scrape surface.
func (d *Device) Instrument(reg *telemetry.Registry) {
	lru.InstrumentWith(reg, "netcut_device_plans",
		[]telemetry.Label{{Key: "device", Value: d.cfg.Name}}, d.byPrint)
}

// PlanCacheStats reports the plan cache's size and hit counters.
func (d *Device) PlanCacheStats() lru.Stats { return d.byPrint.Stats() }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// throughput returns the sustained MAC/s for a kernel, combining the
// precision mode, the kernel-class efficiency and the channel ramp.
func (c *Config) throughput(k *Kernel) float64 {
	peak := c.PeakMACs
	switch c.Precision {
	case INT8:
		peak *= c.INT8Speedup
	case FP32:
		peak /= c.FP32Slowdown
	}
	var eff float64
	switch k.Kind {
	case graph.OpConv:
		eff = c.ConvEff
	case graph.OpDWConv:
		eff = c.DWEff
	case graph.OpDense:
		eff = c.DenseEff
	case graph.OpMaxPool, graph.OpAvgPool, graph.OpGlobalAvgPool:
		eff = c.PoolEff
	default:
		eff = c.EltwEff
	}
	ch := float64(k.OutChannels)
	ramp := ch / (ch + c.ChannelKnee)
	return peak * eff * ramp
}

// KernelTimeMs returns the noise-free steady-state latency of one kernel
// in milliseconds: launch overhead plus the roofline maximum of compute
// and memory time.
func (d *Device) KernelTimeMs(k *Kernel) float64 {
	c := &d.cfg
	computeS := 0.0
	if k.MACs > 0 {
		computeS = float64(k.MACs) / c.throughput(k)
	}
	bytes := (float64(k.WeightBytes) + float64(k.IOBytes)) * c.Precision.bytesPerElem()
	memS := bytes / c.MemBandwidth
	return c.LaunchOverheadMs + 1e3*math.Max(computeS, memS)
}

// LatencyMs returns the noise-free steady-state end-to-end inference
// latency of g in milliseconds. After the first query for a graph this
// is a cache lookup.
func (d *Device) LatencyMs(g *graph.Graph) float64 {
	return d.plan(g).steadyMs
}

// Session is an open execution context for one network on the device.
// It tracks warm-up state and yields noisy per-run measurements, the way
// repeated timed inferences on real hardware do. The execution plan is
// shared, immutable cache state; only the run counter and noise stream
// are per-session.
type Session struct {
	dev  *Device
	g    *graph.Graph
	info *planInfo
	runs int
	rng  *rand.Rand
}

// Open prepares a session for g, reusing the device's memoized plan and
// steady-state kernel times. The seed makes the measurement-noise
// stream reproducible.
func (d *Device) Open(g *graph.Graph, seed int64) *Session {
	return &Session{
		dev:  d,
		g:    g,
		info: d.plan(g),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Graph returns the network this session executes.
func (s *Session) Graph() *graph.Graph { return s.g }

// Runs returns the number of inferences executed so far.
func (s *Session) Runs() int { return s.runs }

// coldFactor models the warm-up transient of run k.
func (s *Session) coldFactor() float64 {
	c := &s.dev.cfg
	if c.ColdPenalty == 0 {
		return 1
	}
	return 1 + c.ColdPenalty*math.Exp(-float64(s.runs)/c.ColdRuns)
}

// runNoise is the per-run global noise factor (clock and DVFS jitter
// affect all kernels of a run together); kernelNoise is the smaller
// independent per-kernel jitter.
func (s *Session) runNoise() float64 {
	return 1 + s.dev.cfg.NoiseSigma*s.rng.NormFloat64()
}

func (s *Session) kernelNoise() float64 {
	return 1 + 0.5*s.dev.cfg.NoiseSigma*s.rng.NormFloat64()
}

// InferMs executes one inference and returns its measured latency in
// milliseconds, including warm-up and noise effects.
func (s *Session) InferMs() float64 {
	cold := s.coldFactor()
	run := s.runNoise()
	s.runs++
	total := 0.0
	for _, b := range s.info.baseMs {
		total += b * s.kernelNoise()
	}
	return total * run * cold
}

// LayerTimeMs is one row of a per-layer profiling table.
type LayerTimeMs struct {
	NodeID int
	Name   string
	Kind   graph.OpKind
	Ms     float64
}

// InferProfiledMs executes one inference with per-layer event recording,
// returning a per-layer latency table and the end-to-end latency the
// run would have had without events. Kernel time is attributed to its
// fused layers proportionally to their MAC share (precomputed once per
// plan, not per run), and each recorded layer pays the event overhead —
// which is why the table's sum slightly exceeds the end-to-end latency,
// the effect Eq. (1) divides away.
func (s *Session) InferProfiledMs() ([]LayerTimeMs, float64) {
	return s.InferProfiledInto(make([]LayerTimeMs, 0, s.info.rows))
}

// InferProfiledInto is InferProfiledMs appending into rows (which it
// returns re-sliced), so a measurement-protocol loop can reuse one
// buffer across its hundreds of runs. Pass rows[:0] to recycle.
func (s *Session) InferProfiledInto(rows []LayerTimeMs) ([]LayerTimeMs, float64) {
	cold := s.coldFactor()
	run := s.runNoise()
	s.runs++
	total := 0.0
	ev := s.dev.cfg.EventOverheadMs
	for ki, tmpl := range s.info.rowTmpl {
		t := s.info.baseMs[ki] * s.kernelNoise() * run * cold
		total += t
		for ri := range tmpl {
			r := &tmpl[ri]
			rows = append(rows, LayerTimeMs{
				NodeID: r.nodeID,
				Name:   r.name,
				Kind:   r.kind,
				Ms:     t*r.share + ev*(1+0.1*s.rng.NormFloat64()),
			})
		}
	}
	return rows, total
}
