package device

import "netcut/internal/graph"

// Kernel is one fused execution unit: a primary layer plus any
// elementwise layers folded into it.
type Kernel struct {
	Nodes []int // graph node IDs, primary first
	Kind  graph.OpKind
	// Aggregated accounting over fused nodes.
	MACs        int64
	WeightBytes int64 // element counts; scaled by precision at timing
	IOBytes     int64
	OutChannels int
}

// fusable reports whether kind can be folded into a preceding kernel.
func fusable(kind graph.OpKind) bool {
	switch kind {
	case graph.OpBatchNorm, graph.OpReLU, graph.OpReLU6, graph.OpDropout, graph.OpSoftmax:
		return true
	}
	return false
}

// fusionTarget reports whether a kernel of this kind can absorb trailing
// elementwise layers. Concat cannot: there are no producer weights to
// fold a BN into, so DenseNet's pre-activation BN/ReLU pairs start their
// own kernels.
func fusionTarget(kind graph.OpKind) bool {
	switch kind {
	case graph.OpConv, graph.OpDWConv, graph.OpDense, graph.OpAdd,
		graph.OpMaxPool, graph.OpAvgPool, graph.OpGlobalAvgPool,
		graph.OpBatchNorm, graph.OpReLU, graph.OpReLU6:
		return true
	}
	return false
}

// Plan runs the fusion pass over g and returns the kernel sequence in
// topological order. With fusion disabled every non-input node is its
// own kernel.
//
// Fusion rule: a BN / activation / dropout / softmax node is folded into
// the kernel that produced its (sole) input, provided that kernel's last
// node is that producer — i.e. only straight-line suffixes fuse, the way
// deployment engines fold BN and activations into the preceding conv.
// A BN following a concat therefore starts its own kernel, which is what
// makes DenseNet's pre-activation design expensive on-device.
func (c *Config) Plan(g *graph.Graph) []Kernel {
	var kernels []Kernel
	// nodeKernel[id] is the index of the kernel that computes node id.
	nodeKernel := make([]int, len(g.Nodes))
	for i := range nodeKernel {
		nodeKernel[i] = -1
	}

	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			continue
		}
		if c.Fusion && fusable(n.Kind) && len(n.Inputs) == 1 {
			prod := n.Inputs[0]
			ki := nodeKernel[prod]
			if ki >= 0 && fusionTarget(kernels[ki].Kind) {
				k := &kernels[ki]
				if k.Nodes[len(k.Nodes)-1] == prod {
					// Fold into the producing kernel. Fused elementwise
					// work is free compute-wise (done in registers) but
					// keeps its weight traffic (BN parameters).
					k.Nodes = append(k.Nodes, n.ID)
					k.WeightBytes += n.WeightBytes
					nodeKernel[n.ID] = ki
					continue
				}
			}
		}
		kernels = append(kernels, Kernel{
			Nodes:       []int{n.ID},
			Kind:        n.Kind,
			MACs:        n.MACs,
			WeightBytes: n.WeightBytes,
			IOBytes:     n.IOBytes,
			OutChannels: n.Out.C,
		})
		nodeKernel[n.ID] = len(kernels) - 1
	}
	return kernels
}
