package hands

import (
	"math"
	"testing"
)

func TestGenerateBasics(t *testing.T) {
	ds := Generate(Config{N: 50, Size: 16, Seed: 1})
	if ds.Len() != 50 {
		t.Fatalf("Len = %d", ds.Len())
	}
	img, lbl := ds.Example(0)
	if img.H != 16 || img.W != 16 || img.C != 1 || img.N != 1 {
		t.Fatalf("image shape %s", img.ShapeString())
	}
	if len(lbl) != NumGrasps {
		t.Fatalf("label has %d classes", len(lbl))
	}
}

func TestLabelsAreNormalizedSoftAndPeaked(t *testing.T) {
	ds := Generate(Config{N: 100, Seed: 2})
	for i := 0; i < ds.Len(); i++ {
		_, lbl := ds.Example(i)
		var sum, maxV float64
		argmax := -1
		nonzero := 0
		for g, v := range lbl {
			if v < 0 {
				t.Fatalf("label %d has negative mass", i)
			}
			if v > 0 {
				nonzero++
			}
			sum += v
			if v > maxV {
				maxV, argmax = v, g
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("label %d sums to %v", i, sum)
		}
		if argmax != i%NumGrasps {
			t.Fatalf("label %d argmax %d, want %d", i, argmax, i%NumGrasps)
		}
		if nonzero < 2 {
			t.Fatalf("label %d is one-hot; HANDS labels are probabilistic", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{N: 20, Seed: 7})
	b := Generate(Config{N: 20, Seed: 7})
	for i := 0; i < 20; i++ {
		ia, la := a.Example(i)
		ib, lb := b.Example(i)
		for j := range ia.Data {
			if ia.Data[j] != ib.Data[j] {
				t.Fatal("images differ across same-seed generations")
			}
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatal("labels differ across same-seed generations")
			}
		}
	}
	c := Generate(Config{N: 20, Seed: 8})
	ic, _ := c.Example(0)
	ia, _ := a.Example(0)
	same := true
	for j := range ia.Data {
		if ia.Data[j] != ic.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

// TestClassesAreSeparable checks the synthetic task is learnable: a
// nearest-centroid classifier in pixel space beats chance comfortably.
func TestClassesAreSeparable(t *testing.T) {
	train := Generate(Config{N: 200, Seed: 3})
	test := Generate(Config{N: 100, Seed: 4})
	dim := 16 * 16
	centroids := make([][]float64, NumGrasps)
	counts := make([]int, NumGrasps)
	for g := range centroids {
		centroids[g] = make([]float64, dim)
	}
	for i := 0; i < train.Len(); i++ {
		img, _ := train.Example(i)
		g := i % NumGrasps
		for j, v := range img.Data {
			centroids[g][j] += v
		}
		counts[g]++
	}
	for g := range centroids {
		for j := range centroids[g] {
			centroids[g][j] /= float64(counts[g])
		}
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		img, _ := test.Example(i)
		best, bestD := -1, math.Inf(1)
		for g := range centroids {
			var d float64
			for j, v := range img.Data {
				dd := v - centroids[g][j]
				d += dd * dd
			}
			if d < bestD {
				bestD, best = d, g
			}
		}
		if best == i%NumGrasps {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.6 {
		t.Fatalf("nearest-centroid accuracy %.2f; classes not separable enough", acc)
	}
}

func TestPretrainDataset(t *testing.T) {
	ds := GeneratePretrain(Config{N: 64, Seed: 5})
	if ds.Len() != 64 {
		t.Fatalf("Len = %d", ds.Len())
	}
	_, lbl := ds.Example(3)
	if len(lbl) != PretrainClasses {
		t.Fatalf("pretrain label has %d classes, want %d", len(lbl), PretrainClasses)
	}
	var sum float64
	for _, v := range lbl {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pretrain label sums to %v", sum)
	}
}

func TestSplitAndCalibration(t *testing.T) {
	ds := Generate(Config{N: 100, Seed: 6})
	train, val := Split(ds, 0.8, 1)
	if train.Len() != 80 || val.Len() != 20 {
		t.Fatalf("split = %d/%d", train.Len(), val.Len())
	}
	cal := CalibrationSet(train, 2)
	if cal.Len() != 16 {
		t.Fatalf("calibration set = %d, want the 16-example floor over 10%% of 80", cal.Len())
	}
	big := Generate(Config{N: 400, Seed: 7})
	if CalibrationSet(big, 1).Len() != 40 {
		t.Fatalf("calibration of 400 = %d, want 10%%", CalibrationSet(big, 1).Len())
	}
	tiny := Generate(Config{N: 5, Seed: 6})
	if CalibrationSet(tiny, 1).Len() != 5 {
		t.Fatal("calibration of a tiny set should keep the whole set")
	}
}

func TestSoftLabelWeightControlsSoftness(t *testing.T) {
	hard := Generate(Config{N: 10, Seed: 9, SoftLabelWeight: -1})
	_, lbl := hard.Example(0)
	var nonzero int
	for _, v := range lbl {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("hard labels requested but got %d nonzero entries", nonzero)
	}
}
