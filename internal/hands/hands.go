// Package hands generates a synthetic stand-in for the HANDS dataset
// (Han et al., 2020; substitution S3/S4 in DESIGN.md): images of
// graspable-object silhouettes from a palm-camera-like viewpoint with
// probabilistic labels over the five grasp types of Sec. III-B2 —
// Open Palm, Medium Wrap, Power Sphere, Parallel Extension and Palmar
// Pinch. Labels are soft because many objects admit several grasps with
// different preference, which is exactly why the paper's accuracy
// metric is angular similarity rather than top-1.
package hands

import (
	"fmt"
	"math"
	"math/rand"

	"netcut/internal/tensor"
)

// Grasp indices.
const (
	OpenPalm = iota
	MediumWrap
	PowerSphere
	ParallelExtension
	PalmarPinch
	NumGrasps
)

// GraspNames lists the five grasp types in index order.
var GraspNames = [NumGrasps]string{
	"Open Palm", "Medium Wrap", "Power Sphere", "Parallel Extension", "Palmar Pinch",
}

// compat encodes how plausible grasp g2 is for an object whose primary
// grasp is g1; it shapes the probabilistic labels.
var compat = [NumGrasps][NumGrasps]float64{
	OpenPalm:          {1, 0.10, 0.05, 0.35, 0.05},
	MediumWrap:        {0.05, 1, 0.30, 0.10, 0.10},
	PowerSphere:       {0.05, 0.30, 1, 0.05, 0.20},
	ParallelExtension: {0.30, 0.10, 0.05, 1, 0.15},
	PalmarPinch:       {0.05, 0.10, 0.25, 0.10, 1},
}

// Config parameterizes dataset generation.
type Config struct {
	N          int     // examples
	Size       int     // square image side
	Seed       int64   //
	NoiseSigma float64 // additive pixel noise
	// SoftLabelWeight scales the off-primary label mass; 0 defaults to
	// 0.5 (clearly soft labels), negative disables softness entirely.
	SoftLabelWeight float64
}

func (c *Config) fill() {
	if c.N == 0 {
		c.N = 256
	}
	if c.Size == 0 {
		c.Size = 16
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.05
	}
	if c.SoftLabelWeight == 0 {
		c.SoftLabelWeight = 0.5
	}
	if c.SoftLabelWeight < 0 {
		c.SoftLabelWeight = 0
	}
}

// Dataset is an in-memory image/soft-label collection satisfying
// nn.Dataset.
type Dataset struct {
	images []*tensor.Tensor
	labels [][]float64
}

// Len implements nn.Dataset.
func (d *Dataset) Len() int { return len(d.images) }

// Example implements nn.Dataset.
func (d *Dataset) Example(i int) (*tensor.Tensor, []float64) {
	return d.images[i], d.labels[i]
}

// Append adds an example (used by composition helpers).
func (d *Dataset) Append(img *tensor.Tensor, label []float64) {
	d.images = append(d.images, img)
	d.labels = append(d.labels, label)
}

// Generate renders a synthetic grasp dataset.
func Generate(cfg Config) *Dataset {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{}
	for i := 0; i < cfg.N; i++ {
		grasp := i % NumGrasps
		img := renderGrasp(rng, cfg, grasp)
		ds.Append(img, softLabel(rng, grasp, cfg.SoftLabelWeight))
	}
	return ds
}

// softLabel builds the probabilistic grasp label: compatibility prior
// plus preference noise, normalized.
func softLabel(rng *rand.Rand, grasp int, weight float64) []float64 {
	l := make([]float64, NumGrasps)
	var sum float64
	for g := 0; g < NumGrasps; g++ {
		v := compat[grasp][g]
		if g != grasp {
			v *= weight
			v *= 0.7 + 0.6*rng.Float64() // preference noise
		}
		l[g] = v
		sum += v
	}
	for g := range l {
		l[g] /= sum
	}
	return l
}

// renderGrasp draws the object silhouette class associated with a grasp.
func renderGrasp(rng *rand.Rand, cfg Config, grasp int) *tensor.Tensor {
	img := tensor.New(1, cfg.Size, cfg.Size, 1)
	s := float64(cfg.Size)
	cx := s/2 + rng.NormFloat64()*s/12
	cy := s/2 + rng.NormFloat64()*s/12
	scale := 0.8 + 0.4*rng.Float64()
	intensity := 0.7 + 0.3*rng.Float64()

	switch grasp {
	case OpenPalm: // large flat plate
		drawRect(img, cx, cy, 0.38*s*scale, 0.30*s*scale, intensity)
	case MediumWrap: // thick vertical cylinder
		drawRect(img, cx, cy, 0.10*s*scale, 0.40*s*scale, intensity)
	case PowerSphere: // ball
		drawCircle(img, cx, cy, 0.22*s*scale, intensity)
	case ParallelExtension: // two thin parallel slabs
		off := 0.12 * s * scale
		drawRect(img, cx, cy-off, 0.32*s*scale, 0.05*s*scale, intensity)
		drawRect(img, cx, cy+off, 0.32*s*scale, 0.05*s*scale, intensity)
	case PalmarPinch: // small object
		drawCircle(img, cx, cy, 0.08*s*scale, intensity)
	default:
		panic(fmt.Sprintf("hands: unknown grasp %d", grasp))
	}
	addNoise(rng, img, cfg.NoiseSigma)
	return img
}

// PretrainClasses is the class count of the pretraining stand-in task
// (the "ImageNet" of the miniature pipeline): a richer shape vocabulary
// than the grasp task, so early layers learn generic edge/blob features.
const PretrainClasses = 8

// GeneratePretrain renders the pretraining task: 8 shape classes with
// lightly smoothed labels.
func GeneratePretrain(cfg Config) *Dataset {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{}
	for i := 0; i < cfg.N; i++ {
		class := i % PretrainClasses
		img := renderPretrain(rng, cfg, class)
		label := make([]float64, PretrainClasses)
		for j := range label {
			label[j] = 0.02 / float64(PretrainClasses-1)
		}
		label[class] = 0.98
		ds.Append(img, label)
	}
	return ds
}

func renderPretrain(rng *rand.Rand, cfg Config, class int) *tensor.Tensor {
	img := tensor.New(1, cfg.Size, cfg.Size, 1)
	s := float64(cfg.Size)
	cx := s/2 + rng.NormFloat64()*s/12
	cy := s/2 + rng.NormFloat64()*s/12
	scale := 0.8 + 0.4*rng.Float64()
	in := 0.7 + 0.3*rng.Float64()
	switch class {
	case 0:
		drawRect(img, cx, cy, 0.30*s*scale, 0.30*s*scale, in) // square
	case 1:
		drawCircle(img, cx, cy, 0.20*s*scale, in) // disc
	case 2:
		drawRect(img, cx, cy, 0.08*s*scale, 0.38*s*scale, in) // vertical bar
	case 3:
		drawRect(img, cx, cy, 0.38*s*scale, 0.08*s*scale, in) // horizontal bar
	case 4: // cross
		drawRect(img, cx, cy, 0.08*s*scale, 0.36*s*scale, in)
		drawRect(img, cx, cy, 0.36*s*scale, 0.08*s*scale, in)
	case 5: // ring
		drawCircle(img, cx, cy, 0.22*s*scale, in)
		drawCircle(img, cx, cy, 0.12*s*scale, -in)
	case 6:
		drawCircle(img, cx, cy, 0.07*s*scale, in) // dot
	case 7: // two dots
		off := 0.15 * s * scale
		drawCircle(img, cx-off, cy, 0.08*s*scale, in)
		drawCircle(img, cx+off, cy, 0.08*s*scale, in)
	default:
		panic(fmt.Sprintf("hands: unknown pretrain class %d", class))
	}
	addNoise(rng, img, cfg.NoiseSigma)
	return img
}

func drawRect(img *tensor.Tensor, cx, cy, halfW, halfH, v float64) {
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if math.Abs(float64(x)-cx) <= halfW && math.Abs(float64(y)-cy) <= halfH {
				img.Add(0, y, x, 0, v)
			}
		}
	}
	clampImage(img)
}

func drawCircle(img *tensor.Tensor, cx, cy, r, v float64) {
	r2 := r * r
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			if dx*dx+dy*dy <= r2 {
				img.Add(0, y, x, 0, v)
			}
		}
	}
	clampImage(img)
}

func clampImage(img *tensor.Tensor) {
	for i, v := range img.Data {
		if v < 0 {
			img.Data[i] = 0
		} else if v > 1 {
			img.Data[i] = 1
		}
	}
}

func addNoise(rng *rand.Rand, img *tensor.Tensor, sigma float64) {
	for i := range img.Data {
		img.Data[i] += rng.NormFloat64() * sigma
	}
}

// Split partitions the dataset into train and validation subsets.
func Split(d *Dataset, trainFrac float64, seed int64) (train, val *Dataset) {
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())
	nTrain := int(float64(d.Len()) * trainFrac)
	train, val = &Dataset{}, &Dataset{}
	for i, id := range idx {
		img, lbl := d.Example(id)
		if i < nTrain {
			train.Append(img, lbl)
		} else {
			val.Append(img, lbl)
		}
	}
	return train, val
}

// CalibrationSet returns the random 10% of a training set used for
// post-training quantization calibration (Sec. III-B4). At miniature
// dataset sizes a bare 10% starves the activation observers, so the
// subset keeps at least 16 examples (or the whole set if smaller) —
// at paper scale the floor never triggers.
func CalibrationSet(train *Dataset, seed int64) *Dataset {
	idx := rand.New(rand.NewSource(seed)).Perm(train.Len())
	n := train.Len() / 10
	if n < 16 {
		n = 16
	}
	if n > train.Len() {
		n = train.Len()
	}
	out := &Dataset{}
	for _, id := range idx[:n] {
		img, lbl := train.Example(id)
		out.Append(img, lbl)
	}
	return out
}
