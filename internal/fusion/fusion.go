// Package fusion combines the probability outputs of the EMG and visual
// classifiers into the robot's final grasp decision (Sec. III-A). Both
// classifiers deliberately emit probability distributions rather than
// one-hot classes so that log-linear pooling (a weighted product of
// experts) can weigh them; decisions accumulate over several frames,
// which "adds reliability ... which further tightens the deadline".
package fusion

import (
	"fmt"
	"math"

	"netcut/internal/metric"
)

// Fuse combines distributions by weighted log-linear pooling and
// normalizes. Weights reflect classifier reliability; they need not sum
// to one.
func Fuse(dists [][]float64, weights []float64) ([]float64, error) {
	if len(dists) == 0 {
		return nil, fmt.Errorf("fusion: nothing to fuse")
	}
	if len(weights) != len(dists) {
		return nil, fmt.Errorf("fusion: %d distributions but %d weights", len(dists), len(weights))
	}
	n := len(dists[0])
	logp := make([]float64, n)
	for i, d := range dists {
		if len(d) != n {
			return nil, fmt.Errorf("fusion: distribution %d has %d classes, want %d", i, len(d), n)
		}
		for c, v := range d {
			logp[c] += weights[i] * math.Log(math.Max(v, 1e-12))
		}
	}
	out := make([]float64, n)
	maxL := logp[0]
	for _, v := range logp {
		if v > maxL {
			maxL = v
		}
	}
	var sum float64
	for c, v := range logp {
		out[c] = math.Exp(v - maxL)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out, nil
}

// Accumulator fuses a stream of predictions over time (the several
// predictions prior to the final decision).
type Accumulator struct {
	logp []float64
	n    int
}

// NewAccumulator returns an accumulator over the given class count.
func NewAccumulator(classes int) *Accumulator {
	return &Accumulator{logp: make([]float64, classes)}
}

// Add folds one prediction in with the given weight.
func (a *Accumulator) Add(dist []float64, weight float64) error {
	if len(dist) != len(a.logp) {
		return fmt.Errorf("fusion: prediction has %d classes, want %d", len(dist), len(a.logp))
	}
	for c, v := range dist {
		a.logp[c] += weight * math.Log(math.Max(v, 1e-12))
	}
	a.n++
	return nil
}

// Count returns the number of predictions accumulated.
func (a *Accumulator) Count() int { return a.n }

// Distribution returns the current fused distribution (uniform before
// any prediction arrives).
func (a *Accumulator) Distribution() []float64 {
	out := make([]float64, len(a.logp))
	if a.n == 0 {
		for c := range out {
			out[c] = 1 / float64(len(out))
		}
		return out
	}
	maxL := a.logp[0]
	for _, v := range a.logp {
		if v > maxL {
			maxL = v
		}
	}
	var sum float64
	for c, v := range a.logp {
		out[c] = math.Exp(v - maxL)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// Decide returns the argmax class if its fused probability clears the
// threshold, and whether the decision fired.
func (a *Accumulator) Decide(threshold float64) (int, bool) {
	d := a.Distribution()
	best, bestP := 0, d[0]
	for c, p := range d {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best, bestP >= threshold && a.n > 0
}

// Reset clears the accumulated evidence for the next reach event.
func (a *Accumulator) Reset() {
	for c := range a.logp {
		a.logp[c] = 0
	}
	a.n = 0
}

// Similarity scores a fused distribution against a probabilistic label
// by angular similarity — the system accuracy metric.
func Similarity(fused, label []float64) float64 {
	return metric.AngularSimilarity(fused, label)
}
