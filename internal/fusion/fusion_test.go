package fusion

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFuseAgreementSharpens(t *testing.T) {
	a := []float64{0.6, 0.2, 0.2}
	b := []float64{0.7, 0.2, 0.1}
	f, err := Fuse([][]float64{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if f[0] <= a[0] || f[0] <= b[0] {
		t.Fatalf("agreeing experts did not sharpen: %v", f)
	}
	var sum float64
	for _, v := range f {
		sum += v
	}
	if !almost(sum, 1) {
		t.Fatalf("fused sums to %v", sum)
	}
}

func TestFuseWeightZeroIgnoresExpert(t *testing.T) {
	a := []float64{0.6, 0.2, 0.2}
	junk := []float64{0.01, 0.01, 0.98}
	f, err := Fuse([][]float64{a, junk}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !almost(f[i], a[i]) {
			t.Fatalf("zero-weight expert influenced fusion: %v vs %v", f, a)
		}
	}
}

func TestFuseErrors(t *testing.T) {
	if _, err := Fuse(nil, nil); err == nil {
		t.Fatal("empty fusion accepted")
	}
	if _, err := Fuse([][]float64{{0.5, 0.5}}, []float64{1, 2}); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if _, err := Fuse([][]float64{{0.5, 0.5}, {1}}, []float64{1, 1}); err == nil {
		t.Fatal("ragged distributions accepted")
	}
}

func TestAccumulatorDecision(t *testing.T) {
	acc := NewAccumulator(3)
	if _, ok := acc.Decide(0.5); ok {
		t.Fatal("decision before any evidence")
	}
	d := acc.Distribution()
	if !almost(d[0], 1.0/3) {
		t.Fatalf("prior not uniform: %v", d)
	}
	ev := []float64{0.7, 0.2, 0.1}
	for i := 0; i < 5; i++ {
		if err := acc.Add(ev, 1); err != nil {
			t.Fatal(err)
		}
	}
	cls, ok := acc.Decide(0.9)
	if !ok || cls != 0 {
		t.Fatalf("confident evidence did not decide: %v %v (dist %v)", cls, ok, acc.Distribution())
	}
	if acc.Count() != 5 {
		t.Fatalf("Count = %d", acc.Count())
	}
	acc.Reset()
	if acc.Count() != 0 {
		t.Fatal("Reset did not clear count")
	}
	if _, ok := acc.Decide(0.5); ok {
		t.Fatal("decision after reset")
	}
}

func TestAccumulatorMismatch(t *testing.T) {
	acc := NewAccumulator(3)
	if err := acc.Add([]float64{0.5, 0.5}, 1); err == nil {
		t.Fatal("class-count mismatch accepted")
	}
}

// Property: fusing any set of valid distributions yields a valid
// distribution, and equal single-expert fusion is idempotent.
func TestFuseProperties(t *testing.T) {
	f := func(raw [4]uint8) bool {
		d := make([]float64, 4)
		var sum float64
		for i, v := range raw {
			d[i] = float64(v) + 1
			sum += d[i]
		}
		for i := range d {
			d[i] /= sum
		}
		out, err := Fuse([][]float64{d}, []float64{1})
		if err != nil {
			return false
		}
		var osum float64
		for i := range out {
			if math.Abs(out[i]-d[i]) > 1e-9 {
				return false
			}
			osum += out[i]
		}
		return math.Abs(osum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarity(t *testing.T) {
	if s := Similarity([]float64{1, 0}, []float64{1, 0}); !almost(s, 1) {
		t.Fatalf("self similarity %v", s)
	}
}
