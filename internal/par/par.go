// Package par provides the bounded worker-pool primitives the
// measurement pipeline fans out with.
//
// The pipeline's determinism contract (see doc.go at the repo root)
// requires that parallel execution change only wall-clock time, never
// results. Every fan-out in this codebase therefore writes into a slot
// indexed by task position and derives any randomness from a per-task
// seed, so ForEach can schedule tasks in any order on any number of
// workers and the assembled output is byte-identical to a serial run.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers returns the fan-out width: GOMAXPROCS, floored at 1.
func Workers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// TaskPanic wraps a panic raised inside a ForEach task. Pool
// goroutines capture task panics and ForEach re-raises the
// lowest-index one on the caller's goroutine, so a fault anywhere in a
// fan-out unwinds through the caller — where serving layers install
// their recover() containment — instead of killing the process from an
// anonymous worker goroutine. Value is the original panic value and
// Stack the panicking task's stack, preserved because re-panicking
// happens on a different goroutine.
type TaskPanic struct {
	Index int
	Value any
	Stack []byte
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", p.Index, p.Value)
}

// Unwrap exposes the original panic value when it was an error, so
// handlers can errors.As through a TaskPanic.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// run executes one task, converting a panic into its slot's TaskPanic.
// A value that is already a TaskPanic (a nested ForEach re-raise)
// passes through with its original index and stack intact.
func run(i int, fn func(i int) error, errs []error, panics []*TaskPanic) {
	defer func() {
		if r := recover(); r != nil {
			if tp, ok := r.(*TaskPanic); ok {
				panics[i] = tp
				return
			}
			panics[i] = &TaskPanic{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	errs[i] = fn(i)
}

// rethrow re-raises the lowest-index captured panic, if any. Running
// every task before re-panicking (rather than aborting at the first
// panic) keeps the side effects a caller observes identical across
// widths: the same slots written, the same lowest-index panic, whether
// the schedule was serial or parallel.
func rethrow(panics []*TaskPanic) {
	for _, tp := range panics {
		if tp != nil {
			panic(tp)
		}
	}
}

// ForEach runs fn(0), ..., fn(n-1) across min(Workers(), n) goroutines
// and blocks until every call has returned. Tasks are handed out by an
// atomic counter, so callers must make fn(i) write only into its own
// index-i slot (or otherwise synchronize).
//
// If any calls fail, the error of the lowest failing index is returned,
// so error reporting is as deterministic as the results themselves.
// A task that panics does not kill the process from a pool goroutine:
// every task still runs, then the lowest-index panic is re-raised on
// the caller's goroutine wrapped in *TaskPanic — the same panic a
// serial execution of the tasks would surface — so callers' recover()
// boundaries see fan-out faults exactly like inline ones.
func ForEach(n int, fn func(i int) error) error {
	w := Workers()
	if w > n {
		w = n
	}
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	panics := make([]*TaskPanic, n)
	if w <= 1 {
		// Serial fast path. Like the parallel path it runs every task,
		// so a caller observes the same slots written, the same
		// lowest-index error and the same lowest-index panic regardless
		// of width.
		for i := 0; i < n; i++ {
			run(i, fn, errs, panics)
		}
		rethrow(panics)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i, fn, errs, panics)
			}
		}()
	}
	wg.Wait()
	rethrow(panics)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
