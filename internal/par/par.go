// Package par provides the bounded worker-pool primitives the
// measurement pipeline fans out with.
//
// The pipeline's determinism contract (see doc.go at the repo root)
// requires that parallel execution change only wall-clock time, never
// results. Every fan-out in this codebase therefore writes into a slot
// indexed by task position and derives any randomness from a per-task
// seed, so ForEach can schedule tasks in any order on any number of
// workers and the assembled output is byte-identical to a serial run.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the fan-out width: GOMAXPROCS, floored at 1.
func Workers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// ForEach runs fn(0), ..., fn(n-1) across min(Workers(), n) goroutines
// and blocks until every call has returned. Tasks are handed out by an
// atomic counter, so callers must make fn(i) write only into its own
// index-i slot (or otherwise synchronize).
//
// If any calls fail, the error of the lowest failing index is returned,
// so error reporting is as deterministic as the results themselves.
func ForEach(n int, fn func(i int) error) error {
	w := Workers()
	if w > n {
		w = n
	}
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if w <= 1 {
		// Serial fast path. Like the parallel path it runs every task,
		// so a caller observes the same slots written and the same
		// lowest-index error regardless of width.
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
