package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		hits := make([]int32, n)
		if err := ForEach(n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantErr := func(i int) error { return fmt.Errorf("task %d failed", i) }
	err := ForEach(64, func(i int) error {
		if i == 3 || i == 40 {
			return wantErr(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

func TestForEachSerialWidthMatchesParallel(t *testing.T) {
	// The determinism contract: results and the reported error must not
	// depend on GOMAXPROCS.
	run := func() ([]int, error) {
		out := make([]int, 50)
		err := ForEach(50, func(i int) error {
			out[i] = i * i
			if i == 17 {
				return errors.New("boom")
			}
			return nil
		})
		return out, err
	}
	prev := runtime.GOMAXPROCS(1)
	serial, serialErr := run()
	runtime.GOMAXPROCS(4)
	parallel, parallelErr := run()
	runtime.GOMAXPROCS(prev)
	if (serialErr == nil) != (parallelErr == nil) {
		t.Fatalf("error mismatch: %v vs %v", serialErr, parallelErr)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: %d vs %d", i, serial[i], parallel[i])
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
