package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		hits := make([]int32, n)
		if err := ForEach(n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantErr := func(i int) error { return fmt.Errorf("task %d failed", i) }
	err := ForEach(64, func(i int) error {
		if i == 3 || i == 40 {
			return wantErr(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

func TestForEachSerialWidthMatchesParallel(t *testing.T) {
	// The determinism contract: results and the reported error must not
	// depend on GOMAXPROCS.
	run := func() ([]int, error) {
		out := make([]int, 50)
		err := ForEach(50, func(i int) error {
			out[i] = i * i
			if i == 17 {
				return errors.New("boom")
			}
			return nil
		})
		return out, err
	}
	prev := runtime.GOMAXPROCS(1)
	serial, serialErr := run()
	runtime.GOMAXPROCS(4)
	parallel, parallelErr := run()
	runtime.GOMAXPROCS(prev)
	if (serialErr == nil) != (parallelErr == nil) {
		t.Fatalf("error mismatch: %v vs %v", serialErr, parallelErr)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: %d vs %d", i, serial[i], parallel[i])
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

// TestForEachPanicRethrownOnCaller pins the fault-containment
// contract: a panic inside any task — on any width — unwinds through
// ForEach's caller wrapped in *TaskPanic, every task still runs, and
// the lowest panicking index wins, identically for serial and parallel
// schedules.
func TestForEachPanicRethrownOnCaller(t *testing.T) {
	run := func() (out []int, tp *TaskPanic) {
		out = make([]int, 50)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate out of ForEach")
			}
			var ok bool
			if tp, ok = r.(*TaskPanic); !ok {
				t.Fatalf("recovered %T, want *TaskPanic", r)
			}
		}()
		ForEach(50, func(i int) error {
			out[i] = i * i
			if i == 13 || i == 31 {
				panic(fmt.Sprintf("boom-%d", i))
			}
			return nil
		})
		return out, nil
	}
	prev := runtime.GOMAXPROCS(1)
	serialOut, serialTP := run()
	runtime.GOMAXPROCS(4)
	parallelOut, parallelTP := run()
	runtime.GOMAXPROCS(prev)

	for _, tp := range []*TaskPanic{serialTP, parallelTP} {
		if tp.Index != 13 || tp.Value != "boom-13" {
			t.Fatalf("TaskPanic{Index: %d, Value: %v}, want index 13", tp.Index, tp.Value)
		}
		if len(tp.Stack) == 0 {
			t.Fatal("TaskPanic carries no stack")
		}
	}
	// Every task ran before the re-panic, on both widths.
	for i := range serialOut {
		if serialOut[i] != i*i || parallelOut[i] != i*i {
			t.Fatalf("slot %d not executed: serial %d parallel %d", i, serialOut[i], parallelOut[i])
		}
	}
}

// TestForEachNestedPanicKeepsOrigin pins that a TaskPanic crossing a
// nested ForEach keeps its original index and stack instead of being
// re-wrapped.
func TestForEachNestedPanicKeepsOrigin(t *testing.T) {
	defer func() {
		tp, ok := recover().(*TaskPanic)
		if !ok {
			t.Fatalf("want *TaskPanic")
		}
		if tp.Value != "inner" {
			t.Fatalf("nested panic value %v, want inner", tp.Value)
		}
	}()
	ForEach(2, func(i int) error {
		if i == 1 {
			ForEach(3, func(j int) error {
				if j == 2 {
					panic("inner")
				}
				return nil
			})
		}
		return nil
	})
	t.Fatal("nested panic did not propagate")
}
