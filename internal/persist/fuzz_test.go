package persist

import (
	"bytes"
	"testing"

	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// FuzzDecodeState extends the repository's untrusted-input fuzzing to
// the state-file decoder: arbitrary bytes must produce a structured
// error or a File whose cut section survives a full RestoreCuts pass —
// never a panic. (A state file is operator-supplied input: it lives on
// disk between restarts and an operator can point -state-file at
// anything.)
func FuzzDecodeState(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"netcut-state","version":1,"checksum":"0","payload":{}}`))
	var buf bytes.Buffer
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := trim.Cut(g, 1, trim.DefaultHead); err != nil {
		f.Fatal(err)
	}
	if err := Encode(&buf, &File{Seed: 1, Cuts: CaptureCuts(nil)}); err != nil {
		f.Fatal(err)
	}
	trim.PurgeCutCache()
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := DecodeBytes(data)
		if err != nil {
			return
		}
		// Whatever decodes must be safe to apply: parents re-validate
		// through graph.Validate and cuts replay through the public trim
		// path, so errors are fine, panics are the bug.
		defer trim.PurgeCutCache()
		_ = RestoreCuts(file.Cuts, nil)
	})
}
