package persist

import (
	"bytes"
	"testing"

	"netcut/internal/trim"
	"netcut/internal/zoo"
)

// FuzzDecodeState extends the repository's untrusted-input fuzzing to
// the state-file decoder: arbitrary bytes must produce a structured
// error or a File whose cut section survives a full RestoreCuts pass —
// never a panic, never an unbounded allocation (the decoder caps every
// collection length by the bytes left in its frame). (A state file is
// operator-supplied input: it lives on disk between restarts and an
// operator can point -state-file at anything.) Anything that decodes
// must also re-encode canonically: Encode(Decode(x)) is a fixed point.
func FuzzDecodeState(f *testing.F) {
	// Foreign and legacy-JSON-generation inputs (structured rejections).
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"netcut-state","version":1,"checksum":"0","payload":{}}`))
	// A bare envelope with no frames, and a truncated header.
	f.Add([]byte(Magic + "\x02\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte(Magic[:6]))
	// Valid binary snapshots: cuts-only, and one with planner records.
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := trim.Cut(g, 1, trim.DefaultHead); err != nil {
		f.Fatal(err)
	}
	var cutsOnly bytes.Buffer
	if err := Encode(&cutsOnly, &File{Seed: 1, Cuts: CaptureCuts(nil)}); err != nil {
		f.Fatal(err)
	}
	trim.PurgeCutCache()
	f.Add(cutsOnly.Bytes())
	var full bytes.Buffer
	if err := Encode(&full, &File{
		Seed: 7,
		Planners: []PlannerState{{
			Device: "sim-xavier", Calibration: 12345, Seed: 7,
			WarmupRuns: 200, TimedRuns: 800,
		}},
		Cuts: CutsState{
			Parents: []GraphState{EncodeGraph(g)},
			Cuts:    []CutState{{Parent: 0, At: 1, Blockwise: true, Head: trim.DefaultHead}},
		},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := DecodeBytes(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to a canonical form that
		// decodes back to the same file and re-encodes byte-identically —
		// the determinism half of the snapshot contract.
		var re bytes.Buffer
		if err := Encode(&re, file); err != nil {
			t.Fatalf("re-encoding a decoded file: %v", err)
		}
		file2, err := DecodeBytes(re.Bytes())
		if err != nil {
			t.Fatalf("decoding a re-encoded file: %v", err)
		}
		var re2 bytes.Buffer
		if err := Encode(&re2, file2); err != nil {
			t.Fatalf("re-encoding twice: %v", err)
		}
		if !bytes.Equal(re.Bytes(), re2.Bytes()) {
			t.Fatal("re-encoding is not a fixed point")
		}
		// Whatever decodes must be safe to apply: parents re-validate
		// through graph.Validate and cuts replay through the public trim
		// path, so errors are fine, panics are the bug.
		defer trim.PurgeCutCache()
		_ = RestoreCuts(file.Cuts, nil)
	})
}
