package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"netcut/internal/graph"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	return &File{
		Seed: 7,
		Planners: []PlannerState{{
			Device:      "sim-xavier",
			Calibration: 12345,
			Seed:        7,
			WarmupRuns:  200,
			TimedRuns:   800,
		}},
		Cuts: CutsState{
			Parents: []GraphState{EncodeGraph(g)},
			Cuts: []CutState{
				{Scope: 0, Parent: 0, At: 1, Blockwise: true, Head: trim.DefaultHead},
			},
		},
	}
}

// TestEncodeDecodeRoundTrip pins the basic contract plus encoding
// determinism: equal Files produce equal bytes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile(t)
	var a, b bytes.Buffer
	if err := Encode(&a, f); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of one File differ")
	}
	got, err := Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != f.Seed || len(got.Planners) != 1 || got.Planners[0].Device != "sim-xavier" {
		t.Fatalf("decoded file diverged: %+v", got)
	}
	if len(got.Cuts.Cuts) != 1 || got.Cuts.Cuts[0].Head != trim.DefaultHead {
		t.Fatalf("decoded cuts diverged: %+v", got.Cuts)
	}
}

// TestDecodeRejectsDamage pins the structured-rejection contract: a
// truncated, corrupted, version-skewed or foreign file is a sentinel
// error, never a silently trusted partial state.
func TestDecodeRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleFile(t)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, len(good) / 2, len(good) - 2} {
			if _, err := DecodeBytes(good[:n]); !errors.Is(err, ErrNotSnapshot) {
				t.Fatalf("truncation at %d: err = %v, want ErrNotSnapshot", n, err)
			}
		}
	})
	t.Run("corrupt-payload", func(t *testing.T) {
		// Flip a byte inside the payload (keep the envelope JSON valid by
		// corrupting a digit of the seed).
		bad := bytes.Replace(good, []byte(`"seed":7`), []byte(`"seed":8`), 1)
		if bytes.Equal(bad, good) {
			t.Fatal("corruption did not apply")
		}
		if _, err := DecodeBytes(bad); !errors.Is(err, ErrChecksumMismatch) {
			t.Fatalf("err = %v, want ErrChecksumMismatch", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := bytes.Replace(good,
			[]byte(fmt.Sprintf(`"version":%d`, SchemaVersion)),
			[]byte(fmt.Sprintf(`"version":%d`, SchemaVersion+1)), 1)
		if _, err := DecodeBytes(bad); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("err = %v, want ErrVersionMismatch", err)
		}
	})
	t.Run("foreign", func(t *testing.T) {
		for _, in := range []string{`{}`, `{"magic":"other","version":1}`, `not json at all`} {
			if _, err := DecodeBytes([]byte(in)); !errors.Is(err, ErrNotSnapshot) {
				t.Fatalf("input %q: err = %v, want ErrNotSnapshot", in, err)
			}
		}
	})
}

// TestGraphCodecRoundTrip pins that the snapshot graph codec preserves
// the structural fingerprint — the property every restored cache key
// depends on — for both a zoo network and a hand-built blocked graph.
func TestGraphCodecRoundTrip(t *testing.T) {
	nets := zoo.Paper7()
	for _, src := range nets {
		st := EncodeGraph(src)
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back GraphState
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeGraph(&back)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		if graph.Fingerprint(got) != graph.Fingerprint(src) {
			t.Fatalf("%s: fingerprint changed across the snapshot codec", src.Name)
		}
	}
}

// TestRestoreCutsRejectsBadParents pins that a snapshot carrying an
// invalid parent graph or a dangling parent index is rejected before
// any cut is replayed.
func TestRestoreCutsRejectsBadParents(t *testing.T) {
	if err := RestoreCuts(CutsState{
		Parents: []GraphState{{Name: ""}}, // fails DecodeGraph
		Cuts:    []CutState{{Parent: 0, At: 1, Blockwise: true, Head: trim.DefaultHead}},
	}, nil); err == nil {
		t.Fatal("invalid parent accepted")
	}
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	err = RestoreCuts(CutsState{
		Parents: []GraphState{EncodeGraph(g)},
		Cuts:    []CutState{{Parent: 3, At: 1, Blockwise: true, Head: trim.DefaultHead}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "references parent") {
		t.Fatalf("dangling parent index: err = %v", err)
	}
}

// TestCaptureRestoreCutsRoundTrip pins capture -> restore -> capture
// byte identity for the cut-cache state: replaying a snapshot
// reproduces the same records (contents and order).
func TestCaptureRestoreCutsRoundTrip(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= 3; c++ {
		if _, err := trim.CutScoped(99, g, c, trim.DefaultHead); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := trim.Cut(g, 1, trim.DefaultHead); err != nil { // scope 0
		t.Fatal(err)
	}

	cs := CaptureCuts(nil)
	if len(cs.Cuts) != 4 || len(cs.Parents) != 1 {
		t.Fatalf("captured %d cuts over %d parents, want 4 over 1", len(cs.Cuts), len(cs.Parents))
	}
	a, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}

	trim.PurgeCutCache()
	if err := RestoreCuts(cs, nil); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(CaptureCuts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("cut state diverged across restore:\n before %s\n after  %s", a, b)
	}

	// Scope filtering: restoring with a filter keeps only matching
	// scopes resident.
	trim.PurgeCutCache()
	if err := RestoreCuts(cs, func(scope uint64) bool { return scope == 0 }); err != nil {
		t.Fatal(err)
	}
	if got := len(CaptureCuts(nil).Cuts); got != 1 {
		t.Fatalf("scope filter restored %d cuts, want 1", got)
	}
}
