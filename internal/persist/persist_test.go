package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/profiler"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	return &File{
		Seed: 7,
		Planners: []PlannerState{{
			Device:      "sim-xavier",
			Calibration: 12345,
			Seed:        7,
			WarmupRuns:  200,
			TimedRuns:   800,
		}},
		Cuts: CutsState{
			Parents: []GraphState{EncodeGraph(g)},
			Cuts: []CutState{
				{Scope: 0, Parent: 0, At: 1, Blockwise: true, Head: trim.DefaultHead},
			},
		},
	}
}

// TestEncodeDecodeRoundTrip pins the basic contract plus encoding
// determinism: equal Files produce equal bytes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFile(t)
	var a, b bytes.Buffer
	if err := Encode(&a, f); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of one File differ")
	}
	got, err := Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != f.Seed || len(got.Planners) != 1 || got.Planners[0].Device != "sim-xavier" {
		t.Fatalf("decoded file diverged: %+v", got)
	}
	if len(got.Cuts.Cuts) != 1 || got.Cuts.Cuts[0].Head != trim.DefaultHead {
		t.Fatalf("decoded cuts diverged: %+v", got.Cuts)
	}
}

// reseal recomputes the envelope checksum over raw's payload, so a
// test can damage frame bytes and prove the *per-section* checksum (or
// frame structure check) is what rejects the file, not the envelope.
func reseal(raw []byte) []byte {
	out := bytes.Clone(raw)
	binary.LittleEndian.PutUint64(out[len(Magic)+1:], checksum64(out[envHeaderLen:]))
	return out
}

// TestDecodeRejectsDamage pins the structured-rejection contract: a
// truncated, corrupted, version-skewed or foreign file is a sentinel
// error, never a silently trusted partial state.
func TestDecodeRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleFile(t)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("truncated-header", func(t *testing.T) {
		for _, n := range []int{0, 1, envHeaderLen - 1} {
			if _, err := DecodeBytes(good[:n]); !errors.Is(err, ErrNotSnapshot) {
				t.Fatalf("truncation at %d: err = %v, want ErrNotSnapshot", n, err)
			}
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		// Past the header, truncation is caught by the envelope checksum.
		for _, n := range []int{len(good) / 2, len(good) - 2} {
			if _, err := DecodeBytes(good[:n]); !errors.Is(err, ErrChecksumMismatch) {
				t.Fatalf("truncation at %d: err = %v, want ErrChecksumMismatch", n, err)
			}
		}
	})
	t.Run("truncated-mid-frame", func(t *testing.T) {
		// Even with a consistent envelope (checksum recomputed over the
		// truncated payload), a frame cut mid-body is a structural
		// rejection: its length prefix promises bytes that are not there.
		bad := reseal(good[:envHeaderLen+5])
		if _, err := DecodeBytes(bad); !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("err = %v, want ErrNotSnapshot", err)
		}
	})
	t.Run("flipped-frame-byte", func(t *testing.T) {
		// One flipped bit inside a frame, envelope checksum recomputed so
		// only the per-section checksum can catch it.
		bad := bytes.Clone(good)
		bad[len(bad)-20] ^= 0x01
		bad = reseal(bad)
		if _, err := DecodeBytes(bad); !errors.Is(err, ErrChecksumMismatch) {
			t.Fatalf("err = %v, want ErrChecksumMismatch", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[len(Magic)] = SchemaVersion + 1
		if _, err := DecodeBytes(bad); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("err = %v, want ErrVersionMismatch", err)
		}
	})
	t.Run("legacy-json-generation", func(t *testing.T) {
		// A version-1 (JSON era) snapshot is recognized and reported as
		// version skew — the "old version = cold boot" policy — not as
		// corruption or foreign bytes.
		legacy := `{"magic":"netcut-state","version":1,"checksum":"00","payload":{}}`
		if _, err := DecodeBytes([]byte(legacy)); !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("err = %v, want ErrVersionMismatch", err)
		}
	})
	t.Run("foreign", func(t *testing.T) {
		for _, in := range []string{`{}`, `{"magic":"other","version":1}`, `not json at all`} {
			if _, err := DecodeBytes([]byte(in)); !errors.Is(err, ErrNotSnapshot) {
				t.Fatalf("input %q: err = %v, want ErrNotSnapshot", in, err)
			}
		}
	})
}

// richFile is sampleFile with record payloads in every section kind,
// exercising the full record codecs (string interning, float bit
// patterns, nested collections).
func richFile(t *testing.T) *File {
	f := sampleFile(t)
	p := &f.Planners[0]
	p.Plans = []device.PlanState{{
		Key:    0xfeed,
		BaseMs: []float64{0.25, 1.5},
		RowTmpl: [][]device.PlanRowState{
			{{NodeID: 1, Name: "conv1", Kind: 2, Share: 0.75}, {NodeID: 2, Name: "relu1", Kind: 3, Share: 0.25}},
			{{NodeID: 1, Name: "conv1", Kind: 2, Share: 1}},
		},
	}}
	p.Measurements = []profiler.MeasurementState{
		{Key: 1, Network: "MobileNetV1 (0.25)", MeanMs: 3.125, StdMs: 0.5, Runs: 800},
		{Key: 2, Network: "MobileNetV1 (0.25)", MeanMs: 2.5, StdMs: 0.25, Runs: 800},
	}
	p.Tables = []profiler.TableState{{
		Key: 1, Network: "MobileNetV1 (0.25)", EndToEndMs: 3.125,
		Layers: []profiler.TableRowState{
			{NodeID: 1, Name: "conv1", Kind: 2, MeanMs: 1.5},
			{NodeID: 2, Name: "relu1", Kind: 3, MeanMs: 1.625},
		},
	}}
	return f
}

// TestSectionRoundTrip pins the section-level API: Sections/
// FromSections invert each other, SectionReader decodes frames
// independently and in iterator order, identity peeks match, and the
// parallel decode path returns bit-identical results to the serial one.
func TestSectionRoundTrip(t *testing.T) {
	f := richFile(t)
	secs := f.Sections()
	wantKinds := []SectionKind{SectionMeta, SectionPlans, SectionMeasurements, SectionTables, SectionGraphs, SectionCuts}
	if len(secs) != len(wantKinds) {
		t.Fatalf("Sections returned %d sections, want %d", len(secs), len(wantKinds))
	}
	for i, k := range wantKinds {
		if secs[i].ID.Kind != k {
			t.Fatalf("section %d kind = %s, want %s", i, secs[i].ID.Kind, k)
		}
	}
	back, err := FromSections(secs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, f) {
		t.Fatalf("FromSections(Sections()) diverged:\n got  %+v\n want %+v", back, f)
	}

	var buf bytes.Buffer
	if err := WriteSections(&buf, secs); err != nil {
		t.Fatal(err)
	}
	r, err := NewSectionReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(secs) {
		t.Fatalf("reader holds %d frames, want %d", r.Len(), len(secs))
	}
	for i := range secs {
		id, err := r.ID(i)
		if err != nil {
			t.Fatal(err)
		}
		if id != secs[i].ID {
			t.Fatalf("frame %d identity = %+v, want %+v", i, id, secs[i].ID)
		}
		s, err := r.Decode(i)
		if err != nil {
			t.Fatal(err)
		}
		if !sectionEqual(s, &secs[i]) {
			t.Fatalf("frame %d decode diverged:\n got  %+v\n want %+v", i, s, &secs[i])
		}
	}
	n := 0
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(secs) {
		t.Fatalf("iterator yielded %d frames, want %d", n, len(secs))
	}

	serial, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DecodeBytesParallel(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel decode diverged from serial decode")
	}
	if !reflect.DeepEqual(serial, f) {
		t.Fatal("decoded file diverged from the original")
	}
}

// sectionEqual compares decoded sections treating nil and empty record
// slices as the same (an empty section round-trips to nil slices).
func sectionEqual(a, b *Section) bool {
	if a.ID != b.ID {
		return false
	}
	eq := func(x, y any) bool {
		return reflect.DeepEqual(x, y) ||
			(reflect.ValueOf(x).Len() == 0 && reflect.ValueOf(y).Len() == 0)
	}
	return eq(a.Plans, b.Plans) && eq(a.Measurements, b.Measurements) &&
		eq(a.Tables, b.Tables) && eq(a.Graphs, b.Graphs) && eq(a.Cuts, b.Cuts)
}

// TestFromSectionsRejectsStructure pins the structural invariants of
// reassembly: no meta, duplicate sections.
func TestFromSectionsRejectsStructure(t *testing.T) {
	secs := sampleFile(t).Sections()
	if _, err := FromSections(secs[1:]); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("missing meta: err = %v, want ErrNotSnapshot", err)
	}
	dup := append(append([]Section{}, secs...), secs[1])
	if _, err := FromSections(dup); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("duplicate section: err = %v, want ErrNotSnapshot", err)
	}
}

// TestGraphCodecRoundTrip pins that the snapshot graph codec preserves
// the structural fingerprint — the property every restored cache key
// depends on — for both a zoo network and a hand-built blocked graph.
func TestGraphCodecRoundTrip(t *testing.T) {
	nets := zoo.Paper7()
	for _, src := range nets {
		st := EncodeGraph(src)
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back GraphState
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeGraph(&back)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		if graph.Fingerprint(got) != graph.Fingerprint(src) {
			t.Fatalf("%s: fingerprint changed across the snapshot codec", src.Name)
		}
	}
}

// TestRestoreCutsRejectsBadParents pins that a snapshot carrying an
// invalid parent graph or a dangling parent index is rejected before
// any cut is replayed.
func TestRestoreCutsRejectsBadParents(t *testing.T) {
	if err := RestoreCuts(CutsState{
		Parents: []GraphState{{Name: ""}}, // fails DecodeGraph
		Cuts:    []CutState{{Parent: 0, At: 1, Blockwise: true, Head: trim.DefaultHead}},
	}, nil); err == nil {
		t.Fatal("invalid parent accepted")
	}
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	err = RestoreCuts(CutsState{
		Parents: []GraphState{EncodeGraph(g)},
		Cuts:    []CutState{{Parent: 3, At: 1, Blockwise: true, Head: trim.DefaultHead}},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "references parent") {
		t.Fatalf("dangling parent index: err = %v", err)
	}
}

// TestCaptureRestoreCutsRoundTrip pins capture -> restore -> capture
// byte identity for the cut-cache state: replaying a snapshot
// reproduces the same records (contents and order).
func TestCaptureRestoreCutsRoundTrip(t *testing.T) {
	trim.PurgeCutCache()
	t.Cleanup(trim.PurgeCutCache)
	g, err := zoo.ByName("MobileNetV1 (0.25)")
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= 3; c++ {
		if _, err := trim.CutScoped(99, g, c, trim.DefaultHead); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := trim.Cut(g, 1, trim.DefaultHead); err != nil { // scope 0
		t.Fatal(err)
	}

	cs := CaptureCuts(nil)
	if len(cs.Cuts) != 4 || len(cs.Parents) != 1 {
		t.Fatalf("captured %d cuts over %d parents, want 4 over 1", len(cs.Cuts), len(cs.Parents))
	}
	a, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}

	trim.PurgeCutCache()
	if err := RestoreCuts(cs, nil); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(CaptureCuts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("cut state diverged across restore:\n before %s\n after  %s", a, b)
	}

	// Scope filtering: restoring with a filter keeps only matching
	// scopes resident.
	trim.PurgeCutCache()
	if err := RestoreCuts(cs, func(scope uint64) bool { return scope == 0 }); err != nil {
		t.Fatal(err)
	}
	if got := len(CaptureCuts(nil).Cuts); got != 1 {
		t.Fatalf("scope filter restored %d cuts, want 1", got)
	}
}
