package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"netcut/internal/device"
	"netcut/internal/par"
	"netcut/internal/profiler"
)

// The section layer: a snapshot is a flat sequence of self-delimiting
// frames, one per (section kind, identity) unit, each independently
// decodable — its own identity header, its own deduplicated string
// table, its own checksum. A restoring process (or, later, a replica
// requesting exactly the shard it owns) can route, skip or verify a
// section without touching any other frame's bytes.
//
// Frame wire layout (all inside the envelope of persist.go):
//
//	frame    := frameLen:uvarint body[frameLen]
//	body     := kind:u8 identity table records... crc:fixed64
//	identity := device:rawString calibration:fixed64 seed:varint
//	            warmupRuns:varint timedRuns:varint
//	table    := count:uvarint (len:uvarint bytes)...
//
// crc is FNV-1a 64 over every body byte before it, so a single flipped
// bit anywhere in a frame is ErrChecksumMismatch for that section even
// when the caller bypassed the envelope (section-granular transport).

// SectionKind identifies what a frame carries; the numeric values are
// the on-wire kind bytes and therefore part of the schema.
type SectionKind uint8

const (
	// SectionMeta carries the file-level identity (the base seed); it
	// is the first frame of every snapshot.
	SectionMeta SectionKind = 1 + iota
	// SectionPlans is one device's kernel-plan cache.
	SectionPlans
	// SectionMeasurements is one device's end-to-end measurement memo.
	SectionMeasurements
	// SectionTables is one device's per-layer table memo.
	SectionTables
	// SectionGraphs is the deduplicated parent-graph table the cut
	// records reference by index.
	SectionGraphs
	// SectionCuts is the scoped cut-coordinate records of the
	// process-wide cut cache.
	SectionCuts
)

func (k SectionKind) String() string {
	switch k {
	case SectionMeta:
		return "meta"
	case SectionPlans:
		return "plans"
	case SectionMeasurements:
		return "measurements"
	case SectionTables:
		return "tables"
	case SectionGraphs:
		return "graphs"
	case SectionCuts:
		return "cuts"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// SectionID is a frame's identity header: what the section is plus the
// inputs its values are pure functions of. Device-independent sections
// (meta, graphs, cuts) leave Device empty and Calibration zero; the
// restoring layer matches the device-keyed fields the same way it
// matched PlannerState identities in the JSON generation.
type SectionID struct {
	Kind        SectionKind
	Device      string
	Calibration uint64
	Seed        int64
	WarmupRuns  int
	TimedRuns   int
}

// Section is one decoded frame: its identity plus exactly the payload
// slice matching ID.Kind.
type Section struct {
	ID SectionID

	Plans        []device.PlanState
	Measurements []profiler.MeasurementState
	Tables       []profiler.TableState
	Graphs       []GraphState
	Cuts         []CutState
}

// Sections flattens a File into its frame sequence: meta first, then
// plans/measurements/tables per planner in registration order, then
// the graph table and the cut records. The order is deterministic, so
// equal Files still produce equal bytes.
func (f *File) Sections() []Section {
	secs := make([]Section, 0, 3*len(f.Planners)+3)
	secs = append(secs, Section{ID: SectionID{Kind: SectionMeta, Seed: f.Seed}})
	for i := range f.Planners {
		p := &f.Planners[i]
		id := SectionID{
			Device:      p.Device,
			Calibration: p.Calibration,
			Seed:        p.Seed,
			WarmupRuns:  p.WarmupRuns,
			TimedRuns:   p.TimedRuns,
		}
		id.Kind = SectionPlans
		secs = append(secs, Section{ID: id, Plans: p.Plans})
		id.Kind = SectionMeasurements
		secs = append(secs, Section{ID: id, Measurements: p.Measurements})
		id.Kind = SectionTables
		secs = append(secs, Section{ID: id, Tables: p.Tables})
	}
	secs = append(secs,
		Section{ID: SectionID{Kind: SectionGraphs, Seed: f.Seed}, Graphs: f.Cuts.Parents},
		Section{ID: SectionID{Kind: SectionCuts, Seed: f.Seed}, Cuts: f.Cuts.Cuts})
	return secs
}

// FromSections reassembles a File from decoded sections: planner
// sections group by identity in first-appearance order, graph and cut
// sections concatenate (cut parent indexes are file-scoped into the
// concatenated graph table). A snapshot without a meta section, with
// two meta sections, or with duplicate planner sections is structurally
// invalid (ErrNotSnapshot).
func FromSections(secs []Section) (*File, error) {
	f := &File{}
	sawMeta := false
	seen := make(map[SectionID]bool, len(secs))
	planner := make(map[SectionID]int)
	for i := range secs {
		s := &secs[i]
		if seen[s.ID] {
			return nil, fmt.Errorf("persist: %w: duplicate %s section for %q", ErrNotSnapshot, s.ID.Kind, s.ID.Device)
		}
		seen[s.ID] = true
		switch s.ID.Kind {
		case SectionMeta:
			sawMeta = true
			f.Seed = s.ID.Seed
		case SectionPlans, SectionMeasurements, SectionTables:
			key := s.ID
			key.Kind = 0 // group the three kinds of one planner identity
			pi, ok := planner[key]
			if !ok {
				pi = len(f.Planners)
				planner[key] = pi
				f.Planners = append(f.Planners, PlannerState{
					Device:      s.ID.Device,
					Calibration: s.ID.Calibration,
					Seed:        s.ID.Seed,
					WarmupRuns:  s.ID.WarmupRuns,
					TimedRuns:   s.ID.TimedRuns,
				})
			}
			switch s.ID.Kind {
			case SectionPlans:
				f.Planners[pi].Plans = s.Plans
			case SectionMeasurements:
				f.Planners[pi].Measurements = s.Measurements
			case SectionTables:
				f.Planners[pi].Tables = s.Tables
			}
		case SectionGraphs:
			f.Cuts.Parents = append(f.Cuts.Parents, s.Graphs...)
		case SectionCuts:
			f.Cuts.Cuts = append(f.Cuts.Cuts, s.Cuts...)
		default:
			return nil, fmt.Errorf("persist: %w: unknown section kind %d", ErrNotSnapshot, s.ID.Kind)
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("persist: %w: snapshot has no meta section", ErrNotSnapshot)
	}
	return f, nil
}

// WriteSections writes sections as one enveloped snapshot: magic,
// version byte, payload checksum, then one frame per section in slice
// order. Encode is WriteSections over File.Sections; a pool saving a
// single device's shard passes just that device's sections.
func WriteSections(w io.Writer, secs []Section) error {
	buf := make([]byte, 0, 16<<10)
	buf = append(buf, Magic...)
	buf = append(buf, SchemaVersion)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // checksum backfilled below
	for i := range secs {
		var err error
		buf, err = appendFrame(buf, &secs[i])
		if err != nil {
			return fmt.Errorf("persist: encoding %s section: %w", secs[i].ID.Kind, err)
		}
	}
	binary.LittleEndian.PutUint64(buf[len(Magic)+1:], checksum64(buf[envHeaderLen:]))
	_, err := w.Write(buf)
	return err
}

// envHeaderLen is the envelope prefix: magic, version byte, checksum.
const envHeaderLen = len(Magic) + 1 + 8

// appendFrame encodes one section as a length-prefixed frame.
func appendFrame(dst []byte, s *Section) ([]byte, error) {
	var body enc
	switch s.ID.Kind {
	case SectionMeta:
	case SectionPlans:
		encodePlans(&body, s.Plans)
	case SectionMeasurements:
		encodeMeasurements(&body, s.Measurements)
	case SectionTables:
		encodeTables(&body, s.Tables)
	case SectionGraphs:
		encodeGraphs(&body, s.Graphs)
	case SectionCuts:
		encodeCuts(&body, s.Cuts)
	default:
		return nil, fmt.Errorf("unknown section kind %d", s.ID.Kind)
	}
	var fr enc
	fr.buf = make([]byte, 0, len(body.buf)+len(s.ID.Device)+64)
	fr.u8(byte(s.ID.Kind))
	fr.rawString(s.ID.Device)
	fr.u64(s.ID.Calibration)
	fr.varint(s.ID.Seed)
	fr.vint(s.ID.WarmupRuns)
	fr.vint(s.ID.TimedRuns)
	fr.uvarint(uint64(len(body.table)))
	for _, str := range body.table {
		fr.rawString(str)
	}
	fr.buf = append(fr.buf, body.buf...)
	fr.u64(checksum64(fr.buf[:len(fr.buf)])) // self-checksum over everything before it
	dst = binary.AppendUvarint(dst, uint64(len(fr.buf)))
	return append(dst, fr.buf...), nil
}

func decodeIdentity(d *dec, id *SectionID) {
	id.Kind = SectionKind(d.u8())
	id.Device = d.rawString()
	id.Calibration = d.u64()
	id.Seed = d.varint()
	id.WarmupRuns = d.vint()
	id.TimedRuns = d.vint()
}

// decodeFrame verifies one frame's checksum and decodes it. The
// checksum gates the parse, so a flipped bit anywhere in the frame is
// a structured ErrChecksumMismatch naming the section, never a
// half-trusted record.
func decodeFrame(body []byte) (*Section, error) {
	if len(body) < 9 {
		return nil, fmt.Errorf("%w: frame of %d bytes is shorter than its checksum", ErrNotSnapshot, len(body))
	}
	want := binary.LittleEndian.Uint64(body[len(body)-8:])
	if got := checksum64(body[:len(body)-8]); got != want {
		return nil, fmt.Errorf("%w: section hashes to %016x, its frame claims %016x", ErrChecksumMismatch, got, want)
	}
	d := &dec{b: body[:len(body)-8]}
	sec := &Section{}
	decodeIdentity(d, &sec.ID)
	table := d.strTable()
	switch sec.ID.Kind {
	case SectionMeta:
	case SectionPlans:
		sec.Plans = decodePlans(d, table)
	case SectionMeasurements:
		sec.Measurements = decodeMeasurements(d, table)
	case SectionTables:
		sec.Tables = decodeTables(d, table)
	case SectionGraphs:
		sec.Graphs = decodeGraphs(d, table)
	case SectionCuts:
		sec.Cuts = decodeCuts(d)
	default:
		d.failf("unknown section kind %d", sec.ID.Kind)
	}
	if d.err == nil && d.remaining() != 0 {
		d.failf("%d trailing bytes after the last record", d.remaining())
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %s section: %v", ErrNotSnapshot, sec.ID.Kind, d.err)
	}
	return sec, nil
}

// SectionReader iterates a snapshot's frames after validating the
// envelope. Frames are indexed slices of the raw payload — splitting
// is O(frames), so callers can peek every identity (ID), decode
// selected sections (Decode), or stream them in order (Next) without
// materializing anything they skip.
type SectionReader struct {
	frames [][]byte
	next   int
}

// NewSectionReader validates the envelope (magic, version, payload
// checksum — the same sentinel mapping as DecodeBytes) and splits the
// payload into frames without decoding any of them.
func NewSectionReader(raw []byte) (*SectionReader, error) {
	payload, err := checkEnvelope(raw)
	if err != nil {
		return nil, err
	}
	var frames [][]byte
	for off := 0; off < len(payload); {
		n, w := binary.Uvarint(payload[off:])
		if w <= 0 || n == 0 || n > uint64(len(payload)-off-w) {
			return nil, fmt.Errorf("persist: %w: bad frame length at payload offset %d", ErrNotSnapshot, off)
		}
		off += w
		frames = append(frames, payload[off:off+int(n)])
		off += int(n)
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("persist: %w: snapshot has no sections", ErrNotSnapshot)
	}
	return &SectionReader{frames: frames}, nil
}

// Len returns the number of frames.
func (r *SectionReader) Len() int { return len(r.frames) }

// ID returns frame i's identity header without verifying its checksum
// or decoding its records — the cheap routing peek a shard-aware
// consumer filters on before paying for Decode.
func (r *SectionReader) ID(i int) (SectionID, error) {
	d := &dec{b: r.frames[i]}
	var id SectionID
	decodeIdentity(d, &id)
	if d.err != nil {
		return SectionID{}, fmt.Errorf("persist: %w: section %d identity: %v", ErrNotSnapshot, i, d.err)
	}
	return id, nil
}

// Decode checksums and decodes frame i. Frames are independent, so
// concurrent Decode calls on distinct indexes are safe — the parallel
// restore path fans exactly this out.
func (r *SectionReader) Decode(i int) (*Section, error) {
	s, err := decodeFrame(r.frames[i])
	if err != nil {
		return nil, fmt.Errorf("persist: section %d: %w", i, err)
	}
	return s, nil
}

// Next decodes the next frame in file order, returning io.EOF after
// the last one.
func (r *SectionReader) Next() (*Section, error) {
	if r.next >= len(r.frames) {
		return nil, io.EOF
	}
	s, err := r.Decode(r.next)
	if err != nil {
		return nil, err
	}
	r.next++
	return s, nil
}

// checkEnvelope validates the binary envelope and returns the payload.
// A file from the retired JSON generation is recognized by its leading
// '{' and classified as ErrVersionMismatch — the "old version = cold
// boot" policy, reported as a version skew rather than corruption.
func checkEnvelope(raw []byte) ([]byte, error) {
	if len(raw) > 0 && raw[0] == '{' {
		var env struct {
			Magic   string `json:"magic"`
			Version int    `json:"version"`
		}
		if json.Unmarshal(raw, &env) == nil && env.Magic == Magic {
			return nil, fmt.Errorf("persist: %w: JSON-generation snapshot (version %d), this build speaks binary version %d",
				ErrVersionMismatch, env.Version, SchemaVersion)
		}
		return nil, fmt.Errorf("persist: %w: not a binary netcut snapshot", ErrNotSnapshot)
	}
	if len(raw) < envHeaderLen || string(raw[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("persist: %w: missing %q header", ErrNotSnapshot, Magic)
	}
	if v := raw[len(Magic)]; int(v) != SchemaVersion {
		return nil, fmt.Errorf("persist: %w: snapshot version %d, this build speaks %d",
			ErrVersionMismatch, v, SchemaVersion)
	}
	want := binary.LittleEndian.Uint64(raw[len(Magic)+1:])
	payload := raw[envHeaderLen:]
	if got := checksum64(payload); got != want {
		return nil, fmt.Errorf("persist: %w: payload hashes to %016x, envelope claims %016x",
			ErrChecksumMismatch, got, want)
	}
	return payload, nil
}

// decodeAll decodes every frame — concurrently when parallel is set,
// each section into its position-indexed slot — and reassembles the
// File. Section decoding is pure (no shared state), so parallelism
// changes wall-clock only; errors surface as the lowest-index
// section's error either way (the par.ForEach contract).
func decodeAll(raw []byte, parallel bool) (*File, error) {
	r, err := NewSectionReader(raw)
	if err != nil {
		return nil, err
	}
	secs := make([]Section, r.Len())
	decodeOne := func(i int) error {
		s, err := r.Decode(i)
		if err != nil {
			return err
		}
		secs[i] = *s
		return nil
	}
	if parallel {
		err = par.ForEach(r.Len(), decodeOne)
	} else {
		for i := 0; i < r.Len() && err == nil; i++ {
			err = decodeOne(i)
		}
	}
	if err != nil {
		return nil, err
	}
	return FromSections(secs)
}

// Per-kind record codecs. The count() minimums are conservative
// lower bounds on one record's wire size, bounding hostile lengths.

func encodePlans(e *enc, plans []device.PlanState) {
	e.uvarint(uint64(len(plans)))
	for _, p := range plans {
		e.u64(p.Key)
		e.uvarint(uint64(len(p.BaseMs)))
		for _, b := range p.BaseMs {
			e.f64(b)
		}
		// RowTmpl's length mirrors BaseMs only in valid states; it is
		// encoded independently so any in-memory state round-trips and
		// the mismatch is rejected by the same validation layer
		// (device.PreparePlans) that rejected it in the JSON generation.
		e.uvarint(uint64(len(p.RowTmpl)))
		for _, rows := range p.RowTmpl {
			e.uvarint(uint64(len(rows)))
			for _, r := range rows {
				e.vint(r.NodeID)
				e.str(r.Name)
				e.vint(r.Kind)
				e.f64(r.Share)
			}
		}
	}
}

func decodePlans(d *dec, table []string) []device.PlanState {
	n := d.count(10)
	out := make([]device.PlanState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var p device.PlanState
		p.Key = d.u64()
		nb := d.count(8)
		p.BaseMs = make([]float64, nb)
		for j := range p.BaseMs {
			p.BaseMs[j] = d.f64()
		}
		nk := d.count(1)
		p.RowTmpl = make([][]device.PlanRowState, nk)
		for k := 0; k < nk && d.err == nil; k++ {
			nr := d.count(11)
			rows := make([]device.PlanRowState, nr)
			for r := range rows {
				rows[r] = device.PlanRowState{
					NodeID: d.vint(),
					Name:   d.str(table),
					Kind:   d.vint(),
					Share:  d.f64(),
				}
			}
			p.RowTmpl[k] = rows
		}
		out = append(out, p)
	}
	return out
}

func encodeMeasurements(e *enc, ms []profiler.MeasurementState) {
	e.uvarint(uint64(len(ms)))
	for _, m := range ms {
		e.u64(m.Key)
		e.str(m.Network)
		e.f64(m.MeanMs)
		e.f64(m.StdMs)
		e.vint(m.Runs)
	}
}

func decodeMeasurements(d *dec, table []string) []profiler.MeasurementState {
	n := d.count(26)
	out := make([]profiler.MeasurementState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, profiler.MeasurementState{
			Key:     d.u64(),
			Network: d.str(table),
			MeanMs:  d.f64(),
			StdMs:   d.f64(),
			Runs:    d.vint(),
		})
	}
	return out
}

func encodeTables(e *enc, ts []profiler.TableState) {
	e.uvarint(uint64(len(ts)))
	for _, t := range ts {
		e.u64(t.Key)
		e.str(t.Network)
		e.f64(t.EndToEndMs)
		e.uvarint(uint64(len(t.Layers)))
		for _, l := range t.Layers {
			e.vint(l.NodeID)
			e.str(l.Name)
			e.vint(l.Kind)
			e.f64(l.MeanMs)
		}
	}
}

func decodeTables(d *dec, table []string) []profiler.TableState {
	n := d.count(18)
	out := make([]profiler.TableState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		t := profiler.TableState{
			Key:        d.u64(),
			Network:    d.str(table),
			EndToEndMs: d.f64(),
		}
		nl := d.count(11)
		t.Layers = make([]profiler.TableRowState, 0, nl)
		for j := 0; j < nl && d.err == nil; j++ {
			t.Layers = append(t.Layers, profiler.TableRowState{
				NodeID: d.vint(),
				Name:   d.str(table),
				Kind:   d.vint(),
				MeanMs: d.f64(),
			})
		}
		out = append(out, t)
	}
	return out
}

func encodeGraphs(e *enc, gs []GraphState) {
	e.uvarint(uint64(len(gs)))
	for i := range gs {
		g := &gs[i]
		e.str(g.Name)
		e.vint(g.Input.H)
		e.vint(g.Input.W)
		e.vint(g.Input.C)
		e.vint(g.NumClasses)
		e.uvarint(uint64(len(g.Nodes)))
		for j := range g.Nodes {
			n := &g.Nodes[j]
			e.vint(n.ID)
			e.str(n.Name)
			e.str(n.Kind)
			e.uvarint(uint64(len(n.Inputs)))
			for _, in := range n.Inputs {
				e.vint(in)
			}
			e.vint(n.In.H)
			e.vint(n.In.W)
			e.vint(n.In.C)
			e.vint(n.Out.H)
			e.vint(n.Out.W)
			e.vint(n.Out.C)
			e.vint(n.KH)
			e.vint(n.KW)
			e.vint(n.Stride)
			e.str(n.Pad)
			e.varint(n.MACs)
			e.varint(n.Params)
			e.varint(n.WeightBytes)
			e.varint(n.IOBytes)
			e.vint(n.Block)
			e.bool(n.Head)
		}
		e.uvarint(uint64(len(g.Blocks)))
		for j := range g.Blocks {
			b := &g.Blocks[j]
			e.vint(b.Index)
			e.str(b.Label)
			e.uvarint(uint64(len(b.Nodes)))
			for _, id := range b.Nodes {
				e.vint(id)
			}
			e.vint(b.Output)
		}
	}
}

func decodeGraphs(d *dec, table []string) []GraphState {
	n := d.count(7)
	out := make([]GraphState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		var g GraphState
		g.Name = d.str(table)
		g.Input = ShapeState{H: d.vint(), W: d.vint(), C: d.vint()}
		g.NumClasses = d.vint()
		nn := d.count(19)
		g.Nodes = make([]NodeState, 0, nn)
		for j := 0; j < nn && d.err == nil; j++ {
			var ns NodeState
			ns.ID = d.vint()
			ns.Name = d.str(table)
			ns.Kind = d.str(table)
			ni := d.count(1)
			if ni > 0 {
				ns.Inputs = make([]int, ni)
				for k := range ns.Inputs {
					ns.Inputs[k] = d.vint()
				}
			}
			ns.In = ShapeState{H: d.vint(), W: d.vint(), C: d.vint()}
			ns.Out = ShapeState{H: d.vint(), W: d.vint(), C: d.vint()}
			ns.KH = d.vint()
			ns.KW = d.vint()
			ns.Stride = d.vint()
			ns.Pad = d.str(table)
			ns.MACs = d.varint()
			ns.Params = d.varint()
			ns.WeightBytes = d.varint()
			ns.IOBytes = d.varint()
			ns.Block = d.vint()
			ns.Head = d.bool()
			g.Nodes = append(g.Nodes, ns)
		}
		nb := d.count(4)
		for j := 0; j < nb && d.err == nil; j++ {
			var bs BlockState
			bs.Index = d.vint()
			bs.Label = d.str(table)
			nbn := d.count(1)
			bs.Nodes = make([]int, nbn)
			for k := range bs.Nodes {
				bs.Nodes[k] = d.vint()
			}
			bs.Output = d.vint()
			g.Blocks = append(g.Blocks, bs)
		}
		out = append(out, g)
	}
	return out
}

func encodeCuts(e *enc, cuts []CutState) {
	e.uvarint(uint64(len(cuts)))
	for _, c := range cuts {
		e.u64(c.Scope)
		e.vint(c.Parent)
		e.vint(c.At)
		e.bool(c.Blockwise)
		e.vint(c.Head.Hidden1)
		e.vint(c.Head.Hidden2)
		e.vint(c.Head.Classes)
	}
}

func decodeCuts(d *dec) []CutState {
	n := d.count(14)
	out := make([]CutState, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		c := CutState{
			Scope:     d.u64(),
			Parent:    d.vint(),
			At:        d.vint(),
			Blockwise: d.bool(),
		}
		c.Head.Hidden1 = d.vint()
		c.Head.Hidden2 = d.vint()
		c.Head.Classes = d.vint()
		out = append(out, c)
	}
	return out
}
