package persist

import (
	"fmt"

	"netcut/internal/graph"
)

// The snapshot's graph codec. It mirrors graph.Graph field for field —
// including every field the structural fingerprint covers and every
// field the planning pipeline (fusion pass, subgraph builder, Eq. (1))
// reads — so decode(encode(g)) has the same fingerprint and plans,
// measures and cuts identically to g. It is deliberately independent of
// the gateway's HTTP wire schema: the two formats evolve on different
// compatibility clocks (a state file is consumed by the same binary
// generation that wrote it, enforced by SchemaVersion; the HTTP API is
// a public surface).

// ShapeState is a feature-map shape.
type ShapeState struct {
	H int `json:"h,omitempty"`
	W int `json:"w,omitempty"`
	C int `json:"c,omitempty"`
}

// NodeState is one layer. Kind and Pad are the canonical string names
// (graph.OpKind.String / graph.PadMode.String), so a snapshot stays
// debuggable and decode rejects unknown operators structurally.
type NodeState struct {
	ID          int        `json:"id"`
	Name        string     `json:"name,omitempty"`
	Kind        string     `json:"kind"`
	Inputs      []int      `json:"inputs,omitempty"`
	In          ShapeState `json:"in,omitempty"`
	Out         ShapeState `json:"out,omitempty"`
	KH          int        `json:"kh,omitempty"`
	KW          int        `json:"kw,omitempty"`
	Stride      int        `json:"stride,omitempty"`
	Pad         string     `json:"pad,omitempty"`
	MACs        int64      `json:"macs,omitempty"`
	Params      int64      `json:"params,omitempty"`
	WeightBytes int64      `json:"weight_bytes,omitempty"`
	IOBytes     int64      `json:"io_bytes,omitempty"`
	Block       int        `json:"block"`
	Head        bool       `json:"head,omitempty"`
}

// BlockState is one removable block.
type BlockState struct {
	Index  int    `json:"index"`
	Label  string `json:"label,omitempty"`
	Nodes  []int  `json:"nodes"`
	Output int    `json:"output"`
}

// GraphState is a full layer graph.
type GraphState struct {
	Name       string       `json:"name"`
	Input      ShapeState   `json:"input"`
	NumClasses int          `json:"num_classes"`
	Nodes      []NodeState  `json:"nodes"`
	Blocks     []BlockState `json:"blocks,omitempty"`
}

func shapeState(s graph.Shape) ShapeState { return ShapeState{H: s.H, W: s.W, C: s.C} }
func (s ShapeState) shape() graph.Shape   { return graph.Shape{H: s.H, W: s.W, C: s.C} }

// EncodeGraph renders g in the snapshot schema.
func EncodeGraph(g *graph.Graph) GraphState {
	out := GraphState{
		Name:       g.Name,
		Input:      shapeState(g.InputShape),
		NumClasses: g.NumClasses,
		Nodes:      make([]NodeState, 0, len(g.Nodes)),
		Blocks:     make([]BlockState, 0, len(g.Blocks)),
	}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, NodeState{
			ID:          n.ID,
			Name:        n.Name,
			Kind:        n.Kind.String(),
			Inputs:      append([]int(nil), n.Inputs...),
			In:          shapeState(n.In),
			Out:         shapeState(n.Out),
			KH:          n.KH,
			KW:          n.KW,
			Stride:      n.Stride,
			Pad:         n.Pad.String(),
			MACs:        n.MACs,
			Params:      n.Params,
			WeightBytes: n.WeightBytes,
			IOBytes:     n.IOBytes,
			Block:       n.Block,
			Head:        n.Head,
		})
	}
	for _, b := range g.Blocks {
		out.Blocks = append(out.Blocks, BlockState{
			Index:  b.Index,
			Label:  b.Label,
			Nodes:  append([]int(nil), b.Nodes...),
			Output: b.Output,
		})
	}
	return out
}

// DecodeGraph assembles a graph.Graph from its snapshot form and runs
// it through graph.Validate — the same trust boundary every other graph
// entry point uses, so even a hand-edited state file cannot smuggle a
// malformed graph into the caches.
func DecodeGraph(s *GraphState) (*graph.Graph, error) {
	g := &graph.Graph{
		Name:       s.Name,
		InputShape: s.Input.shape(),
		NumClasses: s.NumClasses,
		Nodes:      make([]*graph.Node, 0, len(s.Nodes)),
	}
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		kind, ok := graph.ParseOpKind(ns.Kind)
		if !ok {
			return nil, fmt.Errorf("graph %s: node %d: unknown kind %q", s.Name, ns.ID, ns.Kind)
		}
		var pad graph.PadMode
		switch ns.Pad {
		case "", "valid":
			pad = graph.Valid
		case "same":
			pad = graph.Same
		default:
			return nil, fmt.Errorf("graph %s: node %d: unknown pad mode %q", s.Name, ns.ID, ns.Pad)
		}
		g.Nodes = append(g.Nodes, &graph.Node{
			ID:          ns.ID,
			Name:        ns.Name,
			Kind:        kind,
			Inputs:      append([]int(nil), ns.Inputs...),
			In:          ns.In.shape(),
			Out:         ns.Out.shape(),
			KH:          ns.KH,
			KW:          ns.KW,
			Stride:      ns.Stride,
			Pad:         pad,
			MACs:        ns.MACs,
			Params:      ns.Params,
			WeightBytes: ns.WeightBytes,
			IOBytes:     ns.IOBytes,
			Block:       ns.Block,
			Head:        ns.Head,
		})
	}
	for _, bs := range s.Blocks {
		g.Blocks = append(g.Blocks, graph.Block{
			Index:  bs.Index,
			Label:  bs.Label,
			Nodes:  append([]int(nil), bs.Nodes...),
			Output: bs.Output,
		})
	}
	if err := graph.Validate(g); err != nil {
		return nil, err
	}
	return g, nil
}
