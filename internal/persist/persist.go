// Package persist implements the versioned, deterministic serialization
// of the planning stack's warm state — device kernel plans, profiler
// measurements and per-layer tables, and scoped trim cuts — so a
// restarted daemon (or a freshly built Planner) can restore its caches
// instead of paying the ~23x cold/warm gap on every first-seen
// (graph, device) pair.
//
// Format: a single JSON envelope
//
//	{"magic":"netcut-state","version":N,"checksum":"<fnv1a-64 hex>","payload":{...}}
//
// whose payload is the File document below. The envelope is what makes
// rejection structured instead of silent:
//
//   - Magic and Version are checked first: a snapshot from a different
//     schema generation is ErrVersionMismatch, never a best-effort
//     parse. Any change to the payload schema MUST bump SchemaVersion.
//   - Checksum is FNV-1a over the exact payload bytes: a truncated or
//     bit-flipped file is ErrChecksumMismatch before any field of it is
//     trusted.
//   - Identity fields inside the payload (device name, calibration
//     fingerprint, seed, measurement protocol) are matched by the
//     restoring layer (serve.Planner.LoadState): a snapshot taken on a
//     different calibration or seed is rejected, never silently
//     trusted — restored entries must be byte-identical to what a
//     fresh computation would produce, which only holds when every
//     input to those computations matches.
//
// Serialization is deterministic: entries are written in cache (LRU)
// order, parents are deduplicated in first-appearance order, and
// encoding/json's struct-order field emission plus shortest-roundtrip
// float formatting make equal states produce equal bytes. Saving a
// state and restoring it into a fresh process, then saving again,
// yields the identical file — the restore-equals-recompute contract the
// serve package pins.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/profiler"
	"netcut/internal/trim"
)

// SchemaVersion identifies the payload schema. Bump it on ANY change to
// the wire structs below; Decode rejects every other version.
const SchemaVersion = 1

// Magic identifies a NetCut state snapshot.
const Magic = "netcut-state"

// Structured rejection reasons; callers branch with errors.Is.
var (
	// ErrNotSnapshot rejects input that is not a NetCut state snapshot
	// at all (bad magic, non-JSON, truncated envelope).
	ErrNotSnapshot = errors.New("not a netcut state snapshot")
	// ErrVersionMismatch rejects snapshots from another schema
	// generation.
	ErrVersionMismatch = errors.New("snapshot schema version mismatch")
	// ErrChecksumMismatch rejects corrupt or truncated payloads.
	ErrChecksumMismatch = errors.New("snapshot checksum mismatch")
	// ErrStateMismatch rejects structurally valid snapshots whose
	// identity (device calibration, seed, protocol) does not match the
	// restoring planner. Declared here so every layer shares one
	// sentinel.
	ErrStateMismatch = errors.New("snapshot does not match this planner")
)

// File is the payload: every planner section of a pool (one for a
// single Planner) plus the process-wide cut-cache state.
type File struct {
	// Seed is the base measurement/retraining seed the state was
	// produced under.
	Seed int64 `json:"seed"`
	// Planners holds one section per device-keyed planner, in
	// registration order.
	Planners []PlannerState `json:"planners"`
	// Cuts is the cut-coordinate form of the process-wide cut cache
	// (filtered to the saved planners' scopes plus the shared scope 0).
	Cuts CutsState `json:"cuts"`
}

// PlannerState is one planner's warm state plus the identity fields a
// restore must match before trusting any entry.
type PlannerState struct {
	Device      string `json:"device"`
	Calibration uint64 `json:"calibration"`
	Seed        int64  `json:"seed"`
	WarmupRuns  int    `json:"warmup_runs"`
	TimedRuns   int    `json:"timed_runs"`

	Plans        []device.PlanState          `json:"plans"`
	Measurements []profiler.MeasurementState `json:"measurements"`
	Tables       []profiler.TableState       `json:"tables"`
}

// CutsState stores cut-cache entries as cut coordinates against a
// deduplicated parent-graph table (see trim.SnapshotCuts for why cuts
// are re-executed rather than stored).
type CutsState struct {
	Parents []GraphState `json:"parents"`
	Cuts    []CutState   `json:"cuts"`
}

// CutState is one cut-cache entry: scope + parent (by index into
// CutsState.Parents) + position + granularity + head.
type CutState struct {
	Scope     uint64        `json:"scope"`
	Parent    int           `json:"parent"`
	At        int           `json:"at"`
	Blockwise bool          `json:"blockwise"`
	Head      trim.HeadSpec `json:"head"`
}

// envelope is the outer document; Payload stays raw so the checksum is
// computed over the exact bytes that will be decoded.
type envelope struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

func checksum(payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Encode writes f as a versioned, checksummed snapshot. Equal Files
// produce equal bytes.
func Encode(w io.Writer, f *File) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("persist: encoding payload: %w", err)
	}
	env, err := json.Marshal(envelope{
		Magic:    Magic,
		Version:  SchemaVersion,
		Checksum: checksum(payload),
		Payload:  payload,
	})
	if err != nil {
		return fmt.Errorf("persist: encoding envelope: %w", err)
	}
	env = append(env, '\n')
	_, err = w.Write(env)
	return err
}

// Decode reads and validates a snapshot: magic, schema version and
// checksum gate the payload parse, so a stale, foreign or corrupt file
// is a structured error before any of its content is trusted. Callers
// then match the payload's identity fields themselves.
func Decode(r io.Reader) (*File, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	return DecodeBytes(raw)
}

// DecodeBytes is Decode over an in-memory snapshot (the fuzz target).
func DecodeBytes(raw []byte) (*File, error) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("persist: %w: %v", ErrNotSnapshot, err)
	}
	if env.Magic != Magic {
		return nil, fmt.Errorf("persist: %w: magic %q", ErrNotSnapshot, env.Magic)
	}
	if env.Version != SchemaVersion {
		return nil, fmt.Errorf("persist: %w: snapshot version %d, this build speaks %d",
			ErrVersionMismatch, env.Version, SchemaVersion)
	}
	if got := checksum(env.Payload); got != env.Checksum {
		return nil, fmt.Errorf("persist: %w: payload hashes to %s, envelope claims %s",
			ErrChecksumMismatch, got, env.Checksum)
	}
	var f File
	if err := json.Unmarshal(env.Payload, &f); err != nil {
		return nil, fmt.Errorf("persist: %w: payload: %v", ErrNotSnapshot, err)
	}
	return &f, nil
}

// CaptureCuts snapshots the process-wide cut cache (filtered by scope;
// nil keeps everything) into wire form, deduplicating parent graphs by
// structural fingerprint in first-appearance order.
func CaptureCuts(keep func(scope uint64) bool) CutsState {
	recs := trim.SnapshotCuts(keep)
	var cs CutsState
	index := make(map[uint64]int)
	for _, r := range recs {
		pi, ok := index[r.ParentPrint]
		if !ok {
			pi = len(cs.Parents)
			index[r.ParentPrint] = pi
			cs.Parents = append(cs.Parents, EncodeGraph(r.Parent))
		}
		cs.Cuts = append(cs.Cuts, CutState{
			Scope:     r.Scope,
			Parent:    pi,
			At:        r.At,
			Blockwise: r.Blockwise,
			Head:      r.Head,
		})
	}
	return cs
}

// RestoreCuts re-executes snapshotted cuts through the public trim
// path, repopulating the process-wide cut cache. keep filters by scope
// (nil keeps everything): a restoring planner passes its own
// calibration fingerprint plus the shared scope 0, so entries scoped to
// devices this process does not serve are skipped, not trusted. Only
// parents a kept cut references are decoded (each must pass
// graph.Validate), and every kept record — parent and coordinates — is
// validated before any cut is replayed, so a rejected cut section
// leaves the cache untouched.
func RestoreCuts(cs CutsState, keep func(scope uint64) bool) error {
	recs := make([]trim.CutRecord, 0, len(cs.Cuts))
	parents := make(map[int]*graph.Graph)
	for i, c := range cs.Cuts {
		if keep != nil && !keep(c.Scope) {
			continue
		}
		if c.Parent < 0 || c.Parent >= len(cs.Parents) {
			return fmt.Errorf("persist: cut %d references parent %d of %d", i, c.Parent, len(cs.Parents))
		}
		parent, ok := parents[c.Parent]
		if !ok {
			g, err := DecodeGraph(&cs.Parents[c.Parent])
			if err != nil {
				return fmt.Errorf("persist: cut parent %d: %w", c.Parent, err)
			}
			parents[c.Parent] = g
			parent = g
		}
		rec := trim.CutRecord{
			Scope:     c.Scope,
			Parent:    parent,
			At:        c.At,
			Blockwise: c.Blockwise,
			Head:      c.Head,
		}
		if err := trim.CheckCut(rec); err != nil {
			return fmt.Errorf("persist: cut %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	for i, rec := range recs {
		if err := trim.RestoreCut(rec); err != nil {
			return fmt.Errorf("persist: replaying cut %d: %w", i, err)
		}
	}
	return nil
}
