// Package persist implements the versioned, deterministic serialization
// of the planning stack's warm state — device kernel plans, profiler
// measurements and per-layer tables, and scoped trim cuts — so a
// restarted daemon (or a freshly built Planner) can restore its caches
// instead of paying the ~23x cold/warm gap on every first-seen
// (graph, device) pair.
//
// Format: a compact binary envelope
//
//	"netcut-state" version:u8 checksum:fixed64 frame...
//
// where each frame is one independently decodable section (see
// section.go for the frame layout): a length-prefixed body carrying a
// kind byte, an identity header (device, calibration fingerprint,
// seed, measurement protocol), a per-frame deduplicated string table,
// varint/fixed64-encoded records, and its own trailing FNV-1a 64
// checksum. No reflection runs in either direction — every section
// kind has a hand-written encode and decode walk.
//
// The envelope is what makes rejection structured instead of silent:
//
//   - Magic and Version are checked first: a snapshot from a different
//     schema generation — including the retired JSON generation, which
//     is recognized by its leading '{' — is ErrVersionMismatch, never a
//     best-effort parse. Any change to the wire layout MUST bump
//     SchemaVersion.
//   - The envelope checksum is FNV-1a over the exact payload bytes, and
//     every frame repeats the check over its own bytes: a truncated or
//     bit-flipped file is ErrChecksumMismatch before any field of it is
//     trusted, and the frame-level check localizes the damage to one
//     section even when frames travel without the envelope.
//   - Identity fields in each frame header (device name, calibration
//     fingerprint, seed, measurement protocol) are matched by the
//     restoring layer (serve.Planner.LoadState): a snapshot taken on a
//     different calibration or seed is rejected, never silently
//     trusted — restored entries must be byte-identical to what a
//     fresh computation would produce, which only holds when every
//     input to those computations matches.
//
// Serialization is deterministic: entries are written in cache (LRU)
// order, parents and strings are deduplicated in first-appearance
// order, and floats are stored as IEEE-754 bit patterns, so equal
// states produce equal bytes. Saving a state and restoring it into a
// fresh process, then saving again, yields the identical file — the
// restore-equals-recompute contract the serve package pins. Decoding
// may run sections concurrently (DecodeParallel) without changing any
// of that: sections are independent, results land in position-indexed
// slots, and cut replay re-inserts serially in snapshot order.
package persist

import (
	"errors"
	"fmt"
	"io"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/par"
	"netcut/internal/profiler"
	"netcut/internal/trim"
)

// SchemaVersion identifies the wire layout. Bump it on ANY change to
// the envelope, frame layout or record encodings; Decode rejects every
// other version. Version 1 was the JSON generation; 2 is the binary
// section format.
const SchemaVersion = 2

// Magic identifies a NetCut state snapshot.
const Magic = "netcut-state"

// Structured rejection reasons; callers branch with errors.Is.
var (
	// ErrNotSnapshot rejects input that is not a NetCut state snapshot
	// at all (bad magic, truncated envelope, broken frame structure).
	ErrNotSnapshot = errors.New("not a netcut state snapshot")
	// ErrVersionMismatch rejects snapshots from another schema
	// generation (including the retired JSON format).
	ErrVersionMismatch = errors.New("snapshot schema version mismatch")
	// ErrChecksumMismatch rejects corrupt or truncated payloads and
	// frames.
	ErrChecksumMismatch = errors.New("snapshot checksum mismatch")
	// ErrStateMismatch rejects structurally valid snapshots whose
	// identity (device calibration, seed, protocol) does not match the
	// restoring planner. Declared here so every layer shares one
	// sentinel.
	ErrStateMismatch = errors.New("snapshot does not match this planner")
)

// File is the in-memory form of a whole snapshot: every planner
// section of a pool (one for a single Planner) plus the process-wide
// cut-cache state. On the wire it is a flat sequence of sections — see
// Sections and FromSections.
type File struct {
	// Seed is the base measurement/retraining seed the state was
	// produced under.
	Seed int64 `json:"seed"`
	// Planners holds one section per device-keyed planner, in
	// registration order.
	Planners []PlannerState `json:"planners"`
	// Cuts is the cut-coordinate form of the process-wide cut cache
	// (filtered to the saved planners' scopes plus the shared scope 0).
	Cuts CutsState `json:"cuts"`
}

// PlannerState is one planner's warm state plus the identity fields a
// restore must match before trusting any entry.
type PlannerState struct {
	Device      string `json:"device"`
	Calibration uint64 `json:"calibration"`
	Seed        int64  `json:"seed"`
	WarmupRuns  int    `json:"warmup_runs"`
	TimedRuns   int    `json:"timed_runs"`

	Plans        []device.PlanState          `json:"plans"`
	Measurements []profiler.MeasurementState `json:"measurements"`
	Tables       []profiler.TableState       `json:"tables"`
}

// CutsState stores cut-cache entries as cut coordinates against a
// deduplicated parent-graph table (see trim.SnapshotCuts for why cuts
// are re-executed rather than stored).
type CutsState struct {
	Parents []GraphState `json:"parents"`
	Cuts    []CutState   `json:"cuts"`
}

// CutState is one cut-cache entry: scope + parent (by index into
// CutsState.Parents) + position + granularity + head.
type CutState struct {
	Scope     uint64        `json:"scope"`
	Parent    int           `json:"parent"`
	At        int           `json:"at"`
	Blockwise bool          `json:"blockwise"`
	Head      trim.HeadSpec `json:"head"`
}

// Encode writes f as a versioned, checksummed binary snapshot. Equal
// Files produce equal bytes.
func Encode(w io.Writer, f *File) error {
	return WriteSections(w, f.Sections())
}

// Decode reads and validates a snapshot serially: magic, schema
// version and both checksum layers gate the parse, so a stale, foreign
// or corrupt file is a structured error before any of its content is
// trusted. Callers then match the frame identity fields themselves.
func Decode(r io.Reader) (*File, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	return DecodeBytes(raw)
}

// DecodeParallel is Decode with sections decoded concurrently (width
// par.Workers). Identical results and errors — parallelism changes
// wall-clock only.
func DecodeParallel(r io.Reader) (*File, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	return DecodeBytesParallel(raw)
}

// DecodeBytes is Decode over an in-memory snapshot (the fuzz target).
func DecodeBytes(raw []byte) (*File, error) {
	return decodeAll(raw, false)
}

// DecodeBytesParallel is DecodeParallel over an in-memory snapshot.
func DecodeBytesParallel(raw []byte) (*File, error) {
	return decodeAll(raw, true)
}

// CaptureCuts snapshots the process-wide cut cache (filtered by scope;
// nil keeps everything) into wire form, deduplicating parent graphs by
// structural fingerprint in first-appearance order.
func CaptureCuts(keep func(scope uint64) bool) CutsState {
	recs := trim.SnapshotCuts(keep)
	var cs CutsState
	index := make(map[uint64]int)
	for _, r := range recs {
		pi, ok := index[r.ParentPrint]
		if !ok {
			pi = len(cs.Parents)
			index[r.ParentPrint] = pi
			cs.Parents = append(cs.Parents, EncodeGraph(r.Parent))
		}
		cs.Cuts = append(cs.Cuts, CutState{
			Scope:     r.Scope,
			Parent:    pi,
			At:        r.At,
			Blockwise: r.Blockwise,
			Head:      r.Head,
		})
	}
	return cs
}

// RestoreCuts re-executes snapshotted cuts through the public trim
// path, repopulating the process-wide cut cache. keep filters by scope
// (nil keeps everything): a restoring planner passes its own
// calibration fingerprint plus the shared scope 0, so entries scoped to
// devices this process does not serve are skipped, not trusted. Only
// parents a kept cut references are decoded (each must pass
// graph.Validate), and every kept record — parent and coordinates — is
// validated before any cut is replayed, so a rejected cut section
// leaves the cache untouched.
//
// Parent decoding and cut building fan out over par.ForEach with
// position-indexed slots; insertion into the cut cache stays serial in
// snapshot order, so the cache's per-shard recency — and with it the
// save/load/save byte identity — is exactly what a serial replay
// would have produced.
func RestoreCuts(cs CutsState, keep func(scope uint64) bool) error {
	kept := make([]int, 0, len(cs.Cuts))
	for i, c := range cs.Cuts {
		if keep != nil && !keep(c.Scope) {
			continue
		}
		if c.Parent < 0 || c.Parent >= len(cs.Parents) {
			return fmt.Errorf("persist: cut %d references parent %d of %d", i, c.Parent, len(cs.Parents))
		}
		kept = append(kept, i)
	}
	if len(kept) == 0 {
		return nil
	}

	// Decode each referenced parent once, concurrently. Slot order is
	// first-use order, so the lowest-index error par.ForEach reports is
	// the same parent a serial walk would have failed on first.
	slot := make(map[int]int)
	var order []int
	for _, i := range kept {
		p := cs.Cuts[i].Parent
		if _, ok := slot[p]; !ok {
			slot[p] = len(order)
			order = append(order, p)
		}
	}
	decoded := make([]*graph.Graph, len(order))
	if err := par.ForEach(len(order), func(j int) error {
		g, err := DecodeGraph(&cs.Parents[order[j]])
		if err != nil {
			return fmt.Errorf("persist: cut parent %d: %w", order[j], err)
		}
		decoded[j] = g
		return nil
	}); err != nil {
		return err
	}

	recs := make([]trim.CutRecord, len(kept))
	for j, i := range kept {
		c := cs.Cuts[i]
		recs[j] = trim.CutRecord{
			Scope:     c.Scope,
			Parent:    decoded[slot[c.Parent]],
			At:        c.At,
			Blockwise: c.Blockwise,
			Head:      c.Head,
		}
		if err := trim.CheckCut(recs[j]); err != nil {
			return fmt.Errorf("persist: cut %d: %w", i, err)
		}
	}

	// Build every cut concurrently into its slot, then insert serially
	// in snapshot order to preserve the cache's recency ordering.
	trns := make([]*trim.TRN, len(recs))
	if err := par.ForEach(len(recs), func(j int) error {
		trn, err := trim.BuildCut(recs[j])
		if err != nil {
			return fmt.Errorf("persist: replaying cut %d: %w", kept[j], err)
		}
		trns[j] = trn
		return nil
	}); err != nil {
		return err
	}
	for j := range recs {
		trim.InsertCut(recs[j], trns[j])
	}
	return nil
}
