package persist

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// The binary wire primitives shared by the envelope and section
// codecs. Integers are varints (zigzag for signed values), floats are
// fixed 8-byte little-endian IEEE-754 bit patterns (Float64bits, so
// every value — including the non-finite ones validation must see to
// reject — round-trips bit-exactly), and strings inside a frame are
// references into a per-frame deduplicated table. Nothing here uses
// reflection: each section kind has a hand-written encode and decode
// walk over its wire structs.

// checksum64 is the FNV-1a 64 hash used by both the envelope (over the
// whole payload) and each frame (over its own bytes).
func checksum64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// enc builds one frame body. Records append to buf while strings
// intern into a first-use-ordered table; the assembled frame emits the
// table ahead of the records so a decoder resolves references in one
// forward pass. Interning in encounter order keeps encoding
// deterministic: equal sections produce equal bytes.
type enc struct {
	buf   []byte
	index map[string]uint64
	table []string
}

func (e *enc) u8(v byte)        { e.buf = append(e.buf, v) }
func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) vint(v int)       { e.varint(int64(v)) }
func (e *enc) u64(v uint64)     { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) f64(v float64)    { e.u64(math.Float64bits(v)) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// rawString writes a length-prefixed string inline (identity headers
// and the string table itself).
func (e *enc) rawString(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// str writes a reference into the frame's string table, interning s on
// first use.
func (e *enc) str(s string) {
	i, ok := e.index[s]
	if !ok {
		i = uint64(len(e.table))
		e.table = append(e.table, s)
		if e.index == nil {
			e.index = make(map[string]uint64)
		}
		e.index[s] = i
	}
	e.uvarint(i)
}

// dec is a bounds-checked cursor over one frame (or payload). Every
// accessor records the first structural error and returns zero values
// afterwards, so decode walks read linearly and check err once per
// section instead of at every field — and a truncated or hostile input
// can never index past the buffer or panic.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.failf("truncated byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.failf("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.failf("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// vint is varint narrowed to int (int is 64-bit on every supported
// platform; the restoring layers re-validate ranges regardless).
func (d *dec) vint() int { return int(d.varint()) }

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.failf("truncated fixed64 at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) bool() bool { return d.u8() != 0 }

// count reads a collection length and bounds it by the bytes left:
// each element costs at least min bytes on the wire, so a hostile
// length that could not possibly fit is rejected before it sizes an
// allocation or a loop.
func (d *dec) count(min int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(d.remaining()/min) {
		d.failf("length %d exceeds the %d bytes left in the frame", v, d.remaining())
		return 0
	}
	return int(v)
}

func (d *dec) rawString() string {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// strTable reads a frame's deduplicated string table.
func (d *dec) strTable() []string {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	t := make([]string, n)
	for i := range t {
		t[i] = d.rawString()
	}
	return t
}

// str resolves an interned string-table reference.
func (d *dec) str(table []string) string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(table)) {
		d.failf("string index %d out of a %d-entry table", i, len(table))
		return ""
	}
	return table[i]
}
