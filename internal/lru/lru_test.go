package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAddBasics(t *testing.T) {
	c := New[string, int](0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Add("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	// Add on an existing key keeps the canonical first value.
	if v := c.Add("a", 2); v != 1 {
		t.Fatalf("Add on existing key returned %d; want canonical 1", v)
	}
	if v, _ := c.Get("a"); v != 1 {
		t.Fatalf("existing value overwritten: got %d", v)
	}
}

func TestCapNeverExceeded(t *testing.T) {
	const cap = 8
	c := New[int, int](cap)
	for i := 0; i < 10*cap; i++ {
		c.Add(i, i)
		if n := c.Len(); n > cap {
			t.Fatalf("after %d inserts Len = %d exceeds cap %d", i+1, n, cap)
		}
	}
	if n := c.Len(); n != cap {
		t.Fatalf("steady-state Len = %d; want %d", n, cap)
	}
	if s := c.Stats(); s.Evictions != 10*cap-cap {
		t.Fatalf("evictions = %d; want %d", s.Evictions, 10*cap-cap)
	}
}

func TestLRUOrder(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Get(1)    // 1 becomes most recent
	c.Add(3, 3) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted (1 was refreshed)")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d should be resident", k)
		}
	}
}

// TestEvictionTransparency pins the package contract: recomputing an
// evicted key yields a value identical to the one first cached.
func TestEvictionTransparency(t *testing.T) {
	compute := func(k int) string { return fmt.Sprintf("value-%d", k*k) }
	c := New[int, string](4)
	first := make(map[int]string)
	for k := 0; k < 32; k++ {
		first[k] = c.GetOrCompute(k, func() string { return compute(k) })
	}
	// Everything below 28 has been evicted; recompute must reproduce.
	for k := 0; k < 32; k++ {
		got := c.GetOrCompute(k, func() string { return compute(k) })
		if got != first[k] {
			t.Fatalf("key %d: post-eviction value %q differs from original %q", k, got, first[k])
		}
	}
}

func TestPurge(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 8; i++ {
		c.Add(i, i)
	}
	c.Purge()
	if n := c.Len(); n != 0 {
		t.Fatalf("Len = %d after Purge", n)
	}
	if s := c.Stats(); s.Evictions != 8 || s.Cap != 8 {
		t.Fatalf("stats after Purge = %+v", s)
	}
	if v := c.GetOrCompute(3, func() int { return 33 }); v != 33 {
		t.Fatalf("recompute after Purge returned %d", v)
	}
}

func TestResize(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 100; i++ {
		c.Add(i, i)
	}
	c.Resize(10)
	if n := c.Len(); n != 10 {
		t.Fatalf("after Resize(10) Len = %d", n)
	}
	// The 10 most recently inserted survive.
	for i := 90; i < 100; i++ {
		if _, ok := c.Get(i); !ok {
			t.Fatalf("recently used key %d evicted by Resize", i)
		}
	}
	c.Resize(0)
	for i := 0; i < 100; i++ {
		c.Add(1000+i, i)
	}
	if n := c.Len(); n != 110 {
		t.Fatalf("unbounded after Resize(0): Len = %d; want 110", n)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New[int, int](2)
	c.Get(1)       // miss
	c.Add(1, 1)    //
	c.Get(1)       // hit
	c.Add(2, 2)    //
	c.Add(3, 3)    // evicts 1
	c.Get(1)       // miss
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Evictions != 1 || s.Len != 2 || s.Cap != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 1.0/3 {
		t.Fatalf("hit rate = %v", got)
	}
}

// TestConcurrentCanonicalValue checks that racing GetOrCompute calls on
// one key all observe a single canonical value, and that concurrent use
// under -race is clean with evictions in flight.
func TestConcurrentCanonicalValue(t *testing.T) {
	c := New[int, *int](16)
	const workers = 8
	const keys = 64
	var wg sync.WaitGroup
	got := make([][]*int, workers)
	for w := 0; w < workers; w++ {
		got[w] = make([]*int, keys)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				v := k
				got[w][k] = c.GetOrCompute(k%7, func() *int { return &v })
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 16 {
		t.Fatalf("cap exceeded under concurrency: %d", n)
	}
	// Keys 0..6 never evict (only 7 distinct keys, cap 16) and Add keeps
	// the first-resident value, so every GetOrCompute return for a key —
	// including the racing first round — must be the canonical pointer.
	for k := 0; k < 7; k++ {
		canon, ok := c.Get(k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		for w := 0; w < workers; w++ {
			for i := k; i < keys; i += 7 {
				if got[w][i] != canon {
					t.Fatalf("worker %d iteration %d saw non-canonical value for key %d", w, i, k)
				}
			}
		}
	}
}

func TestDeleteFunc(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 8; i++ {
		c.Add(i, i*10)
	}
	before := c.Stats().Evictions
	if n := c.DeleteFunc(func(k int) bool { return k%2 == 0 }); n != 4 {
		t.Fatalf("DeleteFunc removed %d entries; want 4", n)
	}
	if n := c.Len(); n != 4 {
		t.Fatalf("Len = %d after deleting evens; want 4", n)
	}
	for i := 0; i < 8; i++ {
		_, ok := c.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) resident = %v; want %v", i, ok, want)
		}
	}
	if got := c.Stats().Evictions - before; got != 4 {
		t.Fatalf("deletions counted %d evictions; want 4", got)
	}
	// Deleting nothing is a no-op, and the survivors still behave:
	// recency order was untouched for them.
	if n := c.DeleteFunc(func(int) bool { return false }); n != 0 {
		t.Fatalf("no-op DeleteFunc removed %d entries", n)
	}
}
