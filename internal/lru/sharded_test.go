package lru

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"netcut/internal/telemetry"
)

func TestShardCapsSumExactly(t *testing.T) {
	for _, tc := range []struct{ n, total int }{
		{16, 8192}, {16, 8191}, {3, 10}, {5, 5}, {1, 100},
	} {
		caps := shardCaps(tc.n, tc.total)
		sum := 0
		for _, c := range caps {
			sum += c
			if c < 0 {
				t.Fatalf("n=%d total=%d: negative shard cap %d", tc.n, tc.total, c)
			}
		}
		if sum != tc.total {
			t.Fatalf("n=%d total=%d: caps sum to %d", tc.n, tc.total, sum)
		}
	}
	for _, c := range shardCaps(4, 0) {
		if c != 0 {
			t.Fatalf("unbounded total produced bounded shard cap %d", c)
		}
	}
}

func TestShardedBasicsAndBounds(t *testing.T) {
	const shards, total = 4, 8
	s := NewSharded[int, string](shards, total, func(k int) uint64 { return uint64(k) })
	if s.Shards() != shards {
		t.Fatalf("shards = %d", s.Shards())
	}
	for i := 0; i < 64; i++ {
		s.Add(i, fmt.Sprint(i))
	}
	if s.Len() > total {
		t.Fatalf("len %d exceeds total cap %d", s.Len(), total)
	}
	for i, st := range s.ShardStats() {
		if st.Len > st.Cap {
			t.Fatalf("shard %d holds %d > cap %d", i, st.Len, st.Cap)
		}
	}
	agg := s.Stats()
	if agg.Cap != total {
		t.Fatalf("aggregate cap = %d, want %d", agg.Cap, total)
	}
	if agg.Evictions == 0 {
		t.Fatal("64 inserts into cap 8 produced no evictions")
	}
	// Most-recent keys per shard are resident.
	if v, ok := s.Get(63); !ok || v != "63" {
		t.Fatalf("Get(63) = %q, %v", v, ok)
	}
}

func TestShardedSameHashSameShard(t *testing.T) {
	s := NewSharded[int, int](8, 80, func(k int) uint64 { return uint64(k % 3) })
	for i := 0; i < 30; i++ {
		s.Add(i, i)
	}
	used := 0
	for _, st := range s.ShardStats() {
		if st.Len > 0 {
			used++
		}
	}
	if used != 3 {
		t.Fatalf("3 hash classes landed in %d shards", used)
	}
}

// TestShardedTinyTotalStaysBounded pins the active-shard routing: a
// bounded total below the shard count must still bound the cache at
// exactly that total (a zero per-shard cap would mean unbounded).
func TestShardedTinyTotalStaysBounded(t *testing.T) {
	s := NewSharded[int, int](16, 3, func(k int) uint64 { return uint64(k) })
	for i := 0; i < 64; i++ {
		s.Add(i, i)
	}
	if s.Len() > 3 {
		t.Fatalf("len %d exceeds tiny total cap 3", s.Len())
	}
	if got := s.Stats().Cap; got != 3 {
		t.Fatalf("aggregate cap = %d, want 3", got)
	}
	// Growing back across the threshold re-activates every shard.
	s.Resize(32)
	for i := 0; i < 32; i++ {
		s.Add(i, i)
	}
	if s.Len() > 32 {
		t.Fatalf("len %d exceeds cap 32 after regrow", s.Len())
	}
	if got := s.Stats().Cap; got != 32 {
		t.Fatalf("aggregate cap = %d, want 32 after regrow", got)
	}
}

func TestShardedGetOrComputeSingleValue(t *testing.T) {
	s := NewSharded[int, *int](4, 16, func(k int) uint64 { return uint64(k) })
	var wg sync.WaitGroup
	vals := make([]*int, 16)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i] = s.GetOrCompute(7, func() *int { v := 7; return &v })
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[0] {
			t.Fatal("concurrent GetOrCompute returned distinct canonical values")
		}
	}
}

func TestShardedResizeAndPurge(t *testing.T) {
	s := NewSharded[int, int](4, 100, func(k int) uint64 { return uint64(k) })
	for i := 0; i < 100; i++ {
		s.Add(i, i)
	}
	s.Resize(8)
	if s.Len() > 8 {
		t.Fatalf("len %d after resize to 8", s.Len())
	}
	if got := s.Stats().Cap; got != 8 {
		t.Fatalf("cap %d after resize, want 8", got)
	}
	s.Purge()
	if s.Len() != 0 {
		t.Fatalf("len %d after purge", s.Len())
	}
	s.Resize(0)
	for i := 0; i < 50; i++ {
		s.Add(i, i)
	}
	if s.Len() != 50 {
		t.Fatalf("unbounded resize still evicting: len %d", s.Len())
	}
}

func TestInstrumentRegistersStandardSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New[int, int](4)
	Instrument(reg, "test_cache", c)
	c.Add(1, 1)
	c.Get(1)
	c.Get(2)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"test_cache_entries 1",
		"test_cache_cap 4",
		"test_cache_hits_total 1",
		"test_cache_misses_total 1",
		"test_cache_evictions_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sharded satisfies the same source interface.
	Instrument(reg, "test_sharded", NewSharded[int, int](2, 4, func(k int) uint64 { return uint64(k) }))
}

func TestShardedDeleteFunc(t *testing.T) {
	s := NewSharded[int, int](4, 16, func(k int) uint64 { return uint64(k) })
	for i := 0; i < 16; i++ {
		s.Add(i, i)
	}
	if n := s.DeleteFunc(func(k int) bool { return k >= 8 }); n != 8 {
		t.Fatalf("DeleteFunc removed %d entries; want 8", n)
	}
	if n := s.Len(); n != 8 {
		t.Fatalf("Len = %d after targeted delete; want 8", n)
	}
	for i := 0; i < 16; i++ {
		_, ok := s.Get(i)
		if want := i < 8; ok != want {
			t.Fatalf("Get(%d) resident = %v; want %v", i, ok, want)
		}
	}
}
