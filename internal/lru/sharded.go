package lru

import "sync/atomic"

// Sharded is a Cache split into fixed shards by a caller-provided key
// hash, so concurrent load on distinct keys does not serialize on one
// mutex. The per-shard caps sum exactly to the configured total, so a
// Sharded cache bounds the same number of entries as the flat Cache it
// replaces; only the eviction locality changes (strict LRU within a
// shard, approximate LRU across shards). Every value remains a pure
// function of its key, so the transparency contract — eviction can
// change only recompute cost, never results — carries over unchanged.
//
// A bounded total smaller than the shard count routes keys over only
// `total` active shards (each with cap >= 1), because a zero per-shard
// cap would mean unbounded under the package convention; resizing
// across that threshold re-routes keys, which at worst turns a few
// hits into transparent recomputes.
type Sharded[K comparable, V any] struct {
	shards []*Cache[K, V]
	hash   func(K) uint64
	// active is the number of shards keys currently route to; it only
	// drops below len(shards) for bounded totals smaller than the shard
	// count. Atomic so Resize can re-route concurrently with lookups.
	active atomic.Int32
}

// NewSharded returns a cache of `shards` shards whose caps sum to
// totalCap (totalCap <= 0 means every shard is unbounded). hash maps a
// key to its shard; it must be a pure function of the key. Keys that
// should share a shard (e.g. all cuts of one parent graph) should hash
// to the same value.
func NewSharded[K comparable, V any](shards, totalCap int, hash func(K) uint64) *Sharded[K, V] {
	if shards < 1 {
		shards = 1
	}
	s := &Sharded[K, V]{
		shards: make([]*Cache[K, V], shards),
		hash:   hash,
	}
	for i := range s.shards {
		s.shards[i] = New[K, V](0)
	}
	s.Resize(totalCap)
	return s
}

// shardCaps splits totalCap across n active shards so the parts sum
// exactly to totalCap: the first totalCap%n shards get one extra entry.
// A non-positive total makes every shard unbounded. Callers pass
// n <= totalCap for bounded totals, so no part is ever zero.
func shardCaps(n, totalCap int) []int {
	caps := make([]int, n)
	if totalCap <= 0 {
		return caps
	}
	base, rem := totalCap/n, totalCap%n
	for i := range caps {
		caps[i] = base
		if i < rem {
			caps[i]++
		}
	}
	return caps
}

func (s *Sharded[K, V]) shard(key K) *Cache[K, V] {
	return s.shards[int(s.hash(key)%uint64(s.active.Load()))]
}

// Get returns the cached value for key, marking it most recently used
// within its shard.
func (s *Sharded[K, V]) Get(key K) (V, bool) { return s.shard(key).Get(key) }

// Add inserts or refreshes key -> val in its shard and returns the
// resident value (the existing one if a concurrent caller stored first).
func (s *Sharded[K, V]) Add(key K, val V) V { return s.shard(key).Add(key, val) }

// GetOrCompute returns the cached value for key, computing and
// inserting it on a miss; compute runs outside the shard lock.
func (s *Sharded[K, V]) GetOrCompute(key K, compute func() V) V {
	return s.shard(key).GetOrCompute(key, compute)
}

// Len returns the total resident entries across all shards.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Shards returns the configured shard count.
func (s *Sharded[K, V]) Shards() int { return len(s.shards) }

// Purge drops every entry from every shard.
func (s *Sharded[K, V]) Purge() {
	for _, sh := range s.shards {
		sh.Purge()
	}
}

// Snapshot returns every resident entry, iterating shards in index
// order and each shard's entries in LRU order (least recently used
// first). Replaying the slice through Restore reproduces the contents
// and per-shard eviction order, because routing is a pure function of
// the key. The snapshot is per-shard-atomic, like Stats.
func (s *Sharded[K, V]) Snapshot() []Entry[K, V] {
	out := make([]Entry[K, V], 0, s.Len())
	for _, sh := range s.shards {
		out = sh.SnapshotAppend(out)
	}
	return out
}

// Restore inserts entries in slice order, routing each to its shard by
// the key hash; within a shard, later entries end up more recently
// used, the inverse of Snapshot.
func (s *Sharded[K, V]) Restore(entries []Entry[K, V]) {
	for _, e := range entries {
		s.Add(e.Key, e.Val)
	}
}

// DeleteFunc removes every resident entry whose key satisfies pred
// across all shards (inactive shards included, so a transient stray
// cannot survive a targeted purge), returning how many were removed.
// Removals count as evictions, per the transparency contract.
func (s *Sharded[K, V]) DeleteFunc(pred func(K) bool) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.DeleteFunc(pred)
	}
	return n
}

// Resize redistributes a new total capacity across the shards (parts
// summing exactly to totalCap; <= 0 unbounds every shard), evicting
// least-recently-used entries per shard as needed. Concurrent lookups
// during a resize across the active-shard threshold may transiently
// route to the old shard of a key — a miss that recomputes the same
// value, per the transparency contract.
func (s *Sharded[K, V]) Resize(totalCap int) {
	n := len(s.shards)
	active := n
	if totalCap > 0 && totalCap < n {
		active = totalCap
	}
	caps := shardCaps(active, totalCap)
	for i, sh := range s.shards {
		if i < active {
			sh.Resize(caps[i])
		} else {
			// Inactive shards hold at most one stray entry from a
			// concurrent racer, never unbounded residue.
			sh.Resize(1)
		}
	}
	s.active.Store(int32(active))
	for _, sh := range s.shards[active:] {
		sh.Purge()
	}
}

// Stats aggregates the counters of the active shards (Len additionally
// counts any transient strays in inactive shards): Len, Hits, Misses
// and Evictions sum across shards; Cap is the configured total (0 when
// unbounded). The snapshot is per-shard-atomic, not global.
func (s *Sharded[K, V]) Stats() Stats {
	var out Stats
	active := int(s.active.Load())
	for i, sh := range s.shards {
		st := sh.Stats()
		out.Len += st.Len
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		if i < active {
			out.Cap += st.Cap
		}
	}
	return out
}

// ShardStats returns each shard's own counters, for tests pinning the
// per-shard bounds and for telemetry that wants the distribution.
func (s *Sharded[K, V]) ShardStats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.Stats()
	}
	return out
}
