package lru

import "netcut/internal/telemetry"

// StatsSource is any cache exposing Stats — both Cache and Sharded do.
type StatsSource interface {
	Stats() Stats
}

// Instrument registers the cache's standard series on reg under the
// given name prefix: <name>_entries and <name>_cap gauges, and
// <name>_{hits,misses,evictions}_total counters. The series are
// sampled at scrape time from Stats(), so instrumentation adds nothing
// to the cache hot path.
func Instrument(reg *telemetry.Registry, name string, c StatsSource) {
	reg.GaugeFunc(name+"_entries", "resident entries", func() float64 {
		return float64(c.Stats().Len)
	})
	reg.GaugeFunc(name+"_cap", "configured capacity (0 = unbounded)", func() float64 {
		return float64(c.Stats().Cap)
	})
	reg.CounterFunc(name+"_hits_total", "cache hits", func() uint64 {
		return c.Stats().Hits
	})
	reg.CounterFunc(name+"_misses_total", "cache misses", func() uint64 {
		return c.Stats().Misses
	})
	reg.CounterFunc(name+"_evictions_total", "cache evictions", func() uint64 {
		return c.Stats().Evictions
	})
}
