package lru

import "netcut/internal/telemetry"

// StatsSource is any cache exposing Stats — both Cache and Sharded do.
type StatsSource interface {
	Stats() Stats
}

// Instrument registers the cache's standard series on reg under the
// given name prefix: <name>_entries and <name>_cap gauges, and
// <name>_{hits,misses,evictions}_total counters. The series are
// sampled at scrape time from Stats(), so instrumentation adds nothing
// to the cache hot path.
func Instrument(reg *telemetry.Registry, name string, c StatsSource) {
	InstrumentWith(reg, name, nil, c)
}

// InstrumentWith is Instrument with a label set attached to every
// series — how the device-keyed planner pool registers one instance of
// each cache series per target (label device="<name>").
func InstrumentWith(reg *telemetry.Registry, name string, labels []telemetry.Label, c StatsSource) {
	reg.GaugeFuncWith(name+"_entries", "resident entries", labels, func() float64 {
		return float64(c.Stats().Len)
	})
	reg.GaugeFuncWith(name+"_cap", "configured capacity (0 = unbounded)", labels, func() float64 {
		return float64(c.Stats().Cap)
	})
	reg.CounterFuncWith(name+"_hits_total", "cache hits", labels, func() uint64 {
		return c.Stats().Hits
	})
	reg.CounterFuncWith(name+"_misses_total", "cache misses", labels, func() uint64 {
		return c.Stats().Misses
	})
	reg.CounterFuncWith(name+"_evictions_total", "cache evictions", labels, func() uint64 {
		return c.Stats().Evictions
	})
}
