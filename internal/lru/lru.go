// Package lru provides the bounded, concurrency-safe cache behind
// every structure-keyed memoization layer in the measurement pipeline
// (device kernel plans, profiler measurements and tables, trimmed
// networks).
//
// The unbounded sync.Map caches of the figure-reproduction pipeline are
// fine for the paper's fixed zoo, but a planning service measuring a
// stream of arbitrary user graphs sees an unbounded set of distinct
// structures; Cache caps each layer so the service runs in constant
// memory.
//
// Determinism contract: a Cache is *transparent* — every value it holds
// is a pure function of its key, so evicting an entry can never change
// a result, only the cost of recomputing it. Eviction order itself is
// deterministic given the operation order (strict least-recently-used),
// but because concurrent schedules permute the operation order, nothing
// downstream is allowed to depend on *which* entries are resident —
// only on the recompute-equals-original property, which the
// eviction-correctness tests pin.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU map from K to V. The zero value is not usable;
// use New. A cap <= 0 means unbounded (the paper-pipeline default,
// where the working set is the fixed 7-network zoo and its 148 TRNs).
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	items map[K]*list.Element
	order *list.List // front = most recently used

	hits      uint64
	misses    uint64
	evictions uint64
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a Cache holding at most cap entries; cap <= 0 means
// unbounded.
func New[K comparable, V any](cap int) *Cache[K, V] {
	return &Cache[K, V]{
		cap:   cap,
		items: make(map[K]*list.Element),
		order: list.New(),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Add inserts or refreshes key -> val and returns the resident value:
// the existing one if a concurrent caller stored first (so all callers
// share one canonical value, the way sync.Map.LoadOrStore does), else
// val. Inserting beyond the cap evicts the least recently used entry.
func (c *Cache[K, V]) Add(key K, val V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val
	}
	el := c.order.PushFront(&entry[K, V]{key: key, val: val})
	c.items[key] = el
	if c.cap > 0 && c.order.Len() > c.cap {
		c.evictOldest()
	}
	return val
}

// evictOldest removes the back of the recency list. Caller holds mu.
func (c *Cache[K, V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.order.Remove(el)
	delete(c.items, el.Value.(*entry[K, V]).key)
	c.evictions++
}

// GetOrCompute returns the cached value for key, computing and
// inserting it on a miss. compute runs outside the cache lock, so
// concurrent misses on the same key may compute concurrently; callers
// rely on compute being a pure function of key (the package-wide
// transparency contract), so whichever insert lands first becomes the
// canonical value and every caller receives it.
func (c *Cache[K, V]) GetOrCompute(key K, compute func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	return c.Add(key, compute())
}

// Contains reports whether key is resident, without touching recency
// order or the hit/miss counters — a pure peek, usable for metrics
// classification without perturbing what it observes.
func (c *Cache[K, V]) Contains(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the configured capacity (<= 0 means unbounded).
func (c *Cache[K, V]) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// Purge drops every entry (counted as evictions), keeping the cap.
// Values are pure functions of their keys, so a purge — like any
// eviction — only restores recompute cost; benchmarks use it to
// measure genuinely cold paths through process-wide caches.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.order.Len() > 0 {
		c.evictOldest()
	}
}

// DeleteFunc removes every resident entry whose key satisfies pred,
// returning how many were removed. Removals count as evictions — under
// the transparency contract a targeted delete, like any eviction, can
// only restore recompute cost, never change a result. pred runs under
// the cache lock and must not call back into the cache.
func (c *Cache[K, V]) DeleteFunc(pred func(K) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Back(); el != nil; {
		prev := el.Prev()
		e := el.Value.(*entry[K, V])
		if pred(e.key) {
			c.order.Remove(el)
			delete(c.items, e.key)
			c.evictions++
			n++
		}
		el = prev
	}
	return n
}

// Entry is one key/value pair of a Snapshot.
type Entry[K comparable, V any] struct {
	Key K
	Val V
}

// Snapshot returns every resident entry in LRU order — least recently
// used first — so that replaying the slice through Restore reproduces
// both the contents and the eviction order of the cache. The snapshot
// is taken under the cache lock (point-in-time consistent) and does not
// touch recency order or the hit/miss counters. Values are shared, not
// copied: the package-wide convention that cached values are immutable
// pure functions of their keys is what makes sharing safe.
func (c *Cache[K, V]) Snapshot() []Entry[K, V] {
	return c.SnapshotAppend(nil)
}

// SnapshotAppend is Snapshot appending into dst, so a caller draining
// many caches (a sharded snapshot, a section writer) fills one
// preallocated slice instead of allocating and copying per cache.
func (c *Cache[K, V]) SnapshotAppend(dst []Entry[K, V]) []Entry[K, V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dst == nil {
		dst = make([]Entry[K, V], 0, c.order.Len())
	}
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry[K, V])
		dst = append(dst, Entry[K, V]{Key: e.key, Val: e.val})
	}
	return dst
}

// Restore inserts entries in slice order, so the last entry becomes the
// most recently used — the inverse of Snapshot. It adds to whatever is
// already resident (callers wanting an exact replica Purge first) and
// respects the cap: restoring more entries than fit evicts from the
// front of the slice, exactly as live inserts in that order would.
func (c *Cache[K, V]) Restore(entries []Entry[K, V]) {
	for _, e := range entries {
		c.Add(e.Key, e.Val)
	}
}

// Resize changes the capacity, evicting least-recently-used entries if
// the new cap is below the current size. cap <= 0 means unbounded.
func (c *Cache[K, V]) Resize(cap int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = cap
	if cap > 0 {
		for c.order.Len() > cap {
			c.evictOldest()
		}
	}
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Len       int
	Cap       int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Len:       c.order.Len(),
		Cap:       c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
