package lru

import (
	"reflect"
	"testing"
)

// TestSnapshotOrderAndRestore pins the snapshot contract: entries come
// back least-recently-used first, and replaying them through Restore
// into an empty cache reproduces contents, recency order and therefore
// future eviction order.
func TestSnapshotOrderAndRestore(t *testing.T) {
	c := New[int, string](3)
	c.Add(1, "a")
	c.Add(2, "b")
	c.Add(3, "c")
	c.Get(1) // recency now: 2 (LRU), 3, 1 (MRU)

	snap := c.Snapshot()
	want := []Entry[int, string]{{2, "b"}, {3, "c"}, {1, "a"}}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot = %v, want %v", snap, want)
	}

	r := New[int, string](3)
	r.Restore(snap)
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatalf("restored snapshot = %v, want %v", r.Snapshot(), want)
	}
	// Same eviction behavior as the original: inserting a fourth entry
	// must evict key 2 in both.
	c.Add(4, "d")
	r.Add(4, "d")
	if c.Contains(2) || r.Contains(2) {
		t.Fatal("LRU entry 2 survived the over-cap insert")
	}
	if !reflect.DeepEqual(c.Snapshot(), r.Snapshot()) {
		t.Fatalf("post-insert divergence: %v vs %v", c.Snapshot(), r.Snapshot())
	}
}

// TestSnapshotDoesNotPerturb pins that Snapshot touches neither recency
// nor the stats counters.
func TestSnapshotDoesNotPerturb(t *testing.T) {
	c := New[int, int](2)
	c.Add(1, 10)
	c.Add(2, 20)
	before := c.Stats()
	c.Snapshot()
	if got := c.Stats(); got != before {
		t.Fatalf("stats changed across snapshot: %+v -> %+v", before, got)
	}
	// Recency unchanged: 1 is still LRU and evicts first.
	c.Add(3, 30)
	if c.Contains(1) {
		t.Fatal("snapshot perturbed recency order")
	}
}

// TestRestoreBeyondCap pins that restoring more entries than fit keeps
// the cap and retains the most recently used tail of the slice.
func TestRestoreBeyondCap(t *testing.T) {
	snap := []Entry[int, int]{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	c := New[int, int](2)
	c.Restore(snap)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if !c.Contains(3) || !c.Contains(4) {
		t.Fatalf("restored tail missing: %v", c.Snapshot())
	}
}

// TestShardedSnapshotRoundTrip pins that a sharded cache's snapshot
// replays into an identically configured cache with identical shard
// routing and per-shard order.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	hash := func(k int) uint64 { return uint64(k) }
	s := NewSharded[int, int](4, 16, hash)
	for i := 0; i < 12; i++ {
		s.Add(i, i*i)
	}
	s.Get(0)
	s.Get(5)

	snap := s.Snapshot()
	if len(snap) != 12 {
		t.Fatalf("snapshot holds %d entries, want 12", len(snap))
	}
	r := NewSharded[int, int](4, 16, hash)
	r.Restore(snap)
	if !reflect.DeepEqual(r.Snapshot(), snap) {
		t.Fatalf("sharded restore diverged:\n got %v\nwant %v", r.Snapshot(), snap)
	}
}
