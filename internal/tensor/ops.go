package tensor

import "fmt"

// Conv2D computes a standard 2-D convolution. x is [N,H,W,InC], w is
// [KH,KW,InC,OutC] (see Tensor layout note), b is per-output-channel
// bias (nil for none).
func Conv2D(x, w *Tensor, b []float64, stride int, same bool) *Tensor {
	kh, kw, inC, outC := w.N, w.H, w.W, w.C
	if x.C != inC {
		panic(fmt.Sprintf("tensor: conv input channels %d != weight %d", x.C, inC))
	}
	outH, padH := convGeom(x.H, kh, stride, same)
	outW, padW := convGeom(x.W, kw, stride, same)
	y := New(x.N, outH, outW, outC)
	for n := 0; n < x.N; n++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				for kyy := 0; kyy < kh; kyy++ {
					ih := oh*stride + kyy - padH
					if ih < 0 || ih >= x.H {
						continue
					}
					for kxx := 0; kxx < kw; kxx++ {
						iw := ow*stride + kxx - padW
						if iw < 0 || iw >= x.W {
							continue
						}
						xBase := x.idx(n, ih, iw, 0)
						wBase := w.idx(kyy, kxx, 0, 0)
						yBase := y.idx(n, oh, ow, 0)
						for ic := 0; ic < inC; ic++ {
							xv := x.Data[xBase+ic]
							if xv == 0 {
								continue
							}
							wRow := w.Data[wBase+ic*outC : wBase+(ic+1)*outC]
							yRow := y.Data[yBase : yBase+outC]
							for oc := range wRow {
								yRow[oc] += xv * wRow[oc]
							}
						}
					}
				}
				if b != nil {
					yBase := y.idx(n, oh, ow, 0)
					for oc := 0; oc < outC; oc++ {
						y.Data[yBase+oc] += b[oc]
					}
				}
			}
		}
	}
	return y
}

// Conv2DBackward computes gradients for Conv2D. gradY is the loss
// gradient at the output; the returned gradX matches x, gradW matches
// w, and gradB is per-output-channel (nil if b was nil).
func Conv2DBackward(x, w, gradY *Tensor, hasBias bool, stride int, same bool) (gradX, gradW *Tensor, gradB []float64) {
	kh, kw, inC, outC := w.N, w.H, w.W, w.C
	_, padH := convGeom(x.H, kh, stride, same)
	_, padW := convGeom(x.W, kw, stride, same)
	gradX = New(x.N, x.H, x.W, x.C)
	gradW = New(kh, kw, inC, outC)
	if hasBias {
		gradB = make([]float64, outC)
	}
	for n := 0; n < x.N; n++ {
		for oh := 0; oh < gradY.H; oh++ {
			for ow := 0; ow < gradY.W; ow++ {
				gyBase := gradY.idx(n, oh, ow, 0)
				gyRow := gradY.Data[gyBase : gyBase+outC]
				if hasBias {
					for oc, gv := range gyRow {
						gradB[oc] += gv
					}
				}
				for kyy := 0; kyy < kh; kyy++ {
					ih := oh*stride + kyy - padH
					if ih < 0 || ih >= x.H {
						continue
					}
					for kxx := 0; kxx < kw; kxx++ {
						iw := ow*stride + kxx - padW
						if iw < 0 || iw >= x.W {
							continue
						}
						xBase := x.idx(n, ih, iw, 0)
						wBase := w.idx(kyy, kxx, 0, 0)
						for ic := 0; ic < inC; ic++ {
							xv := x.Data[xBase+ic]
							wRow := w.Data[wBase+ic*outC : wBase+(ic+1)*outC]
							gwRow := gradW.Data[wBase+ic*outC : wBase+(ic+1)*outC]
							var gx float64
							for oc, gv := range gyRow {
								gwRow[oc] += gv * xv
								gx += gv * wRow[oc]
							}
							gradX.Data[xBase+ic] += gx
						}
					}
				}
			}
		}
	}
	return gradX, gradW, gradB
}

// DWConv2D computes a depthwise convolution. w is [KH,KW,C,1].
func DWConv2D(x, w *Tensor, b []float64, stride int, same bool) *Tensor {
	kh, kw := w.N, w.H
	if w.W != x.C || w.C != 1 {
		panic(fmt.Sprintf("tensor: dwconv weight shape %s does not match input channels %d", w.ShapeString(), x.C))
	}
	outH, padH := convGeom(x.H, kh, stride, same)
	outW, padW := convGeom(x.W, kw, stride, same)
	y := New(x.N, outH, outW, x.C)
	for n := 0; n < x.N; n++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				yBase := y.idx(n, oh, ow, 0)
				for kyy := 0; kyy < kh; kyy++ {
					ih := oh*stride + kyy - padH
					if ih < 0 || ih >= x.H {
						continue
					}
					for kxx := 0; kxx < kw; kxx++ {
						iw := ow*stride + kxx - padW
						if iw < 0 || iw >= x.W {
							continue
						}
						xBase := x.idx(n, ih, iw, 0)
						wBase := w.idx(kyy, kxx, 0, 0)
						for c := 0; c < x.C; c++ {
							y.Data[yBase+c] += x.Data[xBase+c] * w.Data[wBase+c]
						}
					}
				}
				if b != nil {
					for c := 0; c < x.C; c++ {
						y.Data[yBase+c] += b[c]
					}
				}
			}
		}
	}
	return y
}

// DWConv2DBackward computes gradients for DWConv2D.
func DWConv2DBackward(x, w, gradY *Tensor, hasBias bool, stride int, same bool) (gradX, gradW *Tensor, gradB []float64) {
	kh, kw := w.N, w.H
	_, padH := convGeom(x.H, kh, stride, same)
	_, padW := convGeom(x.W, kw, stride, same)
	gradX = New(x.N, x.H, x.W, x.C)
	gradW = New(kh, kw, x.C, 1)
	if hasBias {
		gradB = make([]float64, x.C)
	}
	for n := 0; n < x.N; n++ {
		for oh := 0; oh < gradY.H; oh++ {
			for ow := 0; ow < gradY.W; ow++ {
				gyBase := gradY.idx(n, oh, ow, 0)
				if hasBias {
					for c := 0; c < x.C; c++ {
						gradB[c] += gradY.Data[gyBase+c]
					}
				}
				for kyy := 0; kyy < kh; kyy++ {
					ih := oh*stride + kyy - padH
					if ih < 0 || ih >= x.H {
						continue
					}
					for kxx := 0; kxx < kw; kxx++ {
						iw := ow*stride + kxx - padW
						if iw < 0 || iw >= x.W {
							continue
						}
						xBase := x.idx(n, ih, iw, 0)
						wBase := w.idx(kyy, kxx, 0, 0)
						for c := 0; c < x.C; c++ {
							gv := gradY.Data[gyBase+c]
							gradW.Data[wBase+c] += gv * x.Data[xBase+c]
							gradX.Data[xBase+c] += gv * w.Data[wBase+c]
						}
					}
				}
			}
		}
	}
	return gradX, gradW, gradB
}

// Dense computes y = x*W + b for flattened inputs. x is [N,1,1,InC], w
// is [1,1,InC,OutC].
func Dense(x, w *Tensor, b []float64) *Tensor {
	inC, outC := w.W, w.C
	if x.H != 1 || x.W != 1 || x.C != inC {
		panic(fmt.Sprintf("tensor: dense input %s incompatible with weights %s", x.ShapeString(), w.ShapeString()))
	}
	y := New(x.N, 1, 1, outC)
	for n := 0; n < x.N; n++ {
		xBase := x.idx(n, 0, 0, 0)
		yBase := y.idx(n, 0, 0, 0)
		for ic := 0; ic < inC; ic++ {
			xv := x.Data[xBase+ic]
			if xv == 0 {
				continue
			}
			wRow := w.Data[ic*outC : (ic+1)*outC]
			for oc := range wRow {
				y.Data[yBase+oc] += xv * wRow[oc]
			}
		}
		if b != nil {
			for oc := 0; oc < outC; oc++ {
				y.Data[yBase+oc] += b[oc]
			}
		}
	}
	return y
}

// DenseBackward computes gradients for Dense.
func DenseBackward(x, w, gradY *Tensor, hasBias bool) (gradX, gradW *Tensor, gradB []float64) {
	inC, outC := w.W, w.C
	gradX = New(x.N, 1, 1, inC)
	gradW = New(1, 1, inC, outC)
	if hasBias {
		gradB = make([]float64, outC)
	}
	for n := 0; n < x.N; n++ {
		xBase := x.idx(n, 0, 0, 0)
		gyBase := gradY.idx(n, 0, 0, 0)
		gyRow := gradY.Data[gyBase : gyBase+outC]
		if hasBias {
			for oc, gv := range gyRow {
				gradB[oc] += gv
			}
		}
		for ic := 0; ic < inC; ic++ {
			wRow := w.Data[ic*outC : (ic+1)*outC]
			gwRow := gradW.Data[ic*outC : (ic+1)*outC]
			xv := x.Data[xBase+ic]
			var gx float64
			for oc, gv := range gyRow {
				gwRow[oc] += gv * xv
				gx += gv * wRow[oc]
			}
			gradX.Data[xBase+ic] = gx
		}
	}
	return gradX, gradW, gradB
}

// MaxPool computes k x k max pooling and returns the output plus the
// argmax indices needed by the backward pass.
func MaxPool(x *Tensor, k, stride int, same bool) (*Tensor, []int) {
	outH, padH := convGeom(x.H, k, stride, same)
	outW, padW := convGeom(x.W, k, stride, same)
	y := New(x.N, outH, outW, x.C)
	arg := make([]int, y.Len())
	for n := 0; n < x.N; n++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				for c := 0; c < x.C; c++ {
					best := 0.0
					bestIdx := -1
					for kyy := 0; kyy < k; kyy++ {
						ih := oh*stride + kyy - padH
						if ih < 0 || ih >= x.H {
							continue
						}
						for kxx := 0; kxx < k; kxx++ {
							iw := ow*stride + kxx - padW
							if iw < 0 || iw >= x.W {
								continue
							}
							idx := x.idx(n, ih, iw, c)
							if bestIdx < 0 || x.Data[idx] > best {
								best = x.Data[idx]
								bestIdx = idx
							}
						}
					}
					oi := y.idx(n, oh, ow, c)
					y.Data[oi] = best
					arg[oi] = bestIdx
				}
			}
		}
	}
	return y, arg
}

// MaxPoolBackward scatters output gradients to the argmax positions.
func MaxPoolBackward(x, gradY *Tensor, arg []int) *Tensor {
	gradX := New(x.N, x.H, x.W, x.C)
	for oi, gi := range arg {
		if gi >= 0 {
			gradX.Data[gi] += gradY.Data[oi]
		}
	}
	return gradX
}

// GlobalAvgPool reduces the spatial dimensions to 1 x 1.
func GlobalAvgPool(x *Tensor) *Tensor {
	y := New(x.N, 1, 1, x.C)
	inv := 1.0 / float64(x.H*x.W)
	for n := 0; n < x.N; n++ {
		for h := 0; h < x.H; h++ {
			for w := 0; w < x.W; w++ {
				base := x.idx(n, h, w, 0)
				yBase := y.idx(n, 0, 0, 0)
				for c := 0; c < x.C; c++ {
					y.Data[yBase+c] += x.Data[base+c] * inv
				}
			}
		}
	}
	return y
}

// GlobalAvgPoolBackward spreads output gradients uniformly over the
// spatial positions.
func GlobalAvgPoolBackward(x, gradY *Tensor) *Tensor {
	gradX := New(x.N, x.H, x.W, x.C)
	inv := 1.0 / float64(x.H*x.W)
	for n := 0; n < x.N; n++ {
		gyBase := gradY.idx(n, 0, 0, 0)
		for h := 0; h < x.H; h++ {
			for w := 0; w < x.W; w++ {
				base := gradX.idx(n, h, w, 0)
				for c := 0; c < x.C; c++ {
					gradX.Data[base+c] = gradY.Data[gyBase+c] * inv
				}
			}
		}
	}
	return gradX
}
