// Package tensor provides dense NHWC float64 tensors and the
// forward/backward compute kernels (convolution, pooling, dense) used
// by the real trainable network stack in internal/nn. It is the
// miniature-scale counterpart of the analytical graph IR: internal/nn
// executes real arithmetic on these tensors, whereas internal/graph
// only accounts for it.
package tensor

import "fmt"

// Tensor is a dense batch-major NHWC tensor. Fully connected layers use
// H = W = 1. Convolution weights are stored in [KH, KW, InC, OutC]
// layout via the same struct: N = KH, H = KW, W = InC, C = OutC.
type Tensor struct {
	N, H, W, C int
	Data       []float64
}

// New allocates a zero tensor of the given shape.
func New(n, h, w, c int) *Tensor {
	if n <= 0 || h <= 0 || w <= 0 || c <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%dx%d", n, h, w, c))
	}
	return &Tensor{N: n, H: h, W: w, C: c, Data: make([]float64, n*h*w*c)}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// ShapeEq reports whether two tensors have identical shapes.
func (t *Tensor) ShapeEq(o *Tensor) bool {
	return t.N == o.N && t.H == o.H && t.W == o.W && t.C == o.C
}

// ShapeString formats the shape.
func (t *Tensor) ShapeString() string {
	return fmt.Sprintf("%dx%dx%dx%d", t.N, t.H, t.W, t.C)
}

// idx computes the flat index of (n, h, w, c).
func (t *Tensor) idx(n, h, w, c int) int {
	return ((n*t.H+h)*t.W+w)*t.C + c
}

// At returns the element at (n, h, w, c).
func (t *Tensor) At(n, h, w, c int) float64 { return t.Data[t.idx(n, h, w, c)] }

// Set stores v at (n, h, w, c).
func (t *Tensor) Set(n, h, w, c int, v float64) { t.Data[t.idx(n, h, w, c)] = v }

// Add accumulates v at (n, h, w, c).
func (t *Tensor) Add(n, h, w, c int, v float64) { t.Data[t.idx(n, h, w, c)] += v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	o := &Tensor{N: t.N, H: t.H, W: t.W, C: t.C, Data: make([]float64, len(t.Data))}
	copy(o.Data, t.Data)
	return o
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Slice returns a view-copy of one batch element as an N=1 tensor.
func (t *Tensor) Slice(n int) *Tensor {
	o := New(1, t.H, t.W, t.C)
	per := t.H * t.W * t.C
	copy(o.Data, t.Data[n*per:(n+1)*per])
	return o
}

// samePad computes TF-style "same" padding: output ceil(in/stride) with
// the total padding split front-light.
func samePad(in, k, stride int) (out, padBeg int) {
	out = (in + stride - 1) / stride
	padTotal := (out-1)*stride + k - in
	if padTotal < 0 {
		padTotal = 0
	}
	return out, padTotal / 2
}

func validOut(in, k, stride int) int { return (in-k)/stride + 1 }

// convGeom resolves the output size and leading pad for one dimension.
func convGeom(in, k, stride int, same bool) (out, pad int) {
	if same {
		return samePad(in, k, stride)
	}
	return validOut(in, k, stride), 0
}
