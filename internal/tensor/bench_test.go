package tensor

import (
	"math/rand"
	"testing"
)

func BenchmarkConv2DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 4, 16, 16, 16)
	w := randTensor(rng, 3, 3, 16, 16)
	bias := make([]float64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, bias, 1, true)
	}
}

func BenchmarkConv2DBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randTensor(rng, 4, 16, 16, 16)
	w := randTensor(rng, 3, 3, 16, 16)
	y := Conv2D(x, w, nil, 1, true)
	g := ones(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DBackward(x, w, g, true, 1, true)
	}
}

func BenchmarkDWConv2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 4, 16, 16, 32)
	w := randTensor(rng, 3, 3, 32, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DWConv2D(x, w, nil, 1, true)
	}
}

func BenchmarkDense(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 16, 1, 1, 256)
	w := randTensor(rng, 1, 1, 256, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dense(x, w, nil)
	}
}
