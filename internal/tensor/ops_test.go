package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randTensor(rng *rand.Rand, n, h, w, c int) *Tensor {
	t := New(n, h, w, c)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// numGrad computes the finite-difference gradient of sum(f()) w.r.t.
// the elements of p.
func numGrad(p *Tensor, f func() *Tensor) []float64 {
	const eps = 1e-6
	out := make([]float64, len(p.Data))
	for i := range p.Data {
		orig := p.Data[i]
		p.Data[i] = orig + eps
		plus := sum(f())
		p.Data[i] = orig - eps
		minus := sum(f())
		p.Data[i] = orig
		out[i] = (plus - minus) / (2 * eps)
	}
	return out
}

func sum(t *Tensor) float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

func ones(t *Tensor) *Tensor {
	o := New(t.N, t.H, t.W, t.C)
	o.Fill(1)
	return o
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		m = math.Max(m, math.Abs(a[i]-b[i]))
	}
	return m
}

func TestTensorBasics(t *testing.T) {
	x := New(2, 3, 4, 5)
	if x.Len() != 120 {
		t.Fatalf("Len = %d", x.Len())
	}
	x.Set(1, 2, 3, 4, 7)
	if x.At(1, 2, 3, 4) != 7 {
		t.Fatal("At/Set broken")
	}
	x.Add(1, 2, 3, 4, 3)
	if x.At(1, 2, 3, 4) != 10 {
		t.Fatal("Add broken")
	}
	c := x.Clone()
	c.Set(0, 0, 0, 0, 99)
	if x.At(0, 0, 0, 0) == 99 {
		t.Fatal("Clone aliases data")
	}
	s := x.Slice(1)
	if s.N != 1 || s.At(0, 2, 3, 4) != 10 {
		t.Fatal("Slice broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shape accepted")
		}
	}()
	New(0, 1, 1, 1)
}

func TestConvKnownValue(t *testing.T) {
	// 1x3x3x1 input, 3x3 kernel of ones, valid: output = sum of input.
	x := New(1, 3, 3, 1)
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	w := New(3, 3, 1, 1)
	w.Fill(1)
	y := Conv2D(x, w, nil, 1, false)
	if y.H != 1 || y.W != 1 || y.Data[0] != 45 {
		t.Fatalf("conv = %v (%s), want 45 at 1x1", y.Data, y.ShapeString())
	}
}

func TestConvSameGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 1, 7, 7, 3)
	w := randTensor(rng, 3, 3, 3, 4)
	y := Conv2D(x, w, nil, 2, true)
	if y.H != 4 || y.W != 4 || y.C != 4 {
		t.Fatalf("same-pad stride-2 output %s, want 1x4x4x4", y.ShapeString())
	}
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randTensor(rng, 2, 5, 5, 2)
	w := randTensor(rng, 3, 3, 2, 3)
	b := []float64{0.1, -0.2, 0.3}
	forward := func() *Tensor { return Conv2D(x, w, b, 1, true) }
	y := forward()
	gradX, gradW, gradB := Conv2DBackward(x, w, ones(y), true, 1, true)

	if d := maxAbsDiff(gradX.Data, numGrad(x, forward)); d > 1e-5 {
		t.Fatalf("conv gradX off by %v", d)
	}
	if d := maxAbsDiff(gradW.Data, numGrad(w, forward)); d > 1e-5 {
		t.Fatalf("conv gradW off by %v", d)
	}
	bT := &Tensor{N: 1, H: 1, W: 1, C: 3, Data: b}
	if d := maxAbsDiff(gradB, numGrad(bT, forward)); d > 1e-5 {
		t.Fatalf("conv gradB off by %v", d)
	}
}

func TestConvStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 1, 6, 6, 2)
	w := randTensor(rng, 3, 3, 2, 2)
	forward := func() *Tensor { return Conv2D(x, w, nil, 2, true) }
	y := forward()
	gradX, gradW, _ := Conv2DBackward(x, w, ones(y), false, 2, true)
	if d := maxAbsDiff(gradX.Data, numGrad(x, forward)); d > 1e-5 {
		t.Fatalf("strided conv gradX off by %v", d)
	}
	if d := maxAbsDiff(gradW.Data, numGrad(w, forward)); d > 1e-5 {
		t.Fatalf("strided conv gradW off by %v", d)
	}
}

func TestDWConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 2, 5, 5, 3)
	w := randTensor(rng, 3, 3, 3, 1)
	b := []float64{0.1, 0.2, -0.1}
	forward := func() *Tensor { return DWConv2D(x, w, b, 1, true) }
	y := forward()
	gradX, gradW, gradB := DWConv2DBackward(x, w, ones(y), true, 1, true)
	if d := maxAbsDiff(gradX.Data, numGrad(x, forward)); d > 1e-5 {
		t.Fatalf("dwconv gradX off by %v", d)
	}
	if d := maxAbsDiff(gradW.Data, numGrad(w, forward)); d > 1e-5 {
		t.Fatalf("dwconv gradW off by %v", d)
	}
	bT := &Tensor{N: 1, H: 1, W: 1, C: 3, Data: b}
	if d := maxAbsDiff(gradB, numGrad(bT, forward)); d > 1e-5 {
		t.Fatalf("dwconv gradB off by %v", d)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randTensor(rng, 3, 1, 1, 4)
	w := randTensor(rng, 1, 1, 4, 2)
	b := []float64{0.5, -0.5}
	forward := func() *Tensor { return Dense(x, w, b) }
	y := forward()
	gradX, gradW, gradB := DenseBackward(x, w, ones(y), true)
	if d := maxAbsDiff(gradX.Data, numGrad(x, forward)); d > 1e-6 {
		t.Fatalf("dense gradX off by %v", d)
	}
	if d := maxAbsDiff(gradW.Data, numGrad(w, forward)); d > 1e-6 {
		t.Fatalf("dense gradW off by %v", d)
	}
	bT := &Tensor{N: 1, H: 1, W: 1, C: 2, Data: b}
	if d := maxAbsDiff(gradB, numGrad(bT, forward)); d > 1e-6 {
		t.Fatalf("dense gradB off by %v", d)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := New(1, 4, 4, 1)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	y, arg := MaxPool(x, 2, 2, false)
	want := []float64{5, 7, 13, 15}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("maxpool out %v, want %v", y.Data, want)
		}
	}
	gy := ones(y)
	gx := MaxPoolBackward(x, gy, arg)
	// Gradient lands only on the argmax cells.
	var nz int
	for _, v := range gx.Data {
		if v != 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Fatalf("maxpool backward touched %d cells, want 4", nz)
	}
	if gx.Data[5] != 1 || gx.Data[15] != 1 {
		t.Fatal("maxpool gradient misplaced")
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randTensor(rng, 2, 3, 3, 2)
	forward := func() *Tensor { return GlobalAvgPool(x) }
	y := forward()
	gradX := GlobalAvgPoolBackward(x, ones(y))
	if d := maxAbsDiff(gradX.Data, numGrad(x, forward)); d > 1e-6 {
		t.Fatalf("gap gradX off by %v", d)
	}
	if y.H != 1 || y.W != 1 {
		t.Fatalf("gap output %s", y.ShapeString())
	}
}

// Property: convolution is linear in its input: conv(a*x) = a*conv(x).
func TestConvLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := randTensor(rng, 3, 3, 2, 2)
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%10) + 0.5
		x := randTensor(rng, 1, 4, 4, 2)
		y1 := Conv2D(x, w, nil, 1, true)
		xs := x.Clone()
		for i := range xs.Data {
			xs.Data[i] *= scale
		}
		y2 := Conv2D(xs, w, nil, 1, true)
		for i := range y1.Data {
			if math.Abs(y2.Data[i]-scale*y1.Data[i]) > 1e-9*(1+math.Abs(y1.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: pooling never invents values — max pool outputs are always
// elements of the input.
func TestMaxPoolMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(_ uint8) bool {
		x := randTensor(rng, 1, 6, 6, 2)
		y, arg := MaxPool(x, 2, 2, false)
		for i, a := range arg {
			if a < 0 || x.Data[a] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	x := New(1, 4, 4, 3)
	w := New(3, 3, 2, 4) // wrong input channels
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch accepted")
		}
	}()
	Conv2D(x, w, nil, 1, true)
}
