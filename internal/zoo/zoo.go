// Package zoo defines the seven ImageNet architectures the paper evaluates
// (Sec. III-B1) as layer graphs: MobileNetV1 (width 0.25 and 0.5),
// MobileNetV2 (width 1.0 and 1.4), ResNet-50, InceptionV3 and
// DenseNet-121.
//
// Each builder reproduces the reference topology at the layer granularity
// of common framework model summaries, including the block structure that
// blockwise layer removal cuts at: 13 separable blocks for MobileNetV1,
// 17 inverted-residual blocks for MobileNetV2, 16 residual blocks for
// ResNet-50, 11 inception modules for InceptionV3, and 58 dense units +
// 3 transitions for DenseNet-121 — 148 blockwise TRN candidates in total,
// matching the paper's count.
package zoo

import (
	"fmt"
	"sort"

	"netcut/internal/graph"
)

// ImageNetClasses is the class count of the pretraining task.
const ImageNetClasses = 1000

// Names lists the canonical names of the paper's seven networks, in the
// latency order of Fig. 1 (fastest first).
var Names = []string{
	"MobileNetV1 (0.25)",
	"MobileNetV1 (0.5)",
	"MobileNetV2 (1.0)",
	"MobileNetV2 (1.4)",
	"ResNet-50",
	"InceptionV3",
	"DenseNet-121",
}

var builders = map[string]func() *graph.Graph{
	"MobileNetV1 (0.25)": func() *graph.Graph { return MobileNetV1(0.25) },
	"MobileNetV1 (0.5)":  func() *graph.Graph { return MobileNetV1(0.5) },
	"MobileNetV2 (1.0)":  func() *graph.Graph { return MobileNetV2(1.0) },
	"MobileNetV2 (1.4)":  func() *graph.Graph { return MobileNetV2(1.4) },
	"ResNet-50":          ResNet50,
	"InceptionV3":        InceptionV3,
	"DenseNet-121":       DenseNet121,
}

// ByName builds the named network. The name must be one of Names.
func ByName(name string) (*graph.Graph, error) {
	b, ok := builders[name]
	if !ok {
		known := make([]string, 0, len(builders))
		for k := range builders {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("zoo: unknown network %q (known: %v)", name, known)
	}
	return b(), nil
}

// Paper7 builds all seven networks in the order of Names.
func Paper7() []*graph.Graph {
	gs := make([]*graph.Graph, len(Names))
	for i, n := range Names {
		g, err := ByName(n)
		if err != nil {
			panic(err) // unreachable: Names and builders are in sync
		}
		gs[i] = g
	}
	return gs
}

// alphaString formats a width multiplier the way the paper labels it:
// always with a decimal point ("1.0", "1.4", "0.25").
func alphaString(alpha float64) string {
	if alpha == float64(int(alpha)) {
		return fmt.Sprintf("%.1f", alpha)
	}
	return fmt.Sprintf("%g", alpha)
}

// makeDivisible rounds v*alpha to the nearest multiple of divisor, never
// going below 90% of the unrounded value — the channel-rounding rule the
// MobileNet family uses for width multipliers.
func makeDivisible(v float64, divisor int) int {
	n := int(v+float64(divisor)/2) / divisor * divisor
	if n < divisor {
		n = divisor
	}
	if float64(n) < 0.9*v {
		n += divisor
	}
	return n
}

// imageNetHead appends the standard pretraining head: global average
// pooling, a 1000-way dense layer and softmax, all marked as
// classification-head layers (excluded from Eq. (1) layer accounting).
func imageNetHead(b *graph.Builder, x int) {
	b.BeginHead()
	x = b.GlobalAvgPool(x)
	x = b.Dense(x, ImageNetClasses)
	b.Softmax(x)
}
