package zoo

import "testing"

func BenchmarkBuildDenseNet121(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DenseNet121()
	}
}

func BenchmarkBuildInceptionV3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		InceptionV3()
	}
}
