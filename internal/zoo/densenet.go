package zoo

import (
	"fmt"

	"netcut/internal/graph"
)

// DenseNet121 builds the densely connected network (Huang et al., 2017)
// with growth rate 32 and dense-block sizes 6/12/24/16. The removable
// unit is one dense unit (BN/ReLU/1x1/BN/ReLU/3x3/Concat) or one
// transition layer — 58 units + 3 transitions = 61 removable blocks,
// which is what makes DenseNet dominate the paper's 148-candidate count.
func DenseNet121() *graph.Graph {
	const growth = 32
	b := graph.NewBuilder("DenseNet-121", graph.Shape{H: 224, W: 224, C: 3}, ImageNetClasses)

	x := b.Input()
	x = b.ConvBNReLU(x, 7, 64, 2, graph.Same)
	x = b.MaxPool(x, 3, 2, graph.Same)

	sizes := []int{6, 12, 24, 16}
	for bi, n := range sizes {
		for u := 1; u <= n; u++ {
			b.BeginBlock(fmt.Sprintf("dense%d_%d", bi+1, u))
			x = denseUnit(b, x, growth)
			b.EndBlock()
		}
		if bi < len(sizes)-1 {
			b.BeginBlock(fmt.Sprintf("transition%d", bi+1))
			x = transition(b, x)
			b.EndBlock()
		}
	}

	// Final BN/ReLU before the head, outside any removable block.
	x = b.BN(x)
	x = b.ReLU(x)

	imageNetHead(b, x)
	return b.MustFinish()
}

// denseUnit adds one BN-ReLU-Conv(1x1,4k)-BN-ReLU-Conv(3x3,k) unit whose
// output is concatenated onto its input, growing the channel count by k.
func denseUnit(b *graph.Builder, x, growth int) int {
	y := b.BN(x)
	y = b.ReLU(y)
	y = b.Conv(y, 1, 4*growth, 1, graph.Same)
	y = b.BN(y)
	y = b.ReLU(y)
	y = b.Conv(y, 3, growth, 1, graph.Same)
	return b.Concat(x, y)
}

// transition adds the BN-ReLU-Conv(1x1, C/2)-AvgPool(2) compression layer
// between dense blocks.
func transition(b *graph.Builder, x int) int {
	c := b.Shape(x).C / 2
	y := b.BN(x)
	y = b.ReLU(y)
	y = b.Conv(y, 1, c, 1, graph.Same)
	return b.AvgPool(y, 2, 2, graph.Valid)
}
