package zoo

import (
	"fmt"

	"netcut/internal/graph"
)

// ResNet50 builds the 50-layer residual network (He et al., 2016) with
// bottleneck blocks. The removable unit is one residual block; there are
// 16, arranged in four stages of 3, 4, 6 and 3.
func ResNet50() *graph.Graph {
	b := graph.NewBuilder("ResNet-50", graph.Shape{H: 224, W: 224, C: 3}, ImageNetClasses)

	x := b.Input()
	x = b.ConvBNReLU(x, 7, 64, 2, graph.Same)
	x = b.MaxPool(x, 3, 2, graph.Same)

	// (bottleneck width, output channels, repeats, first stride).
	cfg := []struct{ w, c, n, s int }{
		{64, 256, 3, 1},
		{128, 512, 4, 2},
		{256, 1024, 6, 2},
		{512, 2048, 3, 2},
	}
	blk := 0
	for stage, c := range cfg {
		for i := 0; i < c.n; i++ {
			stride := 1
			if i == 0 {
				stride = c.s
			}
			blk++
			b.BeginBlock(fmt.Sprintf("res%d_%d", stage+2, i+1))
			x = bottleneck(b, x, c.w, c.c, stride, i == 0)
			b.EndBlock()
		}
	}

	imageNetHead(b, x)
	return b.MustFinish()
}

// bottleneck adds a 1x1-3x3-1x1 residual bottleneck. The first block of
// each stage uses a projection shortcut (1x1 conv + BN) to match shape.
func bottleneck(b *graph.Builder, x, width, outC, stride int, project bool) int {
	shortcut := x
	if project {
		shortcut = b.ConvBN(x, 1, outC, stride, graph.Same)
	}
	y := b.ConvBNReLU(x, 1, width, stride, graph.Same)
	y = b.ConvBNReLU(y, 3, width, 1, graph.Same)
	y = b.ConvBN(y, 1, outC, 1, graph.Same)
	y = b.Add(y, shortcut)
	return b.ReLU(y)
}
