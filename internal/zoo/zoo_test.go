package zoo

import (
	"math"
	"strings"
	"testing"

	"netcut/internal/graph"
)

func TestAllBuildAndValidate(t *testing.T) {
	for _, g := range Paper7() {
		if err := graph.Validate(g); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestBlockCounts(t *testing.T) {
	want := map[string]int{
		"MobileNetV1 (0.25)": 13,
		"MobileNetV1 (0.5)":  13,
		"MobileNetV2 (1.0)":  17,
		"MobileNetV2 (1.4)":  17,
		"ResNet-50":          16,
		"InceptionV3":        11,
		"DenseNet-121":       61,
	}
	total := 0
	for _, g := range Paper7() {
		if got := g.BlockCount(); got != want[g.Name] {
			t.Errorf("%s: %d blocks, want %d", g.Name, got, want[g.Name])
		}
		total += g.BlockCount()
	}
	// The paper's 148 blockwise TRN candidates (Sec. V).
	if total != 148 {
		t.Fatalf("total blockwise cutpoints = %d, want 148", total)
	}
}

func TestLayerCountsMatchFrameworkConventions(t *testing.T) {
	// Reference framework model summaries (±6% tolerance: we omit
	// explicit zero-padding marker layers).
	want := map[string]int{
		"MobileNetV1 (0.25)": 85,
		"MobileNetV1 (0.5)":  85,
		"MobileNetV2 (1.0)":  154,
		"MobileNetV2 (1.4)":  154,
		"ResNet-50":          175,
		"InceptionV3":        311,
		"DenseNet-121":       427,
	}
	for _, g := range Paper7() {
		got := g.LayerCount()
		w := want[g.Name]
		if math.Abs(float64(got-w)) > 0.06*float64(w) {
			t.Errorf("%s: %d layers, want ~%d", g.Name, got, w)
		}
	}
}

func TestMACsMatchPublishedCounts(t *testing.T) {
	// Published multiply-accumulate counts (one MAC = one mult+add).
	want := map[string]struct {
		macs float64
		tol  float64
	}{
		"MobileNetV1 (0.25)": {41e6, 0.35},
		"MobileNetV1 (0.5)":  {150e6, 0.30},
		"MobileNetV2 (1.0)":  {300e6, 0.30},
		"MobileNetV2 (1.4)":  {585e6, 0.30},
		"ResNet-50":          {3.9e9, 0.15},
		"InceptionV3":        {5.7e9, 0.20},
		"DenseNet-121":       {2.9e9, 0.20},
	}
	for _, g := range Paper7() {
		got := float64(g.TotalMACs())
		w := want[g.Name]
		if math.Abs(got-w.macs)/w.macs > w.tol {
			t.Errorf("%s: %.3g MACs, want %.3g +-%.0f%%", g.Name, got, w.macs, w.tol*100)
		}
	}
}

func TestParamsMatchPublishedCounts(t *testing.T) {
	want := map[string]struct {
		params float64
		tol    float64
	}{
		"MobileNetV1 (0.5)": {1.3e6, 0.35},
		"MobileNetV2 (1.0)": {3.5e6, 0.25},
		"ResNet-50":         {25.6e6, 0.10},
		"InceptionV3":       {23.9e6, 0.15},
		"DenseNet-121":      {8.0e6, 0.15},
	}
	for _, g := range Paper7() {
		w, ok := want[g.Name]
		if !ok {
			continue
		}
		got := float64(g.TotalParams())
		if math.Abs(got-w.params)/w.params > w.tol {
			t.Errorf("%s: %.3g params, want %.3g +-%.0f%%", g.Name, got, w.params, w.tol*100)
		}
	}
}

func TestInceptionSpatialPipeline(t *testing.T) {
	g := InceptionV3()
	// Find the first mixed block's output: must be 35x35.
	blk := g.Blocks[0]
	if out := g.Node(blk.Output).Out; out.H != 35 || out.W != 35 {
		t.Fatalf("mixed0 output %v, want 35x35", out)
	}
	// mixed3 reduces to 17x17, mixed8 to 8x8.
	if out := g.Node(g.Blocks[3].Output).Out; out.H != 17 {
		t.Fatalf("mixed3 output %v, want 17x17", out)
	}
	if out := g.Node(g.Blocks[8].Output).Out; out.H != 8 {
		t.Fatalf("mixed8 output %v, want 8x8", out)
	}
}

func TestDenseNetChannelGrowth(t *testing.T) {
	g := DenseNet121()
	// After dense block 1 (6 units from 64 channels): 64+6*32 = 256.
	if out := g.Node(g.Blocks[5].Output).Out; out.C != 256 {
		t.Fatalf("dense1 output channels = %d, want 256", out.C)
	}
	// Transition 1 halves to 128.
	if out := g.Node(g.Blocks[6].Output).Out; out.C != 128 {
		t.Fatalf("transition1 output channels = %d, want 128", out.C)
	}
	// Final feature channels: 1024 for DenseNet-121.
	lastBlk := g.Blocks[len(g.Blocks)-1]
	if out := g.Node(lastBlk.Output).Out; out.C != 1024 {
		t.Fatalf("final dense output channels = %d, want 1024", out.C)
	}
}

func TestResNetStageShapes(t *testing.T) {
	g := ResNet50()
	// Block outputs: res2 ends 56x56x256, res3 28x28x512, res4 14x14x1024,
	// res5 7x7x2048.
	checks := []struct {
		blk  int
		want graph.Shape
	}{
		{2, graph.Shape{H: 56, W: 56, C: 256}},
		{6, graph.Shape{H: 28, W: 28, C: 512}},
		{12, graph.Shape{H: 14, W: 14, C: 1024}},
		{15, graph.Shape{H: 7, W: 7, C: 2048}},
	}
	for _, c := range checks {
		if out := g.Node(g.Blocks[c.blk].Output).Out; out != c.want {
			t.Errorf("block %d output %v, want %v", c.blk, out, c.want)
		}
	}
}

func TestMobileNetWidthScaling(t *testing.T) {
	small := MobileNetV1(0.25)
	big := MobileNetV1(0.5)
	if small.TotalMACs() >= big.TotalMACs() {
		t.Fatal("width 0.25 should have fewer MACs than width 0.5")
	}
	if small.LayerCount() != big.LayerCount() {
		t.Fatal("width multiplier must not change layer count")
	}
}

func TestMakeDivisible(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{33.6, 32}, {22.4, 24}, {8, 8}, {4, 8}, {44.8, 48}, {1280 * 1.4, 1792},
	}
	for _, c := range cases {
		if got := makeDivisible(c.v, 8); got != c.want {
			t.Errorf("makeDivisible(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("ResNet-50")
	if err != nil || g.Name != "ResNet-50" {
		t.Fatalf("ByName(ResNet-50) = %v, %v", g, err)
	}
	if _, err := ByName("VGG-19"); err == nil || !strings.Contains(err.Error(), "unknown network") {
		t.Fatalf("ByName(VGG-19) err = %v, want unknown network", err)
	}
}

func TestHeadsAreMarked(t *testing.T) {
	for _, g := range Paper7() {
		if g.HeadLayerCount() != 3 {
			t.Errorf("%s: head layers = %d, want 3 (GAP+Dense+Softmax)", g.Name, g.HeadLayerCount())
		}
		out := g.OutputNode()
		if out.Kind != graph.OpSoftmax || !out.Head {
			t.Errorf("%s: output node %v not a head softmax", g.Name, out.Kind)
		}
	}
}

func TestLatencyOrderingPrerequisites(t *testing.T) {
	// DenseNet has by far the most layers; MobileNets the fewest MACs.
	byName := map[string]*graph.Graph{}
	for _, g := range Paper7() {
		byName[g.Name] = g
	}
	if byName["DenseNet-121"].LayerCount() <= byName["InceptionV3"].LayerCount() {
		t.Fatal("DenseNet-121 should have more layers than InceptionV3")
	}
	if byName["MobileNetV1 (0.25)"].TotalMACs() >= byName["MobileNetV2 (1.0)"].TotalMACs() {
		t.Fatal("MobileNetV1 (0.25) should have fewer MACs than MobileNetV2 (1.0)")
	}
}
