package zoo

import (
	"fmt"

	"netcut/internal/graph"
)

// MobileNetV1 builds the depthwise-separable MobileNet (Howard et al.,
// 2017) at the given width multiplier. The removable unit is one
// depthwise-separable block (DWConv/BN/ReLU6 + 1x1 Conv/BN/ReLU6);
// there are 13 such blocks.
func MobileNetV1(alpha float64) *graph.Graph {
	name := "MobileNetV1 (" + alphaString(alpha) + ")"
	b := graph.NewBuilder(name, graph.Shape{H: 224, W: 224, C: 3}, ImageNetClasses)
	ch := func(c int) int { return makeDivisible(float64(c)*alpha, 8) }

	x := b.Input()
	x = b.ConvBNReLU6(x, 3, ch(32), 2, graph.Same)

	// (filters, stride) for the 13 separable blocks.
	cfg := []struct{ c, s int }{
		{64, 1},
		{128, 2}, {128, 1},
		{256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for i, c := range cfg {
		b.BeginBlock(fmt.Sprintf("sep%d", i+1))
		x = b.DWConv(x, 3, c.s, graph.Same)
		x = b.BN(x)
		x = b.ReLU6(x)
		x = b.Conv(x, 1, ch(c.c), 1, graph.Same)
		x = b.BN(x)
		x = b.ReLU6(x)
		b.EndBlock()
	}

	imageNetHead(b, x)
	return b.MustFinish()
}

// MobileNetV2 builds the inverted-residual MobileNetV2 (Sandler et al.,
// 2018) at the given width multiplier. The removable unit is one
// inverted-residual block; there are 17.
func MobileNetV2(alpha float64) *graph.Graph {
	name := "MobileNetV2 (" + alphaString(alpha) + ")"
	b := graph.NewBuilder(name, graph.Shape{H: 224, W: 224, C: 3}, ImageNetClasses)
	ch := func(c int) int { return makeDivisible(float64(c)*alpha, 8) }

	x := b.Input()
	x = b.ConvBNReLU6(x, 3, ch(32), 2, graph.Same)

	// (expansion t, output channels c, repeats n, first stride s).
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blk := 0
	for _, c := range cfg {
		outC := ch(c.c)
		for i := 0; i < c.n; i++ {
			stride := 1
			if i == 0 {
				stride = c.s
			}
			blk++
			b.BeginBlock(fmt.Sprintf("invres%d", blk))
			inShape := b.Shape(x)
			y := x
			if c.t > 1 {
				y = b.ConvBNReLU6(y, 1, c.t*inShape.C, 1, graph.Same)
			}
			y = b.DWConv(y, 3, stride, graph.Same)
			y = b.BN(y)
			y = b.ReLU6(y)
			y = b.Conv(y, 1, outC, 1, graph.Same) // linear projection
			y = b.BN(y)
			if stride == 1 && inShape.C == outC {
				y = b.Add(y, x)
			}
			x = y
			b.EndBlock()
		}
	}

	// Feature-mixing 1x1 conv after the last block. It sits outside any
	// removable block: any TRN with cutpoint >= 1 drops it along with the
	// blocks above the cut.
	last := 1280
	if alpha > 1.0 {
		last = makeDivisible(1280*alpha, 8)
	}
	x = b.ConvBNReLU6(x, 1, last, 1, graph.Same)

	imageNetHead(b, x)
	return b.MustFinish()
}
