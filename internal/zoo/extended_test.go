package zoo

import (
	"math"
	"testing"

	"netcut/internal/graph"
)

func TestExtendedZooBuilds(t *testing.T) {
	gs := ExtendedZoo()
	if len(gs) != 9 {
		t.Fatalf("extended zoo has %d networks, want 9", len(gs))
	}
	for _, g := range gs {
		if err := graph.Validate(g); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestExtendedBlockCounts(t *testing.T) {
	v := VGG16()
	if v.BlockCount() != 5 {
		t.Fatalf("VGG-16 has %d blocks, want 5 conv stages", v.BlockCount())
	}
	s := SqueezeNet11()
	if s.BlockCount() != 8 {
		t.Fatalf("SqueezeNet has %d blocks, want 8 fire modules", s.BlockCount())
	}
}

func TestExtendedMACs(t *testing.T) {
	// Published MAC counts: VGG-16 ~15.5G, SqueezeNet 1.1 ~0.35G.
	v := float64(VGG16().TotalMACs())
	if math.Abs(v-15.5e9)/15.5e9 > 0.15 {
		t.Errorf("VGG-16 MACs = %.3g, want ~15.5G", v)
	}
	s := float64(SqueezeNet11().TotalMACs())
	if math.Abs(s-0.35e9)/0.35e9 > 0.40 {
		t.Errorf("SqueezeNet MACs = %.3g, want ~0.35G", s)
	}
}

func TestExtendedParams(t *testing.T) {
	// SqueezeNet's claim to fame: ~1.2M parameters (plus our BN + GAP
	// head variations).
	s := float64(SqueezeNet11().TotalParams())
	if s > 2.5e6 {
		t.Errorf("SqueezeNet params = %.3g, want < 2.5M", s)
	}
	// VGG-16 conv parameters ~14.7M (the 123M FC head is replaced by
	// GAP in the zoo build).
	v := float64(VGG16().TotalParams())
	if v < 12e6 || v > 20e6 {
		t.Errorf("VGG-16 params = %.3g, want ~15M convs + head", v)
	}
}

func TestExtendedByName(t *testing.T) {
	if g, err := ExtendedByName("VGG-16"); err != nil || g.Name != "VGG-16" {
		t.Fatalf("ExtendedByName(VGG-16): %v %v", g, err)
	}
	// Falls through to the paper zoo.
	if g, err := ExtendedByName("ResNet-50"); err != nil || g.Name != "ResNet-50" {
		t.Fatalf("ExtendedByName(ResNet-50): %v %v", g, err)
	}
	if _, err := ExtendedByName("AlexNet"); err == nil {
		t.Fatal("unknown extended network accepted")
	}
}

func TestFireModuleChannels(t *testing.T) {
	s := SqueezeNet11()
	// First fire module output: 64+64 = 128 channels.
	if out := s.Node(s.Blocks[0].Output).Out; out.C != 128 {
		t.Fatalf("fire2 output channels = %d, want 128", out.C)
	}
}
