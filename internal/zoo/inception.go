package zoo

import (
	"fmt"

	"netcut/internal/graph"
)

// InceptionV3 builds the factorized inception network (Szegedy et al.,
// 2016) at 299x299 input. The removable unit is one inception module
// ("mixed" block); there are 11: three 35x35 modules, one grid reduction,
// four 17x17 modules, a second grid reduction, and two 8x8 modules.
func InceptionV3() *graph.Graph {
	b := graph.NewBuilder("InceptionV3", graph.Shape{H: 299, W: 299, C: 3}, ImageNetClasses)

	x := b.Input()
	x = b.ConvBNReLU(x, 3, 32, 2, graph.Valid)  // 149
	x = b.ConvBNReLU(x, 3, 32, 1, graph.Valid)  // 147
	x = b.ConvBNReLU(x, 3, 64, 1, graph.Same)   // 147
	x = b.MaxPool(x, 3, 2, graph.Valid)         // 73
	x = b.ConvBNReLU(x, 1, 80, 1, graph.Valid)  // 73
	x = b.ConvBNReLU(x, 3, 192, 1, graph.Valid) // 71
	x = b.MaxPool(x, 3, 2, graph.Valid)         // 35

	// Three 35x35 modules (mixed0..mixed2); pool-projection widths differ.
	for i, poolC := range []int{32, 64, 64} {
		b.BeginBlock(fmt.Sprintf("mixed%d", i))
		x = inceptionA(b, x, poolC)
		b.EndBlock()
	}

	// Grid reduction 35 -> 17 (mixed3).
	b.BeginBlock("mixed3")
	x = reductionA(b, x)
	b.EndBlock()

	// Four 17x17 modules (mixed4..mixed7); 7x7-branch widths 128/160/160/192.
	for i, w := range []int{128, 160, 160, 192} {
		b.BeginBlock(fmt.Sprintf("mixed%d", i+4))
		x = inceptionB(b, x, w)
		b.EndBlock()
	}

	// Grid reduction 17 -> 8 (mixed8).
	b.BeginBlock("mixed8")
	x = reductionB(b, x)
	b.EndBlock()

	// Two 8x8 modules (mixed9, mixed10).
	for i := 0; i < 2; i++ {
		b.BeginBlock(fmt.Sprintf("mixed%d", i+9))
		x = inceptionC(b, x)
		b.EndBlock()
	}

	imageNetHead(b, x)
	return b.MustFinish()
}

// inceptionA is the 35x35 module: 1x1, 5x5, double-3x3 and pooled-1x1
// branches concatenated.
func inceptionA(b *graph.Builder, x, poolC int) int {
	b1 := b.ConvBNReLU(x, 1, 64, 1, graph.Same)

	b5 := b.ConvBNReLU(x, 1, 48, 1, graph.Same)
	b5 = b.ConvBNReLU(b5, 5, 64, 1, graph.Same)

	b3 := b.ConvBNReLU(x, 1, 64, 1, graph.Same)
	b3 = b.ConvBNReLU(b3, 3, 96, 1, graph.Same)
	b3 = b.ConvBNReLU(b3, 3, 96, 1, graph.Same)

	bp := b.AvgPool(x, 3, 1, graph.Same)
	bp = b.ConvBNReLU(bp, 1, poolC, 1, graph.Same)

	return b.Concat(b1, b5, b3, bp)
}

// reductionA is the 35->17 grid reduction: strided 3x3, strided
// double-3x3 and max-pool branches.
func reductionA(b *graph.Builder, x int) int {
	b3 := b.ConvBNReLU(x, 3, 384, 2, graph.Valid)

	bd := b.ConvBNReLU(x, 1, 64, 1, graph.Same)
	bd = b.ConvBNReLU(bd, 3, 96, 1, graph.Same)
	bd = b.ConvBNReLU(bd, 3, 96, 2, graph.Valid)

	bp := b.MaxPool(x, 3, 2, graph.Valid)

	return b.Concat(b3, bd, bp)
}

// inceptionB is the 17x17 module with factorized 7x7 convolutions; w is
// the bottleneck width of the 7x7 branches.
func inceptionB(b *graph.Builder, x, w int) int {
	b1 := b.ConvBNReLU(x, 1, 192, 1, graph.Same)

	b7 := b.ConvBNReLU(x, 1, w, 1, graph.Same)
	b7 = convBNReLURect(b, b7, 1, 7, w)
	b7 = convBNReLURect(b, b7, 7, 1, 192)

	bd := b.ConvBNReLU(x, 1, w, 1, graph.Same)
	bd = convBNReLURect(b, bd, 7, 1, w)
	bd = convBNReLURect(b, bd, 1, 7, w)
	bd = convBNReLURect(b, bd, 7, 1, w)
	bd = convBNReLURect(b, bd, 1, 7, 192)

	bp := b.AvgPool(x, 3, 1, graph.Same)
	bp = b.ConvBNReLU(bp, 1, 192, 1, graph.Same)

	return b.Concat(b1, b7, bd, bp)
}

// reductionB is the 17->8 grid reduction.
func reductionB(b *graph.Builder, x int) int {
	b3 := b.ConvBNReLU(x, 1, 192, 1, graph.Same)
	b3 = b.ConvBNReLU(b3, 3, 320, 2, graph.Valid)

	b7 := b.ConvBNReLU(x, 1, 192, 1, graph.Same)
	b7 = convBNReLURect(b, b7, 1, 7, 192)
	b7 = convBNReLURect(b, b7, 7, 1, 192)
	b7 = b.ConvBNReLU(b7, 3, 192, 2, graph.Valid)

	bp := b.MaxPool(x, 3, 2, graph.Valid)

	return b.Concat(b3, b7, bp)
}

// inceptionC is the 8x8 module with expanded 3x3 branches (1x3 and 3x1
// outputs concatenated).
func inceptionC(b *graph.Builder, x int) int {
	b1 := b.ConvBNReLU(x, 1, 320, 1, graph.Same)

	b3 := b.ConvBNReLU(x, 1, 384, 1, graph.Same)
	b3a := convBNReLURect(b, b3, 1, 3, 384)
	b3b := convBNReLURect(b, b3, 3, 1, 384)
	b3m := b.Concat(b3a, b3b)

	bd := b.ConvBNReLU(x, 1, 448, 1, graph.Same)
	bd = b.ConvBNReLU(bd, 3, 384, 1, graph.Same)
	bda := convBNReLURect(b, bd, 1, 3, 384)
	bdb := convBNReLURect(b, bd, 3, 1, 384)
	bdm := b.Concat(bda, bdb)

	bp := b.AvgPool(x, 3, 1, graph.Same)
	bp = b.ConvBNReLU(bp, 1, 192, 1, graph.Same)

	return b.Concat(b1, b3m, bdm, bp)
}

func convBNReLURect(b *graph.Builder, x, kh, kw, outC int) int {
	y := b.ConvRect(x, kh, kw, outC, 1, graph.Same)
	y = b.BN(y)
	return b.ReLU(y)
}
