package zoo

import (
	"fmt"

	"netcut/internal/graph"
)

// ExtendedNames lists additional architectures beyond the paper's seven.
// They are our extension (the paper's source methodology considered 23
// off-the-shelf networks before pruning to 7): a much heavier classical
// network and a much lighter one, stretching both ends of the Fig. 1
// trade-off and exercising new block flavours (plain conv stages and
// fire modules).
var ExtendedNames = []string{
	"SqueezeNet-1.1",
	"VGG-16",
}

// ExtendedByName builds an extension network by name; it also accepts
// the paper's seven.
func ExtendedByName(name string) (*graph.Graph, error) {
	switch name {
	case "SqueezeNet-1.1":
		return SqueezeNet11(), nil
	case "VGG-16":
		return VGG16(), nil
	}
	return ByName(name)
}

// ExtendedZoo returns the paper's seven networks plus the extensions.
func ExtendedZoo() []*graph.Graph {
	gs := Paper7()
	for _, n := range ExtendedNames {
		g, err := ExtendedByName(n)
		if err != nil {
			panic(err) // static table, covered by tests
		}
		gs = append(gs, g)
	}
	return gs
}

// VGG16 builds the 16-layer VGG (Simonyan & Zisserman, 2015) with batch
// norm. The removable unit is one conv stage; there are 5. VGG's bulk
// (15.5G MACs, 138M parameters) puts it beyond DenseNet-121 on the
// latency axis.
func VGG16() *graph.Graph {
	b := graph.NewBuilder("VGG-16", graph.Shape{H: 224, W: 224, C: 3}, ImageNetClasses)
	x := b.Input()
	// (convs per stage, channels).
	cfg := []struct{ n, c int }{
		{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512},
	}
	for si, st := range cfg {
		b.BeginBlock(fmt.Sprintf("stage%d", si+1))
		for i := 0; i < st.n; i++ {
			x = b.ConvBNReLU(x, 3, st.c, 1, graph.Same)
		}
		x = b.MaxPool(x, 2, 2, graph.Valid)
		b.EndBlock()
	}
	// The original VGG FC head is enormous; the transfer flow replaces
	// it anyway, so the zoo version carries the GAP head like the rest.
	imageNetHead(b, x)
	return b.MustFinish()
}

// SqueezeNet11 builds SqueezeNet 1.1 (Iandola et al., 2016): fire
// modules (a squeeze 1x1 conv feeding concatenated 1x1 and 3x3 expand
// convs). The removable unit is one fire module; there are 8. At ~0.4G
// MACs and ~1.2M parameters it probes the fast end of the frontier.
func SqueezeNet11() *graph.Graph {
	b := graph.NewBuilder("SqueezeNet-1.1", graph.Shape{H: 224, W: 224, C: 3}, ImageNetClasses)
	x := b.Input()
	x = b.ConvBNReLU(x, 3, 64, 2, graph.Same)
	x = b.MaxPool(x, 3, 2, graph.Same)

	type fireCfg struct {
		squeeze, expand int
		poolAfter       bool
	}
	fires := []fireCfg{
		{16, 64, false}, {16, 64, true},
		{32, 128, false}, {32, 128, true},
		{48, 192, false}, {48, 192, false},
		{64, 256, false}, {64, 256, false},
	}
	for i, f := range fires {
		b.BeginBlock(fmt.Sprintf("fire%d", i+2))
		x = fire(b, x, f.squeeze, f.expand)
		if f.poolAfter {
			x = b.MaxPool(x, 3, 2, graph.Same)
		}
		b.EndBlock()
	}
	imageNetHead(b, x)
	return b.MustFinish()
}

// fire adds one fire module: squeeze 1x1 to s channels, expand to e
// channels through parallel 1x1 and 3x3 convs, concatenated.
func fire(b *graph.Builder, x, s, e int) int {
	sq := b.ConvBNReLU(x, 1, s, 1, graph.Same)
	e1 := b.ConvBNReLU(sq, 1, e, 1, graph.Same)
	e3 := b.ConvBNReLU(sq, 3, e, 1, graph.Same)
	return b.Concat(e1, e3)
}
