// Package earlyexit implements a BranchyNet-style baseline (Teerapittayanon
// et al., 2016), the related-work system the paper positions NetCut
// against (Sec. II): instead of trimming a network ahead of time, attach
// side classification heads at intermediate blocks and let easy inputs
// exit early at run time.
//
// The package reuses the reproduction's substrates — exit branches are
// trim prefixes, branch latency comes from the device model, branch
// accuracy from the transfer response curves (an exit at depth d sees the
// same features a TRN cut at d keeps). What it adds is the run-time exit
// policy and the *distinction NetCut's setting cares about*: an
// early-exit network's expected latency can look great, but its
// worst-case latency is still the full network plus every exit head it
// evaluated on the way — and a hard real-time deadline budgets the worst
// case, not the average.
package earlyexit

import (
	"fmt"
	"math"
	"sort"

	"netcut/internal/graph"
	"netcut/internal/trim"
)

// Exit is one side branch: a prefix of the backbone with its own head.
type Exit struct {
	// Branch is the prefix network ending in this exit's head; its
	// cutpoint identifies the backbone block it taps.
	Branch *trim.TRN
	// BranchMs is the end-to-end latency of reaching and evaluating
	// this exit (prefix + head).
	BranchMs float64
	// HeadMs is the marginal cost of this exit's head alone — what a
	// deeper path pays for having evaluated (and rejected) this exit.
	HeadMs float64
	// Accuracy is the exit's standalone accuracy.
	Accuracy float64
}

// Net is a backbone with ordered early exits (shallowest first); the
// final "exit" is the full network.
type Net struct {
	Backbone *graph.Graph
	Exits    []Exit // ascending depth; last entry is the full network
}

// Measurer reports a network's latency (e.g. device steady state).
type Measurer func(g *graph.Graph) float64

// Scorer reports a TRN's task accuracy (e.g. the transfer simulator).
type Scorer func(t *trim.TRN) (float64, error)

// Build constructs an early-exit net with side heads after the given
// backbone blocks (1-based counts of retained blocks, ascending) plus
// the mandatory final exit.
func Build(g *graph.Graph, tapsAfterBlocks []int, head trim.HeadSpec, measure Measurer, score Scorer) (*Net, error) {
	if measure == nil || score == nil {
		return nil, fmt.Errorf("earlyexit: nil measurer or scorer")
	}
	taps := append([]int(nil), tapsAfterBlocks...)
	sort.Ints(taps)
	n := &Net{Backbone: g}
	prev := 0
	for _, kept := range taps {
		if kept <= prev || kept >= g.BlockCount() {
			return nil, fmt.Errorf("earlyexit: tap after block %d invalid for %s (%d blocks)", kept, g.Name, g.BlockCount())
		}
		prev = kept
		ex, err := buildExit(g, g.BlockCount()-kept, head, measure, score)
		if err != nil {
			return nil, err
		}
		n.Exits = append(n.Exits, ex)
	}
	final, err := buildExit(g, 0, head, measure, score)
	if err != nil {
		return nil, err
	}
	n.Exits = append(n.Exits, final)
	return n, nil
}

func buildExit(g *graph.Graph, cut int, head trim.HeadSpec, measure Measurer, score Scorer) (Exit, error) {
	branch, err := trim.Cut(g, cut, head)
	if err != nil {
		return Exit{}, err
	}
	acc, err := score(branch)
	if err != nil {
		return Exit{}, err
	}
	branchMs := measure(branch.Graph)
	// The marginal head cost: branch latency minus the headless prefix.
	headMs := branchMs
	if stub, err := trim.Cut(g, cut, trim.HeadSpec{Hidden1: 1, Hidden2: 1, Classes: head.Classes}); err == nil {
		// A minimal head approximates the prefix-only cost floor.
		headMs = math.Max(0.001, branchMs-measure(stub.Graph)+0.001)
	}
	return Exit{Branch: branch, BranchMs: branchMs, HeadMs: headMs, Accuracy: acc}, nil
}

// Policy is the run-time exit rule: an input leaves at the first exit
// whose confidence clears Tau. Confidence correlates with exit accuracy;
// Sharpness controls how quickly utilization saturates around Tau.
type Policy struct {
	Tau       float64 // confidence threshold in (0,1)
	Sharpness float64 // 0 defaults to 12
}

// utilization returns the fraction of inputs stopping at each exit. The
// per-exit stop probability is a logistic in (accuracy - Tau): exits
// much weaker than the threshold rarely fire, exits above it absorb
// most traffic. The final exit takes the remainder.
func (p Policy) utilization(exits []Exit) []float64 {
	k := p.Sharpness
	if k == 0 {
		k = 12
	}
	u := make([]float64, len(exits))
	remaining := 1.0
	for i, e := range exits {
		if i == len(exits)-1 {
			u[i] = remaining
			break
		}
		stop := 1 / (1 + math.Exp(-k*(e.Accuracy-p.Tau)))
		u[i] = remaining * stop
		remaining -= u[i]
	}
	return u
}

// Operating is the run-time behaviour of an early-exit net under a
// policy.
type Operating struct {
	Tau         float64
	Utilization []float64
	// ExpectedMs is the average-case latency: each input pays its exit
	// branch plus the heads of every earlier exit it evaluated.
	ExpectedMs float64
	// WorstCaseMs is what a hard deadline must budget: the full network
	// plus all side heads along the way.
	WorstCaseMs float64
	// Accuracy is the utilization-weighted accuracy.
	Accuracy float64
}

// Evaluate computes the operating point of the net under a policy.
func (n *Net) Evaluate(p Policy) Operating {
	u := p.utilization(n.Exits)
	op := Operating{Tau: p.Tau, Utilization: u}
	cumHeads := 0.0
	for i, e := range n.Exits {
		pathMs := e.BranchMs + cumHeads
		op.ExpectedMs += u[i] * pathMs
		op.Accuracy += u[i] * e.Accuracy
		op.WorstCaseMs = pathMs // the deepest path is last
		cumHeads += e.HeadMs
	}
	return op
}

// Sweep evaluates a range of thresholds and returns the operating
// curve, ascending in Tau.
func (n *Net) Sweep(taus []float64) []Operating {
	out := make([]Operating, len(taus))
	for i, tau := range taus {
		out[i] = n.Evaluate(Policy{Tau: tau})
	}
	return out
}
