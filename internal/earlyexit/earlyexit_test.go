package earlyexit

import (
	"math"
	"testing"

	"netcut/internal/device"
	"netcut/internal/graph"
	"netcut/internal/transfer"
	"netcut/internal/trim"
	"netcut/internal/zoo"
)

func fixture(t *testing.T) (*Net, Measurer) {
	t.Helper()
	g, err := zoo.ByName("ResNet-50")
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(device.Xavier())
	sim := transfer.NewSimulator(1)
	measure := Measurer(func(g *graph.Graph) float64 { return dev.LatencyMs(g) })
	score := Scorer(func(tr *trim.TRN) (float64, error) { return sim.Accuracy(tr) })
	n, err := Build(g, []int{3, 7, 11}, trim.DefaultHead, measure, score)
	if err != nil {
		t.Fatal(err)
	}
	return n, measure
}

func TestBuildStructure(t *testing.T) {
	n, _ := fixture(t)
	if len(n.Exits) != 4 {
		t.Fatalf("%d exits, want 3 taps + final", len(n.Exits))
	}
	// Exits are ascending in both latency and accuracy.
	for i := 1; i < len(n.Exits); i++ {
		if n.Exits[i].BranchMs <= n.Exits[i-1].BranchMs {
			t.Fatalf("exit %d latency %.3f not deeper than previous %.3f",
				i, n.Exits[i].BranchMs, n.Exits[i-1].BranchMs)
		}
		if n.Exits[i].Accuracy < n.Exits[i-1].Accuracy-0.02 {
			t.Fatalf("exit %d accuracy %.3f below previous %.3f",
				i, n.Exits[i].Accuracy, n.Exits[i-1].Accuracy)
		}
	}
	// Final exit keeps all blocks.
	last := n.Exits[len(n.Exits)-1]
	if last.Branch.Cutpoint != 0 {
		t.Fatalf("final exit cutpoint = %d, want 0", last.Branch.Cutpoint)
	}
}

func TestBuildValidation(t *testing.T) {
	g, _ := zoo.ByName("ResNet-50")
	dev := device.New(device.Xavier())
	sim := transfer.NewSimulator(1)
	measure := Measurer(func(g *graph.Graph) float64 { return dev.LatencyMs(g) })
	score := Scorer(func(tr *trim.TRN) (float64, error) { return sim.Accuracy(tr) })
	if _, err := Build(g, []int{0}, trim.DefaultHead, measure, score); err == nil {
		t.Fatal("tap at block 0 accepted")
	}
	if _, err := Build(g, []int{16}, trim.DefaultHead, measure, score); err == nil {
		t.Fatal("tap at the final block accepted")
	}
	if _, err := Build(g, []int{3, 3}, trim.DefaultHead, measure, score); err == nil {
		t.Fatal("duplicate taps accepted")
	}
	if _, err := Build(g, nil, trim.DefaultHead, nil, score); err == nil {
		t.Fatal("nil measurer accepted")
	}
}

func TestUtilizationIsDistribution(t *testing.T) {
	n, _ := fixture(t)
	for _, tau := range []float64{0.5, 0.8, 0.95} {
		op := n.Evaluate(Policy{Tau: tau})
		var sum float64
		for _, u := range op.Utilization {
			if u < 0 {
				t.Fatalf("tau %v: negative utilization", tau)
			}
			sum += u
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("tau %v: utilization sums to %v", tau, sum)
		}
	}
}

func TestLooseThresholdExitsEarly(t *testing.T) {
	n, _ := fixture(t)
	loose := n.Evaluate(Policy{Tau: 0.5})
	strict := n.Evaluate(Policy{Tau: 0.97})
	if loose.ExpectedMs >= strict.ExpectedMs {
		t.Fatalf("loose threshold expected %.3f not below strict %.3f",
			loose.ExpectedMs, strict.ExpectedMs)
	}
	if loose.Accuracy >= strict.Accuracy {
		t.Fatalf("loose threshold accuracy %.3f not below strict %.3f",
			loose.Accuracy, strict.Accuracy)
	}
}

func TestWorstCaseExceedsBackbone(t *testing.T) {
	// The real-time argument: the worst-case path is the full network
	// plus every side head, regardless of threshold.
	n, measure := fixture(t)
	backbone := measure(n.Exits[len(n.Exits)-1].Branch.Graph)
	for _, tau := range []float64{0.5, 0.8, 0.95} {
		op := n.Evaluate(Policy{Tau: tau})
		if op.WorstCaseMs <= backbone {
			t.Fatalf("tau %v: worst case %.3f not above backbone %.3f",
				tau, op.WorstCaseMs, backbone)
		}
		if op.ExpectedMs > op.WorstCaseMs {
			t.Fatalf("tau %v: expected %.3f above worst case %.3f",
				tau, op.ExpectedMs, op.WorstCaseMs)
		}
	}
}

func TestSweepMonotoneInTau(t *testing.T) {
	n, _ := fixture(t)
	ops := n.Sweep([]float64{0.5, 0.7, 0.85, 0.95})
	for i := 1; i < len(ops); i++ {
		if ops[i].ExpectedMs < ops[i-1].ExpectedMs-1e-9 {
			t.Fatalf("expected latency not monotone in tau: %.4f -> %.4f",
				ops[i-1].ExpectedMs, ops[i].ExpectedMs)
		}
		if ops[i].Accuracy < ops[i-1].Accuracy-1e-9 {
			t.Fatalf("accuracy not monotone in tau: %.4f -> %.4f",
				ops[i-1].Accuracy, ops[i].Accuracy)
		}
	}
}
