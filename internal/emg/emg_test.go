package emg

import (
	"math"
	"testing"

	"netcut/internal/hands"
)

func TestPredictIsDistribution(t *testing.T) {
	c := New(Config{Seed: 1})
	for g := 0; g < hands.NumGrasps; g++ {
		d, err := c.Predict(g)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range d {
			if v < 0 {
				t.Fatalf("negative probability %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("grasp %d distribution sums to %v", g, sum)
		}
	}
}

func TestCleanSignalClassifiesCorrectly(t *testing.T) {
	// With no noise, the template match must put the most mass on the
	// true grasp.
	c := New(Config{NoiseSigma: 1e-9, Seed: 2})
	for g := 0; g < hands.NumGrasps; g++ {
		d, err := c.Predict(g)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for i, v := range d {
			if v > d[best] {
				best = i
			}
		}
		if best != g {
			t.Fatalf("clean grasp %d classified as %d: %v", g, best, d)
		}
	}
}

func TestNoiseDegradesReliability(t *testing.T) {
	clean := New(Config{NoiseSigma: 0.05, Seed: 3}).Accuracy(200)
	noisy := New(Config{NoiseSigma: 0.6, Seed: 3}).Accuracy(200)
	if noisy >= clean {
		t.Fatalf("noise did not degrade accuracy: clean %.3f noisy %.3f", clean, noisy)
	}
	// The paper's premise: EMG alone is not great.
	if noisy > 0.9 {
		t.Fatalf("noisy EMG accuracy %.3f implausibly high", noisy)
	}
}

func TestInvalidInputs(t *testing.T) {
	c := New(Config{Seed: 4})
	if _, err := c.Predict(-1); err == nil {
		t.Fatal("negative grasp accepted")
	}
	if _, err := c.Predict(hands.NumGrasps); err == nil {
		t.Fatal("out-of-range grasp accepted")
	}
	if _, err := c.Classify([]float64{1, 2}); err == nil {
		t.Fatal("short window accepted")
	}
}

func TestWindowShape(t *testing.T) {
	c := New(Config{Seed: 5})
	w, err := c.Window(hands.PowerSphere)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != Channels {
		t.Fatalf("window has %d channels, want %d", len(w), Channels)
	}
	for _, v := range w {
		if v < 0 {
			t.Fatal("RMS features must be non-negative")
		}
	}
}
