// Package emg simulates the Myo-band EMG grasp-intent classifier of the
// robotic prosthetic hand (Sec. III-A). It synthesizes 8-channel
// electromyography feature windows from per-grasp muscle-activation
// templates, classifies them by template matching, and emits soft
// probability distributions — the representation the fusion stage
// requires. Reliability is configurable because the paper's premise is
// that EMG alone "lacks robustness and yields poor results", which is
// why the visual classifier (and hence NetCut) exists.
package emg

import (
	"fmt"
	"math"
	"math/rand"

	"netcut/internal/hands"
	"netcut/internal/metric"
)

// Channels is the electrode count of a Myo-style armband.
const Channels = 8

// templates are per-grasp mean muscle activations per channel, loosely
// modelling distinct forearm synergies.
var templates = [hands.NumGrasps][Channels]float64{
	hands.OpenPalm:          {0.2, 0.8, 0.7, 0.3, 0.2, 0.6, 0.4, 0.3},
	hands.MediumWrap:        {0.9, 0.4, 0.3, 0.8, 0.7, 0.2, 0.5, 0.6},
	hands.PowerSphere:       {0.7, 0.7, 0.5, 0.6, 0.8, 0.5, 0.6, 0.7},
	hands.ParallelExtension: {0.3, 0.5, 0.8, 0.2, 0.3, 0.8, 0.7, 0.2},
	hands.PalmarPinch:       {0.5, 0.2, 0.4, 0.5, 0.4, 0.3, 0.9, 0.8},
}

// Config parameterizes the simulated classifier.
type Config struct {
	// NoiseSigma is the feature noise level; higher means a less
	// reliable EMG stream. 0 defaults to 0.25 (paper-premise: noisy).
	NoiseSigma float64
	// Temperature controls output sharpness; 0 defaults to 12.
	Temperature float64
	Seed        int64
}

func (c *Config) fill() {
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.25
	}
	if c.Temperature == 0 {
		c.Temperature = 12
	}
}

// Classifier is a synthetic EMG intent classifier.
type Classifier struct {
	cfg Config
	rng *rand.Rand
}

// New builds a Classifier.
func New(cfg Config) *Classifier {
	cfg.fill()
	return &Classifier{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Window synthesizes one RMS feature window for the intended grasp.
func (c *Classifier) Window(grasp int) ([]float64, error) {
	if grasp < 0 || grasp >= hands.NumGrasps {
		return nil, fmt.Errorf("emg: unknown grasp %d", grasp)
	}
	w := make([]float64, Channels)
	for ch := 0; ch < Channels; ch++ {
		v := templates[grasp][ch] + c.rng.NormFloat64()*c.cfg.NoiseSigma
		if v < 0 {
			v = 0
		}
		w[ch] = v
	}
	return w, nil
}

// Classify converts a feature window into a soft grasp distribution by
// softmax over negative template distances.
func (c *Classifier) Classify(window []float64) ([]float64, error) {
	if len(window) != Channels {
		return nil, fmt.Errorf("emg: window has %d channels, want %d", len(window), Channels)
	}
	scores := make([]float64, hands.NumGrasps)
	for g := 0; g < hands.NumGrasps; g++ {
		var d2 float64
		for ch := 0; ch < Channels; ch++ {
			d := window[ch] - templates[g][ch]
			d2 += d * d
		}
		scores[g] = -d2 * c.cfg.Temperature
	}
	// Softmax.
	maxS := scores[0]
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	var sum float64
	for g := range scores {
		scores[g] = math.Exp(scores[g] - maxS)
		sum += scores[g]
	}
	for g := range scores {
		scores[g] /= sum
	}
	return scores, nil
}

// Predict synthesizes a window for the intended grasp and classifies
// it: one EMG prediction tick.
func (c *Classifier) Predict(grasp int) ([]float64, error) {
	w, err := c.Window(grasp)
	if err != nil {
		return nil, err
	}
	return c.Classify(w)
}

// Accuracy estimates the classifier's mean angular similarity against
// sharp intent labels over n trials — a quick reliability probe.
func (c *Classifier) Accuracy(n int) float64 {
	var sims []float64
	for i := 0; i < n; i++ {
		g := i % hands.NumGrasps
		d, err := c.Predict(g)
		if err != nil {
			continue
		}
		truth := make([]float64, hands.NumGrasps)
		truth[g] = 1
		sims = append(sims, metric.AngularSimilarity(d, truth))
	}
	return metric.Mean(sims)
}
