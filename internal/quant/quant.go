// Package quant implements the deployment optimizations of Sec. III-B4
// on the real nn stack: batch-norm folding (layer fusion at the weight
// level), post-training int8 quantization of weights (per-feature, i.e.
// per output channel, offline) and activations (per-tensor, calibrated
// on a random 10% of the training set by minimizing quantization MSE).
//
// Quantization here is "fake quant": values are snapped to the int8
// grid and dequantized, so the float execution path exercises exactly
// the arithmetic an integer kernel would produce. IntegerDense proves
// the equivalence on a real int8/int32 accumulation path.
package quant

import (
	"fmt"
	"math"

	"netcut/internal/nn"
	"netcut/internal/tensor"
)

// Levels is the symmetric int8 quantization range.
const Levels = 127

// Config parameterizes Apply.
type Config struct {
	// FoldBN folds batch norms into preceding convolutions first.
	FoldBN bool
	// ActCandidates is the number of clip candidates searched per
	// activation scale (minimum-MSE selection); 0 = 31.
	ActCandidates int
	// MaxSamples bounds the activation samples retained per observer;
	// 0 = 50000.
	MaxSamples int
}

func (c *Config) fill() {
	if c.ActCandidates == 0 {
		c.ActCandidates = 31
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 50000
	}
}

// Report summarizes a quantization pass.
type Report struct {
	FoldedBN        int
	QuantizedParams int
	ActObservers    int
	// WeightMSE is the mean squared error introduced into the weights.
	WeightMSE float64
}

// Apply quantizes a trained model in place for inference: folds BN
// (optionally), fake-quantizes conv/dense weights per output channel,
// inserts per-tensor activation quantizers after every ReLU, and
// calibrates their scales on the given calibration set. The model
// should be treated as inference-only afterwards.
func Apply(m *nn.Model, calib nn.Dataset, cfg Config) (*Report, error) {
	if calib == nil || calib.Len() == 0 {
		return nil, fmt.Errorf("quant: empty calibration set")
	}
	cfg.fill()
	rep := &Report{}
	if cfg.FoldBN {
		rep.FoldedBN = foldModel(m)
	}
	quantizeModelWeights(m, rep)
	obs := insertActQuant(m, cfg)
	rep.ActObservers = len(obs)

	// Calibration pass: observers record activations.
	for _, o := range obs {
		o.observing = true
	}
	const chunk = 16
	for at := 0; at < calib.Len(); at += chunk {
		end := at + chunk
		if end > calib.Len() {
			end = calib.Len()
		}
		idx := make([]int, 0, end-at)
		for i := at; i < end; i++ {
			idx = append(idx, i)
		}
		x, _ := nn.Batch(calib, idx)
		m.Forward(x, false)
	}
	for _, o := range obs {
		o.calibrate(cfg.ActCandidates)
		o.observing = false
	}
	return rep, nil
}

// quantizeChannelwise fake-quantizes vals viewed as rows of length ch
// (channel-last layout), one symmetric scale per channel. Returns the
// scales and the introduced MSE.
func quantizeChannelwise(vals []float64, ch int) ([]float64, float64) {
	scales := make([]float64, ch)
	for c := 0; c < ch; c++ {
		var maxAbs float64
		for i := c; i < len(vals); i += ch {
			maxAbs = math.Max(maxAbs, math.Abs(vals[i]))
		}
		if maxAbs == 0 {
			scales[c] = 1
			continue
		}
		scales[c] = maxAbs / Levels
	}
	var mse float64
	for c := 0; c < ch; c++ {
		s := scales[c]
		for i := c; i < len(vals); i += ch {
			q := math.Round(vals[i] / s)
			if q > Levels {
				q = Levels
			} else if q < -Levels {
				q = -Levels
			}
			nv := q * s
			d := nv - vals[i]
			mse += d * d
			vals[i] = nv
		}
	}
	return scales, mse / float64(len(vals))
}

func quantizeModelWeights(m *nn.Model, rep *Report) {
	var totalMSE float64
	var count int
	var walk func(l nn.Layer)
	walk = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Conv:
			_, mse := quantizeChannelwise(v.W.Val, v.OutC)
			totalMSE += mse
			count++
			rep.QuantizedParams += len(v.W.Val)
		case *nn.DWConv:
			// Depthwise weights are [K,K,C,1]: the channel is the
			// innermost varying dimension of the flat layout.
			_, mse := quantizeChannelwise(v.W.Val, v.C)
			totalMSE += mse
			count++
			rep.QuantizedParams += len(v.W.Val)
		case *nn.Dense:
			_, mse := quantizeChannelwise(v.W.Val, v.OutC)
			totalMSE += mse
			count++
			rep.QuantizedParams += len(v.W.Val)
		case *nn.Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *nn.Residual:
			walk(v.Body)
		}
	}
	walk(m.Stem)
	for _, b := range m.Blocks {
		walk(b)
	}
	walk(m.Head)
	if count > 0 {
		rep.WeightMSE = totalMSE / float64(count)
	}
}

// ActQuant is a per-tensor activation fake-quantizer with an observer
// mode for calibration. Backward is straight-through.
type ActQuant struct {
	Scale     float64
	observing bool
	samples   []float64
	maxSample int
	stride    int
	seen      int
}

// Forward implements nn.Layer.
func (a *ActQuant) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if a.observing {
		for _, v := range x.Data {
			a.seen++
			if a.seen%a.strideOr1() == 0 && len(a.samples) < a.maxSample {
				a.samples = append(a.samples, v)
			}
		}
		return x
	}
	if a.Scale == 0 {
		return x
	}
	y := x.Clone()
	for i, v := range y.Data {
		q := math.Round(v / a.Scale)
		if q > Levels {
			q = Levels
		} else if q < -Levels {
			q = -Levels
		}
		y.Data[i] = q * a.Scale
	}
	return y
}

func (a *ActQuant) strideOr1() int {
	if a.stride <= 0 {
		return 1
	}
	return a.stride
}

// Backward implements nn.Layer (straight-through estimator).
func (a *ActQuant) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Params implements nn.Layer.
func (a *ActQuant) Params() []*nn.Param { return nil }

// calibrate selects the clip scale minimizing quantization MSE over the
// observed samples — the "scaling factors which minimize the
// information loss" of Sec. III-B4.
func (a *ActQuant) calibrate(candidates int) {
	if len(a.samples) == 0 {
		a.Scale = 0
		return
	}
	var maxAbs float64
	for _, v := range a.samples {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	if maxAbs == 0 {
		a.Scale = 0
		return
	}
	best, bestMSE := maxAbs/Levels, math.Inf(1)
	for i := 0; i < candidates; i++ {
		clip := maxAbs * (0.3 + 0.7*float64(i)/float64(candidates-1))
		s := clip / Levels
		var mse float64
		for _, v := range a.samples {
			q := math.Round(v / s)
			if q > Levels {
				q = Levels
			} else if q < -Levels {
				q = -Levels
			}
			d := q*s - v
			mse += d * d
		}
		if mse < bestMSE {
			bestMSE, best = mse, s
		}
	}
	a.Scale = best
	a.samples = nil
}

// insertActQuant places an ActQuant after every ReLU in the model and
// returns the inserted observers.
func insertActQuant(m *nn.Model, cfg Config) []*ActQuant {
	var obs []*ActQuant
	var rewrite func(l nn.Layer) nn.Layer
	rewrite = func(l nn.Layer) nn.Layer {
		switch v := l.(type) {
		case *nn.Sequential:
			var out []nn.Layer
			for _, c := range v.Layers {
				out = append(out, rewrite(c))
				if _, isReLU := c.(*nn.ReLU); isReLU {
					a := &ActQuant{maxSample: cfg.MaxSamples, stride: 3}
					obs = append(obs, a)
					out = append(out, a)
				}
			}
			v.Layers = out
			return v
		case *nn.Residual:
			v.Body = rewrite(v.Body)
			return v
		default:
			return l
		}
	}
	m.Stem = rewrite(m.Stem).(*nn.Sequential)
	for i := range m.Blocks {
		m.Blocks[i] = rewrite(m.Blocks[i])
	}
	m.Head = rewrite(m.Head).(*nn.Sequential)
	return obs
}
