package quant

import (
	"math"
	"math/rand"
	"testing"

	"netcut/internal/hands"
	"netcut/internal/nn"
	"netcut/internal/tensor"
)

func trainedModel(t *testing.T, seed int64) (*nn.Model, *hands.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := hands.Generate(hands.Config{N: 120, Size: 12, Seed: seed})
	m, err := nn.Build(nn.MiniConfig{InputH: 12, StemC: 6, Width: 8, Blocks: 2, Classes: 5, HeadHidden: 16}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nn.Train(m, ds, nn.TrainConfig{Epochs: 20, BatchSize: 16, Optimizer: nn.NewAdam(3e-3), Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return m, ds
}

func TestQuantizeChannelwiseOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), vals...)
	scales, mse := quantizeChannelwise(vals, 4)
	if len(scales) != 4 {
		t.Fatalf("%d scales, want 4", len(scales))
	}
	for c := 0; c < 4; c++ {
		if scales[c] <= 0 {
			t.Fatalf("scale %d = %v", c, scales[c])
		}
		for i := c; i < len(vals); i += 4 {
			q := vals[i] / scales[c]
			if math.Abs(q-math.Round(q)) > 1e-9 {
				t.Fatalf("value %v not on the int8 grid (scale %v)", vals[i], scales[c])
			}
			if math.Abs(math.Round(q)) > Levels {
				t.Fatalf("quantized level %v exceeds +-127", q)
			}
		}
	}
	if mse <= 0 || mse > 0.01 {
		t.Fatalf("weight MSE %v implausible", mse)
	}
	// Error is small relative to the data.
	var worst float64
	for i := range vals {
		worst = math.Max(worst, math.Abs(vals[i]-orig[i]))
	}
	if worst > 0.05 {
		t.Fatalf("max weight error %v too large", worst)
	}
}

func TestQuantizeZeroChannel(t *testing.T) {
	vals := []float64{0, 1, 0, 2}
	scales, _ := quantizeChannelwise(vals, 2)
	if scales[0] != 1 {
		t.Fatalf("zero channel scale = %v, want fallback 1", scales[0])
	}
	if vals[0] != 0 || vals[2] != 0 {
		t.Fatal("zero channel values changed")
	}
}

func TestFoldBNPreservesInference(t *testing.T) {
	m, ds := trainedModel(t, 2)
	img, _ := ds.Example(0)
	before := m.Predict(img).Clone()
	folded := foldModel(m)
	if folded < 3 {
		t.Fatalf("folded %d BNs, expected several", folded)
	}
	after := m.Predict(img)
	for i := range before.Data {
		if math.Abs(before.Data[i]-after.Data[i]) > 1e-9 {
			t.Fatalf("folding changed prediction: %v vs %v", before.Data[i], after.Data[i])
		}
	}
	// No BatchNorm layers should remain adjacent to convs in the stem.
	for i, l := range m.Stem.Layers {
		if _, ok := l.(*nn.BatchNorm); ok {
			if i > 0 {
				if _, conv := m.Stem.Layers[i-1].(*nn.Conv); conv {
					t.Fatal("unfolded Conv+BN pair remains")
				}
			}
		}
	}
}

func TestApplyQuantizationAccuracy(t *testing.T) {
	m, ds := trainedModel(t, 3)
	train, val := hands.Split(ds, 0.8, 1)
	calib := hands.CalibrationSet(train, 2)
	accBefore := nn.Evaluate(m, val)

	rep, err := Apply(m, calib, Config{FoldBN: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FoldedBN == 0 || rep.QuantizedParams == 0 || rep.ActObservers == 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	accAfter := nn.Evaluate(m, val)
	if accBefore-accAfter > 0.05 {
		t.Fatalf("quantization cost %.3f accuracy (%.3f -> %.3f), want < 0.05",
			accBefore-accAfter, accBefore, accAfter)
	}
}

func TestApplyRejectsEmptyCalibration(t *testing.T) {
	m, _ := trainedModel(t, 4)
	if _, err := Apply(m, &hands.Dataset{}, Config{}); err == nil {
		t.Fatal("empty calibration accepted")
	}
	if _, err := Apply(m, nil, Config{}); err == nil {
		t.Fatal("nil calibration accepted")
	}
}

func TestActQuantCalibrationMinimizesMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := &ActQuant{maxSample: 60000, stride: 1}
	a.observing = true
	// A large bulk plus one outlier: with enough bulk mass, the
	// min-MSE scale clips the outlier rather than stretching the grid
	// (one int8 step over 50k samples costs more than one clipped
	// value).
	x := tensor.New(1, 1, 1, 50000)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	x.Data[0] = 10 // outlier
	a.Forward(x, false)
	a.calibrate(31)
	a.observing = false
	naive := 10.0 / Levels
	if a.Scale >= naive {
		t.Fatalf("calibrated scale %v did not clip the outlier (naive %v)", a.Scale, naive)
	}
	if a.Scale <= 0 {
		t.Fatal("non-positive scale")
	}
	// Quantized output stays on the grid and within the clip.
	y := a.Forward(x, false)
	for _, v := range y.Data {
		q := v / a.Scale
		if math.Abs(q-math.Round(q)) > 1e-9 || math.Abs(q) > Levels {
			t.Fatalf("output %v off grid", v)
		}
	}
}

func TestIntegerDenseMatchesFakeQuant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const inC, outC = 12, 4
	w := make([]float64, inC*outC)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.3
	}
	b := []float64{0.1, -0.2, 0.05, 0}
	wScales, _ := quantizeChannelwise(w, outC) // w now fake-quantized
	x := make([]float64, inC)
	for i := range x {
		x[i] = math.Abs(rng.NormFloat64())
	}
	xScale := 3.0 / Levels

	got := IntegerDense(x, xScale, w, wScales, b, outC)

	// Reference: fake-quantize x in float and run the float dense.
	xq := make([]float64, inC)
	for i, v := range x {
		q := math.Round(v / xScale)
		if q > Levels {
			q = Levels
		}
		xq[i] = q * xScale
	}
	for oc := 0; oc < outC; oc++ {
		var want float64
		for ic := 0; ic < inC; ic++ {
			want += xq[ic] * w[ic*outC+oc]
		}
		want += b[oc]
		if math.Abs(got[oc]-want) > 1e-9 {
			t.Fatalf("integer path diverges at %d: %v vs %v", oc, got[oc], want)
		}
	}
}

func TestQuantizedModelStillDeterministic(t *testing.T) {
	m, ds := trainedModel(t, 7)
	calib := hands.CalibrationSet(ds, 3)
	if _, err := Apply(m, calib, Config{FoldBN: true}); err != nil {
		t.Fatal(err)
	}
	img, _ := ds.Example(1)
	a := m.Predict(img)
	b := m.Predict(img)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("quantized inference not deterministic")
		}
	}
}
