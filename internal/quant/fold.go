package quant

import (
	"math"

	"netcut/internal/nn"
)

// foldModel folds Conv+BN and DWConv+BN pairs throughout the model and
// returns the number of batch norms eliminated. Folding uses the BN's
// running statistics, so it is an inference-time transformation:
//
//	w' = w * gamma / sqrt(var + eps)
//	b' = (b - mean) * gamma / sqrt(var + eps) + beta
func foldModel(m *nn.Model) int {
	n := 0
	var rewrite func(l nn.Layer) nn.Layer
	rewrite = func(l nn.Layer) nn.Layer {
		switch v := l.(type) {
		case *nn.Sequential:
			var out []nn.Layer
			for i := 0; i < len(v.Layers); i++ {
				cur := rewrite(v.Layers[i])
				if i+1 < len(v.Layers) {
					if bn, ok := v.Layers[i+1].(*nn.BatchNorm); ok && foldInto(cur, bn) {
						n++
						i++ // skip the folded BN
					}
				}
				out = append(out, cur)
			}
			v.Layers = out
			return v
		case *nn.Residual:
			v.Body = rewrite(v.Body)
			return v
		default:
			return l
		}
	}
	m.Stem = rewrite(m.Stem).(*nn.Sequential)
	for i := range m.Blocks {
		m.Blocks[i] = rewrite(m.Blocks[i])
	}
	m.Head = rewrite(m.Head).(*nn.Sequential)
	return n
}

// foldInto folds bn into the preceding layer if it is a conv kind.
func foldInto(l nn.Layer, bn *nn.BatchNorm) bool {
	switch v := l.(type) {
	case *nn.Conv:
		foldParams(v.W.Val, v.B.Val, v.OutC, bn)
		return true
	case *nn.DWConv:
		foldParams(v.W.Val, v.B.Val, v.C, bn)
		return true
	}
	return false
}

func foldParams(w, b []float64, ch int, bn *nn.BatchNorm) {
	for c := 0; c < ch; c++ {
		inv := 1 / math.Sqrt(bn.RunVar[c]+bn.Eps)
		scale := bn.Gamma.Val[c] * inv
		for i := c; i < len(w); i += ch {
			w[i] *= scale
		}
		b[c] = (b[c]-bn.RunMean[c])*scale + bn.Beta.Val[c]
	}
}

// IntegerDense executes a dense layer on a genuine int8/int32 integer
// path: inputs and weights are quantized to int8, accumulated in int32,
// and dequantized once at the end. It demonstrates that the fake-quant
// float path reproduces integer-kernel arithmetic (within the final
// rounding of the accumulator dequantization).
func IntegerDense(x []float64, xScale float64, w []float64, wScales []float64, b []float64, outC int) []float64 {
	inC := len(x)
	xq := make([]int32, inC)
	for i, v := range x {
		q := math.Round(v / xScale)
		if q > Levels {
			q = Levels
		} else if q < -Levels {
			q = -Levels
		}
		xq[i] = int32(q)
	}
	out := make([]float64, outC)
	for oc := 0; oc < outC; oc++ {
		var acc int64
		ws := wScales[oc]
		for ic := 0; ic < inC; ic++ {
			wq := int32(math.Round(w[ic*outC+oc] / ws))
			acc += int64(xq[ic]) * int64(wq)
		}
		out[oc] = float64(acc)*xScale*ws + b[oc]
	}
	return out
}
