package nn

import (
	"math"

	"netcut/internal/tensor"
)

// BatchNorm normalizes per channel over batch and spatial dimensions,
// with learnable scale/shift and running statistics for inference.
type BatchNorm struct {
	Gamma *Param
	Beta  *Param
	// Running statistics (inference mode).
	RunMean []float64
	RunVar  []float64
	// Momentum of the running-statistic update.
	Momentum float64
	Eps      float64

	// Training-pass caches.
	x     *tensor.Tensor
	xhat  []float64
	mean  []float64
	inv   []float64 // 1/sqrt(var+eps)
	count int
}

// NewBatchNorm builds a batch-norm layer over ch channels.
func NewBatchNorm(ch int) *BatchNorm {
	bn := &BatchNorm{
		Gamma:    newParam("bn.gamma", ch),
		Beta:     newParam("bn.beta", ch),
		RunMean:  make([]float64, ch),
		RunVar:   make([]float64, ch),
		Momentum: 0.9,
		Eps:      1e-5,
	}
	for i := range bn.Gamma.Val {
		bn.Gamma.Val[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	ch := x.C
	y := x.Clone()
	if !train {
		for i := 0; i < len(x.Data); i += ch {
			for c := 0; c < ch; c++ {
				inv := 1 / math.Sqrt(bn.RunVar[c]+bn.Eps)
				y.Data[i+c] = bn.Gamma.Val[c]*(x.Data[i+c]-bn.RunMean[c])*inv + bn.Beta.Val[c]
			}
		}
		return y
	}

	bn.x = x
	bn.count = len(x.Data) / ch
	mean := make([]float64, ch)
	variance := make([]float64, ch)
	for i := 0; i < len(x.Data); i += ch {
		for c := 0; c < ch; c++ {
			mean[c] += x.Data[i+c]
		}
	}
	m := float64(bn.count)
	for c := range mean {
		mean[c] /= m
	}
	for i := 0; i < len(x.Data); i += ch {
		for c := 0; c < ch; c++ {
			d := x.Data[i+c] - mean[c]
			variance[c] += d * d
		}
	}
	inv := make([]float64, ch)
	for c := range variance {
		variance[c] /= m
		inv[c] = 1 / math.Sqrt(variance[c]+bn.Eps)
		bn.RunMean[c] = bn.Momentum*bn.RunMean[c] + (1-bn.Momentum)*mean[c]
		bn.RunVar[c] = bn.Momentum*bn.RunVar[c] + (1-bn.Momentum)*variance[c]
	}
	xhat := make([]float64, len(x.Data))
	for i := 0; i < len(x.Data); i += ch {
		for c := 0; c < ch; c++ {
			xhat[i+c] = (x.Data[i+c] - mean[c]) * inv[c]
			y.Data[i+c] = bn.Gamma.Val[c]*xhat[i+c] + bn.Beta.Val[c]
		}
	}
	bn.xhat = xhat
	bn.mean = mean
	bn.inv = inv
	return y
}

// Backward implements Layer (training mode only).
func (bn *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	ch := grad.C
	m := float64(bn.count)
	sumG := make([]float64, ch)
	sumGX := make([]float64, ch)
	for i := 0; i < len(grad.Data); i += ch {
		for c := 0; c < ch; c++ {
			sumG[c] += grad.Data[i+c]
			sumGX[c] += grad.Data[i+c] * bn.xhat[i+c]
		}
	}
	for c := 0; c < ch; c++ {
		bn.Beta.Grad[c] += sumG[c]
		bn.Gamma.Grad[c] += sumGX[c]
	}
	gx := grad.Clone()
	for i := 0; i < len(grad.Data); i += ch {
		for c := 0; c < ch; c++ {
			g := grad.Data[i+c]
			gx.Data[i+c] = bn.Gamma.Val[c] * bn.inv[c] *
				(g - sumG[c]/m - bn.xhat[i+c]*sumGX[c]/m)
		}
	}
	return gx
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
