package nn

import (
	"fmt"

	"netcut/internal/tensor"
)

// Model mirrors the TRN structure at miniature scale: a stem, a list of
// removable blocks, and a classification head. Layer removal truncates
// Blocks and replaces Head, exactly like trim.Cut does on the IR.
type Model struct {
	Stem   *Sequential
	Blocks []Layer
	Head   *Sequential
}

// Forward runs the model to logits.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	x = m.Stem.Forward(x, train)
	for _, b := range m.Blocks {
		x = b.Forward(x, train)
	}
	return m.Head.Forward(x, train)
}

// Backward propagates the loss gradient through the whole model.
func (m *Model) Backward(grad *tensor.Tensor) {
	grad = m.Head.Backward(grad)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		grad = m.Blocks[i].Backward(grad)
	}
	m.Stem.Backward(grad)
}

// Predict returns class probabilities.
func (m *Model) Predict(x *tensor.Tensor) *tensor.Tensor {
	return Softmax(m.Forward(x, false))
}

// Params returns all parameters.
func (m *Model) Params() []*Param {
	out := m.FeatureParams()
	return append(out, m.HeadParams()...)
}

// FeatureParams returns stem and block parameters — frozen during the
// first fine-tuning phase.
func (m *Model) FeatureParams() []*Param {
	out := append([]*Param(nil), m.Stem.Params()...)
	for _, b := range m.Blocks {
		out = append(out, b.Params()...)
	}
	return out
}

// HeadParams returns classification-head parameters.
func (m *Model) HeadParams() []*Param { return m.Head.Params() }

// ParamCount returns the number of scalar parameters.
func (m *Model) ParamCount() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Val)
	}
	return n
}

// CopyFeatureWeights transfers stem and block weights from src to dst
// positionally; dst may have fewer blocks (a trimmed model). This is
// the transfer-learning step: pretrained features move to the TRN, the
// head starts fresh.
func CopyFeatureWeights(dst, src *Model) error {
	dp, sp := dst.FeatureParams(), src.FeatureParams()
	if len(dp) > len(sp) {
		return fmt.Errorf("nn: destination has %d feature params, source only %d", len(dp), len(sp))
	}
	for i := range dp {
		if len(dp[i].Val) != len(sp[i].Val) {
			return fmt.Errorf("nn: feature param %d size mismatch: %d vs %d (architectures diverge)",
				i, len(dp[i].Val), len(sp[i].Val))
		}
		copy(dp[i].Val, sp[i].Val)
	}
	// Batch-norm running statistics travel with the weights.
	db, sb := collectBN(dst), collectBN(src)
	if len(db) > len(sb) {
		return fmt.Errorf("nn: destination has %d feature BNs, source only %d", len(db), len(sb))
	}
	for i := range db {
		copy(db[i].RunMean, sb[i].RunMean)
		copy(db[i].RunVar, sb[i].RunVar)
	}
	return nil
}

// collectBN gathers feature-extractor batch norms in traversal order.
func collectBN(m *Model) []*BatchNorm {
	var out []*BatchNorm
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *BatchNorm:
			out = append(out, v)
		case *Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *Residual:
			walk(v.Body)
		}
	}
	walk(m.Stem)
	for _, b := range m.Blocks {
		walk(b)
	}
	return out
}
