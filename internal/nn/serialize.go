package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the on-wire weight format: parameter vectors in model
// traversal order plus batch-norm running statistics. Architecture is
// not serialized — load into a model built from the same MiniConfig.
type checkpoint struct {
	Params   [][]float64
	RunMeans [][]float64
	RunVars  [][]float64
}

// Save writes the model's weights (and BN statistics) to w. The
// receiving side must construct an identical architecture before Load.
func Save(m *Model, w io.Writer) error {
	cp := checkpoint{}
	for _, p := range m.Params() {
		cp.Params = append(cp.Params, p.Val)
	}
	for _, bn := range allBN(m) {
		cp.RunMeans = append(cp.RunMeans, bn.RunMean)
		cp.RunVars = append(cp.RunVars, bn.RunVar)
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load restores weights saved by Save into a model with identical
// architecture.
func Load(m *Model, r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	params := m.Params()
	if len(cp.Params) != len(params) {
		return fmt.Errorf("nn: load: checkpoint has %d parameter tensors, model has %d (architecture mismatch)",
			len(cp.Params), len(params))
	}
	for i, p := range params {
		if len(cp.Params[i]) != len(p.Val) {
			return fmt.Errorf("nn: load: parameter %d has %d values, model expects %d",
				i, len(cp.Params[i]), len(p.Val))
		}
		copy(p.Val, cp.Params[i])
	}
	bns := allBN(m)
	if len(cp.RunMeans) != len(bns) {
		return fmt.Errorf("nn: load: checkpoint has %d batch norms, model has %d", len(cp.RunMeans), len(bns))
	}
	for i, bn := range bns {
		if len(cp.RunMeans[i]) != len(bn.RunMean) {
			return fmt.Errorf("nn: load: batch norm %d width mismatch", i)
		}
		copy(bn.RunMean, cp.RunMeans[i])
		copy(bn.RunVar, cp.RunVars[i])
	}
	return nil
}

// allBN gathers every batch norm in the model, including the head.
func allBN(m *Model) []*BatchNorm {
	out := collectBN(m)
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *BatchNorm:
			out = append(out, v)
		case *Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *Residual:
			walk(v.Body)
		}
	}
	walk(m.Head)
	return out
}
