package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*Param][]float64{}}
}

// SetLR implements Optimizer.
func (o *SGD) SetLR(lr float64) { o.LR = lr }

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = make([]float64, len(p.Val))
			o.vel[p] = v
		}
		for i := range p.Val {
			v[i] = o.Momentum*v[i] - o.LR*p.Grad[i]
			p.Val[i] += v[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with standard defaults for the
// moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param][]float64{}, v: map[*Param][]float64{},
	}
}

// SetLR implements Optimizer.
func (o *Adam) SetLR(lr float64) { o.LR = lr }

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Val))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.Val))
		}
		v := o.v[p]
		for i := range p.Val {
			g := p.Grad[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			p.Val[i] -= o.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + o.Eps)
		}
		p.ZeroGrad()
	}
}
