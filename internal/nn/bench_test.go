package nn

import (
	"math/rand"
	"testing"

	"netcut/internal/hands"
)

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := hands.Generate(hands.Config{N: 64, Size: 12, Seed: 1})
	m, err := Build(MiniConfig{InputH: 12, Blocks: 2, Classes: 5}, rng)
	if err != nil {
		b.Fatal(err)
	}
	opt := NewAdam(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(m, ds, TrainConfig{Epochs: 1, BatchSize: 16, Optimizer: opt, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ds := hands.Generate(hands.Config{N: 64, Size: 12, Seed: 2})
	m, err := Build(MiniConfig{InputH: 12, Blocks: 2, Classes: 5}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(m, ds)
	}
}
